// sp::io wire-format net: golden-blob version pinning (byte-level), wire
// primitive round trips, bit-identical (de)serialization of polys /
// plaintexts / ciphertexts / keys / plans at two parameter sets, header
// rejection diagnostics (magic, version, kind, fingerprint, truncation,
// trailing bytes, corrupt lengths, out-of-range residues), frame framing,
// and the serving contract: a keygen-less runtime reconstructed purely from
// deserialized blobs evaluates a plan bit-identically to the key owner.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "io/serialize.h"
#include "smartpaf/fhe_deploy.h"
#include "smartpaf/pipeline.h"
#include "smartpaf/pipeline_planner.h"
#include "train/checkpoint.h"

namespace {

using namespace sp;
using namespace sp::fhe;

const double kParityTol = std::ldexp(1.0, -20);

/// Asserts `fn` throws sp::Error whose message contains `substr`.
template <typename Fn>
void expect_error_containing(Fn&& fn, const std::string& substr) {
  bool threw = false;
  try {
    fn();
  } catch (const sp::Error& e) {
    threw = true;
    EXPECT_NE(std::string(e.what()).find(substr), std::string::npos)
        << "message was: " << e.what();
  }
  EXPECT_TRUE(threw) << "expected an sp::Error containing \"" << substr << "\"";
}

bool polys_equal(const RnsPoly& a, const RnsPoly& b) {
  if (a.q_count() != b.q_count() || a.has_special() != b.has_special() ||
      a.is_ntt() != b.is_ntt() || a.n() != b.n())
    return false;
  for (int i = 0; i < a.row_count(); ++i)
    for (std::size_t j = 0; j < a.n(); ++j)
      if (a.row(i)[j] != b.row(i)[j]) return false;
  return true;
}

bool ciphertexts_equal(const Ciphertext& a, const Ciphertext& b) {
  if (a.size() != b.size() || a.scale != b.scale) return false;
  for (int i = 0; i < a.size(); ++i)
    if (!polys_equal(a.parts[static_cast<std::size_t>(i)],
                     b.parts[static_cast<std::size_t>(i)]))
      return false;
  return true;
}

/// Shared small runtime: keygen once for the whole suite.
class WireTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rt_ = std::make_unique<smartpaf::FheRuntime>(CkksParams::for_depth(2048, 4, 40),
                                                 /*seed=*/77);
  }
  static void TearDownTestSuite() { rt_.reset(); }

  static std::vector<double> random_slots(std::uint64_t seed) {
    sp::Rng rng(seed);
    std::vector<double> v(rt_->ctx().slot_count());
    for (auto& x : v) x = rng.uniform(-1.0, 1.0);
    return v;
  }

  static std::unique_ptr<smartpaf::FheRuntime> rt_;
};

std::unique_ptr<smartpaf::FheRuntime> WireTest::rt_;

// -------------------------------------------------------------- golden blob --

// The full serialized CkksParams::for_depth(2048, 4, 40) blob, byte for
// byte. This is the version pin: ANY layout change (field order, widths,
// header shape, fingerprint recipe) breaks this test, which is the signal to
// bump sp::io::kVersion and regenerate. Layout: docs/WIRE.md.
const std::vector<std::uint8_t> kGoldenParamsBlob = {
    0x53, 0x50, 0x57, 0x42,                          // magic "SPWB"
    0x02, 0x00,                                      // version 2
    0x01, 0x00,                                      // kind CkksParams
    0x3a, 0x78, 0x92, 0xe6, 0xb8, 0x9b, 0x61, 0x5f,  // params fingerprint
    0x00, 0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // poly_degree 2048
    0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // 5 q_bits entries
    0x3c, 0x00, 0x00, 0x00,                          // 60
    0x28, 0x00, 0x00, 0x00,                          // 40
    0x28, 0x00, 0x00, 0x00,                          // 40
    0x28, 0x00, 0x00, 0x00,                          // 40
    0x28, 0x00, 0x00, 0x00,                          // 40
    0x3c, 0x00, 0x00, 0x00,                          // special_bits 60
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x70, 0x42,  // scale 2^40
    0x9a, 0x99, 0x99, 0x99, 0x99, 0x99, 0x09, 0x40,  // noise_stddev 3.2
};

TEST(WireGolden, ParamsBlobIsByteStable) {
  const CkksParams params = CkksParams::for_depth(2048, 4, 40);
  EXPECT_EQ(io::serialize(params), kGoldenParamsBlob);
  EXPECT_EQ(io::params_fingerprint(params), 0x5f619bb8e692783aULL);
}

TEST(WireGolden, GoldenBlobDeserializes) {
  const CkksParams params = io::deserialize_params(kGoldenParamsBlob);
  EXPECT_EQ(params.poly_degree, 2048u);
  EXPECT_EQ(params.q_bits, (std::vector<int>{60, 40, 40, 40, 40}));
  EXPECT_EQ(params.special_bits, 60);
  EXPECT_EQ(params.scale, std::ldexp(1.0, 40));
  EXPECT_NEAR(params.noise_stddev, 3.2, 1e-12);
}

// The fixed-layout prologue (header + config + progress + flags) of a
// TrainingState checkpoint for the default TrainConfig at iteration 2 with a
// velocity ciphertext — everything before the first nested ciphertext blob,
// whose bytes depend on encryption randomness and so cannot be pinned.
// Same contract as the params pin above: any layout drift breaks this test,
// which is the signal to bump sp::io::kVersion and regenerate.
const std::vector<std::uint8_t> kGoldenTrainingStatePrologue = {
    0x53, 0x50, 0x57, 0x42,                          // magic "SPWB"
    0x02, 0x00,                                      // version 2
    0x0b, 0x00,                                      // kind TrainingState (11)
    0x3a, 0x78, 0x92, 0xe6, 0xb8, 0x9b, 0x61, 0x5f,  // params fingerprint
    0x00,                                            // optimizer SgdMomentum
    0x04, 0x00, 0x00, 0x00,                          // features 4
    0x08, 0x00, 0x00, 0x00,                          // batch 8
    0x03, 0x00, 0x00, 0x00,                          // iterations 3
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xd0, 0x3f,  // lr 0.25
    0xcd, 0xcc, 0xcc, 0xcc, 0xcc, 0xcc, 0xec, 0x3f,  // momentum 0.9
    0xcd, 0xcc, 0xcc, 0xcc, 0xcc, 0xcc, 0xec, 0x3f,  // beta1 0.9
    0x2b, 0x87, 0x16, 0xd9, 0xce, 0xf7, 0xef, 0x3f,  // beta2 0.999
    0x9a, 0x99, 0x99, 0x99, 0x99, 0x99, 0xb9, 0x3f,  // adam_eps 0.1
    0x03, 0x00, 0x00, 0x00,                          // sigmoid_degree 3
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x20, 0x40,  // sigmoid_range 8.0
    0x05, 0x00, 0x00, 0x00,                          // invsqrt_degree 5
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xf0, 0x3f,  // vhat_max 1.0
    0x00, 0x00, 0x00, 0x00,                          // matvec_n1 0 (auto)
    0x02, 0x00, 0x00, 0x00,                          // iteration 2
    0x01,                                            // flags: velocity only
};

TEST_F(WireTest, TrainingStatePrologueIsByteStable) {
  train::TrainingState st;
  st.config = train::TrainConfig{};
  st.iteration = 2;
  st.weights = rt_->encrypt({0.5, -0.25, 0.125, 0.0});
  st.velocity = rt_->encrypt({0.0, 0.0, 0.0, 0.0});
  const std::vector<std::uint8_t> bytes = train::serialize_training_state(st);
  ASSERT_GT(bytes.size(), kGoldenTrainingStatePrologue.size());
  EXPECT_TRUE(std::equal(kGoldenTrainingStatePrologue.begin(),
                         kGoldenTrainingStatePrologue.end(), bytes.begin()))
      << "TrainingState prologue layout drifted — bump sp::io::kVersion";

  // And the whole blob round-trips bit-identically.
  const train::TrainingState back =
      train::deserialize_training_state(bytes, rt_->ctx());
  EXPECT_EQ(train::serialize_training_state(back), bytes);
}

// --------------------------------------------------------------- primitives --

TEST(WirePrimitives, ScalarsRoundTripLittleEndian) {
  io::WireWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  w.i32(-7);
  w.i64(-1);
  w.f64(-0.125);
  w.boolean(true);
  w.str("smartpaf");
  const std::vector<std::uint8_t> bytes = w.take();
  EXPECT_EQ(bytes[0], 0xab);
  EXPECT_EQ(bytes[1], 0x34);  // u16 low byte first
  EXPECT_EQ(bytes[2], 0x12);

  io::WireReader r(bytes);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i32(), -7);
  EXPECT_EQ(r.i64(), -1);
  EXPECT_EQ(r.f64(), -0.125);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), "smartpaf");
  EXPECT_TRUE(r.done());
  r.expect_done();
}

TEST(WirePrimitives, TruncatedAndMalformedReadsThrow) {
  io::WireWriter w;
  w.u32(5);
  const std::vector<std::uint8_t> bytes = w.bytes();
  expect_error_containing(
      [&] {
        io::WireReader r(bytes);
        r.u64();
      },
      "truncated");
  expect_error_containing(
      [&] {
        io::WireReader r(bytes);
        r.u8();
        r.u8();  // value 0 then 5: second byte is 0... read all four then fail
        r.u8();
        r.u8();
        r.u8();
      },
      "truncated");
  // A corrupt length prefix is rejected BEFORE allocation.
  io::WireWriter big;
  big.u64(0xffffffffffffULL);
  expect_error_containing(
      [&] {
        io::WireReader r(big.bytes());
        r.f64_vec();
      },
      "length prefix");
  // Bool bytes other than 0/1 are malformed, not truthy.
  io::WireWriter b;
  b.u8(2);
  expect_error_containing(
      [&] {
        io::WireReader r(b.bytes());
        r.boolean();
      },
      "bool");
  // Trailing bytes after a payload are an error, not padding.
  expect_error_containing(
      [&] {
        io::WireReader r(bytes);
        r.u16();
        r.expect_done();
      },
      "trailing");
}

TEST(WirePrimitives, FramesRoundTripAndSignalCleanEof) {
  std::stringstream channel;
  io::write_frame(channel, {1, 2, 3});
  io::write_frame(channel, {});  // empty frames are legal
  io::write_frame(channel, {0xff});
  std::vector<std::uint8_t> payload;
  EXPECT_TRUE(io::read_frame(channel, payload));
  EXPECT_EQ(payload, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE(io::read_frame(channel, payload));
  EXPECT_TRUE(payload.empty());
  EXPECT_TRUE(io::read_frame(channel, payload));
  EXPECT_EQ(payload, (std::vector<std::uint8_t>{0xff}));
  EXPECT_FALSE(io::read_frame(channel, payload));  // clean EOF, not an error

  // A frame cut mid-payload throws instead of returning short data.
  std::stringstream cut;
  io::write_frame(cut, {9, 9, 9, 9});
  std::string s = cut.str();
  s.resize(s.size() - 2);
  std::stringstream truncated(s);
  expect_error_containing([&] { io::read_frame(truncated, payload); }, "truncated");
}

TEST(WirePrimitives, FrameSizeCapRejectsHostilePrefixBeforeAllocation) {
  // A hostile/corrupt length prefix must be rejected by the cap check, not
  // handed to vector::resize (a 0xFFFFFFFF prefix would pin ~4 GiB).
  std::stringstream hostile;
  const std::uint8_t prefix[4] = {0xff, 0xff, 0xff, 0xff};
  hostile.write(reinterpret_cast<const char*>(prefix), 4);
  std::vector<std::uint8_t> payload;
  expect_error_containing([&] { io::read_frame(hostile, payload); }, "exceeds");

  // Caller-configurable cap: a legitimate frame one byte over it is refused,
  // and accepted once the cap covers it.
  std::stringstream channel;
  io::write_frame(channel, std::vector<std::uint8_t>(16, 7));
  expect_error_containing([&] { io::read_frame(channel, payload, 15); }, "exceeds");
  std::stringstream again;
  io::write_frame(again, std::vector<std::uint8_t>(16, 7));
  EXPECT_TRUE(io::read_frame(again, payload, 16));
  EXPECT_EQ(payload.size(), 16u);
}

// -------------------------------------------------------------- round trips --

TEST_F(WireTest, PolyPlaintextCiphertextRoundTripBitIdentical) {
  const auto slots = random_slots(5);
  const Plaintext pt = rt_->encoder().encode(slots, rt_->ctx().scale(), 3);
  const Plaintext pt2 = io::deserialize_plaintext(io::serialize(pt), rt_->ctx());
  EXPECT_TRUE(polys_equal(pt.poly, pt2.poly));
  EXPECT_EQ(pt.scale, pt2.scale);

  // Coefficient-form partial-chain poly.
  RnsPoly poly(&rt_->ctx(), 2, /*with_special=*/false, /*ntt_form=*/false);
  sp::Rng rng(11);
  poly.sample_uniform(rng);
  EXPECT_TRUE(polys_equal(poly, io::deserialize_poly(io::serialize(poly), rt_->ctx())));

  // 2-part ciphertext and 3-part (pre-relinearization) ciphertext.
  const Ciphertext ct = rt_->encrypt(slots);
  EXPECT_TRUE(ciphertexts_equal(ct, io::deserialize_ciphertext(io::serialize(ct),
                                                               rt_->ctx())));
  const Ciphertext prod = rt_->evaluator().multiply(ct, ct);
  EXPECT_EQ(prod.size(), 3);
  const Ciphertext prod2 = io::deserialize_ciphertext(io::serialize(prod), rt_->ctx());
  EXPECT_TRUE(ciphertexts_equal(prod, prod2));
  // The deserialized copy decrypts identically (exact same residues).
  EXPECT_EQ(rt_->decrypt(prod2), rt_->decrypt(prod));
}

TEST_F(WireTest, KeyMaterialRoundTripsBitIdentical) {
  const PublicKey& pk = rt_->public_key();
  const PublicKey pk2 = io::deserialize_public_key(io::serialize(pk), rt_->ctx());
  EXPECT_TRUE(polys_equal(pk.p0, pk2.p0));
  EXPECT_TRUE(polys_equal(pk.p1, pk2.p1));

  const KSwitchKey& relin = rt_->relin_key();
  const KSwitchKey relin2 = io::deserialize_kswitch_key(io::serialize(relin), rt_->ctx());
  ASSERT_EQ(relin2.digits.size(), relin.digits.size());
  for (std::size_t i = 0; i < relin.digits.size(); ++i) {
    EXPECT_TRUE(polys_equal(relin.digits[i][0], relin2.digits[i][0]));
    EXPECT_TRUE(polys_equal(relin.digits[i][1], relin2.digits[i][1]));
  }

  const auto gk_snapshot = rt_->rotation_keys({1, -2, 8});
  const GaloisKeys& gk = *gk_snapshot;
  const GaloisKeys gk2 = io::deserialize_galois_keys(io::serialize(gk), rt_->ctx());
  ASSERT_EQ(gk2.keys.size(), gk.keys.size());
  for (const auto& [elt, key] : gk.keys) {
    const auto it = gk2.keys.find(elt);
    ASSERT_TRUE(it != gk2.keys.end());
    ASSERT_EQ(it->second.digits.size(), key.digits.size());
    for (std::size_t i = 0; i < key.digits.size(); ++i)
      EXPECT_TRUE(polys_equal(key.digits[i][0], it->second.digits[i][0]));
  }

  // Secret keys round trip too (client-side persistence; never ship one).
  KeyGenerator kg(rt_->ctx(), 123);
  const SecretKey& sk = kg.secret_key();
  const SecretKey sk2 = io::deserialize_secret_key(io::serialize(sk), rt_->ctx());
  EXPECT_TRUE(polys_equal(sk.s_ntt, sk2.s_ntt));
  EXPECT_TRUE(polys_equal(sk.s_coeff, sk2.s_coeff));
}

TEST_F(WireTest, SecondParamSetRoundTrips) {
  // A different ring (N = 4096, different chain) gets its own fingerprint
  // and round-trips under it.
  const CkksParams params = CkksParams::for_depth(4096, 5, 35);
  EXPECT_NE(io::params_fingerprint(params),
            io::params_fingerprint(rt_->ctx().params()));
  const CkksParams back = io::deserialize_params(io::serialize(params));
  EXPECT_EQ(back.poly_degree, params.poly_degree);
  EXPECT_EQ(back.q_bits, params.q_bits);
  EXPECT_EQ(back.special_bits, params.special_bits);
  EXPECT_EQ(back.scale, params.scale);

  const CkksContext ctx(params);
  RnsPoly poly(&ctx, 3, /*with_special=*/true, /*ntt_form=*/false);
  sp::Rng rng(17);
  poly.sample_uniform(rng);
  EXPECT_TRUE(polys_equal(poly, io::deserialize_poly(io::serialize(poly), ctx)));
}

TEST_F(WireTest, PlanRoundTripPreservesSchedule) {
  const auto pipe = smartpaf::FhePipeline::builder()
                        .window({0.5, 0.25})
                        .linear(1.1, 0.2)
                        .build();
  const smartpaf::Plan plan =
      smartpaf::Planner::plan(pipe, rt_->ctx(), smartpaf::CostModel::heuristic());
  const smartpaf::Plan back =
      io::deserialize_plan(io::serialize(plan, rt_->ctx()), rt_->ctx());
  EXPECT_EQ(back.chain_levels, plan.chain_levels);
  EXPECT_EQ(back.levels_used, plan.levels_used);
  EXPECT_EQ(back.pack_stride, plan.pack_stride);
  EXPECT_EQ(back.rotation_steps(), plan.rotation_steps());
  ASSERT_EQ(back.stages.size(), plan.stages.size());
  for (std::size_t i = 0; i < plan.stages.size(); ++i) {
    EXPECT_EQ(back.stages[i].label, plan.stages[i].label);
    EXPECT_EQ(back.stages[i].level_in, plan.stages[i].level_in);
    EXPECT_EQ(back.stages[i].level_out, plan.stages[i].level_out);
    EXPECT_EQ(back.stages[i].folded, plan.stages[i].folded);
    EXPECT_EQ(back.stages[i].rotation_steps, plan.stages[i].rotation_steps);
  }
  // The schedule description (what run() consumes) survives verbatim.
  EXPECT_EQ(back.describe(), plan.describe());
}

// ---------------------------------------------------------------- rejection --

TEST_F(WireTest, RejectsForeignAndCorruptBlobs) {
  const auto slots = random_slots(21);
  const Ciphertext ct = rt_->encrypt(slots);
  std::vector<std::uint8_t> blob = io::serialize(ct);

  // Wrong magic.
  {
    auto bad = blob;
    bad[0] = 'X';
    expect_error_containing(
        [&] { io::deserialize_ciphertext(bad, rt_->ctx()); }, "magic");
  }
  // Unsupported version.
  {
    auto bad = blob;
    bad[4] = 0x2a;
    expect_error_containing(
        [&] { io::deserialize_ciphertext(bad, rt_->ctx()); }, "version");
  }
  // Right header, wrong kind: a public-key blob is not a ciphertext.
  expect_error_containing(
      [&] { io::deserialize_ciphertext(io::serialize(rt_->public_key()), rt_->ctx()); },
      "expected a Ciphertext");
  // Mismatched ring: blobs from this context are rejected by another chain.
  {
    const CkksContext other(CkksParams::for_depth(4096, 5, 35));
    expect_error_containing([&] { io::deserialize_ciphertext(blob, other); },
                            "fingerprint");
  }
  // Truncation anywhere in the payload.
  {
    auto bad = blob;
    bad.resize(bad.size() - 1);
    expect_error_containing(
        [&] { io::deserialize_ciphertext(bad, rt_->ctx()); }, "truncated");
  }
  // Trailing garbage after the payload.
  {
    auto bad = blob;
    bad.push_back(0);
    expect_error_containing(
        [&] { io::deserialize_ciphertext(bad, rt_->ctx()); }, "trailing");
  }
  // An out-of-range residue (tampered word) is rejected, not accepted as a
  // valid ring element. First residue word starts after the 16-byte header,
  // the 4-byte part count, and the poly prologue (8 n + 4 q_count + 2 bools
  // + 8 span length); its MSB at +7 pushes it far above any 40-bit prime.
  {
    auto bad = blob;
    bad[16 + 4 + 8 + 4 + 2 + 8 + 7] = 0xff;
    expect_error_containing(
        [&] { io::deserialize_ciphertext(bad, rt_->ctx()); }, "residue");
  }
  // A params blob whose fingerprint disagrees with its own payload was
  // stitched or corrupted.
  {
    auto bad = io::serialize(rt_->ctx().params());
    bad[8] ^= 0x01;  // flip one fingerprint bit
    expect_error_containing([&] { io::deserialize_params(bad); }, "fingerprint");
  }
}

// ----------------------------------------------------------------- serving --

TEST_F(WireTest, KeygenlessRuntimeEvaluatesDeserializedPlanBitIdentically) {
  // Client side: plan a pipeline, generate exactly the keys it needs.
  const auto pipe = smartpaf::FhePipeline::builder()
                        .window({0.4, 0.3, 0.2})
                        .linear(0.9, 0.05)
                        .build();
  const smartpaf::Plan plan =
      smartpaf::Planner::plan(pipe, rt_->ctx(), smartpaf::CostModel::heuristic());
  const auto gk_snapshot = rt_->rotation_keys(plan.rotation_steps());
  const GaloisKeys& gk = *gk_snapshot;
  const auto slots = random_slots(31);
  const Ciphertext request = rt_->encrypt(slots);

  // Everything crosses the "boundary" as bytes; the server reconstructs a
  // runtime purely from blobs (fresh context, no keygen, no secret key).
  auto ctx = std::make_unique<CkksContext>(
      io::deserialize_params(io::serialize(rt_->ctx().params())));
  const CkksContext& server_ctx = *ctx;
  smartpaf::FheRuntime server(
      std::move(ctx),
      io::deserialize_public_key(io::serialize(rt_->public_key()), server_ctx),
      io::deserialize_kswitch_key(io::serialize(rt_->relin_key()), server_ctx),
      io::deserialize_galois_keys(io::serialize(gk), server_ctx));
  EXPECT_FALSE(server.has_secret_key());
  const smartpaf::Plan server_plan =
      io::deserialize_plan(io::serialize(plan, rt_->ctx()), server.ctx());
  const Ciphertext server_request =
      io::deserialize_ciphertext(io::serialize(request), server.ctx());

  // The served result must be BIT-identical to the key owner evaluating the
  // same plan locally — proving the blobs carry the full evaluation state.
  const Ciphertext local = pipe.run(*rt_, plan, request, nullptr);
  const Ciphertext served = pipe.run(server, server_plan, server_request, nullptr);
  const Ciphertext served_back =
      io::deserialize_ciphertext(io::serialize(served), rt_->ctx());
  EXPECT_TRUE(ciphertexts_equal(local, served_back));

  // And it decrypts (client side) to the plaintext reference within 2^-20.
  const std::vector<double> got = rt_->decrypt(served_back);
  const std::vector<double> ref = pipe.reference(slots);
  double worst = 0.0;
  for (std::size_t j = 0; j < got.size(); ++j)
    worst = std::max(worst, std::abs(got[j] - ref[j]));
  EXPECT_LT(worst, kParityTol);
}

TEST_F(WireTest, KeygenlessRuntimeFailsLoudlyOnMissingCapabilities) {
  auto ctx = std::make_unique<CkksContext>(rt_->ctx().params());
  const CkksContext& server_ctx = *ctx;
  const auto gk_snapshot = rt_->rotation_keys({1});
  const GaloisKeys& gk = *gk_snapshot;
  smartpaf::FheRuntime server(
      std::move(ctx),
      io::deserialize_public_key(io::serialize(rt_->public_key()), server_ctx),
      io::deserialize_kswitch_key(io::serialize(rt_->relin_key()), server_ctx),
      io::deserialize_galois_keys(io::serialize(gk), server_ctx));
  EXPECT_FALSE(server.has_secret_key());
  // Decryption is impossible without the secret key.
  expect_error_containing([&] { server.decryptor(); }, "secret");
  expect_error_containing([&] { server.decrypt(server.encrypt({1.0})); }, "secret");
  // Covered steps resolve fine; an uncovered step names itself.
  EXPECT_NO_THROW(server.rotation_keys({1}));
  expect_error_containing([&] { server.rotation_keys({1, 5}); }, "5");
  // Public-key encryption still works server-side; ship the blob back to
  // the key owner to read it (contexts are process-local, bytes are not).
  const Ciphertext aux = server.encrypt(std::vector<double>(4, 0.5));
  const std::vector<double> dec =
      rt_->decrypt(io::deserialize_ciphertext(io::serialize(aux), rt_->ctx()));
  EXPECT_NEAR(dec[0], 0.5, 1e-6);
}

}  // namespace
