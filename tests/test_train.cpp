// Encrypted-training net: wide-range sigmoid / inverse-sqrt minimax fits
// (error pinned, odd symmetry, grid accuracy), ct x ct diagonal matvec
// parity vs the plaintext product (hoisted and naive, square and not),
// TrainPlan depth budgeting with the rejection diagnostic pinned, the
// plaintext-mirror range guard diagnostics, per-iteration encrypted-vs-
// mirror parity for SgdMomentum AND Adam, checkpoint/resume bit identity
// (resume and continue produces byte-identical state), restore validation,
// and the 2%-of-oracle accuracy gate on the two-Gaussian task.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "approx/presets.h"
#include "common/check.h"
#include "fhe/enc_matvec.h"
#include "train/checkpoint.h"
#include "train/reference.h"

namespace {

using namespace sp;
using fhe::CkksParams;

const double kParityTol = std::ldexp(1.0, -20);

/// Asserts `fn` throws sp::Error whose message contains `substr`.
template <typename Fn>
void expect_error_containing(Fn&& fn, const std::string& substr) {
  bool threw = false;
  try {
    fn();
  } catch (const sp::Error& e) {
    threw = true;
    EXPECT_NE(std::string(e.what()).find(substr), std::string::npos)
        << "message was: " << e.what();
  }
  EXPECT_TRUE(threw) << "expected sp::Error containing \"" << substr << "\"";
}

/// Shared 12-level runtime (3 SGD iterations x 4 levels/step): keygen once.
class TrainTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rt_ = std::make_unique<smartpaf::FheRuntime>(CkksParams::for_depth(2048, 12, 40),
                                                 /*seed=*/99);
  }
  static void TearDownTestSuite() { rt_.reset(); }

  static train::TrainConfig sgd_config() {
    train::TrainConfig cfg;
    cfg.features = 4;
    cfg.batch = 8;
    cfg.iterations = 3;
    cfg.optimizer = train::Optimizer::SgdMomentum;
    cfg.lr = 0.5;
    return cfg;
  }

  static std::vector<train::MiniBatch> gaussian_batches(int batch) {
    data::TwoGaussianSpec spec;
    const data::TwoGaussianData ds = data::make_two_gaussian(spec);
    return train::make_batches(data::design_matrix(ds.train), batch);
  }

  static std::unique_ptr<smartpaf::FheRuntime> rt_;
};

std::unique_ptr<smartpaf::FheRuntime> TrainTest::rt_;

// ------------------------------------------------------------ minimax fits --

TEST(TrainFits, WideRangeSigmoidIsOddAroundHalfAndMeetsItsError) {
  for (const int degree : {3, 5}) {
    const approx::SigmoidPaf fit = approx::sigmoid_paf(degree, 8.0);
    EXPECT_EQ(fit.poly.degree(), degree);
    // sigma(z) + sigma(-z) = 1; the fit keeps that symmetry exactly
    // (odd-basis exchange plus the 0.5 constant).
    EXPECT_NEAR(fit.poly(0.0), 0.5, 1e-12);
    EXPECT_NEAR(fit.poly(3.0) + fit.poly(-3.0), 1.0, 1e-12);
    // The reported minimax error is real: never exceeded on a dense grid,
    // and attained somewhere (within grid resolution).
    double worst = 0.0;
    for (int i = -400; i <= 400; ++i) {
      const double z = 8.0 * i / 400.0;
      const double err = std::abs(fit.poly(z) - 1.0 / (1.0 + std::exp(-z)));
      worst = std::max(worst, err);
    }
    EXPECT_LE(worst, fit.max_error * (1.0 + 1e-6));
    EXPECT_GE(worst, fit.max_error * 0.98);
  }
  // Calibrated: deg 3 on [-8, 8] lands near 0.09; more degree or a narrower
  // range always fits tighter.
  EXPECT_NEAR(approx::sigmoid_paf(3, 8.0).max_error, 0.0895, 5e-3);
  EXPECT_LT(approx::sigmoid_paf(5, 8.0).max_error,
            approx::sigmoid_paf(3, 8.0).max_error);
  EXPECT_LT(approx::sigmoid_paf(3, 4.0).max_error,
            approx::sigmoid_paf(3, 8.0).max_error);
}

TEST(TrainFits, InvSqrtFitCoversItsDomain) {
  const approx::InvSqrtPaf fit = approx::invsqrt_paf(5, 1.0, 0.1);
  EXPECT_EQ(fit.poly.degree(), 5);
  EXPECT_LT(fit.max_error, 0.03);
  double worst = 0.0;
  for (int i = 0; i <= 400; ++i) {
    const double v = i / 400.0;
    worst = std::max(worst, std::abs(fit.poly(v) - 1.0 / std::sqrt(v + 0.1)));
  }
  EXPECT_LE(worst, fit.max_error * (1.0 + 1e-6));
}

// --------------------------------------------------------- ct x ct matvec --

TEST_F(TrainTest, EncDiagMatVecMatchesPlaintextProduct) {
  sp::Rng rng(404);
  for (const auto& [rows, cols] : {std::pair{8, 4}, std::pair{4, 8}, std::pair{5, 5}}) {
    std::vector<double> w(static_cast<std::size_t>(rows) * cols);
    std::vector<double> x(static_cast<std::size_t>(cols));
    for (auto& v : w) v = rng.uniform(-1.0, 1.0);
    for (auto& v : x) v = rng.uniform(-1.0, 1.0);

    std::vector<int> steps;
    for (int s = -(rows - 1); s <= cols - 1; ++s) steps.push_back(s);
    const int n1 = fhe::DiagMatVecPlan::best_n1(steps, rows, cols);
    const fhe::DiagMatVecPlan plan = fhe::DiagMatVecPlan::group(steps, rows, cols, n1);
    const auto gk = rt_->rotation_keys(plan.steps());

    const fhe::EncDiagMatVec enc = fhe::EncDiagMatVec::encrypt(
        rt_->ctx(), rt_->encoder(), rt_->encryptor(), plan, w, 0, rt_->ctx().scale());
    fhe::Ciphertext vx = rt_->encrypt(x);
    const fhe::Ciphertext hoisted =
        enc.apply(rt_->evaluator(), vx, *gk, rt_->relin_key(), /*hoist_babies=*/true);
    const fhe::Ciphertext naive =
        enc.apply(rt_->evaluator(), vx, *gk, rt_->relin_key(), /*hoist_babies=*/false);

    const std::vector<double> got = rt_->decrypt(hoisted);
    const std::vector<double> got_naive = rt_->decrypt(naive);
    for (int i = 0; i < rows; ++i) {
      double want = 0.0;
      for (int j = 0; j < cols; ++j)
        want += w[static_cast<std::size_t>(i) * cols + j] * x[static_cast<std::size_t>(j)];
      EXPECT_NEAR(got[static_cast<std::size_t>(i)], want, kParityTol)
          << rows << "x" << cols << " row " << i;
      EXPECT_NEAR(got_naive[static_cast<std::size_t>(i)], want, kParityTol);
    }
    EXPECT_EQ(hoisted.level(), vx.level() - 1);
  }
}

TEST_F(TrainTest, TransposePlanMultipliesByTheTranspose) {
  // Pack X^T's extended diagonals directly (transpose_steps) and check the
  // product equals X^T e — the trainer's gradient path, no repacking.
  sp::Rng rng(405);
  const int rows = 8, cols = 4;  // X is rows x cols; X^T is cols x rows
  std::vector<double> xmat(static_cast<std::size_t>(rows) * cols);
  std::vector<double> e(static_cast<std::size_t>(rows));
  for (auto& v : xmat) v = rng.uniform(-1.0, 1.0);
  for (auto& v : e) v = rng.uniform(-1.0, 1.0);

  std::vector<int> fwd;
  for (int s = -(rows - 1); s <= cols - 1; ++s) fwd.push_back(s);
  const std::vector<int> tsteps = fhe::DiagMatVecPlan::transpose_steps(fwd);
  const fhe::DiagMatVecPlan plan = fhe::DiagMatVecPlan::group(
      tsteps, cols, rows, fhe::DiagMatVecPlan::best_n1(tsteps, cols, rows));

  std::vector<double> xt(static_cast<std::size_t>(cols) * rows);
  for (int i = 0; i < rows; ++i)
    for (int j = 0; j < cols; ++j)
      xt[static_cast<std::size_t>(j) * rows + i] = xmat[static_cast<std::size_t>(i) * cols + j];

  const auto gk = rt_->rotation_keys(plan.steps());
  const fhe::EncDiagMatVec enc = fhe::EncDiagMatVec::encrypt(
      rt_->ctx(), rt_->encoder(), rt_->encryptor(), plan, xt, 0, rt_->ctx().scale());
  const std::vector<double> got =
      rt_->decrypt(enc.apply(rt_->evaluator(), rt_->encrypt(e), *gk, rt_->relin_key()));
  for (int j = 0; j < cols; ++j) {
    double want = 0.0;
    for (int i = 0; i < rows; ++i)
      want += xmat[static_cast<std::size_t>(i) * cols + j] * e[static_cast<std::size_t>(i)];
    EXPECT_NEAR(got[static_cast<std::size_t>(j)], want, kParityTol) << "col " << j;
  }
}

// ------------------------------------------------------------ plan budget --

TEST_F(TrainTest, PlanBudgetsLevelsAndDescribes) {
  const train::TrainPlan plan = train::TrainPlan::plan(sgd_config(), rt_->ctx());
  EXPECT_EQ(plan.levels_per_step, 4);  // matvec + deg-3 sigmoid + matvec
  EXPECT_EQ(plan.levels_used, 12);
  EXPECT_EQ(plan.chain_levels, 12);
  ASSERT_EQ(plan.per_step.size(), 3u);
  EXPECT_EQ(plan.per_step[1].label, "sigmoid PAF deg 3");
  EXPECT_EQ(plan.per_step[1].levels, 2);
  EXPECT_FALSE(plan.rotation_steps().empty());

  const std::string desc = plan.describe();
  EXPECT_NE(desc.find("3 iterations of sgd-momentum"), std::string::npos);
  EXPECT_NE(desc.find("12/12 levels"), std::string::npos);
  EXPECT_NE(desc.find("sigmoid deg 3"), std::string::npos);

  train::TrainConfig adam = sgd_config();
  adam.optimizer = train::Optimizer::Adam;
  adam.iterations = 1;
  const train::TrainPlan aplan = train::TrainPlan::plan(adam, rt_->ctx());
  EXPECT_EQ(aplan.levels_per_step, 10);  // + g^2, blend, deg-5 invsqrt, product
  EXPECT_NE(aplan.describe().find("invsqrt deg 5"), std::string::npos);
}

TEST_F(TrainTest, PlanRejectsWithPerStepBreakdown) {
  train::TrainConfig cfg = sgd_config();
  cfg.iterations = 4;  // 16 levels > the chain's 12
  expect_error_containing(
      [&] { train::TrainPlan::plan(cfg, rt_->ctx()); },
      "train: plan needs 16 levels (4 iterations x 4 levels/step) but the "
      "chain has 12");
  expect_error_containing([&] { train::TrainPlan::plan(cfg, rt_->ctx()); },
                          "sigmoid PAF deg 3: 2");
  expect_error_containing(
      [&] { train::TrainPlan::plan(cfg, rt_->ctx()); },
      "use a deeper prime chain, fewer iterations or a shallower PAF");
}

TEST_F(TrainTest, RangeGuardNamesTheViolation) {
  const std::vector<train::MiniBatch> batches = gaussian_batches(8);
  // A sigmoid fitted on [-0.5, 0.5] cannot absorb the second iteration's
  // pre-activations once the first update moved the weights.
  train::TrainConfig cfg = sgd_config();
  cfg.sigmoid_range = 0.5;
  cfg.lr = 4.0;
  const train::TrainPlan narrow = train::TrainPlan::plan(cfg, rt_->ctx());
  expect_error_containing([&] { train::check_sigmoid_range(narrow, batches); },
                          "outside the sigmoid PAF's fitted [-0.5, 0.5]");
  expect_error_containing([&] { train::check_sigmoid_range(narrow, batches); },
                          "wider sigmoid_range");

  // Adam: at t = 1 the bias-corrected vhat is g^2 exactly, so a tiny
  // vhat_max trips the invsqrt-domain guard.
  train::TrainConfig acfg = sgd_config();
  acfg.optimizer = train::Optimizer::Adam;
  acfg.iterations = 1;
  acfg.vhat_max = 0.001;
  const train::TrainPlan aplan = train::TrainPlan::plan(acfg, rt_->ctx());
  expect_error_containing([&] { train::check_sigmoid_range(aplan, batches); },
                          "outside the invsqrt PAF's fitted [0, 0.001]");

  // The real configs pass.
  train::check_sigmoid_range(train::TrainPlan::plan(sgd_config(), rt_->ctx()),
                             batches);
}

// --------------------------------------------------- per-iteration parity --

TEST_F(TrainTest, SgdMomentumTracksThePlaintextMirrorEveryIteration) {
  const train::TrainConfig cfg = sgd_config();
  const std::vector<train::MiniBatch> batches = gaussian_batches(cfg.batch);
  const train::TrainPlan plan = train::TrainPlan::plan(cfg, rt_->ctx());
  train::check_sigmoid_range(plan, batches);
  const train::ReferenceRun ref = train::reference_paf_run(plan, batches);

  train::EncryptedLogReg model(plan, *rt_);
  for (int t = 0; t < cfg.iterations; ++t) {
    model.step(train::EncryptedBatch::pack(
        batches[static_cast<std::size_t>(t) % batches.size()], plan, *rt_));
    const std::vector<double> w = model.weights();
    for (int j = 0; j < cfg.features; ++j)
      EXPECT_NEAR(w[static_cast<std::size_t>(j)],
                  ref.weights_per_iter[static_cast<std::size_t>(t)]
                                      [static_cast<std::size_t>(j)],
                  1e-5)
          << "iteration " << t << " weight " << j;
  }
  EXPECT_EQ(model.iteration(), 3u);

  // The plan's iterations are a hard budget: a fourth step must refuse.
  expect_error_containing(
      [&] { model.step(train::EncryptedBatch::pack(batches[0], plan, *rt_)); },
      "already spent");
}

TEST(TrainAdam, AdamTracksThePlaintextMirrorEveryIteration) {
  // 2 Adam iterations x 10 levels/step need their own 20-level chain.
  smartpaf::FheRuntime rt(CkksParams::for_depth(2048, 20, 40), /*seed=*/98);
  train::TrainConfig cfg;
  cfg.features = 4;
  cfg.batch = 8;
  cfg.iterations = 2;
  cfg.optimizer = train::Optimizer::Adam;
  cfg.lr = 0.25;

  data::TwoGaussianSpec spec;
  const data::TwoGaussianData ds = data::make_two_gaussian(spec);
  const std::vector<train::MiniBatch> batches =
      train::make_batches(data::design_matrix(ds.train), cfg.batch);

  const train::TrainPlan plan = train::TrainPlan::plan(cfg, rt.ctx());
  train::check_sigmoid_range(plan, batches);
  const train::ReferenceRun ref = train::reference_paf_run(plan, batches);

  train::EncryptedLogReg model(plan, rt);
  for (int t = 0; t < cfg.iterations; ++t) {
    model.step(train::EncryptedBatch::pack(
        batches[static_cast<std::size_t>(t) % batches.size()], plan, rt));
    const std::vector<double> w = model.weights();
    for (int j = 0; j < cfg.features; ++j)
      EXPECT_NEAR(w[static_cast<std::size_t>(j)],
                  ref.weights_per_iter[static_cast<std::size_t>(t)]
                                      [static_cast<std::size_t>(j)],
                  1e-4)
          << "iteration " << t << " weight " << j;
  }
}

// ----------------------------------------------------- checkpoint / resume --

TEST_F(TrainTest, CheckpointResumeIsBitIdentical) {
  const train::TrainConfig cfg = sgd_config();
  const std::vector<train::MiniBatch> batches = gaussian_batches(cfg.batch);
  const train::TrainPlan plan = train::TrainPlan::plan(cfg, rt_->ctx());

  std::vector<train::EncryptedBatch> enc;
  for (int t = 0; t < cfg.iterations; ++t)
    enc.push_back(train::EncryptedBatch::pack(
        batches[static_cast<std::size_t>(t) % batches.size()], plan, *rt_));

  train::EncryptedLogReg model(plan, *rt_);
  model.step(enc[0]);
  model.step(enc[1]);

  // Round trip is byte-stable, twice over.
  const std::vector<std::uint8_t> ckpt =
      train::serialize_training_state(model.state());
  train::TrainingState restored = train::deserialize_training_state(ckpt, rt_->ctx());
  EXPECT_EQ(train::serialize_training_state(restored), ckpt);

  // Resume-and-continue reproduces the uninterrupted run bit for bit: the
  // restored ciphertext state is identical, and every homomorphic op is
  // deterministic.
  train::EncryptedLogReg resumed(plan, *rt_, std::move(restored));
  EXPECT_EQ(resumed.iteration(), 2u);
  model.step(enc[2]);
  resumed.step(enc[2]);
  EXPECT_EQ(train::serialize_training_state(model.state()),
            train::serialize_training_state(resumed.state()));
}

TEST_F(TrainTest, RestoreValidatesConfigAndBudget) {
  const train::TrainConfig cfg = sgd_config();
  const std::vector<train::MiniBatch> batches = gaussian_batches(cfg.batch);
  const train::TrainPlan plan = train::TrainPlan::plan(cfg, rt_->ctx());

  train::EncryptedLogReg model(plan, *rt_);
  model.step(train::EncryptedBatch::pack(batches[0], plan, *rt_));
  const std::vector<std::uint8_t> ckpt =
      train::serialize_training_state(model.state());

  // A checkpoint from a different config must not restore.
  train::TrainingState other = train::deserialize_training_state(ckpt, rt_->ctx());
  other.config.lr = 0.125;
  expect_error_containing(
      [&] { train::EncryptedLogReg bad(plan, *rt_, std::move(other)); },
      "checkpoint config does not match");

  // Nor one whose remaining chain cannot cover the steps ahead: claim no
  // step has happened yet while the weights already spent 4 levels.
  train::TrainingState rewound = train::deserialize_training_state(ckpt, rt_->ctx());
  rewound.iteration = 0;
  expect_error_containing(
      [&] { train::EncryptedLogReg bad(plan, *rt_, std::move(rewound)); },
      "levels left");

  // A velocity-less SgdMomentum checkpoint is malformed.
  train::TrainingState stripped = train::deserialize_training_state(ckpt, rt_->ctx());
  stripped.velocity.reset();
  expect_error_containing(
      [&] { train::EncryptedLogReg bad(plan, *rt_, std::move(stripped)); },
      "missing its velocity");
}

// ------------------------------------------------------- data + accuracy --

TEST(TrainData, TwoGaussianGeneratorIsDeterministicAndShaped) {
  data::TwoGaussianSpec spec;
  const data::TwoGaussianData a = data::make_two_gaussian(spec);
  const data::TwoGaussianData b = data::make_two_gaussian(spec);
  EXPECT_EQ(a.train.images.vec(), b.train.images.vec());
  EXPECT_EQ(a.test.labels, b.test.labels);
  EXPECT_EQ(a.train.images.dim(0), spec.train_count);
  EXPECT_EQ(a.train.images.dim(3), spec.features);

  double norm2 = 0.0;
  for (double v : a.direction) norm2 += v * v;
  EXPECT_NEAR(norm2, 1.0, 1e-12);

  const data::DesignMatrix dm = data::design_matrix(a.train);
  EXPECT_EQ(dm.rows, spec.train_count);
  EXPECT_EQ(dm.cols, spec.features);
  const std::vector<train::MiniBatch> batches = train::make_batches(dm, 24);
  EXPECT_EQ(batches.size(), 2u);  // 64 rows -> two full 24-row batches
  EXPECT_EQ(batches[0].x.size(), 24u * 4u);

  // A different seed draws a different task.
  data::TwoGaussianSpec other = spec;
  other.seed += 1;
  EXPECT_NE(data::make_two_gaussian(other).train.images.vec(), a.train.images.vec());
}

TEST_F(TrainTest, EncryptedAccuracyWithinTwoPercentOfOracle) {
  train::TrainConfig cfg = sgd_config();
  cfg.batch = 16;
  const data::TwoGaussianData ds = data::make_two_gaussian(data::TwoGaussianSpec{});
  const data::DesignMatrix test = data::design_matrix(ds.test);
  const std::vector<train::MiniBatch> batches =
      train::make_batches(data::design_matrix(ds.train), cfg.batch);

  const train::TrainPlan plan = train::TrainPlan::plan(cfg, rt_->ctx());
  train::check_sigmoid_range(plan, batches);
  train::EncryptedLogReg model(plan, *rt_);
  for (int t = 0; t < cfg.iterations; ++t)
    model.step(train::EncryptedBatch::pack(
        batches[static_cast<std::size_t>(t) % batches.size()], plan, *rt_));

  const train::OracleRun oracle = train::optim_oracle_run(plan, batches);
  const double enc_acc = train::binary_accuracy(model.weights(), test);
  const double oracle_acc =
      train::binary_accuracy(oracle.weights_per_iter.back(), test);
  EXPECT_GE(enc_acc, oracle_acc - 0.02)
      << "encrypted " << enc_acc << " vs oracle " << oracle_acc;
}

}  // namespace
