#include <gtest/gtest.h>

#include <cmath>

#include "approx/composite.h"
#include "approx/distribution.h"
#include "approx/fit.h"
#include "approx/polynomial.h"
#include "approx/remez.h"

namespace {

using sp::approx::CompositePaf;
using sp::approx::Polynomial;
using sp::approx::Sample;

TEST(Polynomial, HornerMatchesDirectEvaluation) {
  const Polynomial p({1.0, -2.0, 0.5, 3.0});
  for (double x : {-2.0, -0.5, 0.0, 0.3, 1.7}) {
    const double direct = 1.0 - 2.0 * x + 0.5 * x * x + 3.0 * x * x * x;
    EXPECT_NEAR(p(x), direct, 1e-12);
  }
}

TEST(Polynomial, DegreeAndCoeffAccess) {
  const Polynomial p({0.0, 1.0, 0.0, -0.5});
  EXPECT_EQ(p.degree(), 3);
  EXPECT_DOUBLE_EQ(p.coeff(3), -0.5);
  EXPECT_DOUBLE_EQ(p.coeff(7), 0.0);
  EXPECT_DOUBLE_EQ(p.coeff(-1), 0.0);
}

TEST(Polynomial, DerivativeMatchesFiniteDifference) {
  const Polynomial p({0.3, -1.0, 2.0, 0.7, -0.2});
  const double h = 1e-6;
  for (double x : {-1.0, -0.2, 0.0, 0.9}) {
    const double fd = (p(x + h) - p(x - h)) / (2 * h);
    EXPECT_NEAR(p.derivative_at(x), fd, 1e-5);
  }
}

TEST(Polynomial, DerivativePolynomialAgreesWithPointwise) {
  const Polynomial p({1.0, 2.0, 3.0, 4.0});
  const Polynomial d = p.derivative();
  for (double x : {-1.5, 0.0, 2.0}) EXPECT_NEAR(d(x), p.derivative_at(x), 1e-12);
}

TEST(Polynomial, ArithmeticOperators) {
  const Polynomial a({1.0, 2.0});
  const Polynomial b({0.0, -1.0, 3.0});
  const Polynomial sum = a + b;
  EXPECT_DOUBLE_EQ(sum.coeff(0), 1.0);
  EXPECT_DOUBLE_EQ(sum.coeff(1), 1.0);
  EXPECT_DOUBLE_EQ(sum.coeff(2), 3.0);
  const Polynomial prod = a * b;
  // (1 + 2x)(-x + 3x^2) = -x + 3x^2 - 2x^2 + 6x^3 = -x + x^2 + 6x^3
  EXPECT_DOUBLE_EQ(prod.coeff(1), -1.0);
  EXPECT_DOUBLE_EQ(prod.coeff(2), 1.0);
  EXPECT_DOUBLE_EQ(prod.coeff(3), 6.0);
}

TEST(Polynomial, SymbolicComposeMatchesNestedEvaluation) {
  const Polynomial inner({0.0, 1.5, 0.0, -0.5});
  const Polynomial outer({0.0, 2.0, 0.0, -1.0});
  const Polynomial composed = outer.compose(inner);
  for (double x : {-0.9, -0.3, 0.0, 0.4, 1.0})
    EXPECT_NEAR(composed(x), outer(inner(x)), 1e-9);
}

TEST(Polynomial, OddDetection) {
  EXPECT_TRUE(Polynomial({0.0, 1.5, 0.0, -0.5}).is_odd());
  EXPECT_FALSE(Polynomial({0.1, 1.5, 0.0, -0.5}).is_odd());
  EXPECT_FALSE(Polynomial({0.0, 1.5, 0.2, -0.5}).is_odd());
}

TEST(Composite, EvalOrderIsPaperNotation) {
  // "f ∘ g" applies f first, g last (Eq. 8): stages [f, g] -> g(f(x)).
  const Polynomial f({0.0, 2.0});        // 2x
  const Polynomial g({1.0, 0.0, 1.0});   // 1 + x^2
  const CompositePaf c("test", {f, g});
  EXPECT_NEAR(c(3.0), 1.0 + 36.0, 1e-12);  // g(f(3)) = g(6) = 37
}

TEST(Composite, DegreeSumAndProduct) {
  const CompositePaf c("test", {Polynomial({0.0, 1.0, 0.0, 1.0}),
                                Polynomial({0.0, 1.0, 0.0, 0.0, 0.0, 1.0})});
  EXPECT_EQ(c.degree_sum(), 8);
  EXPECT_EQ(c.degree_product(), 15);
}

TEST(Composite, FlattenLoadRoundTrip) {
  CompositePaf c("test", {Polynomial({0.0, 1.5, 0.0, -0.5}), Polynomial({0.0, 2.0})});
  auto flat = c.flatten_coeffs();
  ASSERT_EQ(flat.size(), 6u);
  flat[1] = 9.0;
  c.load_coeffs(flat);
  EXPECT_DOUBLE_EQ(c.stages()[0].coeff(1), 9.0);
}

TEST(Composite, BackwardMatchesFiniteDifferenceInput) {
  CompositePaf c("test", {Polynomial({0.0, 1.5, 0.0, -0.5}),
                          Polynomial({0.0, 2.1, 0.0, -1.3})});
  CompositePaf::Tape tape;
  const double x = 0.37;
  c.forward(x, tape);
  std::vector<double> cg(static_cast<std::size_t>(c.num_coeffs()), 0.0);
  const double dx = c.backward(tape, 1.0, cg);
  const double h = 1e-6;
  EXPECT_NEAR(dx, (c(x + h) - c(x - h)) / (2 * h), 1e-6);
}

TEST(Composite, BackwardMatchesFiniteDifferenceCoeffs) {
  CompositePaf c("test", {Polynomial({0.0, 1.5, 0.0, -0.5}),
                          Polynomial({0.0, 2.1, 0.0, -1.3})});
  const double x = -0.61;
  CompositePaf::Tape tape;
  c.forward(x, tape);
  std::vector<double> cg(static_cast<std::size_t>(c.num_coeffs()), 0.0);
  c.backward(tape, 1.0, cg);
  auto flat = c.flatten_coeffs();
  const double h = 1e-6;
  for (std::size_t k = 0; k < flat.size(); ++k) {
    auto up = flat, dn = flat;
    up[k] += h;
    dn[k] -= h;
    CompositePaf cu = c, cd = c;
    cu.load_coeffs(up);
    cd.load_coeffs(dn);
    EXPECT_NEAR(cg[k], (cu(x) - cd(x)) / (2 * h), 1e-5) << "coeff " << k;
  }
}

TEST(Composite, PafReluApproximatesRelu) {
  // A crude sign approximation still yields a recognisable ReLU shape.
  const CompositePaf c("f1", {Polynomial({0.0, 1.5, 0.0, -0.5})});
  EXPECT_NEAR(sp::approx::paf_relu(c, 1.0), 1.0, 1e-9);
  EXPECT_NEAR(sp::approx::paf_relu(c, -1.0), 0.0, 1e-9);
  EXPECT_NEAR(sp::approx::paf_relu(c, 0.0), 0.0, 1e-12);
}

TEST(Composite, PafMaxIsSymmetricallyWrong) {
  const CompositePaf c("f1", {Polynomial({0.0, 1.5, 0.0, -0.5})});
  // Exact when |a-b| = 1 (sign(±1) exact for f1).
  EXPECT_NEAR(sp::approx::paf_max(c, 1.0, 0.0), 1.0, 1e-9);
  EXPECT_NEAR(sp::approx::paf_max(c, 0.0, 1.0), 1.0, 1e-9);
}

TEST(Fit, ExactRecoveryOfPolynomialData) {
  const Polynomial truth({0.5, -1.0, 0.0, 2.0});
  std::vector<Sample> s;
  for (int i = 0; i < 60; ++i) {
    const double x = -1.0 + 2.0 * i / 59.0;
    s.push_back({x, truth(x), 1.0});
  }
  const Polynomial fit = sp::approx::lsq_fit(s, 3, /*odd_only=*/false);
  for (int k = 0; k <= 3; ++k) EXPECT_NEAR(fit.coeff(k), truth.coeff(k), 1e-8);
}

TEST(Fit, OddOnlyBasisStaysOdd) {
  std::vector<Sample> s;
  for (int i = 0; i < 200; ++i) {
    const double x = -1.0 + 2.0 * i / 199.0;
    s.push_back({x, std::tanh(4 * x), 1.0});
  }
  const Polynomial fit = sp::approx::lsq_fit(s, 7, /*odd_only=*/true);
  EXPECT_TRUE(fit.is_odd(1e-9));
}

TEST(Fit, WeightsBiasTheFit) {
  // Heavily weight the right half; a general (non-odd) fit must be better
  // there. (An odd fit has symmetric error magnitude by construction.)
  std::vector<Sample> s;
  for (int i = 0; i < 400; ++i) {
    const double x = -1.0 + 2.0 * i / 399.0;
    s.push_back({x, x > 0 ? 1.0 : -1.0, x > 0 ? 100.0 : 1.0});
  }
  const Polynomial fit = sp::approx::lsq_fit(s, 5, /*odd_only=*/false);
  double err_pos = 0, err_neg = 0;
  for (int i = 1; i <= 50; ++i) {
    const double t = 0.3 + 0.7 * i / 50.0;
    err_pos += std::abs(fit(t) - 1.0);
    err_neg += std::abs(fit(-t) + 1.0);
  }
  EXPECT_LT(err_pos, err_neg);
}

TEST(Fit, SolveLinearSolvesRandomSystem) {
  const std::vector<long double> a = {2.0L, 1.0L, -1.0L,  //
                                      -3.0L, -1.0L, 2.0L, //
                                      -2.0L, 1.0L, 2.0L};
  const std::vector<long double> b = {8.0L, -11.0L, -3.0L};
  const auto x = sp::approx::solve_linear(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-10);
  EXPECT_NEAR(x[1], 3.0, 1e-10);
  EXPECT_NEAR(x[2], -1.0, 1e-10);
}

class RemezDegree : public ::testing::TestWithParam<int> {};

TEST_P(RemezDegree, ErrorDecreasesAndEquioscillates) {
  const int degree = GetParam();
  const auto r = sp::approx::remez_sign(degree, 0.1);
  EXPECT_GT(r.minimax_error, 0.0);
  EXPECT_LT(r.minimax_error, 1.0);
  EXPECT_TRUE(r.poly.is_odd(1e-9));
  // Verify the achieved max error on a fine grid is close to the reported E.
  double worst = 0.0;
  for (int i = 0; i <= 4000; ++i) {
    const double x = 0.1 + 0.9 * i / 4000.0;
    worst = std::max(worst, std::abs(r.poly(x) - 1.0));
  }
  EXPECT_NEAR(worst, r.minimax_error, 0.05 * r.minimax_error + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Degrees, RemezDegree, ::testing::Values(3, 5, 7, 9, 13));

TEST(Remez, HigherDegreeIsMoreAccurate) {
  const auto r5 = sp::approx::remez_sign(5, 0.05);
  const auto r13 = sp::approx::remez_sign(13, 0.05);
  EXPECT_LT(r13.minimax_error, r5.minimax_error);
}

TEST(Distribution, RunningStatsAndReservoir) {
  sp::approx::DistributionProfile prof(1024);
  for (int i = 0; i < 5000; ++i) prof.record(static_cast<double>(i % 100) - 50.0);
  EXPECT_EQ(prof.count(), 5000u);
  EXPECT_DOUBLE_EQ(prof.min(), -50.0);
  EXPECT_DOUBLE_EQ(prof.max(), 49.0);
  EXPECT_DOUBLE_EQ(prof.abs_max(), 50.0);
  EXPECT_EQ(prof.reservoir().size(), 1024u);
  EXPECT_NEAR(prof.quantile(0.5), -0.5, 5.0);
}

TEST(Distribution, HistogramNormalized) {
  sp::approx::DistributionProfile prof(4096);
  for (int i = 0; i < 4096; ++i) prof.record(i % 2 == 0 ? -1.0 : 1.0);
  const auto h = prof.histogram(4);
  double total = 0;
  for (double v : h) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(h.front(), 0.4);
  EXPECT_GT(h.back(), 0.4);
}

}  // namespace
