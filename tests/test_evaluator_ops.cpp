// Evaluator-level correctness net for the parallel backend work: plaintext
// parity for the elementwise ops and rotations, bit-exact equivalence of
// hoisted vs naive rotation, and lazy-relinearization BSGS parity + savings
// vs the eager schedule.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "smartpaf/fhe_deploy.h"

namespace {

using namespace sp;
using namespace sp::fhe;

/// 2^-20: parity budget vs the plaintext reference, as max-abs error
/// relative to max(1, ||reference||_inf).
const double kParityTol = std::ldexp(1.0, -20);

class EvaluatorOpsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rt_ = std::make_unique<smartpaf::FheRuntime>(CkksParams::for_depth(4096, 6, 40),
                                                 /*seed=*/2026);
    gk_ = std::make_unique<GaloisKeys>();
    // Snapshot of the runtime's deduplicated rotation-key store (the
    // galois_keys() shim was removed; rotation_keys is the one key surface).
    *gk_ = *rt_->rotation_keys({1, -1, 2, -2, 8});
  }
  static void TearDownTestSuite() {
    gk_.reset();
    rt_.reset();
  }

  static std::vector<double> random_vec(std::uint64_t seed, double lo = -1.0,
                                        double hi = 1.0) {
    sp::Rng rng(seed);
    std::vector<double> v(rt_->ctx().slot_count());
    for (auto& x : v) x = rng.uniform(lo, hi);
    return v;
  }

  static double rel_error(const std::vector<double>& got,
                          const std::vector<double>& ref) {
    double worst = 0.0, norm = 1.0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      norm = std::max(norm, std::abs(ref[i]));
      worst = std::max(worst, std::abs(got[i] - ref[i]));
    }
    return worst / norm;
  }

  /// Bit-exact ciphertext comparison: same structure and identical residues.
  static bool bit_identical(const Ciphertext& a, const Ciphertext& b) {
    if (a.size() != b.size() || a.q_count() != b.q_count()) return false;
    if (a.scale != b.scale) return false;
    for (int p = 0; p < a.size(); ++p) {
      const RnsPoly& pa = a.parts[static_cast<std::size_t>(p)];
      const RnsPoly& pb = b.parts[static_cast<std::size_t>(p)];
      if (pa.row_count() != pb.row_count() || pa.is_ntt() != pb.is_ntt()) return false;
      for (int r = 0; r < pa.row_count(); ++r)
        for (std::size_t j = 0; j < pa.n(); ++j)
          if (pa.row(r)[j] != pb.row(r)[j]) return false;
    }
    return true;
  }

  static approx::Polynomial dense_poly(int degree, std::uint64_t seed) {
    sp::Rng rng(seed);
    std::vector<double> c(static_cast<std::size_t>(degree) + 1);
    for (auto& v : c) v = rng.uniform(-1.0, 1.0) / (degree + 1);
    if (std::abs(c.back()) < 1e-3) c.back() = 0.25 / (degree + 1);
    return approx::Polynomial(c);
  }

  static std::unique_ptr<smartpaf::FheRuntime> rt_;
  static std::unique_ptr<GaloisKeys> gk_;
};

std::unique_ptr<smartpaf::FheRuntime> EvaluatorOpsTest::rt_;
std::unique_ptr<GaloisKeys> EvaluatorOpsTest::gk_;

TEST_F(EvaluatorOpsTest, AddSubNegateParity) {
  const auto va = random_vec(11), vb = random_vec(12);
  const Ciphertext ca = rt_->encrypt(va), cb = rt_->encrypt(vb);
  Evaluator& ev = rt_->evaluator();

  std::vector<double> sum(va.size()), diff(va.size()), neg(va.size());
  for (std::size_t i = 0; i < va.size(); ++i) {
    sum[i] = va[i] + vb[i];
    diff[i] = va[i] - vb[i];
    neg[i] = -va[i];
  }
  EXPECT_LT(rel_error(rt_->decrypt(ev.add(ca, cb)), sum), kParityTol);
  EXPECT_LT(rel_error(rt_->decrypt(ev.sub(ca, cb)), diff), kParityTol);
  Ciphertext cn = ca;
  ev.negate_inplace(cn);
  EXPECT_LT(rel_error(rt_->decrypt(cn), neg), kParityTol);
}

TEST_F(EvaluatorOpsTest, MultiplyPlainParity) {
  const auto v = random_vec(13);
  Ciphertext ct = rt_->encrypt(v);
  Evaluator& ev = rt_->evaluator();
  ev.multiply_plain_inplace(
      ct, rt_->encoder().encode_scalar(1.75, rt_->ctx().scale(), ct.q_count()));
  ev.rescale_inplace(ct);
  std::vector<double> ref(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) ref[i] = 1.75 * v[i];
  EXPECT_LT(rel_error(rt_->decrypt(ct), ref), kParityTol);
}

TEST_F(EvaluatorOpsTest, RotationParity) {
  const auto v = random_vec(14);
  const Ciphertext ct = rt_->encrypt(v);
  const std::size_t slots = v.size();
  for (int steps : {1, -1, 2, -2, 8}) {
    const Ciphertext r = rt_->evaluator().rotate(ct, steps, *gk_);
    std::vector<double> ref(slots);
    for (std::size_t i = 0; i < slots; ++i)
      ref[i] = v[(i + static_cast<std::size_t>(
                          ((steps % static_cast<int>(slots)) + static_cast<int>(slots)))) %
                 slots];
    EXPECT_LT(rel_error(rt_->decrypt(r), ref), kParityTol) << "steps " << steps;
  }
}

TEST_F(EvaluatorOpsTest, HoistedRotationBitIdenticalToNaive) {
  const auto v = random_vec(15);
  const Ciphertext ct = rt_->encrypt(v);
  Evaluator& ev = rt_->evaluator();
  const std::vector<int> fan = {1, -1, 2, -2, 8};

  ev.counters.reset();
  std::vector<Ciphertext> naive;
  for (int s : fan) naive.push_back(ev.rotate(ct, s, *gk_));
  const std::size_t naive_fwd = ev.counters.ntts_forward;

  ev.counters.reset();
  const std::vector<Ciphertext> hoisted = ev.rotate_hoisted(ct, fan, *gk_);
  const std::size_t hoisted_fwd = ev.counters.ntts_forward;
  EXPECT_EQ(ev.counters.hoisted_rotations.load(), fan.size());

  ASSERT_EQ(naive.size(), hoisted.size());
  for (std::size_t i = 0; i < fan.size(); ++i)
    EXPECT_TRUE(bit_identical(naive[i], hoisted[i])) << "steps " << fan[i];

  // The whole point of hoisting: strictly fewer forward NTTs for the fan.
  EXPECT_LT(hoisted_fwd, naive_fwd);
}

TEST_F(EvaluatorOpsTest, HoistedSingleRotationAlsoSavesNtts) {
  const auto v = random_vec(16);
  const Ciphertext ct = rt_->encrypt(v);
  Evaluator& ev = rt_->evaluator();

  ev.counters.reset();
  const Ciphertext naive = ev.rotate(ct, 2, *gk_);
  const std::size_t naive_fwd = ev.counters.ntts_forward;

  ev.counters.reset();
  const HoistedDecomposition h = ev.hoist(ct);
  const Ciphertext hoisted = ev.rotate_hoisted(h, 2, *gk_);
  const std::size_t hoisted_fwd = ev.counters.ntts_forward;

  EXPECT_TRUE(bit_identical(naive, hoisted));
  // The c0 path turns into a pure NTT-domain permutation.
  EXPECT_LT(hoisted_fwd, naive_fwd);
}

TEST_F(EvaluatorOpsTest, GaloisNttPermutationMatchesCoefficientAutomorphism) {
  // The identity hoisting rests on: applying X -> X^g in the NTT domain is
  // the pure slot permutation of galois_ntt_table, bit for bit.
  const auto v = random_vec(24);
  const Ciphertext ct = rt_->encrypt(v);
  for (int steps : {1, -2, 8}) {
    const u64 g = rt_->evaluator().galois_element(steps);
    RnsPoly coeff = ct.parts[1];
    coeff.from_ntt();
    RnsPoly via_coeff = apply_galois(coeff, g);
    via_coeff.to_ntt();
    const RnsPoly via_ntt = apply_galois_ntt(ct.parts[1], g);
    for (int r = 0; r < via_ntt.row_count(); ++r)
      for (std::size_t j = 0; j < via_ntt.n(); ++j)
        ASSERT_EQ(via_ntt.row(r)[j], via_coeff.row(r)[j])
            << "steps " << steps << " row " << r << " slot " << j;
  }
}

TEST_F(EvaluatorOpsTest, HoistedRotationByZeroReturnsInput) {
  const auto v = random_vec(17);
  const Ciphertext ct = rt_->encrypt(v);
  const HoistedDecomposition h = rt_->evaluator().hoist(ct);
  const Ciphertext r = rt_->evaluator().rotate_hoisted(h, 0, *gk_);
  EXPECT_TRUE(bit_identical(ct, r));
}

TEST_F(EvaluatorOpsTest, ThreePartAwareAddInplace) {
  const auto va = random_vec(18), vb = random_vec(19), vc = random_vec(20);
  Evaluator& ev = rt_->evaluator();
  const Ciphertext ca = rt_->encrypt(va), cb = rt_->encrypt(vb);
  Ciphertext cc = rt_->encrypt(vc);

  // 3-part product + 2-part addend accumulate without relinearizing...
  Ciphertext acc = ev.multiply_no_relin(ca, cb);
  ev.rescale_inplace(acc);
  Ciphertext addend = cc;
  ev.drop_to_level(addend, acc.level());
  addend.scale = acc.scale;  // both ~Delta; adjust exact tracking
  ev.add_inplace(acc, addend);
  EXPECT_EQ(acc.size(), 3);

  // ...and one relinearization at the join lands on the right plaintext.
  ev.relinearize_inplace(acc, rt_->relin_key());
  std::vector<double> ref(va.size());
  for (std::size_t i = 0; i < va.size(); ++i) ref[i] = va[i] * vb[i] + vc[i];
  // The scale fudge above costs a little precision; 1e-4 is plenty to show
  // the 3-part accumulation is algebraically right.
  EXPECT_LT(rel_error(rt_->decrypt(acc), ref), 1e-4);
}

/// Lazy-relin BSGS vs the eager (PR 1) path: identical plaintext parity,
/// strictly fewer relinearizations for dense degrees >= 8.
class LazyRelinDegree : public EvaluatorOpsTest,
                        public ::testing::WithParamInterface<int> {};

TEST_P(LazyRelinDegree, MatchesEagerWithFewerRelins) {
  const int degree = GetParam();
  const approx::Polynomial p = dense_poly(degree, 300 + static_cast<std::uint64_t>(degree));
  const auto inputs = random_vec(21);
  const Ciphertext ct = rt_->encrypt(inputs);
  PafEvaluator pe(rt_->ctx(), rt_->encoder(), rt_->relin_key(),
                  PafEvaluator::Strategy::BSGS);

  pe.set_lazy_relin(false);
  EvalStats eager;
  const Ciphertext out_eager = pe.eval_poly(rt_->evaluator(), ct, p, &eager);

  pe.set_lazy_relin(true);
  EvalStats lazy;
  const Ciphertext out_lazy = pe.eval_poly(rt_->evaluator(), ct, p, &lazy);

  std::vector<double> ref(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) ref[i] = p(inputs[i]);
  EXPECT_LT(rel_error(rt_->decrypt(out_eager), ref), kParityTol) << "degree " << degree;
  EXPECT_LT(rel_error(rt_->decrypt(out_lazy), ref), kParityTol) << "degree " << degree;

  // Same schedule (mults and levels), never more relinearizations — and
  // strictly fewer from degree 9 up. Dense degree 8 is the merge wall: its
  // minimal-mult BSGS plan has exactly one interior product (x^4 * block),
  // so there is no second deferred product to share a join with, and lazy
  // provably equals eager there (mirroring the degree-7 depth wall of PR 1).
  EXPECT_EQ(lazy.ct_mults, eager.ct_mults);
  EXPECT_EQ(out_lazy.level(), out_eager.level());
  EXPECT_EQ(eager.relins, eager.ct_mults);
  EXPECT_EQ(eager.relins_deferred, 0);
  EXPECT_GT(lazy.relins_deferred, 0) << "degree " << degree;
  EXPECT_LE(lazy.relins, eager.relins) << "degree " << degree;
  if (degree >= 9) {
    EXPECT_LT(lazy.relins, eager.relins) << "degree " << degree;
  }
  // Every deferred relin resolves at some join (or was merged away).
  EXPECT_GE(lazy.relins + lazy.relins_deferred, lazy.ct_mults);
}

INSTANTIATE_TEST_SUITE_P(DenseDegrees, LazyRelinDegree,
                         ::testing::Values(8, 9, 12, 13, 16, 21, 27, 31));

TEST_F(EvaluatorOpsTest, LazyRelinReluParity) {
  // End-to-end PAF-ReLU with the default (lazy) evaluator stays within the
  // deployment error envelope of the eager path.
  // Single odd degree-15 stage: depth 4 + the relu envelope's 2 levels fits
  // the depth-6 chain, and its BSGS plan has joins for lazy relin to merge.
  sp::Rng rng(23);
  std::vector<double> c(16, 0.0);
  for (int k = 1; k <= 15; k += 2) c[static_cast<std::size_t>(k)] = rng.uniform(-1.0, 1.0) / 16.0;
  const approx::CompositePaf paf("deg15", {approx::Polynomial(c)});
  const auto v = random_vec(22, -2.0, 2.0);
  const Ciphertext ct = rt_->encrypt(v);
  PafEvaluator pe(rt_->ctx(), rt_->encoder(), rt_->relin_key());

  pe.set_lazy_relin(false);
  const auto eager = rt_->decrypt(pe.relu(rt_->evaluator(), ct, paf, 2.0));
  pe.set_lazy_relin(true);
  const auto lazy = rt_->decrypt(pe.relu(rt_->evaluator(), ct, paf, 2.0));

  double worst = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i)
    worst = std::max(worst, std::abs(lazy[i] - eager[i]));
  EXPECT_LT(worst, kParityTol);
}

}  // namespace
