// Channel-packed convolution lowering: Conv2dFanPlan index math (fan vs
// channel-offset BSGS), grid layout pack/unpack round trips, the
// split_matmul_blocks column scatter, encrypted parity for single conv
// stages / conv->conv compositions / strided convs / packed batches, the
// LeNet-small zoo model end to end under FHE in single-ciphertext AND
// column-split (multi-ciphertext) layouts at < 2^-20 parity, planner
// rejection paths pinned to their diagnostics, and a seeded randomized
// differential harness over ~50 stage graphs (SMARTPAF_CONV_SEED /
// SMARTPAF_CONV_GRAPHS reproduce any failure).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "fhe/conv2d_fan.h"
#include "models/zoo.h"
#include "nn/container.h"
#include "nn/layers.h"
#include "smartpaf/fhe_deploy.h"
#include "smartpaf/pipeline.h"
#include "smartpaf/pipeline_planner.h"
#include "smartpaf/replace.h"

namespace {

using namespace sp;
using namespace sp::fhe;

const double kParityTol = std::ldexp(1.0, -20);

/// Odd single-stage PAF of the given degree (depth ceil(log2(deg+1))).
approx::CompositePaf test_paf(int deg, std::uint64_t seed) {
  sp::Rng rng(seed);
  std::vector<double> c(static_cast<std::size_t>(deg) + 1, 0.0);
  for (int k = 1; k <= deg; k += 2)
    c[static_cast<std::size_t>(k)] = rng.uniform(-1.0, 1.0) / (2.0 * deg);
  return approx::CompositePaf("deg" + std::to_string(deg), {approx::Polynomial(c)});
}

/// Random [out][in][k][k] kernel with magnitude scaled so conv outputs stay
/// O(1) for O(1) inputs.
std::vector<double> random_kernel(int out_ch, int in_ch, int k, std::uint64_t seed) {
  sp::Rng rng(seed);
  const double a = 1.5 / (k * k * std::sqrt(static_cast<double>(in_ch)));
  std::vector<double> w(static_cast<std::size_t>(out_ch) * in_ch * k * k);
  for (auto& v : w) v = rng.uniform(-a, a);
  return w;
}

std::vector<double> random_values(std::size_t n, std::uint64_t seed) {
  sp::Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

// --------------------------------------------------- plan (pure index math) --

ConvGeom small_geom() {
  ConvGeom g;
  g.in_channels = 2;
  g.out_channels = 2;
  g.height = 4;
  g.width = 4;
  g.kernel = 3;
  g.stride = 1;
  g.ch_stride = 16;
  g.row_stride = 4;
  g.elem_stride = 1;
  return g;
}

TEST(ConvGeom, ValidatesCollisionFreeStrides) {
  ConvGeom g = small_geom();
  EXPECT_NO_THROW(g.validate());
  EXPECT_EQ(g.out_h(), 2);
  EXPECT_EQ(g.extent(2), 2 * 16);

  ConvGeom rows_overlap = g;
  rows_overlap.row_stride = 3;  // (w-1)*elem = 3 == row_stride: columns collide
  EXPECT_THROW(rows_overlap.validate(), sp::Error);

  ConvGeom planes_overlap = g;
  planes_overlap.ch_stride = 15;  // (h-1)*row + (w-1)*elem = 15 == ch_stride
  EXPECT_THROW(planes_overlap.validate(), sp::Error);

  ConvGeom kernel_too_big = g;
  kernel_too_big.kernel = 5;
  EXPECT_THROW(kernel_too_big.validate(), sp::Error);
}

TEST(Conv2dFanPlan, FanModeEnumeratesEveryTermShift) {
  const ConvGeom g = small_geom();
  // All-nonzero 2x2x3x3 kernel: span(c) = {-1, 0, 1}, 9 taps each.
  std::vector<double> w(2 * 2 * 3 * 3, 0.25);
  const auto plan = Conv2dFanPlan::make(w, g, 0, 2, 0, 2, /*n1=*/0);
  EXPECT_EQ(plan.n1, 0);
  EXPECT_EQ(plan.terms.size(), 27u);  // 3 offsets x 9 taps
  EXPECT_EQ(plan.mask_mults, 27);
  EXPECT_TRUE(plan.giant_steps.empty());  // pure fan: everything is a baby
  // shift = c*16 + dy*4 + dx; only (0,0,0) needs no rotation.
  EXPECT_EQ(plan.baby_steps.size(), 26u);
  EXPECT_EQ(plan.rotations(), 26);
  for (const ConvTerm& t : plan.terms) {
    EXPECT_EQ(t.giant, 0);
    EXPECT_EQ(t.shift, t.c * 16 + t.dy * 4 + t.dx);
  }
}

TEST(Conv2dFanPlan, BsgsModeSharesBabiesAcrossChannelGroups) {
  const ConvGeom g = small_geom();
  std::vector<double> w(2 * 2 * 3 * 3, 0.25);
  const auto plan = Conv2dFanPlan::make(w, g, 0, 2, 0, 2, /*n1=*/2);
  // c = -1 -> g = -2, b = 1; c in {0, 1} -> g = 0, b = c. Babies are
  // b*16 + taps: 8 nonzero taps at b = 0 plus 9 at b = 1 = 17; one giant.
  EXPECT_EQ(plan.baby_steps.size(), 17u);
  EXPECT_EQ(plan.giant_steps, (std::vector<int>{-32}));
  EXPECT_EQ(plan.rotations(), 18);
  EXPECT_LT(plan.rotations(), 26);  // strictly fewer than the fan
  // Terms arrive grouped by giant, ascending, with every baby in the fan.
  int prev = plan.terms.front().giant;
  for (const ConvTerm& t : plan.terms) {
    EXPECT_GE(t.giant, prev);
    prev = t.giant;
    EXPECT_TRUE(t.giant == 0 || t.giant == -32);
    const int baby = t.shift - t.giant;
    EXPECT_TRUE(baby == 0 ||
                std::find(plan.baby_steps.begin(), plan.baby_steps.end(), baby) !=
                    plan.baby_steps.end())
        << "baby " << baby;
  }
}

TEST(Conv2dFanPlan, SkipsAllZeroTerms) {
  const ConvGeom g = small_geom();
  // Depthwise identity-ish kernel: only (oc == ic, dy = dx = 0) nonzero.
  std::vector<double> w(2 * 2 * 3 * 3, 0.0);
  w[0] = 1.0;                  // oc 0, ic 0, tap (0,0)
  w[(1 * 2 + 1) * 9] = 1.0;    // oc 1, ic 1, tap (0,0)
  const auto plan = Conv2dFanPlan::make(w, g, 0, 2, 0, 2, /*n1=*/0);
  EXPECT_EQ(plan.terms.size(), 1u);  // both pairs share offset c = 0, tap 0
  EXPECT_EQ(plan.rotations(), 0);
}

// --------------------------------------------------------- layouts (no FHE) --

TEST(StageLayouts, GridPackUnpackRoundTripsAcrossBlocks) {
  // 5 channels of 3x4 at a 24-slot extent: ch_stride 12 -> 2 channels per
  // block, 3 blocks.
  const auto grid = smartpaf::StageLayout::grid(5, 3, 4, 12, 4, 1, 24);
  EXPECT_EQ(grid.chans_per_block, 2);
  EXPECT_EQ(grid.blocks, 3);
  EXPECT_EQ(grid.width, 60u);
  EXPECT_EQ(grid.describe(), "grid 5x3x4 s(12,4,1) x3ct");

  // Element (c, y, x) lands in block c/2 at (c%2)*12 + y*4 + x.
  EXPECT_EQ(smartpaf::layout_slot(grid, 0), (std::pair<int, std::size_t>{0, 0}));
  // c = 2, y = 1, x = 3 -> logical 2*12 + 1*4 + 3 = 31 -> block 1, slot 7.
  EXPECT_EQ(smartpaf::layout_slot(grid, 31), (std::pair<int, std::size_t>{1, 7}));
  // c = 4 -> block 2, local channel 0.
  EXPECT_EQ(smartpaf::layout_slot(grid, 48), (std::pair<int, std::size_t>{2, 0}));

  const std::vector<double> vals = random_values(60, 5);
  const auto blocks = smartpaf::pack_layout(vals, grid, 24);
  ASSERT_EQ(blocks.size(), 3u);
  const auto back = smartpaf::unpack_layout(blocks, grid);
  ASSERT_EQ(back.size(), vals.size());
  for (std::size_t i = 0; i < vals.size(); ++i) EXPECT_EQ(back[i], vals[i]);
}

TEST(StageLayouts, SplitMatmulBlocksReproducesTheFullProduct) {
  // Grid input spanning 2 blocks; the scattered per-block products summed
  // must equal W x computed on the logical vector.
  const auto grid = smartpaf::StageLayout::grid(3, 2, 2, 4, 2, 1, 8);
  ASSERT_EQ(grid.blocks, 2);
  const int rows = 5;
  smartpaf::MatMulStage mm;
  mm.rows = rows;
  mm.cols = static_cast<int>(grid.width);
  mm.weights = random_values(static_cast<std::size_t>(rows) * grid.width, 7);
  mm.bias = random_values(static_cast<std::size_t>(rows), 8);

  const std::vector<double> x = random_values(grid.width, 9);
  const auto blocks = smartpaf::pack_layout(x, grid, 8);
  const auto split = smartpaf::split_matmul_blocks(mm, grid);
  ASSERT_EQ(split.size(), 2u);
  EXPECT_TRUE(split[1].bias.empty());  // bias rides block 0 only

  std::vector<double> got(static_cast<std::size_t>(rows), 0.0);
  for (std::size_t b = 0; b < split.size(); ++b)
    for (int r = 0; r < rows; ++r) {
      double acc = split[b].bias.empty() ? 0.0 : split[b].bias[static_cast<std::size_t>(r)];
      for (int c = 0; c < split[b].cols; ++c)
        acc += split[b].weights[static_cast<std::size_t>(r) * split[b].cols + c] *
               blocks[b][static_cast<std::size_t>(c)];
      got[static_cast<std::size_t>(r)] += acc;
    }
  for (int r = 0; r < rows; ++r) {
    double want = mm.bias[static_cast<std::size_t>(r)];
    for (int c = 0; c < mm.cols; ++c)
      want += mm.weights[static_cast<std::size_t>(r) * mm.cols + c] *
              x[static_cast<std::size_t>(c)];
    EXPECT_NEAR(got[static_cast<std::size_t>(r)], want, 1e-12) << "row " << r;
  }
}

// --------------------------------------------------------------- FHE fixture --

class ConvFheTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rt_ = std::make_unique<smartpaf::FheRuntime>(CkksParams::for_depth(2048, 12, 40),
                                                 /*seed=*/2032);
  }
  static void TearDownTestSuite() { rt_.reset(); }

  static std::unique_ptr<smartpaf::FheRuntime> rt_;
};

std::unique_ptr<smartpaf::FheRuntime> ConvFheTest::rt_;

/// Encrypts `logical` under the pipeline's input layout, runs the plan, and
/// gathers the output layout's logical elements back out.
std::vector<double> run_logical(smartpaf::FheRuntime& rt,
                                const smartpaf::FhePipeline& pipe,
                                const smartpaf::Plan& plan,
                                const std::vector<double>& logical) {
  const std::size_t slots = rt.ctx().slot_count();
  const std::size_t extent = plan.pack_stride != 0 ? plan.pack_stride : slots;
  const auto layouts = pipe.stage_layouts(extent);
  const auto packed = smartpaf::pack_layout(logical, layouts.front().first, slots);
  std::vector<Ciphertext> in;
  in.reserve(packed.size());
  for (const auto& b : packed) in.push_back(rt.encrypt(b));
  const auto out = pipe.run_blocks(rt, plan, in);
  std::vector<std::vector<double>> dec;
  dec.reserve(out.size());
  for (const auto& ct : out) dec.push_back(rt.decrypt(ct));
  return smartpaf::unpack_layout(dec, layouts.back().second);
}

/// Plaintext mirror on the LOGICAL vector: reference() at an extent large
/// enough that every layout is single-block, gathered back to logical
/// order. Layout-independent by construction, so it also mirrors
/// multi-ciphertext runs.
std::vector<double> reference_logical(const smartpaf::FhePipeline& pipe,
                                      const std::vector<double>& logical,
                                      std::size_t big_extent = 8192) {
  const auto layouts = pipe.stage_layouts(big_extent);
  const auto packed = smartpaf::pack_layout(logical, layouts.front().first, big_extent);
  const auto ref = pipe.reference(packed.at(0));
  const auto& out = layouts.back().second;
  std::vector<double> gathered(out.width);
  for (std::size_t i = 0; i < out.width; ++i)
    gathered[i] = ref[smartpaf::layout_slot(out, i).second];
  return gathered;
}

double worst_abs_diff(const std::vector<double>& a, const std::vector<double>& b) {
  double worst = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

TEST_F(ConvFheTest, SingleConvStageParityVsReference) {
  const int c_in = 2, c_out = 3, img = 8, k = 3;
  std::vector<double> bias = random_values(static_cast<std::size_t>(c_out), 21);
  const auto pipe = smartpaf::FhePipeline::builder()
                        .input_grid({c_in, img, img})
                        .conv(c_in, c_out, img, img, k, 1,
                              random_kernel(c_out, c_in, k, 20), bias)
                        .build();
  const auto plan =
      smartpaf::Planner::plan(pipe, rt_->ctx(), smartpaf::CostModel::heuristic());
  EXPECT_EQ(plan.levels_used, 1);
  EXPECT_GE(plan.stages[0].conv_n1, 0);
  EXPECT_EQ(plan.stages[0].layout_in.describe(), "grid 2x8x8 s(64,8,1)");
  EXPECT_EQ(plan.stages[0].layout_out.describe(), "grid 3x6x6 s(64,8,1)");

  const std::vector<double> x = random_values(static_cast<std::size_t>(c_in) * img * img, 22);
  const auto got = run_logical(*rt_, pipe, plan, x);
  const auto want = reference_logical(pipe, x);
  ASSERT_EQ(got.size(), want.size());
  EXPECT_LT(worst_abs_diff(got, want), kParityTol);
}

TEST_F(ConvFheTest, StridedConvComposesWithoutRepacking) {
  // conv s2 leaves a strided grid (row 18, elem 2); the second conv runs
  // directly on it — no compaction stage in between.
  const auto pipe = smartpaf::FhePipeline::builder()
                        .input_grid({1, 9, 9})
                        .conv(1, 2, 9, 9, 3, 2, random_kernel(2, 1, 3, 30))
                        .conv(2, 2, 4, 4, 3, 1, random_kernel(2, 2, 3, 31),
                              random_values(2, 32))
                        .build();
  const auto plan =
      smartpaf::Planner::plan(pipe, rt_->ctx(), smartpaf::CostModel::heuristic());
  EXPECT_EQ(plan.levels_used, 2);
  EXPECT_EQ(plan.stages[0].layout_out.describe(), "grid 2x4x4 s(81,18,2)");
  EXPECT_EQ(plan.stages[1].layout_out.describe(), "grid 2x2x2 s(81,18,2)");

  const std::vector<double> x = random_values(81, 33);
  const auto got = run_logical(*rt_, pipe, plan, x);
  const auto want = reference_logical(pipe, x);
  EXPECT_LT(worst_abs_diff(got, want), kParityTol);
}

TEST_F(ConvFheTest, ConvOpCountsMatchThePlanAndBeatTheNaiveFan) {
  // 8 channels: the BSGS channel split must rotate strictly less than the
  // naive per-term fan — the whole point of the diagonal-style grouping.
  const int ch = 8, img = 10, k = 3;
  const auto pipe = smartpaf::FhePipeline::builder()
                        .input_grid({ch, img, img})
                        .conv(ch, ch, img, img, k, 1, random_kernel(ch, ch, k, 40))
                        .build();

  const auto plan =
      smartpaf::Planner::plan(pipe, rt_->ctx(), smartpaf::CostModel::heuristic());
  smartpaf::PlanOptions naive_opts;
  naive_opts.force_conv_n1 = 0;
  naive_opts.force_hoist = false;
  const auto naive = smartpaf::Planner::plan(pipe, rt_->ctx(),
                                             smartpaf::CostModel::heuristic(), naive_opts);
  EXPECT_GT(plan.stages[0].conv_n1, 0);
  EXPECT_EQ(naive.stages[0].conv_n1, 0);
  EXPECT_LT(plan.stages[0].rotation_steps.size() + plan.stages[0].giant_steps.size(),
            naive.stages[0].rotation_steps.size());
  EXPECT_NE(plan.describe().find("conv bsgs"), std::string::npos);
  EXPECT_NE(naive.describe().find("conv fan"), std::string::npos);

  const std::vector<double> x =
      random_values(static_cast<std::size_t>(ch) * img * img, 41);
  Evaluator& ev = rt_->evaluator();
  for (const auto* p : {&plan, &naive}) {
    const OpCounters before = ev.counters;
    const auto got = run_logical(*rt_, pipe, *p, x);
    const OpCounters delta = ev.counters.delta_since(before);
    const auto& sp_ = p->stages[0];
    // Executed schedule == the plan (giants rotate once per pair group, and
    // single-block pipes have exactly one pair, so the union IS the count).
    EXPECT_EQ(delta.rotations.load(),
              sp_.rotation_steps.size() + sp_.giant_steps.size());
    EXPECT_EQ(delta.plain_mults.load(), static_cast<std::size_t>(sp_.diag_mults));
    EXPECT_EQ(delta.rescales.load(), 1u);
    EXPECT_EQ(delta.relins.load(), 0u);
    const auto want = reference_logical(pipe, x);
    EXPECT_LT(worst_abs_diff(got, want), kParityTol);
  }
}

TEST_F(ConvFheTest, PackedConvComputesEveryRequestsWindow) {
  // Two requests packed at a 512-slot stride: conv masks replicate per tile
  // so each request gets its own convolution.
  const int c_in = 2, img = 8, k = 3;
  const std::size_t stride = 512;
  const auto pipe = smartpaf::FhePipeline::builder()
                        .input_grid({c_in, img, img})
                        .conv(c_in, 2, img, img, k, 1, random_kernel(2, c_in, k, 50),
                              random_values(2, 51))
                        .build();
  smartpaf::PlanOptions opts;
  opts.pack_stride = stride;
  const auto plan = smartpaf::Planner::plan(pipe, rt_->ctx(),
                                            smartpaf::CostModel::heuristic(), opts);

  const auto layouts = pipe.stage_layouts(stride);
  const std::size_t slots = rt_->ctx().slot_count();
  std::vector<double> flat(slots, 0.0);
  std::vector<std::vector<double>> per_req;
  for (std::size_t r = 0; r < slots / stride; ++r) {
    per_req.push_back(random_values(static_cast<std::size_t>(c_in) * img * img, 60 + r));
    const auto packed = smartpaf::pack_layout(per_req.back(), layouts.front().first, stride);
    for (std::size_t s = 0; s < stride; ++s) flat[r * stride + s] = packed[0][s];
  }

  const auto got = rt_->decrypt(pipe.run(*rt_, plan, rt_->encrypt(flat)));
  const auto ref = pipe.reference(flat, stride);
  EXPECT_LT(worst_abs_diff(got, ref), kParityTol);
  // Cross-check one request against the layout-independent logical mirror.
  const auto want0 = reference_logical(pipe, per_req[0]);
  const auto& out_layout = layouts.back().second;
  for (std::size_t i = 0; i < out_layout.width; ++i)
    EXPECT_NEAR(got[smartpaf::layout_slot(out_layout, i).second], want0[i], kParityTol);
  const auto want1 = reference_logical(pipe, per_req[1]);
  for (std::size_t i = 0; i < out_layout.width; ++i)
    EXPECT_NEAR(got[stride + smartpaf::layout_slot(out_layout, i).second], want1[i],
                kParityTol);
}

// ---------------------------------------------------------- LeNet-small zoo --

/// Replaces the model's ReLU sites with deg-3 test PAFs and freezes the
/// scales, mirroring the deployment flow (deg-3 keeps two activations plus
/// four conv/matmul levels inside the 12-level chain).
void replace_and_freeze(nn::Model& model, int deg = 3) {
  for (const auto& site : smartpaf::find_nonpoly_sites(model))
    smartpaf::replace_site(model, site, test_paf(deg, 43 + site.index),
                           smartpaf::ScaleMode::Dynamic);
  for (smartpaf::PafLayerBase* p : smartpaf::find_paf_layers(model))
    p->set_static_scale(2.0f);
}

/// Channel-major [C, H, W] image -> (tensor, logical vector) pair.
nn::Tensor image_tensor(const std::vector<double>& logical, int c, int h, int w) {
  nn::Tensor x({1, c, h, w});
  std::size_t i = 0;
  for (int ch = 0; ch < c; ++ch)
    for (int y = 0; y < h; ++y)
      for (int xx = 0; xx < w; ++xx) x.at(0, ch, y, xx) = static_cast<float>(logical[i++]);
  return x;
}

TEST_F(ConvFheTest, LenetSmallLowersEndToEndSingleCiphertext) {
  models::LenetConfig cfg;
  cfg.seed = 6;
  nn::Model model = models::lenet_small(cfg);
  replace_and_freeze(model);

  const auto pipe = smartpaf::FhePipeline::lower(
      model, smartpaf::GridShape{cfg.in_channels, cfg.image, cfg.image});
  // conv1 -> relu -> pool(conv) -> conv2 -> relu -> fc (Flatten is a slot
  // identity on the channel-major grid).
  ASSERT_EQ(pipe.stages().size(), 6u);
  EXPECT_TRUE(std::holds_alternative<smartpaf::ConvStage>(pipe.stages()[0].op));
  EXPECT_TRUE(std::holds_alternative<smartpaf::PafStage>(pipe.stages()[1].op));
  EXPECT_TRUE(std::holds_alternative<smartpaf::ConvStage>(pipe.stages()[2].op));
  EXPECT_TRUE(std::holds_alternative<smartpaf::ConvStage>(pipe.stages()[3].op));
  EXPECT_TRUE(std::holds_alternative<smartpaf::PafStage>(pipe.stages()[4].op));
  EXPECT_TRUE(std::holds_alternative<smartpaf::MatMulStage>(pipe.stages()[5].op));

  const auto plan =
      smartpaf::Planner::plan(pipe, rt_->ctx(), smartpaf::CostModel::heuristic());
  // conv1(1) + deg-3 relu(4) + pool(1) + conv2(1) + relu(4) + fc(1).
  EXPECT_EQ(plan.levels_used, 12);
  const std::string desc = plan.describe();
  EXPECT_NE(desc.find("grid 1x12x12"), std::string::npos) << desc;
  EXPECT_NE(desc.find("grid 4x10x10"), std::string::npos) << desc;
  EXPECT_NE(desc.find("grid 4x3x3"), std::string::npos) << desc;
  EXPECT_NE(desc.find("dense w10"), std::string::npos) << desc;

  const std::vector<double> x =
      random_values(static_cast<std::size_t>(cfg.in_channels) * cfg.image * cfg.image, 70);
  const nn::Tensor expect = model.forward(
      image_tensor(x, cfg.in_channels, cfg.image, cfg.image), /*train=*/false);

  const auto got = run_logical(*rt_, pipe, plan, x);
  ASSERT_EQ(got.size(), static_cast<std::size_t>(cfg.num_classes));
  double worst = 0.0;
  for (int j = 0; j < cfg.num_classes; ++j)
    worst = std::max(worst, std::abs(got[static_cast<std::size_t>(j)] -
                                     static_cast<double>(expect.at(0, j))));
  EXPECT_LT(worst, kParityTol);
}

TEST_F(ConvFheTest, LenetSmallColumnSplitEndToEnd) {
  // 256-slot runtime: the 144-slot channel planes pack one channel per
  // ciphertext, so the 4-channel grid spans 4 column blocks — the conv
  // partial-sums join across blocks and the fc gathers the scattered
  // columns per block.
  smartpaf::FheRuntime rt(CkksParams::for_depth(512, 12, 40), /*seed=*/2033);
  models::LenetConfig cfg;
  cfg.seed = 6;
  nn::Model model = models::lenet_small(cfg);
  replace_and_freeze(model);

  const auto pipe = smartpaf::FhePipeline::lower(
      model, smartpaf::GridShape{cfg.in_channels, cfg.image, cfg.image});
  const auto plan =
      smartpaf::Planner::plan(pipe, rt.ctx(), smartpaf::CostModel::heuristic());
  EXPECT_EQ(plan.levels_used, 12);
  const auto layouts = pipe.stage_layouts(rt.ctx().slot_count());
  EXPECT_EQ(layouts.front().first.blocks, 1);   // 1x12x12 fits one block
  EXPECT_EQ(layouts[0].second.blocks, 4);       // 4 channels, 1 per block
  EXPECT_NE(plan.describe().find("x4ct"), std::string::npos) << plan.describe();

  const std::vector<double> x =
      random_values(static_cast<std::size_t>(cfg.in_channels) * cfg.image * cfg.image, 71);
  const nn::Tensor expect = model.forward(
      image_tensor(x, cfg.in_channels, cfg.image, cfg.image), /*train=*/false);

  const auto got = run_logical(rt, pipe, plan, x);
  ASSERT_EQ(got.size(), static_cast<std::size_t>(cfg.num_classes));
  double worst = 0.0;
  for (int j = 0; j < cfg.num_classes; ++j)
    worst = std::max(worst, std::abs(got[static_cast<std::size_t>(j)] -
                                     static_cast<double>(expect.at(0, j))));
  EXPECT_LT(worst, kParityTol);
}

TEST_F(ConvFheTest, WideDenseMatmulSplitsIntoColumnBlocks) {
  // A 320-wide dense activation at 256 slots splits into 2 column blocks;
  // the matmul joins the per-block partial sums.
  smartpaf::FheRuntime rt(CkksParams::for_depth(512, 4, 40), /*seed=*/2034);
  const int rows = 10, cols = 320;
  const auto pipe =
      smartpaf::FhePipeline::builder()
          .input_width(static_cast<std::size_t>(cols))
          .matmul(rows, cols,
                  random_values(static_cast<std::size_t>(rows) * cols, 80),
                  random_values(static_cast<std::size_t>(rows), 81))
          .build();
  const auto plan =
      smartpaf::Planner::plan(pipe, rt.ctx(), smartpaf::CostModel::heuristic());
  EXPECT_EQ(plan.stages[0].layout_in.blocks, 2);
  EXPECT_EQ(plan.stages[0].layout_out.blocks, 1);
  EXPECT_EQ(plan.stages[0].ops.rescales, 2);  // one per column block

  const std::vector<double> x = random_values(static_cast<std::size_t>(cols), 82);
  const auto got = run_logical(rt, pipe, plan, x);
  const auto want = reference_logical(pipe, x);
  ASSERT_EQ(got.size(), static_cast<std::size_t>(rows));
  EXPECT_LT(worst_abs_diff(got, want), kParityTol);
}

// ------------------------------------------------------- planner rejections --

TEST_F(ConvFheTest, PlannerRejectsWidthMismatchAcrossConvStage) {
  // The second conv declares a 6x6 input but conv1 leaves a 4x10x10 grid.
  const auto pipe = smartpaf::FhePipeline::builder()
                        .input_grid({1, 12, 12})
                        .conv(1, 4, 12, 12, 3, 1, random_kernel(4, 1, 3, 90))
                        .conv(4, 4, 6, 6, 3, 1, random_kernel(4, 4, 3, 91))
                        .build();
  bool rejected = false;
  try {
    smartpaf::Planner::plan(pipe, rt_->ctx(), smartpaf::CostModel::heuristic());
  } catch (const sp::Error& e) {
    rejected = true;
    EXPECT_NE(std::string(e.what()).find("expects input grid 4x6x6"),
              std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(rejected);
}

TEST_F(ConvFheTest, PlannerRejectsChannelLayoutMismatchIntoMatMul) {
  // fc sized for a flattened 4x10x10 = 400 grid, fed 4x5x5 = 100 elements.
  const auto pipe = smartpaf::FhePipeline::builder()
                        .input_grid({4, 5, 5})
                        .matmul(10, 400, random_values(4000, 92))
                        .build();
  bool rejected = false;
  try {
    smartpaf::Planner::plan(pipe, rt_->ctx(), smartpaf::CostModel::heuristic());
  } catch (const sp::Error& e) {
    rejected = true;
    EXPECT_NE(std::string(e.what()).find(
                  "expects input width 400 but the channel-packed layout "
                  "carries 100 elements (4x5x5 grid)"),
              std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(rejected);
}

TEST_F(ConvFheTest, PlannerRejectsLevelOverflowOnDeepLenet) {
  // deg-7 PAFs cost 5 levels each: 1+5+1+1+5+1 = 14 > the 12-level chain.
  models::LenetConfig cfg;
  cfg.seed = 6;
  nn::Model model = models::lenet_small(cfg);
  replace_and_freeze(model, /*deg=*/7);
  const auto pipe = smartpaf::FhePipeline::lower(
      model, smartpaf::GridShape{cfg.in_channels, cfg.image, cfg.image});
  bool rejected = false;
  try {
    smartpaf::Planner::plan(pipe, rt_->ctx(), smartpaf::CostModel::heuristic());
  } catch (const sp::Error& e) {
    rejected = true;
    const std::string what = e.what();
    EXPECT_NE(what.find("pipeline needs 14 levels but the chain has 12"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("use a deeper prime chain or a shallower PAF"),
              std::string::npos);
  }
  EXPECT_TRUE(rejected);
}

TEST_F(ConvFheTest, PlannerRejectsCyclicStagesOnMultiBlockLayouts) {
  // An 8x12x12 grid at 1024 slots spans 2 ciphertexts; window and compact
  // are cyclic over ONE ciphertext and must be rejected, not mis-executed.
  const auto window_pipe = smartpaf::FhePipeline::builder()
                               .input_grid({8, 12, 12})
                               .window({0.5, 0.5})
                               .build();
  bool rejected = false;
  try {
    smartpaf::Planner::plan(window_pipe, rt_->ctx(), smartpaf::CostModel::heuristic());
  } catch (const sp::Error& e) {
    rejected = true;
    EXPECT_NE(std::string(e.what()).find("requires a single-ciphertext dense layout"),
              std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(rejected);

  // Packed batches tile one layout per request — multi-block grids cannot.
  const auto conv_pipe = smartpaf::FhePipeline::builder()
                             .input_grid({8, 12, 12})
                             .conv(8, 8, 12, 12, 3, 1, random_kernel(8, 8, 3, 93))
                             .build();
  smartpaf::PlanOptions packed;
  packed.pack_stride = 1024;
  rejected = false;
  try {
    smartpaf::Planner::plan(conv_pipe, rt_->ctx(), smartpaf::CostModel::heuristic(),
                            packed);
  } catch (const sp::Error& e) {
    rejected = true;
    EXPECT_NE(std::string(e.what()).find("packed batches need single-ciphertext"),
              std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(rejected);
}

// ------------------------------------------------- randomized differential --

std::uint64_t env_u64(const char* name, std::uint64_t dflt) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return dflt;
  return static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
}

int rand_int(sp::Rng& rng, int lo, int hi) {  // inclusive
  return static_cast<int>(rng.randint(lo, hi));
}

/// One randomly generated stage graph, regenerable from its seed alone.
struct GraphSpec {
  std::uint64_t seed = 0;
  int channels = 1, image = 8;
  struct StageSpec {
    enum Kind { Conv, Relu, Fc } kind;
    int out_ch = 0, kernel = 0, stride = 0;  // Conv
    bool bias = false;                       // Conv/Fc
    int rows = 0;                            // Fc
  };
  std::vector<StageSpec> stages;

  std::string describe() const {
    std::ostringstream os;
    os << "grid " << channels << "x" << image << "x" << image << " |";
    for (const auto& s : stages) {
      if (s.kind == StageSpec::Conv)
        os << " conv(out=" << s.out_ch << " k=" << s.kernel << " s=" << s.stride
           << (s.bias ? " +b" : "") << ")";
      else if (s.kind == StageSpec::Relu)
        os << " relu";
      else
        os << " fc(rows=" << s.rows << ")";
    }
    return os.str();
  }
};

GraphSpec make_graph(std::uint64_t seed) {
  sp::Rng rng(seed);
  GraphSpec g;
  g.seed = seed;
  // ~1 in 7 graphs straddle the 1024-slot count (8+ channels of 12x12 =
  // 1152+ elements -> 2 column blocks); those stay shallow to bound time.
  const bool wide = rand_int(rng, 0, 6) == 0;
  g.channels = wide ? 8 : rand_int(rng, 1, 3);
  g.image = wide ? 12 : rand_int(rng, 6, 11);
  const int shape = wide ? rand_int(rng, 0, 1) : rand_int(rng, 0, 3);

  int c = g.channels, h = g.image;
  const auto add_conv = [&](int max_out) {
    GraphSpec::StageSpec s;
    s.kind = GraphSpec::StageSpec::Conv;
    s.kernel = rand_int(rng, 2, 3);
    // Stride 2 only when the strided output stays a whole grid.
    s.stride = (h - s.kernel) % 2 == 0 && rand_int(rng, 0, 2) == 0 ? 2 : 1;
    s.out_ch = wide ? 8 : rand_int(rng, 1, max_out);
    s.bias = rand_int(rng, 0, 1) == 1;
    g.stages.push_back(s);
    c = s.out_ch;
    h = (h - s.kernel) / s.stride + 1;
  };
  const auto add_relu = [&] {
    g.stages.push_back({GraphSpec::StageSpec::Relu, 0, 0, 0, false, 0});
  };

  add_conv(4);
  if (shape >= 1) add_relu();
  if (shape >= 2 && h >= 3) add_conv(3);
  if (shape >= 3) {
    add_relu();
    GraphSpec::StageSpec fc;
    fc.kind = GraphSpec::StageSpec::Fc;
    fc.rows = rand_int(rng, 2, 6);
    fc.bias = true;
    g.stages.push_back(fc);
  }
  return g;
}

/// Builds the pipeline for the first `upto` stages of the spec (the whole
/// graph when upto == stages.size()); weights regenerate deterministically
/// from the spec seed.
smartpaf::FhePipeline build_graph(const GraphSpec& g, std::size_t upto) {
  auto b = smartpaf::FhePipeline::builder();
  b.input_grid({g.channels, g.image, g.image});
  int c = g.channels, h = g.image;
  for (std::size_t i = 0; i < upto; ++i) {
    const auto& s = g.stages[i];
    const std::uint64_t wseed = g.seed * 1000 + i;
    if (s.kind == GraphSpec::StageSpec::Conv) {
      b.conv(c, s.out_ch, h, h, s.kernel, s.stride,
             random_kernel(s.out_ch, c, s.kernel, wseed),
             s.bias ? random_values(static_cast<std::size_t>(s.out_ch), wseed + 1)
                    : std::vector<double>{});
      c = s.out_ch;
      h = (h - s.kernel) / s.stride + 1;
    } else if (s.kind == GraphSpec::StageSpec::Relu) {
      b.paf_relu(test_paf(3, wseed), 2.0);
    } else {
      const int cols = c * h * h;
      b.matmul(s.rows, cols,
               random_values(static_cast<std::size_t>(s.rows) * cols, wseed),
               random_values(static_cast<std::size_t>(s.rows), wseed + 1));
    }
  }
  return b.build();
}

TEST_F(ConvFheTest, RandomizedGraphParitySweep) {
  const std::uint64_t base_seed = env_u64("SMARTPAF_CONV_SEED", 20260808);
  const std::uint64_t graphs = env_u64("SMARTPAF_CONV_GRAPHS", 50);
  for (std::uint64_t i = 0; i < graphs; ++i) {
    const std::uint64_t seed = base_seed + i;
    const GraphSpec g = make_graph(seed);
    const auto pipe = build_graph(g, g.stages.size());
    const auto plan =
        smartpaf::Planner::plan(pipe, rt_->ctx(), smartpaf::CostModel::heuristic());
    const std::vector<double> x = random_values(
        static_cast<std::size_t>(g.channels) * g.image * g.image, seed ^ 0x5eedULL);
    const double worst =
        worst_abs_diff(run_logical(*rt_, pipe, plan, x), reference_logical(pipe, x));
    if (worst < kParityTol) continue;

    // Failure: minimize to the shortest stage prefix that still diverges,
    // then report a one-env-var repro.
    std::size_t min_len = g.stages.size();
    for (std::size_t k = 1; k < g.stages.size(); ++k) {
      const auto prefix = build_graph(g, k);
      const auto pplan = smartpaf::Planner::plan(prefix, rt_->ctx(),
                                                 smartpaf::CostModel::heuristic());
      if (worst_abs_diff(run_logical(*rt_, prefix, pplan, x),
                         reference_logical(prefix, x)) >= kParityTol) {
        min_len = k;
        break;
      }
    }
    GraphSpec minimized = g;
    minimized.stages.resize(min_len);
    EXPECT_LT(worst, kParityTol)
        << "conv graph parity failure (worst |err| = " << worst << ")\n"
        << "  seed " << seed << ": " << g.describe() << "\n"
        << "  minimized to first " << min_len << " stage(s): "
        << minimized.describe() << "\n"
        << "  repro: SMARTPAF_CONV_SEED=" << seed
        << " SMARTPAF_CONV_GRAPHS=1 ./test_conv";
    return;  // one detailed failure beats fifty noisy ones
  }
}

}  // namespace
