// nn::optim + sigmoid-BCE net: finite-difference gradient checks through
// Linear + sigmoid_bce (weights and bias), the sigmoid_bce contract on a
// hand-computed batch, Adam's step-1 bias correction pinned against the
// closed form (mhat = g, vhat = g^2), Sgd-momentum bit-compared with a
// hand-rolled float32 reference including weight decay, and group freezing.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optim.h"

namespace {

using namespace sp;
using nn::Tensor;

/// Mean sigmoid-BCE of a Linear layer on (x, labels) without touching the
/// layer's training cache (forward in eval mode) — the finite-difference
/// probe.
double probe_loss(nn::Linear& lin, const Tensor& x, const std::vector<int>& labels) {
  return nn::sigmoid_bce(lin.forward(x, /*train=*/false), labels).loss;
}

TEST(OptimGrad, FiniteDifferenceThroughLinearAndSigmoidBce) {
  sp::Rng rng(101);
  const int batch = 6, in = 4;
  nn::Linear lin(in, 1, rng, /*bias=*/true);

  Tensor x({batch, in});
  std::vector<int> labels(batch);
  for (int i = 0; i < batch; ++i) {
    labels[static_cast<std::size_t>(i)] = static_cast<int>(rng.randint(0, 1));
    for (int j = 0; j < in; ++j)
      x.at(i, j) = static_cast<float>(rng.uniform(-1.5, 1.5));
  }

  // Analytic gradients: one forward(train) + backward through the loss.
  const nn::LossResult res = nn::sigmoid_bce(lin.forward(x, /*train=*/true), labels);
  lin.backward(res.grad);

  std::vector<nn::Param*> params;
  lin.collect_params(params);
  ASSERT_EQ(params.size(), 2u);  // weight + bias

  const double h = 1e-3;
  for (nn::Param* p : params) {
    for (std::size_t j = 0; j < p->value.numel(); ++j) {
      const float saved = p->value[j];
      p->value[j] = static_cast<float>(saved + h);
      const double up = probe_loss(lin, x, labels);
      p->value[j] = static_cast<float>(saved - h);
      const double down = probe_loss(lin, x, labels);
      p->value[j] = saved;
      const double fd = (up - down) / (2.0 * h);
      EXPECT_NEAR(p->grad[j], fd, 5e-3 * std::max(1.0, std::abs(fd)))
          << p->name << "[" << j << "]";
    }
  }
}

TEST(OptimGrad, SigmoidBceMatchesHandComputedBatch) {
  // z = {0, 2, -2}, y = {1, 0, 1}:
  //   loss_i = log(1 + e^{-|z|}) + max(z, 0) - y z
  Tensor logits({3, 1});
  logits[0] = 0.0f;
  logits[1] = 2.0f;
  logits[2] = -2.0f;
  const std::vector<int> labels = {1, 0, 1};
  const nn::LossResult res = nn::sigmoid_bce(logits, labels);

  const double l0 = std::log(2.0);
  const double l1 = std::log1p(std::exp(-2.0)) + 2.0;
  const double l2 = std::log1p(std::exp(-2.0)) + 2.0;
  EXPECT_NEAR(res.loss, (l0 + l1 + l2) / 3.0, 1e-6);

  const auto sigma = [](double z) { return 1.0 / (1.0 + std::exp(-z)); };
  EXPECT_NEAR(res.grad[0], (sigma(0.0) - 1.0) / 3.0, 1e-6);
  EXPECT_NEAR(res.grad[1], (sigma(2.0) - 0.0) / 3.0, 1e-6);
  EXPECT_NEAR(res.grad[2], (sigma(-2.0) - 1.0) / 3.0, 1e-6);
  // z >= 0 predicts 1: hits at rows 0 (y=1) only; row 1 predicts 1 vs y=0,
  // row 2 predicts 0 vs y=1.
  EXPECT_EQ(res.correct, 1);
}

TEST(OptimStep, AdamBiasCorrectionExactAtStepOne) {
  // After one step from zero moments: m = (1-b1) g, v = (1-b2) g^2, so the
  // bias-corrected mhat = g and vhat = g^2 exactly — the update must be
  // lr * g / (|g| + eps) regardless of beta1/beta2.
  nn::Param p;
  p.name = "w";
  p.value = Tensor({2});
  p.grad = Tensor({2});
  p.value[0] = 1.0f;
  p.value[1] = -2.0f;
  p.grad[0] = 0.5f;
  p.grad[1] = -0.25f;

  nn::HyperParams hp;
  hp.lr = 0.1;
  hp.weight_decay = 0.0;
  hp.eps = 1e-8;
  nn::Adam adam({&p}, hp, hp);
  adam.step();

  EXPECT_NEAR(p.value[0], 1.0 - 0.1 * 0.5 / (0.5 + 1e-8), 1e-6);
  EXPECT_NEAR(p.value[1], -2.0 + 0.1 * 0.25 / (0.25 + 1e-8), 1e-6);
}

TEST(OptimStep, SgdMomentumMatchesHandRolledReference) {
  nn::Param p;
  p.name = "w";
  p.value = Tensor({3});
  p.grad = Tensor({3});
  for (int j = 0; j < 3; ++j) p.value[static_cast<std::size_t>(j)] = 0.5f * (j + 1);

  nn::HyperParams hp;
  hp.lr = 0.05;
  hp.weight_decay = 0.01;
  nn::Sgd sgd({&p}, hp, hp, /*momentum=*/0.9);

  // Hand-rolled float32 mirror of nn::Sgd: vel = m*vel + (g + wd*w),
  // w -= lr*vel, with the same double intermediates and float casts.
  float w[3] = {0.5f, 1.0f, 1.5f};
  float vel[3] = {0.0f, 0.0f, 0.0f};
  sp::Rng rng(202);
  for (int step = 0; step < 5; ++step) {
    float g[3];
    for (int j = 0; j < 3; ++j) {
      g[j] = static_cast<float>(rng.uniform(-1.0, 1.0));
      p.grad[static_cast<std::size_t>(j)] = g[j];
    }
    sgd.step();
    for (int j = 0; j < 3; ++j) {
      const double gd = static_cast<double>(g[j]) + hp.weight_decay * w[j];
      vel[j] = static_cast<float>(0.9 * vel[j] + gd);
      w[j] -= static_cast<float>(hp.lr * vel[j]);
      EXPECT_FLOAT_EQ(p.value[static_cast<std::size_t>(j)], w[j])
          << "step " << step << " j " << j;
    }
    sgd.zero_grad();
    for (int j = 0; j < 3; ++j)
      EXPECT_FLOAT_EQ(p.grad[static_cast<std::size_t>(j)], 0.0f);
  }
}

TEST(OptimStep, FrozenGroupDoesNotMove) {
  nn::Param p;
  p.name = "paf";
  p.value = Tensor({1});
  p.grad = Tensor({1});
  p.group = nn::ParamGroup::PafCoeff;
  p.value[0] = 1.0f;
  p.grad[0] = 1.0f;

  nn::HyperParams hp;
  hp.lr = 0.1;
  nn::Sgd sgd({&p}, hp, hp, 0.9);
  sgd.set_group_frozen(nn::ParamGroup::PafCoeff, true);
  sgd.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.0f);
  sgd.set_group_frozen(nn::ParamGroup::PafCoeff, false);
  sgd.step();
  EXPECT_LT(p.value[0], 1.0f);
}

}  // namespace
