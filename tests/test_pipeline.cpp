// FhePipeline correctness net: planner validation (level budget, shapes),
// plan determinism on a pinned cost table, scalar folding, lowering from a
// replaced nn::Sequential with plaintext-forward parity, end-to-end FHE
// parity of a 2-activation lowered network < 2^-20, rotation-key dedup
// across stages, the CompositeBasis warm path, predict-vs-executed mult
// counts, shim-vs-pipeline counter identity and the overlapped drain.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "nn/container.h"
#include "nn/layers.h"
#include "smartpaf/batch_runner.h"
#include "smartpaf/pipeline.h"
#include "smartpaf/pipeline_planner.h"
#include "smartpaf/replace.h"

namespace {

using namespace sp;
using namespace sp::fhe;

const double kParityTol = std::ldexp(1.0, -20);

/// Odd degree-7 single-stage PAF (depth 3): relu needs 5 levels, a k=2
/// PAF-max tournament another 5.
approx::CompositePaf test_paf(std::uint64_t seed = 41) {
  sp::Rng rng(seed);
  std::vector<double> c(8, 0.0);
  for (int k = 1; k <= 7; k += 2)
    c[static_cast<std::size_t>(k)] = rng.uniform(-1.0, 1.0) / 8.0;
  return approx::CompositePaf("deg7", {approx::Polynomial(c)});
}

/// The 2-activation pipeline of the acceptance criteria:
/// window -> PAF-ReLU -> scalar linear -> PAF-MaxPool.
smartpaf::FhePipeline two_activation_pipeline() {
  return smartpaf::FhePipeline::builder()
      .window({0.5, 0.3, 0.2})
      .paf_relu(test_paf(), 2.0)
      .linear(0.7)
      .paf_maxpool(test_paf(43), 2.0, /*pool_window=*/2)
      .build();
}

/// The same network as trainable nn layers, PAF sites already replaced and
/// frozen to Static Scaling.
nn::Model two_activation_network() {
  auto seq = std::make_unique<nn::Sequential>("net");
  seq->add(std::make_unique<nn::Window1d>(std::vector<float>{0.5f, 0.3f, 0.2f}));
  seq->add(std::make_unique<nn::ReLU>("act"));
  seq->add(std::make_unique<nn::Window1d>(std::vector<float>{0.7f}, 0.0f, "scale"));
  seq->add(std::make_unique<nn::MaxPool1d>(2, "pool"));
  nn::Model model(std::move(seq), "two-act");

  const auto sites = smartpaf::find_nonpoly_sites(model);
  EXPECT_EQ(sites.size(), 2u);
  smartpaf::replace_site(model, sites[0], test_paf(), smartpaf::ScaleMode::Dynamic);
  smartpaf::replace_site(model, sites[1], test_paf(43), smartpaf::ScaleMode::Dynamic);
  for (smartpaf::PafLayerBase* p : smartpaf::find_paf_layers(model))
    p->set_static_scale(2.0f);
  return model;
}

/// A pinned "measured" cost table (values chosen so naive rotation beats
/// hoisting: hoist_ms dominates small fans).
const char* kPinnedCostJson = R"json({
  "poly_degree": 2048,
  "q_count": 13,
  "measured": 1,
  "ct_mult_ms": 4.0,
  "relin_ms": 3.0,
  "rescale_ms": 0.5,
  "plain_mult_ms": 0.25,
  "add_ms": 0.02,
  "rotate_ms": 0.5,
  "hoist_ms": 50.0,
  "hoisted_rotate_ms": 0.4,
  "all_done": 0
})json";

// --------------------------------------------------------- planner (no keys) --

TEST(PipelinePlanner, RejectsOverBudgetWithBreakdown) {
  const CkksContext shallow(CkksParams::for_depth(2048, 6, 40));
  const auto pipe = two_activation_pipeline();
  bool rejected = false;
  try {
    smartpaf::Planner::plan(pipe, shallow, smartpaf::CostModel::heuristic());
  } catch (const sp::Error& e) {
    rejected = true;
    const std::string msg = e.what();
    EXPECT_NE(msg.find("levels but the chain has 6"), std::string::npos) << msg;
    EXPECT_NE(msg.find("paf-relu"), std::string::npos) << msg;
    EXPECT_NE(msg.find("paf-max"), std::string::npos) << msg;
  }
  EXPECT_TRUE(rejected) << "an 11-level pipeline must not plan on a 6-level chain";
}

TEST(PipelinePlanner, FoldScalarsSavesALevel) {
  const CkksContext ctx(CkksParams::for_depth(2048, 12, 40));
  const auto pipe = two_activation_pipeline();

  const auto folded =
      smartpaf::Planner::plan(pipe, ctx, smartpaf::CostModel::heuristic());
  EXPECT_EQ(folded.levels_used, 11);
  ASSERT_EQ(folded.stages.size(), 4u);
  // The scalar linear folds into the pairwise (k=2) MaxPool's envelope.
  EXPECT_TRUE(folded.stages[2].folded);
  EXPECT_DOUBLE_EQ(folded.stages[3].pre_factor, 0.7);

  smartpaf::PlanOptions literal;
  literal.rescale_policy = smartpaf::RescalePolicy::PerStage;
  const auto per_stage =
      smartpaf::Planner::plan(pipe, ctx, smartpaf::CostModel::heuristic(), literal);
  EXPECT_EQ(per_stage.levels_used, 12);
  EXPECT_FALSE(per_stage.stages[2].folded);
}

TEST(PipelinePlanner, ScalarBeforeReluFoldsIntoPreFactor) {
  const CkksContext ctx(CkksParams::for_depth(2048, 12, 40));
  const auto pipe = smartpaf::FhePipeline::builder()
                        .linear(0.5)
                        .linear(0.5)
                        .paf_relu(test_paf(), 2.0)
                        .build();
  const auto plan = smartpaf::Planner::plan(pipe, ctx, smartpaf::CostModel::heuristic());
  EXPECT_TRUE(plan.stages[0].folded);
  EXPECT_TRUE(plan.stages[1].folded);
  EXPECT_DOUBLE_EQ(plan.stages[2].pre_factor, 0.25);
  EXPECT_EQ(plan.levels_used, 5);
}

TEST(PipelinePlanner, DeterministicOnPinnedCostTable) {
  const CkksContext ctx(CkksParams::for_depth(2048, 12, 40));
  const auto cm = smartpaf::CostModel::from_json(kPinnedCostJson);
  ASSERT_TRUE(cm.has_value());
  EXPECT_TRUE(cm->measured);
  EXPECT_TRUE(cm->matches(ctx));

  const auto pipe = two_activation_pipeline();
  const auto a = smartpaf::Planner::plan(pipe, ctx, *cm);
  const auto b = smartpaf::Planner::plan(pipe, ctx, *cm);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_DOUBLE_EQ(a.predicted_cost, b.predicted_cost);
  EXPECT_EQ(a.levels_used, b.levels_used);

  // The pinned table makes hoisting a loss on small fans (hoist_ms = 50);
  // the heuristic table keeps the historical always-hoist behavior.
  EXPECT_FALSE(a.stages[0].hoist_fan);
  const auto h = smartpaf::Planner::plan(pipe, ctx, smartpaf::CostModel::heuristic());
  EXPECT_TRUE(h.stages[0].hoist_fan);

  // Forcing a strategy can never beat the planner's own pick under the same
  // cost table.
  for (const auto forced : {PafEvaluator::Strategy::Ladder, PafEvaluator::Strategy::BSGS}) {
    smartpaf::PlanOptions opts;
    opts.force_strategy = forced;
    const auto f = smartpaf::Planner::plan(pipe, ctx, *cm, opts);
    EXPECT_GE(f.predicted_cost, a.predicted_cost);
  }
}

TEST(PipelinePlanner, CostModelJsonRoundTrip) {
  smartpaf::CostModel cm;
  cm.ct_mult_ms = 3.25;
  cm.relin_ms = 2.5;
  cm.rescale_ms = 0.75;
  cm.plain_mult_ms = 0.125;
  cm.add_ms = 0.03125;
  cm.rotate_ms = 2.625;
  cm.hoist_ms = 1.875;
  cm.hoisted_rotate_ms = 0.875;
  cm.poly_degree = 4096;
  cm.q_count = 7;
  cm.measured = true;
  const auto back = smartpaf::CostModel::from_json(cm.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_DOUBLE_EQ(back->ct_mult_ms, cm.ct_mult_ms);
  EXPECT_DOUBLE_EQ(back->hoist_ms, cm.hoist_ms);
  EXPECT_DOUBLE_EQ(back->hoisted_rotate_ms, cm.hoisted_rotate_ms);
  EXPECT_EQ(back->poly_degree, cm.poly_degree);
  EXPECT_EQ(back->q_count, cm.q_count);
  EXPECT_TRUE(back->measured);
  EXPECT_FALSE(smartpaf::CostModel::from_json("not json").has_value());
}

TEST(PipelinePlanner, PlanRotationStepsDeduplicate) {
  const CkksContext ctx(CkksParams::for_depth(2048, 12, 40));
  const auto plan = smartpaf::Planner::plan(two_activation_pipeline(), ctx,
                                            smartpaf::CostModel::heuristic());
  // window{1,2} and maxpool{1} collapse to {1,2}.
  EXPECT_EQ(plan.rotation_steps(), (std::vector<int>{1, 2}));
}

// ------------------------------------------------------------------ lowering --

TEST(PipelineLowering, LoweredStagesMatchHandBuiltPipeline) {
  nn::Model model = two_activation_network();
  const auto pipe = smartpaf::FhePipeline::lower(model);
  ASSERT_EQ(pipe.stages().size(), 4u);
  EXPECT_TRUE(std::holds_alternative<smartpaf::WindowStage>(pipe.stages()[0].op));
  EXPECT_TRUE(std::holds_alternative<smartpaf::PafStage>(pipe.stages()[1].op));
  EXPECT_TRUE(std::holds_alternative<smartpaf::LinearStage>(pipe.stages()[2].op));
  EXPECT_TRUE(std::holds_alternative<smartpaf::PafStage>(pipe.stages()[3].op));
  EXPECT_EQ(pipe.mult_depth(), 12);  // literal; FoldScalars plans 11

  const auto& relu = std::get<smartpaf::PafStage>(pipe.stages()[1].op);
  EXPECT_EQ(relu.kind, smartpaf::SiteKind::ReLU);
  EXPECT_DOUBLE_EQ(relu.input_scale, 2.0);
  const auto& pool = std::get<smartpaf::PafStage>(pipe.stages()[3].op);
  EXPECT_EQ(pool.kind, smartpaf::SiteKind::MaxPool);
  EXPECT_EQ(pool.pool_window, 2);
}

TEST(PipelineLowering, ReferenceMatchesPlaintextNnForward) {
  nn::Model model = two_activation_network();
  const auto pipe = smartpaf::FhePipeline::lower(model);

  const int w = 64;
  sp::Rng rng(7);
  nn::Tensor x({1, w});
  std::vector<double> slots(static_cast<std::size_t>(w));
  for (int j = 0; j < w; ++j) {
    x.at(0, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
    slots[static_cast<std::size_t>(j)] = static_cast<double>(x.at(0, j));
  }
  const nn::Tensor y = model.forward(x, /*train=*/false);
  const std::vector<double> ref = pipe.reference(slots);
  for (int j = 0; j < w; ++j)
    EXPECT_NEAR(ref[static_cast<std::size_t>(j)], static_cast<double>(y.at(0, j)),
                kParityTol)
        << "slot " << j;
}

TEST(PipelineLowering, RejectsUnreplacedAndDynamicAndUnsupported) {
  {
    auto seq = std::make_unique<nn::Sequential>("s");
    seq->add(std::make_unique<nn::ReLU>());
    nn::Model m(std::move(seq), "m");
    EXPECT_THROW(smartpaf::FhePipeline::lower(m), sp::Error);
  }
  {
    auto seq = std::make_unique<nn::Sequential>("s");
    seq->add(std::make_unique<smartpaf::PafActivation>(test_paf(), "paf",
                                                       smartpaf::ScaleMode::Dynamic));
    nn::Model m(std::move(seq), "m");
    EXPECT_THROW(smartpaf::FhePipeline::lower(m), sp::Error);
  }
  {
    // A layer kind the lowering has never heard of (Conv2d lowers now, so
    // the case needs a test-local stub). The rejection must name the layer
    // so a model author can find the offending module.
    class FancyNorm final : public nn::Layer {
     public:
      nn::Tensor forward(const nn::Tensor& x, bool) override { return x; }
      nn::Tensor backward(const nn::Tensor& gy) override { return gy; }
      std::string name() const override { return "fancy_norm"; }
    };
    auto seq = std::make_unique<nn::Sequential>("s");
    seq->add(std::make_unique<FancyNorm>());
    nn::Model m(std::move(seq), "m");
    bool rejected = false;
    try {
      smartpaf::FhePipeline::lower(m);
    } catch (const sp::Error& e) {
      rejected = true;
      EXPECT_NE(std::string(e.what()).find("unsupported layer 'fancy_norm'"),
                std::string::npos)
          << e.what();
    }
    EXPECT_TRUE(rejected);
  }
  {
    sp::Rng rng(3);
    auto seq = std::make_unique<nn::Sequential>("s");
    seq->add(std::make_unique<nn::Linear>(4, 4, rng));
    nn::Model m(std::move(seq), "m");
    const auto pipe = smartpaf::FhePipeline::lower(m, /*input_width=*/4);
    ASSERT_EQ(pipe.stages().size(), 1u);
    EXPECT_TRUE(std::holds_alternative<smartpaf::MatMulStage>(pipe.stages()[0].op));
  }
}

// ------------------------------------------------------- encrypted end-to-end --

class PipelineFheTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rt_ = std::make_unique<smartpaf::FheRuntime>(CkksParams::for_depth(2048, 12, 40),
                                                 /*seed=*/2028);
  }
  static void TearDownTestSuite() { rt_.reset(); }

  static std::unique_ptr<smartpaf::FheRuntime> rt_;
};

std::unique_ptr<smartpaf::FheRuntime> PipelineFheTest::rt_;

TEST_F(PipelineFheTest, LoweredNetworkMatchesPlaintextForwardUnderFhe) {
  nn::Model model = two_activation_network();
  const auto pipe = smartpaf::FhePipeline::lower(model);
  const auto plan =
      smartpaf::Planner::plan(pipe, rt_->ctx(), smartpaf::CostModel::heuristic());
  EXPECT_EQ(plan.levels_used, 11);

  const auto w = static_cast<int>(rt_->ctx().slot_count());
  sp::Rng rng(11);
  nn::Tensor x({1, w});
  std::vector<double> slots(static_cast<std::size_t>(w));
  for (int j = 0; j < w; ++j) {
    x.at(0, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
    slots[static_cast<std::size_t>(j)] = static_cast<double>(x.at(0, j));
  }
  const nn::Tensor expect = model.forward(x, /*train=*/false);

  EvalStats stats;
  const Ciphertext out = pipe.run(*rt_, plan, rt_->encrypt(slots), &stats);
  const std::vector<double> got = rt_->decrypt(out);

  double worst = 0.0;
  for (int j = 0; j < w; ++j)
    worst = std::max(worst, std::abs(got[static_cast<std::size_t>(j)] -
                                     static_cast<double>(expect.at(0, j))));
  EXPECT_LT(worst, kParityTol);

  // The executed PAF schedule matches the plan's exact ct-mult prediction.
  int predicted_mults = 0;
  for (const auto& s : plan.stages) predicted_mults += s.ops.ct_mults;
  EXPECT_EQ(stats.ct_mults, predicted_mults);
}

TEST_F(PipelineFheTest, ForcedStrategiesAgreeWithPlannedResult) {
  const auto pipe = two_activation_pipeline();
  sp::Rng rng(13);
  std::vector<double> slots(rt_->ctx().slot_count());
  for (auto& v : slots) v = rng.uniform(-1.0, 1.0);
  const Ciphertext in = rt_->encrypt(slots);
  const std::vector<double> ref = pipe.reference(slots);

  for (const auto forced : {PafEvaluator::Strategy::Ladder, PafEvaluator::Strategy::BSGS}) {
    smartpaf::PlanOptions opts;
    opts.force_strategy = forced;
    const auto plan =
        smartpaf::Planner::plan(pipe, rt_->ctx(), smartpaf::CostModel::heuristic(), opts);
    EvalStats stats;
    const std::vector<double> got = rt_->decrypt(pipe.run(*rt_, plan, in, &stats));
    double worst = 0.0;
    for (std::size_t j = 0; j < slots.size(); ++j)
      worst = std::max(worst, std::abs(got[j] - ref[j]));
    EXPECT_LT(worst, kParityTol);
    int predicted_mults = 0;
    for (const auto& s : plan.stages) predicted_mults += s.ops.ct_mults;
    EXPECT_EQ(stats.ct_mults, predicted_mults);
  }
}

TEST_F(PipelineFheTest, PredictPolyMatchesExecutedCounts) {
  sp::Rng rng(23);
  for (int deg : {7, 15, 27}) {
    std::vector<double> c(static_cast<std::size_t>(deg) + 1, 0.0);
    for (int k = 1; k <= deg; k += 2)
      c[static_cast<std::size_t>(k)] = rng.uniform(-1.0, 1.0) / deg;
    const approx::Polynomial p(c);

    std::vector<double> v(rt_->ctx().slot_count(), 0.25);
    const Ciphertext x = rt_->encrypt(v);
    for (const auto strat : {PafEvaluator::Strategy::Ladder, PafEvaluator::Strategy::BSGS}) {
      const auto pred = PafEvaluator::predict_poly(p, strat);
      rt_->paf_evaluator().set_strategy(strat);
      EvalStats stats;
      const Ciphertext out = rt_->paf_evaluator().eval_poly(rt_->evaluator(), x, p, &stats);
      EXPECT_EQ(stats.ct_mults, pred.ct_mults) << "deg " << deg;
      EXPECT_EQ(x.level() - out.level(), pred.levels) << "deg " << deg;
    }
    rt_->paf_evaluator().set_strategy(PafEvaluator::Strategy::BSGS);
  }
}

TEST_F(PipelineFheTest, CompositeBasisWarmRepeatIsNearlyMultFree) {
  // Two-stage composite so the cache covers a LATER stage too.
  approx::CompositePaf paf("deg7x2", {test_paf().stages()[0], test_paf(47).stages()[0]});
  sp::Rng rng(29);
  std::vector<double> v(rt_->ctx().slot_count());
  for (auto& x : v) x = rng.uniform(-2.0, 2.0);
  const Ciphertext ct = rt_->encrypt(v);

  EvalStats cold;
  const Ciphertext out_cold =
      rt_->paf_evaluator().relu(rt_->evaluator(), ct, paf, 2.0, &cold);

  CompositeBasis cache;
  EvalStats warm_seed;
  rt_->paf_evaluator().relu(rt_->evaluator(), ct, paf, 2.0, &warm_seed, nullptr, &cache);
  EXPECT_EQ(warm_seed.ct_mults, cold.ct_mults);  // first cached call = cold cost

  EvalStats warm;
  const Ciphertext out_warm =
      rt_->paf_evaluator().relu(rt_->evaluator(), ct, paf, 2.0, &warm, nullptr, &cache);
  // Repeat on the same input: every stage output is memoized, so only the
  // final 0.5 x (1 + p) product remains.
  EXPECT_EQ(warm.ct_mults, 1);
  EXPECT_GT(cold.ct_mults, 10);

  const std::vector<double> a = rt_->decrypt(out_cold);
  const std::vector<double> b = rt_->decrypt(out_warm);
  double worst = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) worst = std::max(worst, std::abs(a[j] - b[j]));
  EXPECT_LT(worst, 1e-12);  // identical deterministic schedule

  // Retrained SECOND stage: its powers (and the first stage entirely) are
  // reused; only the changed stage re-evaluates, plus the final product.
  approx::CompositePaf tuned = paf;
  tuned.stages()[1].coeffs()[3] += 0.01;
  EvalStats tuned_stats;
  const Ciphertext out_tuned = rt_->paf_evaluator().relu(rt_->evaluator(), ct, tuned,
                                                         2.0, &tuned_stats, nullptr, &cache);
  EXPECT_LT(tuned_stats.ct_mults, cold.ct_mults);
  // Correctness of the tuned re-evaluation against a fresh one.
  EvalStats fresh_stats;
  const Ciphertext out_fresh =
      rt_->paf_evaluator().relu(rt_->evaluator(), ct, tuned, 2.0, &fresh_stats);
  const std::vector<double> tuned_v = rt_->decrypt(out_tuned);
  const std::vector<double> fresh_v = rt_->decrypt(out_fresh);
  worst = 0.0;
  for (std::size_t j = 0; j < tuned_v.size(); ++j)
    worst = std::max(worst, std::abs(tuned_v[j] - fresh_v[j]));
  EXPECT_LT(worst, kParityTol);
}

TEST_F(PipelineFheTest, RotationKeyStoreDeduplicatesAcrossStages) {
  const std::size_t before = rt_->rotation_key_count();
  const auto plan = smartpaf::Planner::plan(two_activation_pipeline(), rt_->ctx(),
                                            smartpaf::CostModel::heuristic());
  rt_->rotation_keys(plan.rotation_steps());
  const std::size_t after_plan = rt_->rotation_key_count();
  // window{1,2} + maxpool{1}: at most two NEW keys, however many stages
  // requested them.
  EXPECT_LE(after_plan - before, 2u);

  // Re-requesting the same steps (any stage, any pipeline) adds nothing.
  rt_->rotation_keys({1, 2});
  rt_->rotation_keys({1});
  EXPECT_EQ(rt_->rotation_key_count(), after_plan);
}

TEST_F(PipelineFheTest, BatchRunnerShimMatchesDirectPipelineCounters) {
  smartpaf::BatchConfig cfg;
  cfg.input_size = static_cast<int>(rt_->ctx().slot_count()) / 4;
  cfg.paf = test_paf();
  cfg.input_scale = 2.0;
  cfg.window = {0.5, 0.3, 0.2};
  smartpaf::BatchRunner runner(*rt_, cfg);

  sp::Rng rng(31);
  std::vector<std::vector<double>> inputs(4);
  for (auto& v : inputs) {
    v.resize(static_cast<std::size_t>(cfg.input_size));
    for (auto& x : v) x = rng.uniform(-2.0, 2.0);
  }
  const auto res = runner.run(inputs);

  // The same stage graph through the pipeline API directly.
  const auto pipe = smartpaf::FhePipeline::builder()
                        .window(cfg.window)
                        .paf_relu(cfg.paf, cfg.input_scale)
                        .build();
  const auto plan =
      smartpaf::Planner::plan(pipe, rt_->ctx(), smartpaf::CostModel::heuristic());
  const std::vector<double> flat = Encoder::pack_slots(
      inputs, static_cast<std::size_t>(cfg.input_size), rt_->ctx().slot_count());
  const Ciphertext packed = rt_->encrypt(flat);
  const OpCounters before = rt_->evaluator().counters;
  const Ciphertext out = pipe.run(*rt_, plan, packed);
  const OpCounters delta = rt_->evaluator().counters.delta_since(before);

  EXPECT_EQ(res.stats.ops.ct_mults.load(), delta.ct_mults.load());
  EXPECT_EQ(res.stats.ops.relins.load(), delta.relins.load());
  EXPECT_EQ(res.stats.ops.rescales.load(), delta.rescales.load());
  EXPECT_EQ(res.stats.ops.rotations.load(), delta.rotations.load());
  EXPECT_EQ(res.stats.ops.hoisted_rotations.load(), delta.hoisted_rotations.load());
  EXPECT_EQ(res.stats.ops.ntts_forward.load(), delta.ntts_forward.load());

  // And the outputs agree slot for slot.
  const std::vector<double> direct = rt_->decrypt(out);
  double worst = 0.0;
  for (std::size_t b = 0; b < inputs.size(); ++b)
    for (int j = 0; j < cfg.input_size; ++j)
      worst = std::max(
          worst, std::abs(res.outputs[b][static_cast<std::size_t>(j)] -
                          direct[b * static_cast<std::size_t>(cfg.input_size) +
                                 static_cast<std::size_t>(j)]));
  EXPECT_LT(worst, kParityTol);
}

// --------------------------------------------------------- overlapped drain --

TEST(BatchOverlap, OverlappedDrainIsBitIdenticalToSequential) {
  // Two identically seeded runtimes: same keys, same encryption randomness.
  const CkksParams params = CkksParams::for_depth(2048, 6, 40);
  smartpaf::FheRuntime rt_seq(params, /*seed=*/2029);
  smartpaf::FheRuntime rt_ovl(params, /*seed=*/2029);

  smartpaf::BatchConfig cfg;
  cfg.input_size = static_cast<int>(rt_seq.ctx().slot_count()) / 2;
  cfg.paf = test_paf();
  cfg.input_scale = 2.0;
  cfg.window = {0.6, 0.4};

  smartpaf::BatchRunner seq(rt_seq, cfg);
  seq.set_overlap(false);
  smartpaf::BatchRunner ovl(rt_ovl, cfg);
  ASSERT_TRUE(ovl.overlap());

  sp::Rng rng(37);
  std::vector<std::vector<double>> inputs(5);
  for (auto& v : inputs) {
    v.resize(static_cast<std::size_t>(cfg.input_size));
    for (auto& x : v) x = rng.uniform(-2.0, 2.0);
  }
  for (const auto& v : inputs) {
    seq.submit(v);
    ovl.submit(v);
  }

  const auto rs = seq.drain();
  const auto ro = ovl.drain();
  ASSERT_EQ(rs.size(), 3u);  // 2 + 2 + 1
  ASSERT_EQ(ro.size(), 3u);
  for (std::size_t g = 0; g < rs.size(); ++g) {
    EXPECT_EQ(rs[g].ids, ro[g].ids);
    ASSERT_EQ(rs[g].outputs.size(), ro[g].outputs.size());
    for (std::size_t b = 0; b < rs[g].outputs.size(); ++b)
      EXPECT_EQ(rs[g].outputs[b], ro[g].outputs[b]) << "group " << g << " request " << b;
    for (double e : ro[g].max_error) EXPECT_LT(e, kParityTol);

    // Sequential drains hide nothing; overlapped groups after the first
    // report the pack+encrypt ms hidden behind the previous evaluation.
    EXPECT_DOUBLE_EQ(rs[g].stats.prep_hidden_ms, 0.0);
    if (g == 0) {
      EXPECT_DOUBLE_EQ(ro[g].stats.prep_hidden_ms, 0.0);
    } else {
      EXPECT_GE(ro[g].stats.prep_hidden_ms, 0.0);
      EXPECT_LE(ro[g].stats.prep_hidden_ms,
                ro[g].stats.pack_ms + ro[g].stats.encrypt_ms + 1e-9);
    }
  }
}

}  // namespace
