#include <gtest/gtest.h>

#include <cmath>

#include "approx/presets.h"

namespace {

using namespace sp::approx;

TEST(Presets, Table2DepthMatchesPaper) {
  // The load-bearing reproduction of Table 2: multiplication depth computed
  // from the power-ladder rule must equal the paper's published row.
  for (PafForm form : all_forms()) {
    const CompositePaf paf = make_paf(form);
    EXPECT_EQ(paf.mult_depth(), paper_mult_depth(form)) << form_name(form);
  }
}

TEST(Presets, DegreeSumMatchesPaperLabelForMinimaxForms) {
  // The paper's "degree" labels are stage-degree sums for the composite
  // forms; f1^2∘g1^2 is labelled 14 in the paper (4 cubic stages).
  EXPECT_EQ(make_paf(PafForm::ALPHA10_D27).degree_sum(), 27);
  EXPECT_EQ(make_paf(PafForm::ALPHA7).degree_sum(), 14);  // two degree-7 stages
  EXPECT_EQ(make_paf(PafForm::F2_G3).degree_sum(), 12);
  EXPECT_EQ(make_paf(PafForm::F2_G2).degree_sum(), 10);
  EXPECT_EQ(make_paf(PafForm::F1_G2).degree_sum(), 8);
  EXPECT_EQ(make_paf(PafForm::F1SQ_G1SQ).degree_sum(), 12);
}

TEST(Presets, CheonFBasesFixPlusMinusOne) {
  // f bases map ±1 -> ±1 exactly (they contract toward the sign).
  for (int k = 1; k <= 3; ++k) {
    EXPECT_NEAR(base_f(k)(1.0), 1.0, 1e-9) << "f" << k;
    EXPECT_NEAR(base_f(k)(-1.0), -1.0, 1e-9) << "f" << k;
  }
}

TEST(Presets, CompositesKeepCorrectSignAtModerateInputs) {
  // The untrained composites are *approximate* (g1/g3 even dip to ~0.75 at
  // x=1 — the source of the paper's large no-fine-tune accuracy drops), but
  // they must classify the sign correctly away from zero.
  for (PafForm form : all_forms()) {
    const CompositePaf paf = make_paf(form);
    for (double x = 0.15; x <= 1.0; x += 0.05) {
      EXPECT_GT(paf(x), 0.4) << form_name(form) << " at " << x;
      EXPECT_LT(paf(-x), -0.4) << form_name(form) << " at " << -x;
      EXPECT_LT(paf(x), 1.35) << form_name(form) << " at " << x;
    }
  }
}

TEST(Presets, BasesAreOdd) {
  for (int k = 1; k <= 3; ++k) {
    EXPECT_TRUE(base_f(k).is_odd());
    EXPECT_TRUE(base_g(k).is_odd());
  }
}

TEST(Presets, FBasesContractTowardSign) {
  // |f(x) - sign(x)| <= |x - sign(x)| on (0,1]: f pulls values toward +1.
  for (int k = 1; k <= 3; ++k) {
    for (double x : {0.1, 0.3, 0.5, 0.8}) {
      EXPECT_LT(std::abs(base_f(k)(x) - 1.0), std::abs(x - 1.0)) << "f" << k;
    }
  }
}

class FormSignError : public ::testing::TestWithParam<PafForm> {};

TEST_P(FormSignError, ApproximatesSignReasonably) {
  const CompositePaf paf = make_paf(GetParam());
  // Untrained low-degree PAFs carry up to ~34% max error at 0.15 (this is
  // exactly why the paper needs CT + fine-tuning); all stay below 40%.
  EXPECT_LT(paf.sign_error_max(0.15), 0.40) << form_name(GetParam());
  EXPECT_LT(paf.sign_error_max(0.30), 0.30) << form_name(GetParam());
  // And are odd: paf(-x) = -paf(x).
  for (double x : {0.2, 0.5, 0.9}) EXPECT_NEAR(paf(x), -paf(-x), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllForms, FormSignError,
                         ::testing::ValuesIn(all_forms()),
                         [](const ::testing::TestParamInfo<PafForm>& info) {
                           std::string n = form_name(info.param);
                           for (auto& c : n)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return n;
                         });

TEST(Presets, HigherCostFormsApproximateBetter) {
  const double e27 = make_paf(PafForm::ALPHA10_D27).sign_error_mse(0.1);
  const double e14 = make_paf(PafForm::F1SQ_G1SQ).sign_error_mse(0.1);
  const double e5 = make_paf(PafForm::F1_G2).sign_error_mse(0.1);
  EXPECT_LT(e27, e5);
  EXPECT_LT(e14, e5);
}

TEST(Presets, Alpha10ExceedsTenBitsOfPrecision) {
  const CompositePaf paf = make_paf(PafForm::ALPHA10_D27);
  // The iterative minimax construction reaches ~2^-13 for |x| >= 0.02,
  // beyond the alpha=10 design target of 2^-10.
  EXPECT_LT(paf.sign_error_max(0.02), std::pow(2.0, -10.0));
  EXPECT_LT(paf.sign_error_max(0.05), std::pow(2.0, -10.0));
}

TEST(Presets, PaperTrainedCoeffsShapes) {
  EXPECT_EQ(paper_trained_coeffs(PafForm::F1_G2).size(), 17u);
  EXPECT_EQ(paper_trained_coeffs(PafForm::F2_G2).size(), 17u);
  EXPECT_EQ(paper_trained_coeffs(PafForm::F2_G3).size(), 17u);
  EXPECT_EQ(paper_trained_coeffs(PafForm::F1SQ_G1SQ).size(), 17u);
  EXPECT_TRUE(paper_trained_coeffs(PafForm::ALPHA10_D27).empty());
}

TEST(Presets, PaperTrainedCoeffsLoadIntoForms) {
  for (PafForm form : {PafForm::F1_G2, PafForm::F2_G2, PafForm::F2_G3, PafForm::F1SQ_G1SQ}) {
    CompositePaf paf = make_paf(form);
    const auto rows = paper_trained_coeffs(form);
    for (const auto& row : rows) {
      ASSERT_EQ(static_cast<int>(row.size()), paf.num_coeffs()) << form_name(form);
      paf.load_coeffs(row);
      // Trained PAFs remain odd functions (only odd slots populated).
      for (const auto& stage : paf.stages()) EXPECT_TRUE(stage.is_odd());
    }
  }
}

TEST(Presets, PaperTable9SpotValues) {
  // Table 9, layer 0: c0_1 = 2.736806631, d1_3 = -1.481475353.
  const auto rows = paper_trained_coeffs(PafForm::F1SQ_G1SQ);
  CompositePaf paf = make_paf(PafForm::F1SQ_G1SQ);
  paf.load_coeffs(rows[0]);
  EXPECT_DOUBLE_EQ(paf.stages()[0].coeff(1), 2.736806631);
  EXPECT_DOUBLE_EQ(paf.stages()[3].coeff(3), -1.481475353);
}

TEST(Presets, PaperAlpha7MatchesTable7) {
  const auto flat = paper_alpha7_coeffs();
  CompositePaf paf = make_paf(PafForm::ALPHA7);
  ASSERT_EQ(static_cast<int>(flat.size()), paf.num_coeffs());
  paf.load_coeffs(flat);
  EXPECT_DOUBLE_EQ(paf.stages()[0].coeff(1), 7.304451);
  EXPECT_DOUBLE_EQ(paf.stages()[1].coeff(7), -0.331172943);
}

TEST(Presets, F2G2Layer4IsTheUntrainedCheonBase) {
  // Table 11 row 4 equals the raw f2/g2 bases — a nice cross-check that our
  // base coefficients match the paper's.
  const auto rows = paper_trained_coeffs(PafForm::F2_G2);
  CompositePaf paf = make_paf(PafForm::F2_G2);
  const auto base = paf.flatten_coeffs();
  const auto& row4 = rows[4];
  for (std::size_t i = 0; i < base.size(); ++i)
    EXPECT_NEAR(base[i], row4[i], 5e-4) << "flat index " << i;
}

TEST(Presets, DepthScheduleEndsWithTotalDepth) {
  const CompositePaf paf = make_paf(PafForm::F1_G2);
  const auto lines = depth_schedule(paf);
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines.back().find("5"), std::string::npos);
}

}  // namespace
