#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "smartpaf/fhe_deploy.h"

namespace {

using namespace sp;
using namespace sp::fhe;

/// 2^-20: the parity budget between homomorphic evaluation (either strategy)
/// and the plaintext Horner reference, as max-abs error relative to
/// max(1, ||reference||_inf).
const double kParityTol = std::ldexp(1.0, -20);

/// Shared CKKS runtime: N = 4096 with depth 6 at Delta = 2^40, enough for
/// degree-31 polynomials (depth 5) with precision far below 2^-20.
class PolyEvalTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rt_ = std::make_unique<smartpaf::FheRuntime>(CkksParams::for_depth(4096, 6, 40),
                                                 /*seed=*/2025);
  }
  static void TearDownTestSuite() { rt_.reset(); }

  /// Dense random polynomial with coefficients ~1/(degree+1) so values on
  /// [-1, 1] stay O(1); the leading coefficient is kept solidly nonzero.
  static approx::Polynomial random_poly(int degree, std::uint64_t seed) {
    sp::Rng rng(seed);
    std::vector<double> c(static_cast<std::size_t>(degree) + 1);
    for (auto& v : c) v = rng.uniform(-1.0, 1.0) / (degree + 1);
    if (std::abs(c.back()) < 1e-3) c.back() = 0.25 / (degree + 1);
    return approx::Polynomial(c);
  }

  /// Random odd polynomial (every PAF stage in the paper is odd).
  static approx::Polynomial random_odd_poly(int degree, std::uint64_t seed) {
    sp::Rng rng(seed);
    std::vector<double> c(static_cast<std::size_t>(degree) + 1, 0.0);
    for (int k = 1; k <= degree; k += 2)
      c[static_cast<std::size_t>(k)] = rng.uniform(-1.0, 1.0) / (degree + 1);
    if (std::abs(c.back()) < 1e-3) c.back() = 0.25 / (degree + 1);
    return approx::Polynomial(c);
  }

  static std::vector<double> random_inputs(std::uint64_t seed) {
    sp::Rng rng(seed);
    std::vector<double> v(rt_->ctx().slot_count());
    for (auto& x : v) x = rng.uniform(-1.0, 1.0);
    return v;
  }

  struct Run {
    std::vector<double> values;
    EvalStats stats;
    int levels = 0;
  };

  static Run eval_with(PafEvaluator::Strategy strategy, const approx::Polynomial& p,
                       const Ciphertext& ct) {
    PafEvaluator pe(rt_->ctx(), rt_->encoder(), rt_->relin_key(), strategy);
    Run r;
    const Ciphertext out = pe.eval_poly(rt_->evaluator(), ct, p, &r.stats);
    r.levels = ct.level() - out.level();
    r.values = rt_->decrypt(out);
    return r;
  }

  /// max |got - p(v)| / max(1, ||p(v)||_inf).
  static double relative_error(const std::vector<double>& got,
                               const std::vector<double>& inputs,
                               const approx::Polynomial& p) {
    double worst = 0.0, norm = 1.0;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const double ref = p(inputs[i]);
      norm = std::max(norm, std::abs(ref));
      worst = std::max(worst, std::abs(got[i] - ref));
    }
    return worst / norm;
  }

  static std::unique_ptr<smartpaf::FheRuntime> rt_;
};

std::unique_ptr<smartpaf::FheRuntime> PolyEvalTest::rt_;

/// Parity + cost sweep over dense random polynomials of every degree 3..31.
class DensePolyDegree : public PolyEvalTest, public ::testing::WithParamInterface<int> {};

TEST_P(DensePolyDegree, BsgsAndLadderAgreeWithHorner) {
  const int degree = GetParam();
  const approx::Polynomial p = random_poly(degree, 1000 + static_cast<std::uint64_t>(degree));
  const auto inputs = random_inputs(77);
  const Ciphertext ct = rt_->encrypt(inputs);

  const Run ladder = eval_with(PafEvaluator::Strategy::Ladder, p, ct);
  const Run bsgs = eval_with(PafEvaluator::Strategy::BSGS, p, ct);

  // Both strategies reproduce the plaintext Horner evaluation to < 2^-20.
  EXPECT_LT(relative_error(ladder.values, inputs, p), kParityTol) << "degree " << degree;
  EXPECT_LT(relative_error(bsgs.values, inputs, p), kParityTol) << "degree " << degree;

  // BSGS consumes exactly the same levels as the ladder bound...
  EXPECT_EQ(ladder.levels, static_cast<int>(std::ceil(std::log2(degree + 1.0))));
  EXPECT_EQ(bsgs.levels, ladder.levels);

  // ...and never more ct-ct mults. Strictly fewer from degree 8 up: degree 7
  // is the one depth wall (7 + 1 = 2^3 leaves zero level slack, and any
  // depth-3 schedule for a dense degree-7 polynomial needs the full ladder's
  // 5 multiplications), so there BSGS falls back to the identical schedule.
  EXPECT_LE(bsgs.stats.ct_mults, ladder.stats.ct_mults) << "degree " << degree;
  if (degree >= 8) {
    EXPECT_LT(bsgs.stats.ct_mults, ladder.stats.ct_mults) << "degree " << degree;
  }

  // Savings bookkeeping: the planner's ladder baseline must equal the
  // measured ladder cost (plan and execution mirror each other exactly).
  EXPECT_EQ(ladder.stats.ladder_ct_mults, ladder.stats.ct_mults);
  EXPECT_EQ(ladder.stats.ct_mults_saved, 0);
  EXPECT_EQ(bsgs.stats.ladder_ct_mults, ladder.stats.ct_mults);
  EXPECT_EQ(bsgs.stats.ct_mults_saved, ladder.stats.ct_mults - bsgs.stats.ct_mults);
  EXPECT_EQ(bsgs.stats.relins_saved, bsgs.stats.ct_mults_saved);
  EXPECT_EQ(bsgs.stats.rescales_saved, bsgs.stats.ct_mults_saved);
  // Lazy relinearization (the default) defers window-product relins to the
  // joins: never more relins than mults, and every mult either relinearized
  // eagerly or was deferred (deferred ones resolve at join/final relins).
  EXPECT_LE(bsgs.stats.relins, bsgs.stats.ct_mults);
  EXPECT_GE(bsgs.stats.relins + bsgs.stats.relins_deferred, bsgs.stats.ct_mults);
}

INSTANTIATE_TEST_SUITE_P(Degrees, DensePolyDegree,
                         ::testing::Values(3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
                                           16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26,
                                           27, 28, 29, 30, 31));

/// The paper's PAF stages are odd; the sweep repeats on odd polynomials.
class OddPolyDegree : public PolyEvalTest, public ::testing::WithParamInterface<int> {};

TEST_P(OddPolyDegree, BsgsAndLadderAgreeWithHorner) {
  const int degree = GetParam();
  const approx::Polynomial p = random_odd_poly(degree, 500 + static_cast<std::uint64_t>(degree));
  const auto inputs = random_inputs(91);
  const Ciphertext ct = rt_->encrypt(inputs);

  const Run ladder = eval_with(PafEvaluator::Strategy::Ladder, p, ct);
  const Run bsgs = eval_with(PafEvaluator::Strategy::BSGS, p, ct);

  EXPECT_LT(relative_error(ladder.values, inputs, p), kParityTol) << "degree " << degree;
  EXPECT_LT(relative_error(bsgs.values, inputs, p), kParityTol) << "degree " << degree;
  EXPECT_EQ(bsgs.levels, ladder.levels);
  EXPECT_LE(bsgs.stats.ct_mults, ladder.stats.ct_mults) << "degree " << degree;
  if (degree >= 9) {
    EXPECT_LT(bsgs.stats.ct_mults, ladder.stats.ct_mults) << "degree " << degree;
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, OddPolyDegree,
                         ::testing::Values(7, 9, 11, 13, 15, 21, 27, 31));

TEST_F(PolyEvalTest, PowerBasisIsDepthOptimalAndMemoized) {
  const auto inputs = random_inputs(5);
  const Ciphertext ct = rt_->encrypt(inputs);
  PowerBasis basis(rt_->ctx(), rt_->relin_key(), ct);
  for (int e = 1; e <= 16; ++e) {
    const Ciphertext& xe = basis.power(rt_->evaluator(), e);
    EXPECT_EQ(ct.level() - xe.level(),
              static_cast<int>(std::ceil(std::log2(static_cast<double>(e)))))
        << "x^" << e;
  }
  // All of x^1..x^16 takes exactly 15 multiplications (one per new power)...
  EXPECT_EQ(basis.mults_spent(), 15);
  // ...and re-requesting any of them is free.
  basis.power(rt_->evaluator(), 16);
  basis.power(rt_->evaluator(), 7);
  EXPECT_EQ(basis.mults_spent(), 15);
}

TEST_F(PolyEvalTest, SharedBasisMakesRepeatEvaluationCheaper) {
  const approx::Polynomial p = random_poly(13, 42);
  const auto inputs = random_inputs(6);
  const Ciphertext ct = rt_->encrypt(inputs);
  PafEvaluator pe(rt_->ctx(), rt_->encoder(), rt_->relin_key(),
                  PafEvaluator::Strategy::BSGS);

  PowerBasis basis(rt_->ctx(), rt_->relin_key(), ct);
  EvalStats first, second;
  const Ciphertext out1 = pe.eval_poly(rt_->evaluator(), basis, p, &first);
  const Ciphertext out2 = pe.eval_poly(rt_->evaluator(), basis, p, &second);
  EXPECT_LT(second.ct_mults, first.ct_mults);

  // Same schedule, same powers: the two results agree bit-for-bit closely.
  const auto a = rt_->decrypt(out1);
  const auto b = rt_->decrypt(out2);
  for (std::size_t i = 0; i < a.size(); i += 61) EXPECT_NEAR(a[i], b[i], 1e-9);
}

TEST_F(PolyEvalTest, ReluBasisCacheSkipsPowerRebuild) {
  // Single odd degree-7 stage: depth 3 + 2 relu levels fits the depth-6 chain.
  const approx::CompositePaf paf("deg7", {random_odd_poly(7, 21)});
  const auto inputs = random_inputs(8);
  const Ciphertext ct = rt_->encrypt(inputs);
  const PafEvaluator& pe = rt_->paf_evaluator();

  PowerBasis cache;
  EvalStats first, second;
  pe.relu(rt_->evaluator(), ct, paf, 2.0, &first, &cache);
  pe.relu(rt_->evaluator(), ct, paf, 2.0, &second, &cache);
  // The cached pass reuses the scaled input's powers for the first stage.
  EXPECT_LT(second.ct_mults, first.ct_mults);
  EXPECT_LT(second.plain_mults, first.plain_mults);
}

TEST_F(PolyEvalTest, StrategySwitchIsPerEvaluator) {
  PafEvaluator pe(rt_->ctx(), rt_->encoder(), rt_->relin_key());
  EXPECT_TRUE(pe.strategy() == PafEvaluator::Strategy::BSGS);
  pe.set_strategy(PafEvaluator::Strategy::Ladder);
  EXPECT_TRUE(pe.strategy() == PafEvaluator::Strategy::Ladder);
}

TEST_F(PolyEvalTest, MultDepthHelperMatchesLadderBound) {
  EXPECT_EQ(PafEvaluator::mult_depth(approx::Polynomial({0.0, 1.0})), 1);
  EXPECT_EQ(PafEvaluator::mult_depth(random_poly(7, 1)), 3);
  EXPECT_EQ(PafEvaluator::mult_depth(random_poly(8, 2)), 4);
  EXPECT_EQ(PafEvaluator::mult_depth(random_poly(31, 3)), 5);
  // Trailing structural zeros do not count toward depth.
  EXPECT_EQ(PafEvaluator::mult_depth(approx::Polynomial({0.0, 1.0, 0.5, 0.0, 0.0})), 2);
}

}  // namespace
