#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "data/synthetic.h"
#include "nn/container.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/swa.h"
#include "nn/trainer.h"

namespace {

using namespace sp;
using nn::Tensor;

/// Scalar loss L = sum_i w_i * y_i with fixed pseudo-random weights, so
/// dL/dy_i = w_i. Used to finite-difference-check layer gradients.
struct GradProbe {
  std::vector<float> w;
  explicit GradProbe(std::size_t n, std::uint64_t seed = 5) {
    sp::Rng rng(seed);
    w.resize(n);
    for (auto& v : w) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  double loss(const Tensor& y) const {
    double acc = 0;
    for (std::size_t i = 0; i < y.numel(); ++i) acc += w[i] * y[i];
    return acc;
  }
  Tensor grad(const std::vector<int>& shape) const {
    Tensor g(shape);
    for (std::size_t i = 0; i < g.numel(); ++i) g[i] = w[i];
    return g;
  }
};

Tensor random_tensor(std::vector<int> shape, std::uint64_t seed) {
  Tensor t(std::move(shape));
  sp::Rng rng(seed);
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

/// Finite-difference check of input and parameter gradients of a layer.
void gradcheck(nn::Layer& layer, const Tensor& x, double tol = 3e-2) {
  Tensor xin = x;
  Tensor y = layer.forward(xin, /*train=*/true);
  GradProbe probe(y.numel());
  const Tensor gy = probe.grad(y.shape());

  std::vector<nn::Param*> params;
  layer.collect_params(params);
  for (nn::Param* p : params) p->grad.fill(0.0f);
  const Tensor gx = layer.backward(gy);

  const double h = 1e-3;
  // Input gradient at a spread of positions.
  for (std::size_t i = 0; i < xin.numel(); i += std::max<std::size_t>(1, xin.numel() / 7)) {
    Tensor xp = xin, xm = xin;
    xp[i] += static_cast<float>(h);
    xm[i] -= static_cast<float>(h);
    const double fd = (probe.loss(layer.forward(xp, true)) -
                       probe.loss(layer.forward(xm, true))) / (2 * h);
    EXPECT_NEAR(gx[i], fd, tol * std::max(1.0, std::abs(fd))) << "input idx " << i;
  }
  // Parameter gradients.
  layer.forward(xin, true);  // restore caches for fairness
  for (nn::Param* p : params) {
    for (std::size_t i = 0; i < p->value.numel();
         i += std::max<std::size_t>(1, p->value.numel() / 5)) {
      const float orig = p->value[i];
      p->value[i] = orig + static_cast<float>(h);
      const double lp = probe.loss(layer.forward(xin, true));
      p->value[i] = orig - static_cast<float>(h);
      const double lm = probe.loss(layer.forward(xin, true));
      p->value[i] = orig;
      const double fd = (lp - lm) / (2 * h);
      EXPECT_NEAR(p->grad[i], fd, tol * std::max(1.0, std::abs(fd)))
          << p->name << " idx " << i;
    }
  }
}

TEST(Tensor, ShapeAndAccessors) {
  Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.numel(), 120u);
  t.at(1, 2, 3, 4) = 7.5f;
  EXPECT_FLOAT_EQ(t[119], 7.5f);
  Tensor m({3, 4});
  m.at(2, 3) = -1.0f;
  EXPECT_FLOAT_EQ(m[11], -1.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = random_tensor({2, 6}, 1);
  Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.dim(0), 3);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(t[i], r[i]);
}

TEST(Tensor, AbsMax) {
  Tensor t({4});
  t[0] = -3.5f;
  t[2] = 2.0f;
  EXPECT_FLOAT_EQ(t.abs_max(), 3.5f);
}

TEST(Tensor, MatmulAgainstNaive) {
  const int m = 3, k = 4, n = 5;
  Tensor a = random_tensor({m, k}, 2), b = random_tensor({k, n}, 3);
  Tensor out({m, n});
  nn::matmul(a.data(), b.data(), out.data(), m, k, n);
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      float acc = 0;
      for (int p = 0; p < k; ++p) acc += a.at(i, p) * b.at(p, j);
      EXPECT_NEAR(out.at(i, j), acc, 1e-5);
    }
}

TEST(GradCheck, Linear) {
  sp::Rng rng(11);
  nn::Linear layer(6, 4, rng);
  gradcheck(layer, random_tensor({3, 6}, 21));
}

TEST(GradCheck, Conv2dStride1Pad1) {
  sp::Rng rng(12);
  nn::Conv2d layer(2, 3, 3, 1, 1, rng);
  gradcheck(layer, random_tensor({2, 2, 5, 5}, 22));
}

TEST(GradCheck, Conv2dStride2NoPad) {
  sp::Rng rng(13);
  nn::Conv2d layer(3, 2, 3, 2, 0, rng);
  gradcheck(layer, random_tensor({2, 3, 7, 7}, 23));
}

TEST(GradCheck, BatchNorm2d) {
  nn::BatchNorm2d layer(3);
  gradcheck(layer, random_tensor({4, 3, 3, 3}, 24), 5e-2);
}

TEST(GradCheck, ReLU) {
  nn::ReLU layer;
  gradcheck(layer, random_tensor({2, 3, 4, 4}, 25));
}

TEST(GradCheck, MaxPool) {
  nn::MaxPool2d layer(2, 2);
  gradcheck(layer, random_tensor({2, 2, 4, 4}, 26));
}

TEST(GradCheck, AvgPool) {
  nn::AvgPool2d layer(2, 2);
  gradcheck(layer, random_tensor({2, 2, 4, 4}, 27));
}

TEST(GradCheck, GlobalAvgPool) {
  nn::GlobalAvgPool layer;
  gradcheck(layer, random_tensor({2, 3, 4, 4}, 28));
}

TEST(GradCheck, BasicBlockWithDownsample) {
  sp::Rng rng(14);
  nn::BasicBlock block(2, 4, 2, rng, "blk");
  gradcheck(block, random_tensor({2, 2, 6, 6}, 29), 5e-2);
}

TEST(Layers, ReLUForwardValues) {
  nn::ReLU relu;
  Tensor x({4});
  x[0] = -1;
  x[1] = 0;
  x[2] = 2;
  x[3] = -0.5;
  const Tensor y = relu.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0);
  EXPECT_FLOAT_EQ(y[2], 2);
}

TEST(Layers, MaxPoolPicksWindowMax) {
  nn::MaxPool2d pool(2, 2);
  Tensor x({1, 1, 2, 2});
  x[0] = 1;
  x[1] = 5;
  x[2] = -2;
  x[3] = 3;
  const Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.numel(), 1u);
  EXPECT_FLOAT_EQ(y[0], 5);
}

TEST(Layers, DropoutDisabledIsIdentity) {
  nn::Dropout d(0.5);
  const Tensor x = random_tensor({2, 10}, 31);
  const Tensor y = d.forward(x, true);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Layers, DropoutEnabledZeroesRoughlyPFraction) {
  nn::Dropout d(0.5);
  d.set_enabled(true);
  Tensor x({1, 4000});
  x.fill(1.0f);
  const Tensor y = d.forward(x, true);
  int zeros = 0;
  for (std::size_t i = 0; i < y.numel(); ++i)
    if (y[i] == 0.0f) ++zeros;
  EXPECT_NEAR(static_cast<double>(zeros) / 4000.0, 0.5, 0.06);
}

TEST(Loss, CrossEntropyKnownValues) {
  Tensor logits({1, 3});
  logits.at(0, 0) = 0.0f;
  logits.at(0, 1) = 0.0f;
  logits.at(0, 2) = 0.0f;
  const auto r = nn::softmax_cross_entropy(logits, {1});
  EXPECT_NEAR(r.loss, std::log(3.0), 1e-6);
  EXPECT_NEAR(r.grad.at(0, 1), 1.0 / 3.0 - 1.0, 1e-6);
  EXPECT_NEAR(r.grad.at(0, 0), 1.0 / 3.0, 1e-6);
}

TEST(Loss, GradMatchesFiniteDifference) {
  Tensor logits = random_tensor({3, 5}, 33);
  const std::vector<int> labels = {0, 3, 2};
  const auto r = nn::softmax_cross_entropy(logits, labels);
  const double h = 5e-3;  // float32 logits need a coarse step
  for (std::size_t i = 0; i < logits.numel(); i += 3) {
    Tensor lp = logits, lm = logits;
    lp[i] += static_cast<float>(h);
    lm[i] -= static_cast<float>(h);
    const double fd = (nn::softmax_cross_entropy(lp, labels).loss -
                       nn::softmax_cross_entropy(lm, labels).loss) / (2 * h);
    EXPECT_NEAR(r.grad[i], fd, 2e-3);
  }
}

TEST(Optim, AdamDecreasesQuadratic) {
  nn::Param p;
  p.value = Tensor({4});
  p.grad = Tensor({4});
  for (int i = 0; i < 4; ++i) p.value[static_cast<std::size_t>(i)] = 3.0f;
  nn::Adam opt({&p}, {0.1, 0.0, 0.9, 0.999, 1e-8}, {0.1, 0.0, 0.9, 0.999, 1e-8});
  for (int step = 0; step < 200; ++step) {
    opt.zero_grad();
    for (std::size_t i = 0; i < 4; ++i) p.grad[i] = 2.0f * p.value[i];
    opt.step();
  }
  for (std::size_t i = 0; i < 4; ++i) EXPECT_LT(std::abs(p.value[i]), 0.05f);
}

TEST(Optim, FrozenParamsDoNotMove) {
  nn::Param p;
  p.value = Tensor({2});
  p.grad = Tensor({2});
  p.value[0] = 1.0f;
  p.frozen = true;
  nn::Adam opt({&p}, {}, {});
  p.grad[0] = 1.0f;
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.0f);
}

TEST(Optim, GroupFreezeTogglesByGroup) {
  nn::Param a, b;
  a.value = Tensor({1});
  a.grad = Tensor({1});
  a.group = nn::ParamGroup::PafCoeff;
  b.value = Tensor({1});
  b.grad = Tensor({1});
  b.group = nn::ParamGroup::Other;
  nn::Adam opt({&a, &b}, {0.1}, {0.1});
  opt.set_group_frozen(nn::ParamGroup::Other, true);
  EXPECT_FALSE(a.frozen);
  EXPECT_TRUE(b.frozen);
}

TEST(Optim, PerGroupLearningRatesApply) {
  nn::Param a, b;
  a.value = Tensor({1});
  a.grad = Tensor({1});
  a.group = nn::ParamGroup::PafCoeff;
  b.value = Tensor({1});
  b.grad = Tensor({1});
  b.group = nn::ParamGroup::Other;
  nn::Adam opt({&a, &b}, {0.2, 0.0}, {0.01, 0.0});
  a.grad[0] = 1.0f;
  b.grad[0] = 1.0f;
  opt.step();
  // First Adam step moves by ~lr regardless of gradient magnitude.
  EXPECT_NEAR(a.value[0], -0.2, 0.02);
  EXPECT_NEAR(b.value[0], -0.01, 0.002);
}

TEST(Swa, AverageOfTwoSnapshots) {
  nn::Param p;
  p.value = Tensor({1});
  p.grad = Tensor({1});
  nn::SwaAverager swa({&p});
  p.value[0] = 2.0f;
  swa.update();
  p.value[0] = 4.0f;
  swa.update();
  swa.apply();
  EXPECT_FLOAT_EQ(p.value[0], 3.0f);
}

TEST(Model, StateRoundTrip) {
  sp::Rng rng(41);
  auto seq = std::make_unique<nn::Sequential>("m");
  seq->add(std::make_unique<nn::Linear>(4, 3, rng));
  nn::Model model(std::move(seq), "m");
  const auto before = model.state();
  for (nn::Param* p : model.params()) p->value.fill(0.0f);
  model.set_state(before);
  EXPECT_FLOAT_EQ(model.params()[0]->value[0], before[0][0]);
}

TEST(Model, SaveLoadRoundTrip) {
  sp::Rng rng(42);
  auto make = [&](std::uint64_t seed) {
    sp::Rng r(seed);
    auto seq = std::make_unique<nn::Sequential>("m");
    seq->add(std::make_unique<nn::Linear>(4, 3, r));
    return nn::Model(std::move(seq), "m");
  };
  nn::Model a = make(1), b = make(2);
  const std::string path = "/tmp/sp_model_test.bin";
  a.save(path);
  ASSERT_TRUE(b.load(path));
  EXPECT_FLOAT_EQ(a.params()[0]->value[3], b.params()[0]->value[3]);
  std::remove(path.c_str());
}

TEST(Dataset, BatchAssembly) {
  nn::Dataset ds;
  ds.images = random_tensor({6, 1, 2, 2}, 51);
  ds.labels = {0, 1, 2, 0, 1, 2};
  ds.num_classes = 3;
  const nn::Batch b = ds.batch({4, 1});
  EXPECT_EQ(b.x.dim(0), 2);
  EXPECT_EQ(b.y[0], 1);
  EXPECT_FLOAT_EQ(b.x[0], ds.images.at(4, 0, 0, 0));
}

TEST(Dataset, IteratorCoversAllSamples) {
  nn::Dataset ds;
  ds.images = random_tensor({10, 1, 2, 2}, 52);
  ds.labels.assign(10, 0);
  sp::Rng rng(6);
  nn::BatchIterator it(ds, 3, rng);
  nn::Batch b;
  int seen = 0;
  while (it.next(b)) seen += static_cast<int>(b.y.size());
  EXPECT_EQ(seen, 10);
}

TEST(Trainer, LearnsLinearlySeparableData) {
  // Tiny two-class problem: sign of the mean pixel.
  nn::Dataset train, val;
  auto fill = [](nn::Dataset& ds, int n, std::uint64_t seed) {
    ds.images = Tensor({n, 1, 2, 2});
    ds.labels.resize(static_cast<std::size_t>(n));
    ds.num_classes = 2;
    sp::Rng rng(seed);
    for (int i = 0; i < n; ++i) {
      const int label = i % 2;
      for (int j = 0; j < 4; ++j)
        ds.images[static_cast<std::size_t>(i * 4 + j)] =
            static_cast<float>((label ? 1.0 : -1.0) + 0.3 * rng.normal());
      ds.labels[static_cast<std::size_t>(i)] = label;
    }
  };
  fill(train, 200, 61);
  fill(val, 60, 62);

  sp::Rng rng(63);
  auto seq = std::make_unique<nn::Sequential>("lin");
  seq->add(std::make_unique<nn::Flatten>());
  seq->add(std::make_unique<nn::Linear>(4, 2, rng));
  nn::Model model(std::move(seq), "lin");
  nn::TrainConfig tc;
  tc.batch_size = 16;
  tc.other_hp = {0.05, 0.0, 0.9, 0.999, 1e-8};
  tc.paf_hp = tc.other_hp;
  nn::Trainer trainer(model, train, val, tc);
  double last = 0;
  for (int e = 0; e < 5; ++e) last = trainer.run_epoch().val_acc;
  EXPECT_GT(last, 0.95);
}

TEST(Synthetic, DeterministicAndShaped) {
  const auto spec = data::SyntheticSpec::cifar_like(8);
  const auto a = data::make_synthetic(spec);
  const auto b = data::make_synthetic(spec);
  EXPECT_EQ(a.train.size(), spec.train_count);
  EXPECT_EQ(a.val.size(), spec.val_count);
  EXPECT_EQ(a.train.images.dim(2), 8);
  EXPECT_FLOAT_EQ(a.train.images[123], b.train.images[123]);
  EXPECT_EQ(a.train.labels[7], b.train.labels[7]);
}

TEST(Synthetic, CoversAllClasses) {
  const auto d = data::make_synthetic(data::SyntheticSpec::cifar_like(8));
  std::vector<int> seen(10, 0);
  for (int l : d.train.labels) ++seen[static_cast<std::size_t>(l)];
  for (int c = 0; c < 10; ++c) EXPECT_GT(seen[static_cast<std::size_t>(c)], 0) << c;
}

}  // namespace
