#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/check.h"
#include "common/table.h"
#include "smartpaf/fhe_deploy.h"
#include "smartpaf/techniques.h"

namespace {

using namespace sp;
using namespace sp::fhe;

/// Small shared runtime (N=2048, depth 5) for error-path and property tests.
class EdgeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CkksParams p = CkksParams::for_depth(2048, 5, 30);
    p.q_bits[0] = 45;
    p.special_bits = 45;
    rt_ = std::make_unique<smartpaf::FheRuntime>(p);
  }
  static void TearDownTestSuite() { rt_.reset(); }
  static std::unique_ptr<smartpaf::FheRuntime> rt_;
};
std::unique_ptr<smartpaf::FheRuntime> EdgeTest::rt_;

TEST_F(EdgeTest, AddRejectsMismatchedLevels) {
  std::vector<double> v(rt_->ctx().slot_count(), 0.5);
  Ciphertext a = rt_->encrypt(v), b = rt_->encrypt(v);
  rt_->evaluator().drop_to_level(b, b.level() - 1);
  EXPECT_THROW(rt_->evaluator().add(a, b), sp::Error);
}

TEST_F(EdgeTest, AddRejectsMismatchedScales) {
  std::vector<double> v(rt_->ctx().slot_count(), 0.5);
  Ciphertext a = rt_->encrypt(v), b = rt_->encrypt(v);
  b.scale *= 2.0;
  EXPECT_THROW(rt_->evaluator().add(a, b), sp::Error);
}

TEST_F(EdgeTest, RescaleAtLevelZeroThrows) {
  std::vector<double> v(rt_->ctx().slot_count(), 0.5);
  Ciphertext a = rt_->encrypt(v);
  rt_->evaluator().drop_to_level(a, 0);
  EXPECT_THROW(rt_->evaluator().rescale_inplace(a), sp::Error);
}

TEST_F(EdgeTest, DropToLevelRejectsUpwardMoves) {
  std::vector<double> v(rt_->ctx().slot_count(), 0.5);
  Ciphertext a = rt_->encrypt(v);
  rt_->evaluator().drop_to_level(a, 1);
  EXPECT_THROW(rt_->evaluator().drop_to_level(a, 3), sp::Error);
}

TEST_F(EdgeTest, RelinearizeRequiresThreeParts) {
  std::vector<double> v(rt_->ctx().slot_count(), 0.5);
  Ciphertext a = rt_->encrypt(v);
  EXPECT_THROW(rt_->evaluator().relinearize_inplace(a, rt_->relin_key()), sp::Error);
}

TEST_F(EdgeTest, RotateRequiresMatchingGaloisKey) {
  std::vector<double> v(rt_->ctx().slot_count(), 0.5);
  const Ciphertext a = rt_->encrypt(v);
  GaloisKeys empty;
  EXPECT_THROW(rt_->evaluator().rotate(a, 1, empty), sp::Error);
}

TEST_F(EdgeTest, EvalPolyRejectsExcessDegreeForRemainingLevels) {
  std::vector<double> v(rt_->ctx().slot_count(), 0.5);
  Ciphertext a = rt_->encrypt(v);
  rt_->evaluator().drop_to_level(a, 1);
  const approx::Polynomial deg7({0, 1, 0, 1, 0, 1, 0, 1});
  EXPECT_THROW(rt_->paf_evaluator().eval_poly(rt_->evaluator(), a, deg7), sp::Error);
}

TEST_F(EdgeTest, ReluRejectsNonPositiveScale) {
  std::vector<double> v(rt_->ctx().slot_count(), 0.5);
  const Ciphertext a = rt_->encrypt(v);
  const auto paf = approx::make_paf(approx::PafForm::F1_G2);
  EXPECT_THROW(rt_->paf_evaluator().relu(rt_->evaluator(), a, paf, 0.0), sp::Error);
}

TEST_F(EdgeTest, RotationsCompose) {
  // rot(rot(x, a), b) == rot(x, a+b)
  sp::fhe::KeyGenerator kg(rt_->ctx(), 2024);  // FheRuntime's seed -> same secret
  const auto gk = kg.galois_keys({2, 3, 5});
  std::vector<double> v(rt_->ctx().slot_count());
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = 0.001 * static_cast<double>(i % 97);
  fhe::Encryptor enc(rt_->ctx(), kg.public_key(), 9);
  fhe::Decryptor dec(rt_->ctx(), kg.secret_key());
  const Ciphertext ct =
      enc.encrypt(rt_->encoder().encode(v, rt_->ctx().scale(), rt_->ctx().q_count()));
  const Ciphertext two_step =
      rt_->evaluator().rotate(rt_->evaluator().rotate(ct, 2, gk), 3, gk);
  const Ciphertext one_step = rt_->evaluator().rotate(ct, 5, gk);
  const auto a = rt_->encoder().decode(dec.decrypt(two_step));
  const auto b = rt_->encoder().decode(dec.decrypt(one_step));
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-2);
}

/// Property sweep: homomorphic evaluation of random odd polynomials matches
/// the plaintext Horner evaluation for every degree 3..13.
class OddPolyDegree : public EdgeTest, public ::testing::WithParamInterface<int> {};

TEST_P(OddPolyDegree, HomomorphicMatchesPlaintext) {
  const int degree = GetParam();
  sp::Rng rng(static_cast<std::uint64_t>(degree) * 7 + 1);
  std::vector<double> coeffs(static_cast<std::size_t>(degree) + 1, 0.0);
  for (int k = 1; k <= degree; k += 2) coeffs[static_cast<std::size_t>(k)] = rng.uniform(-1.5, 1.5);
  const approx::Polynomial p(coeffs);

  std::vector<double> v(rt_->ctx().slot_count());
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  const Ciphertext ct = rt_->encrypt(v);
  EvalStats stats;
  const Ciphertext out = rt_->paf_evaluator().eval_poly(rt_->evaluator(), ct, p, &stats);
  // Depth is exactly the power-ladder bound.
  EXPECT_EQ(ct.level() - out.level(),
            static_cast<int>(std::ceil(std::log2(degree + 1.0))));
  const auto got = rt_->decrypt(out);
  for (std::size_t i = 0; i < v.size(); i += 97)
    EXPECT_NEAR(got[i], p(v[i]), 2e-2) << "slot " << i;
}

INSTANTIATE_TEST_SUITE_P(Degrees, OddPolyDegree, ::testing::Values(3, 5, 7, 9, 11, 13));

TEST(EdgeChecks, TableRejectsArityMismatch) {
  sp::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), sp::Error);
}

TEST(EdgeChecks, ContextRejectsNonPowerOfTwoN) {
  CkksParams p = CkksParams::test_small();
  p.poly_degree = 3000;
  EXPECT_THROW(CkksContext ctx(p), sp::Error);
}

TEST(EdgeChecks, ContextRejectsEmptyChain) {
  CkksParams p = CkksParams::test_small();
  p.q_bits.clear();
  EXPECT_THROW(CkksContext ctx(p), sp::Error);
}

TEST(EdgeChecks, CompositeRejectsEmptyStageList) {
  EXPECT_THROW(approx::CompositePaf("x", {}), sp::Error);
}

TEST(EdgeChecks, LoadCoeffsRejectsWrongArity) {
  auto paf = approx::make_paf(approx::PafForm::F1_G2);
  EXPECT_THROW(paf.load_coeffs({1.0, 2.0}), sp::Error);
}

}  // namespace
