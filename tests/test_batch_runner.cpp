// BatchRunner correctness net: pack/unpack round-trips, per-input parity of
// the batched pipeline against the unbatched PafEvaluator, amortization of
// the op counters (per-ciphertext costs must NOT scale with the batch), the
// submit/drain queue, and hoisted encrypted extraction.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "smartpaf/batch_runner.h"

namespace {

using namespace sp;
using namespace sp::fhe;

const double kParityTol = std::ldexp(1.0, -20);

/// Odd degree-7 single-stage PAF: depth 3, so window(1) + relu(3+2) fits the
/// depth-6 test chain with room to spare.
approx::CompositePaf test_paf() {
  sp::Rng rng(41);
  std::vector<double> c(8, 0.0);
  for (int k = 1; k <= 7; k += 2) c[static_cast<std::size_t>(k)] = rng.uniform(-1.0, 1.0) / 8.0;
  return approx::CompositePaf("deg7", {approx::Polynomial(c)});
}

std::vector<std::vector<double>> random_batch(int count, int len, std::uint64_t seed,
                                              double lo = -1.0, double hi = 1.0) {
  sp::Rng rng(seed);
  std::vector<std::vector<double>> batch(static_cast<std::size_t>(count));
  for (auto& v : batch) {
    v.resize(static_cast<std::size_t>(len));
    for (auto& x : v) x = rng.uniform(lo, hi);
  }
  return batch;
}

class BatchRunnerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rt_ = std::make_unique<smartpaf::FheRuntime>(CkksParams::for_depth(2048, 6, 40),
                                                 /*seed=*/2027);
  }
  static void TearDownTestSuite() { rt_.reset(); }

  static smartpaf::BatchConfig activation_cfg(int input_size) {
    smartpaf::BatchConfig cfg;
    cfg.input_size = input_size;
    cfg.paf = test_paf();
    cfg.input_scale = 2.0;
    return cfg;
  }

  static std::unique_ptr<smartpaf::FheRuntime> rt_;
};

std::unique_ptr<smartpaf::FheRuntime> BatchRunnerTest::rt_;

TEST(BatchPacking, PackUnpackIdentity) {
  const std::size_t slots = 1024;
  for (int b : {1, 2, static_cast<int>(slots) / 2}) {
    const std::size_t stride = slots / static_cast<std::size_t>(b);
    const auto inputs = random_batch(b, static_cast<int>(stride), 100 + static_cast<std::uint64_t>(b));
    const std::vector<double> flat = Encoder::pack_slots(inputs, stride, slots);
    ASSERT_EQ(flat.size(), slots);
    const auto back = Encoder::unpack_slots(flat, stride, static_cast<std::size_t>(b));
    ASSERT_EQ(back.size(), inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i)
      EXPECT_EQ(back[i], inputs[i]) << "B=" << b << " request " << i;
  }
}

TEST(BatchPacking, ShortInputsZeroPadAndSliceLen) {
  const auto flat = Encoder::pack_slots({{1.0, 2.0}, {3.0}}, 4, 16);
  const std::vector<double> expect = {1, 2, 0, 0, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_EQ(flat, expect);
  const auto sliced = Encoder::unpack_slots(flat, 4, 2, 2);
  EXPECT_EQ(sliced[0], (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(sliced[1], (std::vector<double>{3.0, 0.0}));
}

TEST(BatchPacking, RejectsOversizedBatch) {
  EXPECT_THROW(Encoder::pack_slots(random_batch(3, 4, 1), 4, 8), sp::Error);
  EXPECT_THROW(Encoder::pack_slots({{1.0, 2.0}}, 1, 8), sp::Error);
}

TEST_F(BatchRunnerTest, BatchedMatchesUnbatchedPafEvaluator) {
  // Each request's batched slice must agree with evaluating that request
  // alone through the plain PafEvaluator path (its own ciphertext).
  const int input_size = static_cast<int>(rt_->ctx().slot_count()) / 4;
  smartpaf::BatchRunner runner(*rt_, activation_cfg(input_size));
  ASSERT_EQ(runner.capacity(), 4);

  const auto inputs = random_batch(4, input_size, 7, -2.0, 2.0);
  const auto res = runner.run(inputs);
  ASSERT_EQ(res.outputs.size(), 4u);

  const auto& cfg = runner.config();
  for (std::size_t b = 0; b < inputs.size(); ++b) {
    const Ciphertext alone = rt_->encrypt(inputs[b]);
    const Ciphertext out = rt_->paf_evaluator().relu(rt_->evaluator(), alone, cfg.paf,
                                                     cfg.input_scale);
    const std::vector<double> unbatched = rt_->decrypt(out);
    double worst = 0.0;
    for (int j = 0; j < input_size; ++j)
      worst = std::max(worst, std::abs(res.outputs[b][static_cast<std::size_t>(j)] -
                                       unbatched[static_cast<std::size_t>(j)]));
    EXPECT_LT(worst, kParityTol) << "request " << b;
    EXPECT_LT(res.max_error[b], kParityTol) << "request " << b;
  }
}

TEST_F(BatchRunnerTest, WindowPipelineMatchesPlaintextReference) {
  smartpaf::BatchConfig cfg = activation_cfg(static_cast<int>(rt_->ctx().slot_count()) / 8);
  cfg.window = {0.5, 0.3, 0.2};
  smartpaf::BatchRunner runner(*rt_, cfg);

  const auto inputs = random_batch(runner.capacity(), runner.input_size(), 8, -2.0, 2.0);
  const auto res = runner.run(inputs);
  for (std::size_t b = 0; b < inputs.size(); ++b)
    EXPECT_LT(res.max_error[b], kParityTol) << "request " << b;
  // The fan ran hoisted: one decomposition, window-1 rotations.
  EXPECT_EQ(res.stats.ops.rotations.load(), 2u);
  EXPECT_EQ(res.stats.ops.hoisted_rotations.load(), 2u);
}

TEST_F(BatchRunnerTest, CountersAmortizeAcrossBatchSizes) {
  // The whole point of packing: per-ciphertext op counts are independent of
  // B, so the per-input figures shrink as 1/B instead of staying flat.
  const auto slots = static_cast<int>(rt_->ctx().slot_count());
  smartpaf::BatchConfig cfg = activation_cfg(slots);  // B = 1
  cfg.window = {0.25, 0.25, 0.25, 0.25};
  smartpaf::BatchRunner one(*rt_, cfg);
  const auto res1 = one.run(random_batch(1, slots, 9));

  cfg.input_size = slots / 8;  // B = 8
  smartpaf::BatchRunner eight(*rt_, cfg);
  const auto res8 = eight.run(random_batch(8, slots / 8, 10));

  // Identical whole-ciphertext schedule regardless of batch size...
  EXPECT_EQ(res8.stats.eval.ct_mults, res1.stats.eval.ct_mults);
  EXPECT_EQ(res8.stats.eval.relins, res1.stats.eval.relins);
  EXPECT_EQ(res8.stats.eval.levels_consumed, res1.stats.eval.levels_consumed);
  EXPECT_EQ(res8.stats.ops.rotations.load(), res1.stats.ops.rotations.load());
  EXPECT_EQ(res8.stats.ops.relins.load(), res1.stats.ops.relins.load());

  // ...so the amortized per-input counters divide by 8 exactly.
  EXPECT_DOUBLE_EQ(res8.stats.ops_per_input().rotations,
                   res1.stats.ops_per_input().rotations / 8.0);
  EXPECT_DOUBLE_EQ(res8.stats.eval_per_input().relins,
                   res1.stats.eval_per_input().relins / 8.0);
  EXPECT_DOUBLE_EQ(res8.stats.eval_per_input().ct_mults,
                   res1.stats.eval_per_input().ct_mults / 8.0);
}

TEST_F(BatchRunnerTest, SubmitDrainKeepsOrderAndMatchesRun) {
  const int input_size = static_cast<int>(rt_->ctx().slot_count()) / 2;
  smartpaf::BatchRunner runner(*rt_, activation_cfg(input_size));
  ASSERT_EQ(runner.capacity(), 2);

  // 2 * capacity + 1 requests -> three packed groups, the last partial.
  const auto inputs = random_batch(5, input_size, 11, -2.0, 2.0);
  std::vector<std::uint64_t> tickets;
  for (const auto& in : inputs) tickets.push_back(runner.submit(in));
  EXPECT_EQ(runner.pending(), 5u);

  const auto groups = runner.drain();
  EXPECT_EQ(runner.pending(), 0u);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].ids, (std::vector<std::uint64_t>{tickets[0], tickets[1]}));
  EXPECT_EQ(groups[2].ids, (std::vector<std::uint64_t>{tickets[4]}));
  EXPECT_EQ(groups[2].stats.batch_size, 1);

  // Drained results agree with the synchronous path on the same inputs.
  const auto direct = runner.run({inputs[0], inputs[1]});
  for (std::size_t b = 0; b < 2; ++b) {
    double worst = 0.0;
    for (int j = 0; j < input_size; ++j)
      worst = std::max(worst, std::abs(groups[0].outputs[b][static_cast<std::size_t>(j)] -
                                       direct.outputs[b][static_cast<std::size_t>(j)]));
    EXPECT_LT(worst, kParityTol) << "request " << b;
  }
}

TEST_F(BatchRunnerTest, HoistedExtractDeliversPerRequestCiphertexts) {
  const int input_size = static_cast<int>(rt_->ctx().slot_count()) / 4;
  smartpaf::BatchRunner runner(*rt_, activation_cfg(input_size));
  const auto inputs = random_batch(4, input_size, 12, -2.0, 2.0);

  // Re-derive the packed output ciphertext, then extract requests 0, 1, 3.
  const std::vector<double> flat = Encoder::pack_slots(
      inputs, static_cast<std::size_t>(input_size), rt_->ctx().slot_count());
  const Ciphertext packed = rt_->encrypt(flat);
  const Ciphertext out = rt_->paf_evaluator().relu(
      rt_->evaluator(), packed, runner.config().paf, runner.config().input_scale);
  const auto expect = runner.run(inputs);

  const OpCounters before = rt_->evaluator().counters;
  const std::vector<Ciphertext> extracted = runner.extract(out, {0, 1, 3});
  const OpCounters delta = rt_->evaluator().counters.delta_since(before);
  // One shared decomposition: every nonzero step is served hoisted (request
  // 0 is the identity rotation, returned for free).
  EXPECT_EQ(delta.hoisted_rotations.load(), 2u);
  EXPECT_EQ(delta.rotations.load(), 2u);

  ASSERT_EQ(extracted.size(), 3u);
  const std::vector<int> which = {0, 1, 3};
  for (std::size_t i = 0; i < which.size(); ++i) {
    const std::vector<double> got = rt_->decrypt(extracted[i]);
    double worst = 0.0;
    for (int j = 0; j < input_size; ++j)
      worst = std::max(worst,
                       std::abs(got[static_cast<std::size_t>(j)] -
                                expect.outputs[static_cast<std::size_t>(which[i])]
                                              [static_cast<std::size_t>(j)]));
    EXPECT_LT(worst, kParityTol) << "request " << which[i];
  }
}

TEST_F(BatchRunnerTest, RejectsBadConfigAndOversizedBatch) {
  EXPECT_THROW(smartpaf::BatchRunner(*rt_, smartpaf::BatchConfig{}), sp::Error);

  smartpaf::BatchConfig cfg = activation_cfg(static_cast<int>(rt_->ctx().slot_count()));
  smartpaf::BatchRunner runner(*rt_, cfg);
  EXPECT_THROW(runner.run(random_batch(2, 4, 13)), sp::Error);
  EXPECT_THROW(runner.run({}), sp::Error);
  EXPECT_THROW(runner.extract(rt_->encrypt({1.0}), {runner.capacity()}), sp::Error);
}

TEST_F(BatchRunnerTest, RejectsInputWiderThanSlots) {
  // input_size > slot_count would floor capacity to zero; the constructor
  // must fail with a diagnostic naming both numbers, not divide to nonsense.
  const int slots = static_cast<int>(rt_->ctx().slot_count());
  bool rejected = false;
  try {
    smartpaf::BatchRunner runner(*rt_, activation_cfg(slots + 1));
  } catch (const sp::Error& e) {
    rejected = true;
    const std::string msg = e.what();
    EXPECT_NE(msg.find("exceeds"), std::string::npos);
    EXPECT_NE(msg.find(std::to_string(slots + 1)), std::string::npos);
    EXPECT_NE(msg.find(std::to_string(slots)), std::string::npos);
  }
  EXPECT_TRUE(rejected);
  // The boundary case still works: exactly one request fits.
  smartpaf::BatchRunner full(*rt_, activation_cfg(slots));
  EXPECT_EQ(full.capacity(), 1);
}

}  // namespace
