#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "fhe/modarith.h"
#include "fhe/ntt.h"
#include "fhe/primes.h"
#include "fhe/rns_poly.h"

namespace {

using namespace sp::fhe;

TEST(Modulus, AddSubNegBasics) {
  const Modulus m(97);
  EXPECT_EQ(m.add(90, 10), 3u);
  EXPECT_EQ(m.sub(3, 10), 90u);
  EXPECT_EQ(m.neg(1), 96u);
  EXPECT_EQ(m.neg(0), 0u);
}

TEST(Modulus, MulMatchesNaive) {
  const Modulus m((1ULL << 61) - 1);  // Mersenne-like large odd modulus
  sp::Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const u64 a = rng.next_u64() % m.value();
    const u64 b = rng.next_u64() % m.value();
    EXPECT_EQ(m.mul(a, b), static_cast<u64>(static_cast<u128>(a) * b % m.value()));
  }
}

TEST(Modulus, Reduce128MatchesNaive) {
  const Modulus m(1152921504606845473ULL);  // arbitrary large prime-ish odd
  sp::Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const u128 x = (static_cast<u128>(rng.next_u64()) << 64) | rng.next_u64();
    EXPECT_EQ(m.reduce128(x), static_cast<u64>(x % m.value()));
  }
}

TEST(Modulus, PowAndInv) {
  const Modulus m(65537);
  EXPECT_EQ(m.pow(3, 0), 1u);
  EXPECT_EQ(m.pow(3, 4), 81u);
  for (u64 a : {2ULL, 3ULL, 12345ULL}) {
    EXPECT_EQ(m.mul(a, m.inv(a)), 1u);
  }
}

TEST(Modulus, SignedConversions) {
  const Modulus m(101);
  EXPECT_EQ(m.from_signed(-1), 100u);
  EXPECT_EQ(m.from_signed(-102), 100u);
  EXPECT_EQ(m.to_signed(100), -1);
  EXPECT_EQ(m.to_signed(50), 50);
}

TEST(Shoup, LazyProductWithinTwoQ) {
  const u64 q = (1ULL << 59) + 21;  // not prime; Shoup bound is arithmetic-only
  sp::Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const u64 w = rng.next_u64() % q;
    const u64 ws = shoup_precompute(w, q);
    const u64 x = rng.next_u64();
    const u64 r = mul_shoup_lazy(x, w, ws, q);
    EXPECT_LT(r, 2 * q);
    EXPECT_EQ(r % q, static_cast<u64>(static_cast<u128>(x) * w % q));
  }
}

TEST(Primes, MillerRabinKnownValues) {
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(1));
  EXPECT_FALSE(is_prime(561));          // Carmichael
  EXPECT_TRUE(is_prime(1000000007ULL));
  EXPECT_FALSE(is_prime(1000000007ULL * 3));
  EXPECT_TRUE(is_prime((1ULL << 61) - 1));  // Mersenne prime
}

TEST(Primes, GeneratedPrimesAreNttFriendly) {
  const std::size_t n = 1024;
  const auto primes = generate_ntt_primes(40, 5, n);
  ASSERT_EQ(primes.size(), 5u);
  for (u64 q : primes) {
    EXPECT_TRUE(is_prime(q));
    EXPECT_EQ((q - 1) % (2 * n), 0u);
    EXPECT_GE(q, 1ULL << 39);
    EXPECT_LT(q, 1ULL << 40);
  }
  // Distinct.
  for (std::size_t i = 0; i < primes.size(); ++i)
    for (std::size_t j = i + 1; j < primes.size(); ++j) EXPECT_NE(primes[i], primes[j]);
}

TEST(Primes, ExclusionRespected) {
  const std::size_t n = 512;
  const auto first = generate_ntt_primes(30, 1, n);
  const auto second = generate_ntt_primes(30, 1, n, first);
  EXPECT_NE(first[0], second[0]);
}

TEST(Primes, PrimitiveRootHasExactOrder) {
  const std::size_t n = 256;
  const u64 q = generate_ntt_primes(30, 1, n)[0];
  const u64 psi = find_primitive_root(q, 2 * n);
  const Modulus m(q);
  EXPECT_EQ(m.pow(psi, static_cast<u64>(n)), q - 1);       // psi^n = -1
  EXPECT_EQ(m.pow(psi, static_cast<u64>(2 * n)), 1u);      // psi^2n = 1
}

class NttSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NttSize, ForwardInverseRoundTrip) {
  const std::size_t n = GetParam();
  const u64 q = generate_ntt_primes(45, 1, n)[0];
  NttTables ntt(n, Modulus(q));
  sp::Rng rng(n);
  std::vector<u64> a(n), orig;
  for (auto& v : a) v = rng.next_u64() % q;
  orig = a;
  ntt.forward(a.data());
  ntt.inverse(a.data());
  EXPECT_EQ(a, orig);
}

INSTANTIATE_TEST_SUITE_P(Sizes, NttSize, ::testing::Values(8, 64, 1024, 4096));

TEST(Ntt, NegacyclicConvolutionMatchesSchoolbook) {
  const std::size_t n = 16;
  const u64 q = generate_ntt_primes(30, 1, n)[0];
  const Modulus m(q);
  NttTables ntt(n, m);
  sp::Rng rng(99);
  std::vector<u64> a(n), b(n);
  for (auto& v : a) v = rng.next_u64() % q;
  for (auto& v : b) v = rng.next_u64() % q;

  // Schoolbook negacyclic product: X^n = -1.
  std::vector<u64> expect(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const u64 prod = m.mul(a[i], b[j]);
      const std::size_t k = i + j;
      if (k < n)
        expect[k] = m.add(expect[k], prod);
      else
        expect[k - n] = m.sub(expect[k - n], prod);
    }
  }
  ntt.forward(a.data());
  ntt.forward(b.data());
  for (std::size_t i = 0; i < n; ++i) a[i] = m.mul(a[i], b[i]);
  ntt.inverse(a.data());
  EXPECT_EQ(a, expect);
}

TEST(RnsPoly, AddSubNegateRoundTrip) {
  CkksContext ctx(CkksParams::test_small());
  sp::Rng rng(5);
  RnsPoly a(&ctx, 3, false, false), b(&ctx, 3, false, false);
  a.sample_gaussian(rng, 3.2);
  b.sample_gaussian(rng, 3.2);
  RnsPoly c = a;
  c.add_inplace(b);
  c.sub_inplace(b);
  for (int r = 0; r < c.row_count(); ++r)
    for (std::size_t i = 0; i < c.n(); ++i) EXPECT_EQ(c.row(r)[i], a.row(r)[i]);
  RnsPoly d = a;
  d.negate_inplace();
  d.add_inplace(a);
  for (int r = 0; r < d.row_count(); ++r)
    for (std::size_t i = 0; i < d.n(); ++i) EXPECT_EQ(d.row(r)[i], 0u);
}

TEST(RnsPoly, NttMulMatchesScalarConvolutionViaConstant) {
  CkksContext ctx(CkksParams::test_small());
  // Multiply by the constant polynomial 3: every residue triples.
  RnsPoly a(&ctx, 2, false, false);
  std::vector<std::int64_t> coeffs(ctx.n(), 0);
  coeffs[0] = 7;
  coeffs[5] = -2;
  a.set_from_signed(coeffs);
  RnsPoly three(&ctx, 2, false, false);
  std::vector<std::int64_t> c3(ctx.n(), 0);
  c3[0] = 3;
  three.set_from_signed(c3);
  a.to_ntt();
  three.to_ntt();
  a.mul_inplace(three);
  a.from_ntt();
  EXPECT_EQ(a.row_mod(0).to_signed(a.row(0)[0]), 21);
  EXPECT_EQ(a.row_mod(0).to_signed(a.row(0)[5]), -6);
}

TEST(RnsPoly, DropLastPreservesRemainingRows) {
  CkksContext ctx(CkksParams::test_small());
  sp::Rng rng(8);
  RnsPoly a(&ctx, 3, false, false);
  a.sample_gaussian(rng, 3.2);
  const u64 first = a.row(0)[17];
  a.drop_last_q();
  EXPECT_EQ(a.q_count(), 2);
  EXPECT_EQ(a.row(0)[17], first);
}

TEST(RnsPoly, TernarySecretsAreTernary) {
  CkksContext ctx(CkksParams::test_small());
  sp::Rng rng(4);
  RnsPoly s(&ctx, 2, true, false);
  s.sample_ternary(rng);
  for (std::size_t i = 0; i < s.n(); ++i) {
    const auto v = s.row_mod(0).to_signed(s.row(0)[i]);
    EXPECT_TRUE(v == -1 || v == 0 || v == 1);
    // Same underlying integer in every row.
    EXPECT_EQ(s.row_mod(1).to_signed(s.row(1)[i]), v);
  }
}

}  // namespace
