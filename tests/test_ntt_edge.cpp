#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "fhe/modarith.h"
#include "fhe/ntt.h"
#include "fhe/primes.h"

namespace {

using namespace sp::fhe;

/// Schoolbook negacyclic product (X^n = -1), the O(n^2) reference.
std::vector<u64> naive_negacyclic(const std::vector<u64>& a, const std::vector<u64>& b,
                                  const Modulus& m) {
  const std::size_t n = a.size();
  std::vector<u64> out(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const u64 prod = m.mul(a[i], b[j]);
      const std::size_t k = i + j;
      if (k < n)
        out[k] = m.add(out[k], prod);
      else
        out[k - n] = m.sub(out[k - n], prod);
    }
  }
  return out;
}

/// Forward/inverse round trip across the degenerate (n = 1, 2) and the
/// CKKS-sized (1024, 4096) rings.
class NttEdgeSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NttEdgeSize, ForwardInverseRoundTrip) {
  const std::size_t n = GetParam();
  const u64 q = generate_ntt_primes(45, 1, n)[0];
  NttTables ntt(n, Modulus(q));
  sp::Rng rng(1234 + n);
  std::vector<u64> a(n), orig;
  for (auto& v : a) v = rng.next_u64() % q;
  orig = a;
  ntt.forward(a.data());
  ntt.inverse(a.data());
  EXPECT_EQ(a, orig);
}

TEST_P(NttEdgeSize, NegacyclicConvolutionMatchesSchoolbook) {
  const std::size_t n = GetParam();
  const u64 q = generate_ntt_primes(30, 1, n)[0];
  const Modulus m(q);
  NttTables ntt(n, m);
  sp::Rng rng(99 + n);
  std::vector<u64> a(n), b(n);
  for (auto& v : a) v = rng.next_u64() % q;
  for (auto& v : b) v = rng.next_u64() % q;
  const std::vector<u64> expect = naive_negacyclic(a, b, m);

  ntt.forward(a.data());
  ntt.forward(b.data());
  for (std::size_t i = 0; i < n; ++i) a[i] = m.mul(a[i], b[i]);
  ntt.inverse(a.data());
  EXPECT_EQ(a, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, NttEdgeSize, ::testing::Values(1, 2, 1024, 4096));

TEST(NttEdge, SizeOneIsScalarRing) {
  // Z[X]/(X + 1) with n = 1: NTT is the identity and the negacyclic product
  // is plain modular multiplication.
  const u64 q = generate_ntt_primes(30, 1, 1)[0];
  NttTables ntt(1, Modulus(q));
  u64 a = 12345 % q;
  const u64 orig = a;
  ntt.forward(&a);
  EXPECT_EQ(a, orig);
  ntt.inverse(&a);
  EXPECT_EQ(a, orig);
}

TEST(NttEdge, RejectsNonPowerOfTwo) {
  const u64 q = generate_ntt_primes(30, 1, 8)[0];
  EXPECT_THROW(NttTables(3, Modulus(q)), sp::Error);
  EXPECT_THROW(NttTables(0, Modulus(q)), sp::Error);
  EXPECT_THROW(NttTables(12, Modulus(q)), sp::Error);
}

/// Shoup lazy reduction stays within [0, 2q) for arbitrary 64-bit x across
/// modulus widths, and the fully-reduced variant lands in [0, q).
class ShoupWidth : public ::testing::TestWithParam<int> {};

TEST_P(ShoupWidth, LazyAndExactBounds) {
  const int bits = GetParam();
  const u64 q = generate_ntt_primes(bits, 1, 64)[0];
  sp::Rng rng(static_cast<std::uint64_t>(bits));
  for (int i = 0; i < 2000; ++i) {
    const u64 w = rng.next_u64() % q;
    const u64 ws = shoup_precompute(w, q);
    const u64 x = rng.next_u64();
    const u64 lazy = mul_shoup_lazy(x, w, ws, q);
    const u64 exact = mul_shoup(x, w, ws, q);
    const u64 ref = static_cast<u64>(static_cast<u128>(x) * w % q);
    EXPECT_LT(lazy, 2 * q);
    EXPECT_EQ(lazy % q, ref);
    EXPECT_LT(exact, q);
    EXPECT_EQ(exact, ref);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ShoupWidth, ::testing::Values(20, 30, 45, 59, 61));

TEST(ModArithEdge, ShoupExtremeOperands) {
  const u64 q = generate_ntt_primes(59, 1, 64)[0];
  for (u64 w : std::vector<u64>{0, 1, q - 1}) {
    const u64 ws = shoup_precompute(w, q);
    for (u64 x : std::vector<u64>{0, 1, q - 1, ~static_cast<u64>(0)}) {
      const u64 ref = static_cast<u64>(static_cast<u128>(x) * w % q);
      EXPECT_LT(mul_shoup_lazy(x, w, ws, q), 2 * q);
      EXPECT_EQ(mul_shoup(x, w, ws, q), ref);
    }
  }
}

TEST(ModArithEdge, Reduce128Extremes) {
  const Modulus m(generate_ntt_primes(61, 1, 64)[0]);
  const u128 max128 = ~static_cast<u128>(0);
  EXPECT_EQ(m.reduce128(0), 0u);
  EXPECT_EQ(m.reduce128(max128), static_cast<u64>(max128 % m.value()));
  EXPECT_EQ(m.reduce128(static_cast<u128>(m.value()) * m.value()), 0u);
}

TEST(ModArithEdge, SignedConversionExtremes) {
  const Modulus m(97);
  // from_signed lands in [0, q) even at the int64 extremes, and agrees with
  // the sign-corrected remainder.
  for (std::int64_t v : {std::numeric_limits<std::int64_t>::min(),
                         std::numeric_limits<std::int64_t>::max(), std::int64_t{-97},
                         std::int64_t{-1}, std::int64_t{0}}) {
    const u64 r = m.from_signed(v);
    EXPECT_LT(r, 97u);
    EXPECT_EQ(static_cast<std::int64_t>(r), ((v % 97) + 97) % 97);
  }
  // Centered representative boundary: q/2 stays positive, q/2 + 1 wraps.
  EXPECT_EQ(m.to_signed(48), 48);
  EXPECT_EQ(m.to_signed(49), -48);
}

}  // namespace
