#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "models/zoo.h"
#include "nn/layers.h"
#include "smartpaf/coefficient_tuning.h"
#include "smartpaf/scheduler.h"

namespace {

using namespace sp;
using approx::PafForm;
using nn::Tensor;
using namespace sp::smartpaf;

Tensor random_tensor(std::vector<int> shape, std::uint64_t seed, double stddev = 1.0) {
  Tensor t(std::move(shape));
  sp::Rng rng(seed);
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

TEST(PafActivation, ApproximatesReluWithGoodSignApprox) {
  // With the high-accuracy 27-degree PAF, the layer should track ReLU well.
  PafActivation layer(approx::make_paf(PafForm::ALPHA10_D27), "paf");
  Tensor x = random_tensor({2, 3, 4, 4}, 7);
  const Tensor y = layer.forward(x, /*train=*/false);
  for (std::size_t i = 0; i < x.numel(); ++i) {
    const float expect = std::max(x[i], 0.0f);
    EXPECT_NEAR(y[i], expect, 0.05f * std::max(1.0f, std::abs(x[i])));
  }
}

TEST(PafActivation, DynamicScaleTracksRunningMax) {
  PafActivation layer(approx::make_paf(PafForm::F1_G2), "paf");
  Tensor x({4});
  x[0] = -3.0f;
  x[1] = 7.0f;
  x[2] = 0.5f;
  x[3] = -1.0f;
  layer.forward(x, /*train=*/true);
  EXPECT_FLOAT_EQ(layer.running_max(), 7.0f);
  x[1] = 2.0f;
  layer.forward(x, /*train=*/true);
  EXPECT_FLOAT_EQ(layer.running_max(), 7.0f);  // monotone
}

TEST(PafActivation, StaticConversionFreezesScale) {
  PafActivation layer(approx::make_paf(PafForm::F1_G2), "paf");
  Tensor x({2});
  x[0] = 4.0f;
  x[1] = -2.0f;
  layer.forward(x, /*train=*/true);
  layer.convert_to_static();
  EXPECT_EQ(layer.mode(), ScaleMode::Static);
  EXPECT_FLOAT_EQ(layer.static_scale(), 4.0f);
}

TEST(PafActivation, GradCheckInputAndCoeffs) {
  PafActivation layer(approx::make_paf(PafForm::F1_G2), "paf");
  layer.set_static_scale(2.0f);  // fixed scale so FD is smooth
  Tensor x = random_tensor({2, 8}, 17, 0.8);

  Tensor y = layer.forward(x, true);
  Tensor gy(y.shape());
  sp::Rng rng(3);
  for (std::size_t i = 0; i < gy.numel(); ++i)
    gy[i] = static_cast<float>(rng.uniform(-1, 1));
  std::vector<nn::Param*> ps;
  layer.collect_params(ps);
  ps[0]->grad.fill(0.0f);
  const Tensor gx = layer.backward(gy);

  auto loss = [&](const Tensor& xx) {
    const Tensor yy = layer.forward(const_cast<Tensor&>(xx), true);
    double acc = 0;
    for (std::size_t i = 0; i < yy.numel(); ++i) acc += gy[i] * yy[i];
    return acc;
  };
  const double h = 1e-3;
  for (std::size_t i = 0; i < x.numel(); i += 3) {
    Tensor xp = x, xm = x;
    xp[i] += static_cast<float>(h);
    xm[i] -= static_cast<float>(h);
    EXPECT_NEAR(gx[i], (loss(xp) - loss(xm)) / (2 * h), 3e-2) << i;
  }
  // Coefficient gradients (odd slots only; even slots are masked).
  for (std::size_t k = 1; k < ps[0]->value.numel(); k += 2) {
    const float orig = ps[0]->value[k];
    ps[0]->value[k] = orig + static_cast<float>(h);
    const double lp = loss(x);
    ps[0]->value[k] = orig - static_cast<float>(h);
    const double lm = loss(x);
    ps[0]->value[k] = orig;
    EXPECT_NEAR(ps[0]->grad[k], (lp - lm) / (2 * h), 3e-2) << "coeff " << k;
  }
}

TEST(PafActivation, EvenCoeffGradsMasked) {
  PafActivation layer(approx::make_paf(PafForm::F1_G2), "paf");
  Tensor x = random_tensor({8}, 19);
  Tensor y = layer.forward(x, true);
  Tensor gy(y.shape());
  gy.fill(1.0f);
  layer.backward(gy);
  std::vector<nn::Param*> ps;
  layer.collect_params(ps);
  // Flat layout: stage coeffs ascending; even positions are even degrees.
  EXPECT_FLOAT_EQ(ps[0]->grad[0], 0.0f);
  EXPECT_FLOAT_EQ(ps[0]->grad[2], 0.0f);
}

TEST(PafMaxPool, ApproximatesMaxPoolWithGoodPaf) {
  PafMaxPool layer(approx::make_paf(PafForm::ALPHA10_D27), 2, 2, 0, "pmax");
  nn::MaxPool2d ref(2, 2);
  Tensor x = random_tensor({1, 2, 4, 4}, 23);
  const Tensor a = layer.forward(x, false);
  const Tensor b = ref.forward(x, false);
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_NEAR(a[i], b[i], 0.12f);
}

TEST(PafMaxPool, LowDegradePafIsWorseThanHighDegree) {
  // Error accumulation through the tournament: the low-degree PAF must show
  // larger max-pool error than the 27-degree one (paper §5.4.3).
  Tensor x = random_tensor({2, 3, 6, 6}, 29);
  nn::MaxPool2d ref(2, 2);
  const Tensor truth = ref.forward(x, false);
  auto err = [&](PafForm form) {
    PafMaxPool layer(approx::make_paf(form), 2, 2, 0, "pmax");
    const Tensor got = layer.forward(x, false);
    double worst = 0;
    for (std::size_t i = 0; i < got.numel(); ++i)
      worst = std::max(worst, static_cast<double>(std::abs(got[i] - truth[i])));
    return worst;
  };
  EXPECT_LT(err(PafForm::ALPHA10_D27), err(PafForm::F1_G2));
}

TEST(PafMaxPool, GradCheck) {
  PafMaxPool layer(approx::make_paf(PafForm::F1_G2), 2, 2, 0, "pmax");
  layer.set_static_scale(3.0f);
  Tensor x = random_tensor({1, 1, 4, 4}, 31);
  Tensor y = layer.forward(x, true);
  Tensor gy(y.shape());
  sp::Rng rng(5);
  for (std::size_t i = 0; i < gy.numel(); ++i)
    gy[i] = static_cast<float>(rng.uniform(-1, 1));
  std::vector<nn::Param*> ps;
  layer.collect_params(ps);
  ps[0]->grad.fill(0.0f);
  const Tensor gx = layer.backward(gy);

  auto loss = [&](const Tensor& xx) {
    const Tensor yy = layer.forward(const_cast<Tensor&>(xx), true);
    double acc = 0;
    for (std::size_t i = 0; i < yy.numel(); ++i) acc += gy[i] * yy[i];
    return acc;
  };
  const double h = 1e-3;
  for (std::size_t i = 0; i < x.numel(); i += 2) {
    Tensor xp = x, xm = x;
    xp[i] += static_cast<float>(h);
    xm[i] -= static_cast<float>(h);
    EXPECT_NEAR(gx[i], (loss(xp) - loss(xm)) / (2 * h), 3e-2) << i;
  }
}

TEST(Replace, FindsAllSitesInOrder) {
  models::ModelConfig mc;
  mc.width = 4;
  auto model = models::resnet18(mc);
  const auto sites = find_nonpoly_sites(model);
  ASSERT_EQ(sites.size(), 18u);  // 17 ReLU + 1 MaxPool
  int pools = 0;
  for (const auto& s : sites)
    if (s.kind == SiteKind::MaxPool) ++pools;
  EXPECT_EQ(pools, 1);
  // The stem ReLU comes before the stem MaxPool.
  EXPECT_EQ(sites[0].kind, SiteKind::ReLU);
  EXPECT_EQ(sites[1].kind, SiteKind::MaxPool);
}

TEST(Replace, Vgg19SiteCountsMatchPaper) {
  models::ModelConfig mc;
  mc.width = 2;
  auto model = models::vgg19(mc);
  const auto sites = find_nonpoly_sites(model);
  int relus = 0, pools = 0;
  for (const auto& s : sites)
    (s.kind == SiteKind::ReLU ? relus : pools)++;
  EXPECT_EQ(relus, 18);  // paper §5.1
  EXPECT_EQ(pools, 5);
}

TEST(Replace, SingleSiteReplacement) {
  models::ModelConfig mc;
  mc.width = 4;
  auto model = models::cnn7(mc);
  const auto before = find_nonpoly_sites(model).size();
  auto sites = find_nonpoly_sites(model);
  replace_site(model, sites[0], approx::make_paf(PafForm::F1_G2));
  EXPECT_EQ(find_nonpoly_sites(model).size(), before - 1);
  EXPECT_EQ(find_paf_layers(model).size(), 1u);
}

TEST(Replace, ReplaceAllLeavesNoNonPoly) {
  models::ModelConfig mc;
  mc.width = 4;
  auto model = models::resnet18(mc);
  ReplaceOptions opts;
  opts.form = PafForm::F1_G2;
  const auto created = replace_all(model, opts);
  EXPECT_EQ(created.size(), 18u);
  EXPECT_TRUE(find_nonpoly_sites(model).empty());
  EXPECT_EQ(find_paf_layers(model).size(), 18u);
}

TEST(Replace, ReluOnlyKeepsMaxPool) {
  models::ModelConfig mc;
  mc.width = 4;
  auto model = models::resnet18(mc);
  ReplaceOptions opts;
  opts.form = PafForm::F1_G2;
  opts.replace_maxpool = false;
  replace_all(model, opts);
  const auto rest = find_nonpoly_sites(model);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].kind, SiteKind::MaxPool);
}

TEST(Replace, ModelStillRunsAfterReplacement) {
  models::ModelConfig mc;
  mc.width = 4;
  auto model = models::resnet18(mc);
  ReplaceOptions opts;
  opts.form = PafForm::F1SQ_G1SQ;
  replace_all(model, opts);
  const Tensor x = random_tensor({2, 3, 16, 16}, 37);
  const Tensor y = model.forward(x, false);
  EXPECT_EQ(y.dim(1), 10);
  for (std::size_t i = 0; i < y.numel(); ++i) EXPECT_TRUE(std::isfinite(y[i]));
}

TEST(Replace, PafParamsJoinPafGroup) {
  models::ModelConfig mc;
  mc.width = 4;
  auto model = models::cnn7(mc);
  ReplaceOptions opts;
  opts.form = PafForm::F1_G2;
  replace_all(model, opts);
  int paf_params = 0;
  for (nn::Param* p : model.params())
    if (p->group == nn::ParamGroup::PafCoeff) ++paf_params;
  EXPECT_EQ(paf_params, static_cast<int>(find_paf_layers(model).size()));
}

TEST(Replace, FreezeAfterSite) {
  models::ModelConfig mc;
  mc.width = 4;
  auto model = models::cnn7(mc);
  unfreeze_all(model);
  freeze_after_site(model, 0);  // freeze everything after the first ReLU
  // conv0 (before site 0) stays trainable; fc1 (last layer) is frozen.
  bool conv0_frozen = true, fc1_frozen = false;
  for (nn::Param* p : model.params()) {
    if (p->name.rfind("conv0", 0) == 0) conv0_frozen = conv0_frozen && p->frozen;
    if (p->name.rfind("fc1", 0) == 0) fc1_frozen = fc1_frozen || p->frozen;
  }
  EXPECT_FALSE(conv0_frozen);
  EXPECT_TRUE(fc1_frozen);
  unfreeze_all(model);
  for (nn::Param* p : model.params()) EXPECT_FALSE(p->frozen);
}

TEST(Techniques, ApplyTrainTarget) {
  models::ModelConfig mc;
  mc.width = 4;
  auto model = models::cnn7(mc);
  ReplaceOptions opts;
  opts.form = PafForm::F1_G2;
  replace_all(model, opts);
  apply_train_target(model, TrainTarget::PafOnly);
  for (nn::Param* p : model.params())
    EXPECT_EQ(p->frozen, p->group != nn::ParamGroup::PafCoeff) << p->name;
  apply_train_target(model, TrainTarget::OtherOnly);
  for (nn::Param* p : model.params())
    EXPECT_EQ(p->frozen, p->group != nn::ParamGroup::Other) << p->name;
}

TEST(CoefficientTuning, FitReducesProfiledError) {
  // Inputs concentrated in [-0.5, 0.5]: CT should beat the generic init.
  sp::Rng rng(41);
  std::vector<double> samples(1500);
  for (auto& s : samples) s = rng.normal(0.0, 0.2);
  const double scale = 1.0;
  const approx::CompositePaf init = approx::make_paf(PafForm::F1_G2);
  CtConfig cfg;
  cfg.fit_iters = 250;
  const auto tuned_flat = fit_paf_to_profile(init, samples, scale, false, cfg);
  approx::CompositePaf tuned = init;
  tuned.load_coeffs(tuned_flat);
  auto err = [&](const approx::CompositePaf& p) {
    double acc = 0;
    for (double x : samples) {
      const double pred = 0.5 * (x + x * p(x / scale));
      const double diff = pred - std::max(x, 0.0);
      acc += diff * diff;
    }
    return acc;
  };
  EXPECT_LT(err(tuned), err(init) * 0.8);
}

TEST(CoefficientTuning, ProducesPerSiteCoeffsAndScales) {
  models::ModelConfig mc;
  mc.width = 4;
  mc.num_classes = 4;
  auto model = models::cnn7(mc);
  data::SyntheticSpec spec = data::SyntheticSpec::cifar_like(8);
  spec.num_classes = 4;
  spec.train_count = 64;
  spec.val_count = 32;
  const auto ds = data::make_synthetic(spec);
  CtConfig cfg;
  cfg.calib_batches = 1;
  cfg.fit_iters = 20;
  const CtResult ct = coefficient_tuning(model, ds.train, PafForm::F1_G2, cfg);
  const auto sites = find_nonpoly_sites(model);
  ASSERT_EQ(ct.coeffs.size(), sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    EXPECT_FALSE(ct.coeffs[i].empty()) << i;
    EXPECT_GT(ct.abs_max[i], 0.0) << i;
  }
  // Hooks must be detached: another forward should not crash or re-record.
  model.forward(ds.val.batch({0}).x, false);
}

TEST(Scheduler, SmokeRunOnTinyModel) {
  models::ModelConfig mc;
  mc.width = 4;
  mc.num_classes = 4;
  auto model = models::cnn7(mc);
  data::SyntheticSpec spec = data::SyntheticSpec::cifar_like(8);
  spec.num_classes = 4;
  spec.train_count = 96;
  spec.val_count = 48;
  const auto ds = data::make_synthetic(spec);

  // Pre-train briefly so the scheduler starts from a working model.
  nn::TrainConfig tc;
  tc.batch_size = 32;
  tc.paf_hp = {1e-3, 0.0};
  tc.other_hp = {1e-3, 0.0};
  nn::Trainer tr(model, ds.train, ds.val, tc);
  for (int e = 0; e < 2; ++e) tr.run_epoch();

  SchedulerConfig cfg;
  cfg.form = PafForm::F1SQ_G1SQ;
  cfg.group_epochs = 1;
  cfg.max_groups_per_step = 1;
  cfg.final_network_train = false;
  cfg.ct.calib_batches = 1;
  cfg.ct.fit_iters = 15;
  cfg.train = tc;
  Scheduler sched(model, ds.train, ds.val, cfg);
  const SchedulerResult res = sched.run();

  EXPECT_TRUE(find_nonpoly_sites(model).empty());
  EXPECT_EQ(res.final_coeffs.size(), find_paf_layers(model).size());
  EXPECT_GE(res.best_acc_ds, 0.0);
  EXPECT_GT(res.epochs_run, 0);
  EXPECT_FALSE(res.trace.empty());
  // Model is left FHE-deployable (Static Scaling everywhere).
  for (PafLayerBase* p : find_paf_layers(model))
    EXPECT_EQ(p->mode(), ScaleMode::Static);
}

TEST(Scheduler, BaselineModeKeepsPafCoeffsUntouched) {
  models::ModelConfig mc;
  mc.width = 4;
  mc.num_classes = 4;
  auto model = models::cnn7(mc);
  data::SyntheticSpec spec = data::SyntheticSpec::cifar_like(8);
  spec.num_classes = 4;
  spec.train_count = 64;
  spec.val_count = 32;
  const auto ds = data::make_synthetic(spec);

  SchedulerConfig cfg;
  cfg.form = PafForm::F1_G2;
  cfg.use_ct = false;
  cfg.progressive_replace = false;
  cfg.progressive_train = false;
  cfg.use_at = false;
  cfg.train_paf = false;  // prior-work baseline: PAFs excluded from training
  cfg.group_epochs = 1;
  cfg.max_groups_per_step = 1;
  cfg.final_network_train = false;
  cfg.train.batch_size = 32;
  Scheduler sched(model, ds.train, ds.val, cfg);
  sched.run();

  const auto initial = approx::make_paf(PafForm::F1_G2).flatten_coeffs();
  for (PafLayerBase* p : find_paf_layers(model)) {
    const auto got = p->coeffs();
    for (std::size_t i = 0; i < got.size(); ++i)
      EXPECT_NEAR(got[i], initial[i], 1e-6) << p->name() << " coeff " << i;
  }
}

}  // namespace
