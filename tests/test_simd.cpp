// SIMD kernel-layer contract: every compiled tier (scalar / AVX2 / AVX-512)
// must be bit-identical on every kernel — the dispatch decision can change
// throughput only, never an FHE result. Covers the raw kernels across sizes
// incl. non-lane-multiple tails and lazy [0, 4q) inputs, the NTT on all
// tiers, the batched (sub-row split) NTT entry points across thread counts,
// the flat RnsPoly row-drop layout, and an end-to-end FhePipeline::run
// identity sweep over (tier x thread count).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "fhe/context.h"
#include "fhe/ntt.h"
#include "fhe/primes.h"
#include "fhe/rns_poly.h"
#include "fhe/simd/simd.h"
#include "smartpaf/fhe_deploy.h"
#include "smartpaf/pipeline.h"
#include "smartpaf/pipeline_planner.h"

namespace {

using namespace sp;
using namespace sp::fhe;

const std::vector<std::size_t> kSizes = {1, 2, 3, 7, 8, 31, 1023, 1024, 4096, 8192};

std::vector<simd::Tier> supported_tiers() {
  std::vector<simd::Tier> out;
  for (simd::Tier t : {simd::Tier::kScalar, simd::Tier::kAvx2, simd::Tier::kAvx512})
    if (simd::tier_supported(t)) out.push_back(t);
  return out;
}

const simd::Kernels* table_for(simd::Tier t) {
  switch (t) {
    case simd::Tier::kScalar:
      return simd::detail::scalar_kernels();
    case simd::Tier::kAvx2:
      return simd::detail::avx2_kernels();
    case simd::Tier::kAvx512:
      return simd::detail::avx512_kernels();
  }
  return nullptr;
}

/// RAII guard: pins a tier (and thread count) for one scope, restores after.
struct TierGuard {
  simd::Tier saved;
  explicit TierGuard(simd::Tier t) : saved(simd::active_tier()) {
    EXPECT_TRUE(simd::set_tier(t));
  }
  ~TierGuard() { simd::set_tier(saved); }
};

u64 test_prime() {
  static const u64 q = generate_ntt_primes(60, 1, 8192)[0];  // 1 mod 2*8192
  return q;
}

u64 small_prime() {
  static const u64 q = generate_ntt_primes(40, 1, 8192)[0];
  return q;
}

std::vector<u64> random_below(sp::Rng& rng, std::size_t n, u64 bound) {
  std::vector<u64> v(n);
  for (auto& x : v) x = rng.next_u64() % bound;
  return v;
}

TEST(SimdKernels, ElementwiseTiersMatchScalar) {
  const simd::Kernels* ref = simd::detail::scalar_kernels();
  ASSERT_NE(ref, nullptr);
  for (u64 q : {test_prime(), small_prime()}) {
    for (std::size_t n : kSizes) {
      sp::Rng rng(n * 31 + (q & 0xffff));
      const std::vector<u64> a0 = random_below(rng, n, q);
      const std::vector<u64> b = random_below(rng, n, q);
      const u64 w = rng.next_u64() % q;
      const u64 ws = shoup_precompute(w, q);
      // Lazy inputs for mul_shoup: the contract allows ANY 64-bit value.
      std::vector<u64> lazy(n);
      for (auto& x : lazy) x = rng.next_u64();
      const Modulus m(q);

      std::vector<u64> r_add(a0), r_sub(a0), r_neg(a0), r_mul(a0), r_shoup(lazy);
      ref->add_mod(r_add.data(), b.data(), n, q);
      ref->sub_mod(r_sub.data(), b.data(), n, q);
      ref->neg_mod(r_neg.data(), n, q);
      ref->mul_mod(r_mul.data(), b.data(), n, q, m.ratio_hi(), m.ratio_lo());
      ref->mul_shoup(r_shoup.data(), n, w, ws, q);

      for (simd::Tier t : supported_tiers()) {
        const simd::Kernels* k = table_for(t);
        ASSERT_NE(k, nullptr);
        std::vector<u64> v_add(a0), v_sub(a0), v_neg(a0), v_mul(a0), v_shoup(lazy);
        k->add_mod(v_add.data(), b.data(), n, q);
        k->sub_mod(v_sub.data(), b.data(), n, q);
        k->neg_mod(v_neg.data(), n, q);
        k->mul_mod(v_mul.data(), b.data(), n, q, m.ratio_hi(), m.ratio_lo());
        k->mul_shoup(v_shoup.data(), n, w, ws, q);
        EXPECT_EQ(v_add, r_add) << simd::tier_name(t) << " add n=" << n;
        EXPECT_EQ(v_sub, r_sub) << simd::tier_name(t) << " sub n=" << n;
        EXPECT_EQ(v_neg, r_neg) << simd::tier_name(t) << " neg n=" << n;
        EXPECT_EQ(v_mul, r_mul) << simd::tier_name(t) << " mul n=" << n;
        EXPECT_EQ(v_shoup, r_shoup) << simd::tier_name(t) << " shoup n=" << n;
      }
    }
  }
}

TEST(SimdKernels, ButterflyAndStageTiersMatchScalar) {
  const simd::Kernels* ref = simd::detail::scalar_kernels();
  const u64 q = test_prime();
  for (std::size_t n : kSizes) {
    sp::Rng rng(n * 131 + 5);
    // Butterflies: forward takes lazy < 4q in, inverse < 2q in.
    const std::vector<u64> fx = random_below(rng, n, 4 * q);
    const std::vector<u64> fy = random_below(rng, n, 4 * q);
    const std::vector<u64> ix = random_below(rng, n, 2 * q);
    const std::vector<u64> iy = random_below(rng, n, 2 * q);
    const u64 w = rng.next_u64() % q;
    const u64 ws = shoup_precompute(w, q);
    // Stage layout: `blocks` blocks of 2t, per-block twiddles.
    const std::size_t t_len = n;
    const std::size_t blocks = 3;
    std::vector<u64> stage_in = random_below(rng, 2 * t_len * blocks, 4 * q);
    std::vector<u64> stage_in2q = random_below(rng, 2 * t_len * blocks, 2 * q);
    std::vector<u64> tw(blocks), tws(blocks);
    for (std::size_t b = 0; b < blocks; ++b) {
      tw[b] = rng.next_u64() % q;
      tws[b] = shoup_precompute(tw[b], q);
    }
    const std::vector<u64> r4 = random_below(rng, n, 4 * q);

    std::vector<u64> rfx(fx), rfy(fy), rix(ix), riy(iy), rst(stage_in),
        rsti(stage_in2q), rr4(r4);
    ref->fwd_butterfly(rfx.data(), rfy.data(), n, w, ws, q);
    ref->inv_butterfly(rix.data(), riy.data(), n, w, ws, q);
    ref->fwd_stage(rst.data(), t_len, blocks, tw.data(), tws.data(), q);
    ref->inv_stage(rsti.data(), t_len, blocks, tw.data(), tws.data(), q);
    ref->reduce_4q(rr4.data(), n, q);

    for (simd::Tier t : supported_tiers()) {
      const simd::Kernels* k = table_for(t);
      std::vector<u64> vfx(fx), vfy(fy), vix(ix), viy(iy), vst(stage_in),
          vsti(stage_in2q), vr4(r4);
      k->fwd_butterfly(vfx.data(), vfy.data(), n, w, ws, q);
      k->inv_butterfly(vix.data(), viy.data(), n, w, ws, q);
      k->fwd_stage(vst.data(), t_len, blocks, tw.data(), tws.data(), q);
      k->inv_stage(vsti.data(), t_len, blocks, tw.data(), tws.data(), q);
      k->reduce_4q(vr4.data(), n, q);
      EXPECT_EQ(vfx, rfx) << simd::tier_name(t) << " fwd x n=" << n;
      EXPECT_EQ(vfy, rfy) << simd::tier_name(t) << " fwd y n=" << n;
      EXPECT_EQ(vix, rix) << simd::tier_name(t) << " inv x n=" << n;
      EXPECT_EQ(viy, riy) << simd::tier_name(t) << " inv y n=" << n;
      EXPECT_EQ(vst, rst) << simd::tier_name(t) << " fwd_stage n=" << n;
      EXPECT_EQ(vsti, rsti) << simd::tier_name(t) << " inv_stage n=" << n;
      EXPECT_EQ(vr4, rr4) << simd::tier_name(t) << " reduce_4q n=" << n;
    }
  }
}

TEST(SimdNtt, ForwardInverseTiersMatchScalarAndRoundTrip) {
  const u64 q = test_prime();  // 1 mod 2*8192 => valid for every n below
  for (std::size_t n : {std::size_t(1), std::size_t(2), std::size_t(1024),
                        std::size_t(4096), std::size_t(8192)}) {
    const NttTables tables(n, Modulus(q));
    sp::Rng rng(n + 17);
    const std::vector<u64> in = random_below(rng, n, q);

    std::vector<u64> ref_fwd(in), ref_inv(in);
    {
      TierGuard g(simd::Tier::kScalar);
      tables.forward(ref_fwd.data());
      ref_inv = ref_fwd;
      tables.inverse(ref_inv.data());
    }
    EXPECT_EQ(ref_inv, in) << "scalar round-trip n=" << n;

    for (simd::Tier t : supported_tiers()) {
      TierGuard g(t);
      std::vector<u64> fwd(in);
      tables.forward(fwd.data());
      EXPECT_EQ(fwd, ref_fwd) << simd::tier_name(t) << " forward n=" << n;
      tables.inverse(fwd.data());
      EXPECT_EQ(fwd, in) << simd::tier_name(t) << " round-trip n=" << n;
    }
  }
}

TEST(SimdNtt, BatchedSubRowSplitMatchesPerRow) {
  // The batch entry points pick a sub-row split from rows vs threads; every
  // (tier, thread count, row count) combination must reproduce the plain
  // per-row transforms bit for bit.
  const u64 q = test_prime();
  const std::size_t n = 4096;
  const NttTables tables(n, Modulus(q));
  for (int rows : {1, 3, 5}) {
    sp::Rng rng(static_cast<std::uint64_t>(rows) * 97);
    std::vector<std::vector<u64>> base(static_cast<std::size_t>(rows));
    for (auto& r : base) r = random_below(rng, n, q);

    std::vector<std::vector<u64>> ref_fwd = base;
    {
      TierGuard g(simd::Tier::kScalar);
      for (auto& r : ref_fwd) tables.forward(r.data());
    }

    for (simd::Tier t : supported_tiers()) {
      TierGuard g(t);
      for (int threads : {1, 2, 7}) {
        ThreadPool::set_global_threads(threads);
        std::vector<std::vector<u64>> got = base;
        std::vector<NttJob> jobs;
        for (auto& r : got) jobs.push_back({r.data(), &tables});
        ntt_forward_batch(jobs);
        EXPECT_EQ(got, ref_fwd) << simd::tier_name(t) << " fwd rows=" << rows
                                << " threads=" << threads;
        ntt_inverse_batch(jobs);
        EXPECT_EQ(got, base) << simd::tier_name(t) << " inv rows=" << rows
                             << " threads=" << threads;
      }
    }
  }
  ThreadPool::set_global_threads(ThreadPool::env_threads());
}

TEST(SimdDispatch, TierGrammarAndOverride) {
  bool ok = false;
  EXPECT_EQ(simd::parse_tier("scalar", &ok), simd::Tier::kScalar);
  EXPECT_TRUE(ok);
  EXPECT_EQ(simd::parse_tier("avx2", &ok), simd::Tier::kAvx2);
  EXPECT_TRUE(ok);
  EXPECT_EQ(simd::parse_tier("avx512", &ok), simd::Tier::kAvx512);
  EXPECT_TRUE(ok);
  simd::parse_tier("AVX2", &ok);  // grammar is exact-match lowercase
  EXPECT_FALSE(ok);
  simd::parse_tier(nullptr, &ok);
  EXPECT_FALSE(ok);

  EXPECT_TRUE(simd::tier_supported(simd::Tier::kScalar));
  const simd::Tier before = simd::active_tier();
  for (simd::Tier t : supported_tiers()) {
    EXPECT_TRUE(simd::set_tier(t));
    EXPECT_EQ(simd::active_tier(), t);
    EXPECT_EQ(std::strcmp(simd::tier_name(simd::active_tier()), simd::tier_name(t)), 0);
  }
  simd::set_tier(before);
}

TEST(RnsPolyFlat, DropRowsPreservesSurvivingRows) {
  // Flat-buffer regression: drop_last_q removes a middle row (the special row
  // trails it), so surviving rows must slide without corruption.
  const CkksContext ctx(CkksParams::test_small());
  RnsPoly p(&ctx, ctx.q_count(), /*with_special=*/true, /*ntt_form=*/false);
  sp::Rng rng(3);
  std::vector<std::vector<u64>> rows(static_cast<std::size_t>(p.row_count()));
  for (int i = 0; i < p.row_count(); ++i) {
    rows[static_cast<std::size_t>(i)] =
        random_below(rng, p.n(), p.row_mod(i).value());
    std::memcpy(p.row(i), rows[static_cast<std::size_t>(i)].data(),
                p.n() * sizeof(u64));
  }
  const int q0 = p.q_count();
  p.drop_last_q();
  ASSERT_EQ(p.q_count(), q0 - 1);
  ASSERT_TRUE(p.has_special());
  for (int i = 0; i < p.q_count(); ++i)
    EXPECT_EQ(std::memcmp(p.row(i), rows[static_cast<std::size_t>(i)].data(),
                          p.n() * sizeof(u64)),
              0)
        << "chain row " << i;
  // The special row (was index q0) now lives at index q0-1.
  EXPECT_EQ(std::memcmp(p.row(p.q_count()), rows[static_cast<std::size_t>(q0)].data(),
                        p.n() * sizeof(u64)),
            0);
  p.drop_special();
  ASSERT_FALSE(p.has_special());
  for (int i = 0; i < p.row_count(); ++i)
    EXPECT_EQ(std::memcmp(p.row(i), rows[static_cast<std::size_t>(i)].data(),
                          p.n() * sizeof(u64)),
              0);
}

/// Degree-7 odd PAF, same shape as the pipeline acceptance tests.
approx::CompositePaf e2e_paf(std::uint64_t seed) {
  sp::Rng rng(seed);
  std::vector<double> c(8, 0.0);
  for (int k = 1; k <= 7; k += 2)
    c[static_cast<std::size_t>(k)] = rng.uniform(-1.0, 1.0) / 8.0;
  return approx::CompositePaf("deg7", {approx::Polynomial(c)});
}

std::vector<u64> run_pipeline_e2e(simd::Tier tier, int threads) {
  TierGuard g(tier);
  ThreadPool::set_global_threads(threads);
  smartpaf::FheRuntime rt(CkksParams::for_depth(2048, 12, 40), /*seed=*/77);
  const auto pipe = smartpaf::FhePipeline::builder()
                        .window({0.5, 0.3, 0.2})
                        .paf_relu(e2e_paf(41), 2.0)
                        .linear(0.7)
                        .paf_maxpool(e2e_paf(43), 2.0, /*pool_window=*/2)
                        .build();
  const auto plan =
      smartpaf::Planner::plan(pipe, rt.ctx(), smartpaf::CostModel::heuristic());
  sp::Rng rng(9);
  std::vector<double> slots(rt.ctx().slot_count());
  for (auto& x : slots) x = rng.uniform(-0.8, 0.8);
  const Ciphertext out = pipe.run(rt, plan, rt.encrypt(slots));
  std::vector<u64> flat;
  for (const auto& part : out.parts)
    for (int r = 0; r < part.row_count(); ++r)
      flat.insert(flat.end(), part.row(r), part.row(r) + part.n());
  return flat;
}

TEST(SimdEndToEnd, PipelineRunBitIdenticalAcrossTiersAndThreads) {
  // keygen, encrypt, the full lowered pipeline (rotations, PAF evals,
  // rescales), all bit-identical for every (tier, thread count).
  const std::vector<u64> ref = run_pipeline_e2e(simd::Tier::kScalar, 1);
  ASSERT_FALSE(ref.empty());
  for (simd::Tier t : supported_tiers()) {
    for (int threads : {1, 3}) {
      if (t == simd::Tier::kScalar && threads == 1) continue;
      const std::vector<u64> got = run_pipeline_e2e(t, threads);
      ASSERT_EQ(got.size(), ref.size());
      std::size_t mismatches = 0;
      for (std::size_t i = 0; i < ref.size(); ++i)
        if (got[i] != ref[i]) ++mismatches;
      EXPECT_EQ(mismatches, 0u)
          << simd::tier_name(t) << " threads=" << threads;
    }
  }
  ThreadPool::set_global_threads(ThreadPool::env_threads());
}

}  // namespace
