// Diagonal-method matmul + slot compaction net: DiagMatVecPlan grouping
// math, encrypted parity vs nn::Linear::forward for square/non-square
// shapes (dimensions that do not divide the slot count included), BSGS
// rotation counts pinned against the plan the CostModel chose,
// hoisted-vs-naive bit identity, CompactStage parity, the adjacent-linear
// merge pass (saved level pinned), slot-width tracking / BatchRunner output
// width, and the zoo MLP head lowering end to end (plain and stride-2
// pooled variants) at < 2^-20 FHE-vs-plaintext parity.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "fhe/diag_matvec.h"
#include "models/zoo.h"
#include "nn/container.h"
#include "nn/layers.h"
#include "smartpaf/batch_runner.h"
#include "smartpaf/pipeline.h"
#include "smartpaf/pipeline_planner.h"
#include "smartpaf/replace.h"

namespace {

using namespace sp;
using namespace sp::fhe;

const double kParityTol = std::ldexp(1.0, -20);

/// Odd single-stage PAF of the given degree (depth ceil(log2(deg+1))).
approx::CompositePaf test_paf(int deg, std::uint64_t seed) {
  sp::Rng rng(seed);
  std::vector<double> c(static_cast<std::size_t>(deg) + 1, 0.0);
  for (int k = 1; k <= deg; k += 2)
    c[static_cast<std::size_t>(k)] = rng.uniform(-1.0, 1.0) / (2.0 * deg);
  return approx::CompositePaf("deg" + std::to_string(deg), {approx::Polynomial(c)});
}

std::vector<double> random_matrix(int rows, int cols, std::uint64_t seed,
                                  double magnitude = 0.5) {
  sp::Rng rng(seed);
  std::vector<double> w(static_cast<std::size_t>(rows) * cols);
  for (auto& v : w) v = rng.uniform(-magnitude, magnitude);
  return w;
}

// ------------------------------------------------------- plan (pure index math)

TEST(DiagMatVecPlan, GroupsExtendedDiagonals) {
  // W = [[1, 2], [3, 4]]: diagonals at s = -1 (3), s = 0 (1, 4), s = 1 (2).
  const std::vector<double> w{1, 2, 3, 4};
  const auto steps = DiagMatVecPlan::nonzero_steps(w, 2, 2);
  EXPECT_EQ(steps, (std::vector<int>{-1, 0, 1}));

  const auto naive = DiagMatVecPlan::group(steps, 2, 2, /*n1=*/1);
  EXPECT_TRUE(naive.baby_steps.empty());
  EXPECT_EQ(naive.giant_steps, (std::vector<int>{-1, 1}));
  EXPECT_EQ(naive.giant_groups, 3);
  EXPECT_EQ(naive.nonzero_diagonals, 3);
  EXPECT_EQ(naive.rotations(), 2);

  const auto bsgs = DiagMatVecPlan::group(steps, 2, 2, /*n1=*/2);
  // s = -1 -> g = -2, b = 1; s = 0 -> (0, 0); s = 1 -> (0, 1).
  EXPECT_EQ(bsgs.baby_steps, (std::vector<int>{1}));
  EXPECT_EQ(bsgs.giant_steps, (std::vector<int>{-2}));
  EXPECT_EQ(bsgs.giant_groups, 2);
  EXPECT_EQ(bsgs.rotations(), 2);
  EXPECT_EQ(bsgs.steps(), (std::vector<int>{-2, 1}));
}

TEST(DiagMatVecPlan, SkipsZeroDiagonals) {
  // Identity-like: only the main diagonal is nonzero, no rotations at all.
  const std::vector<double> w{1, 0, 0, 1};
  const auto plan = DiagMatVecPlan::make(w, 2, 2, /*n1=*/4);
  EXPECT_EQ(plan.nonzero_diagonals, 1);
  EXPECT_EQ(plan.rotations(), 0);
}

// --------------------------------------------------------------- FHE fixture --

class MatMulFheTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rt_ = std::make_unique<smartpaf::FheRuntime>(CkksParams::for_depth(2048, 12, 40),
                                                 /*seed=*/2030);
  }
  static void TearDownTestSuite() { rt_.reset(); }

  static std::vector<double> random_slots(std::uint64_t seed, double lo = -1.0,
                                          double hi = 1.0) {
    sp::Rng rng(seed);
    std::vector<double> v(rt_->ctx().slot_count());
    for (auto& x : v) x = rng.uniform(lo, hi);
    return v;
  }

  static std::unique_ptr<smartpaf::FheRuntime> rt_;
};

std::unique_ptr<smartpaf::FheRuntime> MatMulFheTest::rt_;

TEST_F(MatMulFheTest, ParityVsLinearForwardAcrossShapes) {
  struct Shape {
    int in, out;
  };
  // Square, wide, tall — including dimensions that do not divide the 1024
  // slot count (zero-padded diagonals).
  for (const Shape s : {Shape{16, 16}, Shape{24, 10}, Shape{10, 24}, Shape{20, 12}}) {
    sp::Rng rng(100 + static_cast<std::uint64_t>(s.in));
    nn::Linear lin(s.in, s.out, rng, /*bias=*/true,
                   "fc" + std::to_string(s.in) + "x" + std::to_string(s.out));

    nn::Tensor x({1, s.in});
    std::vector<double> slots(rt_->ctx().slot_count(), 0.0);
    for (int j = 0; j < s.in; ++j) {
      x.at(0, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
      slots[static_cast<std::size_t>(j)] = static_cast<double>(x.at(0, j));
    }
    const nn::Tensor y = lin.forward(x, /*train=*/false);

    const auto pipe = smartpaf::FhePipeline::builder()
                          .input_width(static_cast<std::size_t>(s.in))
                          .matmul(s.out, s.in, lin.weight_values(), lin.bias_values())
                          .build();
    const auto plan =
        smartpaf::Planner::plan(pipe, rt_->ctx(), smartpaf::CostModel::heuristic());
    EXPECT_EQ(plan.levels_used, 1);
    EXPECT_EQ(plan.stages[0].width_in, static_cast<std::size_t>(s.in));
    EXPECT_EQ(plan.stages[0].width_out, static_cast<std::size_t>(s.out));

    const std::vector<double> got =
        rt_->decrypt(pipe.run(*rt_, plan, rt_->encrypt(slots)));
    for (int j = 0; j < s.out; ++j)
      EXPECT_NEAR(got[static_cast<std::size_t>(j)], static_cast<double>(y.at(0, j)),
                  kParityTol)
          << s.in << "x" << s.out << " row " << j;
    // The product is masked into [0, out): the next slots hold only noise.
    for (int j = s.out; j < s.out + 8; ++j)
      EXPECT_NEAR(got[static_cast<std::size_t>(j)], 0.0, kParityTol);
  }
}

TEST_F(MatMulFheTest, BsgsRotationCountsPinnedToPlan) {
  const int n = 64;
  const auto pipe = smartpaf::FhePipeline::builder()
                        .input_width(n)
                        .matmul(n, n, random_matrix(n, n, 7))
                        .build();

  // Planner's pick under the heuristic table: a real BSGS split.
  const auto plan =
      smartpaf::Planner::plan(pipe, rt_->ctx(), smartpaf::CostModel::heuristic());
  const auto& sp_ = plan.stages[0];
  EXPECT_GT(sp_.bsgs_n1, 1);
  EXPECT_EQ(sp_.diag_mults, 2 * n - 1);  // dense: every extended diagonal

  const std::vector<double> slots = random_slots(11);
  Evaluator& ev = rt_->evaluator();
  const Ciphertext in = rt_->encrypt(slots);

  OpCounters before = ev.counters;
  (void)pipe.run(*rt_, plan, in);
  OpCounters delta = ev.counters.delta_since(before);
  // Executed schedule == the plan the CostModel chose.
  EXPECT_EQ(delta.rotations.load(),
            sp_.rotation_steps.size() + sp_.giant_steps.size());
  EXPECT_EQ(delta.hoisted_rotations.load(), sp_.rotation_steps.size());
  EXPECT_EQ(delta.plain_mults.load(), static_cast<std::size_t>(sp_.diag_mults));
  EXPECT_EQ(delta.rescales.load(), 1u);
  EXPECT_EQ(delta.relins.load(), 0u);
  EXPECT_EQ(delta.ct_mults.load(), 0u);

  // Naive diagonal loop (n1 = 1, no hoisting): one rotation per nonzero
  // off-diagonal. The BSGS split must be strictly cheaper in rotations.
  smartpaf::PlanOptions naive_opts;
  naive_opts.force_matmul_n1 = 1;
  naive_opts.force_hoist = false;
  const auto naive = smartpaf::Planner::plan(pipe, rt_->ctx(),
                                             smartpaf::CostModel::heuristic(), naive_opts);
  before = ev.counters;
  (void)pipe.run(*rt_, naive, in);
  delta = ev.counters.delta_since(before);
  EXPECT_EQ(delta.rotations.load(), static_cast<std::size_t>(2 * n - 2));
  EXPECT_EQ(delta.hoisted_rotations.load(), 0u);
  EXPECT_LT(sp_.rotation_steps.size() + sp_.giant_steps.size(),
            static_cast<std::size_t>(2 * n - 2));
}

TEST_F(MatMulFheTest, HoistedAndNaiveBabyFansAreBitIdentical) {
  const int n = 32;
  const auto pipe = smartpaf::FhePipeline::builder()
                        .input_width(n)
                        .matmul(n, n, random_matrix(n, n, 13))
                        .build();
  const Ciphertext in = rt_->encrypt(random_slots(17));

  std::vector<std::vector<double>> outs;
  for (const bool hoist : {true, false}) {
    smartpaf::PlanOptions opts;
    opts.force_matmul_n1 = 8;
    opts.force_hoist = hoist;
    const auto plan = smartpaf::Planner::plan(pipe, rt_->ctx(),
                                              smartpaf::CostModel::heuristic(), opts);
    EXPECT_EQ(plan.stages[0].hoist_fan, hoist);
    outs.push_back(rt_->decrypt(pipe.run(*rt_, plan, in)));
  }
  // rotate_hoisted is bit-identical to rotate, and the rest of the schedule
  // is shared — so the decrypted outputs must match exactly, not just to
  // tolerance.
  ASSERT_EQ(outs[0].size(), outs[1].size());
  for (std::size_t j = 0; j < outs[0].size(); ++j)
    EXPECT_EQ(outs[0][j], outs[1][j]) << "slot " << j;
}

TEST_F(MatMulFheTest, CompactStageParityAndWidths) {
  const std::size_t width = 32;
  const int stride = 4;
  const auto pipe = smartpaf::FhePipeline::builder()
                        .input_width(width)
                        .compact(stride)
                        .build();
  const auto plan =
      smartpaf::Planner::plan(pipe, rt_->ctx(), smartpaf::CostModel::heuristic());
  EXPECT_EQ(plan.levels_used, 1);
  EXPECT_EQ(plan.stages[0].width_in, width);
  EXPECT_EQ(plan.stages[0].width_out, width / stride);
  // Output slot i takes x[i * stride] via the step i * (stride - 1).
  EXPECT_EQ(plan.stages[0].rotation_steps,
            (std::vector<int>{3, 6, 9, 12, 15, 18, 21}));

  const std::vector<double> slots = random_slots(23);
  const std::vector<double> got =
      rt_->decrypt(pipe.run(*rt_, plan, rt_->encrypt(slots)));
  const std::vector<double> ref = pipe.reference(slots);
  for (std::size_t i = 0; i < width / stride; ++i) {
    EXPECT_DOUBLE_EQ(ref[i], slots[i * stride]);
    EXPECT_NEAR(got[i], slots[i * stride], kParityTol) << "slot " << i;
  }
  for (std::size_t i = width / stride; i < width / stride + 8; ++i)
    EXPECT_NEAR(got[i], 0.0, kParityTol);
}

TEST_F(MatMulFheTest, AdjacentLinearStagesMergeIntoOneRescale) {
  const auto slots_n = rt_->ctx().slot_count();
  sp::Rng rng(31);
  std::vector<double> a(slots_n), ba(slots_n), b(slots_n), bb(slots_n);
  for (auto* v : {&a, &ba, &b, &bb})
    for (auto& x : *v) x = rng.uniform(-1.0, 1.0);

  const auto pipe = smartpaf::FhePipeline::builder()
                        .linear(a, ba)
                        .linear(b, bb)
                        .paf_relu(test_paf(7, 41), 2.0)
                        .build();

  // Plan-level rescale placement: the two per-slot linears (unfoldable into
  // the PAF envelope) merge into ONE plaintext mult + rescale — 6 levels
  // instead of the literal 7.
  const auto merged =
      smartpaf::Planner::plan(pipe, rt_->ctx(), smartpaf::CostModel::heuristic());
  EXPECT_EQ(merged.levels_used, 6);
  EXPECT_TRUE(merged.stages[0].folded);
  EXPECT_TRUE(merged.stages[0].merged_into_next);
  ASSERT_TRUE(merged.stages[1].merged_linear.has_value());
  const auto& eff = *merged.stages[1].merged_linear;
  for (std::size_t j : {std::size_t{0}, std::size_t{5}, slots_n - 1}) {
    EXPECT_DOUBLE_EQ(eff.scale[j], b[j] * a[j]);
    EXPECT_DOUBLE_EQ(eff.bias[j], b[j] * ba[j] + bb[j]);
  }

  smartpaf::PlanOptions literal;
  literal.rescale_policy = smartpaf::RescalePolicy::PerStage;
  const auto per_stage = smartpaf::Planner::plan(pipe, rt_->ctx(),
                                                 smartpaf::CostModel::heuristic(), literal);
  EXPECT_EQ(per_stage.levels_used, 7);

  // Both plans execute to the same values (double-rounding differences stay
  // far inside the parity budget).
  const std::vector<double> slots = random_slots(37);
  const std::vector<double> ref = pipe.reference(slots);
  for (const auto* plan : {&merged, &per_stage}) {
    const std::vector<double> got =
        rt_->decrypt(pipe.run(*rt_, *plan, rt_->encrypt(slots)));
    double worst = 0.0;
    for (std::size_t j = 0; j < ref.size(); ++j)
      worst = std::max(worst, std::abs(got[j] - ref[j]));
    EXPECT_LT(worst, kParityTol);
  }
}

TEST_F(MatMulFheTest, PackedMatMulComputesEveryRequestsProduct) {
  // Four requests packed at a 256-slot stride: the diagonals replicate per
  // tile, so every request gets its own W x + b in its own slots.
  const int rows = 8, cols = 16;
  const std::size_t stride = 256;
  sp::Rng rng(71);
  nn::Linear lin(cols, rows, rng, /*bias=*/true, "packed-fc");

  std::vector<std::vector<double>> inputs(4);
  for (auto& v : inputs) {
    v.resize(cols);
    for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  }
  const std::vector<double> flat =
      Encoder::pack_slots(inputs, stride, rt_->ctx().slot_count());

  const auto pipe = smartpaf::FhePipeline::builder()
                        .input_width(cols)
                        .matmul(rows, cols, lin.weight_values(), lin.bias_values())
                        .build();
  smartpaf::PlanOptions opts;
  opts.pack_stride = stride;
  const auto plan = smartpaf::Planner::plan(pipe, rt_->ctx(),
                                            smartpaf::CostModel::heuristic(), opts);
  EXPECT_EQ(plan.pack_stride, stride);

  const std::vector<double> got =
      rt_->decrypt(pipe.run(*rt_, plan, rt_->encrypt(flat)));
  const std::vector<double> ref = pipe.reference(flat, stride);
  for (std::size_t b = 0; b < inputs.size(); ++b) {
    nn::Tensor x({1, cols});
    for (int j = 0; j < cols; ++j)
      x.at(0, j) = static_cast<float>(inputs[b][static_cast<std::size_t>(j)]);
    const nn::Tensor y = lin.forward(x, /*train=*/false);
    for (int i = 0; i < rows; ++i) {
      const std::size_t slot = b * stride + static_cast<std::size_t>(i);
      EXPECT_NEAR(got[slot], static_cast<double>(y.at(0, i)), kParityTol)
          << "request " << b << " row " << i;
      EXPECT_NEAR(ref[slot], static_cast<double>(y.at(0, i)), kParityTol);
    }
  }
}

TEST_F(MatMulFheTest, PlannerRejectsWidthMismatch) {
  const auto pipe = smartpaf::FhePipeline::builder()
                        .input_width(16)
                        .matmul(4, 8, random_matrix(4, 8, 3))
                        .build();
  bool rejected = false;
  try {
    smartpaf::Planner::plan(pipe, rt_->ctx(), smartpaf::CostModel::heuristic());
  } catch (const sp::Error& e) {
    rejected = true;
    EXPECT_NE(std::string(e.what()).find("expects input width"), std::string::npos);
  }
  EXPECT_TRUE(rejected);
}

TEST_F(MatMulFheTest, EncoderCacheServesRepeatedDiagonals) {
  Encoder& enc = rt_->encoder();
  enc.clear_encode_cache();
  const std::vector<double> v(rt_->ctx().slot_count(), 0.25);
  const auto p1 = enc.encode_cached(42, v, rt_->ctx().scale(), 2);
  const auto p2 = enc.encode_cached(42, v, rt_->ctx().scale(), 2);
  EXPECT_EQ(p1.get(), p2.get());  // second call is a cache hit
  EXPECT_EQ(enc.encode_cache_size(), 1u);
  (void)enc.encode_cached(42, v, rt_->ctx().scale(), 3);  // new q_count, new entry
  EXPECT_EQ(enc.encode_cache_size(), 2u);
  enc.clear_encode_cache();
  EXPECT_EQ(enc.encode_cache_size(), 0u);
  // Pinned entries survive the flush: the handed-out plaintext is intact.
  EXPECT_EQ(p1->q_count(), 2);
  EXPECT_EQ(p1->scale, rt_->ctx().scale());
}

TEST_F(MatMulFheTest, EncoderCacheKeysScaleOnBitPattern) {
  Encoder& enc = rt_->encoder();
  enc.clear_encode_cache();
  const std::vector<double> v(rt_->ctx().slot_count(), 0.5);
  const double scale = rt_->ctx().scale();
  const auto p1 = enc.encode_cached(7, v, scale, 2);
  // Bitwise-equal scale computed through a different expression still hits.
  const double same = scale * 1.0;
  EXPECT_EQ(p1.get(), enc.encode_cached(7, v, same, 2).get());
  EXPECT_EQ(enc.encode_cache_size(), 1u);
  // One-ulp-off scale is a distinct entry, never a near-miss alias.
  const double off = std::nextafter(scale, 2.0 * scale);
  const auto p3 = enc.encode_cached(7, v, off, 2);
  EXPECT_NE(p1.get(), p3.get());
  EXPECT_EQ(enc.encode_cache_size(), 2u);
  EXPECT_EQ(p3->scale, off);
}

// ------------------------------------------------------------- zoo MLP head --

/// Replaces the head's non-polynomial sites with test PAFs and freezes the
/// scales, mirroring the deployment flow.
void replace_and_freeze(nn::Model& model) {
  const auto sites = smartpaf::find_nonpoly_sites(model);
  for (const auto& site : sites) {
    // Shallow PAFs keep the pooled variant inside a 12-level chain: deg-3
    // (depth 2) for the pool tournament, deg-7 (depth 3) for the ReLU.
    const int deg = site.kind == smartpaf::SiteKind::MaxPool ? 3 : 7;
    smartpaf::replace_site(model, site, test_paf(deg, 43 + site.index),
                           smartpaf::ScaleMode::Dynamic);
  }
  for (smartpaf::PafLayerBase* p : smartpaf::find_paf_layers(model))
    p->set_static_scale(2.0f);
}

TEST_F(MatMulFheTest, MlpHeadLowersEndToEnd) {
  models::MlpHeadConfig cfg;
  cfg.in_features = 24;
  cfg.hidden = 16;
  cfg.num_classes = 10;
  cfg.seed = 5;
  nn::Model model = models::mlp_head(cfg);
  replace_and_freeze(model);

  const auto pipe =
      smartpaf::FhePipeline::lower(model, static_cast<std::size_t>(cfg.in_features));
  ASSERT_EQ(pipe.stages().size(), 3u);
  EXPECT_TRUE(std::holds_alternative<smartpaf::MatMulStage>(pipe.stages()[0].op));
  EXPECT_TRUE(std::holds_alternative<smartpaf::PafStage>(pipe.stages()[1].op));
  EXPECT_TRUE(std::holds_alternative<smartpaf::MatMulStage>(pipe.stages()[2].op));
  EXPECT_EQ(pipe.output_width(rt_->ctx().slot_count()),
            static_cast<std::size_t>(cfg.num_classes));

  const auto plan =
      smartpaf::Planner::plan(pipe, rt_->ctx(), smartpaf::CostModel::heuristic());
  EXPECT_EQ(plan.levels_used, 1 + 5 + 1);  // matmul + deg-7 ReLU + matmul

  sp::Rng rng(47);
  nn::Tensor x({1, cfg.in_features});
  std::vector<double> slots(rt_->ctx().slot_count(), 0.0);
  for (int j = 0; j < cfg.in_features; ++j) {
    x.at(0, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
    slots[static_cast<std::size_t>(j)] = static_cast<double>(x.at(0, j));
  }
  const nn::Tensor expect = model.forward(x, /*train=*/false);

  const std::vector<double> got =
      rt_->decrypt(pipe.run(*rt_, plan, rt_->encrypt(slots)));
  double worst = 0.0;
  for (int j = 0; j < cfg.num_classes; ++j)
    worst = std::max(worst, std::abs(got[static_cast<std::size_t>(j)] -
                                     static_cast<double>(expect.at(0, j))));
  EXPECT_LT(worst, kParityTol);
}

TEST_F(MatMulFheTest, MlpHeadWithStride2PoolLowersEndToEnd) {
  models::MlpHeadConfig cfg;
  cfg.in_features = 48;
  cfg.hidden = 16;
  cfg.num_classes = 10;
  cfg.pool_window = 2;
  cfg.pool_stride = 2;
  cfg.seed = 9;
  nn::Model model = models::mlp_head(cfg);
  replace_and_freeze(model);

  const auto pipe =
      smartpaf::FhePipeline::lower(model, static_cast<std::size_t>(cfg.in_features));
  // pool tournament -> compact -> matmul -> relu -> matmul.
  ASSERT_EQ(pipe.stages().size(), 5u);
  EXPECT_TRUE(std::holds_alternative<smartpaf::PafStage>(pipe.stages()[0].op));
  EXPECT_TRUE(std::holds_alternative<smartpaf::CompactStage>(pipe.stages()[1].op));
  EXPECT_TRUE(std::holds_alternative<smartpaf::MatMulStage>(pipe.stages()[2].op));

  const auto plan =
      smartpaf::Planner::plan(pipe, rt_->ctx(), smartpaf::CostModel::heuristic());
  // deg-3 pairwise max (4) + compact (1) + matmul (1) + deg-7 ReLU (5) +
  // matmul (1) — exactly the 12-level chain.
  EXPECT_EQ(plan.levels_used, 12);
  EXPECT_EQ(plan.stages[1].width_in, 48u);
  EXPECT_EQ(plan.stages[1].width_out, 24u);

  sp::Rng rng(53);
  nn::Tensor x({1, cfg.in_features});
  std::vector<double> slots(rt_->ctx().slot_count(), 0.0);
  for (int j = 0; j < cfg.in_features; ++j) {
    x.at(0, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
    slots[static_cast<std::size_t>(j)] = static_cast<double>(x.at(0, j));
  }
  const nn::Tensor expect = model.forward(x, /*train=*/false);
  ASSERT_EQ(expect.dim(1), cfg.num_classes);

  const std::vector<double> got =
      rt_->decrypt(pipe.run(*rt_, plan, rt_->encrypt(slots)));
  double worst = 0.0;
  for (int j = 0; j < cfg.num_classes; ++j)
    worst = std::max(worst, std::abs(got[static_cast<std::size_t>(j)] -
                                     static_cast<double>(expect.at(0, j))));
  EXPECT_LT(worst, kParityTol);
}

// -------------------------------------------------- widths through the layers --

TEST(SlotWidths, OutputWidthTracksCompactAndMatMul) {
  const auto pipe = smartpaf::FhePipeline::builder()
                        .input_width(32)
                        .compact(4)
                        .matmul(10, 8, std::vector<double>(80, 0.1))
                        .build();
  const auto widths = pipe.stage_widths(1024);
  ASSERT_EQ(widths.size(), 2u);
  EXPECT_EQ(widths[0], (std::pair<std::size_t, std::size_t>{32, 8}));
  EXPECT_EQ(widths[1], (std::pair<std::size_t, std::size_t>{8, 10}));
  EXPECT_EQ(pipe.output_width(1024), 10u);
}

TEST(SlotWidths, BatchRunnerOutputSizeFollowsThePipeline) {
  smartpaf::FheRuntime rt(CkksParams::for_depth(2048, 6, 40), /*seed=*/2031);
  smartpaf::BatchConfig cfg;
  cfg.input_size = static_cast<int>(rt.ctx().slot_count()) / 4;
  cfg.paf = test_paf(7, 61);
  cfg.input_scale = 2.0;
  cfg.window = {0.6, 0.4};
  smartpaf::BatchRunner runner(rt, cfg);
  // Window + PAF preserve the width, so the per-request output slice spans
  // the full input_size.
  EXPECT_EQ(runner.output_size(), cfg.input_size);

  sp::Rng rng(67);
  std::vector<std::vector<double>> inputs(2);
  for (auto& v : inputs) {
    v.resize(static_cast<std::size_t>(cfg.input_size));
    for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  }
  const auto res = runner.run(inputs);
  ASSERT_EQ(res.outputs.size(), 2u);
  EXPECT_EQ(res.outputs[0].size(), static_cast<std::size_t>(runner.output_size()));
  for (double e : res.max_error) EXPECT_LT(e, kParityTol);
}

}  // namespace
