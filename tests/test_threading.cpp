// ThreadPool unit tests plus the determinism contract of the parallel RNS
// backend: every FHE result and every op counter must be bit-identical for
// SMARTPAF_THREADS in {1, 2, 7}.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "smartpaf/fhe_deploy.h"

namespace {

using namespace sp;
using namespace sp::fhe;

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<int> hits(n, 0);  // distinct indices: no write races
  pool.parallel_for(0, n, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPool, ZeroAndOneItemRanges) {
  ThreadPool pool(3);
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, SerialPoolMatchesContract) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(0, 16, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);  // exact serial path
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    pool.parallel_for(0, 8, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool stays serviceable after a throwing region.
  std::atomic<int> calls{0};
  pool.parallel_for(0, 10, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 10);
}

TEST(ThreadPool, EnvThreadsIsAtLeastOne) { EXPECT_GE(ThreadPool::env_threads(), 1); }

TEST(ThreadPool, SetGlobalThreadsRejectsInFlightResize) {
  // Resizing the global pool while a parallel_for runs on it would destroy a
  // pool whose lanes are live; the precondition is enforced, not documented.
  ThreadPool::set_global_threads(3);  // quiescent: allowed
  bool threw = false;
  sp::parallel_for(0, 4, [&](std::size_t i) {
    if (i != 0) return;  // index 0 runs exactly once; single-lane write
    try {
      ThreadPool::set_global_threads(2);
    } catch (const sp::Error& e) {
      EXPECT_NE(std::string(e.what()).find("in flight"), std::string::npos);
      threw = true;
    }
  });
  EXPECT_TRUE(threw);
  // The pool stays serviceable, and a quiescent resize works again.
  std::atomic<int> calls{0};
  sp::parallel_for(0, 10, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 10);
  ThreadPool::set_global_threads(ThreadPool::env_threads());
}

TEST(EncoderCacheThreading, PinnedEntriesSurviveConcurrentFlush) {
  // Regression for the encode_cached lifetime race: the old API returned a
  // reference into the cache map, which BatchRunner's overlap helper (or any
  // concurrent cache traffic triggering the self-limit flush) could
  // invalidate mid-evaluation. The shared_ptr pin must keep every handed-out
  // plaintext alive and bit-stable across flushes. Run under TSan in CI.
  smartpaf::FheRuntime rt(CkksParams::for_depth(2048, 3, 40), /*seed=*/7);
  const Encoder& enc = rt.encoder();
  const double scale = rt.ctx().scale();
  std::atomic<bool> stop{false};
  // Flusher thread: hammers clear + cold-key traffic concurrently.
  std::thread flusher([&] {
    std::uint64_t k = 1000;
    while (!stop.load()) {
      enc.clear_encode_cache();
      (void)enc.encode_cached(k++, scale, 2,
                              [&] { return std::vector<double>(8, 0.5); });
    }
  });
  // Evaluation thread: pins entries and reads them after arbitrary flushes.
  for (int iter = 0; iter < 300; ++iter) {
    const auto pt = enc.encode_cached(
        static_cast<std::uint64_t>(iter % 8), scale, 2,
        [&] { return std::vector<double>(8, 1.0); });
    ASSERT_TRUE(pt != nullptr);
    EXPECT_EQ(pt->scale, scale);
    EXPECT_EQ(pt->q_count(), 2);
    // Touch the polynomial storage — a use-after-free under the old API.
    EXPECT_LT(pt->poly.row(0)[0], rt.ctx().q(0).value());
  }
  stop.store(true);
  flusher.join();
}

/// One fixed FHE workload end to end; returns the flattened residues of the
/// produced ciphertexts plus a counters snapshot.
struct WorkloadResult {
  std::vector<u64> residues;
  OpCounters counters;
};

void flatten(const Ciphertext& ct, std::vector<u64>& out) {
  for (const auto& part : ct.parts)
    for (int r = 0; r < part.row_count(); ++r)
      out.insert(out.end(), part.row(r), part.row(r) + part.n());
}

WorkloadResult run_workload(int threads) {
  ThreadPool::set_global_threads(threads);
  smartpaf::FheRuntime rt(CkksParams::for_depth(2048, 4, 40), /*seed=*/99);
  const auto gk_snapshot = rt.rotation_keys({1, 2});
  const GaloisKeys& gk = *gk_snapshot;

  sp::Rng rng(5);
  std::vector<double> v(rt.ctx().slot_count());
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  const Ciphertext ct = rt.encrypt(v);
  Evaluator& ev = rt.evaluator();
  ev.counters.reset();

  WorkloadResult res;
  // Square + relin + rescale.
  Ciphertext sq = ev.multiply(ct, ct);
  ev.relinearize_inplace(sq, rt.relin_key());
  ev.rescale_inplace(sq);
  flatten(sq, res.residues);
  // Naive and hoisted rotations.
  flatten(ev.rotate(ct, 1, gk), res.residues);
  for (const Ciphertext& r : ev.rotate_hoisted(ct, {1, 2}, gk)) flatten(r, res.residues);
  // A BSGS polynomial evaluation (covers PowerBasis + lazy relin joins).
  sp::Rng crng(17);
  std::vector<double> coeffs(14);
  for (auto& c : coeffs) c = crng.uniform(-1.0, 1.0) / 14.0;
  const Ciphertext out =
      rt.paf_evaluator().eval_poly(ev, ct, approx::Polynomial(coeffs));
  flatten(out, res.residues);

  res.counters = ev.counters;
  return res;
}

TEST(ThreadingDeterminism, ResultsBitIdenticalAcrossThreadCounts) {
  const WorkloadResult ref = run_workload(1);
  ASSERT_FALSE(ref.residues.empty());
  for (int threads : {2, 7}) {
    const WorkloadResult got = run_workload(threads);
    ASSERT_EQ(got.residues.size(), ref.residues.size()) << threads << " threads";
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < ref.residues.size(); ++i)
      if (got.residues[i] != ref.residues[i]) ++mismatches;
    EXPECT_EQ(mismatches, 0u) << threads << " threads";
  }
  ThreadPool::set_global_threads(ThreadPool::env_threads());
}

TEST(ThreadingDeterminism, CountersThreadCountInvariant) {
  // The counter race fix (atomic tallies, per-digit increments inside the
  // parallel region) must make every tally independent of the lane count.
  const WorkloadResult ref = run_workload(1);
  for (int threads : {2, 7}) {
    const WorkloadResult got = run_workload(threads);
    EXPECT_EQ(got.counters.adds.load(), ref.counters.adds.load());
    EXPECT_EQ(got.counters.plain_mults.load(), ref.counters.plain_mults.load());
    EXPECT_EQ(got.counters.ct_mults.load(), ref.counters.ct_mults.load());
    EXPECT_EQ(got.counters.relins.load(), ref.counters.relins.load());
    EXPECT_EQ(got.counters.rescales.load(), ref.counters.rescales.load());
    EXPECT_EQ(got.counters.rotations.load(), ref.counters.rotations.load());
    EXPECT_EQ(got.counters.hoisted_rotations.load(),
              ref.counters.hoisted_rotations.load());
    EXPECT_EQ(got.counters.ntts_forward.load(), ref.counters.ntts_forward.load());
    EXPECT_EQ(got.counters.ntts_inverse.load(), ref.counters.ntts_inverse.load());
  }
  ThreadPool::set_global_threads(ThreadPool::env_threads());
}

}  // namespace
