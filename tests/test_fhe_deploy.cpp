#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "smartpaf/fhe_deploy.h"

namespace {

using namespace sp;
using approx::PafForm;

/// Shared small runtime: N=4096 with enough depth for the deepest PAF
/// (alpha=10 needs 10 + 2 extra levels for the ReLU wrapper).
class DeployTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fhe::CkksParams params = fhe::CkksParams::for_depth(4096, 13, 30);
    params.q_bits[0] = 50;
    params.special_bits = 50;
    rt_ = std::make_unique<smartpaf::FheRuntime>(params);
  }
  static void TearDownTestSuite() { rt_.reset(); }
  static std::unique_ptr<smartpaf::FheRuntime> rt_;
};

std::unique_ptr<smartpaf::FheRuntime> DeployTest::rt_;

TEST_F(DeployTest, EncryptDecryptRoundTrip) {
  std::vector<double> v(rt_->ctx().slot_count());
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = 0.001 * static_cast<double>(i % 100) - 0.05;
  const auto ct = rt_->encrypt(v);
  const auto back = rt_->decrypt(ct);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(back[i], v[i], 1e-4);
}

class DeployFormTest : public DeployTest,
                       public ::testing::WithParamInterface<PafForm> {};

TEST_P(DeployFormTest, HomomorphicCompositeMatchesPlaintext) {
  const auto paf = approx::make_paf(GetParam());
  std::vector<double> v(rt_->ctx().slot_count());
  sp::Rng rng(11);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  const auto ct = rt_->encrypt(v);
  fhe::EvalStats stats;
  const auto out = rt_->paf_evaluator().eval_composite(rt_->evaluator(), ct, paf, &stats);
  const auto got = rt_->decrypt(out);
  double worst = 0;
  for (std::size_t i = 0; i < v.size(); ++i)
    worst = std::max(worst, std::abs(got[i] - paf(v[i])));
  EXPECT_LT(worst, 2e-2) << approx::form_name(GetParam());
}

TEST_P(DeployFormTest, LevelsConsumedEqualsTable2Depth) {
  // The reproduction of Table 2 at the ciphertext level: homomorphic
  // evaluation must consume exactly the multiplication depth the paper
  // reports for each form.
  const PafForm form = GetParam();
  const auto paf = approx::make_paf(form);
  std::vector<double> v(rt_->ctx().slot_count(), 0.3);
  const auto ct = rt_->encrypt(v);
  const auto out = rt_->paf_evaluator().eval_composite(rt_->evaluator(), ct, paf);
  EXPECT_EQ(ct.level() - out.level(), approx::paper_mult_depth(form))
      << approx::form_name(form);
}

INSTANTIATE_TEST_SUITE_P(AllForms, DeployFormTest,
                         ::testing::ValuesIn(approx::all_forms()),
                         [](const ::testing::TestParamInfo<PafForm>& info) {
                           std::string n = approx::form_name(info.param);
                           for (auto& c : n)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return n;
                         });

TEST_F(DeployTest, EncryptedPafReluMatchesPlaintext) {
  const auto paf = approx::make_paf(PafForm::ALPHA7);
  const double scale = 5.0;
  const auto res = smartpaf::measure_paf_relu(*rt_, paf, scale, /*repeats=*/1);
  EXPECT_LT(res.max_error, 0.05);
  EXPECT_GT(res.ms_median, 0.0);
  // Under lazy relinearization some window products defer their relin to a
  // shared join, so relins never exceed mults and deferrals cover the gap.
  EXPECT_LE(res.stats.relins, res.stats.ct_mults);
  EXPECT_GE(res.stats.relins + res.stats.relins_deferred, res.stats.ct_mults);
}

TEST_F(DeployTest, ReluLevelsAreDepthPlusTwo) {
  // relu = input scaling (1 level) + composite (depth) + final product (1).
  const auto paf = approx::make_paf(PafForm::F1_G2);
  std::vector<double> v(rt_->ctx().slot_count(), 1.0);
  const auto ct = rt_->encrypt(v);
  fhe::EvalStats stats;
  rt_->paf_evaluator().relu(rt_->evaluator(), ct, paf, 2.0, &stats);
  EXPECT_EQ(stats.levels_consumed, approx::paper_mult_depth(PafForm::F1_G2) + 2);
}

TEST_F(DeployTest, EncryptedMaxMatchesPlaintext) {
  const auto paf = approx::make_paf(PafForm::ALPHA10_D27);
  std::vector<double> a(rt_->ctx().slot_count()), b(rt_->ctx().slot_count());
  sp::Rng rng(13);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.uniform(-2.0, 2.0);
    b[i] = rng.uniform(-2.0, 2.0);
  }
  const auto ca = rt_->encrypt(a);
  const auto cb = rt_->encrypt(b);
  const auto out = rt_->paf_evaluator().max(rt_->evaluator(), ca, cb, paf, 4.0);
  const auto got = rt_->decrypt(out);
  double worst = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(got[i] - std::max(a[i], b[i])));
  EXPECT_LT(worst, 0.05);
}

TEST_F(DeployTest, DeeperPafsCostMoreMults) {
  auto mults = [&](PafForm form) {
    const auto paf = approx::make_paf(form);
    std::vector<double> v(rt_->ctx().slot_count(), 0.4);
    const auto ct = rt_->encrypt(v);
    fhe::EvalStats stats;
    rt_->paf_evaluator().eval_composite(rt_->evaluator(), ct, paf, &stats);
    return stats.ct_mults;
  };
  EXPECT_LT(mults(PafForm::F1_G2), mults(PafForm::ALPHA10_D27));
}

}  // namespace
