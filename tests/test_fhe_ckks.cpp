#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "approx/presets.h"
#include "common/rng.h"
#include "fhe/encryptor.h"
#include "fhe/evaluator.h"
#include "fhe/poly_eval.h"

namespace {

using namespace sp::fhe;

/// Shared CKKS fixture: N=2048, 4 chain primes (depth 3), scale 2^30.
class CkksTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    params_ = std::make_unique<CkksParams>(CkksParams::test_small());
    ctx_ = std::make_unique<CkksContext>(*params_);
    encoder_ = std::make_unique<Encoder>(*ctx_);
    keygen_ = std::make_unique<KeyGenerator>(*ctx_, 2024);
    encryptor_ = std::make_unique<Encryptor>(*ctx_, keygen_->public_key());
    decryptor_ = std::make_unique<Decryptor>(*ctx_, keygen_->secret_key());
    evaluator_ = std::make_unique<Evaluator>(*ctx_);
    relin_ = std::make_unique<KSwitchKey>(keygen_->relin_key());
  }
  static void TearDownTestSuite() {
    relin_.reset();
    evaluator_.reset();
    decryptor_.reset();
    encryptor_.reset();
    keygen_.reset();
    encoder_.reset();
    ctx_.reset();
    params_.reset();
  }

  static std::vector<double> ramp(std::size_t count, double lo, double hi) {
    std::vector<double> v(count);
    for (std::size_t i = 0; i < count; ++i)
      v[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(count - 1);
    return v;
  }

  static double max_abs_diff(const std::vector<double>& a, const std::vector<double>& b) {
    double worst = 0;
    for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i)
      worst = std::max(worst, std::abs(a[i] - b[i]));
    return worst;
  }

  static std::unique_ptr<CkksParams> params_;
  static std::unique_ptr<CkksContext> ctx_;
  static std::unique_ptr<Encoder> encoder_;
  static std::unique_ptr<KeyGenerator> keygen_;
  static std::unique_ptr<Encryptor> encryptor_;
  static std::unique_ptr<Decryptor> decryptor_;
  static std::unique_ptr<Evaluator> evaluator_;
  static std::unique_ptr<KSwitchKey> relin_;
};

std::unique_ptr<CkksParams> CkksTest::params_;
std::unique_ptr<CkksContext> CkksTest::ctx_;
std::unique_ptr<Encoder> CkksTest::encoder_;
std::unique_ptr<KeyGenerator> CkksTest::keygen_;
std::unique_ptr<Encryptor> CkksTest::encryptor_;
std::unique_ptr<Decryptor> CkksTest::decryptor_;
std::unique_ptr<Evaluator> CkksTest::evaluator_;
std::unique_ptr<KSwitchKey> CkksTest::relin_;

TEST_F(CkksTest, EncodeDecodeRoundTrip) {
  const auto v = ramp(ctx_->slot_count(), -3.0, 3.0);
  const Plaintext pt = encoder_->encode(v, ctx_->scale(), ctx_->q_count());
  const auto back = encoder_->decode(pt);
  EXPECT_LT(max_abs_diff(v, back), 1e-6);
}

TEST_F(CkksTest, EncodeScalarBroadcasts) {
  const Plaintext pt = encoder_->encode_scalar(0.75, ctx_->scale(), 2);
  const auto back = encoder_->decode(pt);
  for (double x : back) EXPECT_NEAR(x, 0.75, 1e-6);
}

TEST_F(CkksTest, EncryptDecryptRoundTrip) {
  const auto v = ramp(ctx_->slot_count(), -1.0, 1.0);
  const Plaintext pt = encoder_->encode(v, ctx_->scale(), ctx_->q_count());
  const Ciphertext ct = encryptor_->encrypt(pt);
  const auto back = encoder_->decode(decryptor_->decrypt(ct));
  EXPECT_LT(max_abs_diff(v, back), 1e-4);
}

TEST_F(CkksTest, HomomorphicAddAndSub) {
  const auto a = ramp(ctx_->slot_count(), -1.0, 1.0);
  const auto b = ramp(ctx_->slot_count(), 2.0, 4.0);
  const Ciphertext ca = encryptor_->encrypt(encoder_->encode(a, ctx_->scale(), ctx_->q_count()));
  const Ciphertext cb = encryptor_->encrypt(encoder_->encode(b, ctx_->scale(), ctx_->q_count()));
  const auto sum = encoder_->decode(decryptor_->decrypt(evaluator_->add(ca, cb)));
  const auto diff = encoder_->decode(decryptor_->decrypt(evaluator_->sub(ca, cb)));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(sum[i], a[i] + b[i], 1e-3);
    EXPECT_NEAR(diff[i], a[i] - b[i], 1e-3);
  }
}

TEST_F(CkksTest, AddPlainAndMultiplyPlain) {
  const auto a = ramp(ctx_->slot_count(), -1.0, 1.0);
  Ciphertext ct = encryptor_->encrypt(encoder_->encode(a, ctx_->scale(), ctx_->q_count()));
  evaluator_->add_plain_inplace(ct, encoder_->encode_scalar(2.5, ct.scale, ct.q_count()));
  evaluator_->multiply_plain_inplace(ct, encoder_->encode_scalar(3.0, ctx_->scale(), ct.q_count()));
  evaluator_->rescale_inplace(ct);
  const auto back = encoder_->decode(decryptor_->decrypt(ct));
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(back[i], 3.0 * (a[i] + 2.5), 2e-3);
}

TEST_F(CkksTest, MultiplyRelinRescale) {
  const auto a = ramp(ctx_->slot_count(), -1.0, 1.0);
  const auto b = ramp(ctx_->slot_count(), 0.5, 1.5);
  Ciphertext ca = encryptor_->encrypt(encoder_->encode(a, ctx_->scale(), ctx_->q_count()));
  Ciphertext cb = encryptor_->encrypt(encoder_->encode(b, ctx_->scale(), ctx_->q_count()));
  Ciphertext prod = evaluator_->multiply(ca, cb);
  EXPECT_EQ(prod.size(), 3);
  evaluator_->relinearize_inplace(prod, *relin_);
  EXPECT_EQ(prod.size(), 2);
  evaluator_->rescale_inplace(prod);
  EXPECT_EQ(prod.level(), ctx_->q_count() - 2);
  const auto back = encoder_->decode(decryptor_->decrypt(prod));
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(back[i], a[i] * b[i], 5e-3);
}

TEST_F(CkksTest, ThreePartDecryptionWithoutRelin) {
  const auto a = ramp(ctx_->slot_count(), -1.0, 1.0);
  Ciphertext ca = encryptor_->encrypt(encoder_->encode(a, ctx_->scale(), ctx_->q_count()));
  Ciphertext prod = evaluator_->multiply(ca, ca);
  const auto back = encoder_->decode(decryptor_->decrypt(prod));
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(back[i], a[i] * a[i], 5e-3);
}

TEST_F(CkksTest, SequentialMultiplicationsToDepth) {
  // x^8 via 3 squarings uses the full depth-3 budget.
  std::vector<double> v(ctx_->slot_count(), 0.9);
  Ciphertext ct = encryptor_->encrypt(encoder_->encode(v, ctx_->scale(), ctx_->q_count()));
  for (int i = 0; i < 3; ++i) {
    ct = evaluator_->multiply(ct, ct);
    evaluator_->relinearize_inplace(ct, *relin_);
    evaluator_->rescale_inplace(ct);
  }
  const auto back = encoder_->decode(decryptor_->decrypt(ct));
  EXPECT_NEAR(back[0], std::pow(0.9, 8.0), 2e-2);
}

TEST_F(CkksTest, DropToLevelPreservesValues) {
  const auto a = ramp(ctx_->slot_count(), -2.0, 2.0);
  Ciphertext ct = encryptor_->encrypt(encoder_->encode(a, ctx_->scale(), ctx_->q_count()));
  evaluator_->drop_to_level(ct, 1);
  EXPECT_EQ(ct.level(), 1);
  const auto back = encoder_->decode(decryptor_->decrypt(ct));
  EXPECT_LT(max_abs_diff(a, back), 1e-4);
}

TEST_F(CkksTest, RescaleDividesScale) {
  std::vector<double> v(ctx_->slot_count(), 1.0);
  Ciphertext ct = encryptor_->encrypt(encoder_->encode(v, ctx_->scale(), ctx_->q_count()));
  const double s0 = ct.scale;
  evaluator_->multiply_plain_inplace(ct, encoder_->encode_scalar(1.0, ctx_->scale(), ct.q_count()));
  evaluator_->rescale_inplace(ct);
  const double q_last = static_cast<double>(ctx_->q(ctx_->q_count() - 1).value());
  EXPECT_NEAR(ct.scale, s0 * ctx_->scale() / q_last, 1.0);
}

TEST_F(CkksTest, RotationShiftsSlots) {
  const auto gk = keygen_->galois_keys({1, 3});
  auto v = ramp(ctx_->slot_count(), 0.0, 1.0);
  Ciphertext ct = encryptor_->encrypt(encoder_->encode(v, ctx_->scale(), ctx_->q_count()));
  const auto r1 = encoder_->decode(decryptor_->decrypt(evaluator_->rotate(ct, 1, gk)));
  for (std::size_t i = 0; i + 1 < v.size(); ++i) EXPECT_NEAR(r1[i], v[i + 1], 1e-3);
  const auto r3 = encoder_->decode(decryptor_->decrypt(evaluator_->rotate(ct, 3, gk)));
  for (std::size_t i = 0; i + 3 < v.size(); ++i) EXPECT_NEAR(r3[i], v[i + 3], 1e-3);
}

TEST_F(CkksTest, RotationWrapsAround) {
  const auto gk = keygen_->galois_keys({1});
  auto v = ramp(ctx_->slot_count(), 0.0, 1.0);
  Ciphertext ct = encryptor_->encrypt(encoder_->encode(v, ctx_->scale(), ctx_->q_count()));
  const auto r = encoder_->decode(decryptor_->decrypt(evaluator_->rotate(ct, 1, gk)));
  EXPECT_NEAR(r[ctx_->slot_count() - 1], v[0], 1e-3);
}

TEST_F(CkksTest, PolyEvalLinear) {
  PafEvaluator pe(*ctx_, *encoder_, *relin_);
  const auto v = ramp(ctx_->slot_count(), -1.0, 1.0);
  Ciphertext ct = encryptor_->encrypt(encoder_->encode(v, ctx_->scale(), ctx_->q_count()));
  const sp::approx::Polynomial p({0.25, 2.0});  // 0.25 + 2x
  const Ciphertext out = pe.eval_poly(*evaluator_, ct, p);
  const auto back = encoder_->decode(decryptor_->decrypt(out));
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(back[i], 0.25 + 2.0 * v[i], 5e-3);
}

TEST_F(CkksTest, PolyEvalCubicOdd) {
  PafEvaluator pe(*ctx_, *encoder_, *relin_);
  const auto v = ramp(ctx_->slot_count(), -1.0, 1.0);
  Ciphertext ct = encryptor_->encrypt(encoder_->encode(v, ctx_->scale(), ctx_->q_count()));
  const sp::approx::Polynomial f1({0.0, 1.5, 0.0, -0.5});
  EvalStats stats;
  const Ciphertext out = pe.eval_poly(*evaluator_, ct, f1, &stats);
  const auto back = encoder_->decode(decryptor_->decrypt(out));
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(back[i], f1(v[i]), 1e-2);
  // Cubic needs depth 2: x2 then x3, each one ct mult.
  EXPECT_EQ(stats.ct_mults, 2);
}

TEST_F(CkksTest, PolyEvalDepthMatchesLadderRule) {
  PafEvaluator pe(*ctx_, *encoder_, *relin_);
  std::vector<double> v(ctx_->slot_count(), 0.5);
  Ciphertext ct = encryptor_->encrypt(encoder_->encode(v, ctx_->scale(), ctx_->q_count()));
  // Degree-7 odd polynomial must consume ceil(log2(8)) = 3 levels.
  const sp::approx::Polynomial p({0.0, 0.5, 0.0, 0.25, 0.0, 0.125, 0.0, 0.0625});
  const Ciphertext out = pe.eval_poly(*evaluator_, ct, p);
  EXPECT_EQ(ct.level() - out.level(), 3);
  const auto back = encoder_->decode(decryptor_->decrypt(out));
  EXPECT_NEAR(back[0], p(0.5), 1e-2);
}

}  // namespace
