// Serving-layer regression net: SessionRegistry LRU/fingerprint contracts,
// AsyncExecutor flush reasons (deadline vs group-full vs drain), admission
// control and backpressure, per-request outcome accounting on evaluation
// failure, packed parity + response masking, the thread-safe rotation-key
// store (exercised under TSan in CI), BatchRunner::drain's lost-id
// accounting in both schedules, and the seedless Encryptor's entropy seeding.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "io/serialize.h"
#include "serve/async_executor.h"
#include "serve/session_registry.h"
#include "smartpaf/batch_runner.h"
#include "smartpaf/fhe_deploy.h"
#include "smartpaf/pipeline.h"

namespace {

using namespace sp;
using namespace std::chrono_literals;

/// One client keygen runtime shared by every test (keygen dominates the
/// suite's cost); server-side sessions are derived from it THROUGH the wire
/// blobs, exactly like the serving handshake.
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    client_ = std::make_unique<smartpaf::FheRuntime>(
        fhe::CkksParams::for_depth(2048, 3, 40), /*seed=*/2028);
  }
  static void TearDownTestSuite() { client_.reset(); }

  static std::shared_ptr<serve::Session> make_session(std::uint64_t id) {
    auto ctx = std::make_unique<fhe::CkksContext>(
        io::deserialize_params(io::serialize(client_->ctx().params())));
    fhe::PublicKey pk =
        io::deserialize_public_key(io::serialize(client_->public_key()), *ctx);
    fhe::KSwitchKey relin =
        io::deserialize_kswitch_key(io::serialize(client_->relin_key()), *ctx);
    return std::make_shared<serve::Session>(id, std::move(ctx), std::move(pk),
                                            std::move(relin), fhe::GaloisKeys{});
  }

  /// Opens a registry-held session built from the shared client material.
  static std::shared_ptr<serve::Session> open_in(serve::SessionRegistry& reg,
                                                 std::uint64_t id) {
    auto ctx = std::make_unique<fhe::CkksContext>(
        io::deserialize_params(io::serialize(client_->ctx().params())));
    fhe::PublicKey pk =
        io::deserialize_public_key(io::serialize(client_->public_key()), *ctx);
    fhe::KSwitchKey relin =
        io::deserialize_kswitch_key(io::serialize(client_->relin_key()), *ctx);
    return reg.open(id, std::move(ctx), std::move(pk), std::move(relin),
                    fhe::GaloisKeys{});
  }

  /// Encrypts client-side and crosses the wire into the session's context.
  static fhe::Ciphertext request_for(serve::Session& session,
                                     const std::vector<double>& head_values) {
    std::vector<double> slots(client_->ctx().slot_count(), 0.0);
    for (std::size_t i = 0; i < head_values.size(); ++i) slots[i] = head_values[i];
    return io::deserialize_ciphertext(io::serialize(client_->encrypt(slots)),
                                      session.runtime().ctx());
  }

  /// The cheapest maskable pipeline: y = 2x + 0.5 (1 level + 1 for the mask,
  /// inside the depth-3 chain).
  static smartpaf::FhePipeline affine_pipeline() {
    return smartpaf::FhePipeline::builder().linear(2.0, 0.5).build();
  }

  static std::unique_ptr<smartpaf::FheRuntime> client_;
};

std::unique_ptr<smartpaf::FheRuntime> ServeTest::client_;

/// Collects outcomes and lets tests block until N arrived.
struct OutcomeSink {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<serve::Outcome> outcomes;

  serve::AsyncExecutor::OutcomeCallback callback() {
    return [this](serve::Outcome o) {
      std::unique_lock<std::mutex> lock(mu);
      outcomes.push_back(std::move(o));
      lock.unlock();
      cv.notify_all();
    };
  }
  std::vector<serve::Outcome> wait_for(std::size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    const bool got = cv.wait_for(lock, 30s, [&] { return outcomes.size() >= n; });
    sp::check(got, "OutcomeSink: timed out waiting for outcomes");
    return outcomes;
  }
};

// ---------------------------------------------------------------------------
// SessionRegistry
// ---------------------------------------------------------------------------

TEST_F(ServeTest, RegistryEvictsLeastRecentlyUsed) {
  serve::SessionRegistry reg(/*max_sessions=*/2);
  auto s1 = open_in(reg, 1);
  auto s2 = open_in(reg, 2);
  ASSERT_EQ(reg.size(), 2u);

  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_EQ(reg.find(1, s1->fingerprint()).get(), s1.get());
  open_in(reg, 3);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.evictions(), 1u);
  EXPECT_THROW(reg.find(2, s2->fingerprint()), sp::Error);
  EXPECT_NO_THROW(reg.find(1, s1->fingerprint()));
  EXPECT_NO_THROW(reg.find(3, s1->fingerprint()));

  // The evicted session stays alive for whoever still holds the shared_ptr
  // (requests in flight keep evaluating against it).
  EXPECT_EQ(s2->client_id(), 2u);
}

TEST_F(ServeTest, RegistryRejectsFingerprintMismatch) {
  serve::SessionRegistry reg(4);
  auto s = open_in(reg, 9);
  EXPECT_NO_THROW(reg.find(9, s->fingerprint()));
  bool threw = false;
  try {
    reg.find(9, s->fingerprint() + 1);
  } catch (const sp::Error& e) {
    threw = true;
    EXPECT_NE(std::string(e.what()).find("fingerprint"), std::string::npos);
  }
  EXPECT_TRUE(threw) << "mismatched fingerprint must throw";
}

TEST_F(ServeTest, RegistryReopenReplacesWithoutEviction) {
  serve::SessionRegistry reg(2);
  auto first = open_in(reg, 5);
  auto second = open_in(reg, 5);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.evictions(), 0u);
  EXPECT_EQ(reg.find(5, second->fingerprint()).get(), second.get());
  EXPECT_NE(first.get(), second.get());
}

TEST_F(ServeTest, RegistryCloseDropsSession) {
  serve::SessionRegistry reg(4);
  auto s = open_in(reg, 6);
  reg.close(6);
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_THROW(reg.find(6, s->fingerprint()), sp::Error);
  EXPECT_NO_THROW(reg.close(12345));  // unknown ids are a no-op
}

// ---------------------------------------------------------------------------
// AsyncExecutor
// ---------------------------------------------------------------------------

TEST_F(ServeTest, ExecutorFlushesOnDeadlineWhenGroupIsShort) {
  serve::ExecutorConfig cfg;
  cfg.input_size = 8;
  cfg.group_capacity = 4;
  cfg.deadline = 30ms;
  OutcomeSink sink;
  serve::AsyncExecutor exec(affine_pipeline(), cfg, sink.callback());
  auto session = make_session(1);
  session->adopt_rotation_keys(io::deserialize_galois_keys(
      io::serialize(*client_->rotation_keys(exec.required_rotation_steps(*session))),
      session->runtime().ctx()));

  ASSERT_TRUE(exec.submit(session, request_for(*session, {0.25})).accepted);
  ASSERT_TRUE(exec.submit(session, request_for(*session, {0.5})).accepted);
  const auto outcomes = sink.wait_for(2);
  for (const serve::Outcome& o : outcomes) {
    EXPECT_EQ(o.kind, serve::Outcome::Kind::Completed);
    EXPECT_EQ(o.flush, serve::FlushReason::Deadline);
    EXPECT_EQ(o.batch_size, 2);
  }
  EXPECT_EQ(exec.stats().flush_deadline, 1u);
  EXPECT_EQ(exec.stats().flush_full, 0u);
}

TEST_F(ServeTest, ExecutorFlushesImmediatelyWhenGroupFills) {
  serve::ExecutorConfig cfg;
  cfg.input_size = 8;
  cfg.group_capacity = 3;
  cfg.deadline = 10s;  // a deadline flush would time the test out
  OutcomeSink sink;
  serve::AsyncExecutor exec(affine_pipeline(), cfg, sink.callback());
  auto session = make_session(1);
  session->adopt_rotation_keys(io::deserialize_galois_keys(
      io::serialize(*client_->rotation_keys(exec.required_rotation_steps(*session))),
      session->runtime().ctx()));

  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(exec.submit(session, request_for(*session, {0.1 * (i + 1)})).accepted);
  const auto outcomes = sink.wait_for(3);
  for (const serve::Outcome& o : outcomes) {
    EXPECT_EQ(o.kind, serve::Outcome::Kind::Completed);
    EXPECT_EQ(o.flush, serve::FlushReason::Full);
    EXPECT_EQ(o.batch_size, 3);
  }
  EXPECT_EQ(exec.stats().flush_full, 1u);
}

TEST_F(ServeTest, ExecutorStopDrainsPendingRequests) {
  serve::ExecutorConfig cfg;
  cfg.input_size = 8;
  cfg.group_capacity = 4;
  cfg.deadline = 10s;
  OutcomeSink sink;
  serve::AsyncExecutor exec(affine_pipeline(), cfg, sink.callback());
  auto session = make_session(1);
  session->adopt_rotation_keys(io::deserialize_galois_keys(
      io::serialize(*client_->rotation_keys(exec.required_rotation_steps(*session))),
      session->runtime().ctx()));

  ASSERT_TRUE(exec.submit(session, request_for(*session, {0.75})).accepted);
  exec.stop();
  const auto outcomes = sink.wait_for(1);
  EXPECT_EQ(outcomes[0].kind, serve::Outcome::Kind::Completed);
  EXPECT_EQ(outcomes[0].flush, serve::FlushReason::Drain);
  // Post-stop submits are rejected, not queued.
  const serve::Admission late = exec.submit(session, request_for(*session, {0.1}));
  EXPECT_FALSE(late.accepted);
}

TEST_F(ServeTest, ExecutorBackpressureRejectsWithReason) {
  serve::ExecutorConfig cfg;
  cfg.input_size = 8;
  cfg.group_capacity = 8;
  cfg.deadline = 10s;  // nothing flushes while we probe the bound
  cfg.max_queue = 2;
  OutcomeSink sink;
  serve::AsyncExecutor exec(affine_pipeline(), cfg, sink.callback());
  auto session = make_session(1);
  session->adopt_rotation_keys(io::deserialize_galois_keys(
      io::serialize(*client_->rotation_keys(exec.required_rotation_steps(*session))),
      session->runtime().ctx()));

  const fhe::Ciphertext req = request_for(*session, {0.5});
  ASSERT_TRUE(exec.submit(session, req).accepted);
  ASSERT_TRUE(exec.submit(session, req).accepted);
  const serve::Admission third = exec.submit(session, req);
  EXPECT_FALSE(third.accepted);
  EXPECT_NE(third.reason.find("saturated"), std::string::npos) << third.reason;
  EXPECT_EQ(exec.stats().rejected, 1u);
  exec.stop();  // both accepted requests still complete
  const auto outcomes = sink.wait_for(2);
  EXPECT_EQ(outcomes.size(), 2u);
}

TEST_F(ServeTest, ExecutorRejectsMalformedRequests) {
  serve::ExecutorConfig cfg;
  cfg.input_size = 8;
  OutcomeSink sink;
  serve::AsyncExecutor exec(affine_pipeline(), cfg, sink.callback());
  auto session = make_session(1);

  EXPECT_FALSE(exec.submit(nullptr, fhe::Ciphertext{}).accepted);
  const serve::Admission bad = exec.submit(session, fhe::Ciphertext{});
  EXPECT_FALSE(bad.accepted);
  EXPECT_NE(bad.reason.find("parts"), std::string::npos) << bad.reason;
  EXPECT_EQ(exec.stats().rejected, 2u);
}

TEST_F(ServeTest, ExecutorFailureReportsEveryLostId) {
  serve::ExecutorConfig cfg;
  cfg.input_size = 8;
  cfg.group_capacity = 3;
  cfg.deadline = 20ms;
  OutcomeSink sink;
  serve::AsyncExecutor exec(affine_pipeline(), cfg, sink.callback());
  auto session = make_session(1);
  std::vector<std::uint64_t> hook_ids;
  exec.set_eval_hook([&](const std::vector<std::uint64_t>& ids) {
    hook_ids = ids;
    throw sp::Error("injected group failure");
  });

  std::set<std::uint64_t> submitted;
  const fhe::Ciphertext req = request_for(*session, {0.5});
  for (int i = 0; i < 3; ++i) {
    const serve::Admission adm = exec.submit(session, req);
    ASSERT_TRUE(adm.accepted);
    submitted.insert(adm.id);
  }
  const auto outcomes = sink.wait_for(3);
  std::set<std::uint64_t> failed;
  for (const serve::Outcome& o : outcomes) {
    EXPECT_EQ(o.kind, serve::Outcome::Kind::Failed);
    EXPECT_NE(o.error.find("injected group failure"), std::string::npos);
    failed.insert(o.id);
  }
  EXPECT_EQ(failed, submitted);  // every accepted ticket got its NACK
  EXPECT_EQ(std::set<std::uint64_t>(hook_ids.begin(), hook_ids.end()), submitted);
  EXPECT_EQ(exec.stats().failed, 3u);
  EXPECT_EQ(exec.stats().completed, 0u);
}

TEST_F(ServeTest, PackedResponsesMatchReferenceAndMaskForeignSlots) {
  serve::ExecutorConfig cfg;
  cfg.input_size = 8;
  cfg.group_capacity = 4;
  cfg.deadline = 10s;
  OutcomeSink sink;
  serve::AsyncExecutor exec(affine_pipeline(), cfg, sink.callback());
  auto session = make_session(1);
  session->adopt_rotation_keys(io::deserialize_galois_keys(
      io::serialize(*client_->rotation_keys(exec.required_rotation_steps(*session))),
      session->runtime().ctx()));

  sp::Rng rng(7);
  std::vector<std::vector<double>> values(4);
  std::vector<std::uint64_t> tickets;
  for (auto& v : values) {
    v.resize(8);
    for (double& x : v) x = rng.uniform(-1.0, 1.0);
    const serve::Admission adm = exec.submit(session, request_for(*session, v));
    ASSERT_TRUE(adm.accepted);
    tickets.push_back(adm.id);
  }

  const auto outcomes = sink.wait_for(4);
  const double tol = 1e-4;
  for (const serve::Outcome& o : outcomes) {
    ASSERT_EQ(o.kind, serve::Outcome::Kind::Completed);
    const std::size_t idx = static_cast<std::size_t>(
        std::find(tickets.begin(), tickets.end(), o.id) - tickets.begin());
    ASSERT_LT(idx, values.size());
    const std::vector<double> got = client_->decrypt(
        io::deserialize_ciphertext(io::serialize(o.result), client_->ctx()));
    for (std::size_t j = 0; j < got.size(); ++j) {
      if (j < 8) {
        EXPECT_NEAR(got[j], 2.0 * values[idx][j] + 0.5, tol)
            << "request " << idx << " slot " << j;
      } else {
        // The linear stage's bias lands 0.5 in EVERY slot pre-mask, so a
        // near-zero read here proves the response mask did its job.
        EXPECT_NEAR(got[j], 0.0, tol) << "foreign slot " << j;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// FheRuntime rotation-key store (S3): concurrent extension + stable snapshots
// ---------------------------------------------------------------------------

TEST_F(ServeTest, RotationKeyStoreIsThreadSafe) {
  smartpaf::FheRuntime rt(fhe::CkksParams::for_depth(2048, 2, 40), /*seed=*/77);
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&rt, &failed, t] {
      for (int iter = 0; iter < 3; ++iter) {
        const int own = t + 1;  // every thread keygens its own step + shared 1
        const auto snapshot = rt.rotation_keys({1, own, -own});
        if (!snapshot) {
          failed = true;
          return;
        }
        // Snapshots are immutable: concurrent extensions must never mutate a
        // handed-out map (TSan enforces the absence of racing writes).
        for (const int s : {1, own, -own}) {
          if (snapshot->keys.find(rt.evaluator().galois_element(s)) ==
              snapshot->keys.end()) {
            failed = true;
            return;
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_GE(rt.rotation_key_count(), 8u);  // {+-1..+-4} dedup'd across threads
}

// ---------------------------------------------------------------------------
// BatchRunner::drain lost-id accounting (S1), both schedules
// ---------------------------------------------------------------------------

TEST(BatchDrain, TypedErrorCarriesLostIdsAndRequeuesTheRest) {
  smartpaf::FheRuntime rt(fhe::CkksParams::for_depth(2048, 6, 40), /*seed=*/2029);
  sp::Rng coeff_rng(41);
  std::vector<double> c(8, 0.0);
  for (int k = 1; k <= 7; k += 2)
    c[static_cast<std::size_t>(k)] = coeff_rng.uniform(-1.0, 1.0) / 8.0;
  smartpaf::BatchConfig cfg;
  cfg.input_size = static_cast<int>(rt.ctx().slot_count()) / 2;  // capacity 2
  cfg.paf = approx::CompositePaf("deg7", {approx::Polynomial(c)});
  cfg.input_scale = 2.0;

  for (const bool overlap : {true, false}) {
    smartpaf::BatchRunner runner(rt, cfg);
    runner.set_overlap(overlap);

    sp::Rng rng(11);
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 6; ++i) {
      std::vector<double> input(4);
      for (double& x : input) x = rng.uniform(-1.0, 1.0);
      ids.push_back(runner.submit(std::move(input)));
    }
    // Groups are {ids[0],ids[1]}, {ids[2],ids[3]}, {ids[4],ids[5]}; fail the
    // second mid-flight.
    runner.set_eval_hook([&](const std::vector<std::uint64_t>& group) {
      if (std::find(group.begin(), group.end(), ids[2]) != group.end())
        throw sp::Error("injected mid-flight failure");
    });

    bool threw = false;
    try {
      runner.drain();
    } catch (const smartpaf::BatchDrainError& e) {
      threw = true;
      EXPECT_EQ(e.lost_ids(), (std::vector<std::uint64_t>{ids[2], ids[3]}))
          << "overlap=" << overlap;
      ASSERT_EQ(e.completed().size(), 1u) << "overlap=" << overlap;
      EXPECT_EQ(e.completed()[0].ids, (std::vector<std::uint64_t>{ids[0], ids[1]}));
      EXPECT_NE(std::string(e.what()).find("injected mid-flight failure"),
                std::string::npos);
    }
    EXPECT_TRUE(threw) << "drain must throw when a group is lost (overlap=" << overlap
                       << ")";

    // The untouched third group was requeued, and a clean drain picks it up.
    EXPECT_EQ(runner.pending(), 2u) << "overlap=" << overlap;
    runner.set_eval_hook(nullptr);
    const auto results = runner.drain();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].ids, (std::vector<std::uint64_t>{ids[4], ids[5]}));
  }
}

// ---------------------------------------------------------------------------
// Seedless Encryptor entropy (S4)
// ---------------------------------------------------------------------------

TEST_F(ServeTest, SeedlessEncryptorsDrawDistinctRandomness) {
  const fhe::CkksContext& ctx = client_->ctx();
  const fhe::Plaintext pt =
      client_->encoder().encode(std::vector<double>(ctx.slot_count(), 0.5),
                                ctx.scale(), ctx.q_count());
  // Two seedless encryptors must not replay one randomness stream (the old
  // default-seeded constructor made every process emit identical masks,
  // which is a CPA-security collapse, not a determinism feature).
  fhe::Encryptor a(ctx, client_->public_key());
  fhe::Encryptor b(ctx, client_->public_key());
  const fhe::Ciphertext ca = a.encrypt(pt);
  const fhe::Ciphertext cb = b.encrypt(pt);
  ASSERT_EQ(ca.parts.size(), 2u);
  bool identical = true;
  for (int row = 0; row < ca.parts[0].row_count() && identical; ++row) {
    if (std::memcmp(ca.parts[0].row(row), cb.parts[0].row(row),
                    sizeof(std::uint64_t) * static_cast<std::size_t>(ca.parts[0].n())) !=
        0)
      identical = false;
  }
  EXPECT_FALSE(identical);
  // Both still decrypt to the same values, of course.
  const std::vector<double> da = client_->decrypt(ca);
  EXPECT_NEAR(da[0], 0.5, 1e-6);
}

}  // namespace
