#!/usr/bin/env python3
"""Inspects sp::io wire blobs without deserializing them.

Prints the header (magic, version, kind, params fingerprint) and payload
size of each blob file, plus kind-specific detail where the prologue is
cheap to parse (CkksParams fields, ciphertext part count). Useful for
checking what a stored/captured blob actually is before feeding it to a
deserializer, and for debugging fingerprint mismatches between client and
server.

Usage:
  tools/ctblob.py BLOB [BLOB ...]

Exit status: 0 if every file parses as a well-formed header, 1 otherwise.
The layout contract lives in docs/WIRE.md; this script tracks wire version 2.
"""

import struct
import sys

MAGIC = 0x42575053  # "SPWB" little-endian
SUPPORTED_VERSION = 2

KIND_NAMES = {
    1: "CkksParams",
    2: "RnsPoly",
    3: "Plaintext",
    4: "Ciphertext",
    5: "PublicKey",
    6: "SecretKey",
    7: "KSwitchKey",
    8: "GaloisKeys",
    9: "Plan",
    10: "RotationSteps",
    11: "TrainingState",
}


def inspect(path):
    with open(path, "rb") as f:
        data = f.read()
    if len(data) < 16:
        raise ValueError(f"{len(data)} bytes is too short for an SPWB header")
    magic, version, kind, fingerprint = struct.unpack_from("<IHHQ", data, 0)
    if magic != MAGIC:
        raise ValueError(f"bad magic 0x{magic:08x} (not an SPWB blob)")
    kind_name = KIND_NAMES.get(kind, f"unknown({kind})")
    print(f"{path}:")
    print(f"  magic        SPWB")
    print(f"  version      {version}"
          + ("" if version == SUPPORTED_VERSION else "  (UNSUPPORTED by this script)"))
    print(f"  kind         {kind_name}")
    print(f"  fingerprint  0x{fingerprint:016x}")
    print(f"  total bytes  {len(data)} ({len(data) - 16} payload)")
    if version != SUPPORTED_VERSION:
        return
    if kind == 1 and len(data) >= 32:
        poly_degree, nbits = struct.unpack_from("<QQ", data, 16)
        q_bits = struct.unpack_from(f"<{nbits}i", data, 32)
        off = 32 + 4 * nbits
        special_bits, = struct.unpack_from("<i", data, off)
        scale, noise = struct.unpack_from("<dd", data, off + 4)
        print(f"  poly_degree  {poly_degree}")
        print(f"  q_bits       {list(q_bits)}")
        print(f"  special_bits {special_bits}")
        print(f"  scale        {scale:g}")
        print(f"  noise_stddev {noise:g}")
    elif kind == 4 and len(data) >= 20:
        parts, = struct.unpack_from("<I", data, 16)
        print(f"  parts        {parts}")
        if len(data) >= 33:
            ring_n, q_count = struct.unpack_from("<QI", data, 20)
            print(f"  ring n       {ring_n}")
            print(f"  q_count      {q_count}")
    elif kind == 11 and len(data) >= 102:
        # Fixed-layout checkpoint prologue (see train/checkpoint.h).
        optimizer, = struct.unpack_from("<B", data, 16)
        features, batch, iterations = struct.unpack_from("<iii", data, 17)
        lr, momentum, beta1, beta2, adam_eps = struct.unpack_from("<5d", data, 29)
        sigmoid_degree, = struct.unpack_from("<i", data, 69)
        sigmoid_range, = struct.unpack_from("<d", data, 73)
        invsqrt_degree, = struct.unpack_from("<i", data, 81)
        vhat_max, = struct.unpack_from("<d", data, 85)
        matvec_n1, = struct.unpack_from("<i", data, 93)
        iteration, = struct.unpack_from("<I", data, 97)
        flags, = struct.unpack_from("<B", data, 101)
        state = [name for bit, name in ((1, "velocity"), (2, "m"), (4, "v"))
                 if flags & bit]
        print(f"  optimizer    {'Adam' if optimizer == 1 else 'SgdMomentum'}")
        print(f"  shape        {batch} x {features}, {iterations} iterations planned")
        print(f"  lr           {lr:g}  (momentum {momentum:g}, "
              f"beta1 {beta1:g}, beta2 {beta2:g}, eps {adam_eps:g})")
        print(f"  sigmoid      deg {sigmoid_degree} on [-{sigmoid_range:g}, "
              f"{sigmoid_range:g}]")
        print(f"  invsqrt      deg {invsqrt_degree} on [0, {vhat_max:g}]")
        print(f"  matvec_n1    {matvec_n1 if matvec_n1 else 'auto'}")
        print(f"  iteration    {iteration}")
        print(f"  state cts    weights" + "".join(f", {s}" for s in state))


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__.strip())
        return 0 if len(argv) >= 2 else 1
    status = 0
    for path in argv[1:]:
        try:
            inspect(path)
        except (OSError, ValueError, struct.error) as e:
            print(f"{path}: ERROR: {e}", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
