#!/usr/bin/env python3
"""Checks intra-repo markdown links.

Scans every tracked-ish .md file (skipping build trees and vendored code)
for [text](target) links and fails when a relative target does not exist on
disk. External links (scheme://, mailto:) and pure in-page anchors (#...)
are skipped; a relative target's #anchor suffix is stripped before the
existence check.

Usage: python3 tools/check_md_links.py [repo_root]
Exit code 0 = all links resolve, 1 = broken links (listed on stdout).
"""
import os
import re
import sys

SKIP_DIRS = {"build", "build-shim", "build-tsan", "bench_out", "third_party",
             ".git", ".claude"}
# [text](target) — target must not start with a scheme or be an in-page
# anchor. Images ![alt](path) match the same pattern.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SCHEME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames
                       if d not in SKIP_DIRS and not d.startswith("build")]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path):
    broken = []
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            # Code is not hypertext: skip fenced blocks and inline `...`
            # spans, else C++ like operator[](size_t) reads as a link.
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            line = re.sub(r"`[^`]*`", "", line)
            for target in LINK_RE.findall(line):
                if SCHEME_RE.match(target) or target.startswith("#"):
                    continue
                rel = target.split("#", 1)[0]
                if not rel:
                    continue
                resolved = os.path.normpath(os.path.join(os.path.dirname(path), rel))
                if not os.path.exists(resolved):
                    broken.append((lineno, target))
    return broken


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    failures = 0
    checked = 0
    for path in sorted(md_files(root)):
        checked += 1
        for lineno, target in check_file(path):
            print(f"BROKEN {os.path.relpath(path, root)}:{lineno}: ({target})")
            failures += 1
    print(f"checked {checked} markdown files: "
          f"{'all links resolve' if failures == 0 else f'{failures} broken links'}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
