// Reproduces Table 3: the technique-combination ablation.
//
// Default (quick) mode runs the headline section — ResNet-18-mini with *all*
// non-polynomial operators replaced — over all five trainable PAF forms:
//   baseline+DS w/o fine-tune, baseline+CT+DS w/o fine-tune,
//   baseline+DS, baseline+SS, SMART-PAF(CT+PA+AT)+DS, SMART-PAF+SS.
// --full adds the ReLU-only ResNet section (with the intermediate technique
// combos) and the VGG-19/cifar section.
#include <cstdio>
#include <cstring>
#include <functional>
#include <iostream>
#include <map>

#include "bench_common.h"
#include "common/table.h"
#include "common/timer.h"
#include "smartpaf/coefficient_tuning.h"

namespace {

using namespace sp;
using approx::PafForm;

struct NoFtResult {
  double baseline = 0.0;
  double with_ct = 0.0;
};

NoFtResult no_finetune_row(const std::function<nn::Model()>& base,
                           const nn::Dataset& val, const nn::Dataset& train,
                           PafForm form, bool replace_maxpool) {
  NoFtResult out;
  {
    nn::Model m = base();
    smartpaf::ReplaceOptions opts;
    opts.form = form;
    opts.replace_maxpool = replace_maxpool;
    smartpaf::replace_all(m, opts);
    out.baseline = smartpaf::evaluate_accuracy(m, val);
  }
  {
    nn::Model m = base();
    const smartpaf::CtConfig cc = bench::combo_cfg(form, 1, 0, 0, 1, 1).ct;
    const auto ct = smartpaf::coefficient_tuning(m, train, form, cc);
    smartpaf::ReplaceOptions opts;
    opts.form = form;
    opts.replace_maxpool = replace_maxpool;
    opts.per_site_coeffs = ct.coeffs;
    smartpaf::replace_all(m, opts);
    out.with_ct = smartpaf::evaluate_accuracy(m, val);
  }
  return out;
}

smartpaf::SchedulerResult run_combo(const std::function<nn::Model()>& base,
                                    const nn::Dataset& train, const nn::Dataset& val,
                                    PafForm form, bool ct, bool pa, bool at,
                                    bool train_paf, bool replace_maxpool) {
  nn::Model m = base();
  smartpaf::SchedulerConfig cfg = bench::combo_cfg(form, ct, pa, at, train_paf, replace_maxpool);
  smartpaf::Scheduler sched(m, train, val, cfg);
  return sched.run();
}

void run_section(const char* title, const std::function<nn::Model()>& base,
                 const nn::Dataset& ft_train, const nn::Dataset& ft_val,
                 bool replace_maxpool, bool full_rows, const std::string& csv,
                 const std::vector<PafForm>& forms) {
  std::printf("\n--- %s ---\n", title);
  std::vector<std::string> header{"Technique setup"};
  for (PafForm form : forms) header.push_back(approx::form_name(form));
  Table table(std::move(header));

  auto add_row = [&](const std::string& name, const std::function<double(PafForm)>& f) {
    sp::Timer t;
    std::vector<std::string> row{name};
    for (PafForm form : forms) row.push_back(bench::pct(f(form)));
    table.add_row(std::move(row));
    std::printf("  [%s: %.0fs]\n", name.c_str(), t.seconds());
  };

  // Cache the per-form no-fine-tune pairs (used by two rows).
  std::map<PafForm, NoFtResult> noft;
  for (PafForm form : forms)
    noft[form] = no_finetune_row(base, ft_val, ft_train, form, replace_maxpool);

  add_row("baseline + DS w/o fine tune", [&](PafForm f) { return noft[f].baseline; });
  add_row("baseline + CT + DS w/o fine tune", [&](PafForm f) { return noft[f].with_ct; });

  // Trained rows. Each scheduler run reports both DS and SS accuracy.
  std::map<PafForm, smartpaf::SchedulerResult> base_run, smart_run;
  add_row("baseline + DS", [&](PafForm f) {
    base_run[f] = run_combo(base, ft_train, ft_val, f, 0, 0, 0, /*train_paf=*/false, replace_maxpool);
    return base_run[f].best_acc_ds;
  });
  add_row("baseline + SS (prior work)", [&](PafForm f) { return base_run[f].acc_ss; });

  if (full_rows) {
    add_row("baseline + AT + DS", [&](PafForm f) {
      return run_combo(base, ft_train, ft_val, f, 0, 0, 1, 1, replace_maxpool).best_acc_ds;
    });
    add_row("baseline + PA + DS", [&](PafForm f) {
      return run_combo(base, ft_train, ft_val, f, 0, 1, 0, 1, replace_maxpool).best_acc_ds;
    });
    add_row("baseline + PA + AT + DS", [&](PafForm f) {
      return run_combo(base, ft_train, ft_val, f, 0, 1, 1, 1, replace_maxpool).best_acc_ds;
    });
    add_row("baseline + CT + PA + DS", [&](PafForm f) {
      return run_combo(base, ft_train, ft_val, f, 1, 1, 0, 1, replace_maxpool).best_acc_ds;
    });
  }

  add_row("SMART-PAF: CT + PA + AT + DS", [&](PafForm f) {
    smart_run[f] = run_combo(base, ft_train, ft_val, f, 1, 1, 1, 1, replace_maxpool);
    return smart_run[f].best_acc_ds;
  });
  add_row("SMART-PAF: CT + PA + AT + SS", [&](PafForm f) { return smart_run[f].acc_ss; });

  table.print(std::cout);
  table.write_csv(csv);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;
  std::printf("=== Table 3: technique ablation (quick budgets; --full for all sections) ===\n");

  auto resnet_base = [] { return sp::bench::trained_resnet(); };
  {
    sp::nn::Model m = resnet_base();
    std::printf("ResNet-18-mini original accuracy: %s\n",
                sp::bench::pct(sp::smartpaf::evaluate_accuracy(
                    m, sp::bench::ft_val_imagenet())).c_str());
  }
  const std::vector<PafForm> forms =
      full ? sp::approx::trainable_forms()
           : std::vector<PafForm>{PafForm::F1SQ_G1SQ, PafForm::ALPHA7, PafForm::F1_G2};

  run_section("Replace ALL non-polynomial (ResNet-18-mini / imagenet-like)", resnet_base,
              sp::bench::ft_train_imagenet(), sp::bench::ft_val_imagenet(),
              /*replace_maxpool=*/true, full,
              sp::bench::out_dir() + "/table3_resnet_all.csv", forms);

  if (full) {
    run_section("Replace ReLU only (ResNet-18-mini / imagenet-like)", resnet_base,
                sp::bench::ft_train_imagenet(), sp::bench::ft_val_imagenet(),
                /*replace_maxpool=*/false, true,
                sp::bench::out_dir() + "/table3_resnet_relu.csv", forms);

    auto vgg_base = [] { return sp::bench::trained_vgg(); };
    run_section("Replace ALL non-polynomial (VGG-19-mini / cifar-like)", vgg_base,
                sp::bench::ft_train_cifar(), sp::bench::ft_val_cifar(),
                /*replace_maxpool=*/true, false,
                sp::bench::out_dir() + "/table3_vgg_all.csv", forms);
  }
  return 0;
}
