// Encrypted-training bench: trains logistic regression under CKKS with each
// optimizer, reporting ms/iteration (crypto time only, packing separate),
// per-iteration parity against the pure-double PAF mirror, and test accuracy
// against the nn::optim plaintext oracle. Also prints the planner's
// iterations-per-chain table: how many bootstrap-less steps each optimizer
// fits into chains of increasing depth — the budget a deployment actually
// shops with.
//
// Writes JSON to bench_out/train.json. FAILS (exit 1) when any encrypted
// run's test accuracy trails its plaintext oracle by more than 2 points —
// the paper-style acceptance bar — or when mirror parity degrades past 1e-3.
//
// Usage: bench_train [quick]   ("quick" drops the deg-5 sigmoid variant)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/check.h"
#include "common/table.h"
#include "common/timer.h"
#include "data/synthetic.h"
#include "train/checkpoint.h"
#include "train/reference.h"

namespace {

using namespace sp;

struct Variant {
  std::string name;
  train::TrainConfig cfg;
  int depth = 0;  ///< prime-chain depth the run declares
};

struct Row {
  std::string name;
  int levels_per_step = 0;
  int chain_levels = 0;
  int iterations = 0;
  double pack_ms = 0.0;     ///< client-side batch encryption, total
  double ms_per_iter = 0.0; ///< mean encrypted step() wall clock
  double parity = 0.0;      ///< max |enc - mirror| over all iterations
  double acc_enc = 0.0;
  double acc_oracle = 0.0;
  std::size_t ckpt_bytes = 0;
};

Row run_variant(const Variant& var, const data::TwoGaussianData& ds) {
  smartpaf::FheRuntime rt(
      fhe::CkksParams::for_depth(2048, var.depth, 40), /*seed=*/2024);
  const std::vector<train::MiniBatch> batches =
      train::make_batches(data::design_matrix(ds.train), var.cfg.batch);
  const train::TrainPlan plan = train::TrainPlan::plan(var.cfg, rt.ctx());
  train::check_sigmoid_range(plan, batches);
  const train::ReferenceRun ref = train::reference_paf_run(plan, batches);
  const train::OracleRun oracle = train::optim_oracle_run(plan, batches);

  Row row;
  row.name = var.name;
  row.levels_per_step = plan.levels_per_step;
  row.chain_levels = plan.chain_levels;
  row.iterations = var.cfg.iterations;

  sp::Timer pack_t;
  std::vector<train::EncryptedBatch> enc;
  for (int t = 0; t < var.cfg.iterations; ++t)
    enc.push_back(train::EncryptedBatch::pack(
        batches[static_cast<std::size_t>(t) % batches.size()], plan, rt));
  row.pack_ms = pack_t.ms();

  train::EncryptedLogReg model(plan, rt);
  double step_ms = 0.0;
  for (int t = 0; t < var.cfg.iterations; ++t) {
    sp::Timer st;
    model.step(enc[static_cast<std::size_t>(t)]);
    step_ms += st.ms();
    const std::vector<double> w = model.weights();
    for (int j = 0; j < var.cfg.features; ++j)
      row.parity = std::max(
          row.parity,
          std::abs(w[static_cast<std::size_t>(j)] -
                   ref.weights_per_iter[static_cast<std::size_t>(t)]
                                       [static_cast<std::size_t>(j)]));
  }
  row.ms_per_iter = step_ms / var.cfg.iterations;

  const data::DesignMatrix test = data::design_matrix(ds.test);
  row.acc_enc = train::binary_accuracy(model.weights(), test);
  row.acc_oracle = train::binary_accuracy(oracle.weights_per_iter.back(), test);
  row.ckpt_bytes = train::serialize_training_state(model.state()).size();
  return row;
}

/// How many bootstrap-less iterations each optimizer fits into a chain of
/// the given depth — pure plan math (levels_per_step is data-independent).
int max_iterations(train::TrainConfig cfg, const fhe::CkksContext& ctx) {
  cfg.iterations = 1;
  try {
    const train::TrainPlan one = train::TrainPlan::plan(cfg, ctx);
    return one.chain_levels / one.levels_per_step;
  } catch (const sp::Error&) {
    return 0;  // even one step does not fit this chain
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "quick";

  data::TwoGaussianSpec spec;
  const data::TwoGaussianData ds = data::make_two_gaussian(spec);

  std::vector<Variant> variants;
  {
    Variant sgd;
    sgd.name = "sgd-momentum deg3";
    sgd.cfg.batch = 16;
    sgd.cfg.iterations = 3;
    sgd.cfg.lr = 0.5;
    sgd.depth = 12;
    variants.push_back(sgd);

    if (!quick) {
      Variant sgd5 = sgd;
      sgd5.name = "sgd-momentum deg5";
      sgd5.cfg.sigmoid_degree = 5;
      sgd5.depth = 15;  // 3 iterations x 5 levels/step
      variants.push_back(sgd5);
    }

    Variant adam;
    adam.name = "adam deg3+inv5";
    adam.cfg.batch = 16;
    adam.cfg.iterations = 2;
    adam.cfg.optimizer = train::Optimizer::Adam;
    adam.cfg.lr = 0.25;
    adam.depth = 20;
    variants.push_back(adam);
  }

  std::vector<Row> rows;
  for (const Variant& var : variants) {
    std::printf("[bench] %s: depth %d, %d iterations...\n", var.name.c_str(),
                var.depth, var.cfg.iterations);
    rows.push_back(run_variant(var, ds));
  }

  Table table({"variant", "lv/step", "chain", "iters", "pack_ms", "ms/iter",
               "parity", "acc_enc", "acc_oracle", "ckpt_KiB"});
  for (const Row& r : rows)
    table.add_row({r.name, std::to_string(r.levels_per_step),
                   std::to_string(r.chain_levels), std::to_string(r.iterations),
                   Table::num(r.pack_ms, 1), Table::num(r.ms_per_iter, 1),
                   Table::num(r.parity, 8), bench::pct(r.acc_enc),
                   bench::pct(r.acc_oracle),
                   Table::num(static_cast<double>(r.ckpt_bytes) / 1024.0, 1)});
  table.print(std::cout);

  // Iterations-per-chain: the deployment-facing budget table.
  {
    train::TrainConfig sgd3, sgd5, adam;
    sgd5.sigmoid_degree = 5;
    adam.optimizer = train::Optimizer::Adam;
    Table budget({"chain_levels", "sgd deg3", "sgd deg5", "adam"});
    for (const int depth : {8, 12, 16, 20, 30, 40}) {
      const fhe::CkksContext ctx(fhe::CkksParams::for_depth(2048, depth, 40));
      budget.add_row({std::to_string(depth),
                      std::to_string(max_iterations(sgd3, ctx)),
                      std::to_string(max_iterations(sgd5, ctx)),
                      std::to_string(max_iterations(adam, ctx))});
    }
    std::printf("\nbootstrap-less iterations per chain depth:\n");
    budget.print(std::cout);
  }

  const std::string json_path = bench::out_dir() + "/train.json";
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "  {\"variant\": \"%s\", \"levels_per_step\": %d, "
                   "\"chain_levels\": %d, \"iterations\": %d, "
                   "\"pack_ms\": %.3f, \"ms_per_iter\": %.3f, "
                   "\"parity\": %.3e, \"acc_enc\": %.4f, "
                   "\"acc_oracle\": %.4f, \"ckpt_bytes\": %zu}%s\n",
                   r.name.c_str(), r.levels_per_step, r.chain_levels,
                   r.iterations, r.pack_ms, r.ms_per_iter, r.parity, r.acc_enc,
                   r.acc_oracle, r.ckpt_bytes,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("[bench] wrote %s\n", json_path.c_str());
  }

  bool ok = true;
  for (const Row& r : rows) {
    if (r.acc_enc < r.acc_oracle - 0.02) {
      std::printf("[bench] FAIL: %s encrypted accuracy %s trails the "
                  "plaintext oracle %s by more than 2 points\n",
                  r.name.c_str(), bench::pct(r.acc_enc).c_str(),
                  bench::pct(r.acc_oracle).c_str());
      ok = false;
    }
    if (!(r.parity < 1e-3)) {
      std::printf("[bench] FAIL: %s mirror parity %.3e exceeds 1e-3\n",
                  r.name.c_str(), r.parity);
      ok = false;
    }
  }
  std::printf("[bench] accuracy within 2 points of the oracle: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
