// Reproduces Table 4: SMART-PAF vs the 27-degree minimax baseline —
// VGG-19 validation accuracy (all non-poly replaced, SS deployment) plus
// PAF-ReLU latency under CKKS and the speedup column.
//
// Default runs two accuracy forms and N=16384; --full runs all five trainable
// forms; --paper-n uses the paper's N=32768 ring for the latency column.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>

#include "bench_common.h"
#include "common/table.h"
#include "common/timer.h"
#include "smartpaf/fhe_deploy.h"

int main(int argc, char** argv) {
  using namespace sp;
  using approx::PafForm;
  bool full = false;
  std::size_t ring_n = 16384;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--full")) full = true;
    if (!std::strcmp(argv[i], "--paper-n")) ring_n = 32768;
  }

  std::printf("=== Table 4: SMART-PAF vs 27-degree minimax baseline ===\n");

  // ----- Latency column: PAF-ReLU under CKKS --------------------------------
  // Paper methodology: each PAF runs with a modulus chain sized to its own
  // multiplication depth (a shallower PAF gets a shorter chain, so every one
  // of its operations is cheaper too — that compounding is where the large
  // speedups come from).
  std::map<PafForm, double> latency_ms;
  std::map<PafForm, double> fhe_err;
  for (PafForm form : approx::all_forms()) {
    const auto paf = approx::make_paf(form);
    const int depth = paf.mult_depth() + 2;  // + input scaling + final product
    sp::Timer setup;
    smartpaf::FheRuntime rt(fhe::CkksParams::for_depth(ring_n, depth, 40));
    const auto res = smartpaf::measure_paf_relu(rt, paf, /*input_scale=*/8.0,
                                                /*repeats=*/2);
    latency_ms[form] = res.ms_median;
    fhe_err[form] = res.max_error;
    std::printf("[latency] %-14s %8.1f ms  (N=%zu, chain depth %2d, ct-mults %2d, "
                "max err %.3g, setup %.0fs)\n",
                approx::form_name(form).c_str(), res.ms_median, ring_n, depth,
                res.stats.ct_mults, res.max_error, setup.seconds());
  }

  // ----- Accuracy column: VGG-19-mini, SMART-PAF with SS --------------------
  const nn::Dataset& ft_train = bench::ft_train_cifar();
  const nn::Dataset& ft_val = bench::ft_val_cifar();
  {
    nn::Model m = bench::trained_vgg();
    std::printf("\n[accuracy] VGG-19-mini original accuracy: %s\n",
                bench::pct(smartpaf::evaluate_accuracy(m, ft_val)).c_str());
  }
  std::vector<PafForm> forms =
      full ? approx::trainable_forms()
           : std::vector<PafForm>{PafForm::F1SQ_G1SQ, PafForm::F1_G2};

  std::map<PafForm, double> accuracy;
  for (PafForm form : forms) {
    sp::Timer t;
    nn::Model m = bench::trained_vgg();
    auto cfg = bench::combo_cfg(form, true, true, true, true, true);
    smartpaf::Scheduler sched(m, ft_train, ft_val, cfg);
    accuracy[form] = sched.run().acc_ss;
    std::printf("[accuracy] %-14s SMART-PAF+SS %s  (%.0fs)\n",
                approx::form_name(form).c_str(), bench::pct(accuracy[form]).c_str(),
                t.seconds());
  }
  // The 27-degree baseline's accuracy: replace-all with the minimax PAF and
  // baseline training (it needs no coefficient recovery).
  {
    nn::Model m = bench::trained_vgg();
    auto cfg = bench::combo_cfg(PafForm::ALPHA10_D27, false, false, false, false, true);
    smartpaf::Scheduler sched(m, ft_train, ft_val, cfg);
    accuracy[PafForm::ALPHA10_D27] = sched.run().acc_ss;
  }

  // ----- Assembled table ----------------------------------------------------
  const double base_lat = latency_ms[PafForm::ALPHA10_D27];
  const double base_acc = accuracy[PafForm::ALPHA10_D27];
  Table table({"PAF", "Val acc (SS)", "Acc vs 27-deg", "ReLU latency (ms)", "Speedup"});
  std::vector<PafForm> rows = forms;
  rows.push_back(PafForm::ALPHA10_D27);
  for (PafForm form : rows) {
    table.add_row({approx::form_name(form), bench::pct(accuracy[form]),
                   Table::num(100.0 * (accuracy[form] - base_acc), 1) + " pts",
                   Table::num(latency_ms[form], 1),
                   Table::num(base_lat / latency_ms[form], 2) + "x"});
  }
  std::printf("\n");
  table.print(std::cout);
  table.write_csv(bench::out_dir() + "/table4.csv");
  std::printf("\nPaper reference (AMD 2990WX, N=32768): 3240/3511/4123/7113/6179 ms for\n"
              "f1.g2/f2.g2/f2.g3/alpha7/f1^2.g1^2 vs 48279 ms for the 27-degree PAF\n"
              "(speedups 14.9/13.8/11.7/6.8/7.8x). Compare *ratios*, not absolutes.\n");
  return 0;
}
