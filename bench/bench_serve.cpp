// Serving-layer throughput/latency bench: an AsyncExecutor packs requests
// into shared ciphertexts under a latency deadline, so the headline numbers
// are (a) sustained req/s at saturation versus the one-request-per-ciphertext
// baseline (the batching payoff — the acceptance bar is >= 10x) and (b)
// p50/p99 request latency under open-loop load at several batch deadlines
// (the throughput-vs-latency dial).
//
// The served model is a dense 16->16->16 network with alpha=7 PAF-ReLUs:
// the matmul diagonal fans and the deep PAF chains run once per GROUP, so
// they dwarf the two per-request packing rotations — exactly the regime
// deadline batching is for.
//
// Writes JSON to bench_out/serve.json. If bench/baselines/serve.json exists
// (the CI smoke ships it), the run FAILS when p99 exceeds the recorded
// `p99_ms_max` or the saturation speedup drops below `min_speedup`.
//
// Usage: bench_serve [quick]   ("quick" shrinks group size and request counts)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "approx/presets.h"
#include "bench_common.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"
#include "io/serialize.h"
#include "serve/async_executor.h"
#include "serve/session_registry.h"
#include "smartpaf/fhe_deploy.h"
#include "smartpaf/pipeline.h"

namespace {

using namespace sp;
using Clock = std::chrono::steady_clock;

constexpr int kInputSize = 16;
constexpr std::uint64_t kClientId = 7;
constexpr int kDistinctInputs = 4;

/// A dense 16 -> 16 -> 16 network with alpha=7 PAF-ReLUs (mult depth 6 -> 8
/// levels each): matmul 1 + relu 8 + matmul 1 + relu 8 + linear 1 = 19
/// levels, 20 with the response mask. The matmul diagonal fans and the PAF
/// chains are once-per-group work under packing — the regime deadline
/// batching is built for.
smartpaf::FhePipeline build_model() {
  sp::Rng rng(41);
  auto weights = [&rng] {
    std::vector<double> w(kInputSize * kInputSize);
    for (double& v : w) v = rng.uniform(-1.0, 1.0) / kInputSize;
    return w;
  };
  return smartpaf::FhePipeline::builder()
      .input_width(kInputSize)
      .matmul(kInputSize, kInputSize, weights())
      .paf_relu(approx::make_paf(approx::PafForm::ALPHA7), 2.0)
      .matmul(kInputSize, kInputSize, weights(), std::vector<double>(kInputSize, 0.01))
      .paf_relu(approx::make_paf(approx::PafForm::ALPHA7), 2.0)
      .linear(1.1, -0.02)
      .build();
}

/// Per-run outcome sink: correlates submits with outcomes, records latencies
/// and keeps the first few result ciphertexts for the parity spot check.
struct Collector {
  std::mutex mu;
  std::condition_variable cv;
  std::unordered_map<std::uint64_t, Clock::time_point> submitted;
  std::vector<double> latencies_ms;
  std::vector<double> batch_sizes;
  std::unordered_map<std::uint64_t, fhe::Ciphertext> kept;  ///< id -> result
  std::size_t keep = 0;
  std::size_t done = 0;
  std::size_t failed = 0;
  Clock::time_point last_outcome;

  serve::AsyncExecutor::OutcomeCallback callback() {
    return [this](serve::Outcome o) {
      const auto now = Clock::now();
      std::unique_lock<std::mutex> lock(mu);
      const auto it = submitted.find(o.id);
      if (it != submitted.end()) {
        latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(now - it->second).count());
      }
      batch_sizes.push_back(static_cast<double>(o.batch_size));
      if (o.kind == serve::Outcome::Kind::Failed) {
        ++failed;
        std::printf("[bench] request %llu FAILED: %s\n",
                    static_cast<unsigned long long>(o.id), o.error.c_str());
      } else if (kept.size() < keep) {
        kept.emplace(o.id, std::move(o.result));
      }
      ++done;
      last_outcome = now;
      lock.unlock();
      cv.notify_all();
    };
  }

  void wait_for(std::size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done >= n; });
  }
};

struct LoadResult {
  double wall_ms = 0.0;       ///< first submit -> last outcome
  double sustained_rps = 0.0;
  double offered_rps = 0.0;   ///< 0 = burst (no pacing)
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_batch = 0.0;
  std::size_t failed = 0;
  serve::ExecutorStats stats;
};

/// Drives `count` submits of the pre-encrypted `inputs` (cycled) into `exec`,
/// paced at `offered_rps` (0 = as fast as possible), and waits for every
/// outcome. Rejections are a bench failure: the queue is sized for the load.
LoadResult run_load(serve::AsyncExecutor& exec, std::shared_ptr<serve::Session> session,
                    const std::vector<fhe::Ciphertext>& inputs, std::size_t count,
                    double offered_rps, Collector& col, bool& ok) {
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < count; ++i) {
    if (offered_rps > 0.0) {
      std::this_thread::sleep_until(
          t0 + std::chrono::duration<double>(static_cast<double>(i) / offered_rps));
    }
    fhe::Ciphertext req = inputs[i % inputs.size()];
    const auto now = Clock::now();
    const serve::Admission adm = exec.submit(session, std::move(req));
    if (!adm.accepted) {
      std::printf("[bench] FAIL: submit %zu rejected: %s\n", i, adm.reason.c_str());
      ok = false;
      continue;
    }
    std::unique_lock<std::mutex> lock(col.mu);
    col.submitted.emplace(adm.id, now);
  }
  col.wait_for(count - (ok ? 0 : 1));

  LoadResult r;
  {
    std::unique_lock<std::mutex> lock(col.mu);
    r.wall_ms = std::chrono::duration<double, std::milli>(col.last_outcome - t0).count();
    r.sustained_rps = r.wall_ms > 0.0
                          ? static_cast<double>(col.done - col.failed) / (r.wall_ms / 1e3)
                          : 0.0;
    r.offered_rps = offered_rps;
    r.p50_ms = percentile(col.latencies_ms, 50.0);
    r.p99_ms = percentile(col.latencies_ms, 99.0);
    RunningStats bs;
    for (const double b : col.batch_sizes) bs.add(b);
    r.mean_batch = bs.mean();
    r.failed = col.failed;
  }
  r.stats = exec.stats();
  if (r.failed > 0) ok = false;
  return r;
}

/// Pulls `"key": <number>` out of a flat JSON object; NaN when absent.
double json_number(const std::string& text, const std::string& key) {
  const auto pos = text.find("\"" + key + "\"");
  if (pos == std::string::npos) return std::nan("");
  const auto colon = text.find(':', pos);
  if (colon == std::string::npos) return std::nan("");
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

std::string fmt(double v, int prec = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "quick";
  const int group = quick ? 32 : 64;
  const std::size_t n_base = quick ? 3 : 6;
  const std::size_t n_sat = static_cast<std::size_t>(group) * (quick ? 2 : 3);
  const std::size_t n_deadline = static_cast<std::size_t>(group) * (quick ? 1 : 2);
  const std::vector<int> deadlines_ms = {10, 60};
  bool ok = true;

  std::printf("[bench] serve: N=2048 depth=20, input_size=%d, group=%d%s\n",
              kInputSize, group, quick ? " (quick)" : "");

  // Client side: full keygen runtime (encrypt + verify). Server side: a
  // keygen-less Session built from copies of the public material, exactly
  // what the registry holds in the real server.
  const fhe::CkksParams params = fhe::CkksParams::for_depth(2048, 20, 40);
  smartpaf::FheRuntime client(params, /*seed=*/2026);
  serve::SessionRegistry registry(/*max_sessions=*/4);
  // Key material and ciphertexts cross into the session through sp::io blobs
  // (the session's context is its own instance; FHE objects are bound to the
  // context they were deserialized against).
  auto server_ctx =
      std::make_unique<fhe::CkksContext>(io::deserialize_params(io::serialize(params)));
  fhe::PublicKey server_pk =
      io::deserialize_public_key(io::serialize(client.public_key()), *server_ctx);
  fhe::KSwitchKey server_relin =
      io::deserialize_kswitch_key(io::serialize(client.relin_key()), *server_ctx);
  auto session = registry.open(kClientId, std::move(server_ctx), std::move(server_pk),
                               std::move(server_relin), fhe::GaloisKeys{});

  const smartpaf::FhePipeline model = build_model();
  serve::ExecutorConfig base_cfg;
  base_cfg.input_size = kInputSize;
  base_cfg.group_capacity = group;
  base_cfg.deadline = std::chrono::milliseconds(250);
  base_cfg.max_queue = n_sat + static_cast<std::size_t>(group);

  // The tenant's Galois keys: mint once against the batched executor's step
  // set ({-s,+s} plus the plan's fans — the baseline needs a subset).
  {
    serve::AsyncExecutor probe(build_model(), base_cfg, [](serve::Outcome) {});
    const std::vector<int> steps = probe.required_rotation_steps(*session);
    session->adopt_rotation_keys(io::deserialize_galois_keys(
        io::serialize(*client.rotation_keys(steps)), session->runtime().ctx()));
    std::printf("[bench] session holds %zu rotation keys (steps:", steps.size());
    for (const int s : steps) std::printf(" %d", s);
    std::printf(")\n");
  }

  // Pre-encrypt a few distinct requests and cycle them, so open-loop arrival
  // times measure the server, not client-side encryption.
  sp::Rng rng(97);
  std::vector<std::vector<double>> plain(kDistinctInputs);
  std::vector<fhe::Ciphertext> inputs;
  for (int i = 0; i < kDistinctInputs; ++i) {
    std::vector<double> slots(client.ctx().slot_count(), 0.0);
    for (int j = 0; j < kInputSize; ++j)
      slots[static_cast<std::size_t>(j)] = rng.uniform(-1.0, 1.0);
    plain[static_cast<std::size_t>(i)] = slots;
    inputs.push_back(io::deserialize_ciphertext(io::serialize(client.encrypt(slots)),
                                                session->runtime().ctx()));
  }

  // Warm the server context (NTT tables, plan, mask plaintext) off the clock.
  {
    serve::ExecutorConfig warm_cfg = base_cfg;
    warm_cfg.group_capacity = 1;
    Collector col;
    serve::AsyncExecutor warm(build_model(), warm_cfg, col.callback());
    warm.submit(session, inputs[0]);
    col.wait_for(1);
  }

  Table table({"config", "deadline", "offered", "sustained", "p50_ms", "p99_ms",
               "mean_batch", "flushes full/ddl/drain"});
  auto add_row = [&](const std::string& name, const std::string& deadline,
                     const LoadResult& r) {
    std::ostringstream fl;
    fl << r.stats.flush_full << "/" << r.stats.flush_deadline << "/"
       << r.stats.flush_drain;
    table.add_row({name, deadline, r.offered_rps > 0.0 ? fmt(r.offered_rps) : "burst",
                   fmt(r.sustained_rps, 2), fmt(r.p50_ms), fmt(r.p99_ms),
                   fmt(r.mean_batch), fl.str()});
  };

  // Phase 1: the one-request-per-ciphertext baseline — group_capacity 1 runs
  // the full pipeline per request with zero packing rotations.
  LoadResult base;
  {
    serve::ExecutorConfig cfg = base_cfg;
    cfg.group_capacity = 1;
    Collector col;
    serve::AsyncExecutor exec(build_model(), cfg, col.callback());
    base = run_load(exec, session, inputs, n_base, 0.0, col, ok);
    add_row("unbatched (cap 1)", "-", base);
  }

  // Phase 2: saturation — a burst deep enough that every group fills, which
  // is where batching pays its full E/k amortization.
  LoadResult sat;
  {
    Collector col;
    col.keep = kDistinctInputs;
    serve::AsyncExecutor exec(build_model(), base_cfg, col.callback());
    sat = run_load(exec, session, inputs, n_sat, 0.0, col, ok);
    add_row("batched saturation", "-", sat);

    // Parity spot check on the kept responses: each decrypts to the model's
    // reference on its own slots and ~0 on the masked remainder.
    const double budget = 1e-3;
    for (const auto& kv : col.kept) {
      const auto idx = static_cast<std::size_t>((kv.first - 1) % kDistinctInputs);
      const std::vector<double> got = client.decrypt(
          io::deserialize_ciphertext(io::serialize(kv.second), client.ctx()));
      const std::vector<double> ref =
          model.reference(plain[idx], static_cast<std::size_t>(kInputSize));
      double worst = 0.0, foreign = 0.0;
      for (std::size_t j = 0; j < got.size(); ++j) {
        if (j < static_cast<std::size_t>(kInputSize))
          worst = std::max(worst, std::abs(got[j] - ref[j]));
        else
          foreign = std::max(foreign, std::abs(got[j]));
      }
      if (worst > budget || foreign > budget) {
        std::printf("[bench] FAIL: parity off (|err| %.2e, |foreign| %.2e)\n", worst,
                    foreign);
        ok = false;
      }
    }
  }
  const double speedup =
      base.sustained_rps > 0.0 ? sat.sustained_rps / base.sustained_rps : 0.0;

  // Phase 3: open-loop load below saturation at two deadlines — the latency
  // cost of waiting for a fuller group, in p50/p99.
  std::vector<std::pair<int, LoadResult>> runs;
  for (const int d : deadlines_ms) {
    serve::ExecutorConfig cfg = base_cfg;
    cfg.deadline = std::chrono::milliseconds(d);
    Collector col;
    serve::AsyncExecutor exec(build_model(), cfg, col.callback());
    const double offered = 0.5 * sat.sustained_rps;
    LoadResult r = run_load(exec, session, inputs, n_deadline, offered, col, ok);
    add_row("deadline-batched", fmt(static_cast<double>(d), 0) + " ms", r);
    runs.emplace_back(d, r);
  }

  table.print(std::cout);
  std::printf("\n[bench] saturation speedup vs unbatched: %.1fx (bar: >= 10x)\n",
              speedup);
  if (speedup < 10.0) {
    std::printf("[bench] FAIL: batching speedup %.1fx below the 10x bar\n", speedup);
    ok = false;
  }

  // Regression gate against the recorded baseline, when present.
  double worst_p99 = 0.0;
  for (const auto& dr : runs) worst_p99 = std::max(worst_p99, dr.second.p99_ms);
  for (const char* path : {"bench/baselines/serve.json", "../bench/baselines/serve.json"}) {
    std::ifstream in(path);
    if (!in) continue;
    std::stringstream ss;
    ss << in.rdbuf();
    const double p99_max = json_number(ss.str(), "p99_ms_max");
    const double min_speedup = json_number(ss.str(), "min_speedup");
    if (!std::isnan(p99_max) && worst_p99 > p99_max) {
      std::printf("[bench] FAIL: p99 %.1f ms exceeds recorded baseline %.1f ms (%s)\n",
                  worst_p99, p99_max, path);
      ok = false;
    } else if (!std::isnan(p99_max)) {
      std::printf("[bench] p99 %.1f ms within baseline %.1f ms (%s)\n", worst_p99,
                  p99_max, path);
    }
    if (!std::isnan(min_speedup) && speedup < min_speedup) {
      std::printf("[bench] FAIL: speedup %.1fx below recorded baseline %.1fx (%s)\n",
                  speedup, min_speedup, path);
      ok = false;
    }
    break;
  }

  const std::string json_path = bench::out_dir() + "/serve.json";
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"quick\": %s,\n  \"group_capacity\": %d,\n", quick ? "true" : "false",
                 group);
    std::fprintf(f, "  \"baseline_rps\": %.4f,\n  \"saturation_rps\": %.4f,\n",
                 base.sustained_rps, sat.sustained_rps);
    std::fprintf(f, "  \"speedup\": %.2f,\n  \"deadline_runs\": [\n", speedup);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const LoadResult& r = runs[i].second;
      std::fprintf(f,
                   "    {\"deadline_ms\": %d, \"offered_rps\": %.2f, "
                   "\"sustained_rps\": %.2f, \"p50_ms\": %.2f, \"p99_ms\": %.2f, "
                   "\"mean_batch\": %.2f}%s\n",
                   runs[i].first, r.offered_rps, r.sustained_rps, r.p50_ms, r.p99_ms,
                   r.mean_batch, i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("[bench] wrote %s\n", json_path.c_str());
  }
  std::printf("[bench] %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
