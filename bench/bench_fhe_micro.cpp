// CKKS substrate microbenchmarks: primitive op latencies plus the parallel
// backend's thread-scaling table (1/2/4/8 threads x N in {4096, 8192,
// 16384}) with a hoisted-vs-naive rotation column. These are the primitives
// whose costs compose into the Table 4 latency column; the JSON dump under
// bench_out/ records the trajectory across PRs.
//
// Usage: bench_fhe_micro [quick]   ("quick" restricts to N = 4096)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "smartpaf/fhe_deploy.h"

namespace {

using namespace sp;
using namespace sp::fhe;

double median_ms(std::vector<double>& v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

template <typename Fn>
double time_op(int reps, const Fn& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    times.push_back(t.ms());
  }
  return median_ms(times);
}

struct ScalingRow {
  std::size_t n = 0;
  int threads = 0;
  double ntt_roundtrip_ms = 0.0;  // full-chain RnsPoly inverse + forward NTT
  double mult_ms = 0.0;        // ct-ct multiply + relin + rescale
  double rot_naive_ms = 0.0;   // per rotation, 8-step fan, fresh decompositions
  double rot_hoisted_ms = 0.0; // per rotation, 8-step fan, shared decomposition
  std::size_t ntts_naive = 0;  // forward NTTs for the naive fan
  std::size_t ntts_hoisted = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "quick") == 0;
  const std::vector<std::size_t> ns =
      quick ? std::vector<std::size_t>{4096} : std::vector<std::size_t>{4096, 8192, 16384};
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  const std::vector<int> fan = {1, 2, 4, 8, -1, -2, -4, -8};
  const int reps = 3;

  std::vector<ScalingRow> rows;
  for (std::size_t n : ns) {
    // One runtime (keygen) per ring size, shared across thread settings; the
    // pool size only affects how the same work is dispatched.
    smartpaf::FheRuntime rt(CkksParams::for_depth(n, 6, 40), /*seed=*/2024);
    const auto gk_snapshot = rt.rotation_keys(fan);
    const GaloisKeys& gk = *gk_snapshot;
    sp::Rng rng(3);
    std::vector<double> v(rt.ctx().slot_count());
    for (auto& x : v) x = rng.uniform(-1.0, 1.0);
    const Ciphertext ct = rt.encrypt(v);
    Evaluator& ev = rt.evaluator();

    for (int threads : thread_counts) {
      ThreadPool::set_global_threads(threads);
      ScalingRow row;
      row.n = n;
      row.threads = threads;

      RnsPoly ntt_poly = ct.parts[0];  // copy outside the timed region
      row.ntt_roundtrip_ms = time_op(reps, [&] {
        ntt_poly.from_ntt();
        ntt_poly.to_ntt();  // restores NTT form, reusable across reps
      });
      row.mult_ms = time_op(reps, [&] {
        Ciphertext c = ev.multiply(ct, ct);
        ev.relinearize_inplace(c, rt.relin_key());
        ev.rescale_inplace(c);
      });

      ev.counters.reset();
      row.rot_naive_ms = time_op(reps, [&] {
                           for (int s : fan) ev.rotate(ct, s, gk);
                         }) /
                         static_cast<double>(fan.size());
      row.ntts_naive = ev.counters.ntts_forward / static_cast<std::size_t>(reps);

      ev.counters.reset();
      row.rot_hoisted_ms = time_op(reps, [&] { ev.rotate_hoisted(ct, fan, gk); }) /
                           static_cast<double>(fan.size());
      row.ntts_hoisted = ev.counters.ntts_forward / static_cast<std::size_t>(reps);

      rows.push_back(row);
      std::printf("[bench] N=%zu threads=%d done\n", n, threads);
    }
  }
  ThreadPool::set_global_threads(ThreadPool::env_threads());

  Table table({"N", "threads", "ntt_roundtrip_ms", "mult_relin_rescale_ms", "rotate_naive_ms",
               "rotate_hoisted_ms", "hoist_speedup", "fwd_ntts_naive",
               "fwd_ntts_hoisted"});
  for (const ScalingRow& r : rows)
    table.add_row({std::to_string(r.n), std::to_string(r.threads), Table::num(r.ntt_roundtrip_ms, 3),
                   Table::num(r.mult_ms, 2), Table::num(r.rot_naive_ms, 2),
                   Table::num(r.rot_hoisted_ms, 2),
                   Table::num(r.rot_naive_ms / std::max(r.rot_hoisted_ms, 1e-9), 2),
                   std::to_string(r.ntts_naive), std::to_string(r.ntts_hoisted)});
  table.print(std::cout);

  // JSON trajectory for plotting across PRs.
  const std::string json_path = bench::out_dir() + "/fhe_micro.json";
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const ScalingRow& r = rows[i];
      std::fprintf(f,
                   "  {\"n\": %zu, \"threads\": %d, \"ntt_roundtrip_ms\": %.4f, "
                   "\"mult_relin_rescale_ms\": %.4f, \"rotate_naive_ms\": %.4f, "
                   "\"rotate_hoisted_ms\": %.4f, \"fwd_ntts_naive\": %zu, "
                   "\"fwd_ntts_hoisted\": %zu}%s\n",
                   r.n, r.threads, r.ntt_roundtrip_ms, r.mult_ms, r.rot_naive_ms, r.rot_hoisted_ms,
                   r.ntts_naive, r.ntts_hoisted, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("[bench] wrote %s\n", json_path.c_str());
  }

  // Sanity: hoisting must never lose to the naive fan on forward NTTs.
  for (const ScalingRow& r : rows)
    if (r.ntts_hoisted >= r.ntts_naive) {
      std::printf("[bench] FAIL: hoisting did not reduce forward NTTs at N=%zu\n", r.n);
      return 1;
    }
  return 0;
}
