// google-benchmark microbenchmarks of the CKKS substrate: NTT, encode,
// encrypt, ciphertext arithmetic, relinearized multiplication, rotation and
// full PAF-ReLU per form. These are the primitives whose costs compose into
// the Table 4 latency column.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "fhe/primes.h"
#include "smartpaf/fhe_deploy.h"

namespace {

using namespace sp;
using namespace sp::fhe;

CkksContext& context() {
  static CkksContext ctx(CkksParams::for_depth(8192, 10, 40));
  return ctx;
}

smartpaf::FheRuntime& runtime() {
  static smartpaf::FheRuntime rt(CkksParams::for_depth(8192, 12, 40));
  return rt;
}

void BM_NttForward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const u64 q = generate_ntt_primes(50, 1, n)[0];
  NttTables ntt(n, Modulus(q));
  sp::Rng rng(1);
  std::vector<u64> a(n);
  for (auto& v : a) v = rng.next_u64() % q;
  for (auto _ : state) {
    ntt.forward(a.data());
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_NttForward)->Arg(4096)->Arg(16384)->Arg(32768)->Iterations(200);

void BM_Encode(benchmark::State& state) {
  auto& ctx = context();
  Encoder enc(ctx);
  std::vector<double> v(ctx.slot_count(), 0.5);
  for (auto _ : state) benchmark::DoNotOptimize(enc.encode(v, ctx.scale(), ctx.q_count()));
}
BENCHMARK(BM_Encode);

void BM_Encrypt(benchmark::State& state) {
  auto& rt = runtime();
  std::vector<double> v(rt.ctx().slot_count(), 0.5);
  const Plaintext pt = rt.encoder().encode(v, rt.ctx().scale(), rt.ctx().q_count());
  for (auto _ : state) benchmark::DoNotOptimize(rt.encryptor().encrypt(pt));
}
BENCHMARK(BM_Encrypt);

void BM_AddCiphertexts(benchmark::State& state) {
  auto& rt = runtime();
  std::vector<double> v(rt.ctx().slot_count(), 0.5);
  const Ciphertext a = rt.encrypt(v), b = rt.encrypt(v);
  for (auto _ : state) benchmark::DoNotOptimize(rt.evaluator().add(a, b));
}
BENCHMARK(BM_AddCiphertexts);

void BM_MultiplyPlainRescale(benchmark::State& state) {
  auto& rt = runtime();
  std::vector<double> v(rt.ctx().slot_count(), 0.5);
  const Ciphertext a = rt.encrypt(v);
  for (auto _ : state) {
    Ciphertext c = a;
    rt.evaluator().multiply_plain_inplace(
        c, rt.encoder().encode_scalar(1.5, rt.ctx().scale(), c.q_count()));
    rt.evaluator().rescale_inplace(c);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_MultiplyPlainRescale);

void BM_MultiplyRelinRescale(benchmark::State& state) {
  auto& rt = runtime();
  std::vector<double> v(rt.ctx().slot_count(), 0.5);
  const Ciphertext a = rt.encrypt(v), b = rt.encrypt(v);
  for (auto _ : state) {
    Ciphertext c = rt.evaluator().multiply(a, b);
    rt.evaluator().relinearize_inplace(c, rt.relin_key());
    rt.evaluator().rescale_inplace(c);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_MultiplyRelinRescale)->Unit(benchmark::kMillisecond)->Iterations(10);

void BM_PafRelu(benchmark::State& state) {
  auto& rt = runtime();
  const auto forms = approx::all_forms();
  const auto form = forms[static_cast<std::size_t>(state.range(0))];
  const auto paf = approx::make_paf(form);
  std::vector<double> v(rt.ctx().slot_count(), 0.5);
  const Ciphertext ct = rt.encrypt(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rt.paf_evaluator().relu(rt.evaluator(), ct, paf, 2.0, nullptr));
  }
  state.SetLabel(approx::form_name(form));
}
BENCHMARK(BM_PafRelu)->DenseRange(0, 5)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

BENCHMARK_MAIN();
