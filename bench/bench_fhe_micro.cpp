// CKKS substrate microbenchmarks:
//   1) per-kernel dispatch-tier sweep at N = 8192 (fwd/inv NTT ns/butterfly,
//      elementwise GB/s for scalar vs AVX2 vs AVX-512),
//   2) batched-NTT thread scaling at chain lengths {3, 8, 13} (the sub-row
//      split keeps short chains from capping usable threads at row count),
//   3) the runtime-level scaling table (1/2/4/8 threads x ring sizes) with
//      the hoisted-vs-naive rotation column.
// Writes bench_out/fhe_micro.json. If bench/baselines/fhe_micro.json exists
// (the CI smoke ships it), the run FAILS when a vector tier's forward-NTT
// speedup over scalar drops below the recorded minimum.
//
// Usage: bench_fhe_micro [quick]   ("quick" restricts ring sizes / grid)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "fhe/ntt.h"
#include "fhe/primes.h"
#include "fhe/simd/simd.h"
#include "smartpaf/fhe_deploy.h"

namespace {

using namespace sp;
using namespace sp::fhe;

double median_ms(std::vector<double>& v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

template <typename Fn>
double time_op(int reps, const Fn& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    times.push_back(t.ms());
  }
  return median_ms(times);
}

/// Pulls `"key": <number>` out of a flat JSON object; NaN when absent.
double json_number(const std::string& text, const std::string& key) {
  const auto pos = text.find("\"" + key + "\"");
  if (pos == std::string::npos) return std::nan("");
  const auto colon = text.find(':', pos);
  if (colon == std::string::npos) return std::nan("");
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

struct TierRow {
  simd::Tier tier = simd::Tier::kScalar;
  double fwd_ntt_ms = 0.0;      // one forward transform, N = 8192
  double inv_ntt_ms = 0.0;      // one inverse transform
  double fwd_ns_per_bfly = 0.0; // fwd_ntt over (N/2)*log2(N) butterflies
  double mul_mod_gbs = 0.0;     // elementwise Barrett multiply
  double add_mod_gbs = 0.0;
  double mul_shoup_gbs = 0.0;
  double fwd_speedup = 1.0;     // vs the scalar row
};

struct ChainRow {
  int chain = 0;
  int threads = 0;
  double roundtrip_ms = 0.0;  // batched from_ntt + to_ntt of a chain-row poly
};

struct ScalingRow {
  std::size_t n = 0;
  int threads = 0;
  double ntt_roundtrip_ms = 0.0;  // full-chain RnsPoly inverse + forward NTT
  double mult_ms = 0.0;        // ct-ct multiply + relin + rescale
  double rot_naive_ms = 0.0;   // per rotation, 8-step fan, fresh decompositions
  double rot_hoisted_ms = 0.0; // per rotation, 8-step fan, shared decomposition
  std::size_t ntts_naive = 0;  // forward NTTs for the naive fan
  std::size_t ntts_hoisted = 0;
};

std::vector<TierRow> run_tier_sweep() {
  constexpr std::size_t kN = 8192;
  const int log_n = 13;
  const u64 q = generate_ntt_primes(60, 1, kN)[0];
  const Modulus mod(q);
  const NttTables tables(kN, mod);
  sp::Rng rng(11);
  std::vector<u64> base(kN), other(kN);
  for (auto& x : base) x = rng.next_u64() % q;
  for (auto& x : other) x = rng.next_u64() % q;
  const u64 w = rng.next_u64() % q;
  const u64 ws = shoup_precompute(w, q);
  const int iters = 8;  // per timed sample, so samples are well above 0.1 ms
  const int reps = 5;

  const simd::Tier saved = simd::active_tier();
  std::vector<TierRow> rows;
  for (simd::Tier t : {simd::Tier::kScalar, simd::Tier::kAvx2, simd::Tier::kAvx512}) {
    if (!simd::tier_supported(t)) continue;
    simd::set_tier(t);
    const simd::Kernels& k = simd::kernels();
    TierRow row;
    row.tier = t;
    std::vector<u64> a = base;
    // Output of a forward/inverse transform is a valid (< q) input, so the
    // transforms iterate in place without per-sample re-initialisation.
    row.fwd_ntt_ms = time_op(reps, [&] {
                       for (int i = 0; i < iters; ++i) tables.forward(a.data());
                     }) /
                     iters;
    row.inv_ntt_ms = time_op(reps, [&] {
                       for (int i = 0; i < iters; ++i) tables.inverse(a.data());
                     }) /
                     iters;
    row.fwd_ns_per_bfly =
        row.fwd_ntt_ms * 1e6 / (static_cast<double>(kN / 2) * log_n);
    // Elementwise throughput: two-operand kernels stream 3 words/element
    // (two loads + one store), one-operand kernels 2.
    const double two_op_gb = static_cast<double>(kN) * 3 * 8 / 1e9;
    const double one_op_gb = static_cast<double>(kN) * 2 * 8 / 1e9;
    a = base;
    row.mul_mod_gbs =
        two_op_gb /
        (time_op(reps,
                 [&] {
                   for (int i = 0; i < iters; ++i)
                     k.mul_mod(a.data(), other.data(), kN, q, mod.ratio_hi(),
                               mod.ratio_lo());
                 }) /
         iters / 1e3);
    a = base;
    row.add_mod_gbs = two_op_gb /
                      (time_op(reps,
                               [&] {
                                 for (int i = 0; i < iters; ++i)
                                   k.add_mod(a.data(), other.data(), kN, q);
                               }) /
                       iters / 1e3);
    a = base;
    row.mul_shoup_gbs = one_op_gb /
                        (time_op(reps,
                                 [&] {
                                   for (int i = 0; i < iters; ++i)
                                     k.mul_shoup(a.data(), kN, w, ws, q);
                                 }) /
                         iters / 1e3);
    rows.push_back(row);
  }
  simd::set_tier(saved);
  for (TierRow& r : rows)
    r.fwd_speedup = rows.front().fwd_ntt_ms / std::max(r.fwd_ntt_ms, 1e-9);
  return rows;
}

std::vector<ChainRow> run_chain_scaling(bool quick) {
  // Chain-length thread scaling of the batched NTT: at a 3-prime chain the
  // old per-row dispatch capped useful threads at 3; the sub-row split keeps
  // feeding the pool.
  const std::size_t n = quick ? 4096 : 8192;
  const CkksContext ctx(CkksParams::for_depth(n, 12, 40));  // 13 chain primes
  const std::vector<int> chains = quick ? std::vector<int>{3, 8} : std::vector<int>{3, 8, 13};
  const std::vector<int> threads = quick ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8};
  const int reps = 3;

  std::vector<ChainRow> rows;
  sp::Rng rng(23);
  for (int chain : chains) {
    RnsPoly poly(&ctx, chain, /*with_special=*/false, /*ntt_form=*/false);
    for (int i = 0; i < poly.row_count(); ++i) {
      const u64 qi = poly.row_mod(i).value();
      u64* r = poly.row(i);
      for (std::size_t j = 0; j < poly.n(); ++j) r[j] = rng.next_u64() % qi;
    }
    poly.to_ntt();
    for (int t : threads) {
      ThreadPool::set_global_threads(t);
      ChainRow row;
      row.chain = chain;
      row.threads = t;
      row.roundtrip_ms = time_op(reps, [&] {
        poly.from_ntt();
        poly.to_ntt();  // restores NTT form, reusable across reps
      });
      rows.push_back(row);
    }
  }
  ThreadPool::set_global_threads(ThreadPool::env_threads());
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "quick") == 0;
  const std::vector<std::size_t> ns =
      quick ? std::vector<std::size_t>{4096} : std::vector<std::size_t>{4096, 8192, 16384};
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  const std::vector<int> fan = {1, 2, 4, 8, -1, -2, -4, -8};
  const int reps = 3;
  bool ok = true;

  // --- Section 1: dispatch-tier kernel sweep (always N = 8192) ---
  const std::vector<TierRow> tier_rows = run_tier_sweep();
  Table tier_table({"tier", "fwd_ntt_ms", "inv_ntt_ms", "fwd_ns_per_bfly",
                    "fwd_speedup", "mul_mod_GB_s", "add_mod_GB_s",
                    "mul_shoup_GB_s"});
  for (const TierRow& r : tier_rows)
    tier_table.add_row({simd::tier_name(r.tier), Table::num(r.fwd_ntt_ms, 4),
                        Table::num(r.inv_ntt_ms, 4), Table::num(r.fwd_ns_per_bfly, 2),
                        Table::num(r.fwd_speedup, 2), Table::num(r.mul_mod_gbs, 2),
                        Table::num(r.add_mod_gbs, 2), Table::num(r.mul_shoup_gbs, 2)});
  std::printf("[bench] kernel tiers at N=8192 (active default: %s)\n",
              simd::tier_name(simd::active_tier()));
  tier_table.print(std::cout);

  // --- Section 2: batched-NTT thread scaling at short chains ---
  const std::vector<ChainRow> chain_rows = run_chain_scaling(quick);
  Table chain_table({"chain", "threads", "ntt_roundtrip_ms", "scale_vs_t1"});
  {
    double t1 = 0.0;
    for (const ChainRow& r : chain_rows) {
      if (r.threads == 1) t1 = r.roundtrip_ms;
      chain_table.add_row({std::to_string(r.chain), std::to_string(r.threads),
                           Table::num(r.roundtrip_ms, 3),
                           Table::num(t1 / std::max(r.roundtrip_ms, 1e-9), 2)});
    }
  }
  std::printf("[bench] batched NTT chain-length scaling\n");
  chain_table.print(std::cout);

  // --- Section 3: runtime-level scaling rows ---
  std::vector<ScalingRow> rows;
  for (std::size_t n : ns) {
    // One runtime (keygen) per ring size, shared across thread settings; the
    // pool size only affects how the same work is dispatched.
    smartpaf::FheRuntime rt(CkksParams::for_depth(n, 6, 40), /*seed=*/2024);
    const auto gk_snapshot = rt.rotation_keys(fan);
    const GaloisKeys& gk = *gk_snapshot;
    sp::Rng rng(3);
    std::vector<double> v(rt.ctx().slot_count());
    for (auto& x : v) x = rng.uniform(-1.0, 1.0);
    const Ciphertext ct = rt.encrypt(v);
    Evaluator& ev = rt.evaluator();

    for (int threads : thread_counts) {
      ThreadPool::set_global_threads(threads);
      ScalingRow row;
      row.n = n;
      row.threads = threads;

      RnsPoly ntt_poly = ct.parts[0];  // copy outside the timed region
      row.ntt_roundtrip_ms = time_op(reps, [&] {
        ntt_poly.from_ntt();
        ntt_poly.to_ntt();  // restores NTT form, reusable across reps
      });
      row.mult_ms = time_op(reps, [&] {
        Ciphertext c = ev.multiply(ct, ct);
        ev.relinearize_inplace(c, rt.relin_key());
        ev.rescale_inplace(c);
      });

      ev.counters.reset();
      row.rot_naive_ms = time_op(reps, [&] {
                           for (int s : fan) ev.rotate(ct, s, gk);
                         }) /
                         static_cast<double>(fan.size());
      row.ntts_naive = ev.counters.ntts_forward / static_cast<std::size_t>(reps);

      ev.counters.reset();
      row.rot_hoisted_ms = time_op(reps, [&] { ev.rotate_hoisted(ct, fan, gk); }) /
                           static_cast<double>(fan.size());
      row.ntts_hoisted = ev.counters.ntts_forward / static_cast<std::size_t>(reps);

      rows.push_back(row);
      std::printf("[bench] N=%zu threads=%d done\n", n, threads);
    }
  }
  ThreadPool::set_global_threads(ThreadPool::env_threads());

  Table table({"N", "threads", "ntt_roundtrip_ms", "mult_relin_rescale_ms", "rotate_naive_ms",
               "rotate_hoisted_ms", "hoist_speedup", "fwd_ntts_naive",
               "fwd_ntts_hoisted"});
  for (const ScalingRow& r : rows)
    table.add_row({std::to_string(r.n), std::to_string(r.threads), Table::num(r.ntt_roundtrip_ms, 3),
                   Table::num(r.mult_ms, 2), Table::num(r.rot_naive_ms, 2),
                   Table::num(r.rot_hoisted_ms, 2),
                   Table::num(r.rot_naive_ms / std::max(r.rot_hoisted_ms, 1e-9), 2),
                   std::to_string(r.ntts_naive), std::to_string(r.ntts_hoisted)});
  table.print(std::cout);

  // JSON trajectory for plotting across PRs.
  const std::string json_path = bench::out_dir() + "/fhe_micro.json";
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"tiers\": [\n");
    for (std::size_t i = 0; i < tier_rows.size(); ++i) {
      const TierRow& r = tier_rows[i];
      std::fprintf(f,
                   "    {\"tier\": \"%s\", \"fwd_ntt_ms\": %.5f, \"inv_ntt_ms\": "
                   "%.5f, \"fwd_ns_per_butterfly\": %.3f, \"fwd_speedup\": %.3f, "
                   "\"mul_mod_gbs\": %.3f, \"add_mod_gbs\": %.3f, "
                   "\"mul_shoup_gbs\": %.3f}%s\n",
                   simd::tier_name(r.tier), r.fwd_ntt_ms, r.inv_ntt_ms,
                   r.fwd_ns_per_bfly, r.fwd_speedup, r.mul_mod_gbs, r.add_mod_gbs,
                   r.mul_shoup_gbs, i + 1 < tier_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"chain_scaling\": [\n");
    for (std::size_t i = 0; i < chain_rows.size(); ++i) {
      const ChainRow& r = chain_rows[i];
      std::fprintf(f,
                   "    {\"chain\": %d, \"threads\": %d, \"ntt_roundtrip_ms\": "
                   "%.4f}%s\n",
                   r.chain, r.threads, r.roundtrip_ms,
                   i + 1 < chain_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"scaling\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const ScalingRow& r = rows[i];
      std::fprintf(f,
                   "    {\"n\": %zu, \"threads\": %d, \"ntt_roundtrip_ms\": %.4f, "
                   "\"mult_relin_rescale_ms\": %.4f, \"rotate_naive_ms\": %.4f, "
                   "\"rotate_hoisted_ms\": %.4f, \"fwd_ntts_naive\": %zu, "
                   "\"fwd_ntts_hoisted\": %zu}%s\n",
                   r.n, r.threads, r.ntt_roundtrip_ms, r.mult_ms, r.rot_naive_ms, r.rot_hoisted_ms,
                   r.ntts_naive, r.ntts_hoisted, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("[bench] wrote %s\n", json_path.c_str());
  }

  // Sanity: hoisting must never lose to the naive fan on forward NTTs.
  for (const ScalingRow& r : rows)
    if (r.ntts_hoisted >= r.ntts_naive) {
      std::printf("[bench] FAIL: hoisting did not reduce forward NTTs at N=%zu\n", r.n);
      ok = false;
    }

  // Regression gate against the recorded baseline, when present: each vector
  // tier the binary+CPU support must keep its forward-NTT speedup over the
  // scalar tier above the recorded floor.
  for (const char* path :
       {"bench/baselines/fhe_micro.json", "../bench/baselines/fhe_micro.json"}) {
    std::ifstream in(path);
    if (!in) continue;
    std::stringstream ss;
    ss << in.rdbuf();
    for (const TierRow& r : tier_rows) {
      if (r.tier == simd::Tier::kScalar) continue;
      const std::string key =
          std::string("min_fwd_ntt_speedup_") + simd::tier_name(r.tier);
      const double floor = json_number(ss.str(), key);
      if (std::isnan(floor)) continue;
      if (r.fwd_speedup < floor) {
        std::printf("[bench] FAIL: %s fwd-NTT speedup %.2fx below baseline %.2fx (%s)\n",
                    simd::tier_name(r.tier), r.fwd_speedup, floor, path);
        ok = false;
      } else {
        std::printf("[bench] %s fwd-NTT speedup %.2fx within baseline >= %.2fx (%s)\n",
                    simd::tier_name(r.tier), r.fwd_speedup, floor, path);
      }
    }
    break;
  }

  std::printf("[bench] %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
