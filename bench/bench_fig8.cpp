// Reproduces Fig. 8: post-fine-tune accuracy of
//   (1) direct replacement + direct training        (prior-work baseline)
//   (2) direct replacement + progressive training   (green bar)
//   (3) progressive replacement + progressive training (PA, orange bar)
#include <cstdio>
#include <cstring>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "common/timer.h"

int main(int argc, char** argv) {
  using namespace sp;
  using approx::PafForm;
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;

  const nn::Dataset& ft_train = bench::ft_train_imagenet();
  const nn::Dataset& ft_val = bench::ft_val_imagenet();
  std::printf("=== Fig. 8: Progressive Approximation vs direct training ===\n");
  std::printf("(ResNet-18-mini, ReLU-only replacement, as in the paper's Fig. 8)\n\n");

  std::vector<PafForm> forms =
      full ? approx::trainable_forms()
           : std::vector<PafForm>{PafForm::F1SQ_G1SQ, PafForm::F1_G2};

  Table table({"Form", "direct+direct", "direct+progressive", "PA (prog+prog)",
               "PA gain vs direct"});
  for (PafForm form : forms) {
    sp::Timer timer;
    double acc[3];
    for (int strategy = 0; strategy < 3; ++strategy) {
      nn::Model m = bench::trained_resnet();
      smartpaf::SchedulerConfig cfg =
          bench::combo_cfg(form, /*ct=*/false, /*pa=*/strategy == 2, /*at=*/false,
                           /*train_paf=*/strategy != 0, /*replace_maxpool=*/false);
      if (strategy == 1) {
        cfg.progressive_replace = false;  // direct replacement...
        cfg.progressive_train = true;     // ...but progressive training
      }
      smartpaf::Scheduler sched(m, ft_train, ft_val, cfg);
      acc[strategy] = sched.run().best_acc_ds;
    }
    table.add_row({approx::form_name(form), bench::pct(acc[0]), bench::pct(acc[1]),
                   bench::pct(acc[2]),
                   Table::num(100.0 * (acc[2] - acc[0]), 1) + " pts"});
    std::printf("  [%s done in %.0fs]\n", approx::form_name(form).c_str(), timer.seconds());
  }
  std::printf("\n");
  table.print(std::cout);
  table.write_csv(bench::out_dir() + "/fig8.csv");
  return 0;
}
