// Wire-format throughput: serialize/deserialize MB/s per blob kind
// (ciphertext, public key, relin key, Galois keys, plan) at serving-scale
// parameters, with every measured round trip verified bit-identical.
// Serialization sits on the serving request path (one ciphertext in, one
// out, keys once per session), so regressions here are latency regressions.
// Writes JSON to bench_out/wire.json.
//
// Usage: bench_wire [quick]   ("quick" restricts to N = 2048, fewer repeats)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/timer.h"
#include "io/serialize.h"
#include "smartpaf/fhe_deploy.h"
#include "smartpaf/pipeline.h"
#include "smartpaf/pipeline_planner.h"

namespace {

using namespace sp;
using namespace sp::fhe;

struct Row {
  std::string kind;
  std::size_t bytes = 0;
  double ser_ms = 0.0;    // best serialize time
  double deser_ms = 0.0;  // best deserialize time
  double ser_mbs = 0.0;
  double deser_mbs = 0.0;
};

double mbs(std::size_t bytes, double ms) {
  return ms <= 0.0 ? 0.0 : (static_cast<double>(bytes) / (1024.0 * 1024.0)) / (ms / 1e3);
}

bool polys_equal(const RnsPoly& a, const RnsPoly& b) {
  if (a.q_count() != b.q_count() || a.row_count() != b.row_count() || a.n() != b.n())
    return false;
  for (int i = 0; i < a.row_count(); ++i)
    if (std::memcmp(a.row(i), b.row(i), a.n() * sizeof(u64)) != 0) return false;
  return true;
}

/// Times `serialize` / `deserialize` over `repeats`, verifying with `verify`.
template <typename Ser, typename Deser, typename Verify>
Row measure(const std::string& kind, int repeats, Ser&& serialize, Deser&& deserialize,
            Verify&& verify, bool& ok) {
  Row row;
  row.kind = kind;
  std::vector<std::uint8_t> blob;
  for (int r = 0; r < repeats; ++r) {
    sp::Timer t;
    blob = serialize();
    const double ms = t.ms();
    row.ser_ms = r == 0 ? ms : std::min(row.ser_ms, ms);
  }
  row.bytes = blob.size();
  for (int r = 0; r < repeats; ++r) {
    sp::Timer t;
    const bool good = verify(deserialize(blob));
    const double ms = t.ms();
    row.deser_ms = r == 0 ? ms : std::min(row.deser_ms, ms);
    if (!good) {
      std::printf("[bench] FAIL: %s round trip not bit-identical\n", kind.c_str());
      ok = false;
    }
  }
  row.ser_mbs = mbs(row.bytes, row.ser_ms);
  row.deser_mbs = mbs(row.bytes, row.deser_ms);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "quick") == 0;
  const std::size_t n = quick ? 2048 : 8192;
  const int depth = quick ? 6 : 12;
  const int repeats = quick ? 3 : 7;

  smartpaf::FheRuntime rt(CkksParams::for_depth(n, depth, 40), /*seed=*/2028);
  sp::Rng rng(9);
  std::vector<double> slots(rt.ctx().slot_count());
  for (auto& x : slots) x = rng.uniform(-1.0, 1.0);
  const Ciphertext ct = rt.encrypt(slots);
  const auto gk_snapshot = rt.rotation_keys({1, 2, 4, 8});
  const GaloisKeys& gk = *gk_snapshot;
  const auto pipe = smartpaf::FhePipeline::builder()
                        .window({0.5, 0.3, 0.2})
                        .linear(0.9, 0.05)
                        .build();
  const smartpaf::Plan plan =
      smartpaf::Planner::plan(pipe, rt.ctx(), smartpaf::CostModel::heuristic());

  bool ok = true;
  std::vector<Row> rows;
  rows.push_back(measure(
      "ciphertext", repeats, [&] { return io::serialize(ct); },
      [&](const std::vector<std::uint8_t>& b) {
        return io::deserialize_ciphertext(b, rt.ctx());
      },
      [&](const Ciphertext& got) {
        return got.scale == ct.scale && got.size() == ct.size() &&
               polys_equal(got.parts[0], ct.parts[0]) &&
               polys_equal(got.parts[1], ct.parts[1]);
      },
      ok));
  rows.push_back(measure(
      "public_key", repeats, [&] { return io::serialize(rt.public_key()); },
      [&](const std::vector<std::uint8_t>& b) {
        return io::deserialize_public_key(b, rt.ctx());
      },
      [&](const PublicKey& got) {
        return polys_equal(got.p0, rt.public_key().p0) &&
               polys_equal(got.p1, rt.public_key().p1);
      },
      ok));
  rows.push_back(measure(
      "relin_key", repeats, [&] { return io::serialize(rt.relin_key()); },
      [&](const std::vector<std::uint8_t>& b) {
        return io::deserialize_kswitch_key(b, rt.ctx());
      },
      [&](const KSwitchKey& got) {
        if (got.digits.size() != rt.relin_key().digits.size()) return false;
        for (std::size_t i = 0; i < got.digits.size(); ++i)
          if (!polys_equal(got.digits[i][0], rt.relin_key().digits[i][0]) ||
              !polys_equal(got.digits[i][1], rt.relin_key().digits[i][1]))
            return false;
        return true;
      },
      ok));
  rows.push_back(measure(
      "galois_keys", repeats, [&] { return io::serialize(gk); },
      [&](const std::vector<std::uint8_t>& b) {
        return io::deserialize_galois_keys(b, rt.ctx());
      },
      [&](const GaloisKeys& got) { return got.keys.size() == gk.keys.size(); },
      ok));
  rows.push_back(measure(
      "plan", repeats, [&] { return io::serialize(plan, rt.ctx()); },
      [&](const std::vector<std::uint8_t>& b) {
        return io::deserialize_plan(b, rt.ctx());
      },
      [&](const smartpaf::Plan& got) { return got.describe() == plan.describe(); },
      ok));

  Table table({"kind", "bytes", "ser_ms", "deser_ms", "ser_MB/s", "deser_MB/s"});
  for (const Row& r : rows)
    table.add_row({r.kind, std::to_string(r.bytes), Table::num(r.ser_ms, 3),
                   Table::num(r.deser_ms, 3), Table::num(r.ser_mbs, 1),
                   Table::num(r.deser_mbs, 1)});
  table.print(std::cout);

  const std::string json_path = bench::out_dir() + "/wire.json";
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "  {\"n\": %zu, \"depth\": %d, \"kind\": \"%s\", \"bytes\": %zu, "
                   "\"ser_ms\": %.4f, \"deser_ms\": %.4f, \"ser_mbs\": %.1f, "
                   "\"deser_mbs\": %.1f}%s\n",
                   n, depth, r.kind.c_str(), r.bytes, r.ser_ms, r.deser_ms, r.ser_mbs,
                   r.deser_mbs, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("[bench] wrote %s\n", json_path.c_str());
  }

  std::printf("[bench] all round trips bit-identical: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
