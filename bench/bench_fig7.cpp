// Reproduces Fig. 7: post-replacement validation accuracy *without*
// fine-tuning, Coefficient Tuning (CT) vs baseline initialization, for
// ReLU-only replacement (top panel) and ReLU+MaxPool replacement (bottom).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "smartpaf/coefficient_tuning.h"
#include "smartpaf/techniques.h"

int main() {
  using namespace sp;
  using approx::PafForm;

  const auto& ds = bench::imagenet_mini();
  const nn::Dataset& val = bench::ft_val_imagenet();
  nn::Model base = bench::trained_resnet();
  const double base_acc = smartpaf::evaluate_accuracy(base, val);
  std::printf("=== Fig. 7: CT vs baseline, no fine-tuning (ResNet-18-mini) ===\n");
  std::printf("original model accuracy: %s\n\n", bench::pct(base_acc).c_str());

  Table table({"Form", "Panel", "baseline", "+CT", "CT gain"});
  for (PafForm form : approx::trainable_forms()) {
    // CT coefficients are computed once on the original model.
    nn::Model profiled = bench::trained_resnet();
    smartpaf::CtConfig cc = bench::combo_cfg(form, true, false, false, true, true).ct;
    const smartpaf::CtResult ct =
        smartpaf::coefficient_tuning(profiled, ds.train, form, cc);

    for (const bool replace_maxpool : {false, true}) {
      double accs[2];
      for (const bool use_ct : {false, true}) {
        nn::Model m = bench::trained_resnet();
        smartpaf::ReplaceOptions opts;
        opts.form = form;
        opts.replace_maxpool = replace_maxpool;
        if (use_ct) opts.per_site_coeffs = ct.coeffs;
        smartpaf::replace_all(m, opts);
        accs[use_ct ? 1 : 0] = smartpaf::evaluate_accuracy(m, val);
      }
      const double gain = accs[0] > 0 ? accs[1] / accs[0] : 0.0;
      table.add_row({approx::form_name(form),
                     replace_maxpool ? "ReLU+MaxPool" : "ReLU only",
                     bench::pct(accs[0]), bench::pct(accs[1]),
                     Table::num(gain, 2) + "x"});
    }
  }
  table.print(std::cout);
  table.write_csv(bench::out_dir() + "/fig7.csv");
  std::printf("\nPaper shape check: CT gains are largest for low-degree forms, and the\n"
              "ReLU+MaxPool panel sits below the ReLU-only panel.\n");
  return 0;
}
