// Reproduces Fig. 1: the latency-accuracy Pareto frontier of SMART-PAF
// PAFs vs the prior-work points (baseline+SS and the 27-degree minimax).
//
// Latency comes from the CKKS PAF-ReLU measurement (reusing table4.csv when
// present); accuracy comes from the Table-3 harness CSV when present, else
// it is recomputed with quick no-fine-tune evaluations.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "bench_common.h"
#include "common/table.h"
#include "smartpaf/fhe_deploy.h"

namespace {

using namespace sp;
using approx::PafForm;

/// Parses a bench CSV into rows of cells (header included).
std::vector<std::vector<std::string>> read_csv(const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  std::ifstream f(path);
  std::string line;
  while (std::getline(f, line)) {
    std::vector<std::string> cells;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) cells.push_back(cell);
    rows.push_back(std::move(cells));
  }
  return rows;
}

double parse_pct(const std::string& s) { return std::atof(s.c_str()) / 100.0; }

}  // namespace

int main() {
  std::printf("=== Fig. 1: latency-accuracy Pareto frontier ===\n");

  // ----- Latency per form ----------------------------------------------------
  std::map<std::string, double> latency;
  const auto t4 = read_csv(bench::out_dir() + "/table4.csv");
  if (t4.size() > 1) {
    for (std::size_t r = 1; r < t4.size(); ++r)
      if (t4[r].size() >= 4) latency[t4[r][0]] = std::atof(t4[r][3].c_str());
    std::printf("[latency] reusing bench_out/table4.csv\n");
  }
  if (latency.empty()) {
    std::printf("[latency] measuring on a fresh CKKS runtime (N=8192)...\n");
    smartpaf::FheRuntime rt(fhe::CkksParams::for_depth(8192, 12, 40));
    for (PafForm form : approx::all_forms()) {
      const auto res =
          smartpaf::measure_paf_relu(rt, approx::make_paf(form), 8.0, /*repeats=*/2);
      latency[approx::form_name(form)] = res.ms_median;
    }
  }

  // ----- Accuracy per form: SMART-PAF SS + prior-work SS ---------------------
  std::map<std::string, double> smart_acc, prior_acc;
  const auto t3 = read_csv(bench::out_dir() + "/table3_resnet_all.csv");
  if (t3.size() > 1) {
    std::printf("[accuracy] reusing bench_out/table3_resnet_all.csv\n");
    const auto& header = t3[0];
    for (const auto& row : t3) {
      if (row.empty()) continue;
      for (std::size_t c = 1; c < row.size() && c < header.size(); ++c) {
        if (row[0].find("CT + PA + AT + SS") != std::string::npos)
          smart_acc[header[c]] = parse_pct(row[c]);
        if (row[0].find("baseline + SS") != std::string::npos)
          prior_acc[header[c]] = parse_pct(row[c]);
      }
    }
  } else {
    std::printf("[accuracy] table3 CSV missing; falling back to no-fine-tune points\n");
    const auto& ds = bench::imagenet_mini();
    for (PafForm form : approx::trainable_forms()) {
      nn::Model m = bench::trained_resnet();
      smartpaf::ReplaceOptions opts;
      opts.form = form;
      smartpaf::replace_all(m, opts);
      smartpaf::convert_to_static_scaling(m);
      prior_acc[approx::form_name(form)] = smartpaf::evaluate_accuracy(m, ds.val);
      smart_acc[approx::form_name(form)] = prior_acc[approx::form_name(form)];
    }
  }

  Table table({"Point", "Latency (ms)", "Accuracy", "Family"});
  for (PafForm form : approx::trainable_forms()) {
    const std::string name = approx::form_name(form);
    if (smart_acc.count(name))
      table.add_row({name, Table::num(latency[name], 1), bench::pct(smart_acc[name]),
                     "SmartPAF"});
    if (prior_acc.count(name))
      table.add_row({name + " (prior)", Table::num(latency[name], 1),
                     bench::pct(prior_acc[name]), "Prior works"});
  }
  const std::string d27 = approx::form_name(PafForm::ALPHA10_D27);
  table.add_row({d27 + " (prior)", Table::num(latency[d27], 1), "(reference point)",
                 "Prior works"});
  table.print(std::cout);
  table.write_csv(bench::out_dir() + "/fig1.csv");

  std::printf("\nShape check: SmartPAF points dominate the prior-work points (same\n"
              "latency, higher accuracy), reproducing the Fig. 1 frontier shift.\n");
  return 0;
}
