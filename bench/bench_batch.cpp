// Batched-inference scaling: one packed ciphertext serves B requests, so
// the whole-ciphertext cost (window rotation fan + PAF-ReLU) amortizes as
// 1/B per request. This table is the latency-vs-throughput tradeoff the
// BatchRunner exists for: per-input latency and per-input rotation/relin
// counts must shrink monotonically as B grows toward slots/2.
//
// Usage: bench_batch [quick]   ("quick" restricts to N = 4096)
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "approx/presets.h"
#include "bench_common.h"
#include "common/rng.h"
#include "common/table.h"
#include "smartpaf/batch_runner.h"

namespace {

using namespace sp;
using namespace sp::fhe;

struct BatchRow {
  std::size_t n = 0;
  int batch = 0;
  int input_size = 0;
  double total_ms = 0.0;
  double eval_ms = 0.0;
  double ms_per_input = 0.0;
  double ct_mults_per_input = 0.0;
  double relins_per_input = 0.0;
  double rotations_per_input = 0.0;
  double max_err = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "quick") == 0;
  const std::size_t n = quick ? 4096 : 8192;
  const auto slots = static_cast<int>(n) / 2;

  // Paper pipeline: alpha=7 minimax PAF (depth 6) behind a 4-tap averaging
  // window (1 level) and the relu envelope (2 levels) -> depth-9 chain.
  smartpaf::BatchConfig cfg;
  cfg.paf = approx::make_paf(approx::PafForm::ALPHA7);
  cfg.input_scale = 1.0;
  cfg.window = {0.25, 0.25, 0.25, 0.25};

  smartpaf::FheRuntime rt(CkksParams::for_depth(n, 9, 40), /*seed=*/2024);
  std::printf("[bench] runtime ready: N=%zu slots=%d depth=9 paf=%s\n", n, slots,
              cfg.paf.name().c_str());

  std::vector<int> batch_sizes = {1, 4, 16, 128};
  if (slots / 2 > 1024) batch_sizes.push_back(1024);
  // Stride-2 packing, the densest layout. At input_size < window.size() the
  // window blends neighbouring requests (reference blends identically, so
  // max_err stays at noise level): the dense rows measure the amortized
  // pipeline cost; request-isolated serving at these strides drops the
  // window (see docs/TUNING.md#batch-size).
  batch_sizes.push_back(slots / 2);

  std::vector<BatchRow> rows;
  for (int b : batch_sizes) {
    cfg.input_size = slots / b;
    smartpaf::BatchRunner runner(rt, cfg);

    sp::Rng rng(17 + static_cast<std::uint64_t>(b));
    std::vector<std::vector<double>> inputs(static_cast<std::size_t>(b));
    for (auto& v : inputs) {
      v.resize(static_cast<std::size_t>(cfg.input_size));
      for (auto& x : v) x = rng.uniform(-1.0, 1.0);
    }

    const auto res = runner.run(inputs);
    BatchRow row;
    row.n = n;
    row.batch = b;
    row.input_size = cfg.input_size;
    row.total_ms = res.stats.total_ms();
    row.eval_ms = res.stats.eval_ms;
    row.ms_per_input = res.stats.ms_per_input();
    row.ct_mults_per_input = res.stats.eval_per_input().ct_mults;
    row.relins_per_input = res.stats.ops_per_input().relins;
    row.rotations_per_input = res.stats.ops_per_input().rotations;
    for (double e : res.max_error) row.max_err = std::max(row.max_err, e);
    rows.push_back(row);
    std::printf("[bench] B=%d done (%.1f ms total, %.3f ms/input)\n", b, row.total_ms,
                row.ms_per_input);
  }

  Table table({"B", "input_size", "total_ms", "ms_per_input", "eval_ms",
               "ct_mults_per_input", "relins_per_input", "rot_per_input", "max_err"});
  for (const BatchRow& r : rows)
    table.add_row({std::to_string(r.batch), std::to_string(r.input_size),
                   Table::num(r.total_ms, 1), Table::num(r.ms_per_input, 4),
                   Table::num(r.eval_ms, 1), Table::num(r.ct_mults_per_input, 4),
                   Table::num(r.relins_per_input, 4), Table::num(r.rotations_per_input, 5),
                   Table::num(r.max_err, 8)});
  table.print(std::cout);

  const std::string json_path = bench::out_dir() + "/batch.json";
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const BatchRow& r = rows[i];
      std::fprintf(f,
                   "  {\"n\": %zu, \"batch\": %d, \"input_size\": %d, \"total_ms\": %.4f, "
                   "\"ms_per_input\": %.6f, \"eval_ms\": %.4f, \"ct_mults_per_input\": %.6f, "
                   "\"relins_per_input\": %.6f, \"rotations_per_input\": %.8f, "
                   "\"max_err\": %.3e}%s\n",
                   r.n, r.batch, r.input_size, r.total_ms, r.ms_per_input, r.eval_ms,
                   r.ct_mults_per_input, r.relins_per_input, r.rotations_per_input, r.max_err,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("[bench] wrote %s\n", json_path.c_str());
  }

  // Sanity: amortization must be monotone — per-input latency and per-input
  // rotation/relin counts strictly decrease from B=1 to B=slots/2.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const bool ok = rows[i].ms_per_input < rows[i - 1].ms_per_input &&
                    rows[i].rotations_per_input < rows[i - 1].rotations_per_input &&
                    rows[i].relins_per_input < rows[i - 1].relins_per_input;
    if (!ok) {
      std::printf("[bench] FAIL: per-input figures did not shrink from B=%d to B=%d\n",
                  rows[i - 1].batch, rows[i].batch);
      return 1;
    }
  }
  return 0;
}
