#include "bench_common.h"

#include <cstdio>
#include <filesystem>

#include "common/table.h"
#include "common/timer.h"
#include "smartpaf/techniques.h"

namespace sp::bench {

std::string out_dir() {
  const std::string dir = "bench_out";
  std::filesystem::create_directories(dir);
  return dir;
}

const data::SyntheticData& imagenet_mini() {
  static const data::SyntheticData ds = [] {
    data::SyntheticSpec spec = data::SyntheticSpec::imagenet_like(16);
    spec.train_count = 1600;
    spec.val_count = 400;
    return data::make_synthetic(spec);
  }();
  return ds;
}

const data::SyntheticData& cifar_mini() {
  static const data::SyntheticData ds = [] {
    data::SyntheticSpec spec = data::SyntheticSpec::cifar_like(32);
    spec.train_count = 900;
    spec.val_count = 300;
    return data::make_synthetic(spec);
  }();
  return ds;
}

models::ModelConfig resnet_cfg() {
  models::ModelConfig cfg;
  cfg.num_classes = 20;
  cfg.width = 8;
  cfg.seed = 3;
  return cfg;
}

models::ModelConfig vgg_cfg() {
  models::ModelConfig cfg;
  cfg.num_classes = 10;
  cfg.width = 4;
  cfg.seed = 5;
  return cfg;
}

nn::Dataset subset(const nn::Dataset& ds, int n) {
  n = std::min(n, ds.size());
  std::vector<int> idx(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
  const nn::Batch b = ds.batch(idx);
  nn::Dataset out;
  out.images = b.x;
  out.labels = b.y;
  out.num_classes = ds.num_classes;
  return out;
}

const nn::Dataset& ft_train_imagenet() {
  static const nn::Dataset ds = subset(imagenet_mini().train, 600);
  return ds;
}
const nn::Dataset& ft_val_imagenet() {
  static const nn::Dataset ds = subset(imagenet_mini().val, 200);
  return ds;
}
const nn::Dataset& ft_train_cifar() {
  static const nn::Dataset ds = subset(cifar_mini().train, 500);
  return ds;
}
const nn::Dataset& ft_val_cifar() {
  static const nn::Dataset ds = subset(cifar_mini().val, 200);
  return ds;
}

nn::TrainConfig base_train_cfg() {
  nn::TrainConfig tc;
  tc.batch_size = 32;
  tc.paf_hp = {1e-3, 0.0, 0.9, 0.999, 1e-8};
  tc.other_hp = {1e-3, 1e-4, 0.9, 0.999, 1e-8};
  return tc;
}

namespace {

nn::Model trained_base(const char* tag, nn::Model model, const data::SyntheticData& ds,
                       int epochs) {
  const std::string path = out_dir() + "/" + tag + ".bin";
  if (model.load(path)) {
    static bool announced = false;
    if (!announced) {
      std::printf("[bench] loaded cached base model %s (val acc %.1f%%)\n", path.c_str(),
                  100.0 * smartpaf::evaluate_accuracy(model, ds.val));
      announced = true;
    }
    return model;
  }
  std::printf("[bench] training base model %s (%d epochs)...\n", tag, epochs);
  sp::Timer t;
  nn::Trainer trainer(model, ds.train, ds.val, base_train_cfg());
  double val = 0;
  for (int e = 0; e < epochs; ++e) val = trainer.run_epoch().val_acc;
  std::printf("[bench] base %s trained: val acc %.1f%% (%.0fs)\n", tag, 100.0 * val,
              t.seconds());
  model.save(path);
  return model;
}

}  // namespace

nn::Model trained_resnet() {
  return trained_base("resnet18_imagenet_mini", models::resnet18(resnet_cfg()),
                      imagenet_mini(), 12);
}

nn::Model trained_vgg() {
  return trained_base("vgg19_cifar_mini", models::vgg19(vgg_cfg()), cifar_mini(), 8);
}

smartpaf::SchedulerConfig combo_cfg(approx::PafForm form, bool ct, bool pa, bool at,
                                    bool train_paf, bool replace_maxpool) {
  smartpaf::SchedulerConfig cfg;
  cfg.form = form;
  cfg.use_ct = ct;
  cfg.progressive_replace = pa;
  cfg.progressive_train = pa;
  cfg.use_at = at;
  cfg.train_paf = train_paf;
  cfg.replace_maxpool = replace_maxpool;
  cfg.group_epochs = 1;
  // Comparable epoch budgets: AT needs a second group per step to swap into.
  cfg.max_groups_per_step = pa ? (at ? 2 : 1) : 3;
  cfg.final_network_train = pa;
  cfg.train.batch_size = 32;
  // Table 5 fine-tuning hyperparameters, scaled up for the mini budget.
  cfg.train.paf_hp = {1e-3, 0.01, 0.9, 0.999, 1e-8};
  cfg.train.other_hp = {1e-4, 0.1, 0.9, 0.999, 1e-8};
  cfg.ct.calib_batches = 2;
  cfg.ct.fit_iters = 120;
  cfg.ct.fit_samples = 1024;
  return cfg;
}

std::string pct(double frac) { return sp::Table::num(100.0 * frac, 1) + "%"; }

}  // namespace sp::bench
