// Ladder vs BSGS ciphertext polynomial evaluation: per-degree ct-ct mult /
// relin / rescale counts, wall clock, and numerical agreement with the
// plaintext Horner reference. This is the measurement behind the poly_eval
// strategy switch: BSGS must never consume more levels than the ladder and
// must strictly cut ct-ct mults wherever the level budget leaves slack
// (every dense degree >= 8; degree 7 sits exactly on the 2^3 depth wall, so
// there the schedules coincide).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "common/timer.h"
#include "smartpaf/fhe_deploy.h"

namespace {

using namespace sp;
using namespace sp::fhe;

approx::Polynomial random_poly(int degree, bool odd_only, std::uint64_t seed) {
  sp::Rng rng(seed);
  std::vector<double> c(static_cast<std::size_t>(degree) + 1, 0.0);
  const int step = odd_only ? 2 : 1;
  for (int k = odd_only ? 1 : 0; k <= degree; k += step)
    c[static_cast<std::size_t>(k)] = rng.uniform(-1.0, 1.0) / (degree + 1);
  if (std::abs(c.back()) < 1e-3) c.back() = 0.25 / (degree + 1);
  return approx::Polynomial(c);
}

struct Run {
  EvalStats stats;
  double ms = 0.0;
  std::vector<double> values;
  int levels = 0;
};

Run eval_with(smartpaf::FheRuntime& rt, PafEvaluator::Strategy strategy,
              const approx::Polynomial& p, const Ciphertext& ct) {
  PafEvaluator pe(rt.ctx(), rt.encoder(), rt.relin_key(), strategy);
  Run r;
  sp::Timer timer;
  const Ciphertext out = pe.eval_poly(rt.evaluator(), ct, p, &r.stats);
  r.ms = timer.ms();
  r.levels = ct.level() - out.level();
  r.values = rt.decrypt(out);
  return r;
}

double rel_error(const std::vector<double>& got, const std::vector<double>& inputs,
                 const approx::Polynomial& p) {
  double worst = 0.0, norm = 1.0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const double ref = p(inputs[i]);
    norm = std::max(norm, std::abs(ref));
    worst = std::max(worst, std::abs(got[i] - ref));
  }
  return worst / norm;
}

double max_diff(const std::vector<double>& a, const std::vector<double>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

void sweep(smartpaf::FheRuntime& rt, bool odd_only) {
  std::printf("\n== %s random polynomials, degrees 3..31 ==\n",
              odd_only ? "Odd" : "Dense");
  Table table({"deg", "levels", "ladder mults", "bsgs mults", "saved", "ladder ms",
               "bsgs ms", "ladder relerr", "bsgs relerr", "bsgs-vs-ladder"});

  sp::Rng rng(7);
  std::vector<double> inputs(rt.ctx().slot_count());
  for (auto& x : inputs) x = rng.uniform(-1.0, 1.0);
  const Ciphertext ct = rt.encrypt(inputs);

  const double tol = std::ldexp(1.0, -20);
  bool all_match = true, savings_hold = true;
  for (int degree = 3; degree <= 31; ++degree) {
    if (odd_only && degree % 2 == 0) continue;
    const approx::Polynomial p =
        random_poly(degree, odd_only, 4000 + static_cast<std::uint64_t>(degree));
    const Run ladder = eval_with(rt, PafEvaluator::Strategy::Ladder, p, ct);
    const Run bsgs = eval_with(rt, PafEvaluator::Strategy::BSGS, p, ct);

    const double diff = max_diff(ladder.values, bsgs.values);
    all_match = all_match && rel_error(ladder.values, inputs, p) < tol &&
                rel_error(bsgs.values, inputs, p) < tol && ladder.levels == bsgs.levels;
    // Strict savings wherever the level budget has slack.
    const bool depth_wall = odd_only ? degree < 9 : degree < 8;
    if (!depth_wall && bsgs.stats.ct_mults >= ladder.stats.ct_mults)
      savings_hold = false;
    if (bsgs.stats.ct_mults > ladder.stats.ct_mults) savings_hold = false;

    table.add_row({std::to_string(degree), std::to_string(ladder.levels),
                   std::to_string(ladder.stats.ct_mults),
                   std::to_string(bsgs.stats.ct_mults),
                   std::to_string(bsgs.stats.ct_mults_saved), Table::num(ladder.ms),
                   Table::num(bsgs.ms), Table::num(rel_error(ladder.values, inputs, p), 9),
                   Table::num(rel_error(bsgs.values, inputs, p), 9),
                   Table::num(diff, 9)});
  }
  table.print(std::cout);
  std::printf("parity < 2^-20 and equal levels on every degree: %s\n",
              all_match ? "yes" : "NO");
  std::printf("bsgs strictly fewer ct-ct mults wherever slack exists: %s\n",
              savings_hold ? "yes" : "NO");
}

void paf_stages(smartpaf::FheRuntime& rt) {
  std::printf("\n== Paper PAF stages (odd minimax polynomials) ==\n");
  Table table({"stage", "deg", "ladder mults", "bsgs mults", "saved", "agreement"});
  sp::Rng rng(11);
  std::vector<double> inputs(rt.ctx().slot_count());
  for (auto& x : inputs) x = rng.uniform(-1.0, 1.0);
  const Ciphertext ct = rt.encrypt(inputs);

  const auto alpha10 = approx::make_paf(approx::PafForm::ALPHA10_D27);
  int idx = 0;
  for (const auto& stage : alpha10.stages()) {
    const Run ladder = eval_with(rt, PafEvaluator::Strategy::Ladder, stage, ct);
    const Run bsgs = eval_with(rt, PafEvaluator::Strategy::BSGS, stage, ct);
    table.add_row({"alpha10[" + std::to_string(idx++) + "]",
                   std::to_string(stage.degree()), std::to_string(ladder.stats.ct_mults),
                   std::to_string(bsgs.stats.ct_mults),
                   std::to_string(bsgs.stats.ct_mults_saved),
                   Table::num(max_diff(ladder.values, bsgs.values), 9)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  std::printf("BSGS vs ladder ciphertext polynomial evaluation (N=4096, depth 6, "
              "Delta=2^40)\n");
  smartpaf::FheRuntime rt(CkksParams::for_depth(4096, 6, 40), /*seed=*/2025);
  sweep(rt, /*odd_only=*/false);
  sweep(rt, /*odd_only=*/true);
  paf_stages(rt);
  return 0;
}
