// Measured-cost planning vs forced schedules: builds the 2-activation
// pipeline (window -> deg-27 PAF-ReLU -> scalar linear -> pairwise
// PAF-MaxPool), calibrates a CostModel on the live runtime (cached to JSON
// under bench_out/), and compares the planner's pick against forced-Ladder
// and forced-BSGS plans of the same pipeline. The measured-cost plan must
// never be slower: its predicted cost is minimal by construction and its
// wall clock must stay within tolerance of the best forced plan.
//
// Usage: bench_pipeline [quick]   ("quick" restricts to N = 2048)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"
#include "smartpaf/fhe_deploy.h"
#include "smartpaf/pipeline.h"
#include "smartpaf/pipeline_planner.h"

namespace {

using namespace sp;
using namespace sp::fhe;

struct PlanRow {
  std::string name;
  int levels = 0;
  int ct_mults = 0;
  double predicted = 0.0;
  double ms_best = 0.0;
  double max_err = 0.0;
};

approx::CompositePaf dense_odd_paf(int deg, std::uint64_t seed) {
  sp::Rng rng(seed);
  std::vector<double> c(static_cast<std::size_t>(deg) + 1, 0.0);
  for (int k = 1; k <= deg; k += 2)
    c[static_cast<std::size_t>(k)] = rng.uniform(-1.0, 1.0) / deg;
  return approx::CompositePaf("deg" + std::to_string(deg), {approx::Polynomial(c)});
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "quick") == 0;
  const std::size_t n = quick ? 2048 : 4096;
  const int repeats = quick ? 5 : 7;
  const int depth = 12;

  // window(4 taps): 1 level; deg-27 ReLU: 5 + 2 (where BSGS saves 6 of the
  // ladder's 17 ct-mults — a gap timing noise cannot invert); scalar linear:
  // folded; pairwise deg-3 MaxPool: 2 + 2 -> 12 planned levels, depth-12
  // chain.
  const auto pipe = smartpaf::FhePipeline::builder()
                        .window({0.4, 0.3, 0.2, 0.1})
                        .paf_relu(dense_odd_paf(27, 5), 2.0)
                        .linear(0.8)
                        .paf_maxpool(dense_odd_paf(3, 6), 2.0, /*pool_window=*/2)
                        .build();

  smartpaf::FheRuntime rt(CkksParams::for_depth(n, depth, 40), /*seed=*/2024);
  std::printf("[bench] runtime ready: N=%zu depth=%d\n", n, depth);

  const std::string cm_path = bench::out_dir() + "/cost_model_n" + std::to_string(n) +
                              "_q" + std::to_string(rt.ctx().q_count()) + ".json";
  sp::Timer cal_timer;
  const smartpaf::CostModel cm = smartpaf::CostModel::load_or_calibrate(rt, cm_path);
  std::printf("[bench] cost model ready in %.1f ms (cache: %s)\n", cal_timer.ms(),
              cm_path.c_str());
  std::printf("[bench] measured per-op ms: mult %.3f relin %.3f rescale %.3f plain %.3f "
              "rotate %.3f hoist %.3f hoisted-rotate %.3f\n",
              cm.ct_mult_ms, cm.relin_ms, cm.rescale_ms, cm.plain_mult_ms, cm.rotate_ms,
              cm.hoist_ms, cm.hoisted_rotate_ms);

  struct Candidate {
    std::string name;
    smartpaf::PlanOptions opts;
  };
  std::vector<Candidate> candidates(3);
  candidates[0].name = "measured-cost plan";
  candidates[1].name = "forced Ladder";
  candidates[1].opts.force_strategy = PafEvaluator::Strategy::Ladder;
  candidates[2].name = "forced BSGS";
  candidates[2].opts.force_strategy = PafEvaluator::Strategy::BSGS;

  sp::Rng rng(17);
  std::vector<double> slots(rt.ctx().slot_count());
  for (auto& v : slots) v = rng.uniform(-1.0, 1.0);
  const Ciphertext in = rt.encrypt(slots);
  const std::vector<double> ref = pipe.reference(slots);

  // One untimed evaluation warms the NTT tables / allocator so the first
  // timed candidate is not penalized.
  (void)pipe.run(rt, smartpaf::Planner::plan(pipe, rt.ctx(), cm), in);

  std::vector<smartpaf::Plan> plans;
  std::vector<PlanRow> rows;
  std::vector<std::vector<double>> times(candidates.size());
  for (const Candidate& cand : candidates) {
    plans.push_back(smartpaf::Planner::plan(pipe, rt.ctx(), cm, cand.opts));
    if (cand.name == "measured-cost plan") std::cout << plans.back().describe();

    PlanRow row;
    row.name = cand.name;
    row.levels = plans.back().levels_used;
    row.predicted = plans.back().predicted_cost;
    for (const auto& s : plans.back().stages) row.ct_mults += s.ops.ct_mults;
    rows.push_back(row);
  }

  // Interleave the repeats round-robin so machine drift lands on every
  // candidate evenly (the plans often share a schedule; a sequential sweep
  // would hand the earlier one whatever the machine was doing at the time).
  for (int r = 0; r < repeats; ++r)
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      sp::Timer t;
      const Ciphertext out = pipe.run(rt, plans[c], in);
      times[c].push_back(t.ms());
      if (r == 0) {
        const std::vector<double> got = rt.decrypt(out);
        for (std::size_t j = 0; j < got.size(); ++j)
          rows[c].max_err = std::max(rows[c].max_err, std::abs(got[j] - ref[j]));
      }
    }
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    // Min over interleaved repeats: the standard noise-robust estimator
    // (drift and scheduler hiccups only ever ADD time).
    rows[c].ms_best = *std::min_element(times[c].begin(), times[c].end());
    std::printf("[bench] %-18s %8.1f ms (predicted %.1f, %d ct-mults)\n",
                rows[c].name.c_str(), rows[c].ms_best, rows[c].predicted,
                rows[c].ct_mults);
  }

  Table table({"plan", "levels", "ct_mults", "predicted_ms", "ms_best", "max_err"});
  for (const PlanRow& r : rows)
    table.add_row({r.name, std::to_string(r.levels), std::to_string(r.ct_mults),
                   Table::num(r.predicted, 2), Table::num(r.ms_best, 1),
                   Table::num(r.max_err, 8)});
  table.print(std::cout);

  const std::string json_path = bench::out_dir() + "/pipeline.json";
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const PlanRow& r = rows[i];
      std::fprintf(f,
                   "  {\"n\": %zu, \"plan\": \"%s\", \"levels\": %d, \"ct_mults\": %d, "
                   "\"predicted_ms\": %.4f, \"ms_best\": %.4f, \"max_err\": %.3e}%s\n",
                   n, r.name.c_str(), r.levels, r.ct_mults, r.predicted, r.ms_best,
                   r.max_err, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("[bench] wrote %s\n", json_path.c_str());
  }

  // Gates. (1) Parity: every plan's output stays within the 2^-20 budget.
  const double tol = std::ldexp(1.0, -20);
  for (const PlanRow& r : rows)
    if (!(r.max_err < tol)) {
      std::printf("[bench] FAIL: %s exceeded the parity budget (%.3e)\n", r.name.c_str(),
                  r.max_err);
      return 1;
    }
  // (2) The measured-cost pick is minimal in predicted cost by construction,
  // and must not be slower than either forced plan beyond timing noise.
  const double best_forced =
      std::min(rows[1].ms_best, rows[2].ms_best);
  const bool predicted_ok =
      rows[0].predicted <= rows[1].predicted && rows[0].predicted <= rows[2].predicted;
  const bool measured_ok = rows[0].ms_best <= best_forced * 1.10;
  std::printf("[bench] measured-cost plan never slower than forced plans: %s "
              "(%.1f ms vs best forced %.1f ms; predicted %s)\n",
              predicted_ok && measured_ok ? "yes" : "NO", rows[0].ms_best, best_forced,
              predicted_ok ? "minimal" : "NOT minimal");
  return predicted_ok && measured_ok ? 0 : 1;
}
