// Reproduces Fig. 9: the training-curve deep dive with the 14-degree
// f1^2.g1^2 PAF — prior-work baseline (direct replacement, PAFs excluded
// from training) vs SMART-PAF (CT + PA + AT), with event markers.
// --dump-coeffs also prints the final per-layer coefficients (the
// Appendix-B reproduction).
#include <cstdio>
#include <cstring>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace sp;
  using approx::PafForm;
  const bool dump = argc > 1 && std::strcmp(argv[1], "--dump-coeffs") == 0;

  const nn::Dataset& ft_train = bench::ft_train_imagenet();
  const nn::Dataset& ft_val = bench::ft_val_imagenet();
  std::printf("=== Fig. 9: training curves, baseline vs SMART-PAF (f1^2.g1^2) ===\n");

  smartpaf::SchedulerResult runs[2];
  const char* names[2] = {"baseline", "smartpaf"};
  for (int which = 0; which < 2; ++which) {
    nn::Model m = bench::trained_resnet();
    smartpaf::SchedulerConfig cfg =
        which == 0
            ? bench::combo_cfg(PafForm::F1SQ_G1SQ, false, false, false, false, true)
            : bench::combo_cfg(PafForm::F1SQ_G1SQ, true, true, true, true, true);
    cfg.max_groups_per_step = which == 0 ? 5 : 2;  // similar epoch budgets
    smartpaf::Scheduler sched(m, ft_train, ft_val, cfg);
    runs[which] = sched.run();
    std::printf("\n[%s] initial %.1f%%, best DS %.1f%%, SS %.1f%% over %d epochs\n",
                names[which], 100 * runs[which].initial_acc, 100 * runs[which].best_acc_ds,
                100 * runs[which].acc_ss, runs[which].epochs_run);
  }

  for (int which = 0; which < 2; ++which) {
    std::printf("\n-- %s trace (epoch, val acc, event) --\n", names[which]);
    Table table({"epoch", "val_acc", "event"});
    for (const auto& ev : runs[which].trace)
      table.add_row({std::to_string(ev.epoch), bench::pct(ev.val_acc), ev.tag});
    table.print(std::cout);
    table.write_csv(bench::out_dir() + "/fig9_" + names[which] + ".csv");
  }

  std::printf("\nShape check: the baseline curve stalls or degrades across steps while\n"
              "the SMART-PAF curve climbs after each replacement (paper Fig. 9).\n");

  if (dump) {
    std::printf("\n=== Appendix-B style dump: final per-layer PAF coefficients ===\n");
    for (std::size_t i = 0; i < runs[1].final_coeffs.size(); ++i) {
      std::printf("layer %2zu:", i);
      for (double c : runs[1].final_coeffs[i])
        if (c != 0.0) std::printf(" % .6f", c);
      std::printf("\n");
    }
  }
  return 0;
}
