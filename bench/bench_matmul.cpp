// Diagonal-method encrypted matrix-vector: naive per-diagonal rotation loop
// (n1 = 1, no hoisting) vs the planner's hoisted-BSGS split, per matrix
// dimension. Reports rotation counts (the BSGS win), plaintext-mult counts,
// wall time (min over interleaved repeats) and parity vs the plaintext
// product; writes JSON to bench_out/matmul.json.
//
// Gates: every variant stays within the 2^-20 parity budget, and for
// cols >= 64 the hoisted-BSGS schedule performs STRICTLY fewer rotations
// than the naive diagonal loop.
//
// Usage: bench_matmul [quick]   ("quick" restricts to N = 2048 and two dims)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/timer.h"
#include "smartpaf/fhe_deploy.h"
#include "smartpaf/pipeline.h"
#include "smartpaf/pipeline_planner.h"

namespace {

using namespace sp;
using namespace sp::fhe;

struct Row {
  int rows = 0, cols = 0;
  std::string plan;
  int n1 = 0;
  std::size_t rotations = 0;
  std::size_t hoisted = 0;
  std::size_t plain_mults = 0;
  double ms_best = 0.0;
  double max_err = 0.0;
};

std::vector<double> random_matrix(int rows, int cols, std::uint64_t seed) {
  sp::Rng rng(seed);
  std::vector<double> w(static_cast<std::size_t>(rows) * cols);
  for (auto& v : w) v = rng.uniform(-0.5, 0.5);
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "quick") == 0;
  const std::size_t n = quick ? 2048 : 4096;
  const int repeats = quick ? 3 : 5;

  struct Dim {
    int rows, cols;
  };
  // Square small/medium plus the classic 784 -> 10 classifier-head shape.
  const std::vector<Dim> dims = quick ? std::vector<Dim>{{64, 64}, {10, 112}}
                                      : std::vector<Dim>{{64, 64}, {256, 256}, {10, 784}};

  std::vector<Row> rows_out;
  bool parity_ok = true, rotations_ok = true;

  for (const Dim dim : dims) {
    // Fresh runtime per dimension: the naive baseline generates one rotation
    // key per nonzero off-diagonal, so scoping the runtime releases that key
    // store before the next dimension.
    smartpaf::FheRuntime rt(CkksParams::for_depth(n, 2, 40), /*seed=*/2024);
    sp::check(static_cast<std::size_t>(dim.cols) <= rt.ctx().slot_count(),
              "bench_matmul: matrix wider than the slot count");
    const auto pipe = smartpaf::FhePipeline::builder()
                          .input_width(static_cast<std::size_t>(dim.cols))
                          .matmul(dim.rows, dim.cols,
                                  random_matrix(dim.rows, dim.cols, 7))
                          .build();

    struct Candidate {
      std::string name;
      smartpaf::PlanOptions opts;
    };
    std::vector<Candidate> candidates(2);
    candidates[0].name = "naive-diagonal";
    candidates[0].opts.force_matmul_n1 = 1;
    candidates[0].opts.force_hoist = false;
    candidates[1].name = "hoisted-bsgs";

    sp::Rng rng(17);
    std::vector<double> slots(rt.ctx().slot_count(), 0.0);
    for (int j = 0; j < dim.cols; ++j) slots[static_cast<std::size_t>(j)] =
        rng.uniform(-1.0, 1.0);
    const Ciphertext in = rt.encrypt(slots);
    const std::vector<double> ref = pipe.reference(slots);

    std::vector<smartpaf::Plan> plans;
    std::vector<Row> rows;
    for (const Candidate& cand : candidates) {
      plans.push_back(smartpaf::Planner::plan(pipe, rt.ctx(),
                                              smartpaf::CostModel::heuristic(),
                                              cand.opts));
      rt.rotation_keys(plans.back().rotation_steps());  // keygen outside timing
      Row row;
      row.rows = dim.rows;
      row.cols = dim.cols;
      row.plan = cand.name;
      row.n1 = plans.back().stages[0].bsgs_n1;
      rows.push_back(row);
    }
    std::printf("[bench] %dx%d ready (N=%zu, bsgs n1=%d, %zu rotation keys)\n",
                dim.rows, dim.cols, n, rows[1].n1, rt.rotation_key_count());

    // Interleave repeats round-robin so machine drift lands evenly.
    std::vector<std::vector<double>> times(candidates.size());
    Evaluator& ev = rt.evaluator();
    for (int r = 0; r < repeats; ++r)
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        const OpCounters before = ev.counters;
        sp::Timer t;
        const Ciphertext out = pipe.run(rt, plans[c], in);
        times[c].push_back(t.ms());
        const OpCounters delta = ev.counters.delta_since(before);
        rows[c].rotations = delta.rotations.load();
        rows[c].hoisted = delta.hoisted_rotations.load();
        rows[c].plain_mults = delta.plain_mults.load();
        if (r == 0) {
          const std::vector<double> got = rt.decrypt(out);
          for (int j = 0; j < dim.rows; ++j)
            rows[c].max_err = std::max(rows[c].max_err,
                                       std::abs(got[static_cast<std::size_t>(j)] -
                                                ref[static_cast<std::size_t>(j)]));
        }
      }
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      rows[c].ms_best = *std::min_element(times[c].begin(), times[c].end());
      rows_out.push_back(rows[c]);
    }

    const double tol = std::ldexp(1.0, -20);
    for (const Row& row : rows)
      if (!(row.max_err < tol)) {
        std::printf("[bench] FAIL: %dx%d %s parity %.3e\n", row.rows, row.cols,
                    row.plan.c_str(), row.max_err);
        parity_ok = false;
      }
    if (dim.cols >= 64 && !(rows[1].rotations < rows[0].rotations)) {
      std::printf("[bench] FAIL: %dx%d hoisted-BSGS rotations (%zu) not strictly "
                  "fewer than naive (%zu)\n",
                  dim.rows, dim.cols, rows[1].rotations, rows[0].rotations);
      rotations_ok = false;
    }
  }

  Table table({"dims", "plan", "n1", "rotations", "hoisted", "plain_mults",
               "ms_best", "max_err"});
  for (const Row& r : rows_out)
    table.add_row({std::to_string(r.rows) + "x" + std::to_string(r.cols), r.plan,
                   std::to_string(r.n1), std::to_string(r.rotations),
                   std::to_string(r.hoisted), std::to_string(r.plain_mults),
                   Table::num(r.ms_best, 1), Table::num(r.max_err, 8)});
  table.print(std::cout);

  const std::string json_path = bench::out_dir() + "/matmul.json";
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < rows_out.size(); ++i) {
      const Row& r = rows_out[i];
      std::fprintf(f,
                   "  {\"n\": %zu, \"rows\": %d, \"cols\": %d, \"plan\": \"%s\", "
                   "\"n1\": %d, \"rotations\": %zu, \"hoisted\": %zu, "
                   "\"plain_mults\": %zu, \"ms_best\": %.4f, \"max_err\": %.3e}%s\n",
                   n, r.rows, r.cols, r.plan.c_str(), r.n1, r.rotations, r.hoisted,
                   r.plain_mults, r.ms_best, r.max_err,
                   i + 1 < rows_out.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("[bench] wrote %s\n", json_path.c_str());
  }

  std::printf("[bench] parity within 2^-20: %s; BSGS strictly fewer rotations "
              "for n >= 64: %s\n",
              parity_ok ? "yes" : "NO", rotations_ok ? "yes" : "NO");
  return parity_ok && rotations_ok ? 0 : 1;
}
