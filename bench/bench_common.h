#pragma once

#include <string>

#include "data/synthetic.h"
#include "models/zoo.h"
#include "nn/trainer.h"
#include "smartpaf/scheduler.h"

namespace sp::bench {

/// Output directory for bench CSVs and cached base-model weights.
std::string out_dir();

/// The "ImageNet-1k stand-in" task (harder: 20 classes, heavier noise).
const data::SyntheticData& imagenet_mini();
/// The "CiFar-10 stand-in" task (easier; 32x32 so VGG-19's five pools fit).
const data::SyntheticData& cifar_mini();

models::ModelConfig resnet_cfg();
models::ModelConfig vgg_cfg();

/// Reduced fine-tuning splits used by the quick-mode harnesses: PAF-model
/// training epochs are ~5x costlier than plain ones, so technique-combo runs
/// train on a 600-sample subset and validate on a 200-sample subset.
const nn::Dataset& ft_train_imagenet();
const nn::Dataset& ft_val_imagenet();
const nn::Dataset& ft_train_cifar();
const nn::Dataset& ft_val_cifar();

/// First-n-sample subset of a dataset.
nn::Dataset subset(const nn::Dataset& ds, int n);

/// Baseline training hyperparameters for from-scratch base training.
nn::TrainConfig base_train_cfg();

/// Trains (or loads from cache) the base ResNet-18-mini on imagenet_mini.
nn::Model trained_resnet();
/// Trains (or loads from cache) the base VGG-19-mini on cifar_mini.
nn::Model trained_vgg();

/// Quick-budget scheduler configuration for a technique combination, used by
/// the Table 3 / Fig. 8 / Fig. 9 harnesses. `train_paf=false` gives the
/// prior-work baseline that excludes PAF coefficients from fine-tuning.
smartpaf::SchedulerConfig combo_cfg(approx::PafForm form, bool ct, bool pa, bool at,
                                    bool train_paf, bool replace_maxpool);

/// Formats a fraction as a percentage string.
std::string pct(double frac);

}  // namespace sp::bench
