// Channel-packed encrypted convolution: naive per-window rotation fan
// (force_conv_n1 = 0, no hoisting — the im2col baseline, one rotation per
// distinct window/channel shift) vs the planner's hoisted channel-offset
// BSGS split, per channel count. Reports rotation counts (the BSGS win),
// plaintext-mask counts, wall time (min over interleaved repeats) and parity
// vs the plaintext mirror; writes JSON to bench_out/conv.json.
//
// Gates: every variant stays within the 2^-20 parity budget, and at
// >= 8 channels the planner's packed schedule performs STRICTLY fewer
// rotations than the naive fan.
//
// Usage: bench_conv [quick]   ("quick" restricts to two channel counts)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/timer.h"
#include "smartpaf/fhe_deploy.h"
#include "smartpaf/pipeline.h"
#include "smartpaf/pipeline_planner.h"

namespace {

using namespace sp;
using namespace sp::fhe;

struct Row {
  int channels = 0;
  std::string plan;
  int conv_n1 = 0;
  std::size_t rotations = 0;
  std::size_t hoisted = 0;
  std::size_t plain_mults = 0;
  double ms_best = 0.0;
  double max_err = 0.0;
};

std::vector<double> random_kernel(int out_ch, int in_ch, int k, std::uint64_t seed) {
  sp::Rng rng(seed);
  const double a = 1.5 / (k * k * std::sqrt(static_cast<double>(in_ch)));
  std::vector<double> w(static_cast<std::size_t>(out_ch) * in_ch * k * k);
  for (auto& v : w) v = rng.uniform(-a, a);
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "quick") == 0;
  const std::size_t n = 2048;
  const int repeats = quick ? 3 : 5;
  const int img = 10, kernel = 3;
  const std::vector<int> channel_counts =
      quick ? std::vector<int>{2, 8} : std::vector<int>{2, 4, 8};

  std::vector<Row> rows_out;
  bool parity_ok = true, rotations_ok = true;

  for (const int ch : channel_counts) {
    // Fresh runtime per channel count: the naive fan generates one rotation
    // key per distinct term shift, so scoping the runtime releases that key
    // store before the next configuration.
    smartpaf::FheRuntime rt(CkksParams::for_depth(n, 2, 40), /*seed=*/2024);
    const auto pipe = smartpaf::FhePipeline::builder()
                          .input_grid({ch, img, img})
                          .conv(ch, ch, img, img, kernel, 1,
                                random_kernel(ch, ch, kernel, 7))
                          .build();
    const auto layouts = pipe.stage_layouts(rt.ctx().slot_count());
    sp::check(layouts.front().first.blocks == 1,
              "bench_conv: grid wider than the slot count");

    struct Candidate {
      std::string name;
      smartpaf::PlanOptions opts;
    };
    std::vector<Candidate> candidates(2);
    candidates[0].name = "naive-fan";
    candidates[0].opts.force_conv_n1 = 0;
    candidates[0].opts.force_hoist = false;
    candidates[1].name = "packed-bsgs";

    sp::Rng rng(17);
    std::vector<double> logical(static_cast<std::size_t>(ch) * img * img);
    for (auto& v : logical) v = rng.uniform(-1.0, 1.0);
    const auto packed =
        smartpaf::pack_layout(logical, layouts.front().first, rt.ctx().slot_count());
    const Ciphertext in = rt.encrypt(packed.at(0));
    const std::vector<double> ref = pipe.reference(packed.at(0));

    std::vector<smartpaf::Plan> plans;
    std::vector<Row> rows;
    for (const Candidate& cand : candidates) {
      plans.push_back(smartpaf::Planner::plan(pipe, rt.ctx(),
                                              smartpaf::CostModel::heuristic(),
                                              cand.opts));
      rt.rotation_keys(plans.back().rotation_steps());  // keygen outside timing
      Row row;
      row.channels = ch;
      row.plan = cand.name;
      row.conv_n1 = plans.back().stages[0].conv_n1;
      rows.push_back(row);
    }
    std::printf("[bench] %dch %dx%d k%d ready (N=%zu, conv n1=%d, %zu rotation keys)\n",
                ch, img, img, kernel, n, rows[1].conv_n1, rt.rotation_key_count());

    // Interleave repeats round-robin so machine drift lands evenly.
    std::vector<std::vector<double>> times(candidates.size());
    Evaluator& ev = rt.evaluator();
    for (int r = 0; r < repeats; ++r)
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        const OpCounters before = ev.counters;
        sp::Timer t;
        const Ciphertext out = pipe.run(rt, plans[c], in);
        times[c].push_back(t.ms());
        const OpCounters delta = ev.counters.delta_since(before);
        rows[c].rotations = delta.rotations.load();
        rows[c].hoisted = delta.hoisted_rotations.load();
        rows[c].plain_mults = delta.plain_mults.load();
        if (r == 0) {
          const std::vector<double> got = rt.decrypt(out);
          for (std::size_t j = 0; j < ref.size(); ++j)
            rows[c].max_err = std::max(rows[c].max_err, std::abs(got[j] - ref[j]));
        }
      }
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      rows[c].ms_best = *std::min_element(times[c].begin(), times[c].end());
      rows_out.push_back(rows[c]);
    }

    const double tol = std::ldexp(1.0, -20);
    for (const Row& row : rows)
      if (!(row.max_err < tol)) {
        std::printf("[bench] FAIL: %dch %s parity %.3e\n", row.channels,
                    row.plan.c_str(), row.max_err);
        parity_ok = false;
      }
    if (ch >= 8 && !(rows[1].rotations < rows[0].rotations)) {
      std::printf("[bench] FAIL: %dch packed-BSGS rotations (%zu) not strictly "
                  "fewer than naive fan (%zu)\n",
                  ch, rows[1].rotations, rows[0].rotations);
      rotations_ok = false;
    }
  }

  Table table({"channels", "plan", "conv_n1", "rotations", "hoisted",
               "plain_mults", "ms_best", "max_err"});
  for (const Row& r : rows_out)
    table.add_row({std::to_string(r.channels), r.plan, std::to_string(r.conv_n1),
                   std::to_string(r.rotations), std::to_string(r.hoisted),
                   std::to_string(r.plain_mults), Table::num(r.ms_best, 1),
                   Table::num(r.max_err, 8)});
  table.print(std::cout);

  const std::string json_path = bench::out_dir() + "/conv.json";
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < rows_out.size(); ++i) {
      const Row& r = rows_out[i];
      std::fprintf(f,
                   "  {\"n\": %zu, \"channels\": %d, \"image\": %d, \"kernel\": %d, "
                   "\"plan\": \"%s\", \"conv_n1\": %d, \"rotations\": %zu, "
                   "\"hoisted\": %zu, \"plain_mults\": %zu, \"ms_best\": %.4f, "
                   "\"max_err\": %.3e}%s\n",
                   n, r.channels, img, kernel, r.plan.c_str(), r.conv_n1,
                   r.rotations, r.hoisted, r.plain_mults, r.ms_best, r.max_err,
                   i + 1 < rows_out.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("[bench] wrote %s\n", json_path.c_str());
  }

  std::printf("[bench] parity within 2^-20: %s; packed plan strictly fewer "
              "rotations at >= 8 channels: %s\n",
              parity_ok ? "yes" : "NO", rotations_ok ? "yes" : "NO");
  return parity_ok && rotations_ok ? 0 : 1;
}
