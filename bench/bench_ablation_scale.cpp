// Design-choice ablations beyond the paper's tables (DESIGN.md §4 "extra"):
//  (a) input-scaling policy during fine-tuning — Dynamic Scaling vs a fixed
//      wide range (the [-50,50]-style scale of prior works, §4.5) vs a fixed
//      tight range;
//  (b) latency-vs-depth linearity: PAF-ReLU wall-clock as a function of the
//      multiplication depth (the paper's latency model).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "smartpaf/fhe_deploy.h"

int main() {
  using namespace sp;
  using approx::PafForm;

  // ---- (a) scaling policy ---------------------------------------------------
  const nn::Dataset& ft_train = bench::ft_train_imagenet();
  const nn::Dataset& ft_val = bench::ft_val_imagenet();
  std::printf("=== Ablation A: input scaling policy during fine-tuning ===\n");
  Table ta({"Policy", "post-replacement", "after fine-tune"});
  struct Policy {
    const char* name;
    double fixed_scale;  // <= 0 means Dynamic Scaling
  };
  for (const Policy p : {Policy{"Dynamic Scaling (paper)", -1.0},
                         Policy{"fixed wide scale (50)", 50.0},
                         Policy{"fixed tight scale (2)", 2.0}}) {
    nn::Model m = bench::trained_resnet();
    smartpaf::ReplaceOptions opts;
    opts.form = PafForm::F1SQ_G1SQ;
    auto layers = smartpaf::replace_all(m, opts);
    if (p.fixed_scale > 0)
      for (auto* l : layers) l->set_static_scale(static_cast<float>(p.fixed_scale));
    const double acc0 = smartpaf::evaluate_accuracy(m, ft_val);
    nn::TrainConfig tc = bench::base_train_cfg();
    tc.paf_hp = {1e-3, 0.01, 0.9, 0.999, 1e-8};
    tc.other_hp = {1e-4, 0.1, 0.9, 0.999, 1e-8};
    nn::Trainer tr(m, ft_train, ft_val, tc);
    double acc1 = 0;
    for (int e = 0; e < 3; ++e) acc1 = std::max(acc1, tr.run_epoch().val_acc);
    ta.add_row({p.name, bench::pct(acc0), bench::pct(acc1)});
  }
  ta.print(std::cout);
  ta.write_csv(bench::out_dir() + "/ablation_scale.csv");

  // ---- (b) latency vs depth ---------------------------------------------------
  std::printf("\n=== Ablation B: PAF-ReLU latency vs multiplication depth (N=8192) ===\n");
  smartpaf::FheRuntime rt(fhe::CkksParams::for_depth(8192, 12, 40));
  Table tb({"Form", "Depth", "Latency (ms)", "ms / level"});
  for (PafForm form : approx::all_forms()) {
    const auto paf = approx::make_paf(form);
    const auto res = smartpaf::measure_paf_relu(rt, paf, 8.0, 2);
    const int depth = paf.mult_depth() + 2;  // + scaling + final product
    tb.add_row({approx::form_name(form), std::to_string(depth),
                Table::num(res.ms_median, 1), Table::num(res.ms_median / depth, 1)});
  }
  tb.print(std::cout);
  tb.write_csv(bench::out_dir() + "/ablation_depth.csv");
  std::printf("\nShape check: ms/level is roughly constant — latency is linear in the\n"
              "multiplication depth, the premise of the paper's Table 2 cost model.\n");
  return 0;
}
