// Reproduces Table 2: PAF forms vs degree vs multiplication depth, plus the
// Appendix-C / Fig. 10 depth schedule with --schedule.
#include <cstdio>
#include <cstring>
#include <iostream>

#include "approx/presets.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace sp;
  using namespace sp::approx;

  std::printf("=== Table 2: PAF forms, degrees and multiplication depth ===\n");
  Table table({"Form", "Paper degree label", "Degree sum", "Algebraic degree",
               "Mult depth (ours)", "Mult depth (paper)", "Max sign err @0.15"});
  for (PafForm form : all_forms()) {
    const CompositePaf paf = make_paf(form);
    table.add_row({form_name(form), std::to_string(paper_degree_label(form)),
                   std::to_string(paf.degree_sum()), std::to_string(paf.degree_product()),
                   std::to_string(paf.mult_depth()), std::to_string(paper_mult_depth(form)),
                   Table::num(paf.sign_error_max(0.15), 4)});
  }
  table.print(std::cout);
  table.write_csv("bench_out/table2.csv");

  bool ok = true;
  for (PafForm form : all_forms()) {
    if (make_paf(form).mult_depth() != paper_mult_depth(form)) ok = false;
  }
  std::printf("\nDepth row matches the paper: %s\n", ok ? "YES (10/8/6/6/6/5)" : "NO");

  if (argc > 1 && std::strcmp(argv[1], "--schedule") == 0) {
    std::printf("\n=== Appendix C / Fig. 10: depth schedule of f1.g2 ===\n");
    for (const auto& line : depth_schedule(make_paf(PafForm::F1_G2)))
      std::printf("  %s\n", line.c_str());
  }
  return ok ? 0 : 1;
}
