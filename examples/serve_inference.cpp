// Serving skeleton over the sp::io wire format: a client (key owner) and a
// server (model owner) exchange length-prefixed frames; only public key
// material and ciphertexts ever cross the boundary.
//
// Protocol, in frame order:
//
//   client -> server   CkksParams | PublicKey | relin KSwitchKey
//   server -> client   Plan (planned server-side against the client's chain)
//   client -> server   GaloisKeys covering plan.rotation_steps()
//   client -> server   request Ciphertext            (repeats until EOF)
//   server -> client   result Ciphertext
//
// The server reconstructs a keygen-less FheRuntime purely from the
// deserialized blobs — it never sees the secret key and cannot decrypt
// anything it computes. The client generates rotation keys only after the
// plan arrives, so the server receives exactly the steps its schedule needs.
//
// By default the server runs as a true second process (fork + pipes), so the
// round trip proves the blobs carry everything: no pointer, context or key
// survives the process boundary except through sp::io. Exit status 0 iff the
// decrypted result matches the plaintext reference within 2^-20.
//
// Build & run:  ./build/serve_inference
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "io/serialize.h"
#include "smartpaf/fhe_deploy.h"
#include "smartpaf/pipeline.h"
#include "smartpaf/pipeline_planner.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define SMARTPAF_HAVE_FORK 1
#endif

namespace {

using namespace sp;

/// The served model: window conv -> PAF-ReLU -> diagonal linear. It lives
/// server-side; the client-side copy below exists only to compute the
/// plaintext reference for the parity check (in a real deployment the client
/// would not know the weights and would skip that check).
smartpaf::FhePipeline build_pipeline() {
  sp::Rng rng(41);
  std::vector<double> c(8, 0.0);
  for (int k = 1; k <= 7; k += 2) c[static_cast<std::size_t>(k)] = rng.uniform(-1.0, 1.0) / 8.0;
  return smartpaf::FhePipeline::builder()
      .window({0.5, 0.3, 0.2})
      .paf_relu(approx::CompositePaf("deg7", {approx::Polynomial(c)}), 2.0)
      .linear(0.9, 0.05)
      .build();
}

#ifdef SMARTPAF_HAVE_FORK

/// Minimal blocking streambuf over a POSIX file descriptor, so the pipe ends
/// speak the same std::iostream framing as any other channel.
class FdBuf : public std::streambuf {
 public:
  explicit FdBuf(int fd) : fd_(fd) {}

 protected:
  int_type overflow(int_type c) override {
    if (c == traits_type::eof()) return traits_type::not_eof(c);
    const char ch = static_cast<char>(c);
    return ::write(fd_, &ch, 1) == 1 ? c : traits_type::eof();
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    std::streamsize done = 0;
    while (done < n) {
      const ssize_t w = ::write(fd_, s + done, static_cast<std::size_t>(n - done));
      if (w <= 0) break;
      done += w;
    }
    return done;
  }
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    const ssize_t r = ::read(fd_, buf_, sizeof(buf_));
    if (r <= 0) return traits_type::eof();
    setg(buf_, buf_, buf_ + r);
    return traits_type::to_int_type(*gptr());
  }

 private:
  int fd_;
  char buf_[1 << 16];
};

#endif  // SMARTPAF_HAVE_FORK

/// Server side: owns the model, never the secret key.
int server_main(std::istream& in, std::ostream& out) {
  std::vector<std::uint8_t> buf;
  sp::check(io::read_frame(in, buf), "server: client hung up before params");
  auto ctx = std::make_unique<fhe::CkksContext>(io::deserialize_params(buf));
  sp::check(io::read_frame(in, buf), "server: client hung up before the public key");
  fhe::PublicKey pk = io::deserialize_public_key(buf, *ctx);
  sp::check(io::read_frame(in, buf), "server: client hung up before the relin key");
  fhe::KSwitchKey relin = io::deserialize_kswitch_key(buf, *ctx);

  // Plan against the client's chain and ship the plan: the client answers
  // with rotation keys for exactly the steps the schedule needs.
  const smartpaf::FhePipeline pipe = build_pipeline();
  const smartpaf::Plan plan =
      smartpaf::Planner::plan(pipe, *ctx, smartpaf::CostModel::heuristic());
  io::write_frame(out, io::serialize(plan, *ctx));

  sp::check(io::read_frame(in, buf), "server: client hung up before the Galois keys");
  fhe::GaloisKeys galois = io::deserialize_galois_keys(buf, *ctx);

  // The runtime adopts the context the blobs were deserialized against.
  smartpaf::FheRuntime rt(std::move(ctx), std::move(pk), std::move(relin),
                          std::move(galois));
  sp::check(!rt.has_secret_key(), "server: must not hold a secret key");

  // Request loop: one result frame per ciphertext frame, until EOF.
  while (io::read_frame(in, buf)) {
    const fhe::Ciphertext request = io::deserialize_ciphertext(buf, rt.ctx());
    const fhe::Ciphertext result = pipe.run(rt, plan, request, nullptr);
    io::write_frame(out, io::serialize(result));
  }
  return 0;
}

/// Client side: owns the keys, never the model weights.
int client_main(std::istream& in, std::ostream& out) {
  const fhe::CkksParams params = fhe::CkksParams::for_depth(2048, 8, 40);
  smartpaf::FheRuntime rt(params, /*seed=*/2026);
  io::write_frame(out, io::serialize(params));
  io::write_frame(out, io::serialize(rt.public_key()));
  io::write_frame(out, io::serialize(rt.relin_key()));

  std::vector<std::uint8_t> buf;
  sp::check(io::read_frame(in, buf), "client: server hung up before the plan");
  const smartpaf::Plan plan = io::deserialize_plan(buf, rt.ctx());
  std::printf("client: plan uses %d levels, %zu rotation steps\n", plan.levels_used,
              plan.rotation_steps().size());
  io::write_frame(out, io::serialize(rt.rotation_keys(plan.rotation_steps())));

  sp::Rng rng(33);
  std::vector<double> slots(rt.ctx().slot_count());
  for (auto& x : slots) x = rng.uniform(-1.0, 1.0);
  io::write_frame(out, io::serialize(rt.encrypt(slots)));

  sp::check(io::read_frame(in, buf), "client: server hung up before the result");
  const std::vector<double> got =
      rt.decrypt(io::deserialize_ciphertext(buf, rt.ctx()));

  const std::vector<double> ref = build_pipeline().reference(slots);
  double worst = 0.0;
  for (std::size_t j = 0; j < slots.size(); ++j)
    worst = std::max(worst, std::abs(got[j] - ref[j]));
  const double budget = std::ldexp(1.0, -20);
  std::printf("client: max |served - reference| over %zu slots: %.2e (budget %.2e)\n",
              slots.size(), worst, budget);
  return worst < budget ? 0 : 1;
}

}  // namespace

int main() {
#ifdef SMARTPAF_HAVE_FORK
  // Fork BEFORE any FHE work: the child must not inherit a half-built global
  // thread pool (fork keeps only the calling thread).
  int c2s[2], s2c[2];
  sp::check(pipe(c2s) == 0 && pipe(s2c) == 0, "serve_inference: pipe failed");
  const pid_t pid = fork();
  sp::check(pid >= 0, "serve_inference: fork failed");
  if (pid == 0) {
    close(c2s[1]);
    close(s2c[0]);
    FdBuf in_buf(c2s[0]), out_buf(s2c[1]);
    std::istream in(&in_buf);
    std::ostream out(&out_buf);
    const int rc = server_main(in, out);
    close(c2s[0]);
    close(s2c[1]);
    _exit(rc);
  }
  close(c2s[0]);
  close(s2c[1]);
  int rc = 1;
  {
    FdBuf in_buf(s2c[0]), out_buf(c2s[1]);
    std::istream in(&in_buf);
    std::ostream out(&out_buf);
    rc = client_main(in, out);
  }
  close(c2s[1]);  // EOF ends the server's request loop
  close(s2c[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  const int server_rc = WIFEXITED(status) ? WEXITSTATUS(status) : 1;
  std::printf("server exited %d, client exited %d\n", server_rc, rc);
  return rc != 0 ? rc : server_rc;
#else
  std::printf("serve_inference needs POSIX pipes/fork; see tests/test_wire.cpp for the "
              "in-process round trip\n");
  return 0;
#endif
}
