// Encrypted-inference serving demo over the sp::serve layer: a client (key
// owner) and a server (model owner) exchange protocol messages (one sp::io
// blob per frame); only public key material and ciphertexts ever cross the
// boundary, and the model never leaves the server.
//
// Handshake and request loop (serve/protocol.h):
//
//   client -> server   Hello x3: CkksParams | PublicKey | relin KSwitchKey
//   server -> client   SessionReady: rotation-steps blob (id = client id) —
//                      the pipeline's fans plus the executor's packing steps
//   client -> server   GaloisUpload: keys covering exactly those steps
//   client -> server   Request*: ticket id + ciphertext  (until EOF)
//   server -> client   Response*: echoes the ticket; Ok/Rejected/Failed
//
// Server-side, requests flow through a SessionRegistry (params-fingerprint
// validation) into an AsyncExecutor that packs up to group_capacity requests
// into ONE ciphertext per flush (group-full or deadline) and answers every
// ticket — responses arrive out of request order and are correlated by id.
// Each response slice is masked, so a request only ever decrypts its own
// output slots even though the batch shared a ciphertext.
//
// By default the two sides run as separate processes (fork + pipes), so the
// round trip proves the blobs carry everything: no pointer, context or key
// survives the process boundary except through sp::io. Exit status 0 iff
// every decrypted response matches the plaintext reference within budget
// AND the masked (foreign) slots decrypt to ~0.
//
// Build & run:  ./build/serve_inference
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "io/serialize.h"
#include "serve/async_executor.h"
#include "serve/protocol.h"
#include "serve/session_registry.h"
#include "smartpaf/fhe_deploy.h"
#include "smartpaf/pipeline.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define SMARTPAF_HAVE_FORK 1
#endif

namespace {

using namespace sp;

/// Slots each request occupies; a protocol constant both sides agree on
/// (a real deployment would advertise it during the handshake).
constexpr int kInputSize = 64;
constexpr int kRequests = 12;
constexpr std::uint64_t kClientId = 1;

/// The served model: linear -> PAF-ReLU -> linear, all slot-wise so each
/// packed request's output depends only on its own slots (window stages
/// would blend neighbouring requests across the packing boundary). It lives
/// server-side; the client-side copy below exists only to compute the
/// plaintext reference for the parity check (a real client would not know
/// the weights and would skip that check).
smartpaf::FhePipeline build_pipeline() {
  sp::Rng rng(41);
  std::vector<double> c(8, 0.0);
  for (int k = 1; k <= 7; k += 2) c[static_cast<std::size_t>(k)] = rng.uniform(-1.0, 1.0) / 8.0;
  return smartpaf::FhePipeline::builder()
      .linear(0.9, 0.0)
      .paf_relu(approx::CompositePaf("deg7", {approx::Polynomial(c)}), 2.0)
      .linear(1.1, -0.02)
      .build();
}

#ifdef SMARTPAF_HAVE_FORK

/// Minimal blocking streambuf over a POSIX file descriptor, so the pipe ends
/// speak the same std::iostream framing as any other channel.
class FdBuf : public std::streambuf {
 public:
  explicit FdBuf(int fd) : fd_(fd) {}

 protected:
  int_type overflow(int_type c) override {
    if (c == traits_type::eof()) return traits_type::not_eof(c);
    const char ch = static_cast<char>(c);
    return ::write(fd_, &ch, 1) == 1 ? c : traits_type::eof();
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    std::streamsize done = 0;
    while (done < n) {
      const ssize_t w = ::write(fd_, s + done, static_cast<std::size_t>(n - done));
      if (w <= 0) break;
      done += w;
    }
    return done;
  }
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    const ssize_t r = ::read(fd_, buf_, sizeof(buf_));
    if (r <= 0) return traits_type::eof();
    setg(buf_, buf_, buf_ + r);
    return traits_type::to_int_type(*gptr());
  }

 private:
  int fd_;
  char buf_[1 << 16];
};

#endif  // SMARTPAF_HAVE_FORK

/// Server side: owns the model, never the secret key.
int server_main(std::istream& in, std::ostream& out) {
  serve::SessionRegistry registry(/*max_sessions=*/4);

  // Hello x3: params, public key, relin key.
  serve::Msg msg;
  sp::check(serve::read_msg(in, msg) && msg.kind == serve::MsgKind::Hello,
            "server: expected Hello (params)");
  auto ctx = std::make_unique<fhe::CkksContext>(io::deserialize_params(msg.payload));
  const fhe::CkksContext& ctx_ref = *ctx;
  sp::check(serve::read_msg(in, msg) && msg.kind == serve::MsgKind::Hello,
            "server: expected Hello (public key)");
  fhe::PublicKey pk = io::deserialize_public_key(msg.payload, ctx_ref);
  sp::check(serve::read_msg(in, msg) && msg.kind == serve::MsgKind::Hello,
            "server: expected Hello (relin key)");
  fhe::KSwitchKey relin = io::deserialize_kswitch_key(msg.payload, ctx_ref);

  auto session = registry.open(kClientId, std::move(ctx), std::move(pk),
                               std::move(relin), fhe::GaloisKeys{});
  sp::check(!session->runtime().has_secret_key(), "server: must not hold a secret key");

  // Responses go out from both the reader thread (admission rejects) and the
  // executor's worker (outcomes); one mutex serializes the frames.
  std::mutex write_mu;
  auto respond = [&](const serve::Msg& m) {
    std::unique_lock<std::mutex> lock(write_mu);
    serve::write_msg(out, m);
  };

  // Executor tickets are its own; map them back to the client's.
  std::mutex ticket_mu;
  std::unordered_map<std::uint64_t, std::uint64_t> tickets;

  serve::ExecutorConfig cfg;
  cfg.input_size = kInputSize;
  cfg.group_capacity = 8;
  cfg.deadline = std::chrono::milliseconds(25);
  cfg.max_queue = 256;
  serve::AsyncExecutor exec(build_pipeline(), cfg, [&](serve::Outcome o) {
    std::uint64_t client_ticket = 0;
    {
      std::unique_lock<std::mutex> lock(ticket_mu);
      client_ticket = tickets.at(o.id);
      tickets.erase(o.id);
    }
    serve::Msg r;
    r.kind = serve::MsgKind::Response;
    r.id = client_ticket;
    if (o.kind == serve::Outcome::Kind::Completed) {
      r.status = serve::ResponseStatus::Ok;
      r.payload = io::serialize(o.result);
    } else {
      r.status = serve::ResponseStatus::Failed;
      r.error = o.error;
    }
    respond(r);
  });

  // Tell the client which Galois keys to mint: the plan's fans plus the
  // executor's packing steps. The plan itself stays server-side.
  {
    serve::Msg ready;
    ready.kind = serve::MsgKind::SessionReady;
    ready.id = kClientId;
    ready.payload = io::serialize_rotation_steps(
        exec.required_rotation_steps(*session), session->runtime().ctx());
    respond(ready);
  }
  sp::check(serve::read_msg(in, msg) && msg.kind == serve::MsgKind::GaloisUpload,
            "server: expected GaloisUpload");
  session->adopt_rotation_keys(
      io::deserialize_galois_keys(msg.payload, session->runtime().ctx()));
  std::printf("server: session %llu ready, %zu rotation keys adopted\n",
              static_cast<unsigned long long>(kClientId),
              session->runtime().rotation_key_count());

  // Request loop until EOF. Every ticket gets an answer: rejected here,
  // completed/failed via the outcome callback.
  while (serve::read_msg(in, msg)) {
    if (msg.kind != serve::MsgKind::Request) continue;
    serve::Msg reply;
    reply.kind = serve::MsgKind::Response;
    reply.id = msg.id;
    try {
      io::WireReader r(msg.payload);
      const io::BlobHeader hdr = io::read_header(r);
      auto sess = registry.find(kClientId, hdr.fingerprint);
      fhe::Ciphertext request =
          io::deserialize_ciphertext(msg.payload, sess->runtime().ctx());
      const serve::Admission adm = exec.submit(sess, std::move(request));
      if (adm.accepted) {
        std::unique_lock<std::mutex> lock(ticket_mu);
        tickets.emplace(adm.id, msg.id);
        continue;
      }
      reply.status = serve::ResponseStatus::Rejected;
      reply.error = adm.reason;
    } catch (const std::exception& e) {
      reply.status = serve::ResponseStatus::Rejected;
      reply.error = e.what();
    }
    respond(reply);
  }

  exec.stop();  // flush the tail; every accepted ticket is answered
  const serve::ExecutorStats st = exec.stats();
  std::printf(
      "server: %llu completed, %llu failed, %llu rejected; flushes full=%llu "
      "deadline=%llu drain=%llu\n",
      static_cast<unsigned long long>(st.completed),
      static_cast<unsigned long long>(st.failed),
      static_cast<unsigned long long>(st.rejected),
      static_cast<unsigned long long>(st.flush_full),
      static_cast<unsigned long long>(st.flush_deadline),
      static_cast<unsigned long long>(st.flush_drain));
  return 0;
}

/// Client side: owns the keys, never the model weights.
int client_main(std::istream& in, std::ostream& out) {
  const fhe::CkksParams params = fhe::CkksParams::for_depth(2048, 8, 40);
  smartpaf::FheRuntime rt(params, /*seed=*/2026);

  auto hello = [&](std::vector<std::uint8_t> blob) {
    serve::Msg m;
    m.kind = serve::MsgKind::Hello;
    m.payload = std::move(blob);
    serve::write_msg(out, m);
  };
  hello(io::serialize(params));
  hello(io::serialize(rt.public_key()));
  hello(io::serialize(rt.relin_key()));

  serve::Msg msg;
  sp::check(serve::read_msg(in, msg) && msg.kind == serve::MsgKind::SessionReady,
            "client: expected SessionReady");
  const std::vector<int> steps = io::deserialize_rotation_steps(msg.payload, rt.ctx());
  std::printf("client: session %llu, server wants keys for %zu rotation steps\n",
              static_cast<unsigned long long>(msg.id), steps.size());
  {
    serve::Msg up;
    up.kind = serve::MsgKind::GaloisUpload;
    up.payload = io::serialize(*rt.rotation_keys(steps));
    serve::write_msg(out, up);
  }

  // Responses come back batched and out of order; read them on their own
  // thread so the server's writes never wait on our request sending.
  std::mutex resp_mu;
  std::map<std::uint64_t, serve::Msg> responses;
  std::thread reader([&] {
    serve::Msg r;
    while (serve::read_msg(in, r)) {
      if (r.kind != serve::MsgKind::Response) continue;
      std::unique_lock<std::mutex> lock(resp_mu);
      responses.emplace(r.id, std::move(r));
      if (responses.size() >= static_cast<std::size_t>(kRequests)) return;
    }
  });

  // Each request fills its own kInputSize slots; the rest stays zero (the
  // server packs requests into the stride layout itself).
  sp::Rng rng(33);
  std::vector<std::vector<double>> sent(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    std::vector<double> slots(rt.ctx().slot_count(), 0.0);
    for (int j = 0; j < kInputSize; ++j)
      slots[static_cast<std::size_t>(j)] = rng.uniform(-1.0, 1.0);
    sent[static_cast<std::size_t>(i)] = slots;
    serve::Msg req;
    req.kind = serve::MsgKind::Request;
    req.id = static_cast<std::uint64_t>(i) + 1;
    req.payload = io::serialize(rt.encrypt(slots));
    serve::write_msg(out, req);
  }
  reader.join();

  // Parity: each response must match the reference on its own slots AND
  // decrypt to ~0 everywhere else (the server-side mask at work). Budget is
  // 2^-18: the pipeline's 2^-20 plus the mask's extra plain-mult + rescale.
  const smartpaf::FhePipeline pipe = build_pipeline();
  const double budget = std::ldexp(1.0, -18);
  double worst = 0.0, worst_foreign = 0.0;
  int answered = 0;
  for (int i = 0; i < kRequests; ++i) {
    const auto ticket = static_cast<std::uint64_t>(i) + 1;
    serve::Msg r;
    {
      std::unique_lock<std::mutex> lock(resp_mu);
      const auto it = responses.find(ticket);
      if (it == responses.end()) continue;
      r = std::move(it->second);
    }
    if (r.status != serve::ResponseStatus::Ok) {
      std::printf("client: ticket %llu %s: %s\n",
                  static_cast<unsigned long long>(ticket),
                  r.status == serve::ResponseStatus::Rejected ? "rejected" : "failed",
                  r.error.c_str());
      continue;
    }
    ++answered;
    const std::vector<double> got =
        rt.decrypt(io::deserialize_ciphertext(r.payload, rt.ctx()));
    const std::vector<double> ref = pipe.reference(sent[static_cast<std::size_t>(i)]);
    for (std::size_t j = 0; j < got.size(); ++j) {
      if (j < static_cast<std::size_t>(kInputSize))
        worst = std::max(worst, std::abs(got[j] - ref[j]));
      else
        worst_foreign = std::max(worst_foreign, std::abs(got[j]));
    }
  }
  std::printf(
      "client: %d/%d answered; max |served - reference| %.2e, max |foreign slot| "
      "%.2e (budget %.2e)\n",
      answered, kRequests, worst, worst_foreign, budget);
  return (answered == kRequests && worst < budget && worst_foreign < budget) ? 0 : 1;
}

}  // namespace

int main() {
#ifdef SMARTPAF_HAVE_FORK
  // Fork BEFORE any FHE work: the child must not inherit a half-built global
  // thread pool (fork keeps only the calling thread).
  int c2s[2], s2c[2];
  sp::check(pipe(c2s) == 0 && pipe(s2c) == 0, "serve_inference: pipe failed");
  const pid_t pid = fork();
  sp::check(pid >= 0, "serve_inference: fork failed");
  if (pid == 0) {
    close(c2s[1]);
    close(s2c[0]);
    FdBuf in_buf(c2s[0]), out_buf(s2c[1]);
    std::istream in(&in_buf);
    std::ostream out(&out_buf);
    const int rc = server_main(in, out);
    close(c2s[0]);
    close(s2c[1]);
    _exit(rc);
  }
  close(c2s[0]);
  close(s2c[1]);
  int rc = 1;
  {
    FdBuf in_buf(s2c[0]), out_buf(c2s[1]);
    std::istream in(&in_buf);
    std::ostream out(&out_buf);
    rc = client_main(in, out);
  }
  close(c2s[1]);  // EOF ends the server's request loop
  close(s2c[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  const int server_rc = WIFEXITED(status) ? WEXITSTATUS(status) : 1;
  std::printf("server exited %d, client exited %d\n", server_rc, rc);
  return rc != 0 ? rc : server_rc;
#else
  std::printf("serve_inference needs POSIX pipes/fork; see tests/test_serve.cpp for the "
              "in-process round trip\n");
  return 0;
#endif
}
