// Encrypted training end to end: logistic regression where the data, the
// weights, the gradients and the optimizer state are all CKKS ciphertexts.
//
//  1. Generate a seeded two-Gaussian binary task and split it into batches.
//  2. Pre-flight the run: TrainPlan validates iterations x per-step depth
//     against the prime chain and fits the sigmoid PAF; the plaintext
//     mirror checks the PAF's fitted range will hold.
//  3. Train under encryption, checkpoint mid-run (BlobKind::TrainingState),
//     resume from the checkpoint bytes, finish training.
//  4. Decrypt the weights and compare against the plaintext mirror and the
//     nn::optim oracle.
//
// Build & run:  ./build/encrypted_training
#include <cmath>
#include <cstdio>

#include "train/checkpoint.h"
#include "train/reference.h"

int main() {
  using namespace sp;

  // --- 1. Data ---------------------------------------------------------------
  data::TwoGaussianSpec spec;
  spec.features = 4;
  spec.train_count = 64;
  spec.test_count = 64;
  const data::TwoGaussianData ds = data::make_two_gaussian(spec);
  const data::DesignMatrix train = data::design_matrix(ds.train);
  const data::DesignMatrix test = data::design_matrix(ds.test);

  train::TrainConfig cfg;
  cfg.features = spec.features;
  cfg.batch = 16;
  cfg.iterations = 3;
  cfg.optimizer = train::Optimizer::SgdMomentum;
  cfg.lr = 0.5;
  const std::vector<train::MiniBatch> batches = train::make_batches(train, cfg.batch);
  std::printf("two-Gaussian task: %d train / %d test rows, %zu batches of %d\n",
              train.rows, test.rows, batches.size(), cfg.batch);

  // --- 2. Pre-flight ---------------------------------------------------------
  // 3 iterations x 4 levels/step (matvec + deg-3 sigmoid + matvec) = 12.
  const fhe::CkksParams params = fhe::CkksParams::for_depth(2048, 12, 40);
  smartpaf::FheRuntime rt(params);
  const train::TrainPlan plan = train::TrainPlan::plan(cfg, rt.ctx());
  std::printf("\n%s\n", plan.describe().c_str());
  train::check_sigmoid_range(plan, batches);  // throws if |z| can leave [-R, R]

  // --- 3. Train / checkpoint / resume ---------------------------------------
  std::vector<train::EncryptedBatch> enc;
  for (int t = 0; t < cfg.iterations; ++t)
    enc.push_back(train::EncryptedBatch::pack(
        batches[static_cast<std::size_t>(t) % batches.size()], plan, rt));

  train::EncryptedLogReg model(plan, rt);
  model.step(enc[0]);
  model.step(enc[1]);

  const std::vector<std::uint8_t> ckpt =
      train::serialize_training_state(model.state());
  std::printf("checkpoint after step 2: %zu bytes (BlobKind::TrainingState)\n",
              ckpt.size());

  train::TrainingState restored =
      train::deserialize_training_state(ckpt, rt.ctx());
  train::EncryptedLogReg resumed(plan, rt, std::move(restored));
  resumed.step(enc[2]);

  // --- 4. Evaluate -----------------------------------------------------------
  const std::vector<double> w = resumed.weights();
  const train::ReferenceRun ref = train::reference_paf_run(plan, batches);
  const train::OracleRun oracle = train::optim_oracle_run(plan, batches);

  double max_dw = 0.0;
  for (std::size_t j = 0; j < w.size(); ++j)
    max_dw = std::max(max_dw, std::abs(w[j] - ref.weights_per_iter.back()[j]));

  std::printf("\n%-28s %10s\n", "run", "test acc");
  std::printf("%-28s %9.1f%%\n", "encrypted (PAF sigmoid)",
              100.0 * train::binary_accuracy(w, test));
  std::printf("%-28s %9.1f%%\n", "plaintext PAF mirror",
              100.0 * train::binary_accuracy(ref.weights_per_iter.back(), test));
  std::printf("%-28s %9.1f%%\n", "nn::optim oracle (true sigma)",
              100.0 * train::binary_accuracy(oracle.weights_per_iter.back(), test));
  std::printf("\nencrypted vs mirror weights: max |dw| = %.3e "
              "(CKKS noise only; the PAF error cancels out)\n", max_dw);
  return 0;
}
