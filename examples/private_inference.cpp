// Private inference end-to-end: a 2-layer MLP evaluated *entirely under
// CKKS* — both linear layers (diagonal-free rotate-and-sum matvec) and the
// PAF-ReLU activation — exactly the deployment the paper targets (Fig. 2):
// no operator in the encrypted path is value-dependent.
//
// Pipeline:
//   1. train  Flatten -> Linear(64,16) -> ReLU -> Linear(16,4)  in plaintext
//   2. SMART-PAF: replace the ReLU with a PAF, fine-tune, Static Scaling
//   3. encrypt one input image and run the whole forward pass homomorphically
//   4. compare encrypted logits with the plaintext model's logits
//
// Packing scheme (slots): the 64 input features are replicated once per
// hidden unit (16 blocks of 64 slots). One plaintext multiplication by the
// concatenated W1 rows + a log2(64) rotate-and-sum ladder leaves each hidden
// pre-activation at its block's first slot; a mask zeroes the in-between
// partial sums (they would otherwise blow up inside the PAF polynomial);
// the PAF-ReLU is applied SIMD-style; the second layer repeats the pattern
// with stride-64 rotations.
//
// Build & run:  ./build/examples/private_inference
#include <cstdio>

#include "common/timer.h"
#include "data/synthetic.h"
#include "models/zoo.h"
#include "nn/layers.h"
#include "nn/trainer.h"
#include "smartpaf/fhe_deploy.h"
#include "smartpaf/scheduler.h"

namespace {

constexpr int kFeat = 64;    // 8x8 grayscale input
constexpr int kHidden = 16;
constexpr int kClasses = 4;

/// Extracts {weight, bias} tensors from a Linear layer.
std::pair<const sp::nn::Tensor*, const sp::nn::Tensor*> linear_params(sp::nn::Layer* l) {
  std::vector<sp::nn::Param*> ps;
  l->collect_params(ps);
  return {&ps[0]->value, &ps[1]->value};
}

}  // namespace

int main() {
  using namespace sp;

  // --- 1. data + plaintext training -----------------------------------------
  data::SyntheticSpec spec = data::SyntheticSpec::cifar_like(8);
  spec.channels = 1;
  spec.num_classes = kClasses;
  spec.train_count = 600;
  spec.val_count = 200;
  const data::SyntheticData ds = data::make_synthetic(spec);

  sp::Rng rng(11);
  auto seq = std::make_unique<nn::Sequential>("mlp");
  seq->add(std::make_unique<nn::Flatten>());
  nn::Layer* fc1 = seq->add(std::make_unique<nn::Linear>(kFeat, kHidden, rng, true, "fc1"));
  seq->add(std::make_unique<nn::ReLU>("act"));
  nn::Layer* fc2 = seq->add(std::make_unique<nn::Linear>(kHidden, kClasses, rng, true, "fc2"));
  nn::Model model(std::move(seq), "mlp");

  nn::TrainConfig tc;
  tc.batch_size = 32;
  tc.paf_hp = {5e-3, 0.0, 0.9, 0.999, 1e-8};
  tc.other_hp = {5e-3, 1e-4, 0.9, 0.999, 1e-8};
  {
    nn::Trainer trainer(model, ds.train, ds.val, tc);
    for (int e = 0; e < 10; ++e) trainer.run_epoch();
  }
  std::printf("plaintext model:  val acc %.1f%%\n",
              100.0 * smartpaf::evaluate_accuracy(model, ds.val));

  // --- 2. SMART-PAF conversion ------------------------------------------------
  smartpaf::SchedulerConfig cfg;
  cfg.form = approx::PafForm::ALPHA7;
  cfg.group_epochs = 2;
  cfg.max_groups_per_step = 2;
  cfg.train = tc;
  cfg.train.paf_hp = {1e-3, 0.01, 0.9, 0.999, 1e-8};
  cfg.train.other_hp = {1e-4, 0.1, 0.9, 0.999, 1e-8};
  smartpaf::Scheduler sched(model, ds.train, ds.val, cfg);
  const auto res = sched.run();
  std::printf("PAF model (SS):   val acc %.1f%%\n", 100.0 * res.acc_ss);

  auto pafs = smartpaf::find_paf_layers(model);
  const smartpaf::PafLayerBase* paf_layer = pafs.at(0);
  const double act_scale = paf_layer->static_scale();

  // --- 3. homomorphic forward pass ---------------------------------------------
  std::printf("\nbuilding CKKS runtime (N=8192, depth 12)...\n");
  fhe::CkksParams params = fhe::CkksParams::for_depth(8192, 12, 30);
  params.q_bits[0] = 50;
  params.special_bits = 50;
  smartpaf::FheRuntime rt(params);  // provides context + encoder
  // One standalone key set for the whole pipeline: encryption, relin, and
  // the rotation ladder (block-local steps 1..32, stride-64 steps for the
  // second layer).
  fhe::KeyGenerator kg(rt.ctx(), 2024);
  const fhe::GaloisKeys gk = kg.galois_keys({1, 2, 4, 8, 16, 32, 64, 128, 256, 512});
  fhe::Encryptor enc(rt.ctx(), kg.public_key(), 31);
  fhe::Decryptor dec(rt.ctx(), kg.secret_key());
  const fhe::KSwitchKey relin = kg.relin_key();
  fhe::Evaluator ev(rt.ctx());
  fhe::PafEvaluator pe(rt.ctx(), rt.encoder(), relin);

  const auto [w1, b1] = linear_params(fc1);
  const auto [w2, b2] = linear_params(fc2);

  // Pick one validation sample.
  const nn::Batch sample = ds.val.batch({0});
  const nn::Tensor plain_logits = model.forward(sample.x, false);

  // Pack: input replicated per hidden unit.
  std::vector<double> slots(rt.ctx().slot_count(), 0.0);
  for (int h = 0; h < kHidden; ++h)
    for (int j = 0; j < kFeat; ++j)
      slots[static_cast<std::size_t>(h * kFeat + j)] = sample.x[static_cast<std::size_t>(j)];
  fhe::Ciphertext ct = enc.encrypt(
      rt.encoder().encode(slots, rt.ctx().scale(), rt.ctx().q_count()));

  sp::Timer timer;
  // Layer 1: elementwise W1, rotate-and-sum over each 64-block.
  std::vector<double> w1cat(rt.ctx().slot_count(), 0.0);
  for (int h = 0; h < kHidden; ++h)
    for (int j = 0; j < kFeat; ++j)
      w1cat[static_cast<std::size_t>(h * kFeat + j)] =
          w1->at(h, j);
  ev.multiply_plain_inplace(ct, rt.encoder().encode(w1cat, rt.ctx().scale(), ct.q_count()));
  ev.rescale_inplace(ct);
  for (int k = 1; k < kFeat; k <<= 1) ct = ev.add(ct, ev.rotate(ct, k, gk));
  // Bias + mask: keep only each block's first slot (partial sums elsewhere
  // would explode inside the PAF power ladder).
  std::vector<double> mask(rt.ctx().slot_count(), 0.0);
  for (int h = 0; h < kHidden; ++h) mask[static_cast<std::size_t>(h * kFeat)] = 1.0;
  ev.multiply_plain_inplace(ct, rt.encoder().encode(mask, rt.ctx().scale(), ct.q_count()));
  ev.rescale_inplace(ct);
  std::vector<double> bias1(rt.ctx().slot_count(), 0.0);
  for (int h = 0; h < kHidden; ++h)
    bias1[static_cast<std::size_t>(h * kFeat)] = b1->vec()[static_cast<std::size_t>(h)];
  ev.add_plain_inplace(ct, rt.encoder().encode(bias1, ct.scale, ct.q_count()));

  // PAF-ReLU (SIMD over all slots; zero slots stay zero).
  fhe::EvalStats stats;
  ct = pe.relu(ev, ct, paf_layer->paf(), act_scale, &stats);

  // Layer 2: one masked rotate-and-sum per class over the stride-64 slots.
  std::vector<double> enc_logits(kClasses, 0.0);
  for (int o = 0; o < kClasses; ++o) {
    std::vector<double> w2row(rt.ctx().slot_count(), 0.0);
    for (int h = 0; h < kHidden; ++h)
      w2row[static_cast<std::size_t>(h * kFeat)] = w2->at(o, h);
    fhe::Ciphertext c = ct;
    ev.multiply_plain_inplace(c, rt.encoder().encode(w2row, rt.ctx().scale(), c.q_count()));
    ev.rescale_inplace(c);
    for (int k = kFeat; k < kFeat * kHidden; k <<= 1) c = ev.add(c, ev.rotate(c, k, gk));
    const auto out = rt.encoder().decode(dec.decrypt(c));
    enc_logits[static_cast<std::size_t>(o)] =
        out[0] + b2->vec()[static_cast<std::size_t>(o)];
  }
  const double total_ms = timer.ms();

  // --- 4. comparison -----------------------------------------------------------
  std::printf("\n%8s %14s %14s\n", "class", "plaintext", "encrypted");
  int plain_arg = 0, enc_arg = 0;
  for (int o = 0; o < kClasses; ++o) {
    std::printf("%8d %14.4f %14.4f\n", o, plain_logits.at(0, o),
                enc_logits[static_cast<std::size_t>(o)]);
    if (plain_logits.at(0, o) > plain_logits.at(0, plain_arg)) plain_arg = o;
    if (enc_logits[static_cast<std::size_t>(o)] > enc_logits[static_cast<std::size_t>(enc_arg)])
      enc_arg = o;
  }
  std::printf("\nargmax: plaintext %d, encrypted %d -> %s\n", plain_arg, enc_arg,
              plain_arg == enc_arg ? "MATCH" : "MISMATCH");
  std::printf("end-to-end encrypted forward: %.0f ms (PAF-ReLU alone: %.0f ms, %d ct-mults)\n",
              total_ms, stats.wall_ms, stats.ct_mults);
  return plain_arg == enc_arg ? 0 : 1;
}
