// SMART-PAF end-to-end: take a trained CNN, replace every non-polynomial
// operator (ReLU + MaxPool) with low-degree PAFs, recover accuracy with the
// CT + PA + AT scheduler, convert to Static Scaling and print the
// FHE-deployment report.
//
// Build & run:  ./build/examples/smartpaf_training
#include <cstdio>

#include "data/synthetic.h"
#include "models/zoo.h"
#include "nn/trainer.h"
#include "smartpaf/fhe_deploy.h"
#include "smartpaf/scheduler.h"

int main() {
  using namespace sp;

  // --- a small task + model --------------------------------------------------
  data::SyntheticSpec spec = data::SyntheticSpec::cifar_like(16);
  spec.train_count = 800;
  spec.val_count = 200;
  const data::SyntheticData ds = data::make_synthetic(spec);

  models::ModelConfig mc;
  mc.num_classes = spec.num_classes;
  mc.width = 8;
  nn::Model model = models::cnn7(mc);

  nn::TrainConfig tc;
  tc.batch_size = 32;
  tc.paf_hp = {1e-3, 0.0, 0.9, 0.999, 1e-8};
  tc.other_hp = {1e-3, 1e-4, 0.9, 0.999, 1e-8};
  {
    nn::Trainer trainer(model, ds.train, ds.val, tc);
    for (int e = 0; e < 6; ++e) trainer.run_epoch();
  }
  std::printf("base model:            val acc %.1f%%  (%zu non-poly sites)\n",
              100.0 * smartpaf::evaluate_accuracy(model, ds.val),
              smartpaf::find_nonpoly_sites(model).size());

  // --- the SMART-PAF framework ------------------------------------------------
  smartpaf::SchedulerConfig cfg;
  cfg.form = approx::PafForm::F1SQ_G1SQ;  // the paper's sweet-spot 14-degree PAF
  cfg.group_epochs = 2;
  cfg.max_groups_per_step = 2;
  cfg.train = tc;
  cfg.train.paf_hp = {1e-3, 0.01, 0.9, 0.999, 1e-8};
  cfg.train.other_hp = {1e-4, 0.1, 0.9, 0.999, 1e-8};
  smartpaf::Scheduler sched(model, ds.train, ds.val, cfg);
  const smartpaf::SchedulerResult res = sched.run();

  std::printf("post-replacement:      val acc %.1f%% (before any fine-tuning)\n",
              100.0 * res.initial_acc);
  std::printf("SMART-PAF (DS):        val acc %.1f%% after %d epochs\n",
              100.0 * res.best_acc_ds, res.epochs_run);
  std::printf("SMART-PAF (SS, FHE):   val acc %.1f%% — deployable, no value-dependent ops\n",
              100.0 * res.acc_ss);

  // --- FHE deployment report ---------------------------------------------------
  std::printf("\nper-layer CKKS deployment report (N=4096):\n");
  fhe::CkksParams params = fhe::CkksParams::for_depth(4096, 11, 30);
  params.q_bits[0] = 50;
  params.special_bits = 50;
  smartpaf::FheRuntime rt(params);
  for (const auto& row : smartpaf::deployment_report(model, rt)) {
    std::printf("  %-24s depth %2d  scale %7.2f  %8.1f ms\n", row.path.c_str(),
                row.depth, row.static_scale, row.ms);
  }
  return 0;
}
