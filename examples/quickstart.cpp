// Quickstart: the SmartPAF public API in five minutes.
//
//  1. Build a composite PAF (Table 2 form) and inspect its cost metrics.
//  2. Fit a minimax sign approximation with the Remez engine.
//  3. Evaluate a PAF-ReLU homomorphically under CKKS and compare against
//     the plaintext computation.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "approx/presets.h"
#include "approx/remez.h"
#include "smartpaf/fhe_deploy.h"

int main() {
  using namespace sp;
  using approx::PafForm;

  // --- 1. PAF forms ---------------------------------------------------------
  std::printf("--- PAF forms (Table 2) ---\n");
  for (PafForm form : approx::all_forms()) {
    const approx::CompositePaf paf = approx::make_paf(form);
    std::printf("%-14s degree-sum %2d  mult-depth %2d  max sign err@0.15 %.4f\n",
                approx::form_name(form).c_str(), paf.degree_sum(), paf.mult_depth(),
                paf.sign_error_max(0.15));
  }

  // --- 2. Remez minimax fit ---------------------------------------------------
  std::printf("\n--- Remez minimax fit of sign(x) on [0.1, 1] ---\n");
  for (int degree : {5, 9, 13}) {
    const approx::RemezResult r = approx::remez_sign(degree, 0.1);
    std::printf("degree %2d: minimax error %.3e (%d exchange iterations)\n", degree,
                r.minimax_error, r.iterations);
  }

  // --- 3. Encrypted PAF-ReLU --------------------------------------------------
  std::printf("\n--- Encrypted PAF-ReLU under CKKS (N=4096) ---\n");
  const approx::CompositePaf paf = approx::make_paf(PafForm::F1SQ_G1SQ);
  fhe::CkksParams params = fhe::CkksParams::for_depth(4096, 11, 30);
  params.q_bits[0] = 50;
  params.special_bits = 50;
  smartpaf::FheRuntime rt(params);

  const std::vector<double> inputs = {-2.0, -1.0, -0.25, 0.0, 0.25, 1.0, 2.0};
  std::vector<double> slots(rt.ctx().slot_count(), 0.0);
  std::copy(inputs.begin(), inputs.end(), slots.begin());

  fhe::Ciphertext ct = rt.encrypt(slots);
  fhe::EvalStats stats;
  const fhe::Ciphertext out =
      rt.paf_evaluator().relu(rt.evaluator(), ct, paf, /*input_scale=*/2.0, &stats);
  const std::vector<double> got = rt.decrypt(out);

  std::printf("%8s %12s %12s\n", "x", "relu(x)", "enc-PAF-relu");
  for (std::size_t i = 0; i < inputs.size(); ++i)
    std::printf("%8.2f %12.4f %12.4f\n", inputs[i], std::max(inputs[i], 0.0), got[i]);
  std::printf("\none encrypted ReLU over %zu slots: %.1f ms, %d ct-mults, %d levels\n",
              rt.ctx().slot_count(), stats.wall_ms, stats.ct_mults,
              stats.levels_consumed);
  std::printf("BSGS schedule vs pure ladder: %d vs %d ct-mults (%d saved at equal depth)\n",
              stats.ct_mults, stats.ladder_ct_mults + 1, stats.ct_mults_saved);
  return 0;
}
