// Batched private inference with slot packing: 8 independent requests ride
// one CKKS ciphertext through a windowed PAF-ReLU pipeline, sharing a single
// FheRuntime (keys, NTT tables, Galois keys). The interesting numbers are
// the amortized per-input figures — one packed evaluation costs the same as
// a single-request evaluation, so every homomorphic op divides by the batch.
//
// Shows the three BatchRunner entry points:
//   1. run(batch)          — synchronous packed evaluation
//   2. submit()/drain()    — queue-style serving
//   3. extract()           — per-request ciphertexts via one hoisted fan
//
// Build & run:  ./build/batched_inference
#include <cstdio>

#include "approx/presets.h"
#include "common/rng.h"
#include "smartpaf/batch_runner.h"

int main() {
  using namespace sp;

  // f1∘g2 composite PAF (depth 5) + relu envelope (2) + window (1) = depth 8.
  smartpaf::BatchConfig cfg;
  cfg.paf = approx::make_paf(approx::PafForm::F1_G2);
  cfg.input_scale = 1.0;
  cfg.window = {0.5, 0.5};  // 2-tap smoothing before the activation
  cfg.input_size = 256;     // 8 requests across the 2048 slots of N=4096

  smartpaf::FheRuntime rt(fhe::CkksParams::for_depth(4096, 8, 40), /*seed=*/7);
  smartpaf::BatchRunner runner(rt, cfg);
  std::printf("BatchRunner: N=%zu, input_size=%d, capacity=%d requests/ciphertext\n",
              rt.ctx().n(), runner.input_size(), runner.capacity());

  sp::Rng rng(19);
  std::vector<std::vector<double>> requests(static_cast<std::size_t>(runner.capacity()));
  for (auto& r : requests) {
    r.resize(static_cast<std::size_t>(runner.input_size()));
    for (auto& x : r) x = rng.uniform(-1.0, 1.0);
  }

  // --- 1. synchronous packed evaluation --------------------------------------
  const auto res = runner.run(requests);
  double worst = 0.0;
  for (double e : res.max_error) worst = std::max(worst, e);
  std::printf("\nrun(): %d requests in one ciphertext, %.1f ms total\n",
              res.stats.batch_size, res.stats.total_ms());
  std::printf("  worst per-request error vs plaintext pipeline: %.2e\n", worst);
  std::printf("  whole ciphertext: %d ct-mults, %zu relins, %zu rotations (%zu hoisted)\n",
              res.stats.eval.ct_mults, res.stats.ops.relins.load(),
              res.stats.ops.rotations.load(), res.stats.ops.hoisted_rotations.load());
  const auto per = res.stats.ops_per_input();
  std::printf("  amortized per input: %.2f ms, %.3f ct-mults, %.3f relins, %.3f rotations\n",
              res.stats.ms_per_input(), res.stats.eval_per_input().ct_mults, per.relins,
              per.rotations);

  // --- 2. queue-style serving ------------------------------------------------
  for (int i = 0; i < runner.capacity() + 3; ++i)
    runner.submit(requests[static_cast<std::size_t>(i) % requests.size()]);
  const auto groups = runner.drain();
  std::printf("\nsubmit/drain: %zu queued requests -> %zu packed ciphertexts "
              "(batch sizes: %d, %d)\n",
              static_cast<std::size_t>(runner.capacity() + 3), groups.size(),
              groups[0].stats.batch_size, groups[1].stats.batch_size);

  // --- 3. encrypted per-request extraction -----------------------------------
  const fhe::Ciphertext packed = rt.encrypt(fhe::Encoder::pack_slots(
      requests, static_cast<std::size_t>(runner.input_size()), rt.ctx().slot_count()));
  const fhe::Ciphertext out =
      rt.paf_evaluator().relu(rt.evaluator(), packed, cfg.paf, cfg.input_scale);
  const auto extracted = runner.extract(out, {2, 5});
  const auto slice = rt.decrypt(extracted[1]);
  std::printf("\nextract({2, 5}): request 5's activation now sits at slots [0, %d); "
              "slot 0 = %.4f\n", runner.input_size(), slice[0]);

  std::printf("\ndone.\n");
  return 0;
}
