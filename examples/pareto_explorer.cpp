// Pareto explorer: sweep the Table-2 PAF forms and print, for each, the
// approximation quality, the analytic depth cost and a measured CKKS
// PAF-ReLU latency — a fast way to pick the sweet-spot PAF for a latency
// budget before committing to fine-tuning (the workflow behind Fig. 1).
//
// Usage:  ./build/examples/pareto_explorer [ring_n]   (default 8192)
#include <cstdio>
#include <cstdlib>

#include "smartpaf/fhe_deploy.h"

int main(int argc, char** argv) {
  using namespace sp;
  const std::size_t ring_n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8192;

  std::printf("building CKKS runtime (N=%zu, depth 12)...\n", ring_n);
  smartpaf::FheRuntime rt(fhe::CkksParams::for_depth(ring_n, 12, 40));

  std::printf("\n%-14s %6s %6s %12s %14s %12s\n", "form", "deg", "depth", "err@0.15",
              "latency (ms)", "ms/slot(us)");
  double base_ms = 0.0;
  for (approx::PafForm form : approx::all_forms()) {
    const auto paf = approx::make_paf(form);
    const auto res = smartpaf::measure_paf_relu(rt, paf, 4.0, /*repeats=*/2);
    if (base_ms == 0.0) base_ms = res.ms_median;  // first row = 27-degree baseline
    std::printf("%-14s %6d %6d %12.4f %14.1f %12.2f   (%.2fx speedup)\n",
                approx::form_name(form).c_str(), paf.degree_sum(), paf.mult_depth(),
                paf.sign_error_max(0.15), res.ms_median,
                1000.0 * res.ms_median / static_cast<double>(rt.ctx().slot_count()),
                base_ms / res.ms_median);
  }
  std::printf("\nLower depth -> proportionally lower latency; accuracy recovery for the\n"
              "low-degree rows is SMART-PAF's job (see bench_table3 / bench_fig9).\n");
  return 0;
}
