// End-to-end FhePipeline walkthrough: train-style network construction,
// PAF replacement, Static-Scaling conversion, automatic lowering to a stage
// graph, measured-cost planning (inspectable BEFORE any ciphertext exists),
// and a planned encrypted forward pass checked against the plaintext
// network.
//
//   nn::Sequential{ Window1d -> ReLU -> Window1d(1 tap) -> MaxPool1d }
//     | smartpaf::replace_all + set_static_scale      (PAF sites)
//     | FhePipeline::lower                            (stage graph)
//     | CostModel::calibrate + Planner::plan          (schedule choice)
//     | FhePipeline::run                              (one ciphertext)
//
// Build & run:  ./build/pipeline_inference
#include <cmath>
#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "nn/container.h"
#include "nn/layers.h"
#include "smartpaf/fhe_deploy.h"
#include "smartpaf/pipeline.h"
#include "smartpaf/pipeline_planner.h"
#include "smartpaf/replace.h"

int main() {
  using namespace sp;

  // --- 1. a slot-aligned network with two non-polynomial sites ---------------
  auto seq = std::make_unique<nn::Sequential>("net");
  seq->add(std::make_unique<nn::Window1d>(std::vector<float>{0.5f, 0.3f, 0.2f}, 0.0f,
                                          "conv"));
  seq->add(std::make_unique<nn::ReLU>("act"));
  seq->add(std::make_unique<nn::Window1d>(std::vector<float>{0.7f}, 0.0f, "scale"));
  seq->add(std::make_unique<nn::MaxPool1d>(2, "pool"));
  nn::Model model(std::move(seq), "two-act");

  // --- 2. replace ReLU/MaxPool with trainable PAFs, freeze the scales --------
  smartpaf::ReplaceOptions opts;
  opts.form = approx::PafForm::F1_G2;  // depth-5 composite
  smartpaf::replace_all(model, opts);
  for (smartpaf::PafLayerBase* p : smartpaf::find_paf_layers(model))
    p->set_static_scale(2.0f);  // in training this is the observed running max
  std::printf("replaced %zu PAF sites (Static Scaling)\n",
              smartpaf::find_paf_layers(model).size());

  // --- 3. lower to a stage graph --------------------------------------------
  const auto pipe = smartpaf::FhePipeline::lower(model);
  std::printf("lowered to %zu stages, literal depth %d levels\n", pipe.stages().size(),
              pipe.mult_depth());

  // --- 4. plan against the parameter set (no keys needed yet) ----------------
  // window 1 + relu (5+2) + folded linear + pairwise max (5+2) = 15 levels.
  const fhe::CkksParams params = fhe::CkksParams::for_depth(4096, 16, 40);
  smartpaf::FheRuntime rt(params, /*seed=*/7);
  const smartpaf::CostModel cm = smartpaf::CostModel::load_or_calibrate(
      rt, "bench_out/cost_model_example.json", /*repeats=*/3);
  const auto plan = smartpaf::Planner::plan(pipe, rt.ctx(), cm);
  std::printf("\n%s\n", plan.describe().c_str());

  // --- 5. one encrypted forward pass vs the plaintext network ----------------
  const auto w = static_cast<int>(rt.ctx().slot_count());
  sp::Rng rng(19);
  nn::Tensor x({1, w});
  std::vector<double> slots(static_cast<std::size_t>(w));
  for (int j = 0; j < w; ++j) {
    x.at(0, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
    slots[static_cast<std::size_t>(j)] = static_cast<double>(x.at(0, j));
  }
  const nn::Tensor expect = model.forward(x, /*train=*/false);

  fhe::EvalStats stats;
  const fhe::Ciphertext out = pipe.run(rt, plan, rt.encrypt(slots), &stats);
  const std::vector<double> got = rt.decrypt(out);

  double worst = 0.0;
  for (int j = 0; j < w; ++j)
    worst = std::max(worst, std::abs(got[static_cast<std::size_t>(j)] -
                                     static_cast<double>(expect.at(0, j))));
  std::printf("encrypted forward: %.1f ms PAF evaluation, %d ct-mults, %zu rotation keys\n",
              stats.wall_ms, stats.ct_mults, rt.rotation_key_count());
  std::printf("max |encrypted - plaintext nn| over %d slots: %.2e (budget 2^-20 = %.2e)\n",
              w, worst, std::ldexp(1.0, -20));
  return worst < std::ldexp(1.0, -20) ? 0 : 1;
}
