#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace sp {

/// Fixed-size thread pool driving `parallel_for` over index ranges.
///
/// Design goals, in order: (1) results bit-identical to the serial path for
/// any thread count — bodies own disjoint indices and every index runs
/// exactly once, so data-parallel loops over independent rows/digits are
/// deterministic by construction; (2) exact serial execution when sized to 1
/// thread (no pool machinery on the hot path); (3) safe nesting — a
/// parallel_for issued from inside a pool worker (or from inside another
/// parallel_for on the caller thread) runs inline, so callees never deadlock
/// on the pool they are already occupying.
///
/// The process-wide pool (`ThreadPool::global()`) is sized from the
/// SMARTPAF_THREADS environment variable: unset or invalid means hardware
/// concurrency, 1 means the exact serial path. Tests and benchmarks resize it
/// at runtime with `set_global_threads`.
class ThreadPool {
 public:
  /// `threads` = total parallelism including the calling thread (>= 1);
  /// the pool owns `threads - 1` workers.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  /// Runs body(i) for every i in [begin, end). The caller participates;
  /// indices are claimed atomically so load balances across lanes. The first
  /// exception thrown by any lane is rethrown on the caller after all lanes
  /// quiesce (remaining indices are abandoned). Reentrant calls run inline.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Process-wide pool, created on first use with `env_threads()` lanes.
  static ThreadPool& global();

  /// Re-sizes the global pool (tests / bench sweeps). Must not be called
  /// while a parallel_for is in flight on it — enforced: throws sp::Error
  /// when any global parallel_for is still running instead of destroying a
  /// pool whose lanes are live.
  static void set_global_threads(int threads);

  /// SMARTPAF_THREADS, clamped to [1, 256]; hardware concurrency when the
  /// variable is unset or unparsable.
  static int env_threads();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;  // null when threads_ == 1
  int threads_;
};

/// parallel_for on the process-wide pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

}  // namespace sp
