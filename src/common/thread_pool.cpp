#include "common/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"

namespace sp {
namespace {

/// Nesting depth on this thread: > 0 inside a parallel_for lane (worker or
/// caller), where further parallel_for calls must run inline.
thread_local int tls_parallel_depth = 0;

struct InlineScope {
  InlineScope() { ++tls_parallel_depth; }
  ~InlineScope() { --tls_parallel_depth; }
};

void run_serial(std::size_t begin, std::size_t end,
                const std::function<void(std::size_t)>& body) {
  InlineScope scope;
  for (std::size_t i = begin; i < end; ++i) body(i);
}

}  // namespace

struct ThreadPool::Impl {
  std::vector<std::thread> workers;

  std::mutex mu;
  std::condition_variable cv_work;  // workers wait for a new generation
  std::condition_variable cv_done;  // caller waits for lanes to quiesce
  std::uint64_t generation = 0;
  int working = 0;   // workers still inside the current generation
  bool busy = false;  // a caller currently owns the task slot
  bool stop = false;

  // Current task; `next` hands out indices so lanes load-balance while every
  // index still runs exactly once (determinism does not depend on which lane
  // claims which index — bodies only touch index-owned data).
  std::atomic<std::size_t> next{0};
  std::size_t end = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::exception_ptr error;

  void run_indices() {
    InlineScope scope;
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed); i < end;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      try {
        (*body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu);
        if (!error) error = std::current_exception();
        // Abandon the remaining range; the caller rethrows after the join.
        next.store(end, std::memory_order_relaxed);
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mu);
        cv_work.wait(lk, [&] { return stop || generation != seen; });
        if (stop) return;
        seen = generation;
      }
      run_indices();
      {
        std::lock_guard<std::mutex> lk(mu);
        if (--working == 0) cv_done.notify_one();
      }
    }
  }
};

ThreadPool::ThreadPool(int threads) : threads_(threads) {
  sp::check(threads >= 1, "ThreadPool: thread count must be >= 1");
  if (threads_ == 1) return;  // exact serial path, no machinery
  impl_ = std::make_unique<Impl>();
  impl_->workers.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i)
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
}

ThreadPool::~ThreadPool() {
  if (!impl_) return;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv_work.notify_all();
  for (auto& w : impl_->workers) w.join();
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t count = end - begin;
  // Serial pool, nested call, or a trivial range: run inline. (A concurrent
  // parallel_for from a second user thread also degrades to inline via the
  // dispatch mutex try-lock below — never wrong, only less parallel.)
  if (!impl_ || count == 1 || tls_parallel_depth > 0) {
    run_serial(begin, end, body);
    return;
  }

  std::unique_lock<std::mutex> lk(impl_->mu);
  if (impl_->busy) {  // another caller owns the pool right now
    lk.unlock();
    run_serial(begin, end, body);
    return;
  }
  impl_->busy = true;
  impl_->next.store(begin, std::memory_order_relaxed);
  impl_->end = end;
  impl_->body = &body;
  impl_->error = nullptr;
  impl_->working = static_cast<int>(impl_->workers.size());
  ++impl_->generation;
  lk.unlock();
  impl_->cv_work.notify_all();

  impl_->run_indices();  // the caller is a lane too

  lk.lock();
  impl_->cv_done.wait(lk, [&] { return impl_->working == 0; });
  impl_->body = nullptr;
  impl_->busy = false;
  if (impl_->error) {
    std::exception_ptr err = impl_->error;
    impl_->error = nullptr;
    lk.unlock();
    std::rethrow_exception(err);
  }
}

namespace {

std::mutex g_global_mu;
std::unique_ptr<ThreadPool> g_global_pool;
// Lock-free fast path for global(): hot loops hit it once per RnsPoly op.
std::atomic<ThreadPool*> g_global_ptr{nullptr};
// parallel_for calls currently running on the global pool. Guards
// set_global_threads: swapping the pool out from under an in-flight run
// would destroy a pool whose workers are mid-range (use-after-free), so
// misuse fails loudly instead of corrupting memory. The serial path counts
// too — a 1-thread global pool is still the object an in-flight run holds.
std::atomic<int> g_global_inflight{0};

struct InflightScope {
  InflightScope() { g_global_inflight.fetch_add(1, std::memory_order_relaxed); }
  ~InflightScope() { g_global_inflight.fetch_sub(1, std::memory_order_relaxed); }
};

}  // namespace

ThreadPool& ThreadPool::global() {
  if (ThreadPool* p = g_global_ptr.load(std::memory_order_acquire)) return *p;
  std::lock_guard<std::mutex> lk(g_global_mu);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(env_threads());
    g_global_ptr.store(g_global_pool.get(), std::memory_order_release);
  }
  return *g_global_pool;
}

void ThreadPool::set_global_threads(int threads) {
  sp::check(threads >= 1, "ThreadPool: thread count must be >= 1");
  sp::check(g_global_inflight.load(std::memory_order_relaxed) == 0,
            "ThreadPool::set_global_threads: a parallel_for is in flight on "
            "the global pool; resizing now would destroy a pool whose lanes "
            "are still running. Quiesce all parallel work first.");
  std::lock_guard<std::mutex> lk(g_global_mu);
  if (g_global_pool && g_global_pool->threads() == threads) return;
  g_global_ptr.store(nullptr, std::memory_order_release);
  g_global_pool = std::make_unique<ThreadPool>(threads);
  g_global_ptr.store(g_global_pool.get(), std::memory_order_release);
}

int ThreadPool::env_threads() {
  const char* env = std::getenv("SMARTPAF_THREADS");
  long v = 0;
  if (env && *env) {
    char* rest = nullptr;
    v = std::strtol(env, &rest, 10);
    if (rest == env || (rest && *rest != '\0')) v = 0;
  }
  if (v < 1) {
    const unsigned hw = std::thread::hardware_concurrency();
    v = hw == 0 ? 1 : static_cast<long>(hw);
  }
  if (v > 256) v = 256;
  return static_cast<int>(v);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  // Nested calls run inline without ever touching the global pool — lanes
  // inside a parallel region (every RnsPoly op under a parallel digit loop)
  // must not contend on the pool's state.
  if (end <= begin) return;
  if (tls_parallel_depth > 0 || end - begin == 1) {
    run_serial(begin, end, body);
    return;
  }
  InflightScope inflight;
  ThreadPool::global().parallel_for(begin, end, body);
}

}  // namespace sp
