#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace sp {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ ? mean_ : 0.0; }

double RunningStats::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

}  // namespace sp
