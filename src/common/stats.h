#pragma once

#include <cstddef>
#include <vector>

namespace sp {

/// Streaming summary statistics (count / mean / min / max / stddev).
class RunningStats {
 public:
  /// Folds one observation into the summary.
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  double min() const { return min_; }
  double max() const { return max_; }
  /// Sample standard deviation (0 for fewer than 2 observations).
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Median of `v` (by copy; v may be unsorted). Returns 0 for empty input.
double median(std::vector<double> v);

/// p-th percentile (0..100) by nearest-rank on a copy of `v`.
double percentile(std::vector<double> v, double p);

}  // namespace sp
