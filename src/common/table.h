#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sp {

/// Console table printer with aligned columns, used by the benchmark
/// harnesses to print paper-style tables, plus CSV export for plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with `prec` digits after the point.
  static std::string num(double v, int prec = 2);

  /// Renders the table with a rule under the header.
  void print(std::ostream& os) const;

  /// Writes the table as CSV to `path` (creates parent-less file).
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sp
