#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace sp {

/// Deterministic random number generator used throughout the library.
///
/// Every stochastic component (dataset synthesis, weight init, encryption
/// noise, dropout, ...) takes an explicit Rng so experiments are exactly
/// reproducible from a seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : gen_(seed) {}

  /// Seeds the engine's full state from a std::seed_seq — the entropy-pooling
  /// path (e.g. several std::random_device draws) for streams that must be
  /// unpredictable rather than reproducible. A single u64 seed can only ever
  /// select 2^64 of the engine's states; seed_seq::generate spreads the
  /// pooled words across the whole state vector.
  explicit Rng(std::seed_seq& seq) : gen_(seq) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  /// Standard normal (mean 0, stddev 1) scaled by `stddev`.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t randint(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
  }

  /// Uniform 64-bit word.
  std::uint64_t next_u64() { return gen_(); }

  /// Uniform element of {-1, 0, 1} (ternary secret distribution).
  int ternary() { return static_cast<int>(randint(-1, 1)); }

  /// Bernoulli(p).
  bool coin(double p) { return uniform() < p; }

  /// Fisher-Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), gen_);
  }

  /// Underlying engine, for std distributions not wrapped above.
  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace sp
