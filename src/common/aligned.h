#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace sp {

/// Minimal over-aligned allocator (C++17 aligned operator new). The RNS
/// backend stores all residue rows of a polynomial in one buffer allocated
/// through this so SIMD kernels see 64-byte (cache-line / AVX-512 register)
/// aligned row starts whenever the row stride is a multiple of 8 elements.
template <typename T, std::size_t Align = 64>
struct AlignedAlloc {
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "AlignedAlloc: alignment must be a power of two >= alignof(T)");
  using value_type = T;

  AlignedAlloc() = default;
  template <typename U>
  AlignedAlloc(const AlignedAlloc<U, Align>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAlloc<U, Align>;
  };
};

template <typename T, typename U, std::size_t A>
bool operator==(const AlignedAlloc<T, A>&, const AlignedAlloc<U, A>&) {
  return true;
}
template <typename T, typename U, std::size_t A>
bool operator!=(const AlignedAlloc<T, A>&, const AlignedAlloc<U, A>&) {
  return false;
}

template <typename T>
using AlignedVec = std::vector<T, AlignedAlloc<T, 64>>;

}  // namespace sp
