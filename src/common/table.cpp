#include "common/table.h"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace sp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  check(row.size() == header_.size(), "Table::add_row: arity mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  check(f.good(), "Table::write_csv: cannot open " + path);
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) f << ',';
      f << row[c];
    }
    f << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace sp
