#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sp {

/// Error thrown by all library-level invariant violations.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws sp::Error with `msg` when `cond` is false.
///
/// Used for precondition/invariant checking on public API boundaries; cheap
/// enough to keep enabled in release builds.
inline void check(bool cond, const std::string& msg) {
  if (!cond) throw Error(msg);
}

/// check() with a lazily-formatted message built from stream operands.
template <typename... Parts>
void check_fmt(bool cond, const Parts&... parts) {
  if (!cond) {
    std::ostringstream os;
    (os << ... << parts);
    throw Error(os.str());
  }
}

}  // namespace sp
