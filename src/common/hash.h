#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace sp {

/// FNV-1a mixing, shared by every content-fingerprint producer (diagonal
/// matmul plaintext keys, compaction masks, per-slot linear coefficients) so
/// the constants live in exactly one place.
constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * kFnvPrime;
}

inline std::uint64_t fnv_double(std::uint64_t h, double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return fnv_mix(h, bits);
}

inline std::uint64_t fnv_doubles(std::uint64_t h, const std::vector<double>& v) {
  for (double d : v) h = fnv_double(h, d);
  return h;
}

}  // namespace sp
