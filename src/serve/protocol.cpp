#include "serve/protocol.h"

#include "common/check.h"

namespace sp::serve {

std::vector<std::uint8_t> pack_msg(const Msg& msg) {
  io::WireWriter w;
  w.u8(static_cast<std::uint8_t>(msg.kind));
  w.u64(msg.id);
  w.u8(static_cast<std::uint8_t>(msg.status));
  w.str(msg.error);
  std::vector<std::uint8_t> out = w.take();
  out.insert(out.end(), msg.payload.begin(), msg.payload.end());
  return out;
}

Msg unpack_msg(const std::vector<std::uint8_t>& bytes) {
  io::WireReader r(bytes);
  Msg msg;
  const std::uint8_t kind = r.u8();
  sp::check_fmt(kind >= 1 && kind <= 5, "protocol: unknown message kind ", int(kind));
  msg.kind = static_cast<MsgKind>(kind);
  msg.id = r.u64();
  const std::uint8_t status = r.u8();
  sp::check_fmt(status <= 2, "protocol: unknown response status ", int(status));
  msg.status = static_cast<ResponseStatus>(status);
  msg.error = r.str();
  msg.payload.assign(bytes.end() - static_cast<std::ptrdiff_t>(r.remaining()),
                     bytes.end());
  return msg;
}

void write_msg(std::ostream& os, const Msg& msg) {
  io::write_frame(os, pack_msg(msg));
}

bool read_msg(std::istream& is, Msg& msg, std::uint32_t max_bytes) {
  std::vector<std::uint8_t> frame;
  if (!io::read_frame(is, frame, max_bytes)) return false;
  msg = unpack_msg(frame);
  return true;
}

}  // namespace sp::serve
