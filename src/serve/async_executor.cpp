#include "serve/async_executor.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/hash.h"

namespace sp::serve {

AsyncExecutor::AsyncExecutor(smartpaf::FhePipeline pipeline, ExecutorConfig cfg,
                             OutcomeCallback on_outcome)
    : pipeline_(std::move(pipeline)), cfg_(cfg), on_outcome_(std::move(on_outcome)) {
  sp::check(on_outcome_ != nullptr, "AsyncExecutor: an outcome callback is required");
  sp::check(cfg_.input_size >= 1, "AsyncExecutor: input_size must be >= 1");
  sp::check(cfg_.group_capacity >= 1, "AsyncExecutor: group_capacity must be >= 1");
  sp::check(cfg_.max_queue >= 1, "AsyncExecutor: max_queue must be >= 1");
  sp::check(cfg_.deadline.count() >= 0, "AsyncExecutor: deadline must be >= 0");
  worker_ = std::thread([this] { worker_loop(); });
}

AsyncExecutor::~AsyncExecutor() { stop(); }

void AsyncExecutor::stop() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

Admission AsyncExecutor::submit(std::shared_ptr<Session> session,
                                fhe::Ciphertext request) {
  auto reject = [this](std::string reason) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++stats_.rejected;
    }
    return Admission{false, 0, std::move(reason)};
  };
  if (!session) return reject("no session (open one before submitting)");
  const fhe::CkksContext& ctx = session->runtime().ctx();
  if (request.size() != 2) {
    std::ostringstream os;
    os << "request ciphertext has " << request.size()
       << " parts; submit a 2-part (relinearized) ciphertext";
    return reject(os.str());
  }
  if (request.q_count() != ctx.q_count()) {
    std::ostringstream os;
    os << "request ciphertext at " << request.q_count() << " primes, expected the full "
       << ctx.q_count() << "-prime chain (encrypt at top level)";
    return reject(os.str());
  }
  if (request.scale != ctx.scale()) {
    std::ostringstream os;
    os << "request scale " << request.scale << " differs from the context scale "
       << ctx.scale() << "; packed slots must share one scale";
    return reject(os.str());
  }

  std::unique_lock<std::mutex> lock(mu_);
  if (stop_) {
    ++stats_.rejected;
    return Admission{false, 0, "executor is stopping; no new work accepted"};
  }
  if (queue_.size() >= cfg_.max_queue) {
    ++stats_.rejected;
    std::ostringstream os;
    os << "saturated: " << queue_.size() << " requests pending (max_queue "
       << cfg_.max_queue << "); back off and retry";
    return Admission{false, 0, os.str()};
  }
  Pending p;
  p.id = next_id_++;
  p.session = std::move(session);
  p.request = std::move(request);
  p.enqueued = std::chrono::steady_clock::now();
  const std::uint64_t id = p.id;
  queue_.push_back(std::move(p));
  ++stats_.submitted;
  lock.unlock();
  cv_.notify_all();
  return Admission{true, id, ""};
}

std::vector<int> AsyncExecutor::required_rotation_steps(Session& session) {
  std::vector<int> steps = plan_for(session).plan->rotation_steps();
  if (cfg_.group_capacity > 1) {
    steps.push_back(cfg_.input_size);
    steps.push_back(-cfg_.input_size);
  }
  std::sort(steps.begin(), steps.end());
  steps.erase(std::unique(steps.begin(), steps.end()), steps.end());
  return steps;
}

ExecutorStats AsyncExecutor::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  return stats_;
}

std::size_t AsyncExecutor::pending() const {
  std::unique_lock<std::mutex> lock(mu_);
  return queue_.size();
}

const AsyncExecutor::SessionPlan& AsyncExecutor::plan_for(Session& session) {
  std::unique_lock<std::mutex> lock(plan_mu_);
  auto it = plans_.find(session.client_id());
  if (it != plans_.end()) return it->second;

  const fhe::CkksContext& ctx = session.runtime().ctx();
  const std::size_t slots = ctx.slot_count();
  const auto stride = static_cast<std::size_t>(cfg_.input_size);
  sp::check_fmt(stride <= slots && slots % stride == 0,
                "AsyncExecutor: input_size ", cfg_.input_size, " must tile the ", slots,
                "-slot vector (packed requests repeat at this stride)");
  sp::check_fmt(static_cast<std::size_t>(cfg_.group_capacity) <= slots / stride,
                "AsyncExecutor: group_capacity ", cfg_.group_capacity, " exceeds the ",
                slots / stride, " requests that fit the ciphertext");

  smartpaf::PlanOptions popts;
  popts.pack_stride = stride;
  auto plan = std::make_shared<const smartpaf::Plan>(smartpaf::Planner::plan(
      pipeline_, ctx, smartpaf::CostModel::heuristic(), popts));
  if (cfg_.mask_responses)
    sp::check_fmt(plan->chain_levels - plan->levels_used >= 1,
                  "AsyncExecutor: response masking needs one level beyond the "
                  "pipeline's ",
                  plan->levels_used, " but the chain offers ", plan->chain_levels,
                  "; deepen the chain or disable mask_responses");

  SessionPlan sp;
  sp.plan = std::move(plan);
  sp.output_width = pipeline_.output_width(stride);
  // unordered_map references survive rehashing and entries are never erased,
  // so handing out a reference under a released lock is safe. The cache
  // grows one small Plan per tenant ever seen — bytes, not key material.
  return plans_.emplace(session.client_id(), std::move(sp)).first->second;
}

void AsyncExecutor::worker_loop() {
  // Head-session group readiness: the next flush always serves the session
  // of the OLDEST pending request (FIFO fairness across tenants).
  auto group_ready = [this] {
    if (queue_.empty()) return false;
    const std::uint64_t cid = queue_.front().session->client_id();
    std::size_t count = 0;
    for (const Pending& p : queue_)
      if (p.session->client_id() == cid &&
          ++count >= static_cast<std::size_t>(cfg_.group_capacity))
        return true;
    return false;
  };

  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    const auto flush_at = queue_.front().enqueued + cfg_.deadline;
    cv_.wait_until(lock, flush_at, [&] { return stop_ || group_ready(); });

    FlushReason reason = FlushReason::Deadline;
    if (group_ready())
      reason = FlushReason::Full;
    else if (stop_)
      reason = FlushReason::Drain;
    std::vector<Pending> group = take_group();
    if (group.empty()) continue;
    switch (reason) {
      case FlushReason::Full: ++stats_.flush_full; break;
      case FlushReason::Deadline: ++stats_.flush_deadline; break;
      case FlushReason::Drain: ++stats_.flush_drain; break;
    }

    lock.unlock();
    evaluate_group(std::move(group), reason);
    lock.lock();
  }
}

std::vector<AsyncExecutor::Pending> AsyncExecutor::take_group() {
  std::vector<Pending> group;
  if (queue_.empty()) return group;
  const std::uint64_t cid = queue_.front().session->client_id();
  group.reserve(static_cast<std::size_t>(cfg_.group_capacity));
  for (auto it = queue_.begin();
       it != queue_.end() &&
       group.size() < static_cast<std::size_t>(cfg_.group_capacity);) {
    if (it->session->client_id() == cid) {
      group.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return group;
}

void AsyncExecutor::evaluate_group(std::vector<Pending> group, FlushReason reason) {
  Session& session = *group.front().session;
  std::vector<std::uint64_t> ids;
  ids.reserve(group.size());
  for (const Pending& p : group) ids.push_back(p.id);

  try {
    if (eval_hook_) eval_hook_(ids);
    const SessionPlan& sp = plan_for(session);
    smartpaf::FheRuntime& rt = session.runtime();
    fhe::Evaluator& ev = rt.evaluator();
    const int s = cfg_.input_size;
    const std::size_t k = group.size();

    // Chained Horner packing: request b ends at slot offset b*s having spent
    // only the step -s Galois key (see the class comment). k = 1 skips the
    // key fetch entirely — the unbatched baseline pays zero rotations.
    std::shared_ptr<const fhe::GaloisKeys> gk;
    if (k > 1) gk = rt.rotation_keys({-s, s});
    fhe::Ciphertext packed = std::move(group.back().request);
    for (std::size_t b = k - 1; b-- > 0;) {
      fhe::Ciphertext shifted = ev.rotate(packed, -s, *gk);
      ev.add_inplace(shifted, group[b].request);
      packed = std::move(shifted);
    }

    fhe::Ciphertext out = pipeline_.run(rt, *sp.plan, packed, nullptr);

    // Response mask: 1 over the request's own output slots, 0 elsewhere —
    // without it, a response slice still carries the neighbouring requests'
    // slots under the shared batch key. Cached per (stride, width, chain
    // position); the shared_ptr pin keeps it valid across cache churn.
    std::shared_ptr<const fhe::Plaintext> mask;
    if (cfg_.mask_responses) {
      const std::size_t slots = rt.ctx().slot_count();
      std::uint64_t key = sp::fnv_mix(sp::kFnvOffset, 0x73657276656d61ULL);  // "servema"
      key = sp::fnv_mix(key, static_cast<std::uint64_t>(s));
      key = sp::fnv_mix(key, sp.output_width);
      key = sp::fnv_mix(key, slots);
      mask = rt.encoder().encode_cached(key, rt.ctx().scale(), out.q_count(), [&] {
        std::vector<double> m(slots, 0.0);
        for (std::size_t j = 0; j < sp.output_width; ++j) m[j] = 1.0;
        return m;
      });
    }

    // Chained extraction: response b is the packed output rotated left b
    // times by s — again only the step +s key, whatever the group size.
    // Responses are staged before any callback fires so the stats counters
    // can be bumped first: a caller that has observed the group's last
    // outcome must also observe the counters it implies.
    std::vector<fhe::Ciphertext> responses;
    responses.reserve(k);
    fhe::Ciphertext slice = std::move(out);
    for (std::size_t b = 0; b < k; ++b) {
      if (b > 0) slice = ev.rotate(slice, s, *gk);
      fhe::Ciphertext resp = slice;
      if (mask) {
        ev.multiply_plain_inplace(resp, *mask);
        ev.rescale_inplace(resp);
      }
      responses.push_back(std::move(resp));
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      stats_.completed += k;
    }
    for (std::size_t b = 0; b < k; ++b) {
      Outcome o;
      o.kind = Outcome::Kind::Completed;
      o.id = group[b].id;
      o.client_id = session.client_id();
      o.result = std::move(responses[b]);
      o.batch_size = static_cast<int>(k);
      o.flush = reason;
      on_outcome_(std::move(o));
    }
  } catch (const std::exception& e) {
    // The whole group shares one packed ciphertext, so a failure loses every
    // request in it — each id gets an explicit Failed outcome (the serving
    // layer NACKs them; nothing is dropped silently).
    {
      std::unique_lock<std::mutex> lock(mu_);
      stats_.failed += ids.size();
    }
    for (const std::uint64_t id : ids) {
      Outcome o;
      o.kind = Outcome::Kind::Failed;
      o.id = id;
      o.client_id = session.client_id();
      o.error = e.what();
      o.batch_size = static_cast<int>(group.size());
      o.flush = reason;
      on_outcome_(std::move(o));
    }
  }
}

}  // namespace sp::serve
