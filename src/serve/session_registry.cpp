#include "serve/session_registry.h"

#include <utility>

#include "common/check.h"
#include "io/serialize.h"

namespace sp::serve {

Session::Session(std::uint64_t client_id, std::unique_ptr<fhe::CkksContext> ctx,
                 fhe::PublicKey pk, fhe::KSwitchKey relin, fhe::GaloisKeys galois)
    : client_id_(client_id),
      fingerprint_(io::params_fingerprint(ctx->params())),
      rt_(std::move(ctx), std::move(pk), std::move(relin), std::move(galois)) {}

SessionRegistry::SessionRegistry(std::size_t max_sessions)
    : max_sessions_(max_sessions) {
  sp::check(max_sessions_ >= 1, "SessionRegistry: max_sessions must be >= 1");
}

std::shared_ptr<Session> SessionRegistry::open(std::uint64_t client_id,
                                               std::unique_ptr<fhe::CkksContext> ctx,
                                               fhe::PublicKey pk, fhe::KSwitchKey relin,
                                               fhe::GaloisKeys galois) {
  auto session = std::make_shared<Session>(client_id, std::move(ctx), std::move(pk),
                                           std::move(relin), std::move(galois));
  std::unique_lock<std::mutex> lock(mu_);
  if (auto it = sessions_.find(client_id); it != sessions_.end()) {
    // Re-open replaces the old session (fresh key material wins) without
    // counting as an eviction.
    lru_.erase(it->second.lru_it);
    sessions_.erase(it);
  }
  while (sessions_.size() >= max_sessions_) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    sessions_.erase(victim);
    ++evictions_;
  }
  lru_.push_front(client_id);
  sessions_.emplace(client_id, Entry{session, lru_.begin()});
  return session;
}

std::shared_ptr<Session> SessionRegistry::find(std::uint64_t client_id,
                                               std::uint64_t fingerprint) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = sessions_.find(client_id);
  sp::check_fmt(it != sessions_.end(), "SessionRegistry: no session for client ",
                client_id, " (never opened, or evicted — re-send the key material)");
  sp::check_fmt(it->second.session->fingerprint() == fingerprint,
                "SessionRegistry: client ", client_id, " request fingerprint ",
                fingerprint, " does not match the session's parameter set (",
                it->second.session->fingerprint(),
                "); the blob was produced under a different ring/chain");
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.session;
}

void SessionRegistry::close(std::uint64_t client_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = sessions_.find(client_id);
  if (it == sessions_.end()) return;
  lru_.erase(it->second.lru_it);
  sessions_.erase(it);
}

std::size_t SessionRegistry::size() const {
  std::unique_lock<std::mutex> lock(mu_);
  return sessions_.size();
}

std::size_t SessionRegistry::evictions() const {
  std::unique_lock<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace sp::serve
