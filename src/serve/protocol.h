#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "io/wire.h"

namespace sp::serve {

/// Frame-level message envelope of the serving protocol. Every frame (see
/// io::write_frame / io::read_frame) carries exactly one Msg:
///
///   kind (u8) | id (u64) | status (u8) | error (len-prefixed str) | payload
///
/// where `payload` is a standard sp::io blob (its own header names its
/// BlobKind and params fingerprint). The handshake is:
///
///   client -> Hello x3         params, public key, relin key blobs
///   server -> SessionReady     rotation-steps blob (id = assigned client
///                              id): the Galois keys the tenant must upload.
///                              The plan itself stays server-side — the
///                              client only ever learns the rotation steps,
///                              not the model's structure
///   client -> GaloisUpload     Galois keys covering those steps
///   client -> Request*         id = client's ticket, payload = ciphertext
///   server -> Response*        id echoes the ticket; status Ok carries the
///                              result ciphertext, Rejected/Failed carry the
///                              reason in `error` (admission rejects answer
///                              synchronously, failures after the fact)
///
/// Responses may arrive out of request order (the executor batches across
/// the deadline window); tickets are the correlation key.
enum class MsgKind : std::uint8_t {
  Hello = 1,
  SessionReady = 2,
  GaloisUpload = 3,
  Request = 4,
  Response = 5,
};

enum class ResponseStatus : std::uint8_t {
  Ok = 0,
  Rejected = 1,  ///< refused at admission (backpressure, bad ciphertext)
  Failed = 2,    ///< accepted but the evaluation threw
};

struct Msg {
  MsgKind kind = MsgKind::Hello;
  std::uint64_t id = 0;
  ResponseStatus status = ResponseStatus::Ok;
  std::string error;                  ///< Rejected/Failed reason; else empty
  std::vector<std::uint8_t> payload;  ///< sp::io blob; may be empty
};

/// Serializes `msg` into one frame payload.
std::vector<std::uint8_t> pack_msg(const Msg& msg);

/// Parses a frame payload; throws sp::Error on malformed envelopes.
Msg unpack_msg(const std::vector<std::uint8_t>& bytes);

/// write_frame(pack_msg(msg)) — one call per protocol message.
void write_msg(std::ostream& os, const Msg& msg);

/// Reads one frame and unpacks it; false on clean EOF (peer hung up).
/// `max_bytes` caps the frame length BEFORE allocation (hostile-prefix
/// defence, see io::read_frame).
bool read_msg(std::istream& is, Msg& msg,
              std::uint32_t max_bytes = io::kDefaultMaxFrameBytes);

}  // namespace sp::serve
