#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "smartpaf/fhe_deploy.h"

namespace sp::serve {

/// One tenant's server-side evaluation state: a keygen-less FheRuntime
/// adopted from the tenant's wire blobs (context, public key, relin key and
/// — usually in a later handshake frame — Galois keys). The session owns the
/// heavyweight per-tenant state the registry's LRU bounds: the rotation-key
/// store and the encoder's plaintext cache both live inside the runtime, so
/// dropping a Session releases them together.
///
/// Sessions are handed out by shared_ptr: eviction removes the registry's
/// reference, while requests already in flight keep the runtime alive until
/// their group completes.
class Session {
 public:
  /// @brief Adopts deserialized key material into a keygen-less runtime.
  /// @param client_id  registry key (assigned by the transport layer)
  /// @param ctx        context built from the tenant's params blob
  /// @param pk/relin   tenant key material deserialized against *ctx
  /// @param galois     rotation keys (often empty at open: the tenant sends
  ///                   them after learning the plan's steps — see
  ///                   adopt_rotation_keys)
  Session(std::uint64_t client_id, std::unique_ptr<fhe::CkksContext> ctx,
          fhe::PublicKey pk, fhe::KSwitchKey relin, fhe::GaloisKeys galois);

  std::uint64_t client_id() const { return client_id_; }
  /// @brief Fingerprint of the tenant's parameter set; every request blob
  /// must match it (see SessionRegistry::find).
  std::uint64_t fingerprint() const { return fingerprint_; }
  smartpaf::FheRuntime& runtime() { return rt_; }

  /// @brief Merges rotation keys arriving after open (the handshake's
  /// Galois-upload frame). Thread-safe via the runtime's key store.
  void adopt_rotation_keys(fhe::GaloisKeys keys) {
    rt_.add_rotation_keys(std::move(keys));
  }

 private:
  std::uint64_t client_id_;
  std::uint64_t fingerprint_;
  smartpaf::FheRuntime rt_;
};

/// Multi-tenant session store with LRU eviction.
///
/// Per-tenant runtimes are expensive to keep resident — Galois keys run to
/// hundreds of MB at serving depths, and the encoder cache pins one
/// plaintext per mask/diagonal — so the registry bounds how many stay live:
/// `open` beyond `max_sessions` evicts the least-recently-used session
/// (its keys and caches go with it; the tenant re-uploads on its next
/// connect). `find` refreshes recency and enforces the params fingerprint,
/// so a request encrypted under a different ring than the session's is
/// rejected with a diagnostic instead of evaluated into garbage.
///
/// All methods are thread-safe; connection handlers share one registry.
class SessionRegistry {
 public:
  /// @param max_sessions  resident-session bound (>= 1)
  explicit SessionRegistry(std::size_t max_sessions = 16);

  /// @brief Opens (or replaces) the session for `client_id`, evicting the
  /// LRU session when the bound is hit. The new session is most-recent.
  /// @return the freshly opened session
  std::shared_ptr<Session> open(std::uint64_t client_id,
                                std::unique_ptr<fhe::CkksContext> ctx,
                                fhe::PublicKey pk, fhe::KSwitchKey relin,
                                fhe::GaloisKeys galois);

  /// @brief Looks up a session and refreshes its recency. Throws sp::Error
  /// when the id is unknown (evicted or never opened) or when `fingerprint`
  /// differs from the session's parameter fingerprint.
  /// @param fingerprint  the request blob's params fingerprint
  std::shared_ptr<Session> find(std::uint64_t client_id, std::uint64_t fingerprint);

  /// @brief Drops one session immediately (tenant disconnect); no-op for
  /// unknown ids.
  void close(std::uint64_t client_id);

  std::size_t size() const;
  /// @brief Sessions evicted by the LRU bound since construction.
  std::size_t evictions() const;

 private:
  mutable std::mutex mu_;
  std::size_t max_sessions_;
  std::size_t evictions_ = 0;
  /// Most-recently-used at the front; `find`/`open` splice to the front.
  std::list<std::uint64_t> lru_;
  struct Entry {
    std::shared_ptr<Session> session;
    std::list<std::uint64_t>::iterator lru_it;
  };
  std::unordered_map<std::uint64_t, Entry> sessions_;
};

}  // namespace sp::serve
