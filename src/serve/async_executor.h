#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/session_registry.h"
#include "smartpaf/pipeline.h"
#include "smartpaf/pipeline_planner.h"

namespace sp::serve {

/// AsyncExecutor configuration: packing geometry, batching deadline and
/// admission bound.
struct ExecutorConfig {
  /// Slots reserved per request (requests wider than this are rejected by
  /// the pipeline's own width checks; shorter requests zero-pad client-side).
  int input_size = 1;
  /// Requests packed into one ciphertext per flush (1 = the unbatched
  /// one-request-per-ciphertext baseline: no packing rotations at all).
  /// Bounded by slot_count / input_size per session at plan time.
  int group_capacity = 8;
  /// Oldest-request age that forces a flush even when the group is short.
  /// This is the latency the first request of a quiet period pays for the
  /// chance of being amortized; groups also flush the moment they fill.
  std::chrono::milliseconds deadline{20};
  /// Admission bound: submit() rejects (never blocks, never drops silently)
  /// once this many requests are pending.
  std::size_t max_queue = 64;
  /// Multiply each response slice by a 0/1 mask so slots past the request's
  /// output width — which still hold neighbouring requests' data under the
  /// shared batch key — decrypt to zero. Costs one plaintext mult + rescale
  /// per response, so the session's chain needs one level beyond the
  /// pipeline's depth.
  bool mask_responses = true;
};

/// Synchronous verdict of AsyncExecutor::submit. A rejected request never
/// enters the queue; `reason` says why (saturation, level/scale mismatch).
struct Admission {
  bool accepted = false;
  std::uint64_t id = 0;  ///< ticket id, valid when accepted
  std::string reason;    ///< empty when accepted
};

/// Why a group left the queue.
enum class FlushReason : std::uint8_t {
  Full = 0,      ///< group_capacity requests were waiting
  Deadline = 1,  ///< the oldest request aged past cfg.deadline
  Drain = 2,     ///< stop() flushed the remainder
};

/// Terminal outcome of one accepted request, delivered exactly once on the
/// executor's worker thread. Every accepted request gets one — completed or
/// failed with its id — so the transport layer can answer every ticket; no
/// work is dropped silently.
struct Outcome {
  enum class Kind : std::uint8_t { Completed = 0, Failed = 1 };
  Kind kind = Kind::Failed;
  std::uint64_t id = 0;
  std::uint64_t client_id = 0;
  fhe::Ciphertext result;  ///< Completed: the request's (masked) output slice
  std::string error;       ///< Failed: what the evaluation threw
  int batch_size = 0;      ///< requests in the group this one rode in
  FlushReason flush = FlushReason::Full;
};

/// Monotonic executor counters (snapshot via AsyncExecutor::stats).
struct ExecutorStats {
  std::uint64_t submitted = 0;  ///< accepted into the queue
  std::uint64_t rejected = 0;   ///< refused at admission
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t flush_full = 0;
  std::uint64_t flush_deadline = 0;
  std::uint64_t flush_drain = 0;
};

/// Deadline-batched, multi-tenant FHE request executor.
///
/// Connections submit encrypted requests; a single worker thread packs up to
/// `group_capacity` same-session requests into ONE ciphertext, runs the
/// pipeline once, and splits the packed output back into per-request
/// responses. A group flushes when it fills or when its oldest request ages
/// past the deadline, whichever comes first — the classic
/// throughput-vs-latency dial of batched serving. Groups never span
/// sessions: ciphertexts under different tenants' keys cannot share slots,
/// so multi-tenancy means the worker interleaves one tenant's group after
/// another's, not mixed packing.
///
/// Packing is a chained rotate-and-add (Horner) layout that needs only TWO
/// Galois keys regardless of group size: with s = input_size,
///
///   packed = req[k-1]; for b = k-2 .. 0: packed = rotate(packed, -s) + req[b]
///
/// leaves request b's slots at offset b*s having used only the step -s key;
/// extraction walks back with the step +s key (response b is the packed
/// output rotated left b times by s). A per-offset fan would need a key per
/// batch position — hundreds of MB per tenant at serving depths — while this
/// layout ships two keys and pays ~2 extra rotations per request, which the
/// pipeline's once-per-group cost dwarfs.
///
/// The per-session Plan (and the mask/capacity validation that goes with it)
/// is computed on first use and cached by client id. Call
/// required_rotation_steps() during the handshake to tell the tenant which
/// Galois keys to upload: the plan's fans plus the packing steps {-s, +s}.
class AsyncExecutor {
 public:
  using OutcomeCallback = std::function<void(Outcome)>;

  /// @brief Takes ownership of the pipeline every session's requests run.
  /// @param on_outcome  invoked once per accepted request, on the worker
  ///                    thread; must not call back into the executor
  AsyncExecutor(smartpaf::FhePipeline pipeline, ExecutorConfig cfg,
                OutcomeCallback on_outcome);
  /// Stops the worker, flushing everything still queued (FlushReason::Drain).
  ~AsyncExecutor();

  AsyncExecutor(const AsyncExecutor&) = delete;
  AsyncExecutor& operator=(const AsyncExecutor&) = delete;

  /// @brief Admission-controlled enqueue. Validates the request ciphertext
  /// (2 parts, full level, the context's scale) and the queue bound; a
  /// rejection is synchronous and final (no Outcome follows), an acceptance
  /// guarantees exactly one Outcome later.
  Admission submit(std::shared_ptr<Session> session, fhe::Ciphertext request);

  /// @brief Flushes the queue and joins the worker; idempotent. Every
  /// still-pending request is evaluated (FlushReason::Drain) before the
  /// worker exits, so no accepted ticket is left unanswered.
  void stop();

  /// @brief The rotation steps `session`'s tenant must provide Galois keys
  /// for: the planned pipeline fans plus the packing steps {-s, +s} (the
  /// latter only when group_capacity > 1). Plans (and caches) the session's
  /// schedule on first call.
  std::vector<int> required_rotation_steps(Session& session);

  ExecutorStats stats() const;
  std::size_t pending() const;
  const ExecutorConfig& config() const { return cfg_; }
  const smartpaf::FhePipeline& pipeline() const { return pipeline_; }

  /// @brief Test seam: invoked with a group's ticket ids right before its
  /// evaluation; a throwing hook fails the group exactly like an evaluation
  /// error (every id gets a Failed outcome). Set before submitting.
  void set_eval_hook(std::function<void(const std::vector<std::uint64_t>&)> hook) {
    eval_hook_ = std::move(hook);
  }

 private:
  struct Pending {
    std::uint64_t id = 0;
    std::shared_ptr<Session> session;
    fhe::Ciphertext request;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// Plan + derived constants for one session, cached by client id.
  struct SessionPlan {
    std::shared_ptr<const smartpaf::Plan> plan;
    std::size_t output_width = 0;
  };

  void worker_loop();
  /// Collects the head session's group (up to group_capacity) off the queue.
  /// Caller holds mu_.
  std::vector<Pending> take_group();
  /// Pack -> run -> extract -> per-request outcomes; never throws (failures
  /// become Failed outcomes).
  void evaluate_group(std::vector<Pending> group, FlushReason reason);
  const SessionPlan& plan_for(Session& session);

  smartpaf::FhePipeline pipeline_;
  ExecutorConfig cfg_;
  OutcomeCallback on_outcome_;
  std::function<void(const std::vector<std::uint64_t>&)> eval_hook_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stop_ = false;
  std::uint64_t next_id_ = 1;
  ExecutorStats stats_;

  std::mutex plan_mu_;
  std::unordered_map<std::uint64_t, SessionPlan> plans_;

  std::thread worker_;
};

}  // namespace sp::serve
