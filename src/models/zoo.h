#pragma once

#include "nn/container.h"

namespace sp::models {

/// Width/resolution-scalable model configuration. The default widths are
/// reduced so CPU fine-tuning completes in minutes; the *non-polynomial
/// operator structure* — the object SMART-PAF manipulates — is identical to
/// the paper's models.
struct ModelConfig {
  int num_classes = 10;
  int width = 8;        ///< base channel count (64 in the full-size models)
  int in_channels = 3;
  std::uint64_t seed = 1;
};

/// ResNet-18: stem conv-bn-relu + maxpool, 4 stages x 2 BasicBlocks, global
/// average pool, FC. Exactly 17 ReLU + 1 MaxPool, matching the paper's
/// count for ResNet-18 (§5.1). Input is expected at 16x16 (or larger
/// powers of two).
nn::Model resnet18(const ModelConfig& cfg);

/// VGG-19: 16 conv-relu (+ 5 maxpool) feature layers and a 3-layer
/// classifier with 2 ReLU — 18 ReLU + 5 MaxPool total, matching §5.1.
/// Input must be 32x32 (five 2x halvings).
nn::Model vgg19(const ModelConfig& cfg);

/// 7-layer CNN in the style of the SAFENet/CryptoNets evaluation models:
/// 3 conv-relu blocks with pooling + 1 hidden FC. Used for quick tests.
nn::Model cnn7(const ModelConfig& cfg);

}  // namespace sp::models
