#pragma once

#include "nn/container.h"

namespace sp::models {

/// Width/resolution-scalable model configuration. The default widths are
/// reduced so CPU fine-tuning completes in minutes; the *non-polynomial
/// operator structure* — the object SMART-PAF manipulates — is identical to
/// the paper's models.
struct ModelConfig {
  int num_classes = 10;
  int width = 8;        ///< base channel count (64 in the full-size models)
  int in_channels = 3;
  std::uint64_t seed = 1;
};

/// ResNet-18: stem conv-bn-relu + maxpool, 4 stages x 2 BasicBlocks, global
/// average pool, FC. Exactly 17 ReLU + 1 MaxPool, matching the paper's
/// count for ResNet-18 (§5.1). Input is expected at 16x16 (or larger
/// powers of two).
nn::Model resnet18(const ModelConfig& cfg);

/// VGG-19: 16 conv-relu (+ 5 maxpool) feature layers and a 3-layer
/// classifier with 2 ReLU — 18 ReLU + 5 MaxPool total, matching §5.1.
/// Input must be 32x32 (five 2x halvings).
nn::Model vgg19(const ModelConfig& cfg);

/// 7-layer CNN in the style of the SAFENet/CryptoNets evaluation models:
/// 3 conv-relu blocks with pooling + 1 hidden FC. Used for quick tests.
nn::Model cnn7(const ModelConfig& cfg);

/// Slot-aligned dense classifier head that lowers END TO END through
/// smartpaf::FhePipeline: an optional strided 1-D max pool, then
/// Linear -> ReLU -> Linear over [B, W] tensors. After replace_site /
/// Static-Scaling conversion the pool becomes a PAF tournament +
/// CompactStage and each Linear a diagonal-method MatMulStage, so the whole
/// head runs under CKKS with < 2^-20 parity against the plaintext forward
/// (tests/test_matmul.cpp pins it).
struct MlpHeadConfig {
  int in_features = 32;   ///< input width W (the logical slot width)
  int hidden = 16;        ///< hidden layer size
  int num_classes = 10;   ///< output size
  /// 0 = no pooling stage; >= 2 prepends MaxPool1d(pool_window, pool_stride)
  /// over the input (pool_stride must then divide in_features, and the first
  /// Linear consumes in_features / pool_stride values). Keep
  /// pool_window <= pool_stride for exact FHE parity at any width (the pool
  /// then never wraps at W).
  int pool_window = 0;
  int pool_stride = 2;
  std::uint64_t seed = 1;
};

/// The MLP head model; Linear layers sized per MlpHeadConfig.
nn::Model mlp_head(const MlpHeadConfig& cfg);

/// LeNet-style convolutional classifier that lowers END TO END through
/// smartpaf::FhePipeline:
///   Conv2d -> ReLU -> AvgPool2d -> Conv2d -> ReLU -> Flatten -> Linear.
/// Every layer has a pipeline lowering: the convolutions become
/// channel-packed ConvStages (rotation fan or channel-offset BSGS), the
/// average pool a depthwise strided ConvStage, the ReLUs PAF activations
/// after replace_site / Static-Scaling conversion, Flatten the slot
/// identity on the channel-major grid, and the classifier a diagonal-method
/// MatMulStage fed by the flattened grid's scattered columns. With the
/// default config the plan consumes 1+4+1+1+4+1 = 12 levels under a
/// degree-3 PAF, and tests/test_conv.cpp pins < 2^-20 parity against the
/// plaintext forward in both single-ciphertext and column-split layouts.
struct LenetConfig {
  int image = 12;          ///< square input resolution (valid convs: >= 8)
  int in_channels = 1;
  int conv1_channels = 4;  ///< channels after the first 3x3 conv
  int conv2_channels = 4;  ///< channels after the second 3x3 conv
  int pool = 2;            ///< average-pool kernel == stride
  int num_classes = 10;
  std::uint64_t seed = 1;
};

/// The LeNet-small model; layers sized per LenetConfig.
nn::Model lenet_small(const LenetConfig& cfg);

}  // namespace sp::models
