#include "models/zoo.h"

#include "common/check.h"
#include "nn/layers.h"

namespace sp::models {

using nn::BasicBlock;
using nn::BatchNorm2d;
using nn::Conv2d;
using nn::Dropout;
using nn::Flatten;
using nn::GlobalAvgPool;
using nn::Linear;
using nn::MaxPool2d;
using nn::ReLU;
using nn::Sequential;

nn::Model resnet18(const ModelConfig& cfg) {
  sp::Rng rng(cfg.seed);
  auto net = std::make_unique<Sequential>("resnet18");
  const int w = cfg.width;
  net->add(std::make_unique<Conv2d>(cfg.in_channels, w, 3, 1, 1, rng, false, "stem.conv"));
  net->add(std::make_unique<BatchNorm2d>(w, false, 0.1, "stem.bn"));
  net->add(std::make_unique<ReLU>("stem.relu"));
  net->add(std::make_unique<MaxPool2d>(2, 2, 0, "stem.maxpool"));

  int in_ch = w;
  const int stage_width[4] = {w, 2 * w, 4 * w, 8 * w};
  const int stage_stride[4] = {1, 2, 2, 2};
  for (int s = 0; s < 4; ++s) {
    for (int b = 0; b < 2; ++b) {
      const int stride = b == 0 ? stage_stride[s] : 1;
      const std::string name = "layer" + std::to_string(s + 1) + "." + std::to_string(b);
      net->add(std::make_unique<BasicBlock>(in_ch, stage_width[s], stride, rng, name));
      in_ch = stage_width[s];
    }
  }
  net->add(std::make_unique<GlobalAvgPool>());
  net->add(std::make_unique<Flatten>());
  net->add(std::make_unique<Dropout>(0.3, cfg.seed + 101, "head.dropout"));
  net->add(std::make_unique<Linear>(in_ch, cfg.num_classes, rng, true, "fc"));
  return nn::Model(std::move(net), "resnet18");
}

nn::Model vgg19(const ModelConfig& cfg) {
  sp::Rng rng(cfg.seed);
  auto net = std::make_unique<Sequential>("vgg19");
  // Standard VGG-19 plan scaled by width/64; 'M' = maxpool.
  const int plan[] = {1, 1, 0, 2, 2, 0, 4, 4, 4, 4, 0, 8, 8, 8, 8, 0, 8, 8, 8, 8, 0};
  int in_ch = cfg.in_channels;
  int conv_id = 0, pool_id = 0;
  for (int p : plan) {
    if (p == 0) {
      net->add(std::make_unique<MaxPool2d>(2, 2, 0, "pool" + std::to_string(pool_id++)));
      continue;
    }
    const int out_ch = p * cfg.width;
    const std::string name = "conv" + std::to_string(conv_id++);
    net->add(std::make_unique<Conv2d>(in_ch, out_ch, 3, 1, 1, rng, false, name));
    net->add(std::make_unique<BatchNorm2d>(out_ch, false, 0.1, name + ".bn"));
    net->add(std::make_unique<ReLU>(name + ".relu"));
    in_ch = out_ch;
  }
  net->add(std::make_unique<Flatten>());
  const int fc_w = 8 * cfg.width;
  net->add(std::make_unique<Linear>(in_ch, fc_w, rng, true, "fc0"));
  net->add(std::make_unique<ReLU>("fc0.relu"));
  net->add(std::make_unique<Dropout>(0.3, cfg.seed + 103, "fc0.dropout"));
  net->add(std::make_unique<Linear>(fc_w, fc_w, rng, true, "fc1"));
  net->add(std::make_unique<ReLU>("fc1.relu"));
  net->add(std::make_unique<Linear>(fc_w, cfg.num_classes, rng, true, "fc2"));
  return nn::Model(std::move(net), "vgg19");
}

nn::Model cnn7(const ModelConfig& cfg) {
  sp::Rng rng(cfg.seed);
  auto net = std::make_unique<Sequential>("cnn7");
  const int w = cfg.width;
  int in_ch = cfg.in_channels;
  for (int i = 0; i < 3; ++i) {
    const int out_ch = w << i;
    const std::string name = "conv" + std::to_string(i);
    net->add(std::make_unique<Conv2d>(in_ch, out_ch, 3, 1, 1, rng, true, name));
    net->add(std::make_unique<ReLU>(name + ".relu"));
    net->add(std::make_unique<MaxPool2d>(2, 2, 0, name + ".pool"));
    in_ch = out_ch;
  }
  net->add(std::make_unique<GlobalAvgPool>());
  net->add(std::make_unique<Flatten>());
  net->add(std::make_unique<Linear>(in_ch, 4 * w, rng, true, "fc0"));
  net->add(std::make_unique<ReLU>("fc0.relu"));
  net->add(std::make_unique<Linear>(4 * w, cfg.num_classes, rng, true, "fc1"));
  return nn::Model(std::move(net), "cnn7");
}

nn::Model mlp_head(const MlpHeadConfig& cfg) {
  sp::check(cfg.in_features >= 1 && cfg.hidden >= 1 && cfg.num_classes >= 1,
            "mlp_head: dimensions must be positive");
  sp::Rng rng(cfg.seed);
  auto net = std::make_unique<Sequential>("mlp_head");
  int fc_in = cfg.in_features;
  if (cfg.pool_window >= 2) {
    sp::check(cfg.pool_stride >= 1 && cfg.in_features % cfg.pool_stride == 0,
              "mlp_head: pool_stride must divide in_features");
    net->add(std::make_unique<nn::MaxPool1d>(cfg.pool_window, cfg.pool_stride, "pool"));
    fc_in = cfg.in_features / cfg.pool_stride;
  }
  net->add(std::make_unique<Linear>(fc_in, cfg.hidden, rng, true, "fc0"));
  net->add(std::make_unique<ReLU>("fc0.relu"));
  net->add(std::make_unique<Linear>(cfg.hidden, cfg.num_classes, rng, true, "fc1"));
  return nn::Model(std::move(net), "mlp_head");
}

nn::Model lenet_small(const LenetConfig& cfg) {
  sp::check(cfg.image >= 8 && cfg.in_channels >= 1 && cfg.conv1_channels >= 1 &&
                cfg.conv2_channels >= 1 && cfg.num_classes >= 1,
            "lenet_small: dimensions must be positive (image >= 8)");
  const int after_conv1 = cfg.image - 2;  // valid 3x3
  sp::check(cfg.pool >= 1 && after_conv1 % cfg.pool == 0,
            "lenet_small: pool must divide the post-conv1 resolution");
  const int after_pool = after_conv1 / cfg.pool;
  const int after_conv2 = after_pool - 2;
  sp::check(after_conv2 >= 1, "lenet_small: image too small for two 3x3 convs");

  sp::Rng rng(cfg.seed);
  auto net = std::make_unique<Sequential>("lenet_small");
  net->add(std::make_unique<Conv2d>(cfg.in_channels, cfg.conv1_channels, 3, 1, 0,
                                    rng, true, "conv1"));
  net->add(std::make_unique<ReLU>("conv1.relu"));
  net->add(std::make_unique<nn::AvgPool2d>(cfg.pool, cfg.pool, "pool"));
  net->add(std::make_unique<Conv2d>(cfg.conv1_channels, cfg.conv2_channels, 3, 1, 0,
                                    rng, true, "conv2"));
  net->add(std::make_unique<ReLU>("conv2.relu"));
  net->add(std::make_unique<Flatten>());
  net->add(std::make_unique<Linear>(cfg.conv2_channels * after_conv2 * after_conv2,
                                    cfg.num_classes, rng, true, "fc"));
  return nn::Model(std::move(net), "lenet_small");
}

}  // namespace sp::models
