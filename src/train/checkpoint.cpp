#include "train/checkpoint.h"

#include "common/check.h"
#include "io/serialize.h"

namespace sp::train {

std::vector<std::uint8_t> serialize_training_state(const TrainingState& state) {
  sp::check(!state.weights.parts.empty() &&
                state.weights.parts.front().context() != nullptr,
            "serialize_training_state: state holds no weights");
  const auto& params = state.weights.parts.front().context()->params();

  io::WireWriter w;
  io::write_header(w, io::BlobKind::TrainingState, io::params_fingerprint(params));

  const TrainConfig& cfg = state.config;
  w.u8(cfg.optimizer == Optimizer::Adam ? 1 : 0);
  w.i32(cfg.features);
  w.i32(cfg.batch);
  w.i32(cfg.iterations);
  w.f64(cfg.lr);
  w.f64(cfg.momentum);
  w.f64(cfg.beta1);
  w.f64(cfg.beta2);
  w.f64(cfg.adam_eps);
  w.i32(cfg.sigmoid_degree);
  w.f64(cfg.sigmoid_range);
  w.i32(cfg.invsqrt_degree);
  w.f64(cfg.vhat_max);
  w.i32(cfg.matvec_n1);

  w.u32(state.iteration);
  std::uint8_t flags = 0;
  if (state.velocity) flags |= 1u;
  if (state.m) flags |= 2u;
  if (state.v) flags |= 4u;
  w.u8(flags);

  w.blob(io::serialize(state.weights));
  if (state.velocity) w.blob(io::serialize(*state.velocity));
  if (state.m) w.blob(io::serialize(*state.m));
  if (state.v) w.blob(io::serialize(*state.v));
  return w.take();
}

TrainingState deserialize_training_state(const std::vector<std::uint8_t>& bytes,
                                         const fhe::CkksContext& ctx) {
  io::WireReader r(bytes);
  io::expect_header(r, io::BlobKind::TrainingState,
                    io::params_fingerprint(ctx.params()));

  TrainingState st;
  const std::uint8_t opt = r.u8();
  sp::check(opt <= 1, "wire: malformed TrainingState optimizer tag");
  st.config.optimizer = opt == 1 ? Optimizer::Adam : Optimizer::SgdMomentum;
  st.config.features = r.i32();
  st.config.batch = r.i32();
  st.config.iterations = r.i32();
  st.config.lr = r.f64();
  st.config.momentum = r.f64();
  st.config.beta1 = r.f64();
  st.config.beta2 = r.f64();
  st.config.adam_eps = r.f64();
  st.config.sigmoid_degree = r.i32();
  st.config.sigmoid_range = r.f64();
  st.config.invsqrt_degree = r.i32();
  st.config.vhat_max = r.f64();
  st.config.matvec_n1 = r.i32();

  st.iteration = r.u32();
  const std::uint8_t flags = r.u8();
  sp::check(flags <= 7, "wire: malformed TrainingState flags");

  st.weights = io::deserialize_ciphertext(r.blob(), ctx);
  if (flags & 1u) st.velocity = io::deserialize_ciphertext(r.blob(), ctx);
  if (flags & 2u) st.m = io::deserialize_ciphertext(r.blob(), ctx);
  if (flags & 4u) st.v = io::deserialize_ciphertext(r.blob(), ctx);
  r.expect_done();
  return st;
}

}  // namespace sp::train
