#pragma once

#include <string>
#include <vector>

#include "approx/presets.h"
#include "fhe/context.h"
#include "fhe/diag_matvec.h"

namespace sp::train {

/// Encrypted optimizer menu. SgdMomentum is exact under FHE (the update rule
/// is linear — it costs only levels); Adam needs the inverse-sqrt PAF for
/// m_hat / sqrt(v_hat + eps) and pays ~2.5x the depth per step.
enum class Optimizer { SgdMomentum, Adam };

/// Everything one encrypted logistic-regression run is parameterized by.
/// Serialized verbatim into TrainingState checkpoints: resuming under a
/// different config is refused, because the level schedule, the fitted PAF
/// and the folded constants would silently disagree.
struct TrainConfig {
  int features = 4;      ///< model dimension d (weights occupy slots [0, d))
  int batch = 8;         ///< mini-batch rows B packed per EncryptedBatch
  int iterations = 3;    ///< steps the pre-flight budgets the chain for
  Optimizer optimizer = Optimizer::SgdMomentum;
  double lr = 0.25;
  double momentum = 0.9;     ///< SgdMomentum only
  double beta1 = 0.9;        ///< Adam only
  double beta2 = 0.999;      ///< Adam only
  double adam_eps = 0.1;     ///< eps INSIDE the invsqrt PAF: 1/sqrt(v + eps)
  int sigmoid_degree = 3;    ///< 3 (depth 2) or 5 (depth 3)
  double sigmoid_range = 8.0;   ///< fitted |z| bound R (arXiv:2405.15201)
  int invsqrt_degree = 5;    ///< Adam only; depth ceil(log2(deg + 1))
  double vhat_max = 1.0;     ///< Adam only: fitted v-hat upper bound
  int matvec_n1 = 0;         ///< BSGS baby block; 0 = minimize rotations
};

/// One row of the per-step depth breakdown (describe() and the rejection
/// diagnostic both print it).
struct StepCost {
  std::string label;
  int levels = 0;
};

/// The validated pre-flight of an encrypted training run: per-step depth
/// economics, the two BSGS matvec schedules, and the fitted PAFs — produced
/// before any ciphertext exists, exactly like smartpaf::Planner for
/// inference pipelines. A run deeper than the chain is rejected here with
/// the per-step breakdown, because there is no bootstrapping to fall back
/// on: iterations x levels/step is a hard budget.
struct TrainPlan {
  TrainConfig config;
  std::vector<StepCost> per_step;     ///< depth breakdown of ONE iteration
  int levels_per_step = 0;            ///< sum of per_step
  int chain_levels = 0;               ///< levels the prime chain offers
  int levels_used = 0;                ///< iterations * levels_per_step
  fhe::DiagMatVecPlan forward;        ///< z = X w      (B x d, dense)
  fhe::DiagMatVecPlan transpose;      ///< grad = X^T e (d x B, dense)
  approx::SigmoidPaf sigmoid;         ///< fitted once per plan
  approx::InvSqrtPaf invsqrt;         ///< Adam only (default-initialized otherwise)

  /// @brief Validates `cfg` against the chain and fits the PAFs; throws
  /// sp::Error with the per-step breakdown when iterations x depth exceeds
  /// the chain's levels.
  static TrainPlan plan(const TrainConfig& cfg, const fhe::CkksContext& ctx);

  /// @brief Human-readable plan: budget line plus one row per step
  /// component with its level cost and schedule.
  std::string describe() const;

  /// @brief Union of every rotation step both matvec schedules need — pass
  /// to FheRuntime::rotation_keys for one up-front keygen.
  std::vector<int> rotation_steps() const;
};

}  // namespace sp::train
