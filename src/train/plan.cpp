#include "train/plan.h"

#include <algorithm>
#include <iomanip>
#include <set>
#include <sstream>

#include "common/check.h"
#include "fhe/poly_eval.h"

namespace sp::train {
namespace {

/// Nonzero extended-diagonal steps of a dense rows x cols matrix: every s in
/// [-(rows-1), cols-1]. The trainer's X and X^T are dense by construction
/// (Gaussian features), so the schedule is data-independent and can be
/// planned before any batch exists.
std::vector<int> dense_steps(int rows, int cols) {
  std::vector<int> steps;
  steps.reserve(static_cast<std::size_t>(rows + cols - 1));
  for (int s = -(rows - 1); s <= cols - 1; ++s) steps.push_back(s);
  return steps;
}

}  // namespace

TrainPlan TrainPlan::plan(const TrainConfig& cfg, const fhe::CkksContext& ctx) {
  sp::check(cfg.features >= 1, "train: need at least 1 feature");
  sp::check(cfg.batch >= 1, "train: need at least 1 row per batch");
  sp::check(cfg.iterations >= 1, "train: need at least 1 iteration");
  sp::check(cfg.sigmoid_degree == 3 || cfg.sigmoid_degree == 5,
            "train: sigmoid_degree must be 3 or 5");
  sp::check(cfg.sigmoid_range > 0.0, "train: sigmoid_range must be positive");
  sp::check_fmt(static_cast<std::size_t>(std::max(cfg.features, cfg.batch)) <=
                    ctx.slot_count(),
                "train: batch/features exceed the ", ctx.slot_count(),
                " available slots");
  if (cfg.optimizer == Optimizer::Adam) {
    sp::check(cfg.invsqrt_degree >= 2, "train: invsqrt_degree must be >= 2");
    sp::check(cfg.adam_eps > 0.0, "train: adam_eps must be positive");
    sp::check(cfg.vhat_max > 0.0, "train: vhat_max must be positive");
  }

  TrainPlan p;
  p.config = cfg;

  // One fit per plan; the minimax errors feed describe() and the trainer's
  // documented per-iteration parity bound.
  p.sigmoid = approx::sigmoid_paf(cfg.sigmoid_degree, cfg.sigmoid_range);
  if (cfg.optimizer == Optimizer::Adam)
    p.invsqrt = approx::invsqrt_paf(cfg.invsqrt_degree, cfg.vhat_max, cfg.adam_eps);

  // BSGS schedules for the two dense matvecs of one step. X is B x d, X^T is
  // d x B: the transpose's steps are the forward's negated, so a client packs
  // X^T's diagonals directly at encrypt time (no homomorphic repacking).
  const std::vector<int> fwd_steps = dense_steps(cfg.batch, cfg.features);
  const std::vector<int> t_steps = fhe::DiagMatVecPlan::transpose_steps(fwd_steps);
  const int fwd_n1 = cfg.matvec_n1 > 0
                         ? cfg.matvec_n1
                         : fhe::DiagMatVecPlan::best_n1(fwd_steps, cfg.batch,
                                                        cfg.features);
  const int t_n1 = cfg.matvec_n1 > 0
                       ? cfg.matvec_n1
                       : fhe::DiagMatVecPlan::best_n1(t_steps, cfg.features,
                                                      cfg.batch);
  p.forward = fhe::DiagMatVecPlan::group(fwd_steps, cfg.batch, cfg.features, fwd_n1);
  p.transpose = fhe::DiagMatVecPlan::group(t_steps, cfg.features, cfg.batch, t_n1);

  // Per-step depth breakdown. Every entry is a rescale the step cannot avoid;
  // the optimizer updates themselves ride along at the levels already paid
  // (SGD-momentum is linear; Adam pays for its moments and the invsqrt PAF).
  const int depth_sig = fhe::PafEvaluator::mult_depth(p.sigmoid.poly);
  p.per_step.push_back({"forward matvec X*w", 1});
  p.per_step.push_back(
      {"sigmoid PAF deg " + std::to_string(cfg.sigmoid_degree), depth_sig});
  p.per_step.push_back({"gradient matvec X^T*err", 1});
  if (cfg.optimizer == Optimizer::Adam) {
    const int depth_inv = fhe::PafEvaluator::mult_depth(p.invsqrt.poly);
    p.per_step.push_back({"second moment g^2", 1});
    p.per_step.push_back({"moment blend", 1});
    p.per_step.push_back(
        {"invsqrt PAF deg " + std::to_string(cfg.invsqrt_degree), depth_inv});
    p.per_step.push_back({"update product m*d", 1});
  }
  p.levels_per_step = 0;
  for (const auto& s : p.per_step) p.levels_per_step += s.levels;

  p.chain_levels = static_cast<int>(ctx.q_count()) - 1;
  p.levels_used = cfg.iterations * p.levels_per_step;

  // The pre-flight rejection: without bootstrapping, iterations x per-step
  // depth is a hard budget. Mirrors the Planner's inference-side wording so
  // the two diagnostics read the same.
  if (p.levels_used > p.chain_levels) {
    std::ostringstream os;
    os << "train: plan needs " << p.levels_used << " levels (" << cfg.iterations
       << " iterations x " << p.levels_per_step
       << " levels/step) but the chain has " << p.chain_levels << " (";
    for (std::size_t i = 0; i < p.per_step.size(); ++i) {
      if (i) os << ", ";
      os << p.per_step[i].label << ": " << p.per_step[i].levels;
    }
    os << "); use a deeper prime chain, fewer iterations or a shallower PAF";
    throw sp::Error(os.str());
  }
  return p;
}

std::string TrainPlan::describe() const {
  std::ostringstream os;
  os << "TrainPlan: " << config.iterations << " iterations of "
     << (config.optimizer == Optimizer::Adam ? "adam" : "sgd-momentum") << " ("
     << config.batch << " x " << config.features << " batches), "
     << levels_per_step << " levels/step, " << levels_used << "/" << chain_levels
     << " levels\n";
  for (std::size_t i = 0; i < per_step.size(); ++i) {
    os << "  [" << i << "] " << std::left << std::setw(26) << per_step[i].label
       << " " << per_step[i].levels
       << (per_step[i].levels == 1 ? " level" : " levels") << "\n";
  }
  os << "  forward  " << forward.rows << "x" << forward.cols << " n1="
     << forward.n1 << " rot=" << forward.rotations() << "\n";
  os << "  gradient " << transpose.rows << "x" << transpose.cols << " n1="
     << transpose.n1 << " rot=" << transpose.rotations() << "\n";
  os << "  sigmoid deg " << sigmoid.degree << " on [-" << sigmoid.range << ", "
     << sigmoid.range << "], minimax err " << std::scientific
     << std::setprecision(2) << sigmoid.max_error;
  if (config.optimizer == Optimizer::Adam) {
    os << "\n  invsqrt deg " << invsqrt.degree << " on [0, " << std::defaultfloat
       << invsqrt.vmax << "] eps " << invsqrt.eps << ", minimax err "
       << std::scientific << std::setprecision(2) << invsqrt.max_error;
  }
  return os.str();
}

std::vector<int> TrainPlan::rotation_steps() const {
  std::set<int> all;
  for (int s : forward.steps()) all.insert(s);
  for (int s : transpose.steps()) all.insert(s);
  return std::vector<int>(all.begin(), all.end());
}

}  // namespace sp::train
