#include "train/batch.h"

#include "common/check.h"

namespace sp::train {

std::vector<MiniBatch> make_batches(const data::DesignMatrix& dm, int batch) {
  sp::check(batch >= 1, "make_batches: need at least 1 row per batch");
  sp::check_fmt(dm.rows >= batch, "make_batches: ", dm.rows,
                " rows cannot fill a batch of ", batch);
  std::vector<MiniBatch> out;
  out.reserve(static_cast<std::size_t>(dm.rows / batch));
  for (int start = 0; start + batch <= dm.rows; start += batch) {
    MiniBatch mb;
    mb.x.assign(dm.x.begin() + static_cast<std::ptrdiff_t>(start) * dm.cols,
                dm.x.begin() + static_cast<std::ptrdiff_t>(start + batch) * dm.cols);
    mb.y.assign(dm.y.begin() + start, dm.y.begin() + start + batch);
    out.push_back(std::move(mb));
  }
  return out;
}

EncryptedBatch EncryptedBatch::pack(const MiniBatch& mb, const TrainPlan& plan,
                                    smartpaf::FheRuntime& rt) {
  const int b = plan.config.batch;
  const int d = plan.config.features;
  sp::check(mb.x.size() == static_cast<std::size_t>(b) * static_cast<std::size_t>(d),
            "EncryptedBatch: batch shape does not match the plan");
  sp::check(mb.y.size() == static_cast<std::size_t>(b),
            "EncryptedBatch: label count does not match the plan");

  // Gradient matrix: (lr *) X^T, row-major d x B.
  const double fold =
      plan.config.optimizer == Optimizer::SgdMomentum ? plan.config.lr : 1.0;
  std::vector<double> xt(static_cast<std::size_t>(d) * static_cast<std::size_t>(b));
  for (int i = 0; i < b; ++i)
    for (int j = 0; j < d; ++j)
      xt[static_cast<std::size_t>(j) * b + i] =
          fold * mb.x[static_cast<std::size_t>(i) * d + j];

  const auto& ctx = rt.ctx();
  EncryptedBatch out{
      fhe::EncDiagMatVec::encrypt(ctx, rt.encoder(), rt.encryptor(), plan.forward,
                                  mb.x, 0, ctx.scale()),
      fhe::EncDiagMatVec::encrypt(ctx, rt.encoder(), rt.encryptor(), plan.transpose,
                                  xt, 0, ctx.scale()),
      fhe::Ciphertext{}};

  std::vector<double> yb(static_cast<std::size_t>(b));
  for (int i = 0; i < b; ++i) {
    sp::check(mb.y[static_cast<std::size_t>(i)] == 0 ||
                  mb.y[static_cast<std::size_t>(i)] == 1,
              "EncryptedBatch: labels must be 0/1");
    yb[static_cast<std::size_t>(i)] =
        static_cast<double>(mb.y[static_cast<std::size_t>(i)]) / b;
  }
  out.labels = rt.encrypt(yb);
  return out;
}

}  // namespace sp::train
