#include "train/reference.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "nn/optim.h"

namespace sp::train {
namespace {

/// z = X w for one row-major batch block.
std::vector<double> matvec(const std::vector<double>& x, int rows, int cols,
                           const std::vector<double>& w) {
  std::vector<double> z(static_cast<std::size_t>(rows), 0.0);
  for (int i = 0; i < rows; ++i)
    for (int j = 0; j < cols; ++j)
      z[static_cast<std::size_t>(i)] +=
          x[static_cast<std::size_t>(i) * cols + j] * w[static_cast<std::size_t>(j)];
  return z;
}

/// g = X^T err.
std::vector<double> matvec_t(const std::vector<double>& x, int rows, int cols,
                             const std::vector<double>& err) {
  std::vector<double> g(static_cast<std::size_t>(cols), 0.0);
  for (int i = 0; i < rows; ++i)
    for (int j = 0; j < cols; ++j)
      g[static_cast<std::size_t>(j)] +=
          x[static_cast<std::size_t>(i) * cols + j] * err[static_cast<std::size_t>(i)];
  return g;
}

}  // namespace

ReferenceRun reference_paf_run(const TrainPlan& plan,
                               const std::vector<MiniBatch>& batches) {
  sp::check(!batches.empty(), "reference_paf_run: no batches");
  const TrainConfig& cfg = plan.config;
  const int b = cfg.batch, d = cfg.features;

  std::vector<double> w(static_cast<std::size_t>(d), 0.0);
  std::vector<double> u(static_cast<std::size_t>(d), 0.0);  // SGD: lr * velocity
  std::vector<double> m(static_cast<std::size_t>(d), 0.0);  // Adam moments
  std::vector<double> v(static_cast<std::size_t>(d), 0.0);

  ReferenceRun run;
  for (int t = 0; t < cfg.iterations; ++t) {
    const MiniBatch& mb = batches[static_cast<std::size_t>(t) % batches.size()];

    const std::vector<double> z = matvec(mb.x, b, d, w);
    std::vector<double> err(static_cast<std::size_t>(b));
    for (int i = 0; i < b; ++i) {
      const double zi = z[static_cast<std::size_t>(i)];
      if (std::abs(zi) > run.max_abs_z) {
        run.max_abs_z = std::abs(zi);
        run.max_abs_z_iter = t;
      }
      // (p - y)/B exactly as the ciphertext path folds it: the sigmoid
      // coefficients carry 1/B and the labels are packed as y/B.
      err[static_cast<std::size_t>(i)] =
          plan.sigmoid.poly(zi) / b - static_cast<double>(mb.y[static_cast<std::size_t>(i)]) / b;
    }

    if (cfg.optimizer == Optimizer::SgdMomentum) {
      // Gradient matrix is packed as lr * X^T; u tracks lr * nn::Sgd's vel.
      const std::vector<double> glr = matvec_t(mb.x, b, d, err);
      for (int j = 0; j < d; ++j) {
        u[static_cast<std::size_t>(j)] =
            cfg.momentum * u[static_cast<std::size_t>(j)] +
            cfg.lr * glr[static_cast<std::size_t>(j)];
        w[static_cast<std::size_t>(j)] -= u[static_cast<std::size_t>(j)];
      }
    } else {
      const std::vector<double> g = matvec_t(mb.x, b, d, err);
      const double bc1 = 1.0 - std::pow(cfg.beta1, static_cast<double>(t) + 1.0);
      const double bc2 = 1.0 - std::pow(cfg.beta2, static_cast<double>(t) + 1.0);
      const double bc2_prev = 1.0 - std::pow(cfg.beta2, static_cast<double>(t));
      for (int j = 0; j < d; ++j) {
        const double gj = g[static_cast<std::size_t>(j)];
        m[static_cast<std::size_t>(j)] =
            cfg.beta1 * m[static_cast<std::size_t>(j)] + (1.0 - cfg.beta1) * gj;
        // v holds the BIAS-CORRECTED second moment (vhat), exactly as the
        // ciphertext path blends it — the 1/bc2 fold lives in these O(1)
        // scalars, not in the PAF coefficients (where 1/bc2^k explodes).
        v[static_cast<std::size_t>(j)] =
            (1.0 - cfg.beta2) / bc2 * gj * gj +
            cfg.beta2 * bc2_prev / bc2 * v[static_cast<std::size_t>(j)];
        // vhat is the invsqrt fit's own variable, so the range guard
        // watches it directly.
        if (v[static_cast<std::size_t>(j)] > run.max_v) {
          run.max_v = v[static_cast<std::size_t>(j)];
          run.max_v_iter = t;
        }
        // The folded denominator PAF, exactly as the ciphertext evaluates
        // it: sum_k c_k * (lr/bc1) * vhat^k, times m.
        double denom = 0.0;
        const auto& c = plan.invsqrt.poly.coeffs();
        double vk = 1.0;
        for (std::size_t k = 0; k < c.size(); ++k) {
          denom += c[k] * (cfg.lr / bc1) * vk;
          vk *= v[static_cast<std::size_t>(j)];
        }
        w[static_cast<std::size_t>(j)] -= m[static_cast<std::size_t>(j)] * denom;
      }
    }
    run.weights_per_iter.push_back(w);
  }
  return run;
}

OracleRun optim_oracle_run(const TrainPlan& plan,
                           const std::vector<MiniBatch>& batches) {
  sp::check(!batches.empty(), "optim_oracle_run: no batches");
  const TrainConfig& cfg = plan.config;
  const int b = cfg.batch, d = cfg.features;

  nn::Param p;
  p.name = "logreg.w";
  p.value = nn::Tensor({d});
  p.grad = nn::Tensor({d});

  nn::HyperParams hp;
  hp.lr = cfg.lr;
  hp.weight_decay = 0.0;
  hp.beta1 = cfg.beta1;
  hp.beta2 = cfg.beta2;
  nn::Sgd sgd({&p}, hp, hp, cfg.momentum);
  nn::Adam adam({&p}, hp, hp);

  OracleRun run;
  for (int t = 0; t < cfg.iterations; ++t) {
    const MiniBatch& mb = batches[static_cast<std::size_t>(t) % batches.size()];
    std::vector<double> w(static_cast<std::size_t>(d));
    for (int j = 0; j < d; ++j) w[static_cast<std::size_t>(j)] = p.value[static_cast<std::size_t>(j)];
    const std::vector<double> z = matvec(mb.x, b, d, w);
    std::vector<double> err(static_cast<std::size_t>(b));
    for (int i = 0; i < b; ++i)
      err[static_cast<std::size_t>(i)] =
          (1.0 / (1.0 + std::exp(-z[static_cast<std::size_t>(i)])) -
           mb.y[static_cast<std::size_t>(i)]) /
          b;
    const std::vector<double> g = matvec_t(mb.x, b, d, err);
    for (int j = 0; j < d; ++j)
      p.grad[static_cast<std::size_t>(j)] = static_cast<float>(g[static_cast<std::size_t>(j)]);
    if (cfg.optimizer == Optimizer::SgdMomentum) {
      sgd.step();
      sgd.zero_grad();
    } else {
      adam.step();
      adam.zero_grad();
    }
    std::vector<double> snap(static_cast<std::size_t>(d));
    for (int j = 0; j < d; ++j)
      snap[static_cast<std::size_t>(j)] = p.value[static_cast<std::size_t>(j)];
    run.weights_per_iter.push_back(std::move(snap));
  }
  return run;
}

void check_sigmoid_range(const TrainPlan& plan,
                         const std::vector<MiniBatch>& batches) {
  const ReferenceRun run = reference_paf_run(plan, batches);
  if (run.max_abs_z > plan.sigmoid.range) {
    std::ostringstream os;
    os << "train: |z| reaches " << run.max_abs_z << " at iteration "
       << run.max_abs_z_iter << ", outside the sigmoid PAF's fitted [-"
       << plan.sigmoid.range << ", " << plan.sigmoid.range
       << "]; refit with a wider sigmoid_range or lower the learning rate";
    throw sp::Error(os.str());
  }
  if (plan.config.optimizer == Optimizer::Adam && run.max_v > plan.invsqrt.vmax) {
    std::ostringstream os;
    os << "train: the Adam second moment reaches " << run.max_v
       << " at iteration " << run.max_v_iter
       << ", outside the invsqrt PAF's fitted [0, " << plan.invsqrt.vmax
       << "]; refit with a larger vhat_max";
    throw sp::Error(os.str());
  }
}

}  // namespace sp::train
