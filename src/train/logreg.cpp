#include "train/logreg.h"

#include <cmath>

#include "common/check.h"

namespace sp::train {
namespace {

bool config_equal(const TrainConfig& a, const TrainConfig& b) {
  return a.features == b.features && a.batch == b.batch &&
         a.iterations == b.iterations && a.optimizer == b.optimizer &&
         a.lr == b.lr && a.momentum == b.momentum && a.beta1 == b.beta1 &&
         a.beta2 == b.beta2 && a.adam_eps == b.adam_eps &&
         a.sigmoid_degree == b.sigmoid_degree &&
         a.sigmoid_range == b.sigmoid_range &&
         a.invsqrt_degree == b.invsqrt_degree && a.vhat_max == b.vhat_max &&
         a.matvec_n1 == b.matvec_n1;
}

}  // namespace

EncryptedLogReg::EncryptedLogReg(const TrainPlan& plan, smartpaf::FheRuntime& rt)
    : plan_(plan),
      rt_(&rt),
      gk_(rt.rotation_keys(plan.rotation_steps())),
      sigmoid_over_b_(plan.sigmoid.poly.scaled(1.0 / plan.config.batch)) {
  state_.config = plan.config;
  const std::vector<double> zero(static_cast<std::size_t>(plan.config.features), 0.0);
  state_.weights = rt.encrypt(zero);
  if (plan.config.optimizer == Optimizer::SgdMomentum) {
    state_.velocity = rt.encrypt(zero);
  } else {
    state_.m = rt.encrypt(zero);
    state_.v = rt.encrypt(zero);
  }
}

EncryptedLogReg::EncryptedLogReg(const TrainPlan& plan, smartpaf::FheRuntime& rt,
                                 TrainingState state)
    : plan_(plan),
      rt_(&rt),
      gk_(rt.rotation_keys(plan.rotation_steps())),
      sigmoid_over_b_(plan.sigmoid.poly.scaled(1.0 / plan.config.batch)),
      state_(std::move(state)) {
  sp::check(config_equal(state_.config, plan.config),
            "EncryptedLogReg: checkpoint config does not match the plan "
            "(level schedule and folded constants depend on it)");
  sp::check(state_.iteration <= static_cast<std::uint32_t>(plan.config.iterations),
            "EncryptedLogReg: checkpoint is past the planned iterations");
  const int remaining =
      plan.config.iterations - static_cast<int>(state_.iteration);
  sp::check_fmt(state_.weights.level() >= remaining * plan.levels_per_step,
                "EncryptedLogReg: checkpoint has ", state_.weights.level(),
                " levels left but ", remaining, " steps need ",
                remaining * plan.levels_per_step);
  if (plan.config.optimizer == Optimizer::SgdMomentum) {
    sp::check(state_.velocity.has_value(),
              "EncryptedLogReg: SgdMomentum checkpoint is missing its velocity");
  } else {
    sp::check(state_.m.has_value() && state_.v.has_value(),
              "EncryptedLogReg: Adam checkpoint is missing its moments");
  }
}

void EncryptedLogReg::step(const EncryptedBatch& batch) {
  sp::check(state_.iteration < static_cast<std::uint32_t>(plan_.config.iterations),
            "EncryptedLogReg: the plan's iterations are already spent (plan "
            "more before stepping further)");
  auto& ev = rt_->evaluator();

  // z = X w, one level.
  fhe::Ciphertext z =
      batch.forward.apply(ev, state_.weights, *gk_, rt_->relin_key());
  // p/B = sigma(z)/B — the 1/B of the mean gradient rides the coefficients.
  fhe::Ciphertext p = rt_->paf_evaluator().eval_poly(ev, z, sigmoid_over_b_);
  // err = (p - y)/B; labels were packed as y/B at the same encode scale the
  // PAF emits (ctx.scale()), so the subtraction is exact after the drop.
  fhe::Ciphertext y = batch.labels;
  ev.drop_to_level(y, p.level());
  fhe::Ciphertext err = ev.sub(p, y);
  // (lr *) grad = (lr *) X^T err, one level.
  fhe::Ciphertext g = batch.gradient.apply(ev, err, *gk_, rt_->relin_key());

  if (plan_.config.optimizer == Optimizer::SgdMomentum) {
    step_sgd(batch, g);
  } else {
    step_adam(batch, g);
  }
  ++state_.iteration;
}

void EncryptedLogReg::step_sgd(const EncryptedBatch&,
                               const fhe::Ciphertext& grad_lr) {
  // nn::Sgd: vel = momentum * vel + g; w -= lr * vel. Tracking u = lr * vel
  // makes the update linear in what we already have: u = momentum * u +
  // lr * g (the gradient matrix carries the lr), then w -= u — no extra
  // level beyond the gradient's own.
  const auto& ctx = rt_->ctx();
  auto& enc = rt_->encoder();
  auto& ev = rt_->evaluator();
  fhe::Ciphertext u =
      fhe::scaled_to(ev, ctx, enc, *state_.velocity, plan_.config.momentum,
                     grad_lr.level(), grad_lr.scale);
  ev.add_inplace(u, grad_lr);
  fhe::Ciphertext w = fhe::scaled_to(ev, ctx, enc, state_.weights, 1.0,
                                     u.level(), u.scale);
  state_.weights = ev.sub(w, u);
  state_.velocity = std::move(u);
}

void EncryptedLogReg::step_adam(const EncryptedBatch&, const fhe::Ciphertext& g) {
  const auto& ctx = rt_->ctx();
  auto& enc = rt_->encoder();
  auto& ev = rt_->evaluator();
  const TrainConfig& cfg = plan_.config;

  // Second moment input: g^2 (one ct-ct level).
  fhe::Ciphertext g2 = ev.multiply(g, g);
  ev.relinearize_inplace(g2, rt_->relin_key());
  ev.rescale_inplace(g2);

  // This step's bias corrections (t is 1-based in Adam's algebra).
  const auto t = static_cast<double>(state_.iteration) + 1.0;
  const double bc1 = 1.0 - std::pow(cfg.beta1, t);
  const double bc2 = 1.0 - std::pow(cfg.beta2, t);
  const double bc2_prev = 1.0 - std::pow(cfg.beta2, t - 1.0);  // 0 at t = 1

  // Moment blend (one level): both moments land on one exact (level, scale).
  // The second moment is kept BIAS-CORRECTED (state v holds vhat = v / bc2):
  //   vhat_t = (1-beta2)/bc2(t) * g^2 + beta2 * bc2(t-1)/bc2(t) * vhat_{t-1}
  // Folding 1/bc2 into these blend scalars keeps every encoded constant
  // O(1); folding it into the PAF coefficients instead would need
  // c_k / bc2^k ~ 1e15 at t = 1, far past what a slot can encode.
  const double s = ctx.scale();
  const int lb = g2.level() - 1;
  fhe::Ciphertext v_new =
      fhe::scaled_to(ev, ctx, enc, g2, (1.0 - cfg.beta2) / bc2, lb, s);
  ev.add_inplace(v_new, fhe::scaled_to(ev, ctx, enc, *state_.v,
                                       cfg.beta2 * bc2_prev / bc2, lb, s));
  fhe::Ciphertext m_new = fhe::scaled_to(ev, ctx, enc, g, 1.0 - cfg.beta1, lb, s);
  ev.add_inplace(m_new, fhe::scaled_to(ev, ctx, enc, *state_.m, cfg.beta1, lb, s));

  // Denominator PAF: vhat is already the fit's variable, so only
  //   lr * mhat / sqrt(vhat + eps) = m_new * sum_k (c_k * lr / bc1) vhat^k
  // remains to fold — lr/bc1 is bounded by lr/(1-beta1), so bias
  // correction still costs zero homomorphic operations.
  std::vector<double> c = plan_.invsqrt.poly.coeffs();
  for (std::size_t k = 0; k < c.size(); ++k) c[k] *= cfg.lr / bc1;
  fhe::Ciphertext denom =
      rt_->paf_evaluator().eval_poly(ev, v_new, approx::Polynomial(std::move(c)));

  // Update product (one level), then w -= lr * mhat * invsqrt(vhat).
  fhe::Ciphertext mm = m_new;
  ev.drop_to_level(mm, denom.level());
  fhe::Ciphertext upd = ev.multiply(mm, denom);
  ev.relinearize_inplace(upd, rt_->relin_key());
  ev.rescale_inplace(upd);
  fhe::Ciphertext w = fhe::scaled_to(ev, ctx, enc, state_.weights, 1.0,
                                     upd.level(), upd.scale);
  state_.weights = ev.sub(w, upd);
  state_.m = std::move(m_new);
  state_.v = std::move(v_new);
}

std::vector<double> EncryptedLogReg::weights() const {
  std::vector<double> slots = rt_->decrypt(state_.weights);
  slots.resize(static_cast<std::size_t>(plan_.config.features));
  return slots;
}

double binary_accuracy(const std::vector<double>& w, const data::DesignMatrix& dm) {
  sp::check(static_cast<int>(w.size()) == dm.cols,
            "binary_accuracy: weight/feature dimension mismatch");
  sp::check(dm.rows > 0, "binary_accuracy: empty design matrix");
  int correct = 0;
  for (int i = 0; i < dm.rows; ++i) {
    double score = 0.0;
    for (int j = 0; j < dm.cols; ++j)
      score += dm.x[static_cast<std::size_t>(i) * dm.cols + j] * w[static_cast<std::size_t>(j)];
    const int pred = score >= 0.0 ? 1 : 0;
    if (pred == dm.y[static_cast<std::size_t>(i)]) ++correct;
  }
  return static_cast<double>(correct) / dm.rows;
}

}  // namespace sp::train
