#pragma once

#include <cstdint>
#include <vector>

#include "train/logreg.h"

namespace sp::train {

/// TrainingState <-> io::BlobKind::TrainingState (wire v2).
///
/// Layout after the standard 16-byte sp::io header (the fingerprint is the
/// CKKS params digest, so a checkpoint only restores against the chain it
/// was trained on):
///
///   config   u8 optimizer | i32 features, batch, iterations
///            | f64 lr, momentum, beta1, beta2, adam_eps
///            | i32 sigmoid_degree | f64 sigmoid_range
///            | i32 invsqrt_degree | f64 vhat_max | i32 matvec_n1
///   progress u32 iteration
///   flags    u8 (bit0 velocity, bit1 m, bit2 v)
///   blobs    length-prefixed nested serialize(Ciphertext) blobs: weights,
///            then each optional state ciphertext its flag announces, in
///            flag-bit order
///
/// Bit-identical round trip is pinned in tests/test_train.cpp (the resume
/// path must reproduce the exact run, so even re-serialization after a
/// restore must produce the same bytes).
std::vector<std::uint8_t> serialize_training_state(const TrainingState& state);

TrainingState deserialize_training_state(const std::vector<std::uint8_t>& bytes,
                                         const fhe::CkksContext& ctx);

}  // namespace sp::train
