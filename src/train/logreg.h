#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "train/batch.h"
#include "train/plan.h"

namespace sp::train {

/// Everything an encrypted training run needs to resume: the config it was
/// planned under, the step counter, and the ENCRYPTED model + optimizer
/// state. The server checkpoints this without ever seeing a weight —
/// serialized as io::BlobKind::TrainingState (train/checkpoint.h).
struct TrainingState {
  TrainConfig config;
  std::uint32_t iteration = 0;
  fhe::Ciphertext weights;                  ///< w, slots [0, features)
  std::optional<fhe::Ciphertext> velocity;  ///< SgdMomentum: lr * momentum sum
  std::optional<fhe::Ciphertext> m;         ///< Adam first moment (raw)
  std::optional<fhe::Ciphertext> v;         ///< Adam second moment, stored
                                            ///< bias-corrected (v / (1-beta2^t))
                                            ///< so its fold stays encodable
};

/// Mini-batch logistic regression where data, weights, gradients and
/// optimizer state are all CKKS ciphertexts end to end — no bootstrapping,
/// so TrainPlan's pre-flight is what guarantees the level budget holds.
///
/// One step() runs z = X w (EncDiagMatVec), p = sigma(z) via the plan's
/// minimax sigmoid with 1/B folded into its coefficients, err = p - y/B,
/// grad = (lr*) X^T err (pre-transposed diagonals), then the optimizer
/// update — SgdMomentum exactly as nn::Sgd computes it (velocity tracked
/// pre-multiplied by lr, which the gradient matrix already carries);
/// Adam with the division-and-root replaced by the plan's inverse-sqrt PAF
/// and lr + both bias corrections folded into its coefficients per step.
/// The one contract nn::Adam does not share: eps sits INSIDE the root
/// (1/sqrt(vhat + eps)), the analytic-at-zero form a polynomial can fit.
///
/// Cross-path operands (labels vs sigmoid output, moments vs gradient,
/// weights vs update) are realigned to one exact (level, scale) pair per
/// add via fhe::scaled_to, so every homomorphic addition is scale-exact.
class EncryptedLogReg {
 public:
  /// @brief Fresh run: w (and the optimizer moments) start as Enc(0).
  /// Fetches rotation keys for plan.rotation_steps() once, up front.
  EncryptedLogReg(const TrainPlan& plan, smartpaf::FheRuntime& rt);

  /// @brief Resumes from a checkpoint. The state's config must equal the
  /// plan's (the level schedule and folded constants depend on it); the
  /// remaining chain must still cover the steps ahead.
  EncryptedLogReg(const TrainPlan& plan, smartpaf::FheRuntime& rt,
                  TrainingState state);

  const TrainPlan& plan() const { return plan_; }
  std::uint32_t iteration() const { return state_.iteration; }

  /// @brief The resumable snapshot (checkpoint it with
  /// train::serialize_training_state).
  const TrainingState& state() const { return state_; }

  /// @brief One encrypted optimizer step on `batch`; consumes exactly
  /// plan().levels_per_step levels.
  void step(const EncryptedBatch& batch);

  /// @brief Decrypted weight vector (features entries); requires the
  /// runtime's secret key — the client-side end of the protocol.
  std::vector<double> weights() const;

 private:
  void step_sgd(const EncryptedBatch& batch, const fhe::Ciphertext& grad_lr);
  void step_adam(const EncryptedBatch& batch, const fhe::Ciphertext& grad);

  TrainPlan plan_;
  smartpaf::FheRuntime* rt_;
  std::shared_ptr<const fhe::GaloisKeys> gk_;
  approx::Polynomial sigmoid_over_b_;  ///< plan sigmoid with 1/B folded in
  TrainingState state_;
};

/// Decision accuracy of a plaintext weight vector on a design matrix
/// (bias-free linear scorer: predict 1 when x . w >= 0).
double binary_accuracy(const std::vector<double>& w, const data::DesignMatrix& dm);

}  // namespace sp::train
