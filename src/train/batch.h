#pragma once

#include <vector>

#include "data/synthetic.h"
#include "fhe/enc_matvec.h"
#include "smartpaf/fhe_deploy.h"
#include "train/plan.h"

namespace sp::train {

/// One plaintext mini-batch: row-major batch x features design block plus
/// 0/1 labels. Produced client-side; the server only ever sees the
/// EncryptedBatch packed from it.
struct MiniBatch {
  std::vector<double> x;  ///< row-major batch x features
  std::vector<int> y;     ///< 0/1, one per row
};

/// Splits a design matrix into consecutive full mini-batches of `batch`
/// rows (a trailing partial batch is dropped — the level schedule assumes a
/// fixed B, which 1/B is folded against). Training iterates the result
/// cyclically: step t uses batches[t % size], in the encrypted run, the
/// plaintext mirror and the nn::optim oracle alike, so parity comparisons
/// see identical data.
std::vector<MiniBatch> make_batches(const data::DesignMatrix& dm, int batch);

/// Client-side encrypted packing of one mini-batch under a TrainPlan: the
/// three ciphertext groups one training step consumes.
///
/// Constant folding happens here and in the plan's PAF, not homomorphically:
///  - labels are packed as y/B (the 1/B of the mean gradient; the sigmoid
///    coefficients carry the matching 1/B),
///  - the gradient matrix is packed as lr * X^T for SgdMomentum (the update
///    then needs no extra scalar multiplication — and no extra level) and as
///    the raw X^T for Adam (whose lr folds into the per-step invsqrt
///    coefficients instead).
/// X^T's extended diagonals are the forward steps negated, so the client
/// packs them directly at encrypt time — the server never repacks.
struct EncryptedBatch {
  fhe::EncDiagMatVec forward;   ///< X     (B x d) under plan.forward
  fhe::EncDiagMatVec gradient;  ///< (lr*) X^T (d x B) under plan.transpose
  fhe::Ciphertext labels;       ///< Enc(y / B) in slots [0, B)

  static EncryptedBatch pack(const MiniBatch& mb, const TrainPlan& plan,
                             smartpaf::FheRuntime& rt);
};

}  // namespace sp::train
