#pragma once

#include <vector>

#include "train/batch.h"
#include "train/plan.h"

namespace sp::train {

/// Pure-double mirror of the encrypted training loop: same PAF polynomials,
/// same folded constants, same update algebra — only the CKKS noise is
/// missing. Per-iteration parity between this and EncryptedLogReg is the
/// tight bound tests pin (the nn::optim oracle differs by the PAF error and
/// float32 state, so it only bounds end-to-end accuracy).
struct ReferenceRun {
  std::vector<std::vector<double>> weights_per_iter;  ///< after each step
  double max_abs_z = 0.0;  ///< largest |X w| fed to the sigmoid PAF
  int max_abs_z_iter = 0;  ///< iteration (0-based) where it happened
  double max_v = 0.0;      ///< Adam: largest bias-corrected vhat seen
  int max_v_iter = 0;
};

/// Runs `plan.config.iterations` steps of the PAF mirror, consuming
/// `batches` cyclically (step t uses batches[t % size] — the same order the
/// encrypted run and the oracle use).
ReferenceRun reference_paf_run(const TrainPlan& plan,
                               const std::vector<MiniBatch>& batches);

/// The same loop with the TRUE sigmoid and nn::optim's float32 updates —
/// the "what would plaintext training do" oracle the 2%-accuracy gate
/// compares against. Adam here is nn::Adam verbatim, including its
/// eps-outside-the-root denominator.
struct OracleRun {
  std::vector<std::vector<double>> weights_per_iter;
};

OracleRun optim_oracle_run(const TrainPlan& plan,
                           const std::vector<MiniBatch>& batches);

/// Pre-flight range guard, run client-side on the plaintext mirror before
/// any ciphertext is packed: throws sp::Error naming the iteration and the
/// offending value when any |z| leaves the sigmoid's fitted [-range, range]
/// (where a low-degree minimax fit diverges fast — arXiv:1902.01870) or any
/// Adam second moment leaves the invsqrt fit's [0, vhat_max].
void check_sigmoid_range(const TrainPlan& plan,
                         const std::vector<MiniBatch>& batches);

}  // namespace sp::train
