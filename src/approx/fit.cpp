#include "approx/fit.h"

#include <cmath>

#include "common/check.h"

namespace sp::approx {

std::vector<double> solve_linear(std::vector<long double> a,
                                 std::vector<long double> b) {
  const std::size_t n = b.size();
  check(a.size() == n * n, "solve_linear: dimension mismatch");
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(static_cast<double>(a[r * n + col])) >
          std::abs(static_cast<double>(a[pivot * n + col])))
        pivot = r;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a[col * n + c], a[pivot * n + c]);
      std::swap(b[col], b[pivot]);
    }
    check(a[col * n + col] != 0.0L, "solve_linear: singular matrix");
    for (std::size_t r = col + 1; r < n; ++r) {
      const long double factor = a[r * n + col] / a[col * n + col];
      if (factor == 0.0L) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= factor * a[col * n + c];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t r = n; r-- > 0;) {
    long double acc = b[r];
    for (std::size_t c = r + 1; c < n; ++c) acc -= a[r * n + c] * x[c];
    x[r] = static_cast<double>(acc / a[r * n + r]);
  }
  return x;
}

Polynomial lsq_fit(const std::vector<Sample>& samples, int degree, bool odd_only,
                   double ridge) {
  check(degree >= 1, "lsq_fit: degree must be >= 1");
  check(!samples.empty(), "lsq_fit: no samples");
  // Basis exponents.
  std::vector<int> expo;
  for (int e = odd_only ? 1 : 0; e <= degree; e += odd_only ? 2 : 1)
    expo.push_back(e);
  const std::size_t m = expo.size();

  std::vector<long double> ata(m * m, 0.0L), atb(m, 0.0L);
  std::vector<long double> powers(static_cast<std::size_t>(degree) + 1);
  for (const auto& s : samples) {
    powers[0] = 1.0L;
    for (int e = 1; e <= degree; ++e) powers[static_cast<std::size_t>(e)] = powers[static_cast<std::size_t>(e - 1)] * s.x;
    for (std::size_t i = 0; i < m; ++i) {
      const long double bi = powers[static_cast<std::size_t>(expo[i])];
      atb[i] += s.w * bi * s.y;
      for (std::size_t j = i; j < m; ++j)
        ata[i * m + j] += s.w * bi * powers[static_cast<std::size_t>(expo[j])];
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    ata[i * m + i] += ridge;
    for (std::size_t j = 0; j < i; ++j) ata[i * m + j] = ata[j * m + i];
  }
  const std::vector<double> sol = solve_linear(std::move(ata), std::move(atb));

  std::vector<double> coeffs(static_cast<std::size_t>(degree) + 1, 0.0);
  for (std::size_t i = 0; i < m; ++i) coeffs[static_cast<std::size_t>(expo[i])] = sol[i];
  return Polynomial(std::move(coeffs));
}

Polynomial lsq_fit_function(const std::function<double(double)>& target, double lo,
                            double hi, int grid, int degree, bool odd_only) {
  check(grid >= 2, "lsq_fit_function: grid too small");
  std::vector<Sample> samples;
  samples.reserve(static_cast<std::size_t>(grid));
  for (int i = 0; i < grid; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / (grid - 1);
    samples.push_back({x, target(x), 1.0});
  }
  return lsq_fit(samples, degree, odd_only);
}

}  // namespace sp::approx
