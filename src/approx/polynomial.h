#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sp::approx {

/// Dense univariate polynomial with real coefficients in ascending order:
/// p(x) = c[0] + c[1] x + ... + c[n] x^n.
///
/// This is the scalar building block of every PAF (polynomial approximated
/// function) in the library. Evaluation uses Horner's rule; the FHE
/// evaluator uses its own power-ladder schedule (see fhe/poly_eval.h) so the
/// multiplication *depth* matches Appendix C of the paper.
class Polynomial {
 public:
  Polynomial() = default;
  /// Constructs from ascending coefficients; trailing zeros are kept (degree
  /// reports the index of the last structurally-present coefficient).
  explicit Polynomial(std::vector<double> coeffs);

  /// Degree (index of highest coefficient; 0 for empty/constant).
  int degree() const;

  /// Coefficient access (0 outside the stored range).
  double coeff(int i) const;
  std::vector<double>& coeffs() { return c_; }
  const std::vector<double>& coeffs() const { return c_; }

  /// Horner evaluation.
  double operator()(double x) const;

  /// First derivative p'(x).
  double derivative_at(double x) const;

  /// Returns the derivative polynomial.
  Polynomial derivative() const;

  /// True if all even-degree coefficients are (numerically) zero.
  /// Sign-approximating PAFs are odd functions.
  bool is_odd(double tol = 1e-12) const;

  /// Polynomial algebra (used by tests and by symbolic composition).
  Polynomial operator+(const Polynomial& o) const;
  Polynomial operator-(const Polynomial& o) const;
  Polynomial operator*(const Polynomial& o) const;
  Polynomial scaled(double s) const;

  /// Symbolic composition q(p(x)); degree multiplies. Test-oriented: the
  /// runtime PAF path evaluates stages sequentially instead.
  Polynomial compose(const Polynomial& inner) const;

  /// Human-readable form like "1.5x - 0.5x^3".
  std::string to_string(int precision = 6) const;

 private:
  std::vector<double> c_;
};

}  // namespace sp::approx
