#pragma once

#include <string>
#include <vector>

#include "approx/composite.h"

namespace sp::approx {

/// The six PAF forms of Table 2, in ascending-cost order.
///
/// Paper composition notation: "f1 ∘ g2" applies f1 first, g2 last
/// (Eq. 8: f1 ∘ g2 = g2(f1(x))). f-bases contract values toward ±1 and the
/// final g-base snaps them to ±1 (Cheon et al. 2020).
enum class PafForm {
  F1_G2,       ///< degree label 5,  depth 5
  F2_G2,       ///< degree label 10, depth 6
  F2_G3,       ///< degree label 12, depth 6
  ALPHA7,      ///< minimax alpha=7 (Lee et al. 2021), degree label 12, depth 6
  F1SQ_G1SQ,   ///< f1^2 ∘ g1^2, the paper's sweet spot; degree label 14, depth 8
  ALPHA10_D27, ///< 27-degree minimax baseline (depth 10)
};

/// Short display name matching the paper ("f1∘g2", "alpha=7", ...).
std::string form_name(PafForm form);

/// All six forms in Table-2 order (highest degree first, as printed).
std::vector<PafForm> all_forms();

/// The five trainable forms evaluated in Fig. 7/8 and Table 3 (everything
/// except the 27-degree baseline).
std::vector<PafForm> trainable_forms();

/// Cheon et al. 2020 basis polynomials f_k (k = 1..3): odd, contract toward
/// the sign; exact published rational coefficients.
Polynomial base_f(int k);

/// Cheon et al. 2020 basis polynomials g_k (k = 1..3).
Polynomial base_g(int k);

/// Builds a PAF with its *initial* (pre-CT, pre-training) coefficients:
/// Cheon bases for the f/g forms, published minimax coefficients for
/// alpha=7, and a Remez-constructed composite for the 27-degree baseline.
CompositePaf make_paf(PafForm form);

/// The "Degree" row of Table 2 (the paper's labels: 5/10/12/12/14/27).
int paper_degree_label(PafForm form);

/// The "Multiplication Depth" row of Table 2 (5/6/6/6/8/10).
int paper_mult_depth(PafForm form);

/// Paper-published post-training coefficients (Appendix B, Tables 6/9/10/11):
/// per ReLU layer (0..16 for ResNet-18) the flattened coefficient vector in
/// CompositePaf::load_coeffs layout. Empty if the paper publishes none for
/// this form (ALPHA7's trained coefficients are global — see
/// paper_alpha7_coeffs; ALPHA10_D27 has none).
std::vector<std::vector<double>> paper_trained_coeffs(PafForm form);

/// Table 7: the single published coefficient set of the alpha=7 minimax
/// composite (flattened load_coeffs layout).
std::vector<double> paper_alpha7_coeffs();

/// One line of the Appendix-C power ladder per multiplication-depth level
/// for this PAF (reproduces the Fig. 10 / Table 8 schedule).
std::vector<std::string> depth_schedule(const CompositePaf& paf);

/// Wide-range minimax sigmoid for encrypted training (train::EncryptedLogReg).
///
/// `poly` is the full-basis Remez fit of sigma(z) usable directly on the raw
/// pre-activation z; the exchange itself runs on sigma(range*u) over the
/// normalized interval [-1, 1] and the coefficients are substituted
/// u -> z/range afterwards (range pre-scaling keeps the Vandermonde solve
/// well-conditioned however wide the range — arXiv:2405.15201). Inputs must
/// stay inside |z| <= range; outside it a low-degree fit diverges fast, which
/// is what train::check_sigmoid_range guards against (arXiv:1902.01870).
struct SigmoidPaf {
  Polynomial poly;
  int degree = 3;
  double range = 8.0;
  double max_error = 0.0;  ///< minimax error of sigma(z) - poly(z) on [-range, range]
};

/// Degree-`degree` (odd; 3 and 5 are the trainer's menu — depth 2 and 3)
/// minimax sigmoid over [-range, range].
SigmoidPaf sigmoid_paf(int degree, double range);

/// Minimax fit of 1/sqrt(v + eps) on [0, vmax] — the Adam denominator
/// m_hat / sqrt(v_hat + eps) as a single polynomial (the division and the
/// square root together; SNIPPETS.md snippet 1 is the OpenFHE-logreg
/// analogue). `eps` regularizes *inside* the root so the target stays
/// analytic at v = 0; pushing it toward zero steepens the left edge and
/// inflates max_error, so the trainer defaults to a deliberately large 0.1.
struct InvSqrtPaf {
  Polynomial poly;
  int degree = 5;
  double vmax = 1.0;
  double eps = 0.1;
  double max_error = 0.0;  ///< minimax error over [0, vmax]
};

InvSqrtPaf invsqrt_paf(int degree, double vmax, double eps);

}  // namespace sp::approx
