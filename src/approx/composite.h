#pragma once

#include <string>
#include <vector>

#include "approx/polynomial.h"

namespace sp::approx {

/// Composite PAF: a chain of polynomial stages applied left-to-right.
///
/// Paper notation (Eq. 8): "f1 ∘ g2" means g2(f1(x)), i.e. stages()[0] = f1
/// runs first and stages()[1] = g2 runs last. Composite polynomials reach a
/// much lower sign-approximation error than a single polynomial of the same
/// multiplication depth (Cheon et al. 2020, Lee et al. 2021/2022).
class CompositePaf {
 public:
  CompositePaf() = default;
  CompositePaf(std::string name, std::vector<Polynomial> stages);

  const std::string& name() const { return name_; }
  const std::vector<Polynomial>& stages() const { return stages_; }
  std::vector<Polynomial>& stages() { return stages_; }

  /// y = stage_{k-1}(... stage_0(x) ...).
  double operator()(double x) const;

  /// Sum of stage degrees — the paper's "degree" column in Table 2
  /// (composition multiplies algebraic degree, but cost adds).
  int degree_sum() const;

  /// Algebraic degree of the fully-expanded composition (product of stage
  /// degrees).
  long long degree_product() const;

  /// Total multiplication depth consumed when each degree-n stage is
  /// evaluated with the exponentiation-by-squaring power ladder:
  /// sum over stages of ceil(log2(n_i + 1)). Matches Appendix C / Table 2.
  int mult_depth() const;

  /// Number of scalar coefficients across all stages (trainable parameters).
  int num_coeffs() const;

  /// Flattened coefficient vector, stage 0 first.
  std::vector<double> flatten_coeffs() const;

  /// Replaces coefficients from a flattened vector (inverse of
  /// flatten_coeffs; sizes must match).
  void load_coeffs(const std::vector<double>& flat);

  /// Evaluates while recording every intermediate stage input, so that
  /// backward() can run reverse-mode differentiation.
  struct Tape {
    /// stage_inputs[i] is the input fed to stage i; stage_inputs.back() after
    /// the final stage is the output y.
    std::vector<double> stage_inputs;
  };
  double forward(double x, Tape& tape) const;

  /// Reverse-mode gradients through the tape.
  ///
  /// Given dL/dy, returns dL/dx and accumulates dL/dc into `coeff_grad`
  /// (flattened layout matching flatten_coeffs()).
  double backward(const Tape& tape, double dy, std::vector<double>& coeff_grad) const;

  /// Max |composite(x) - sign(x)| sampled on [-1,-eps] ∪ [eps,1].
  double sign_error_max(double eps, int samples = 2000) const;

  /// Mean squared (composite(x) - sign(x))^2 over the same sampling.
  double sign_error_mse(double eps, int samples = 2000) const;

 private:
  void rebuild_offsets();

  std::string name_;
  std::vector<Polynomial> stages_;
  std::vector<std::size_t> offsets_;  ///< flat-coefficient start per stage
};

/// ReLU built from a sign-approximating PAF: relu(x) ≈ (x + x·p(x)) / 2.
/// Inputs are expected pre-scaled into the PAF's accurate range.
double paf_relu(const CompositePaf& p, double x);

/// max(a,b) ≈ ((a+b) + (a-b)·p(a-b)) / 2 (paper §2.2).
double paf_max(const CompositePaf& p, double a, double b);

}  // namespace sp::approx
