#include "approx/distribution.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sp::approx {

DistributionProfile::DistributionProfile(std::size_t reservoir_capacity,
                                         std::uint64_t seed)
    : capacity_(reservoir_capacity), rng_(seed) {
  check(capacity_ >= 16, "DistributionProfile: capacity too small");
  reservoir_.reserve(capacity_);
}

void DistributionProfile::record(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  abs_max_ = std::max(abs_max_, std::abs(x));
  ++n_;
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(x);
  } else {
    // Vitter's algorithm R.
    const auto j = static_cast<std::size_t>(
        rng_.randint(0, static_cast<std::int64_t>(n_) - 1));
    if (j < capacity_) reservoir_[j] = x;
  }
}

void DistributionProfile::record(const std::vector<float>& xs) {
  for (float x : xs) record(static_cast<double>(x));
}

double DistributionProfile::quantile(double q) const {
  check(!reservoir_.empty(), "DistributionProfile::quantile: empty profile");
  std::vector<double> v(reservoir_);
  std::sort(v.begin(), v.end());
  const double rank = std::clamp(q, 0.0, 1.0) * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

std::vector<double> DistributionProfile::histogram(int bins) const {
  check(bins >= 1, "DistributionProfile::histogram: bins >= 1");
  std::vector<double> h(static_cast<std::size_t>(bins), 0.0);
  if (reservoir_.empty() || max_ <= min_) return h;
  for (double x : reservoir_) {
    auto b = static_cast<long>((x - min_) / (max_ - min_) * bins);
    b = std::clamp(b, 0L, static_cast<long>(bins) - 1);
    h[static_cast<std::size_t>(b)] += 1.0;
  }
  for (auto& v : h) v /= static_cast<double>(reservoir_.size());
  return h;
}

}  // namespace sp::approx
