#include "approx/presets.h"

#include <cmath>
#include <sstream>

#include "approx/remez.h"
#include "common/check.h"

namespace sp::approx {
namespace {

/// Builds an odd polynomial from its odd coefficients (c[k] scales x^(2k+1)).
Polynomial odd(std::initializer_list<double> odd_coeffs) {
  std::vector<double> c(2 * odd_coeffs.size(), 0.0);
  std::size_t k = 0;
  for (double v : odd_coeffs) c[2 * k++ + 1] = v;
  return Polynomial(std::move(c));
}

/// Expands rows of odd-only coefficients (grouped per stage) into the
/// flattened full-coefficient layout of CompositePaf::load_coeffs.
/// `stage_odd_counts` lists, per stage, how many odd coefficients the row
/// holds for that stage.
std::vector<std::vector<double>> expand_rows(
    const std::vector<std::vector<double>>& rows,
    const std::vector<int>& stage_odd_counts) {
  std::vector<std::vector<double>> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    std::vector<double> flat;
    std::size_t pos = 0;
    for (int n_odd : stage_odd_counts) {
      std::vector<double> stage(2 * static_cast<std::size_t>(n_odd), 0.0);
      for (int k = 0; k < n_odd; ++k) stage[2 * static_cast<std::size_t>(k) + 1] = row[pos++];
      flat.insert(flat.end(), stage.begin(), stage.end());
    }
    sp::check(pos == row.size(), "expand_rows: row arity mismatch");
    out.push_back(std::move(flat));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Post-training coefficients published in the paper's Appendix B.
// Layout per row: stage-0 odd coefficients then stage-1 odd coefficients
// (and so on), ReLU layer ids 0..16 of ResNet-18 (ImageNet-1k).
// ---------------------------------------------------------------------------

// Table 6: f1 ∘ g2 — columns c1 c3 | d1 d3 d5.
const std::vector<std::vector<double>> kF1G2Rows = {
    {3.064987659, -4.359854698, 3.644091129, -7.056697369, 4.412326813},
    {2.939064741, -3.989520550, 3.756805420, -7.105865479, 4.209794998},
    {2.962512255, -4.095692158, 3.725888252, -7.275540352, 4.892793179},
    {2.996977568, -4.153297901, 3.783520699, -7.263069630, 4.682956696},
    {2.898474693, -4.044208527, 3.641639471, -7.243083000, 4.771345139},
    {2.895201445, -3.905539751, 3.689141512, -7.129144192, 4.736110687},
    {3.018208981, -4.113882542, 3.705801964, -7.180747986, 4.518863201},
    {2.848899364, -3.874762058, 3.611979723, -6.771905422, 4.524455547},
    {3.008141994, -4.087264061, 3.836204052, -7.746193886, 4.919332504},
    {2.968442440, -3.986024141, 3.703149557, -7.153123856, 4.776097775},
    {2.900203228, -3.924145937, 3.688660622, -7.306476593, 4.663645267},
    {2.782385111, -3.684296608, 3.651248932, -6.951449394, 4.715543270},
    {2.958166838, -3.980643034, 3.829906940, -7.610838890, 4.719619274},
    {2.811106443, -3.719117880, 3.632898569, -6.837011814, 4.688860893},
    {2.911352396, -3.886567831, 3.674616098, -6.988801003, 4.670355797},
    {2.796648502, -3.706235886, 3.595447540, -6.843948841, 4.560091972},
    {3.042621136, -3.979726553, 3.910200596, -7.521365166, 4.733543873},
};

// Table 9: f1^2 ∘ g1^2 — columns c0_1 c0_3 c1_1 c1_3 | d0_1 d0_3 d1_1 d1_3.
const std::vector<std::vector<double>> kF1SqG1SqRows = {
    {2.736806631, -3.864239931, 2.115309238, -2.268822908, 2.239115477, -2.424801588, 2.189934731, -1.481475353},
    {2.609737396, -2.629375458, 2.115823507, -1.854049206, 2.300836086, -2.241225243, 2.231765747, -1.455139399},
    {2.572752714, -2.620458364, 2.008517504, -1.673257470, 2.017426491, -1.779745221, 2.066540718, -1.300397515},
    {2.874353647, -3.495954990, 2.073785543, -1.728460550, 2.091589212, -1.851963162, 2.141039133, -1.372249603},
    {2.588399172, -3.086382866, 2.018457890, -1.867060781, 1.999999881, -1.845559597, 2.052644968, -1.279196978},
    {2.604569435, -2.614924431, 1.933326840, -1.466841698, 1.942190886, -1.626866937, 2.105185270, -1.243854761},
    {2.510973692, -2.517734289, 2.132683754, -2.017316103, 2.235149622, -2.204242945, 2.183528662, -1.424280167},
    {2.751836777, -2.765525579, 2.021913052, -1.521527886, 2.008341789, -1.650658488, 2.125827074, -1.320276856},
    {2.517604351, -2.519313574, 2.131887913, -1.986418962, 2.247759819, -2.206320763, 2.191907883, -1.425198913},
    {2.562408924, -2.520729303, 2.110760212, -1.814227581, 2.062101603, -1.789000034, 2.126989841, -1.338556409},
    {2.437770844, -2.398545027, 2.016869307, -1.811605096, 2.103379965, -1.996958494, 2.111694336, -1.308108330},
    {2.781474829, -2.742717981, 2.020370960, -1.498650432, 2.043134928, -1.701895356, 2.140466452, -1.345968127},
    {2.483508587, -2.447231293, 2.057531595, -1.836180925, 2.189022541, -2.110060215, 2.162631512, -1.370931029},
    {2.787295341, -2.709958792, 2.009286880, -1.456294537, 2.007162809, -1.627877712, 2.114115715, -1.327487946},
    {2.674963474, -2.604590893, 2.028381109, -1.637359142, 2.129605532, -1.939982772, 2.159248829, -1.392939448},
    {2.731667519, -2.661221027, 2.026224852, -1.519181132, 2.036108494, -1.692675114, 2.118255377, -1.338307023},
    {2.670770168, -2.607930183, 2.119180441, -1.756756186, 2.236502171, -2.061469316, 2.230870724, -1.458180070},
};

// Table 10: f2 ∘ g3 — columns c1 c3 c5 | d1 d3 d5 d7.
const std::vector<std::vector<double>> kF2G3Rows = {
    {3.487593412, -6.971315384, 2.381806374, 4.736026287, -16.16058159, 25.20542908, -13.1174},
    {3.484929323, -7.034649372, 3.685389519, 4.983552456, -17.01627541, 25.34817886, -12.4504},
    {3.312547922, -6.849102974, 3.659186125, 4.616300583, -15.70791912, 25.24704933, -13.7765},
    {3.429539680, -7.291306973, 3.949234486, 4.785545349, -16.25030518, 25.22435379, -13.1702},
    {3.550015688, -7.992001534, 3.389156818, 4.644083023, -15.87583256, 25.47412872, -13.8047},
    {3.484149933, -7.679964066, 3.130941153, 4.651588440, -15.79552174, 25.19073868, -13.6172},
    {1.875000000, -1.250000000, 0.375000000, 4.481445313, -16.18847656, 25.01367188, -12.5586},
    {3.137469292, -6.013744831, 2.900674343, 4.600552082, -15.52524090, 24.95741463, -13.7303},
    {3.355214119, -5.686008930, 1.215050697, 4.856618881, -16.73614693, 25.50185585, -12.7147},
    {3.605870724, -9.147006989, 6.160003185, 4.596205711, -15.64334202, 25.45436478, -14.1617},
    {3.669521809, -8.906849861, 5.655775070, 4.712775707, -16.15146828, 25.63137817, -13.6679},
    {3.432019472, -8.035040855, 4.964941978, 4.565317631, -15.44346809, 25.10269928, -13.9918},
    {3.677670956, -8.380808830, 4.933722496, 4.846800804, -16.69511223, 25.66197395, -13.0236},
    {3.383493662, -8.223423958, 5.385590076, 4.520639420, -15.19449425, 24.95398140, -14.2344},
    {3.321483850, -7.110795498, 4.014864445, 4.572896957, -15.55243587, 25.26078415, -14.0067},
    {3.381628513, -7.793000221, 4.806651115, 4.586762428, -15.50544167, 25.14218521, -14.0126},
    {3.627621889, -8.305987358, 5.061814785, 4.829498291, -16.53964996, 25.57732391, -13.1699},
};

// Table 11: f2 ∘ g2 — columns c1 c3 c5 | d1 d3 d5.
const std::vector<std::vector<double>> kF2G2Rows = {
    {3.632708073, -8.879578590, 4.333632946, 3.700465441, -7.351731300, 5.071476460},
    {3.412810802, -7.752333164, 4.516210556, 3.855783939, -7.789761543, 5.177268505},
    {3.355527401, -8.588312149, 5.618574142, 3.640014887, -7.615984440, 5.668038368},
    {3.533123493, -9.278223038, 6.205972672, 3.779361486, -7.770857811, 5.565216064},
    {1.875000000, -1.250000000, 0.375000000, 3.255859375, -5.964843750, 3.707031250},
    {3.421332598, -9.231142044, 6.353975773, 3.687772274, -7.753697395, 5.787805080},
    {3.494106293, -8.028047562, 3.792766333, 3.851673841, -8.117405891, 5.920250893},
    {3.236023188, -7.844894886, 4.858978271, 3.662446976, -7.398378849, 5.480692863},
    {3.308430910, -7.289185524, 3.084533691, 3.766145468, -8.078896523, 5.651748657},
    {3.438756227, -9.819555283, 7.128154278, 3.620871305, -7.664072514, 5.793798447},
    {3.470819712, -9.487674713, 6.564511299, 3.746651173, -8.130080223, 6.042979240},
    {3.344857931, -8.513930321, 5.686520100, 3.717740774, -7.314604759, 5.406781673},
    {3.561307669, -9.413117409, 6.282663822, 3.941442251, -8.642221451, 6.365680695},
    {3.235330582, -8.009678841, 5.256969452, 3.645334482, -7.250671864, 5.429522514},
    {3.269543648, -7.355520248, 4.257196426, 3.702267408, -7.359237194, 5.368722439},
    {3.318752050, -8.203745842, 5.435956478, 3.630973339, -7.331366062, 5.393109322},
    {3.595479012, -9.167343140, 6.192716122, 3.955091715, -8.303151131, 6.023469925},
};

}  // namespace

std::string form_name(PafForm form) {
  switch (form) {
    case PafForm::F1_G2: return "f1.g2";
    case PafForm::F2_G2: return "f2.g2";
    case PafForm::F2_G3: return "f2.g3";
    case PafForm::ALPHA7: return "alpha=7";
    case PafForm::F1SQ_G1SQ: return "f1^2.g1^2";
    case PafForm::ALPHA10_D27: return "alpha=10(d27)";
  }
  return "?";
}

std::vector<PafForm> all_forms() {
  return {PafForm::ALPHA10_D27, PafForm::F1SQ_G1SQ, PafForm::ALPHA7,
          PafForm::F2_G3, PafForm::F2_G2, PafForm::F1_G2};
}

std::vector<PafForm> trainable_forms() {
  return {PafForm::F1SQ_G1SQ, PafForm::ALPHA7, PafForm::F2_G3, PafForm::F2_G2,
          PafForm::F1_G2};
}

Polynomial base_f(int k) {
  // Cheon et al. 2020, f_n(x) = sum_{i<=n} (1/4^i) C(2i,i) x (1-x^2)^i,
  // expanded to exact rational monomial coefficients.
  switch (k) {
    case 1: return odd({3.0 / 2.0, -1.0 / 2.0});
    case 2: return odd({15.0 / 8.0, -10.0 / 8.0, 3.0 / 8.0});
    case 3: return odd({35.0 / 16.0, -35.0 / 16.0, 21.0 / 16.0, -5.0 / 16.0});
    default: break;
  }
  throw sp::Error("base_f: k must be 1..3");
}

Polynomial base_g(int k) {
  // Cheon et al. 2020, degree-(2n+1) g_n minimax-like bases (x 2^-10).
  switch (k) {
    case 1: return odd({2126.0 / 1024.0, -1359.0 / 1024.0});
    case 2: return odd({3334.0 / 1024.0, -6108.0 / 1024.0, 3796.0 / 1024.0});
    case 3:
      return odd({4589.0 / 1024.0, -16577.0 / 1024.0, 25614.0 / 1024.0,
                  -12860.0 / 1024.0});
    default: break;
  }
  throw sp::Error("base_g: k must be 1..3");
}

CompositePaf make_paf(PafForm form) {
  switch (form) {
    case PafForm::F1_G2:
      return CompositePaf(form_name(form), {base_f(1), base_g(2)});
    case PafForm::F2_G2:
      return CompositePaf(form_name(form), {base_f(2), base_g(2)});
    case PafForm::F2_G3:
      return CompositePaf(form_name(form), {base_f(2), base_g(3)});
    case PafForm::ALPHA7: {
      // Lee et al. 2021 minimax composite (Table 7, odd entries only).
      const Polynomial p1 = odd({7.304451, -34.68258667, 59.85965347, -31.87552261});
      const Polynomial p2 = odd({2.400856, -2.631254435, 1.549126744, -0.331172943});
      return CompositePaf(form_name(form), {p1, p2});
    }
    case PafForm::F1SQ_G1SQ:
      return CompositePaf(form_name(form),
                          {base_f(1), base_f(1), base_g(1), base_g(1)});
    case PafForm::ALPHA10_D27:
      // 27-degree, depth-10 minimax baseline built with the iterative
      // Lee-et-al.-style composite construction (the paper does not publish
      // its exact alpha=10 coefficients; this achieves max sign error
      // ~8e-5 for |x| >= 0.02, comfortably past the alpha=10 target).
      return make_minimax_composite({7, 7, 13}, 0.02, form_name(form));
  }
  throw sp::Error("make_paf: unknown form");
}

int paper_degree_label(PafForm form) {
  switch (form) {
    case PafForm::F1_G2: return 5;
    case PafForm::F2_G2: return 10;
    case PafForm::F2_G3: return 12;
    case PafForm::ALPHA7: return 12;
    case PafForm::F1SQ_G1SQ: return 14;
    case PafForm::ALPHA10_D27: return 27;
  }
  return 0;
}

int paper_mult_depth(PafForm form) {
  switch (form) {
    case PafForm::F1_G2: return 5;
    case PafForm::F2_G2: return 6;
    case PafForm::F2_G3: return 6;
    case PafForm::ALPHA7: return 6;
    case PafForm::F1SQ_G1SQ: return 8;
    case PafForm::ALPHA10_D27: return 10;
  }
  return 0;
}

std::vector<std::vector<double>> paper_trained_coeffs(PafForm form) {
  switch (form) {
    case PafForm::F1_G2: return expand_rows(kF1G2Rows, {2, 3});
    case PafForm::F2_G2: return expand_rows(kF2G2Rows, {3, 3});
    case PafForm::F2_G3: return expand_rows(kF2G3Rows, {3, 4});
    case PafForm::F1SQ_G1SQ: return expand_rows(kF1SqG1SqRows, {2, 2, 2, 2});
    default: return {};
  }
}

std::vector<double> paper_alpha7_coeffs() {
  const auto rows = expand_rows(
      {{7.304451, -34.68258667, 59.85965347, -31.87552261, 2.400856,
        -2.631254435, 1.549126744, -0.331172943}},
      {4, 4});
  return rows.front();
}

std::vector<std::string> depth_schedule(const CompositePaf& paf) {
  std::vector<std::string> lines;
  int depth = 0;
  int stage_idx = 0;
  std::string in = "x";
  for (const auto& stage : paf.stages()) {
    const int n = stage.degree();
    const int d = static_cast<int>(std::ceil(std::log2(static_cast<double>(n) + 1.0)));
    std::ostringstream head;
    head << "depth " << depth << ": stage " << stage_idx << " input " << in
         << " (degree " << n << ")";
    lines.push_back(head.str());
    // Power ladder: squares at each level, odd powers formed alongside.
    for (int level = 1; level <= d; ++level) {
      std::ostringstream os;
      os << "depth " << depth + level << ": ";
      if (level < d) {
        os << in << "^" << (1 << level) << " by squaring; odd powers up to "
           << ((1 << (level + 1)) - 1);
      } else {
        os << "combine terms -> y" << stage_idx << " = stage" << stage_idx << "(" << in
           << ")";
      }
      lines.push_back(os.str());
    }
    depth += d;
    in = "y" + std::to_string(stage_idx);
    ++stage_idx;
  }
  lines.push_back("total multiplication depth: " + std::to_string(depth));
  return lines;
}

SigmoidPaf sigmoid_paf(int degree, double range) {
  check(degree >= 1 && degree % 2 == 1, "sigmoid_paf: degree must be odd");
  check(range > 0.0, "sigmoid_paf: range > 0 required");
  // sigma(z) = 1/2 + odd(z): fit the odd part with the odd-basis exchange on
  // the normalized interval (the full-basis exchange degenerates on
  // symmetric targets — see remez_fit_odd), then add the 1/2 back.
  const RemezResult fit = remez_fit_odd(
      [range](double u) { return 1.0 / (1.0 + std::exp(-range * u)) - 0.5; },
      1.0, degree);
  // Substitute u -> z/range so the polynomial accepts raw pre-activations.
  std::vector<double> c = fit.poly.coeffs();
  double p = 1.0;
  for (auto& ck : c) {
    ck /= p;
    p *= range;
  }
  c[0] += 0.5;  // odd_poly leaves the constant slot zero
  SigmoidPaf out;
  out.poly = Polynomial(std::move(c));
  out.degree = degree;
  out.range = range;
  out.max_error = fit.minimax_error;
  return out;
}

InvSqrtPaf invsqrt_paf(int degree, double vmax, double eps) {
  check(degree >= 1, "invsqrt_paf: degree >= 1 required");
  check(vmax > 0.0, "invsqrt_paf: vmax > 0 required");
  check(eps > 0.0, "invsqrt_paf: eps > 0 required");
  const RemezResult fit = remez_fit(
      [eps](double v) { return 1.0 / std::sqrt(std::max(v, 0.0) + eps); },
      0.0, vmax, degree);
  InvSqrtPaf out;
  out.poly = fit.poly;
  out.degree = degree;
  out.vmax = vmax;
  out.eps = eps;
  out.max_error = fit.minimax_error;
  return out;
}

}  // namespace sp::approx
