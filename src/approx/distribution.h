#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace sp::approx {

/// Profile of the input-value distribution of a non-polynomial operator,
/// collected during calibration forward passes (paper §4.2 step 2).
///
/// Keeps a bounded reservoir sample (for weighted refitting) plus running
/// min/max/absolute-max statistics (Static Scaling uses the running
/// absolute max, paper §4.5).
class DistributionProfile {
 public:
  explicit DistributionProfile(std::size_t reservoir_capacity = 16384,
                               std::uint64_t seed = 17);

  /// Records one observed input value.
  void record(double x);

  /// Records a batch of values.
  void record(const std::vector<float>& xs);

  std::size_t count() const { return n_; }
  double min() const { return min_; }
  double max() const { return max_; }
  /// Running maximum of |x| over everything recorded so far.
  double abs_max() const { return abs_max_; }
  bool empty() const { return n_ == 0; }

  /// Uniform reservoir sample of the recorded values.
  const std::vector<double>& reservoir() const { return reservoir_; }

  /// Empirical quantile (0..1) computed from the reservoir.
  double quantile(double q) const;

  /// Histogram over [min,max] with `bins` buckets, normalized to sum 1.
  std::vector<double> histogram(int bins) const;

 private:
  std::size_t capacity_;
  std::size_t n_ = 0;
  double min_ = 0.0, max_ = 0.0, abs_max_ = 0.0;
  std::vector<double> reservoir_;
  sp::Rng rng_;
};

}  // namespace sp::approx
