#include "approx/polynomial.h"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace sp::approx {

Polynomial::Polynomial(std::vector<double> coeffs) : c_(std::move(coeffs)) {
  if (c_.empty()) c_.push_back(0.0);
}

int Polynomial::degree() const {
  return c_.empty() ? 0 : static_cast<int>(c_.size()) - 1;
}

double Polynomial::coeff(int i) const {
  if (i < 0 || i >= static_cast<int>(c_.size())) return 0.0;
  return c_[static_cast<std::size_t>(i)];
}

double Polynomial::operator()(double x) const {
  double acc = 0.0;
  for (std::size_t i = c_.size(); i-- > 0;) acc = acc * x + c_[i];
  return acc;
}

double Polynomial::derivative_at(double x) const {
  double acc = 0.0;
  for (std::size_t i = c_.size(); i-- > 1;)
    acc = acc * x + c_[i] * static_cast<double>(i);
  return acc;
}

Polynomial Polynomial::derivative() const {
  if (c_.size() <= 1) return Polynomial({0.0});
  std::vector<double> d(c_.size() - 1);
  for (std::size_t i = 1; i < c_.size(); ++i)
    d[i - 1] = c_[i] * static_cast<double>(i);
  return Polynomial(std::move(d));
}

bool Polynomial::is_odd(double tol) const {
  for (std::size_t i = 0; i < c_.size(); i += 2)
    if (std::abs(c_[i]) > tol) return false;
  return true;
}

Polynomial Polynomial::operator+(const Polynomial& o) const {
  std::vector<double> r(std::max(c_.size(), o.c_.size()), 0.0);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = coeff(static_cast<int>(i)) + o.coeff(static_cast<int>(i));
  return Polynomial(std::move(r));
}

Polynomial Polynomial::operator-(const Polynomial& o) const {
  std::vector<double> r(std::max(c_.size(), o.c_.size()), 0.0);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = coeff(static_cast<int>(i)) - o.coeff(static_cast<int>(i));
  return Polynomial(std::move(r));
}

Polynomial Polynomial::operator*(const Polynomial& o) const {
  std::vector<double> r(c_.size() + o.c_.size() - 1, 0.0);
  for (std::size_t i = 0; i < c_.size(); ++i)
    for (std::size_t j = 0; j < o.c_.size(); ++j) r[i + j] += c_[i] * o.c_[j];
  return Polynomial(std::move(r));
}

Polynomial Polynomial::scaled(double s) const {
  std::vector<double> r(c_);
  for (auto& v : r) v *= s;
  return Polynomial(std::move(r));
}

Polynomial Polynomial::compose(const Polynomial& inner) const {
  // Horner on polynomials: result = (((c_n * inner) + c_{n-1}) * inner) + ...
  Polynomial result({0.0});
  for (std::size_t i = c_.size(); i-- > 0;) {
    result = result * inner;
    result = result + Polynomial({c_[i]});
  }
  return result;
}

std::string Polynomial::to_string(int precision) const {
  std::ostringstream os;
  os << std::setprecision(precision);
  bool first = true;
  for (std::size_t i = 0; i < c_.size(); ++i) {
    if (c_[i] == 0.0 && c_.size() > 1) continue;
    if (!first) os << (c_[i] < 0 ? " - " : " + ");
    else if (c_[i] < 0)
      os << "-";
    os << std::abs(c_[i]);
    if (i >= 1) os << "x";
    if (i >= 2) os << "^" << i;
    first = false;
  }
  if (first) os << "0";
  return os.str();
}

}  // namespace sp::approx
