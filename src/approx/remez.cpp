#include "approx/remez.h"

#include <cmath>
#include <vector>

#include "approx/fit.h"
#include "common/check.h"

namespace sp::approx {
namespace {

/// Builds the odd polynomial whose odd coefficients are `c` (c[k] multiplies
/// x^(2k+1)).
Polynomial odd_poly(const std::vector<double>& c) {
  std::vector<double> coeffs(2 * c.size(), 0.0);
  for (std::size_t k = 0; k < c.size(); ++k) coeffs[2 * k + 1] = c[k];
  return Polynomial(std::move(coeffs));
}

}  // namespace

RemezResult remez_fit(const std::function<double(double)>& f, double lo,
                      double hi, int degree, int max_iters, int grid) {
  check(degree >= 1, "remez_fit: degree >= 1 required");
  check(lo < hi, "remez_fit: empty interval");
  check(grid >= 4 * (degree + 2), "remez_fit: grid too coarse for degree");
  const std::size_t m = static_cast<std::size_t>(degree) + 1;  // free coefficients
  // Initial reference: degree+2 Chebyshev nodes mapped onto [lo, hi].
  std::vector<double> ref(m + 1);
  for (std::size_t i = 0; i <= m; ++i) {
    const double t = std::cos(M_PI * static_cast<double>(m - i) / static_cast<double>(m));
    ref[i] = lo + (hi - lo) * 0.5 * (t + 1.0);
  }

  RemezResult result;
  double prev_err = -1.0;
  for (int iter = 0; iter < max_iters; ++iter) {
    // Solve p(x_i) + (-1)^i E = f(x_i) for the degree+1 coefficients and E.
    const std::size_t n = m + 1;
    std::vector<long double> a(n * n, 0.0L), b(n, 0.0L);
    for (std::size_t i = 0; i < n; ++i) {
      long double xp = 1.0L;
      for (std::size_t k = 0; k < m; ++k) {
        a[i * n + k] = xp;
        xp *= ref[i];
      }
      a[i * n + m] = (i % 2 == 0) ? 1.0L : -1.0L;
      b[i] = f(ref[i]);
    }
    std::vector<double> sol = solve_linear(std::move(a), std::move(b));
    std::vector<double> coeffs(sol.begin(), sol.begin() + static_cast<long>(m));
    const double level = std::abs(sol[m]);
    Polynomial p{std::move(coeffs)};

    // Locate alternating extrema of e(x) = p(x) - f(x) on a dense grid.
    std::vector<double> xs(static_cast<std::size_t>(grid)), es(static_cast<std::size_t>(grid));
    for (int i = 0; i < grid; ++i) {
      xs[static_cast<std::size_t>(i)] = lo + (hi - lo) * static_cast<double>(i) / (grid - 1);
      es[static_cast<std::size_t>(i)] = p(xs[static_cast<std::size_t>(i)]) - f(xs[static_cast<std::size_t>(i)]);
    }
    std::vector<double> new_ref;
    std::size_t i = 0;
    while (i < xs.size()) {
      const bool pos = es[i] >= 0.0;
      std::size_t best = i;
      while (i < xs.size() && (es[i] >= 0.0) == pos) {
        if (std::abs(es[i]) > std::abs(es[best])) best = i;
        ++i;
      }
      new_ref.push_back(xs[best]);
    }
    while (new_ref.size() > m + 1) {
      const double e_front = std::abs(p(new_ref.front()) - f(new_ref.front()));
      const double e_back = std::abs(p(new_ref.back()) - f(new_ref.back()));
      if (e_front < e_back)
        new_ref.erase(new_ref.begin());
      else
        new_ref.pop_back();
    }
    result.poly = std::move(p);
    result.minimax_error = level;
    result.iterations = iter + 1;
    if (new_ref.size() < m + 1) break;  // error already below grid resolution
    ref = std::move(new_ref);
    if (prev_err >= 0.0 && std::abs(level - prev_err) < 1e-14) break;
    prev_err = level;
  }
  return result;
}

RemezResult remez_fit_odd(const std::function<double(double)>& f, double hi,
                          int degree, int max_iters, int grid) {
  check(degree >= 1 && degree % 2 == 1, "remez_fit_odd: degree must be odd");
  check(hi > 0.0, "remez_fit_odd: hi > 0 required");
  const std::size_t m = static_cast<std::size_t>((degree + 1) / 2);  // free coefficients
  check(grid >= 4 * static_cast<int>(m + 1), "remez_fit_odd: grid too coarse");
  // Initial reference: m+1 Chebyshev nodes on (0, hi] — x = 0 is excluded
  // because the odd error vanishes there and can never carry an alternation.
  std::vector<double> ref(m + 1);
  for (std::size_t i = 0; i <= m; ++i) {
    const double t = std::cos(M_PI * static_cast<double>(m - i) / static_cast<double>(m + 1));
    ref[i] = hi * 0.5 * (t + 1.0) + hi * 0.25 / static_cast<double>(grid);
  }

  RemezResult result;
  double prev_err = -1.0;
  for (int iter = 0; iter < max_iters; ++iter) {
    // Solve p(x_i) + (-1)^i E = f(x_i) for the m odd coefficients and E.
    const std::size_t n = m + 1;
    std::vector<long double> a(n * n, 0.0L), b(n, 0.0L);
    for (std::size_t i = 0; i < n; ++i) {
      long double xp = ref[i];
      const long double x2 = static_cast<long double>(ref[i]) * ref[i];
      for (std::size_t k = 0; k < m; ++k) {
        a[i * n + k] = xp;
        xp *= x2;
      }
      a[i * n + m] = (i % 2 == 0) ? 1.0L : -1.0L;
      b[i] = f(ref[i]);
    }
    std::vector<double> sol = solve_linear(std::move(a), std::move(b));
    std::vector<double> coeffs(sol.begin(), sol.begin() + static_cast<long>(m));
    const double level = std::abs(sol[m]);
    Polynomial p = odd_poly(coeffs);

    // Locate alternating extrema of e(x) = p(x) - f(x) on (0, hi].
    std::vector<double> xs(static_cast<std::size_t>(grid)), es(static_cast<std::size_t>(grid));
    for (int i = 0; i < grid; ++i) {
      xs[static_cast<std::size_t>(i)] = hi * static_cast<double>(i + 1) / grid;
      es[static_cast<std::size_t>(i)] = p(xs[static_cast<std::size_t>(i)]) - f(xs[static_cast<std::size_t>(i)]);
    }
    std::vector<double> new_ref;
    std::size_t i = 0;
    while (i < xs.size()) {
      const bool pos = es[i] >= 0.0;
      std::size_t best = i;
      while (i < xs.size() && (es[i] >= 0.0) == pos) {
        if (std::abs(es[i]) > std::abs(es[best])) best = i;
        ++i;
      }
      new_ref.push_back(xs[best]);
    }
    while (new_ref.size() > m + 1) {
      const double e_front = std::abs(p(new_ref.front()) - f(new_ref.front()));
      const double e_back = std::abs(p(new_ref.back()) - f(new_ref.back()));
      if (e_front < e_back)
        new_ref.erase(new_ref.begin());
      else
        new_ref.pop_back();
    }
    result.poly = std::move(p);
    result.minimax_error = level;
    result.iterations = iter + 1;
    if (new_ref.size() < m + 1) break;  // error already below grid resolution
    ref = std::move(new_ref);
    if (prev_err >= 0.0 && std::abs(level - prev_err) < 1e-14) break;
    prev_err = level;
  }
  return result;
}

RemezResult remez_sign(int degree, double eps, int max_iters, int grid) {
  check(degree >= 1 && degree % 2 == 1, "remez_sign: degree must be odd");
  check(eps > 0.0 && eps < 1.0, "remez_sign: eps in (0,1) required");
  const std::size_t m = static_cast<std::size_t>((degree + 1) / 2);  // free coefficients
  // Initial reference: Chebyshev-like nodes on [eps, 1], m+1 of them.
  std::vector<double> ref(m + 1);
  for (std::size_t i = 0; i <= m; ++i) {
    const double t = std::cos(M_PI * static_cast<double>(m - i) / static_cast<double>(m));
    ref[i] = eps + (1.0 - eps) * 0.5 * (t + 1.0);
  }

  RemezResult result;
  double prev_err = -1.0;
  for (int iter = 0; iter < max_iters; ++iter) {
    // Solve p(x_i) + (-1)^i E = 1 for the m coefficients and E.
    const std::size_t n = m + 1;
    std::vector<long double> a(n * n, 0.0L), b(n, 1.0L);
    for (std::size_t i = 0; i < n; ++i) {
      long double xp = ref[i];
      const long double x2 = static_cast<long double>(ref[i]) * ref[i];
      for (std::size_t k = 0; k < m; ++k) {
        a[i * n + k] = xp;
        xp *= x2;
      }
      a[i * n + m] = (i % 2 == 0) ? 1.0L : -1.0L;
    }
    std::vector<double> sol = solve_linear(std::move(a), std::move(b));
    std::vector<double> coeffs(sol.begin(), sol.begin() + static_cast<long>(m));
    const double level = std::abs(sol[m]);
    Polynomial p = odd_poly(coeffs);

    // Locate alternating extrema of e(x) = p(x) - 1 on a dense grid.
    std::vector<double> xs(static_cast<std::size_t>(grid)), es(static_cast<std::size_t>(grid));
    for (int i = 0; i < grid; ++i) {
      xs[static_cast<std::size_t>(i)] = eps + (1.0 - eps) * static_cast<double>(i) / (grid - 1);
      es[static_cast<std::size_t>(i)] = p(xs[static_cast<std::size_t>(i)]) - 1.0;
    }
    // Greedy scan: keep the largest |e| in each run of constant sign.
    std::vector<double> new_ref;
    std::size_t i = 0;
    while (i < xs.size()) {
      const bool pos = es[i] >= 0.0;
      std::size_t best = i;
      while (i < xs.size() && (es[i] >= 0.0) == pos) {
        if (std::abs(es[i]) > std::abs(es[best])) best = i;
        ++i;
      }
      new_ref.push_back(xs[best]);
    }
    // Keep exactly m+1 alternating points: trim from the side with the
    // smaller error if we found more sign runs than needed.
    while (new_ref.size() > m + 1) {
      const double e_front = std::abs(p(new_ref.front()) - 1.0);
      const double e_back = std::abs(p(new_ref.back()) - 1.0);
      if (e_front < e_back)
        new_ref.erase(new_ref.begin());
      else
        new_ref.pop_back();
    }
    result.poly = p;
    result.minimax_error = level;
    result.iterations = iter + 1;
    if (new_ref.size() < m + 1) break;  // error already below grid resolution
    ref = new_ref;
    if (prev_err >= 0.0 && std::abs(level - prev_err) < 1e-14) break;
    prev_err = level;
  }
  return result;
}

CompositePaf make_minimax_composite(const std::vector<int>& degrees, double eps0,
                                    const std::string& name) {
  check(!degrees.empty(), "make_minimax_composite: no stages");
  double lo = eps0, hi = 1.0;
  std::vector<Polynomial> stages;
  for (int d : degrees) {
    const RemezResult r = remez_sign(d, lo / hi);
    // The fit lives on [lo/hi, 1]; substitute x -> x/hi so the stage accepts
    // the previous stage's raw output range [lo, hi].
    std::vector<double> c = r.poly.coeffs();
    double p = 1.0;
    for (auto& ck : c) {
      ck /= p;
      p *= hi;
    }
    stages.emplace_back(std::move(c));
    lo = 1.0 - r.minimax_error;
    hi = 1.0 + r.minimax_error;
  }
  return CompositePaf(name, std::move(stages));
}

}  // namespace sp::approx
