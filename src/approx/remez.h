#pragma once

#include <functional>
#include <string>
#include <vector>

#include "approx/composite.h"
#include "approx/polynomial.h"

namespace sp::approx {

/// Result of a Remez exchange run.
struct RemezResult {
  Polynomial poly;          ///< minimax polynomial (odd for remez_sign)
  double minimax_error = 0; ///< achieved equioscillating error magnitude
  int iterations = 0;       ///< exchange iterations performed
};

/// Minimax approximation of an arbitrary continuous `f` on [lo, hi] with the
/// full basis {1, x, ..., x^degree}, via the Remez exchange algorithm.
///
/// Generalizes `remez_sign` (which exploits odd symmetry) to any target: the
/// exchange keeps degree+2 alternation points, solves p(x_i) + (-1)^i E =
/// f(x_i), and re-seats the reference on the extrema of the error until the
/// levels equalize. Callers fitting over wide ranges should normalize the
/// interval first (fit f(R*u) on [-1, 1], then substitute u -> x/R) so the
/// Vandermonde solve stays well-conditioned — see sigmoid_paf.
RemezResult remez_fit(const std::function<double(double)>& f, double lo,
                      double hi, int degree, int max_iters = 50,
                      int grid = 8192);

/// Minimax approximation of an *odd* continuous `f` on [-hi, hi] by an odd
/// polynomial with basis {x, x^3, ..., x^degree} (degree odd).
///
/// Symmetric targets degenerate the full-basis exchange: the best
/// approximation is odd, so its error is odd and cannot alternate degree+2
/// times across a symmetric interval — remez_fit's solve then collapses to
/// E = 0 interpolation. By odd symmetry the problem instead reduces to the
/// half interval [0, hi] with m = (degree+1)/2 free coefficients and m+1
/// alternation points, which is what this exchange runs (the remez_sign
/// construction with an arbitrary odd target).
RemezResult remez_fit_odd(const std::function<double(double)>& f, double hi,
                          int degree, int max_iters = 50, int grid = 8192);

/// Minimax approximation of sign(x) on [-1,-eps] ∪ [eps,1] by an *odd*
/// polynomial of odd degree `degree`, via the Remez exchange algorithm.
///
/// By odd symmetry this reduces to the Chebyshev problem of approximating the
/// constant 1 on [eps, 1] with the basis {x, x^3, ..., x^degree}. This is the
/// classical construction used by the minimax baselines (Lee et al. 2021)
/// that SMART-PAF compares against.
RemezResult remez_sign(int degree, double eps, int max_iters = 50,
                       int grid = 8192);

/// Iterative composite minimax sign approximation (Lee et al. 2021 style):
/// stage k is the minimax fit on the output range of the previous stages, so
/// each stage contracts the residual interval [1-e, 1+e] toward ±1.
///
/// `degrees` lists the (odd) stage degrees applied first-to-last; `eps0` is
/// the smallest input magnitude the composite must classify. The returned
/// composite has multiplication depth sum(ceil(log2(d_i + 1))).
CompositePaf make_minimax_composite(const std::vector<int>& degrees, double eps0,
                                    const std::string& name = "minimax");

}  // namespace sp::approx
