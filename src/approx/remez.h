#pragma once

#include <string>
#include <vector>

#include "approx/composite.h"
#include "approx/polynomial.h"

namespace sp::approx {

/// Result of a Remez exchange run.
struct RemezResult {
  Polynomial poly;          ///< odd minimax polynomial
  double minimax_error = 0; ///< achieved equioscillating error magnitude
  int iterations = 0;       ///< exchange iterations performed
};

/// Minimax approximation of sign(x) on [-1,-eps] ∪ [eps,1] by an *odd*
/// polynomial of odd degree `degree`, via the Remez exchange algorithm.
///
/// By odd symmetry this reduces to the Chebyshev problem of approximating the
/// constant 1 on [eps, 1] with the basis {x, x^3, ..., x^degree}. This is the
/// classical construction used by the minimax baselines (Lee et al. 2021)
/// that SMART-PAF compares against.
RemezResult remez_sign(int degree, double eps, int max_iters = 50,
                       int grid = 8192);

/// Iterative composite minimax sign approximation (Lee et al. 2021 style):
/// stage k is the minimax fit on the output range of the previous stages, so
/// each stage contracts the residual interval [1-e, 1+e] toward ±1.
///
/// `degrees` lists the (odd) stage degrees applied first-to-last; `eps0` is
/// the smallest input magnitude the composite must classify. The returned
/// composite has multiplication depth sum(ceil(log2(d_i + 1))).
CompositePaf make_minimax_composite(const std::vector<int>& degrees, double eps0,
                                    const std::string& name = "minimax");

}  // namespace sp::approx
