#include "approx/composite.h"

#include <cmath>

#include "common/check.h"

namespace sp::approx {

CompositePaf::CompositePaf(std::string name, std::vector<Polynomial> stages)
    : name_(std::move(name)), stages_(std::move(stages)) {
  check(!stages_.empty(), "CompositePaf: at least one stage required");
  rebuild_offsets();
}

void CompositePaf::rebuild_offsets() {
  offsets_.resize(stages_.size());
  std::size_t pos = 0;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    offsets_[i] = pos;
    pos += stages_[i].coeffs().size();
  }
}

double CompositePaf::operator()(double x) const {
  double v = x;
  for (const auto& s : stages_) v = s(v);
  return v;
}

int CompositePaf::degree_sum() const {
  int d = 0;
  for (const auto& s : stages_) d += s.degree();
  return d;
}

long long CompositePaf::degree_product() const {
  long long d = 1;
  for (const auto& s : stages_) d *= s.degree();
  return d;
}

int CompositePaf::mult_depth() const {
  int depth = 0;
  for (const auto& s : stages_) {
    const int n = s.degree();
    depth += static_cast<int>(std::ceil(std::log2(static_cast<double>(n) + 1.0)));
  }
  return depth;
}

int CompositePaf::num_coeffs() const {
  int n = 0;
  for (const auto& s : stages_) n += static_cast<int>(s.coeffs().size());
  return n;
}

std::vector<double> CompositePaf::flatten_coeffs() const {
  std::vector<double> flat;
  flat.reserve(static_cast<std::size_t>(num_coeffs()));
  for (const auto& s : stages_)
    flat.insert(flat.end(), s.coeffs().begin(), s.coeffs().end());
  return flat;
}

void CompositePaf::load_coeffs(const std::vector<double>& flat) {
  check(static_cast<int>(flat.size()) == num_coeffs(),
        "CompositePaf::load_coeffs: size mismatch");
  std::size_t pos = 0;
  for (auto& s : stages_) {
    for (auto& c : s.coeffs()) c = flat[pos++];
  }
}

double CompositePaf::forward(double x, Tape& tape) const {
  tape.stage_inputs.clear();
  double v = x;
  for (const auto& s : stages_) {
    tape.stage_inputs.push_back(v);
    v = s(v);
  }
  tape.stage_inputs.push_back(v);  // final output, kept for symmetry
  return v;
}

double CompositePaf::backward(const Tape& tape, double dy,
                              std::vector<double>& coeff_grad) const {
  check(tape.stage_inputs.size() == stages_.size() + 1,
        "CompositePaf::backward: tape/stage mismatch");
  check(coeff_grad.size() == static_cast<std::size_t>(num_coeffs()),
        "CompositePaf::backward: grad buffer size mismatch");
  // Walk stages in reverse; offsets_ holds the per-stage prefix sums.
  const std::vector<std::size_t>& offset = offsets_;
  double grad = dy;
  for (std::size_t i = stages_.size(); i-- > 0;) {
    const double v = tape.stage_inputs[i];
    const auto& cs = stages_[i].coeffs();
    // d stage / d coeff_k = v^k
    double pow_v = 1.0;
    for (std::size_t k = 0; k < cs.size(); ++k) {
      coeff_grad[offset[i] + k] += grad * pow_v;
      pow_v *= v;
    }
    grad *= stages_[i].derivative_at(v);
  }
  return grad;
}

double CompositePaf::sign_error_max(double eps, int samples) const {
  double worst = 0.0;
  for (int i = 0; i < samples; ++i) {
    const double t = eps + (1.0 - eps) * static_cast<double>(i) / (samples - 1);
    worst = std::max(worst, std::abs((*this)(t)-1.0));
    worst = std::max(worst, std::abs((*this)(-t) + 1.0));
  }
  return worst;
}

double CompositePaf::sign_error_mse(double eps, int samples) const {
  double acc = 0.0;
  for (int i = 0; i < samples; ++i) {
    const double t = eps + (1.0 - eps) * static_cast<double>(i) / (samples - 1);
    const double ep = (*this)(t)-1.0;
    const double en = (*this)(-t) + 1.0;
    acc += ep * ep + en * en;
  }
  return acc / (2.0 * samples);
}

double paf_relu(const CompositePaf& p, double x) { return 0.5 * (x + x * p(x)); }

double paf_max(const CompositePaf& p, double a, double b) {
  const double d = a - b;
  return 0.5 * ((a + b) + d * p(d));
}

}  // namespace sp::approx
