#pragma once

#include <functional>
#include <vector>

#include "approx/polynomial.h"

namespace sp::approx {

/// One weighted regression sample for polynomial fitting.
struct Sample {
  double x = 0.0;
  double y = 0.0;
  double w = 1.0;
};

/// Weighted least-squares polynomial fit (normal equations, long-double
/// Gaussian elimination with partial pivoting and a small ridge term).
///
/// If `odd_only` is set, the basis is {x, x^3, x^5, ...} which preserves the
/// odd symmetry of sign-approximating PAFs. `degree` is the highest power.
Polynomial lsq_fit(const std::vector<Sample>& samples, int degree, bool odd_only,
                   double ridge = 1e-12);

/// Convenience: fit `target` on a uniform grid over [lo, hi].
Polynomial lsq_fit_function(const std::function<double(double)>& target, double lo,
                            double hi, int grid, int degree, bool odd_only);

/// Solves the dense linear system A x = b (row-major A) with partial
/// pivoting. Exposed for reuse by the Remez solver and tests.
std::vector<double> solve_linear(std::vector<long double> a, std::vector<long double> b);

}  // namespace sp::approx
