#include "nn/container.h"

#include <fstream>

#include "common/check.h"
#include "nn/layers.h"

namespace sp::nn {

// ------------------------------------------------------------- Sequential --

Layer* Sequential::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return layers_.back().get();
}

Tensor Sequential::forward(const Tensor& x, bool train) {
  Tensor v = x;
  for (auto& l : layers_) v = l->forward(v, train);
  return v;
}

Tensor Sequential::backward(const Tensor& gy) {
  Tensor g = gy;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

void Sequential::collect_params(std::vector<Param*>& out) {
  for (auto& l : layers_) l->collect_params(out);
}

void Sequential::visit_children(const std::function<void(std::unique_ptr<Layer>&)>& fn) {
  for (auto& l : layers_) fn(l);
}

// ------------------------------------------------------------- BasicBlock --

BasicBlock::BasicBlock(int in_ch, int out_ch, int stride, sp::Rng& rng,
                       const std::string& name)
    : name_(name) {
  conv1_ = std::make_unique<Conv2d>(in_ch, out_ch, 3, stride, 1, rng, false, name + ".conv1");
  bn1_ = std::make_unique<BatchNorm2d>(out_ch, false, 0.1, name + ".bn1");
  act1_ = std::make_unique<ReLU>(name + ".relu1");
  conv2_ = std::make_unique<Conv2d>(out_ch, out_ch, 3, 1, 1, rng, false, name + ".conv2");
  bn2_ = std::make_unique<BatchNorm2d>(out_ch, false, 0.1, name + ".bn2");
  act2_ = std::make_unique<ReLU>(name + ".relu2");
  if (stride != 1 || in_ch != out_ch) {
    auto down = std::make_unique<Sequential>(name + ".down");
    down->add(std::make_unique<Conv2d>(in_ch, out_ch, 1, stride, 0, rng, false,
                                       name + ".down.conv"));
    down->add(std::make_unique<BatchNorm2d>(out_ch, false, 0.1, name + ".down.bn"));
    down_ = std::move(down);
    used_downsample_ = true;
  }
}

Tensor BasicBlock::forward(const Tensor& x, bool train) {
  Tensor h = conv1_->forward(x, train);
  h = bn1_->forward(h, train);
  h = act1_->forward(h, train);
  h = conv2_->forward(h, train);
  h = bn2_->forward(h, train);
  Tensor s = used_downsample_ ? down_->forward(x, train) : x;
  sp::check(h.numel() == s.numel(), "BasicBlock: shortcut shape mismatch");
  for (std::size_t i = 0; i < h.numel(); ++i) h[i] += s[i];
  return act2_->forward(h, train);
}

Tensor BasicBlock::backward(const Tensor& gy) {
  Tensor g = act2_->backward(gy);  // gradient of (h + s)
  // Main path.
  Tensor gh = bn2_->backward(g);
  gh = conv2_->backward(gh);
  gh = act1_->backward(gh);
  gh = bn1_->backward(gh);
  gh = conv1_->backward(gh);
  // Shortcut path.
  Tensor gs = used_downsample_ ? down_->backward(g) : g;
  for (std::size_t i = 0; i < gh.numel(); ++i) gh[i] += gs[i];
  return gh;
}

void BasicBlock::collect_params(std::vector<Param*>& out) {
  conv1_->collect_params(out);
  bn1_->collect_params(out);
  act1_->collect_params(out);
  conv2_->collect_params(out);
  bn2_->collect_params(out);
  if (down_) down_->collect_params(out);
  act2_->collect_params(out);
}

void BasicBlock::visit_children(const std::function<void(std::unique_ptr<Layer>&)>& fn) {
  fn(conv1_);
  fn(bn1_);
  fn(act1_);
  fn(conv2_);
  fn(bn2_);
  if (down_) fn(down_);
  fn(act2_);
}

// ------------------------------------------------------------------ Model --

Model::Model(std::unique_ptr<Layer> root, std::string name)
    : name_(std::move(name)), root_(std::move(root)) {}

std::vector<Param*> Model::params() {
  if (!cache_valid_) {
    param_cache_.clear();
    root_->collect_params(param_cache_);
    cache_valid_ = true;
  }
  return param_cache_;
}

void Model::invalidate_params() { cache_valid_ = false; }

std::vector<Tensor> Model::state() {
  std::vector<Tensor> s;
  for (Param* p : params()) s.push_back(p->value);
  return s;
}

void Model::set_state(const std::vector<Tensor>& s) {
  auto ps = params();
  sp::check(s.size() == ps.size(), "Model::set_state: parameter count mismatch");
  for (std::size_t i = 0; i < ps.size(); ++i) {
    sp::check(s[i].numel() == ps[i]->value.numel(), "Model::set_state: shape mismatch");
    ps[i]->value = s[i];
  }
}

void Model::save(const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  sp::check(f.good(), "Model::save: cannot open " + path);
  auto ps = params();
  const std::uint64_t count = ps.size();
  f.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (Param* p : ps) {
    const std::uint64_t n = p->value.numel();
    f.write(reinterpret_cast<const char*>(&n), sizeof(n));
    f.write(reinterpret_cast<const char*>(p->value.data()),
            static_cast<std::streamsize>(n * sizeof(float)));
  }
}

bool Model::load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) return false;
  auto ps = params();
  std::uint64_t count = 0;
  f.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (count != ps.size()) return false;
  for (Param* p : ps) {
    std::uint64_t n = 0;
    f.read(reinterpret_cast<char*>(&n), sizeof(n));
    if (n != p->value.numel()) return false;
    f.read(reinterpret_cast<char*>(p->value.data()),
           static_cast<std::streamsize>(n * sizeof(float)));
  }
  return f.good();
}

}  // namespace sp::nn
