#include "nn/loss.h"

#include <cmath>

#include "common/check.h"

namespace sp::nn {

LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels) {
  sp::check(logits.ndim() == 2, "softmax_cross_entropy: logits must be [B, C]");
  const int batch = logits.dim(0), classes = logits.dim(1);
  sp::check(static_cast<int>(labels.size()) == batch,
            "softmax_cross_entropy: label count mismatch");

  LossResult out;
  out.grad = Tensor({batch, classes});
  double total = 0.0;
  for (int n = 0; n < batch; ++n) {
    float mx = logits.at(n, 0);
    int argmax = 0;
    for (int c = 1; c < classes; ++c)
      if (logits.at(n, c) > mx) {
        mx = logits.at(n, c);
        argmax = c;
      }
    if (argmax == labels[static_cast<std::size_t>(n)]) ++out.correct;
    double z = 0.0;
    for (int c = 0; c < classes; ++c) z += std::exp(static_cast<double>(logits.at(n, c) - mx));
    const int y = labels[static_cast<std::size_t>(n)];
    sp::check(y >= 0 && y < classes, "softmax_cross_entropy: label out of range");
    total += -(static_cast<double>(logits.at(n, y) - mx) - std::log(z));
    for (int c = 0; c < classes; ++c) {
      const double p = std::exp(static_cast<double>(logits.at(n, c) - mx)) / z;
      out.grad.at(n, c) = static_cast<float>((p - (c == y ? 1.0 : 0.0)) / batch);
    }
  }
  out.loss = total / batch;
  return out;
}

LossResult sigmoid_bce(const Tensor& logits, const std::vector<int>& labels) {
  sp::check(logits.ndim() == 2 && logits.dim(1) == 1,
            "sigmoid_bce: logits must be [B, 1]");
  const int batch = logits.dim(0);
  sp::check(static_cast<int>(labels.size()) == batch,
            "sigmoid_bce: label count mismatch");

  LossResult out;
  out.grad = Tensor({batch, 1});
  double total = 0.0;
  for (int n = 0; n < batch; ++n) {
    const int y = labels[static_cast<std::size_t>(n)];
    sp::check(y == 0 || y == 1, "sigmoid_bce: labels must be 0/1");
    const double z = static_cast<double>(logits.at(n, 0));
    if ((z >= 0.0) == (y == 1)) ++out.correct;
    // Numerically stable softplus: log(1 + e^-|z|) + max(z, 0) terms.
    const double softplus = std::log1p(std::exp(-std::abs(z))) + std::max(z, 0.0);
    total += softplus - static_cast<double>(y) * z;  // = -[y log p + (1-y) log(1-p)]
    const double p = 1.0 / (1.0 + std::exp(-z));
    out.grad.at(n, 0) = static_cast<float>((p - static_cast<double>(y)) / batch);
  }
  out.loss = total / batch;
  return out;
}

}  // namespace sp::nn
