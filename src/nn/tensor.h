#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sp::nn {

/// Dense float32 tensor with row-major contiguous storage (up to 4-D in
/// practice: [N, C, H, W] activations, [out, in] matrices).
///
/// Deliberately minimal: the training stack below needs shapes, flat access
/// and a few indexed accessors — no views, no broadcasting.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape);

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

  const std::vector<int>& shape() const { return shape_; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int dim(int i) const { return shape_[static_cast<std::size_t>(i)]; }
  std::size_t numel() const { return data_.size(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 4-D accessor for [N, C, H, W] tensors.
  float& at(int n, int c, int h, int w) {
    return data_[((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }
  float at(int n, int c, int h, int w) const {
    return data_[((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }
  /// 2-D accessor for [rows, cols] tensors.
  float& at(int r, int c) { return data_[static_cast<std::size_t>(r) * shape_[1] + c]; }
  float at(int r, int c) const { return data_[static_cast<std::size_t>(r) * shape_[1] + c]; }

  void fill(float v);
  /// Reinterprets the buffer with a new shape of equal element count.
  Tensor reshaped(std::vector<int> shape) const;

  /// Max |x| over all elements (Dynamic Scaling uses this).
  float abs_max() const;

  std::string shape_str() const;

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

/// out[MxN] = a[MxK] * b[KxN] (row-major, accumulate=false overwrites).
void matmul(const float* a, const float* b, float* out, int m, int k, int n,
            bool accumulate = false);

/// out[MxN] = a^T[MxK] * b[KxN] where a is stored [K x M].
void matmul_tn(const float* a, const float* b, float* out, int m, int k, int n,
               bool accumulate = false);

/// out[MxN] = a[MxK] * b^T[KxN] where b is stored [N x K].
void matmul_nt(const float* a, const float* b, float* out, int m, int k, int n,
               bool accumulate = false);

}  // namespace sp::nn
