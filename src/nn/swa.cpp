#include "nn/swa.h"

#include "common/check.h"

namespace sp::nn {

SwaAverager::SwaAverager(std::vector<Param*> params) : params_(std::move(params)) {
  for (Param* p : params_) avg_.emplace_back(p->value.shape());
}

void SwaAverager::update() {
  ++count_;
  const float w = 1.0f / static_cast<float>(count_);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const Tensor& v = params_[i]->value;
    Tensor& a = avg_[i];
    for (std::size_t j = 0; j < v.numel(); ++j) a[j] += (v[j] - a[j]) * w;
  }
}

void SwaAverager::apply() const {
  sp::check(count_ > 0, "SwaAverager::apply: no snapshots collected");
  for (std::size_t i = 0; i < params_.size(); ++i) params_[i]->value = avg_[i];
}

}  // namespace sp::nn
