#pragma once

#include <vector>

#include "nn/layer.h"

namespace sp::nn {

/// Per-group training hyperparameters. Defaults follow the paper's Table 5:
/// PAF coefficients use lr 1e-4 / weight decay 0.01; other layers use
/// lr 1e-5 / weight decay 0.1.
struct HyperParams {
  double lr = 1e-3;
  double weight_decay = 0.0;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;

  static HyperParams paper_paf() { return {1e-4, 0.01, 0.9, 0.999, 1e-8}; }
  static HyperParams paper_other() { return {1e-5, 0.1, 0.9, 0.999, 1e-8}; }
};

/// Adam with decoupled per-group hyperparameters and group freezing — the
/// mechanism behind Alternate Training (paper §4.4). Frozen parameters are
/// skipped entirely (their moments do not advance).
class Adam {
 public:
  Adam(std::vector<Param*> params, HyperParams paf_hp, HyperParams other_hp);

  void zero_grad();
  void step();

  /// Freezes/unfreezes an entire parameter group (AT phase switch).
  void set_group_frozen(ParamGroup g, bool frozen);

  HyperParams& hyper(ParamGroup g) { return g == ParamGroup::PafCoeff ? paf_hp_ : other_hp_; }

  /// Rebinds to a new parameter list (after a replacement pass changed the
  /// model structure); optimizer state restarts.
  void rebind(std::vector<Param*> params);

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> m_, v_;
  HyperParams paf_hp_, other_hp_;
  long t_ = 0;
};

/// Plain SGD with momentum (same grouping semantics), used by ablations.
class Sgd {
 public:
  Sgd(std::vector<Param*> params, HyperParams paf_hp, HyperParams other_hp,
      double momentum = 0.9);

  void zero_grad();
  void step();
  void set_group_frozen(ParamGroup g, bool frozen);

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> vel_;
  HyperParams paf_hp_, other_hp_;
  double momentum_;
};

}  // namespace sp::nn
