#include "nn/dataset.h"

#include <numeric>

#include "common/check.h"

namespace sp::nn {

Batch Dataset::batch(const std::vector<int>& idx) const {
  sp::check(!idx.empty(), "Dataset::batch: empty index list");
  const int c = images.dim(1), h = images.dim(2), w = images.dim(3);
  Batch b;
  b.x = Tensor({static_cast<int>(idx.size()), c, h, w});
  b.y.reserve(idx.size());
  const std::size_t sample = static_cast<std::size_t>(c) * h * w;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const auto src = static_cast<std::size_t>(idx[i]) * sample;
    std::copy(images.data() + src, images.data() + src + sample,
              b.x.data() + i * sample);
    b.y.push_back(labels[static_cast<std::size_t>(idx[i])]);
  }
  return b;
}

BatchIterator::BatchIterator(const Dataset& ds, int batch_size, sp::Rng& rng, bool shuffle)
    : ds_(&ds), batch_size_(batch_size), rng_(&rng), shuffle_(shuffle) {
  order_.resize(static_cast<std::size_t>(ds.size()));
  std::iota(order_.begin(), order_.end(), 0);
  reset();
}

void BatchIterator::reset() {
  pos_ = 0;
  if (shuffle_) rng_->shuffle(order_);
}

bool BatchIterator::next(Batch& out) {
  if (pos_ >= order_.size()) return false;
  const std::size_t end = std::min(pos_ + static_cast<std::size_t>(batch_size_), order_.size());
  std::vector<int> idx(order_.begin() + static_cast<long>(pos_),
                       order_.begin() + static_cast<long>(end));
  pos_ = end;
  out = ds_->batch(idx);
  return true;
}

}  // namespace sp::nn
