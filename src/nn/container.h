#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/layer.h"

namespace sp::nn {

/// Ordered chain of layers. Child visit order equals execution order, which
/// the non-polynomial replacement pass relies on.
class Sequential : public Layer {
 public:
  explicit Sequential(const std::string& name = "seq") : name_(name) {}

  /// Appends a layer and returns a raw observer pointer.
  Layer* add(std::unique_ptr<Layer> layer);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& gy) override;
  void collect_params(std::vector<Param*>& out) override;
  void visit_children(const std::function<void(std::unique_ptr<Layer>&)>& fn) override;
  std::string name() const override { return name_; }

  std::size_t size() const { return layers_.size(); }
  Layer& at(std::size_t i) { return *layers_[i]; }
  /// Read-only child access (FhePipeline lowering walks the chain without
  /// mutating it).
  const Layer& at(std::size_t i) const { return *layers_[i]; }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// ResNet basic block: conv-bn-act-conv-bn (+ optional downsample) -> act.
/// The two activation slots are replaceable children (ReLU -> PAF).
class BasicBlock final : public Layer {
 public:
  BasicBlock(int in_ch, int out_ch, int stride, sp::Rng& rng, const std::string& name);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& gy) override;
  void collect_params(std::vector<Param*>& out) override;
  void visit_children(const std::function<void(std::unique_ptr<Layer>&)>& fn) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::unique_ptr<Layer> conv1_, bn1_, act1_, conv2_, bn2_, act2_;
  std::unique_ptr<Layer> down_;  // nullptr when identity shortcut
  bool used_downsample_ = false;
};

/// Owning wrapper around a root layer: forward/backward entry points,
/// parameter enumeration, state snapshot/restore and binary persistence.
class Model {
 public:
  Model() = default;
  Model(std::unique_ptr<Layer> root, std::string name);

  const std::string& name() const { return name_; }
  Layer& root() { return *root_; }
  const Layer& root() const { return *root_; }
  std::unique_ptr<Layer>& root_slot() { return root_; }

  Tensor forward(const Tensor& x, bool train = false) { return root_->forward(x, train); }
  void backward(const Tensor& gy) { root_->backward(gy); }

  /// All parameters in execution order (cached; invalidated on replace()).
  std::vector<Param*> params();
  /// Drops the cached parameter list (call after structural changes).
  void invalidate_params();

  /// Copies of all parameter values, for best-model tracking and SWA.
  std::vector<Tensor> state();
  void set_state(const std::vector<Tensor>& s);

  /// Binary save/load of parameter values (shape-checked on load).
  void save(const std::string& path);
  bool load(const std::string& path);

 private:
  std::string name_;
  std::unique_ptr<Layer> root_;
  std::vector<Param*> param_cache_;
  bool cache_valid_ = false;
};

}  // namespace sp::nn
