#include "nn/tensor.h"

#include <cmath>
#include <sstream>

#include "common/check.h"

namespace sp::nn {

Tensor::Tensor(std::vector<int> shape) : shape_(std::move(shape)) {
  std::size_t n = 1;
  for (int d : shape_) {
    sp::check(d > 0, "Tensor: dimensions must be positive");
    n *= static_cast<std::size_t>(d);
  }
  data_.assign(n, 0.0f);
}

void Tensor::fill(float v) {
  for (auto& x : data_) x = v;
}

Tensor Tensor::reshaped(std::vector<int> shape) const {
  Tensor out(std::move(shape));
  sp::check(out.numel() == numel(), "Tensor::reshaped: element count mismatch");
  out.data_ = data_;
  return out;
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float x : data_) m = std::max(m, std::abs(x));
  return m;
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) os << (i ? "," : "") << shape_[i];
  os << "]";
  return os.str();
}

void matmul(const float* a, const float* b, float* out, int m, int k, int n,
            bool accumulate) {
  if (!accumulate)
    for (int i = 0; i < m * n; ++i) out[i] = 0.0f;
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = b + static_cast<std::size_t>(p) * n;
      float* orow = out + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void matmul_tn(const float* a, const float* b, float* out, int m, int k, int n,
               bool accumulate) {
  if (!accumulate)
    for (int i = 0; i < m * n; ++i) out[i] = 0.0f;
  for (int p = 0; p < k; ++p) {
    const float* arow = a + static_cast<std::size_t>(p) * m;
    const float* brow = b + static_cast<std::size_t>(p) * n;
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = out + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void matmul_nt(const float* a, const float* b, float* out, int m, int k, int n,
               bool accumulate) {
  if (!accumulate)
    for (int i = 0; i < m * n; ++i) out[i] = 0.0f;
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * k;
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
      out[i * n + j] = accumulate ? out[i * n + j] + acc : acc;
    }
  }
}

}  // namespace sp::nn
