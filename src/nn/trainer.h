#pragma once

#include "nn/container.h"
#include "nn/dataset.h"
#include "nn/optim.h"

namespace sp::nn {

/// Training-loop configuration. The per-group hyperparameters default to the
/// paper's Table 5 fine-tuning values.
struct TrainConfig {
  int batch_size = 32;
  HyperParams paf_hp = HyperParams::paper_paf();
  HyperParams other_hp = HyperParams::paper_other();
  std::uint64_t seed = 123;
  bool verbose = false;
};

/// Per-epoch metrics.
struct EpochResult {
  double train_loss = 0.0;
  double train_acc = 0.0;
  double val_acc = 0.0;
};

/// Minimal supervised trainer: mini-batch Adam over a Model.
class Trainer {
 public:
  Trainer(Model& model, const Dataset& train, const Dataset& val, TrainConfig cfg);

  /// One full pass over the training set followed by validation.
  EpochResult run_epoch();

  /// Top-1 accuracy on `ds` (eval mode).
  double evaluate(const Dataset& ds);

  Adam& optimizer() { return opt_; }
  /// Re-collects parameters after the model structure changed.
  void rebind();

 private:
  Model* model_;
  const Dataset* train_;
  const Dataset* val_;
  TrainConfig cfg_;
  sp::Rng rng_;
  Adam opt_;
};

}  // namespace sp::nn
