#include "nn/optim.h"

#include <cmath>

namespace sp::nn {

Adam::Adam(std::vector<Param*> params, HyperParams paf_hp, HyperParams other_hp)
    : params_(std::move(params)), paf_hp_(paf_hp), other_hp_(other_hp) {
  for (Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::rebind(std::vector<Param*> params) {
  params_ = std::move(params);
  m_.clear();
  v_.clear();
  for (Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
  t_ = 0;
}

void Adam::zero_grad() {
  for (Param* p : params_) p->grad.fill(0.0f);
}

void Adam::step() {
  ++t_;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param* p = params_[i];
    if (p->frozen) continue;
    const HyperParams& hp = p->group == ParamGroup::PafCoeff ? paf_hp_ : other_hp_;
    const double bc1 = 1.0 - std::pow(hp.beta1, static_cast<double>(t_));
    const double bc2 = 1.0 - std::pow(hp.beta2, static_cast<double>(t_));
    for (std::size_t j = 0; j < p->value.numel(); ++j) {
      // Decoupled weight decay (AdamW-style).
      const double g = p->grad[j] + hp.weight_decay * p->value[j];
      m_[i][j] = static_cast<float>(hp.beta1 * m_[i][j] + (1 - hp.beta1) * g);
      v_[i][j] = static_cast<float>(hp.beta2 * v_[i][j] + (1 - hp.beta2) * g * g);
      const double mhat = m_[i][j] / bc1;
      const double vhat = v_[i][j] / bc2;
      p->value[j] -= static_cast<float>(hp.lr * mhat / (std::sqrt(vhat) + hp.eps));
    }
  }
}

void Adam::set_group_frozen(ParamGroup g, bool frozen) {
  for (Param* p : params_)
    if (p->group == g) p->frozen = frozen;
}

Sgd::Sgd(std::vector<Param*> params, HyperParams paf_hp, HyperParams other_hp,
         double momentum)
    : params_(std::move(params)), paf_hp_(paf_hp), other_hp_(other_hp),
      momentum_(momentum) {
  for (Param* p : params_) vel_.emplace_back(p->value.shape());
}

void Sgd::zero_grad() {
  for (Param* p : params_) p->grad.fill(0.0f);
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param* p = params_[i];
    if (p->frozen) continue;
    const HyperParams& hp = p->group == ParamGroup::PafCoeff ? paf_hp_ : other_hp_;
    for (std::size_t j = 0; j < p->value.numel(); ++j) {
      const double g = p->grad[j] + hp.weight_decay * p->value[j];
      vel_[i][j] = static_cast<float>(momentum_ * vel_[i][j] + g);
      p->value[j] -= static_cast<float>(hp.lr * vel_[i][j]);
    }
  }
}

void Sgd::set_group_frozen(ParamGroup g, bool frozen) {
  for (Param* p : params_)
    if (p->group == g) p->frozen = frozen;
}

}  // namespace sp::nn
