#include "nn/layers.h"

#include <cmath>

#include "common/check.h"

namespace sp::nn {
namespace {

void kaiming_init(Tensor& w, int fan_in, sp::Rng& rng) {
  const double bound = std::sqrt(6.0 / fan_in);
  for (std::size_t i = 0; i < w.numel(); ++i)
    w[i] = static_cast<float>(rng.uniform(-bound, bound));
}

int out_size(int in, int k, int stride, int pad) {
  return (in + 2 * pad - k) / stride + 1;
}

}  // namespace

// ----------------------------------------------------------------- Conv2d --

Conv2d::Conv2d(int in_ch, int out_ch, int kernel, int stride, int pad, sp::Rng& rng,
               bool bias, const std::string& name)
    : in_ch_(in_ch), out_ch_(out_ch), k_(kernel), stride_(stride), pad_(pad),
      has_bias_(bias), name_(name) {
  w_.name = name + ".w";
  w_.value = Tensor({out_ch, in_ch, kernel, kernel});
  w_.grad = Tensor({out_ch, in_ch, kernel, kernel});
  kaiming_init(w_.value, in_ch * kernel * kernel, rng);
  if (has_bias_) {
    b_.name = name + ".b";
    b_.value = Tensor({out_ch});
    b_.grad = Tensor({out_ch});
  }
}

void Conv2d::im2col(const Tensor& x, int n, std::vector<float>& col) const {
  const int h = x.dim(2), w = x.dim(3);
  const int kk = k_ * k_;
  std::size_t idx = 0;
  for (int c = 0; c < in_ch_; ++c) {
    for (int p = 0; p < kk; ++p) {
      const int dy = p / k_, dx = p % k_;
      for (int oy = 0; oy < oh_; ++oy) {
        const int iy = oy * stride_ + dy - pad_;
        for (int ox = 0; ox < ow_; ++ox) {
          const int ix = ox * stride_ + dx - pad_;
          col[idx++] = (iy >= 0 && iy < h && ix >= 0 && ix < w) ? x.at(n, c, iy, ix) : 0.0f;
        }
      }
    }
  }
}

void Conv2d::col2im(const std::vector<float>& col, int n, Tensor& gx) const {
  const int h = gx.dim(2), w = gx.dim(3);
  const int kk = k_ * k_;
  std::size_t idx = 0;
  for (int c = 0; c < in_ch_; ++c) {
    for (int p = 0; p < kk; ++p) {
      const int dy = p / k_, dx = p % k_;
      for (int oy = 0; oy < oh_; ++oy) {
        const int iy = oy * stride_ + dy - pad_;
        for (int ox = 0; ox < ow_; ++ox) {
          const int ix = ox * stride_ + dx - pad_;
          if (iy >= 0 && iy < h && ix >= 0 && ix < w) gx.at(n, c, iy, ix) += col[idx];
          ++idx;
        }
      }
    }
  }
}

Tensor Conv2d::forward(const Tensor& x, bool train) {
  sp::check(x.ndim() == 4 && x.dim(1) == in_ch_, "Conv2d: bad input " + x.shape_str());
  const int batch = x.dim(0);
  oh_ = out_size(x.dim(2), k_, stride_, pad_);
  ow_ = out_size(x.dim(3), k_, stride_, pad_);
  Tensor y({batch, out_ch_, oh_, ow_});
  const int cols = oh_ * ow_;
  const int rows = in_ch_ * k_ * k_;
  std::vector<float> col(static_cast<std::size_t>(rows) * cols);
  for (int n = 0; n < batch; ++n) {
    im2col(x, n, col);
    for (int oc = 0; oc < out_ch_; ++oc) {
      const float* wrow = &w_.value.vec()[static_cast<std::size_t>(oc) * rows];
      float* out = &y.vec()[(static_cast<std::size_t>(n) * out_ch_ + oc) * cols];
      const double bv =
          has_bias_ ? static_cast<double>(b_.value[static_cast<std::size_t>(oc)]) : 0.0;
      for (int i = 0; i < cols; ++i) {
        double acc = bv;
        for (int r = 0; r < rows; ++r)
          acc += static_cast<double>(wrow[r]) *
                 static_cast<double>(col[static_cast<std::size_t>(r) * cols + i]);
        out[i] = static_cast<float>(acc);
      }
    }
  }
  if (train) x_cache_ = x;
  return y;
}

Tensor Conv2d::backward(const Tensor& gy) {
  const Tensor& x = x_cache_;
  const int batch = x.dim(0);
  const int cols = oh_ * ow_;
  const int rows = in_ch_ * k_ * k_;
  Tensor gx(x.shape());
  std::vector<float> col(static_cast<std::size_t>(rows) * cols);
  std::vector<float> gcol(static_cast<std::size_t>(rows) * cols);
  for (int n = 0; n < batch; ++n) {
    const float* gyn = &gy.vec()[static_cast<std::size_t>(n) * out_ch_ * cols];
    im2col(x, n, col);
    // dW += gy * col^T
    matmul_nt(gyn, col.data(), w_.grad.data(), out_ch_, cols, rows, /*accumulate=*/true);
    // dcol = W^T * gy
    matmul_tn(w_.value.data(), gyn, gcol.data(), rows, out_ch_, cols);
    col2im(gcol, n, gx);
    if (has_bias_) {
      for (int oc = 0; oc < out_ch_; ++oc) {
        float acc = 0.0f;
        const float* row = gyn + static_cast<std::size_t>(oc) * cols;
        for (int i = 0; i < cols; ++i) acc += row[i];
        b_.grad[static_cast<std::size_t>(oc)] += acc;
      }
    }
  }
  return gx;
}

std::vector<double> Conv2d::weight_values() const {
  std::vector<double> out(w_.value.numel());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<double>(w_.value[i]);
  return out;
}

std::vector<double> Conv2d::bias_values() const {
  if (!has_bias_) return {};
  std::vector<double> out(b_.value.numel());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<double>(b_.value[i]);
  return out;
}

void Conv2d::collect_params(std::vector<Param*>& out) {
  out.push_back(&w_);
  if (has_bias_) out.push_back(&b_);
}

// ----------------------------------------------------------------- Linear --

Linear::Linear(int in, int out, sp::Rng& rng, bool bias, const std::string& name)
    : in_(in), out_(out), has_bias_(bias), name_(name) {
  w_.name = name + ".w";
  w_.value = Tensor({out, in});
  w_.grad = Tensor({out, in});
  kaiming_init(w_.value, in, rng);
  if (has_bias_) {
    b_.name = name + ".b";
    b_.value = Tensor({out});
    b_.grad = Tensor({out});
  }
}

Tensor Linear::forward(const Tensor& x, bool train) {
  sp::check(x.ndim() == 2 && x.dim(1) == in_, "Linear: bad input " + x.shape_str());
  const int batch = x.dim(0);
  Tensor y({batch, out_});
  // Accumulate in double so the output rounds to float exactly once — this
  // keeps the lowered FHE matmul within its 2^-20 parity budget (same
  // contract as Window1d::forward).
  for (int n = 0; n < batch; ++n)
    for (int o = 0; o < out_; ++o) {
      double acc = has_bias_ ? static_cast<double>(b_.value[static_cast<std::size_t>(o)])
                             : 0.0;
      const float* wrow = &w_.value.vec()[static_cast<std::size_t>(o) * in_];
      for (int i = 0; i < in_; ++i)
        acc += static_cast<double>(x.at(n, i)) * static_cast<double>(wrow[i]);
      y.at(n, o) = static_cast<float>(acc);
    }
  if (train) x_cache_ = x;
  return y;
}

Tensor Linear::backward(const Tensor& gy) {
  const int batch = x_cache_.dim(0);
  // dW += gy^T * x
  matmul_tn(gy.data(), x_cache_.data(), w_.grad.data(), out_, batch, in_, true);
  if (has_bias_)
    for (int n = 0; n < batch; ++n)
      for (int o = 0; o < out_; ++o) b_.grad[static_cast<std::size_t>(o)] += gy.at(n, o);
  Tensor gx({batch, in_});
  matmul(gy.data(), w_.value.data(), gx.data(), batch, out_, in_);
  return gx;
}

void Linear::collect_params(std::vector<Param*>& out) {
  out.push_back(&w_);
  if (has_bias_) out.push_back(&b_);
}

std::vector<double> Linear::weight_values() const {
  std::vector<double> out(w_.value.numel());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<double>(w_.value[i]);
  return out;
}

std::vector<double> Linear::bias_values() const {
  if (!has_bias_) return {};
  std::vector<double> out(b_.value.numel());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<double>(b_.value[i]);
  return out;
}

// ------------------------------------------------------------ BatchNorm2d --

BatchNorm2d::BatchNorm2d(int channels, bool track_running_stats, double momentum,
                         const std::string& name)
    : ch_(channels), track_(track_running_stats), momentum_(momentum), name_(name) {
  gamma_.name = name + ".gamma";
  gamma_.value = Tensor({channels});
  gamma_.value.fill(1.0f);
  gamma_.grad = Tensor({channels});
  beta_.name = name + ".beta";
  beta_.value = Tensor({channels});
  beta_.grad = Tensor({channels});
  running_mean_ = Tensor({channels});
  running_var_ = Tensor({channels});
  running_var_.fill(1.0f);
}

Tensor BatchNorm2d::forward(const Tensor& x, bool train) {
  sp::check(x.ndim() == 4 && x.dim(1) == ch_, "BatchNorm2d: bad input " + x.shape_str());
  const int batch = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int cnt = batch * h * w;
  count_per_ch_ = cnt;
  const bool use_batch_stats = train || !track_;

  mean_.assign(static_cast<std::size_t>(ch_), 0.0f);
  invstd_.assign(static_cast<std::size_t>(ch_), 0.0f);
  for (int c = 0; c < ch_; ++c) {
    double mean, var;
    if (use_batch_stats) {
      double s = 0.0, s2 = 0.0;
      for (int n = 0; n < batch; ++n)
        for (int i = 0; i < h; ++i)
          for (int j = 0; j < w; ++j) {
            const double v = x.at(n, c, i, j);
            s += v;
            s2 += v * v;
          }
      mean = s / cnt;
      var = s2 / cnt - mean * mean;
      if (train && track_) {
        running_mean_[static_cast<std::size_t>(c)] = static_cast<float>(
            (1 - momentum_) * running_mean_[static_cast<std::size_t>(c)] + momentum_ * mean);
        running_var_[static_cast<std::size_t>(c)] = static_cast<float>(
            (1 - momentum_) * running_var_[static_cast<std::size_t>(c)] + momentum_ * var);
      }
    } else {
      mean = running_mean_[static_cast<std::size_t>(c)];
      var = running_var_[static_cast<std::size_t>(c)];
    }
    mean_[static_cast<std::size_t>(c)] = static_cast<float>(mean);
    invstd_[static_cast<std::size_t>(c)] = static_cast<float>(1.0 / std::sqrt(var + 1e-5));
  }

  Tensor y(x.shape());
  xhat_ = Tensor(x.shape());
  for (int c = 0; c < ch_; ++c) {
    const float m = mean_[static_cast<std::size_t>(c)];
    const float is = invstd_[static_cast<std::size_t>(c)];
    const float g = gamma_.value[static_cast<std::size_t>(c)];
    const float b = beta_.value[static_cast<std::size_t>(c)];
    for (int n = 0; n < batch; ++n)
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) {
          const float xh = (x.at(n, c, i, j) - m) * is;
          xhat_.at(n, c, i, j) = xh;
          y.at(n, c, i, j) = g * xh + b;
        }
  }
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& gy) {
  const int batch = gy.dim(0), h = gy.dim(2), w = gy.dim(3);
  const float cnt = static_cast<float>(count_per_ch_);
  Tensor gx(gy.shape());
  for (int c = 0; c < ch_; ++c) {
    float sum_gy = 0.0f, sum_gy_xhat = 0.0f;
    for (int n = 0; n < batch; ++n)
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) {
          sum_gy += gy.at(n, c, i, j);
          sum_gy_xhat += gy.at(n, c, i, j) * xhat_.at(n, c, i, j);
        }
    gamma_.grad[static_cast<std::size_t>(c)] += sum_gy_xhat;
    beta_.grad[static_cast<std::size_t>(c)] += sum_gy;
    const float g = gamma_.value[static_cast<std::size_t>(c)];
    const float is = invstd_[static_cast<std::size_t>(c)];
    for (int n = 0; n < batch; ++n)
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) {
          const float xh = xhat_.at(n, c, i, j);
          gx.at(n, c, i, j) =
              g * is / cnt * (cnt * gy.at(n, c, i, j) - sum_gy - xh * sum_gy_xhat);
        }
  }
  return gx;
}

void BatchNorm2d::collect_params(std::vector<Param*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

// ------------------------------------------------------------------- ReLU --

Tensor ReLU::forward(const Tensor& x, bool train) {
  Tensor y(x.shape());
  if (train) mask_ = Tensor(x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i) {
    if (profile_) profile_(x[i]);
    const bool pos = x[i] > 0.0f;
    y[i] = pos ? x[i] : 0.0f;
    if (train) mask_[i] = pos ? 1.0f : 0.0f;
  }
  return y;
}

Tensor ReLU::backward(const Tensor& gy) {
  Tensor gx(gy.shape());
  for (std::size_t i = 0; i < gy.numel(); ++i) gx[i] = gy[i] * mask_[i];
  return gx;
}

// -------------------------------------------------------------- MaxPool2d --

MaxPool2d::MaxPool2d(int kernel, int stride, int pad, const std::string& name)
    : k_(kernel), stride_(stride), pad_(pad), name_(name) {}

Tensor MaxPool2d::forward(const Tensor& x, bool train) {
  const int batch = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int oh = out_size(h, k_, stride_, pad_), ow = out_size(w, k_, stride_, pad_);
  Tensor y({batch, c, oh, ow});
  in_shape_ = x.shape();
  if (train) argmax_.assign(y.numel(), -1);
  std::size_t oidx = 0;
  for (int n = 0; n < batch; ++n)
    for (int cc = 0; cc < c; ++cc)
      for (int oy = 0; oy < oh; ++oy)
        for (int ox = 0; ox < ow; ++ox, ++oidx) {
          float best = -1e30f;
          int best_idx = -1;
          float prev = 0.0f;
          bool have_prev = false;
          for (int dy = 0; dy < k_; ++dy)
            for (int dx = 0; dx < k_; ++dx) {
              const int iy = oy * stride_ + dy - pad_;
              const int ix = ox * stride_ + dx - pad_;
              if (iy < 0 || iy >= h || ix < 0 || ix >= w) continue;
              const float v = x.at(n, cc, iy, ix);
              if (profile_) {
                // Record pairwise tournament differences (the PAF-max
                // operands): running-max vs next element.
                if (have_prev) profile_(prev - v);
                prev = std::max(have_prev ? prev : v, v);
                have_prev = true;
              }
              if (v > best) {
                best = v;
                best_idx = ((n * c + cc) * h + iy) * w + ix;
              }
            }
          y[oidx] = best;
          if (train) argmax_[oidx] = best_idx;
        }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& gy) {
  Tensor gx(in_shape_);
  for (std::size_t i = 0; i < gy.numel(); ++i)
    if (argmax_[i] >= 0) gx[static_cast<std::size_t>(argmax_[i])] += gy[i];
  return gx;
}

// --------------------------------------------------------------- Window1d --

Window1d::Window1d(std::vector<float> taps, float bias, const std::string& name)
    : taps_(static_cast<int>(taps.size())), name_(name) {
  sp::check(taps_ >= 1, "Window1d: needs at least one tap");
  w_.name = name + ".taps";
  w_.value = Tensor({taps_});
  w_.grad = Tensor({taps_});
  for (int t = 0; t < taps_; ++t) w_.value[static_cast<std::size_t>(t)] = taps[static_cast<std::size_t>(t)];
  b_.name = name + ".b";
  b_.value = Tensor({1});
  b_.grad = Tensor({1});
  b_.value[0] = bias;
}

Tensor Window1d::forward(const Tensor& x, bool train) {
  sp::check(x.ndim() == 2, "Window1d: expects [B, W], got " + x.shape_str());
  const int batch = x.dim(0), w = x.dim(1);
  sp::check(taps_ <= w, "Window1d: more taps than slots");
  Tensor y({batch, w});
  const double bias = b_.value[0];
  for (int n = 0; n < batch; ++n)
    for (int j = 0; j < w; ++j) {
      // Accumulate in double so the output rounds to float exactly once —
      // this keeps the lowered FHE pipeline within its 2^-20 parity budget.
      double acc = bias;
      for (int t = 0; t < taps_; ++t)
        acc += static_cast<double>(w_.value[static_cast<std::size_t>(t)]) *
               static_cast<double>(x.at(n, (j + t) % w));
      y.at(n, j) = static_cast<float>(acc);
    }
  if (train) x_cache_ = x;
  return y;
}

Tensor Window1d::backward(const Tensor& gy) {
  const Tensor& x = x_cache_;
  const int batch = x.dim(0), w = x.dim(1);
  Tensor gx({batch, w});
  double gb = 0.0;
  std::vector<double> gw(static_cast<std::size_t>(taps_), 0.0);
  for (int n = 0; n < batch; ++n)
    for (int j = 0; j < w; ++j) {
      const double g = gy.at(n, j);
      gb += g;
      for (int t = 0; t < taps_; ++t) {
        gw[static_cast<std::size_t>(t)] += g * static_cast<double>(x.at(n, (j + t) % w));
        gx.at(n, (j + t) % w) +=
            static_cast<float>(g * static_cast<double>(w_.value[static_cast<std::size_t>(t)]));
      }
    }
  for (int t = 0; t < taps_; ++t)
    w_.grad[static_cast<std::size_t>(t)] += static_cast<float>(gw[static_cast<std::size_t>(t)]);
  b_.grad[0] += static_cast<float>(gb);
  return gx;
}

void Window1d::collect_params(std::vector<Param*>& out) {
  out.push_back(&w_);
  out.push_back(&b_);
}

std::vector<double> Window1d::tap_values() const {
  std::vector<double> out(static_cast<std::size_t>(taps_));
  for (int t = 0; t < taps_; ++t) out[static_cast<std::size_t>(t)] = w_.value[static_cast<std::size_t>(t)];
  return out;
}

// -------------------------------------------------------------- MaxPool1d --

MaxPool1d::MaxPool1d(int window, const std::string& name) : window_(window), name_(name) {
  sp::check(window_ >= 2, "MaxPool1d: window must be >= 2");
}

MaxPool1d::MaxPool1d(int window, int stride, const std::string& name)
    : window_(window), stride_(stride), name_(name) {
  sp::check(window_ >= 2, "MaxPool1d: window must be >= 2");
  sp::check(stride_ >= 1, "MaxPool1d: stride must be >= 1");
}

Tensor MaxPool1d::forward(const Tensor& x, bool train) {
  sp::check(x.ndim() == 2, "MaxPool1d: expects [B, W], got " + x.shape_str());
  const int batch = x.dim(0), w = x.dim(1);
  sp::check(window_ <= w, "MaxPool1d: window wider than the slot count");
  sp::check(w % stride_ == 0, "MaxPool1d: stride must divide the width");
  const int ow = w / stride_;
  in_shape_ = x.shape();
  Tensor y({batch, ow});
  if (train) argmax_.assign(y.numel(), -1);
  std::size_t oidx = 0;
  for (int n = 0; n < batch; ++n)
    for (int j = 0; j < ow; ++j, ++oidx) {
      const int base = j * stride_;
      float best = x.at(n, base);
      int best_idx = n * w + base;
      for (int t = 1; t < window_; ++t) {
        const float v = x.at(n, (base + t) % w);
        // Pairwise tournament differences (the PAF-max operands).
        if (profile_) profile_(best - v);
        if (v > best) {
          best = v;
          best_idx = n * w + (base + t) % w;
        }
      }
      y[oidx] = best;
      if (train) argmax_[oidx] = best_idx;
    }
  return y;
}

Tensor MaxPool1d::backward(const Tensor& gy) {
  Tensor gx(in_shape_);
  for (std::size_t i = 0; i < gy.numel(); ++i)
    if (argmax_[i] >= 0) gx[static_cast<std::size_t>(argmax_[i])] += gy[i];
  return gx;
}

// -------------------------------------------------------------- AvgPool2d --

AvgPool2d::AvgPool2d(int kernel, int stride, const std::string& name)
    : k_(kernel), stride_(stride), name_(name) {}

Tensor AvgPool2d::forward(const Tensor& x, bool) {
  const int batch = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int oh = out_size(h, k_, stride_, 0), ow = out_size(w, k_, stride_, 0);
  in_shape_ = x.shape();
  Tensor y({batch, c, oh, ow});
  const float inv = 1.0f / static_cast<float>(k_ * k_);
  for (int n = 0; n < batch; ++n)
    for (int cc = 0; cc < c; ++cc)
      for (int oy = 0; oy < oh; ++oy)
        for (int ox = 0; ox < ow; ++ox) {
          float acc = 0.0f;
          for (int dy = 0; dy < k_; ++dy)
            for (int dx = 0; dx < k_; ++dx)
              acc += x.at(n, cc, oy * stride_ + dy, ox * stride_ + dx);
          y.at(n, cc, oy, ox) = acc * inv;
        }
  return y;
}

Tensor AvgPool2d::backward(const Tensor& gy) {
  Tensor gx(in_shape_);
  const int oh = gy.dim(2), ow = gy.dim(3);
  const float inv = 1.0f / static_cast<float>(k_ * k_);
  for (int n = 0; n < gy.dim(0); ++n)
    for (int cc = 0; cc < gy.dim(1); ++cc)
      for (int oy = 0; oy < oh; ++oy)
        for (int ox = 0; ox < ow; ++ox) {
          const float g = gy.at(n, cc, oy, ox) * inv;
          for (int dy = 0; dy < k_; ++dy)
            for (int dx = 0; dx < k_; ++dx)
              gx.at(n, cc, oy * stride_ + dy, ox * stride_ + dx) += g;
        }
  return gx;
}

// ----------------------------------------------------------- GlobalAvgPool --

Tensor GlobalAvgPool::forward(const Tensor& x, bool) {
  const int batch = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  in_shape_ = x.shape();
  Tensor y({batch, c, 1, 1});
  const float inv = 1.0f / static_cast<float>(h * w);
  for (int n = 0; n < batch; ++n)
    for (int cc = 0; cc < c; ++cc) {
      float acc = 0.0f;
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) acc += x.at(n, cc, i, j);
      y.at(n, cc, 0, 0) = acc * inv;
    }
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& gy) {
  Tensor gx(in_shape_);
  const int h = in_shape_[2], w = in_shape_[3];
  const float inv = 1.0f / static_cast<float>(h * w);
  for (int n = 0; n < gy.dim(0); ++n)
    for (int cc = 0; cc < gy.dim(1); ++cc) {
      const float g = gy.at(n, cc, 0, 0) * inv;
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) gx.at(n, cc, i, j) = g;
    }
  return gx;
}

// ---------------------------------------------------------------- Flatten --

Tensor Flatten::forward(const Tensor& x, bool) {
  in_shape_ = x.shape();
  return x.reshaped({x.dim(0), static_cast<int>(x.numel()) / x.dim(0)});
}

Tensor Flatten::backward(const Tensor& gy) { return gy.reshaped(in_shape_); }

// ---------------------------------------------------------------- Dropout --

Tensor Dropout::forward(const Tensor& x, bool train) {
  if (!train || !enabled_ || p_ <= 0.0) {
    mask_ = Tensor();
    return x;
  }
  mask_ = Tensor(x.shape());
  Tensor y(x.shape());
  const float keep = static_cast<float>(1.0 - p_);
  for (std::size_t i = 0; i < x.numel(); ++i) {
    const bool on = !rng_.coin(p_);
    mask_[i] = on ? 1.0f / keep : 0.0f;
    y[i] = x[i] * mask_[i];
  }
  return y;
}

Tensor Dropout::backward(const Tensor& gy) {
  if (mask_.numel() == 0) return gy;
  Tensor gx(gy.shape());
  for (std::size_t i = 0; i < gy.numel(); ++i) gx[i] = gy[i] * mask_[i];
  return gx;
}

}  // namespace sp::nn
