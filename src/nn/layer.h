#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace sp::nn {

/// Parameter group: SMART-PAF's Alternate Training (§4.4) trains PAF
/// coefficients and all other parameters with different hyperparameters and
/// alternately freezes one group.
enum class ParamGroup { PafCoeff, Other };

/// A trainable parameter: value + gradient + group/freeze metadata.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;
  ParamGroup group = ParamGroup::Other;
  bool frozen = false;
};

/// Base class of every network component. Layers own their activations
/// cache: forward(train=true) must be followed by exactly one backward().
class Layer {
 public:
  virtual ~Layer() = default;

  virtual Tensor forward(const Tensor& x, bool train) = 0;
  /// Propagates dL/dy to dL/dx, accumulating parameter gradients.
  virtual Tensor backward(const Tensor& gy) = 0;

  /// Appends this layer's (and children's) parameters.
  virtual void collect_params(std::vector<Param*>& out) { (void)out; }

  /// Visits direct child layer *slots* so a pass can replace children
  /// in-place (non-polynomial operator replacement). Leaves do nothing.
  virtual void visit_children(const std::function<void(std::unique_ptr<Layer>&)>& fn) {
    (void)fn;
  }

  virtual std::string name() const = 0;

  /// True for operators CKKS cannot evaluate natively (ReLU, MaxPool).
  virtual bool is_nonpoly() const { return false; }
};

}  // namespace sp::nn
