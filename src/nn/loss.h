#pragma once

#include <vector>

#include "nn/tensor.h"

namespace sp::nn {

/// Result of a softmax cross-entropy evaluation over one batch.
struct LossResult {
  double loss = 0.0;    ///< mean cross-entropy
  Tensor grad;          ///< dL/dlogits, already divided by batch size
  int correct = 0;      ///< top-1 hits
};

/// Mean softmax cross-entropy over logits [B, C] and integer labels.
LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels);

/// Mean binary cross-entropy with the sigmoid folded in, over single-logit
/// outputs [B, 1] and 0/1 labels: grad = (sigma(z) - y) / B — the exact-
/// sigmoid plaintext oracle the encrypted trainer's parity tests lean on
/// (the encrypted path replaces sigma with its minimax PAF; this one never
/// does). `correct` counts sign agreements (z >= 0 predicts class 1).
LossResult sigmoid_bce(const Tensor& logits, const std::vector<int>& labels);

}  // namespace sp::nn
