#pragma once

#include <vector>

#include "nn/tensor.h"

namespace sp::nn {

/// Result of a softmax cross-entropy evaluation over one batch.
struct LossResult {
  double loss = 0.0;    ///< mean cross-entropy
  Tensor grad;          ///< dL/dlogits, already divided by batch size
  int correct = 0;      ///< top-1 hits
};

/// Mean softmax cross-entropy over logits [B, C] and integer labels.
LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace sp::nn
