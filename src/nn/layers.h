#pragma once

#include "common/rng.h"
#include "nn/layer.h"

namespace sp::nn {

/// 2-D convolution (im2col + matmul), Kaiming-uniform initialized.
/// forward() accumulates each output in double and rounds to float once, so
/// the FHE channel-fan lowering (double precision plus ciphertext noise)
/// stays within its 2^-20 parity budget against the plaintext forward.
class Conv2d final : public Layer {
 public:
  Conv2d(int in_ch, int out_ch, int kernel, int stride, int pad, sp::Rng& rng,
         bool bias = true, const std::string& name = "conv");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& gy) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return name_; }

  int out_channels() const { return out_ch_; }
  int in_channels() const { return in_ch_; }
  int kernel() const { return k_; }
  int stride() const { return stride_; }
  int pad() const { return pad_; }
  /// [out_ch][in_ch][k][k] weights as doubles (FhePipeline conv lowering).
  std::vector<double> weight_values() const;
  /// Bias as doubles; empty when the layer was built without bias.
  std::vector<double> bias_values() const;

 private:
  void im2col(const Tensor& x, int n, std::vector<float>& col) const;
  void col2im(const std::vector<float>& col, int n, Tensor& gx) const;

  int in_ch_, out_ch_, k_, stride_, pad_;
  bool has_bias_;
  std::string name_;
  Param w_, b_;
  Tensor x_cache_;
  int oh_ = 0, ow_ = 0;
};

/// Fully-connected layer. forward() accumulates each output in double and
/// rounds to float once, so the FHE diagonal-matmul lowering (which computes
/// in double precision plus ciphertext noise) stays within its 2^-20 parity
/// budget against the plaintext forward.
class Linear final : public Layer {
 public:
  Linear(int in, int out, sp::Rng& rng, bool bias = true,
         const std::string& name = "linear");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& gy) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return name_; }

  int in_features() const { return in_; }
  int out_features() const { return out_; }
  /// Row-major [out, in] weights as doubles (FhePipeline lowering).
  std::vector<double> weight_values() const;
  /// Bias as doubles; empty when the layer was built without bias.
  std::vector<double> bias_values() const;

 private:
  int in_, out_;
  bool has_bias_;
  std::string name_;
  Param w_, b_;
  Tensor x_cache_;
};

/// Per-channel batch normalization. With `track_running_stats=false` (the
/// paper's Table-5 setting) batch statistics are used in both modes.
class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(int channels, bool track_running_stats = false,
                       double momentum = 0.1, const std::string& name = "bn");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& gy) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return name_; }

 private:
  int ch_;
  bool track_;
  double momentum_;
  std::string name_;
  Param gamma_, beta_;
  Tensor running_mean_, running_var_;
  // backward cache
  Tensor xhat_;
  std::vector<float> invstd_, mean_;
  int count_per_ch_ = 0;
};

/// ReLU — a non-polynomial operator (replacement target).
class ReLU final : public Layer {
 public:
  explicit ReLU(const std::string& name = "relu") : name_(name) {}
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& gy) override;
  std::string name() const override { return name_; }
  bool is_nonpoly() const override { return true; }

  /// Optional profiling hook: when set, forward() records every input value
  /// (Coefficient Tuning step 2, paper §4.2).
  using profile_fn = std::function<void(float)>;
  void set_profile(profile_fn fn) { profile_ = std::move(fn); }

 private:
  std::string name_;
  Tensor mask_;
  profile_fn profile_;
};

/// Max pooling — a non-polynomial operator (replacement target).
class MaxPool2d final : public Layer {
 public:
  MaxPool2d(int kernel, int stride, int pad = 0, const std::string& name = "maxpool");
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& gy) override;
  std::string name() const override { return name_; }
  bool is_nonpoly() const override { return true; }

  int kernel() const { return k_; }
  int stride() const { return stride_; }
  int pad() const { return pad_; }

  /// Profiling hook recording pairwise tournament differences (the PAF-max
  /// inputs), used by Coefficient Tuning for pool sites.
  using profile_fn = std::function<void(float)>;
  void set_profile(profile_fn fn) { profile_ = std::move(fn); }

 private:
  int k_, stride_, pad_;
  std::string name_;
  std::vector<int> argmax_;
  std::vector<int> in_shape_;
  profile_fn profile_;
};

/// Cyclic 1-D window (circular correlation) over the last axis of a [B, W]
/// tensor: y[b, j] = bias + sum_t taps[t] * x[b, (j + t) mod W]. Taps and
/// bias are trainable. The cyclic boundary matches the FHE rotation-fan
/// window stage (a CKKS rotation is cyclic over all N/2 slots), so
/// `smartpaf::FhePipeline::lower` maps it to a WindowStage — with exact
/// slot parity when the network runs at W == slot_count (the lowered
/// pipeline wraps at the slot boundary, the layer wraps at W; at other
/// widths the last taps-1 outputs differ).
class Window1d final : public Layer {
 public:
  explicit Window1d(std::vector<float> taps, float bias = 0.0f,
                    const std::string& name = "window1d");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& gy) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return name_; }

  int taps() const { return taps_; }
  /// Current tap values (the trainable parameter, read back as doubles).
  std::vector<double> tap_values() const;
  double bias_value() const { return static_cast<double>(b_.value[0]); }

 private:
  int taps_;
  std::string name_;
  Param w_, b_;
  Tensor x_cache_;
};

/// Cyclic 1-D max window over the last axis of [B, W]:
/// y[b, j] = max over t < window of x[b, (j * stride + t) mod W], one output
/// per stride (output width W / stride; stride must divide W). A
/// non-polynomial operator (replacement target -> smartpaf::PafMaxPool1d);
/// the cyclic geometry keeps the output slot-aligned for FhePipeline
/// lowering — stride 1 is the slot-identity layout, stride > 1 lowers to a
/// stride-1 tournament stage plus a CompactStage. With window <= stride the
/// pool never wraps at W, so plaintext/FHE parity holds at any width.
class MaxPool1d final : public Layer {
 public:
  explicit MaxPool1d(int window, const std::string& name = "maxpool1d");
  MaxPool1d(int window, int stride, const std::string& name = "maxpool1d");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& gy) override;
  std::string name() const override { return name_; }
  bool is_nonpoly() const override { return true; }

  int window() const { return window_; }
  int stride() const { return stride_; }

  /// Profiling hook recording pairwise tournament differences (the PAF-max
  /// inputs), used by Coefficient Tuning for pool sites.
  using profile_fn = std::function<void(float)>;
  void set_profile(profile_fn fn) { profile_ = std::move(fn); }

 private:
  int window_;
  int stride_ = 1;
  std::string name_;
  std::vector<int> argmax_;
  std::vector<int> in_shape_;
  profile_fn profile_;
};

/// Average pooling.
class AvgPool2d final : public Layer {
 public:
  AvgPool2d(int kernel, int stride, const std::string& name = "avgpool");
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& gy) override;
  std::string name() const override { return name_; }

  int kernel() const { return k_; }
  int stride() const { return stride_; }

 private:
  int k_, stride_;
  std::string name_;
  std::vector<int> in_shape_;
};

/// Global average pooling to 1x1.
class GlobalAvgPool final : public Layer {
 public:
  explicit GlobalAvgPool(const std::string& name = "gap") : name_(name) {}
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& gy) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::vector<int> in_shape_;
};

/// [B,C,H,W] -> [B, C*H*W].
class Flatten final : public Layer {
 public:
  explicit Flatten(const std::string& name = "flatten") : name_(name) {}
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& gy) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::vector<int> in_shape_;
};

/// Inverted dropout. The SMART-PAF scheduler enables it on detecting
/// overfitting (Fig. 6), so the rate is mutable at runtime.
class Dropout final : public Layer {
 public:
  explicit Dropout(double p = 0.5, std::uint64_t seed = 7,
                   const std::string& name = "dropout")
      : p_(p), enabled_(false), rng_(seed), name_(name) {}

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& gy) override;
  std::string name() const override { return name_; }

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

 private:
  double p_;
  bool enabled_;
  sp::Rng rng_;
  std::string name_;
  Tensor mask_;
};

}  // namespace sp::nn
