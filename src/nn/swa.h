#pragma once

#include <vector>

#include "nn/layer.h"

namespace sp::nn {

/// Stochastic Weight Averaging: maintains a running average of parameter
/// values across update() calls. The SMART-PAF scheduler applies SWA after
/// each training group of E epochs (paper Fig. 6 / §6).
class SwaAverager {
 public:
  explicit SwaAverager(std::vector<Param*> params);

  /// Folds the current parameter values into the running average.
  void update();

  /// Number of snapshots averaged so far.
  int count() const { return count_; }

  /// The averaged values (aligned with the constructor's parameter order).
  const std::vector<Tensor>& average() const { return avg_; }

  /// Writes the average into the live parameters.
  void apply() const;

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> avg_;
  int count_ = 0;
};

}  // namespace sp::nn
