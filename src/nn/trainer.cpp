#include "nn/trainer.h"

#include <cstdio>

#include "nn/loss.h"

namespace sp::nn {

Trainer::Trainer(Model& model, const Dataset& train, const Dataset& val, TrainConfig cfg)
    : model_(&model), train_(&train), val_(&val), cfg_(cfg), rng_(cfg.seed),
      opt_(model.params(), cfg.paf_hp, cfg.other_hp) {}

void Trainer::rebind() { opt_.rebind(model_->params()); }

EpochResult Trainer::run_epoch() {
  EpochResult res;
  BatchIterator it(*train_, cfg_.batch_size, rng_, /*shuffle=*/true);
  Batch b;
  double loss_sum = 0.0;
  int correct = 0, seen = 0, batches = 0;
  while (it.next(b)) {
    opt_.zero_grad();
    const Tensor logits = model_->forward(b.x, /*train=*/true);
    const LossResult l = softmax_cross_entropy(logits, b.y);
    model_->backward(l.grad);
    opt_.step();
    loss_sum += l.loss;
    correct += l.correct;
    seen += static_cast<int>(b.y.size());
    ++batches;
  }
  res.train_loss = batches ? loss_sum / batches : 0.0;
  res.train_acc = seen ? static_cast<double>(correct) / seen : 0.0;
  res.val_acc = evaluate(*val_);
  if (cfg_.verbose)
    std::printf("  epoch: loss %.4f train %.3f val %.3f\n", res.train_loss, res.train_acc,
                res.val_acc);
  return res;
}

double Trainer::evaluate(const Dataset& ds) {
  sp::Rng eval_rng(1);  // unused (no shuffle)
  BatchIterator it(ds, cfg_.batch_size, eval_rng, /*shuffle=*/false);
  Batch b;
  int correct = 0, seen = 0;
  while (it.next(b)) {
    const Tensor logits = model_->forward(b.x, /*train=*/false);
    for (int n = 0; n < logits.dim(0); ++n) {
      int argmax = 0;
      for (int c = 1; c < logits.dim(1); ++c)
        if (logits.at(n, c) > logits.at(n, argmax)) argmax = c;
      if (argmax == b.y[static_cast<std::size_t>(n)]) ++correct;
      ++seen;
    }
  }
  return seen ? static_cast<double>(correct) / seen : 0.0;
}

}  // namespace sp::nn
