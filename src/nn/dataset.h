#pragma once

#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"

namespace sp::nn {

/// One mini-batch: images [B, C, H, W] + integer labels.
struct Batch {
  Tensor x;
  std::vector<int> y;
};

/// In-memory labelled image dataset.
struct Dataset {
  Tensor images;            ///< [N, C, H, W]
  std::vector<int> labels;  ///< size N
  int num_classes = 0;

  int size() const { return images.numel() ? images.dim(0) : 0; }

  /// Assembles a batch from sample indices.
  Batch batch(const std::vector<int>& idx) const;
};

/// Shuffling mini-batch iterator over a dataset.
class BatchIterator {
 public:
  BatchIterator(const Dataset& ds, int batch_size, sp::Rng& rng, bool shuffle = true);
  bool next(Batch& out);
  void reset();

 private:
  const Dataset* ds_;
  int batch_size_;
  sp::Rng* rng_;
  bool shuffle_;
  std::vector<int> order_;
  std::size_t pos_ = 0;
};

}  // namespace sp::nn
