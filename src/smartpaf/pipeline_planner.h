#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fhe/poly_eval.h"
#include "smartpaf/pipeline.h"

namespace sp::smartpaf {

class FheRuntime;  // smartpaf/fhe_deploy.h

/// Per-operation cost table the Planner weighs schedule candidates with.
///
/// Two sources: `heuristic()` reproduces the historical ct-ct-mult-count
/// model (relative unit weights; picks BSGS and hoisted fans exactly like
/// the pre-planner code paths), and `calibrate()` micro-benchmarks every
/// primitive on a live FheRuntime at its top level — multiply, relinearize,
/// rescale, plaintext multiply, add, rotate, hoist, hoisted rotate — so the
/// plan reflects what THIS parameter set actually pays. Calibrated tables
/// serialize to JSON (`load_or_calibrate` caches one per parameter set,
/// fingerprinted by ring size and chain length).
struct CostModel {
  double ct_mult_ms = 1.0;
  double relin_ms = 0.3;
  double rescale_ms = 0.15;
  double plain_mult_ms = 0.05;
  double add_ms = 0.01;
  double rotate_ms = 1.0;          ///< naive rotation (decompose + key inner product)
  double hoist_ms = 0.25;          ///< one-time fan decomposition
  double hoisted_rotate_ms = 0.5;  ///< per-rotation cost after hoisting

  std::size_t poly_degree = 0;  ///< fingerprint: ring size the table was measured at
  int q_count = 0;              ///< fingerprint: chain length
  bool measured = false;        ///< false for the heuristic unit table

  /// @brief The historical ct-ct-mult-count model as relative unit weights.
  static CostModel heuristic() { return CostModel(); }

  /// @brief Micro-benchmarks every evaluator primitive on `rt` (median of
  /// `repeats` timed runs each, at top level). Performs real homomorphic
  /// operations: expect a few hundred ms and counter increments.
  static CostModel calibrate(FheRuntime& rt, int repeats = 5);

  /// @brief Returns the table cached at `path` when its fingerprint matches
  /// `rt`'s parameter set; otherwise calibrates and (best-effort) writes the
  /// file, creating parent directories.
  static CostModel load_or_calibrate(FheRuntime& rt, const std::string& path,
                                     int repeats = 5);

  /// @brief True when the fingerprint matches the context's parameter set.
  bool matches(const fhe::CkksContext& ctx) const;

  /// @brief Serializes the table to a one-object JSON string.
  std::string to_json() const;
  /// @brief Parses to_json() output; nullopt on malformed input.
  static std::optional<CostModel> from_json(const std::string& text);

  /// @brief Predicted cost (ms for measured tables, unit-weight score
  /// otherwise) of a schedule's mult/relin/rescale/plain counts.
  double eval_cost(const fhe::SchedulePrediction& ops) const;
  /// @brief Predicted cost of a rotation fan of `fan_size` steps.
  double fan_cost(int fan_size, bool hoisted) const;
};

/// The planned execution of one pipeline stage.
struct StagePlan {
  std::string label;
  int level_in = 0;   ///< levels remaining when the stage starts
  int level_out = 0;  ///< levels remaining after the stage
  bool folded = false;       ///< stage absorbed into a later stage
  /// Folded by the adjacent-linear merge pass (into the next linear stage)
  /// rather than into a PAF envelope.
  bool merged_into_next = false;
  /// Set on the survivor of an adjacent-linear merge run: the combined
  /// scale/bias the stage executes instead of its own coefficients.
  std::optional<LinearStage> merged_linear;
  double pre_factor = 1.0;   ///< PAF-ReLU: scalar folded into the envelope
  fhe::PafEvaluator::Strategy strategy = fhe::PafEvaluator::Strategy::BSGS;
  bool lazy_relin = true;
  bool hoist_fan = true;           ///< rotation fans share one decomposition
  /// Hoistable fan from the stage input (window/pool taps, compact masks,
  /// matmul BSGS baby steps).
  std::vector<int> rotation_steps;
  /// MatMul/Conv: naive giant-step rotations of the BSGS block sums.
  std::vector<int> giant_steps;
  int bsgs_n1 = 0;                 ///< MatMul only: chosen baby block size
  /// Conv only: chosen channel-offset BSGS block size (0 = pure rotation
  /// fan, the im2col-style baseline; >= 1 = giant steps over ch_stride).
  int conv_n1 = -1;
  /// MatMul: nonzero diagonal count; Conv: plaintext mask count.
  int diag_mults = 0;
  std::size_t width_in = 0;        ///< tracked slot-layout width entering
  std::size_t width_out = 0;       ///< ... and leaving the stage
  StageLayout layout_in;           ///< slot layout entering the stage
  StageLayout layout_out;          ///< ... and leaving it
  fhe::SchedulePrediction ops;     ///< predicted evaluator op counts
  double predicted_cost = 0.0;     ///< CostModel-weighted stage cost
};

/// A validated, inspectable execution plan: per-stage levels, schedules and
/// predicted costs, produced before any ciphertext exists.
struct Plan {
  std::vector<StagePlan> stages;
  int chain_levels = 0;   ///< levels the prime chain offers
  int levels_used = 0;    ///< levels the planned pipeline consumes
  /// Slot-layout repeat stride (BatchRunner packing); 0 = one layout over
  /// the whole slot vector. MatMul diagonals and compact masks replicate at
  /// this stride so every packed request computes its own product.
  std::size_t pack_stride = 0;
  double predicted_cost = 0.0;
  bool measured_costs = false;  ///< cost column is calibrated ms, not units

  /// @brief Human-readable plan: one line per stage with level span,
  /// schedule choice, fan/hoisting, fold target and predicted cost.
  std::string describe() const;

  /// @brief Union of every stage's rotation steps — baby fans AND giant
  /// steps — sorted and deduplicated; pass to FheRuntime::rotation_keys for
  /// one up-front keygen.
  std::vector<int> rotation_steps() const;
};

/// Planner options (everything optional; defaults follow the pipeline).
struct PlanOptions {
  /// Overrides the pipeline's RescalePolicy.
  std::optional<RescalePolicy> rescale_policy;
  /// Pins every PAF stage's schedule (benchmark forcing); unset = pick the
  /// cheaper of Ladder/BSGS under the cost model.
  std::optional<fhe::PafEvaluator::Strategy> force_strategy;
  /// Pins fan hoisting; unset = hoist when the cost model says it pays.
  std::optional<bool> force_hoist;
  /// Pins every MatMul stage's BSGS baby block size (1 = the naive
  /// per-diagonal rotation loop, benchmark baseline); unset = pick the n1
  /// minimizing rotate/hoist/plain-mult cost under the cost table.
  std::optional<int> force_matmul_n1;
  /// Pins every Conv stage's channel-offset block size (0 = the pure
  /// rotation fan, the naive im2col baseline); unset = pick the cheaper of
  /// fan and BSGS under the cost table.
  std::optional<int> force_conv_n1;
  /// Slot-layout repeat stride for packed batches (0 = whole slot vector):
  /// widths are validated against it and MatMul/Compact plaintexts
  /// replicate per request. BatchRunner passes its input_size here.
  std::size_t pack_stride = 0;
  /// Lazy relinearization for PAF stages.
  bool lazy_relin = true;
};

/// Validates a pipeline against a prime chain and chooses per-stage
/// schedules by predicted cost.
class Planner {
 public:
  /// @brief Plans `pipe` for the chain described by `ctx`.
  ///
  /// Validation: stage shapes (per-slot vectors vs slot count, pool
  /// windows, matmul/compact slot-layout widths) and the end-to-end level
  /// budget — a pipeline deeper than the chain is rejected with a per-stage
  /// level breakdown in the error message.
  /// Decisions: adjacent-linear merging (one rescale per run),
  /// scalar-linear folding (RescalePolicy), Ladder-vs-BSGS per PAF stage,
  /// the MatMul BSGS n1 split, hoisted-vs-naive rotation fans, lazy-relin
  /// joins — all by `cost.eval_cost`/`fan_cost`, so a calibrated table
  /// plans from measured latencies instead of op counts. Planning is
  /// deterministic: the same pipeline and cost table always produce the
  /// same plan.
  /// @param pipe  the stage graph
  /// @param ctx   parameter set to validate against (no keys needed)
  /// @param cost  heuristic or calibrated cost table
  /// @param opts  overrides (forced strategies for benchmarking, etc.)
  static Plan plan(const FhePipeline& pipe, const fhe::CkksContext& ctx,
                   const CostModel& cost, const PlanOptions& opts = {});
};

}  // namespace sp::smartpaf
