#pragma once

#include "approx/composite.h"
#include "nn/layer.h"

namespace sp::smartpaf {

/// Input scaling mode of a PAF layer (paper §4.5).
///
/// Dynamic Scaling (training): scale = batch max |input|, so PAF inputs
/// always span [-1, 1]. Static Scaling (FHE deployment): the scale is frozen
/// to the running max observed during training — FHE has no value-dependent
/// operators, so the batch max is unavailable there.
enum class ScaleMode { Dynamic, Static };

/// Common interface of the two PAF replacement layers, used by the
/// replacement pass, Coefficient Tuning, scaling conversion and deployment.
class PafLayerBase : public nn::Layer {
 public:
  PafLayerBase(approx::CompositePaf paf, std::string name, ScaleMode mode, bool odd_only);

  /// The composite PAF with coefficients synced from the trainable param.
  const approx::CompositePaf& paf() const { return paf_; }

  /// Overwrites the trainable coefficients.
  void set_coeffs(const std::vector<double>& flat);
  std::vector<double> coeffs() const;

  ScaleMode mode() const { return mode_; }
  float static_scale() const { return static_scale_; }
  float running_max() const { return running_max_; }

  /// Fixes the scale explicitly (Static mode).
  void set_static_scale(float s);

  /// DS -> SS conversion: freezes the scale to the training running max.
  void convert_to_static();
  /// Back to dynamic (training) scaling.
  void convert_to_dynamic() { mode_ = ScaleMode::Dynamic; }

  void collect_params(std::vector<nn::Param*>& out) override;
  std::string name() const override { return name_; }

 protected:
  /// Copies the trainable parameter into paf_ (call at each forward).
  void sync_coeffs();
  /// Batch scale given the observed max magnitude (updates running max when
  /// training).
  float resolve_scale(float batch_max, bool train);
  /// Zeroes gradient entries of even-degree coefficients (odd PAFs).
  void mask_even_grads();

  approx::CompositePaf paf_;
  std::string name_;
  ScaleMode mode_;
  bool odd_only_;
  nn::Param coeff_;
  float static_scale_ = 1.0f;
  float running_max_ = 0.0f;
  std::vector<bool> even_mask_;  // true at even-degree flat positions
};

/// ReLU replaced by relu(x) ≈ 0.5 (x + x · paf(x / s)) with trainable
/// composite-PAF coefficients (parameter group PafCoeff).
class PafActivation final : public PafLayerBase {
 public:
  PafActivation(approx::CompositePaf paf, std::string name,
                ScaleMode mode = ScaleMode::Dynamic, bool odd_only = true);

  nn::Tensor forward(const nn::Tensor& x, bool train) override;
  nn::Tensor backward(const nn::Tensor& gy) override;

 private:
  nn::Tensor x_cache_;
  float scale_used_ = 1.0f;
};

/// nn::MaxPool1d replaced by the cyclic pairwise PAF-max tournament over a
/// [B, W] tensor: y[b, j] folds max over x[b, j*stride..j*stride+window-1]
/// (cyclic) as m <- 0.5 ((m + v) + (m - v) · paf((m - v)/s)), one output per
/// stride (output width W / stride). The fold order matches the encrypted
/// MaxPool stage of smartpaf::FhePipeline step for step — a stride > 1 pool
/// lowers to the stride-1 tournament stage plus a CompactStage — so a
/// lowered network's plaintext forward and its FHE evaluation agree to
/// ciphertext noise.
class PafMaxPool1d final : public PafLayerBase {
 public:
  PafMaxPool1d(approx::CompositePaf paf, int window, std::string name,
               ScaleMode mode = ScaleMode::Dynamic, bool odd_only = true);
  PafMaxPool1d(approx::CompositePaf paf, int window, int stride, std::string name,
               ScaleMode mode = ScaleMode::Dynamic, bool odd_only = true);

  nn::Tensor forward(const nn::Tensor& x, bool train) override;
  nn::Tensor backward(const nn::Tensor& gy) override;

  int window() const { return window_; }
  int stride() const { return stride_; }

 private:
  int window_;
  int stride_ = 1;
  nn::Tensor x_cache_;
  float scale_used_ = 1.0f;
  // Backward scratch (reused across slots to avoid per-slot allocation).
  std::vector<double> fold_m_, fold_dprev_, fold_dv_, fold_dc_;
};

/// MaxPool replaced by a pairwise PAF-max tournament:
/// max(a,b) ≈ 0.5 ((a+b) + (a-b) · paf((a-b)/s)). Nested calls accumulate
/// approximation error — the reason the paper finds MaxPool harder to
/// approximate than ReLU (§5.4.3).
class PafMaxPool final : public PafLayerBase {
 public:
  PafMaxPool(approx::CompositePaf paf, int kernel, int stride, int pad, std::string name,
             ScaleMode mode = ScaleMode::Dynamic, bool odd_only = true);

  nn::Tensor forward(const nn::Tensor& x, bool train) override;
  nn::Tensor backward(const nn::Tensor& gy) override;

  int kernel() const { return k_; }

 private:
  /// Collects the values of one pooling window.
  void window_values(const nn::Tensor& x, int n, int c, int oy, int ox,
                     std::vector<float>& vals, std::vector<std::size_t>& idx) const;

  int k_, stride_, pad_;
  nn::Tensor x_cache_;
  float scale_used_ = 1.0f;
  int oh_ = 0, ow_ = 0;
  // Backward scratch (reused across pixels to avoid per-pixel allocation).
  std::vector<double> fold_m_, fold_dprev_, fold_dv_, fold_dc_;
};

}  // namespace sp::smartpaf
