#pragma once

#include <string>
#include <variant>
#include <vector>

#include "approx/composite.h"
#include "fhe/poly_eval.h"
#include "smartpaf/replace.h"

namespace sp::smartpaf {

class FheRuntime;  // smartpaf/fhe_deploy.h
struct Plan;       // smartpaf/pipeline_planner.h

/// Where the planner may move work between stages.
///
/// `PerStage`: every stage executes literally as built — each non-identity
/// linear stage pays its own plaintext multiplication + rescale (one level).
/// `FoldScalars` (default): scalar-only linear stages (one broadcast scale,
/// no bias) immediately preceding a PAF-ReLU stage — or a pairwise
/// (pool_window == 2) PAF-MaxPool, whose two tournament operands are both
/// raw — are folded into that activation's Static-Scaling envelope: the
/// scalar rides the plaintext multiplications the envelope pays anyway, so
/// each folded stage saves one level, one plaintext mult and one rescale.
/// Longer tournaments never absorb folds (their running operand already
/// carries the factor after the first fold).
enum class RescalePolicy { PerStage, FoldScalars };

/// Slot-wise affine stage: y[j] = scale[j] * x[j] + bias[j]. `scale` of
/// size 1 broadcasts (the foldable scalar case); size slot_count applies
/// per-slot plaintext weights (a diagonal linear layer). `bias` may be
/// empty, size 1 or per-slot. Consumes one level unless the scale is
/// identically 1 (bias-only: zero levels) or the planner folds it.
struct LinearStage {
  std::vector<double> scale;
  std::vector<double> bias;
};

/// Rotation-fan stage: y[j] = bias + sum_t taps[t] * x[j + t] (cyclic over
/// all slots — a 1-D convolution realized as a fan of slot rotations whose
/// key-switch decomposition the plan may hoist). Consumes one level.
struct WindowStage {
  std::vector<double> taps;
  double bias = 0.0;
};

/// General dense matrix-vector stage (Halevi–Shoup diagonal method): the
/// input vector occupies slots [0, cols) of its layout and the product
/// y = W x (+ bias) lands in slots [0, rows), zero elsewhere. Executed as a
/// baby-step/giant-step rotation fan over the matrix's extended diagonals
/// (fhe::DiagonalMatVec); the planner picks the n1 x n2 split from the cost
/// table. Consumes one level, no relinearizations. This is what nn::Linear
/// lowers to.
struct MatMulStage {
  int rows = 0;                 ///< output dimension
  int cols = 0;                 ///< input dimension (must match the tracked width)
  std::vector<double> weights;  ///< row-major rows x cols
  std::vector<double> bias;     ///< empty, or one value per output row
};

/// Channel-packed 2-D convolution stage (valid mode, pad = 0). The input is
/// a [in_channels, height, width] image laid out on the grid slot layout the
/// pipeline tracks per stage (see StageLayout): element (c, y, x) lives at
/// slot c * ch_stride + y * row_stride + x * elem_stride, split across
/// ciphertext "column blocks" of chans_per_block channels when the image is
/// wider than the slot extent. Executed as fhe::ConvChannelFan — an
/// im2col-style rotation fan (or a BSGS split over the channel offset, the
/// planner's fan-vs-diagonal choice) with one cached weight mask per term,
/// partial-sum joins across input blocks and one rescale per output block —
/// so the stage consumes one level. Outputs land at the anchor positions of
/// the SAME grid (spatial strides scale by `stride`), which is what lets
/// conv -> pool -> conv chains compose with zero repacking. This is what
/// nn::Conv2d (and nn::AvgPool2d, as a depthwise conv) lowers to.
struct ConvStage {
  int in_channels = 0;
  int out_channels = 0;
  int height = 0;  ///< input grid rows
  int width = 0;   ///< input grid columns
  int kernel = 1;  ///< square kernel side
  int stride = 1;  ///< spatial stride (>= 1)
  std::vector<double> weights;  ///< [out_ch][in_ch][k][k], row-major
  std::vector<double> bias;     ///< empty, or one value per output channel

  int out_h() const { return (height - kernel) / stride + 1; }
  int out_w() const { return (width - kernel) / stride + 1; }
};

/// Logical [channels, height, width] image shape declared for a pipeline
/// whose input is a channel-packed grid rather than a dense vector.
struct GridShape {
  int channels = 0;
  int height = 0;
  int width = 0;
};

/// Per-stage slot-layout metadata the pipeline threads through its stage
/// graph: what the data looks like inside the ciphertext(s) entering and
/// leaving each stage.
///
/// Dense: `width` logical elements packed contiguously from slot 0; widths
/// beyond the slot extent split into `blocks` ciphertexts of `block_width`
/// elements each (the last block ragged), joined by partial sums at the next
/// MatMul. Grid: a [channels, height, width_px] image at strides
/// (ch_stride, row_stride, elem_stride), `chans_per_block` channel planes
/// per ciphertext block. Grid strides grow through strided ConvStages while
/// ch_stride stays fixed, so the block structure is invariant across a conv
/// chain.
struct StageLayout {
  enum class Kind { Dense, Grid };
  Kind kind = Kind::Dense;
  std::size_t width = 0;        ///< logical element count (both kinds)
  int blocks = 1;               ///< ciphertexts carrying the data
  std::size_t block_width = 0;  ///< Dense: elements per (full) block
  // Grid only:
  int channels = 0;
  int height = 0;
  int width_px = 0;
  int ch_stride = 0;
  int row_stride = 0;
  int elem_stride = 1;
  int chans_per_block = 0;

  /// @brief Dense layout of `width` elements over `extent`-slot blocks.
  static StageLayout dense(std::size_t width, std::size_t extent);
  /// @brief Grid layout; chans_per_block derives from extent / ch_stride.
  static StageLayout grid(int channels, int height, int width_px, int ch_stride,
                          int row_stride, int elem_stride, std::size_t extent);
  /// @brief Compact human-readable form, e.g. "dense w576" or
  /// "grid 4x12x12 s(144,12,1) x2ct" — what Plan::describe() prints.
  std::string describe() const;
};

/// @brief (block, slot) position of logical element `i` under `layout`
/// (grid layouts index channel-major: i = c * h * w + y * w + x, matching
/// nn::Flatten).
std::pair<int, std::size_t> layout_slot(const StageLayout& layout, std::size_t i);

/// @brief Scatters `values` (logical order, size <= layout.width) into
/// layout.blocks slot vectors of `slots` entries each — what a client packs
/// before encrypting the input blocks of run_blocks().
std::vector<std::vector<double>> pack_layout(const std::vector<double>& values,
                                             const StageLayout& layout,
                                             std::size_t slots);

/// @brief Inverse of pack_layout: gathers the layout's logical elements back
/// out of decoded block slot vectors.
std::vector<double> unpack_layout(const std::vector<std::vector<double>>& blocks,
                                  const StageLayout& layout);

/// Slot-compaction stage after a strided pooling: keeps every `stride`-th
/// slot of the tracked input width W, re-packed densely —
/// y[i] = x[i * stride] for i < W / stride, zero elsewhere — so downstream
/// stages (matmul, further pooling) see a dense layout again. Executed as a
/// hoistable rotation fan of W/stride selection masks; consumes one level
/// (the mask multiplications). This is what a stride > 1 PafMaxPool1d lowers
/// to, right after its stride-1 tournament stage.
struct CompactStage {
  int stride = 2;  ///< subsampling factor (>= 2; must divide the width)
};

/// Non-polynomial stage: a Static-Scaling PAF activation.
///
/// `ReLU`: relu(x) ≈ 0.5 x (1 + paf(x / input_scale)), consuming
/// paf.mult_depth() + 2 levels. `MaxPool`: the cyclic pairwise tournament
/// y[j] = fold of max over x[j .. j+pool_window-1] — a rotation fan of the
/// stage input plus pool_window - 1 PAF-max folds, consuming
/// (pool_window - 1) * (paf.mult_depth() + 2) levels.
struct PafStage {
  SiteKind kind = SiteKind::ReLU;
  approx::CompositePaf paf;
  double input_scale = 1.0;
  int pool_window = 2;  ///< MaxPool only: cyclic window size (>= 2)
};

/// One pipeline stage (tagged union) plus its display label.
struct Stage {
  std::variant<LinearStage, WindowStage, PafStage, MatMulStage, CompactStage,
               ConvStage>
      op;
  std::string label;
};

/// A composable encrypted-inference pipeline: an ordered stage graph
/// ("linear -> PAF-ReLU -> window -> PAF-MaxPool") that exists independently
/// of any ciphertext or key material. Build it with the fluent Builder or
/// lower it from a trained nn::Sequential whose non-polynomial sites were
/// replaced by smartpaf::replace and converted to Static Scaling.
///
/// The pipeline is pure structure: `Planner::plan` validates it against a
/// prime chain and picks per-stage schedules from a (measured) CostModel —
/// inspectable via Plan::describe() before any encryption — and `run()`
/// executes a plan on a ciphertext through a shared FheRuntime. BatchRunner
/// is a thin slot-packing adapter over this class.
class FhePipeline {
 public:
  /// Fluent construction: stages are appended in execution order.
  class Builder {
   public:
    /// @brief Slot-wise affine stage (scale size 1 = broadcast scalar).
    Builder& linear(std::vector<double> scale, std::vector<double> bias = {});
    /// @brief Scalar affine convenience overload.
    Builder& linear(double scale, double bias = 0.0);
    /// @brief Cyclic rotation-fan window stage.
    Builder& window(std::vector<double> taps, double bias = 0.0);
    /// @brief Dense matrix-vector stage (row-major rows x cols weights).
    Builder& matmul(int rows, int cols, std::vector<double> weights,
                    std::vector<double> bias = {});
    /// @brief Strided-pooling slot compaction (keep every stride-th slot).
    Builder& compact(int stride);
    /// @brief Channel-packed 2-D convolution over an [in_channels, height,
    /// width] grid (valid mode; weights [out_ch][in_ch][k][k] row-major).
    Builder& conv(int in_channels, int out_channels, int height, int width,
                  int kernel, int stride, std::vector<double> weights,
                  std::vector<double> bias = {});
    /// @brief Declares the pipeline input as a channel-packed image grid
    /// (required before any ConvStage; mutually exclusive with input_width).
    Builder& input_grid(GridShape shape);
    /// @brief Declares the logical data width of the pipeline input (how
    /// many leading slots carry values). 0 (default) = the full slot vector;
    /// required for CompactStage counts and MatMul width validation when the
    /// data is narrower than the ciphertext.
    Builder& input_width(std::size_t width);
    /// @brief Static-Scaling PAF-ReLU stage.
    Builder& paf_relu(approx::CompositePaf paf, double input_scale);
    /// @brief Cyclic PAF-MaxPool tournament stage over `pool_window` slots.
    Builder& paf_maxpool(approx::CompositePaf paf, double input_scale, int pool_window);
    /// @brief Sets the pipeline's default fold policy (FoldScalars if unset).
    Builder& rescale_policy(RescalePolicy policy);
    /// @brief Validates and returns the pipeline.
    FhePipeline build();

   private:
    std::vector<Stage> stages_;
    RescalePolicy policy_ = RescalePolicy::FoldScalars;
    std::size_t input_width_ = 0;
    GridShape input_grid_;
  };

  /// @brief Starts a fluent build.
  static Builder builder() { return Builder(); }

  /// @brief Lowers a replaced, Static-Scaling network to a pipeline.
  ///
  /// The model root must be an nn::Sequential (nested Sequentials are
  /// walked in order) of slot-aligned layers:
  ///  - nn::Window1d        -> WindowStage (1 tap -> scalar LinearStage)
  ///  - PafActivation       -> PafStage ReLU  (Static scale folded in)
  ///  - PafMaxPool1d        -> PafStage MaxPool
  ///  - nn::Flatten / disabled nn::Dropout -> skipped (slot identity)
  /// Un-replaced non-polynomial sites (ReLU/MaxPool), Dynamic-scaling PAF
  /// layers and any other layer type are rejected with a diagnostic.
  ///
  /// Boundary contract: the cyclic Window1d/MaxPool1d layers wrap at their
  /// tensor width W, the lowered stages wrap at the ciphertext's
  /// slot_count. Exact parity with the plaintext forward therefore needs
  /// W == slot_count (what tests/test_pipeline.cpp pins); at smaller W the
  /// last window-1 slots of the ciphertext blend across the W boundary,
  /// just like BatchRunner's packed-request window caveat.
  /// `input_width` declares the logical data width of the encrypted input
  /// (0 = full slot vector); nn::Linear layers lower to MatMulStage and
  /// stride > 1 PafMaxPool1d layers to a PafStage + CompactStage pair, both
  /// of which need the tracked width.
  static FhePipeline lower(const nn::Model& model, std::size_t input_width = 0);
  /// @brief Same, from a bare root layer.
  static FhePipeline lower(const nn::Layer& root, std::size_t input_width = 0);

  /// @brief Lowers a CNN whose input is a [channels, height, width] image:
  /// nn::Conv2d (pad = 0) lowers to ConvStage, nn::AvgPool2d to a depthwise
  /// ConvStage, nn::Flatten to the channel-major logical ordering the next
  /// MatMulStage scatters over — plus every dense-path layer lower() already
  /// supports.
  static FhePipeline lower(const nn::Model& model, const GridShape& input);
  /// @brief Same, from a bare root layer.
  static FhePipeline lower(const nn::Layer& root, const GridShape& input);

  const std::vector<Stage>& stages() const { return stages_; }
  RescalePolicy rescale_policy() const { return policy_; }
  /// @brief Declared logical width of the input data (0 = full slot vector).
  std::size_t input_width() const { return input_width_; }
  /// @brief Declared input image grid (channels == 0 when the input is a
  /// dense vector).
  const GridShape& input_grid() const { return input_grid_; }

  /// @brief Per-stage (width_in, width_out) slot-layout tracking: linear,
  /// window and PAF stages preserve the width, MatMul maps cols -> rows and
  /// Compact maps W -> W / stride. `fallback` resolves a 0 input width (pass
  /// the slot count, or the packing stride for packed layouts).
  std::vector<std::pair<std::size_t, std::size_t>> stage_widths(
      std::size_t fallback) const;

  /// @brief Per-stage (layout_in, layout_out) tracking over an `extent`-slot
  /// ciphertext layout (the slot count, or the pack stride for packed
  /// batches): resolves grid strides and ciphertext block counts, and
  /// rejects every stage/layout mismatch with a diagnostic — conv on a
  /// non-grid or wrong-shape layout, matmul width or channel-layout
  /// mismatches, cyclic stages (window/maxpool/compact/per-slot linear) on
  /// multi-ciphertext or grid layouts. The Planner calls this before
  /// anything executes; tests pin the messages.
  std::vector<std::pair<StageLayout, StageLayout>> stage_layouts(
      std::size_t extent) const;

  /// @brief Width of the pipeline output given the resolved input width —
  /// what BatchRunner sizes its per-request output slices with.
  std::size_t output_width(std::size_t fallback) const;

  /// @brief Levels the pipeline consumes when executed literally (no
  /// folding); the FoldScalars plan may use fewer.
  int mult_depth() const;

  /// @brief Plaintext mirror of the pipeline over a full slot vector
  /// (double precision, cyclic semantics — exactly what run() computes up
  /// to ciphertext noise). `pack_stride` mirrors the plan's packed layout:
  /// MatMul/Compact stages then repeat per `pack_stride`-slot tile, exactly
  /// as run() replicates their diagonals and masks (0 = one layout over the
  /// whole vector).
  std::vector<double> reference(const std::vector<double>& slots,
                                std::size_t pack_stride = 0) const;

  /// @brief Executes a planned pipeline on `in` (top-level ciphertext).
  ///
  /// Rotation keys for every fan are drawn from the runtime's deduplicated
  /// rotation_keys() store (generated on first use, shared across stages and
  /// call sites). The PAF evaluator's strategy/lazy-relin knobs are set per
  /// stage from the plan and restored afterwards.
  /// @param rt     shared CKKS machinery
  /// @param plan   a Plan produced by Planner::plan for THIS pipeline
  /// @param in     input ciphertext with at least plan.levels_used levels
  /// @param stats  optional tally accumulated across every PAF stage
  /// @return the pipeline output, exactly plan.levels_used levels below `in`
  fhe::Ciphertext run(FheRuntime& rt, const Plan& plan, const fhe::Ciphertext& in,
                      fhe::EvalStats* stats = nullptr) const;

  /// @brief Multi-ciphertext run(): executes a planned pipeline over the
  /// input's column blocks (plan.stages.front().layout_in.blocks ciphertexts
  /// packed via pack_layout) and returns the output blocks. Partial sums
  /// join inside MatMul/Conv stages; every other stage applies per block.
  /// run() is the single-block convenience wrapper.
  std::vector<fhe::Ciphertext> run_blocks(FheRuntime& rt, const Plan& plan,
                                          const std::vector<fhe::Ciphertext>& in,
                                          fhe::EvalStats* stats = nullptr) const;

 private:
  std::vector<Stage> stages_;
  RescalePolicy policy_ = RescalePolicy::FoldScalars;
  std::size_t input_width_ = 0;
  GridShape input_grid_;
};

/// @brief True when the linear stage's scale is identically 1 (bias-only
/// stages consume no level). Shared by the planner's level accounting and
/// run()'s execution so the two can never disagree.
bool linear_scale_is_identity(const LinearStage& lin);

/// @brief True when the linear stage carries any nonzero bias entry.
bool linear_has_bias(const LinearStage& lin);

/// @brief Levels `stage` consumes when executed literally (no folding):
/// linear 1 (0 when the scale is identically 1), window 1, matmul 1,
/// compact 1, conv 1, PAF-ReLU depth + 2, PAF-MaxPool
/// (pool_window - 1) * (depth + 2).
int stage_levels(const Stage& stage);

/// @brief Scatters a MatMulStage's columns into one dense (rows x
/// block-extent) matrix per input block of `in` — column j of the logical
/// matrix lands at layout_slot(in, j), zero columns fill the layout's gap
/// slots — so y = sum_b W_b x_b reproduces W x by partial-sum joins. The
/// bias rides block 0 only. Shared by the Planner (schedule costing),
/// run_blocks (execution) and reference() (the plaintext mirror), so the
/// three can never disagree on the split.
std::vector<MatMulStage> split_matmul_blocks(const MatMulStage& mm,
                                             const StageLayout& in);

/// @brief Slot-rotation steps the stage's fan needs (1..k-1 for window and
/// MaxPool stages; empty otherwise — MatMul and Compact fans depend on the
/// BSGS split / tracked width, which the Planner resolves into
/// StagePlan::rotation_steps / giant_steps).
std::vector<int> stage_rotation_steps(const Stage& stage);

}  // namespace sp::smartpaf
