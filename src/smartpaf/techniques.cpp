#include "smartpaf/techniques.h"

namespace sp::smartpaf {

void apply_train_target(nn::Model& model, TrainTarget target) {
  for (nn::Param* p : model.params()) {
    switch (target) {
      case TrainTarget::Both: p->frozen = false; break;
      case TrainTarget::PafOnly: p->frozen = p->group != nn::ParamGroup::PafCoeff; break;
      case TrainTarget::OtherOnly: p->frozen = p->group != nn::ParamGroup::Other; break;
    }
  }
}

double evaluate_accuracy(nn::Model& model, const nn::Dataset& ds, int batch_size) {
  sp::Rng rng(1);
  nn::BatchIterator it(ds, batch_size, rng, /*shuffle=*/false);
  nn::Batch b;
  int correct = 0, seen = 0;
  while (it.next(b)) {
    const nn::Tensor logits = model.forward(b.x, /*train=*/false);
    for (int n = 0; n < logits.dim(0); ++n) {
      int argmax = 0;
      for (int c = 1; c < logits.dim(1); ++c)
        if (logits.at(n, c) > logits.at(n, argmax)) argmax = c;
      if (argmax == b.y[static_cast<std::size_t>(n)]) ++correct;
      ++seen;
    }
  }
  return seen ? static_cast<double>(correct) / seen : 0.0;
}

}  // namespace sp::smartpaf
