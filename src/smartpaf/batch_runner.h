#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "approx/composite.h"
#include "common/check.h"
#include "smartpaf/fhe_deploy.h"
#include "smartpaf/pipeline.h"
#include "smartpaf/pipeline_planner.h"

namespace sp::smartpaf {

/// @brief Configuration of a BatchRunner: the packing geometry and the
/// (fixed) encrypted pipeline applied to every packed ciphertext.
///
/// The pipeline is `window -> PAF-ReLU`: an optional pre-activation sliding
/// window (a 1-D convolution realized as a hoisted rotation fan — the
/// conv/pooling-style rotation pattern) followed by the Static-Scaling
/// PAF-ReLU. Both run once per packed ciphertext, so every homomorphic op is
/// amortized across the batch.
///
/// This config is a convenience shim: internally the runner lowers it to an
/// `FhePipeline` (window stage + PAF-ReLU stage) and plans it; richer stage
/// graphs (multiple activations, MaxPool stages, per-slot linears) go
/// through `FhePipeline` directly — see docs/PIPELINE.md.
struct BatchConfig {
  /// Slots reserved per request; capacity = slot_count / input_size.
  int input_size = 1;
  /// Sign-approximating composite PAF for the activation.
  approx::CompositePaf paf;
  /// Static-Scaling running max: the activation sees x / input_scale.
  double input_scale = 1.0;
  /// Optional pre-activation window taps w[0..k-1]: slot j becomes
  /// sum_t w[t] * x[j + t] before the activation (cyclic over the whole
  /// slot vector, so the last k-1 slots of each request blend into the next
  /// request — callers that need clean request boundaries keep
  /// `input_size - window.size() + 1` "valid" outputs per request, exactly
  /// like a valid-mode convolution). Empty = activation only.
  std::vector<double> window;
};

/// @brief Cost breakdown of one packed-ciphertext pipeline, with the
/// amortized per-input views that batching exists to improve.
struct BatchStats {
  int batch_size = 0;  ///< requests packed into the ciphertext
  int capacity = 0;    ///< slot_count / input_size of the runner

  double pack_ms = 0.0;     ///< slot packing (plain CPU)
  double encrypt_ms = 0.0;  ///< encode + encrypt of the packed vector
  double eval_ms = 0.0;     ///< window fan + PAF-ReLU under CKKS
  double decrypt_ms = 0.0;  ///< decrypt + decode + unpack
  /// Client-side pack+encrypt milliseconds that drain() hid behind the
  /// PREVIOUS group's evaluation (double-buffering): this group's
  /// preparation ran concurrently, so only `pack_ms + encrypt_ms -
  /// prep_hidden_ms` extended the wall clock. Always 0 for run(), the first
  /// drained group, and overlap-disabled runners.
  double prep_hidden_ms = 0.0;

  /// PAF-evaluation stats for the whole packed ciphertext (the window fan is
  /// visible in `ops`, not here: EvalStats tracks the polynomial evaluator).
  fhe::EvalStats eval;
  /// Evaluator counter delta across the whole pipeline (rotations, relins,
  /// NTTs, ...), i.e. everything the batch paid once regardless of B.
  fhe::OpCounters ops;

  /// @brief End-to-end wall time of the packed pipeline.
  double total_ms() const { return pack_ms + encrypt_ms + eval_ms + decrypt_ms; }
  /// @brief Amortized end-to-end latency per request.
  double ms_per_input() const {
    return total_ms() / (batch_size < 1 ? 1.0 : static_cast<double>(batch_size));
  }
  /// @brief Amortized PAF-evaluation figures per request.
  fhe::EvalStats::PerInput eval_per_input() const { return eval.per_input(batch_size); }
  /// @brief Amortized evaluator op counts per request (rotations/relins/...).
  fhe::OpCountersPerInput ops_per_input() const {
    return fhe::per_input(ops, batch_size);
  }
};

/// @brief Batched private-inference front end: packs B independent requests
/// across the CKKS slots of ONE ciphertext, shares one FheRuntime (keys, NTT
/// tables, rotation keys) across all of them, evaluates the pipeline once
/// per packed ciphertext, and unpacks per-request results with per-request
/// error stats.
///
/// Since the pipeline layer landed, BatchRunner is a thin slot-packing
/// adapter: the config lowers to an `FhePipeline`, a heuristic-cost `Plan`
/// is fixed at construction (pass a calibrated CostModel for measured-cost
/// planning), rotation keys come from the runtime's deduplicated
/// `rotation_keys()` store, and `run`/`drain` wrap `Encoder::pack_slots` ->
/// encrypt -> `FhePipeline::run` -> decrypt -> `unpack_slots`.
///
/// Why this is the serving-scale lever: every homomorphic op on a packed
/// ciphertext acts on all N/2 slots at once, so its cost divides by the
/// batch size. The rotation fan of the window stage additionally routes
/// through `Evaluator::rotate_hoisted` — one key-switch digit decomposition
/// serves the whole fan, and that single decomposition is itself amortized
/// across the batch.
///
/// Thread-pool sizing: one packed evaluation already fans its NTT batches
/// and key-switch digits across the SMARTPAF_THREADS pool, so `drain()`
/// evaluates groups sequentially — but it double-buffers the CLIENT side:
/// group k+1's pack/encrypt runs on a helper thread while group k evaluates
/// (the helper degrades to inline serial NTTs when the pool is busy, so
/// results stay bit-identical; see BatchStats::prep_hidden_ms).
class BatchRunner {
 public:
  /// @brief Result of one packed-ciphertext pipeline.
  struct Result {
    /// Ticket ids, in packing order (run(): 0..B-1; drain(): submit ids).
    std::vector<std::uint64_t> ids;
    /// Per-request outputs, `output_size()` values each (== input_size for
    /// width-preserving pipelines; smaller when the stage graph compacts).
    std::vector<std::vector<double>> outputs;
    /// Per-request max abs deviation from the plaintext pipeline reference.
    std::vector<double> max_error;
    /// Whole-ciphertext cost plus the amortized per-input views.
    BatchStats stats;
  };

  /// @brief Binds the runner to a shared runtime and validates the config.
  ///
  /// Lowers the config to an FhePipeline, plans it (heuristic cost model)
  /// and draws the window stage's rotation keys from the runtime's shared
  /// store once; requests never pay keygen. The runtime's prime chain must
  /// cover the pipeline depth: (window ? 1 : 0) + paf.mult_depth() + 2.
  /// @param rt   shared CKKS machinery (must outlive the runner)
  /// @param cfg  packing geometry + pipeline
  BatchRunner(FheRuntime& rt, BatchConfig cfg);

  /// @brief Same, planning with a caller-supplied (typically calibrated)
  /// cost model instead of the heuristic table.
  BatchRunner(FheRuntime& rt, BatchConfig cfg, const CostModel& cost);

  /// @brief Requests that fit one packed ciphertext (slot_count / input_size).
  int capacity() const { return capacity_; }
  /// @brief Slots reserved per request.
  int input_size() const { return cfg_.input_size; }
  /// @brief Values each request's output slice carries — the pipeline's
  /// output width for an `input_size`-wide request. Width-preserving stage
  /// graphs (window/PAF) keep it equal to input_size; compacting graphs
  /// shrink it, and the per-segment capacity accounting follows this value.
  int output_size() const { return output_size_; }
  const BatchConfig& config() const { return cfg_; }

  /// @brief The pipeline the config lowered to.
  const FhePipeline& pipeline() const { return pipeline_; }
  /// @brief The plan fixed at construction (inspect via Plan::describe()).
  const Plan& plan() const { return plan_; }

  /// @brief Toggles drain()'s encode/encrypt double-buffering (default on).
  /// Results are bit-identical either way; off = the historical fully
  /// sequential schedule (useful for A/B timing).
  void set_overlap(bool on) { overlap_ = on; }
  bool overlap() const { return overlap_; }

  /// @brief Synchronous batched evaluation: packs `inputs` into one
  /// ciphertext, runs the pipeline once, and unpacks per-request results.
  /// @param inputs  1..capacity() request vectors, each of size <=
  ///                input_size (short inputs are zero-padded)
  /// @return per-request outputs/errors plus whole-batch and per-input stats
  Result run(const std::vector<std::vector<double>>& inputs);

  /// @brief Queues one request for the next drain().
  /// @param input  request values, size <= input_size
  /// @return ticket id to match against Result::ids
  std::uint64_t submit(std::vector<double> input);

  /// @brief Requests currently queued.
  std::size_t pending() const { return queue_.size(); }

  /// @brief Packs the queue into full-capacity groups and evaluates them
  /// (last group may be partial). Requests keep submission order, so
  /// Result::ids are ascending across the returned groups.
  ///
  /// With overlap enabled, group k+1's pack/encrypt runs on a helper thread
  /// while group k evaluates; the hidden client-side milliseconds land in
  /// that group's BatchStats::prep_hidden_ms.
  ///
  /// On failure, every not-yet-started group is requeued (ahead of anything
  /// submitted since) for a later drain() to retry; the one group actually
  /// mid-flight cannot be retried (its ciphertext state is gone), so drain
  /// throws BatchDrainError naming exactly those lost ids — a server NACKs
  /// them instead of leaking the requests — and carrying the Results of the
  /// groups that DID complete before the failure. Holds for both the
  /// sequential and the overlapped schedule.
  /// @return one Result per packed ciphertext evaluated; empty if idle
  std::vector<Result> drain();

  /// @brief Test seam: invoked with the group's ticket ids at the start of
  /// every packed evaluation (before any homomorphic op). Tests inject
  /// failures for specific groups to pin drain()'s lost-id accounting; a
  /// throwing hook behaves exactly like an evaluation failure.
  void set_eval_hook(std::function<void(const std::vector<std::uint64_t>&)> hook) {
    eval_hook_ = std::move(hook);
  }

  /// @brief Extracts per-request ciphertexts from a packed result without
  /// decrypting: request b's slice is rotated to slot 0 via ONE hoisted
  /// decomposition shared by the whole fan.
  ///
  /// All requests share the batch key, so slots >= input_size of an
  /// extracted ciphertext still hold neighbouring requests' data — mask (one
  /// plaintext mult) before handing a slice to a party that must not see the
  /// rest of the batch.
  /// @param packed   a packed pipeline output (2-part ciphertext)
  /// @param requests batch positions to extract (0-based, < capacity());
  ///                 rotation keys for the needed strides come from the
  ///                 runtime's shared store (generated once, deduplicated
  ///                 against every other stage's keys)
  /// @return one ciphertext per requested position, its slice at slots
  ///         [0, input_size)
  std::vector<fhe::Ciphertext> extract(const fhe::Ciphertext& packed,
                                       const std::vector<int>& requests);

 private:
  /// One group's client-side state: packed slots + encrypted input.
  struct Prepared {
    std::vector<std::vector<double>> inputs;
    std::vector<std::uint64_t> ids;
    std::vector<double> flat;
    fhe::Ciphertext packed;
    double pack_ms = 0.0;
    double encrypt_ms = 0.0;
  };

  /// pack_slots + encrypt, timed (safe to run on a helper thread: touches
  /// only the encoder/encryptor, never the evaluator or its counters).
  Prepared prepare_group(std::vector<std::vector<double>> inputs,
                         std::vector<std::uint64_t> ids);
  /// eval -> decrypt -> unpack -> error stats for a prepared group.
  Result finish_prepared(Prepared prep, double prep_hidden_ms);

  FheRuntime* rt_;
  BatchConfig cfg_;
  int capacity_ = 0;
  int output_size_ = 0;  ///< per-request output width (see output_size())
  FhePipeline pipeline_;  ///< cfg_ lowered to a stage graph
  Plan plan_;             ///< fixed schedule for every packed ciphertext
  bool overlap_ = true;
  std::function<void(const std::vector<std::uint64_t>&)> eval_hook_;
  std::deque<std::pair<std::uint64_t, std::vector<double>>> queue_;
  std::uint64_t next_id_ = 0;
};

/// @brief Thrown by BatchRunner::drain when a group fails mid-flight. The
/// message carries the underlying failure; lost_ids() names the requests
/// whose group cannot be retried (requeued groups are NOT listed — they
/// remain pending and a later drain() picks them up), and completed() hands
/// over the Results of the groups that finished before the failure, so no
/// successful work is discarded with the error.
class BatchDrainError : public sp::Error {
 public:
  BatchDrainError(const std::string& msg, std::vector<std::uint64_t> lost,
                  std::vector<BatchRunner::Result> completed)
      : sp::Error(msg), lost_(std::move(lost)), completed_(std::move(completed)) {}

  /// @brief Ticket ids of the mid-flight group lost with this error.
  const std::vector<std::uint64_t>& lost_ids() const { return lost_; }
  /// @brief Results evaluated before the failure (move them out freely).
  std::vector<BatchRunner::Result>& completed() { return completed_; }
  const std::vector<BatchRunner::Result>& completed() const { return completed_; }

 private:
  std::vector<std::uint64_t> lost_;
  std::vector<BatchRunner::Result> completed_;
};

}  // namespace sp::smartpaf
