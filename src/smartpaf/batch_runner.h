#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "approx/composite.h"
#include "smartpaf/fhe_deploy.h"

namespace sp::smartpaf {

/// @brief Configuration of a BatchRunner: the packing geometry and the
/// (fixed) encrypted pipeline applied to every packed ciphertext.
///
/// The pipeline is `window -> PAF-ReLU`: an optional pre-activation sliding
/// window (a 1-D convolution realized as a hoisted rotation fan — the
/// conv/pooling-style rotation pattern) followed by the Static-Scaling
/// PAF-ReLU. Both run once per packed ciphertext, so every homomorphic op is
/// amortized across the batch.
struct BatchConfig {
  /// Slots reserved per request; capacity = slot_count / input_size.
  int input_size = 1;
  /// Sign-approximating composite PAF for the activation.
  approx::CompositePaf paf;
  /// Static-Scaling running max: the activation sees x / input_scale.
  double input_scale = 1.0;
  /// Optional pre-activation window taps w[0..k-1]: slot j becomes
  /// sum_t w[t] * x[j + t] before the activation (cyclic over the whole
  /// slot vector, so the last k-1 slots of each request blend into the next
  /// request — callers that need clean request boundaries keep
  /// `input_size - window.size() + 1` "valid" outputs per request, exactly
  /// like a valid-mode convolution). Empty = activation only.
  std::vector<double> window;
};

/// @brief Cost breakdown of one packed-ciphertext pipeline, with the
/// amortized per-input views that batching exists to improve.
struct BatchStats {
  int batch_size = 0;  ///< requests packed into the ciphertext
  int capacity = 0;    ///< slot_count / input_size of the runner

  double pack_ms = 0.0;     ///< slot packing (plain CPU)
  double encrypt_ms = 0.0;  ///< encode + encrypt of the packed vector
  double eval_ms = 0.0;     ///< window fan + PAF-ReLU under CKKS
  double decrypt_ms = 0.0;  ///< decrypt + decode + unpack

  /// PAF-evaluation stats for the whole packed ciphertext (the window fan is
  /// visible in `ops`, not here: EvalStats tracks the polynomial evaluator).
  fhe::EvalStats eval;
  /// Evaluator counter delta across the whole pipeline (rotations, relins,
  /// NTTs, ...), i.e. everything the batch paid once regardless of B.
  fhe::OpCounters ops;

  /// @brief End-to-end wall time of the packed pipeline.
  double total_ms() const { return pack_ms + encrypt_ms + eval_ms + decrypt_ms; }
  /// @brief Amortized end-to-end latency per request.
  double ms_per_input() const {
    return total_ms() / (batch_size < 1 ? 1.0 : static_cast<double>(batch_size));
  }
  /// @brief Amortized PAF-evaluation figures per request.
  fhe::EvalStats::PerInput eval_per_input() const { return eval.per_input(batch_size); }
  /// @brief Amortized evaluator op counts per request (rotations/relins/...).
  fhe::OpCountersPerInput ops_per_input() const {
    return fhe::per_input(ops, batch_size);
  }
};

/// @brief Batched private-inference front end: packs B independent requests
/// across the CKKS slots of ONE ciphertext, shares one FheRuntime (keys, NTT
/// tables, Galois keys) across all of them, evaluates the pipeline once per
/// packed ciphertext, and unpacks per-request results with per-request error
/// stats.
///
/// Why this is the serving-scale lever: every homomorphic op on a packed
/// ciphertext acts on all N/2 slots at once, so its cost divides by the
/// batch size. The rotation fan of the window stage additionally routes
/// through `Evaluator::rotate_hoisted` — one key-switch digit decomposition
/// serves the whole fan (PR 2's HoistedDecomposition), and that single
/// decomposition is itself amortized across the batch.
///
/// Thread-pool sizing: one packed evaluation already fans its NTT batches
/// and key-switch digits across the SMARTPAF_THREADS pool, so `drain()`
/// processes groups sequentially — each group saturates the pool on its own,
/// and sequential groups keep results independent of pool size.
class BatchRunner {
 public:
  /// @brief Result of one packed-ciphertext pipeline.
  struct Result {
    /// Ticket ids, in packing order (run(): 0..B-1; drain(): submit ids).
    std::vector<std::uint64_t> ids;
    /// Per-request outputs, `input_size` values each.
    std::vector<std::vector<double>> outputs;
    /// Per-request max abs deviation from the plaintext pipeline reference.
    std::vector<double> max_error;
    /// Whole-ciphertext cost plus the amortized per-input views.
    BatchStats stats;
  };

  /// @brief Binds the runner to a shared runtime and validates the config.
  ///
  /// Generates the window stage's Galois keys (steps 1..k-1) once; requests
  /// never pay keygen. The runtime's prime chain must cover the pipeline
  /// depth: (window ? 1 : 0) + paf.mult_depth() + 2 levels.
  /// @param rt   shared CKKS machinery (must outlive the runner)
  /// @param cfg  packing geometry + pipeline
  BatchRunner(FheRuntime& rt, BatchConfig cfg);

  /// @brief Requests that fit one packed ciphertext (slot_count / input_size).
  int capacity() const { return capacity_; }
  /// @brief Slots reserved per request.
  int input_size() const { return cfg_.input_size; }
  const BatchConfig& config() const { return cfg_; }

  /// @brief Synchronous batched evaluation: packs `inputs` into one
  /// ciphertext, runs the pipeline once, and unpacks per-request results.
  /// @param inputs  1..capacity() request vectors, each of size <=
  ///                input_size (short inputs are zero-padded)
  /// @return per-request outputs/errors plus whole-batch and per-input stats
  Result run(const std::vector<std::vector<double>>& inputs);

  /// @brief Queues one request for the next drain().
  /// @param input  request values, size <= input_size
  /// @return ticket id to match against Result::ids
  std::uint64_t submit(std::vector<double> input);

  /// @brief Requests currently queued.
  std::size_t pending() const { return queue_.size(); }

  /// @brief Packs the queue into full-capacity groups and evaluates them
  /// (last group may be partial). Requests keep submission order, so
  /// Result::ids are ascending across the returned groups.
  /// @return one Result per packed ciphertext evaluated; empty if idle
  std::vector<Result> drain();

  /// @brief Extracts per-request ciphertexts from a packed result without
  /// decrypting: request b's slice is rotated to slot 0 via ONE hoisted
  /// decomposition shared by the whole fan.
  ///
  /// All requests share the batch key, so slots >= input_size of an
  /// extracted ciphertext still hold neighbouring requests' data — mask (one
  /// plaintext mult) before handing a slice to a party that must not see the
  /// rest of the batch.
  /// @param packed   a packed pipeline output (2-part ciphertext)
  /// @param requests batch positions to extract (0-based, < capacity());
  ///                 rotation keys for the needed strides are generated on
  ///                 first use and cached for the runner's lifetime
  /// @return one ciphertext per requested position, its slice at slots
  ///         [0, input_size)
  std::vector<fhe::Ciphertext> extract(const fhe::Ciphertext& packed,
                                       const std::vector<int>& requests);

 private:
  /// Runs window + PAF-ReLU on a packed ciphertext.
  fhe::Ciphertext eval_packed(const fhe::Ciphertext& packed, fhe::EvalStats* stats);
  /// Plaintext reference of the pipeline over a packed slot vector.
  std::vector<double> reference(const std::vector<double>& flat) const;
  /// Shared pack -> encrypt -> eval -> decrypt -> unpack path.
  Result run_packed(const std::vector<std::vector<double>>& inputs,
                    std::vector<std::uint64_t> ids);

  FheRuntime* rt_;
  BatchConfig cfg_;
  int capacity_ = 0;
  std::vector<int> window_steps_;  ///< 1..k-1, fixed for the runner's lifetime
  fhe::GaloisKeys window_keys_;    ///< keys for window_steps_, from the ctor
  fhe::GaloisKeys extract_keys_;   ///< stride keys, cached on first extract()
  std::deque<std::pair<std::uint64_t, std::vector<double>>> queue_;
  std::uint64_t next_id_ = 0;
};

}  // namespace sp::smartpaf
