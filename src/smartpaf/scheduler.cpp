#include "smartpaf/scheduler.h"

#include <cstdio>

#include "nn/layers.h"
#include "nn/swa.h"
#include "nn/trainer.h"

namespace sp::smartpaf {
namespace {

/// Recursively switches on every Dropout layer.
void enable_all_dropout(nn::Layer& layer) {
  layer.visit_children([&](std::unique_ptr<nn::Layer>& slot) {
    if (auto* d = dynamic_cast<nn::Dropout*>(slot.get())) d->set_enabled(true);
    enable_all_dropout(*slot);
  });
}

}  // namespace

Scheduler::Scheduler(nn::Model& model, const nn::Dataset& train, const nn::Dataset& val,
                     SchedulerConfig cfg)
    : model_(&model), train_(&train), val_(&val), cfg_(std::move(cfg)) {}

void Scheduler::set_freezing(long site_limit, TrainTarget target) {
  apply_train_target(*model_, target);
  if (cfg_.progressive_train) freeze_after_site(*model_, site_limit);
}

void Scheduler::enable_dropout() { enable_all_dropout(model_->root()); }

double Scheduler::run_group(long site_limit, TrainTarget target, SchedulerResult& result,
                            double* last_train_acc) {
  set_freezing(site_limit, target);
  nn::Trainer trainer(*model_, *train_, *val_, cfg_.train);
  nn::SwaAverager swa(model_->params());

  double best_acc = -1.0;
  std::vector<nn::Tensor> best_state;
  for (int e = 0; e < cfg_.group_epochs; ++e) {
    const nn::EpochResult er = trainer.run_epoch();
    ++result.epochs_run;
    result.trace.push_back({result.epochs_run, er.val_acc, ""});
    if (last_train_acc) *last_train_acc = er.train_acc;
    if (cfg_.use_swa) swa.update();
    if (er.val_acc > best_acc) {
      best_acc = er.val_acc;
      best_state = model_->state();
    }
    if (cfg_.verbose)
      std::printf("    epoch %d: train %.3f val %.3f\n", result.epochs_run, er.train_acc,
                  er.val_acc);
  }
  // Branch pick: SWA-averaged weights vs best epoch weights (Fig. 6).
  if (cfg_.use_swa && swa.count() > 0) {
    swa.apply();
    const double swa_acc = evaluate_accuracy(*model_, *val_, cfg_.train.batch_size);
    result.trace.push_back({result.epochs_run, swa_acc, "swa"});
    if (swa_acc >= best_acc) {
      best_acc = swa_acc;
      best_state = model_->state();
    }
  }
  model_->set_state(best_state);
  return best_acc;
}

void Scheduler::run_step(long site_limit, SchedulerResult& result) {
  double step_best = evaluate_accuracy(*model_, *val_, cfg_.train.batch_size);
  std::vector<nn::Tensor> step_best_state = model_->state();
  bool dropout_applied = false;
  bool at_swapped = false;

  current_target_ = !cfg_.train_paf ? TrainTarget::OtherOnly
                    : cfg_.use_at   ? TrainTarget::PafOnly
                                    : TrainTarget::Both;

  for (int group = 0; group < cfg_.max_groups_per_step; ++group) {
    double train_acc = 0.0;
    const double acc = run_group(site_limit, current_target_, result, &train_acc);
    if (acc > step_best + 1e-9) {
      // Accuracy improved: keep going with a fresh training group.
      step_best = acc;
      step_best_state = model_->state();
      continue;
    }
    // No improvement: try the Fig. 6 recovery branches.
    if (cfg_.dropout_on_overfit && !dropout_applied &&
        train_acc > step_best + cfg_.overfit_gap) {
      enable_dropout();
      dropout_applied = true;
      result.trace.push_back({result.epochs_run,
                              evaluate_accuracy(*model_, *val_, cfg_.train.batch_size),
                              "dropout"});
      continue;
    }
    if (cfg_.use_at && cfg_.train_paf && !at_swapped) {
      at_swapped = true;
      current_target_ = current_target_ == TrainTarget::PafOnly ? TrainTarget::OtherOnly
                                                                : TrainTarget::PafOnly;
      result.trace.push_back({result.epochs_run, step_best, "at"});
      continue;
    }
    break;  // step termination condition
  }
  model_->set_state(step_best_state);
  if (step_best > result.best_acc_ds) result.best_acc_ds = step_best;
}

SchedulerResult Scheduler::run() {
  SchedulerResult result;

  // Coefficient Tuning happens offline, before any replacement (Fig. 6).
  CtResult ct;
  if (cfg_.use_ct) ct = coefficient_tuning(*model_, *train_, cfg_.form, cfg_.ct);

  ReplaceOptions opts;
  opts.form = cfg_.form;
  opts.replace_relu = cfg_.replace_relu;
  opts.replace_maxpool = cfg_.replace_maxpool;
  opts.mode = ScaleMode::Dynamic;
  opts.per_site_coeffs = ct.coeffs;

  if (!cfg_.progressive_replace) {
    // Direct replacement: everything at once.
    replace_all(*model_, opts);
    result.initial_acc = evaluate_accuracy(*model_, *val_, cfg_.train.batch_size);
    result.trace.push_back({0, result.initial_acc, "replace:all"});
    result.best_acc_ds = result.initial_acc;
    const long limit = cfg_.progressive_train
                           ? static_cast<long>(find_paf_layers(*model_).size()) - 1
                           : -1;
    if (cfg_.progressive_train) {
      // Direct replacement + progressive training (Fig. 8 middle bar).
      const auto n = static_cast<long>(find_paf_layers(*model_).size());
      for (long i = 0; i < n; ++i) run_step(i, result);
    } else {
      run_step(limit, result);
    }
  } else {
    // Progressive Approximation: one site per step, inference order.
    const auto all_sites = find_nonpoly_sites(*model_);
    std::vector<std::size_t> targets;
    for (const auto& s : all_sites) {
      const bool want =
          s.kind == SiteKind::MaxPool ? cfg_.replace_maxpool : cfg_.replace_relu;
      if (want) targets.push_back(s.index);
    }
    long paf_count = 0;
    bool first = true;
    for (std::size_t t : targets) {
      // Re-enumerate: earlier replacements shift nothing (slots stable), but
      // indices refer to the original enumeration; map by path instead.
      auto sites = find_nonpoly_sites(*model_);
      const NonPolySite* site = nullptr;
      for (const auto& s : sites)
        if (s.path == all_sites[t].path) site = &s;
      if (site == nullptr) continue;  // already replaced
      approx::CompositePaf paf = approx::make_paf(cfg_.form);
      if (t < ct.coeffs.size() && !ct.coeffs[t].empty()) paf.load_coeffs(ct.coeffs[t]);
      replace_site(*model_, *site, paf, ScaleMode::Dynamic);
      const double acc = evaluate_accuracy(*model_, *val_, cfg_.train.batch_size);
      result.trace.push_back({result.epochs_run, acc, "replace:" + all_sites[t].path});
      if (first) {
        result.initial_acc = acc;
        first = false;
      }
      run_step(paf_count, result);
      ++paf_count;
    }
  }

  // Optional final network-wide fine-tuning pass (Fig. 9's last segment).
  if (cfg_.final_network_train && cfg_.train_paf) {
    const double before = result.best_acc_ds;
    auto best_state = model_->state();
    double train_acc = 0.0;
    unfreeze_all(*model_);
    const double acc = run_group(-1, TrainTarget::Both, result, &train_acc);
    result.trace.push_back({result.epochs_run, acc, "final"});
    if (acc > before) {
      result.best_acc_ds = acc;
    } else {
      model_->set_state(best_state);
    }
  }

  // Report DS accuracy, then convert to the FHE-deployable Static Scaling.
  result.best_acc_ds =
      std::max(result.best_acc_ds, evaluate_accuracy(*model_, *val_, cfg_.train.batch_size));
  convert_to_static_scaling(*model_);
  result.acc_ss = evaluate_accuracy(*model_, *val_, cfg_.train.batch_size);
  for (PafLayerBase* p : find_paf_layers(*model_)) result.final_coeffs.push_back(p->coeffs());
  unfreeze_all(*model_);
  return result;
}

}  // namespace sp::smartpaf
