#include "smartpaf/coefficient_tuning.h"

#include <cmath>

#include "common/check.h"
#include "nn/layers.h"
#include "smartpaf/replace.h"

namespace sp::smartpaf {

std::vector<double> fit_paf_to_profile(const approx::CompositePaf& init,
                                       const std::vector<double>& samples, double scale,
                                       bool is_max_site, const CtConfig& cfg) {
  sp::check(!samples.empty(), "fit_paf_to_profile: no samples");
  sp::check(scale > 0, "fit_paf_to_profile: bad scale");
  approx::CompositePaf paf = init;
  std::vector<double> flat = paf.flatten_coeffs();
  const std::size_t nc = flat.size();

  // Weighted sample set: the profiled values carry 75% of the mass and a
  // uniform grid over [-scale, scale] carries 25%. Dynamic Scaling
  // normalizes by the *batch* max at deployment, so inputs do reach |t|=1;
  // without the anchors the fit is unconstrained near the interval ends and
  // multi-stage forms explode there.
  struct WSample {
    double x, w;
  };
  std::vector<WSample> ws;
  ws.reserve(samples.size() + 256);
  for (double x : samples) ws.push_back({x, 1.0});
  const int grid = 256;
  // 15% anchor mass: enough to pin the tails, light enough to keep the fit
  // distribution-weighted (the point of CT).
  const double anchor_w =
      0.15 / 0.85 * static_cast<double>(samples.size()) / static_cast<double>(grid);
  for (int i = 0; i < grid; ++i)
    ws.push_back({scale * (-1.0 + 2.0 * i / (grid - 1)), anchor_w});

  // Parity mask: only odd-degree coefficients move (sign PAFs are odd).
  std::vector<bool> even;
  for (const auto& stage : paf.stages())
    for (std::size_t k = 0; k < stage.coeffs().size(); ++k) even.push_back(k % 2 == 0);

  // Adam state. CT must never *hurt*: we track the best-in-sample iterate
  // (including the untouched initialization) and return that. This protects
  // delicately balanced minimax forms (alpha=7/alpha=10), whose large
  // coefficients Adam would otherwise unbalance.
  std::vector<double> m(nc, 0.0), v(nc, 0.0), grad(nc, 0.0), local(nc, 0.0);
  const double b1 = 0.9, b2 = 0.999, eps = 1e-8;
  approx::CompositePaf::Tape tape;

  double best_loss = 0.0;
  std::vector<double> best = flat;
  for (int it = 1; it <= cfg.fit_iters; ++it) {
    paf.load_coeffs(flat);
    std::fill(grad.begin(), grad.end(), 0.0);
    double loss = 0.0;
    for (const WSample& sm : ws) {
      const double x = sm.x;
      const double t = x / scale;
      const double p = paf.forward(t, tape);
      // Operator-output error. ReLU sites: relu(x) ≈ 0.5 (x + x p(x/s));
      // max sites feed pairwise differences d, whose max-error term
      // 0.5 (d p - |d|) reduces to the same expression with x = d.
      const double pred = 0.5 * (x + x * p);
      const double target = 0.5 * (x + std::abs(x));  // = max(x, 0)
      const double err = pred - target;
      loss += sm.w * err * err;
      std::fill(local.begin(), local.end(), 0.0);
      paf.backward(tape, 1.0, local);
      const double coeff_fac = sm.w * 2.0 * err * 0.5 * x;
      for (std::size_t k = 0; k < nc; ++k) grad[k] += coeff_fac * local[k];
    }
    if (it == 1 || loss < best_loss) {
      best_loss = loss;
      best = flat;  // snapshot of the coefficients that *produced* this loss
    }
    const double inv = 1.0 / static_cast<double>(samples.size());
    for (std::size_t k = 0; k < nc; ++k) {
      if (even[k]) continue;
      const double g = grad[k] * inv;
      m[k] = b1 * m[k] + (1 - b1) * g;
      v[k] = b2 * v[k] + (1 - b2) * g * g;
      const double mh = m[k] / (1 - std::pow(b1, it));
      const double vh = v[k] / (1 - std::pow(b2, it));
      flat[k] -= cfg.lr * mh / (std::sqrt(vh) + eps);
    }
  }
  (void)is_max_site;
  return best;
}

CtResult coefficient_tuning(nn::Model& model, const nn::Dataset& calib,
                            approx::PafForm form, const CtConfig& cfg) {
  auto sites = find_nonpoly_sites(model);
  CtResult result;
  result.coeffs.resize(sites.size());
  result.abs_max.resize(sites.size(), 1.0);
  if (sites.empty()) return result;

  // Step 2: profile every site's input distribution in one calibration run.
  std::vector<approx::DistributionProfile> profiles;
  profiles.reserve(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i)
    profiles.emplace_back(16384, cfg.seed + i);
  for (std::size_t i = 0; i < sites.size(); ++i) {
    auto* prof = &profiles[i];
    if (sites[i].kind == SiteKind::ReLU) {
      auto* relu = dynamic_cast<nn::ReLU*>(sites[i].slot->get());
      sp::check(relu != nullptr, "coefficient_tuning: ReLU site mismatch");
      relu->set_profile([prof](float x) { prof->record(static_cast<double>(x)); });
    } else if (auto* pool1d = dynamic_cast<nn::MaxPool1d*>(sites[i].slot->get())) {
      pool1d->set_profile([prof](float d) { prof->record(static_cast<double>(d)); });
    } else {
      auto* pool = dynamic_cast<nn::MaxPool2d*>(sites[i].slot->get());
      sp::check(pool != nullptr, "coefficient_tuning: MaxPool site mismatch");
      pool->set_profile([prof](float d) { prof->record(static_cast<double>(d)); });
    }
  }
  sp::Rng rng(cfg.seed);
  nn::BatchIterator it(calib, cfg.batch_size, rng, /*shuffle=*/true);
  nn::Batch b;
  for (int k = 0; k < cfg.calib_batches && it.next(b); ++k)
    model.forward(b.x, /*train=*/false);
  // Detach hooks.
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (sites[i].kind == SiteKind::ReLU)
      dynamic_cast<nn::ReLU*>(sites[i].slot->get())->set_profile(nullptr);
    else if (auto* pool1d = dynamic_cast<nn::MaxPool1d*>(sites[i].slot->get()))
      pool1d->set_profile(nullptr);
    else
      dynamic_cast<nn::MaxPool2d*>(sites[i].slot->get())->set_profile(nullptr);
  }

  // Steps 1+3: per-site refit from the form's initial coefficients.
  const approx::CompositePaf init = approx::make_paf(form);
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const auto& prof = profiles[i];
    if (prof.empty()) {
      result.coeffs[i] = init.flatten_coeffs();
      continue;
    }
    result.abs_max[i] = std::max(prof.abs_max(), 1e-6);
    std::vector<double> samples = prof.reservoir();
    if (static_cast<int>(samples.size()) > cfg.fit_samples)
      samples.resize(static_cast<std::size_t>(cfg.fit_samples));
    result.coeffs[i] = fit_paf_to_profile(init, samples, result.abs_max[i],
                                          sites[i].kind == SiteKind::MaxPool, cfg);
  }
  return result;
}

}  // namespace sp::smartpaf
