#pragma once

#include "nn/container.h"
#include "nn/dataset.h"
#include "smartpaf/replace.h"

namespace sp::smartpaf {

/// Which parameter group trains during a phase. Alternate Training (§4.4)
/// toggles between PafOnly and OtherOnly; the prior-work baseline trains
/// OtherOnly ("trains other layers, excluding the PAFs", §5.3); PA without
/// AT trains Both.
enum class TrainTarget { Both, PafOnly, OtherOnly };

/// Applies group-level freezing for a target (positional freezing composes
/// on top via freeze_after_site).
void apply_train_target(nn::Model& model, TrainTarget target);

/// Top-1 accuracy of `model` on `ds` in eval mode.
double evaluate_accuracy(nn::Model& model, const nn::Dataset& ds, int batch_size = 64);

}  // namespace sp::smartpaf
