#pragma once

#include "approx/distribution.h"
#include "approx/presets.h"
#include "nn/container.h"
#include "nn/dataset.h"

namespace sp::smartpaf {

/// Coefficient Tuning configuration (paper §4.2).
struct CtConfig {
  int calib_batches = 3;    ///< calibration forward passes
  int batch_size = 32;
  int fit_samples = 2048;   ///< reservoir samples used in the refit
  int fit_iters = 300;      ///< Adam iterations on the PAF coefficients
  double lr = 0.02;
  std::uint64_t seed = 99;
};

/// Result of Coefficient Tuning: per-site tuned coefficients (indexed by
/// non-polynomial site order) plus the profiled |input| maxima (the scales
/// the tuned coefficients assume, also the initial Static-Scaling values).
struct CtResult {
  std::vector<std::vector<double>> coeffs;
  std::vector<double> abs_max;
};

/// Runs Coefficient Tuning offline on a model that still contains its
/// original ReLU/MaxPool operators:
///  1. starts from the form's regression/minimax initial coefficients,
///  2. profiles each operator's input distribution on calibration batches,
///  3. refits each site's PAF to minimise the *operator-output* error
///     (relu/max built from the PAF) under the profiled distribution,
///  4. returns per-site coefficients for the replacement pass.
CtResult coefficient_tuning(nn::Model& model, const nn::Dataset& calib,
                            approx::PafForm form, const CtConfig& cfg = {});

/// The single-site refit used by step 3; exposed for tests and ablations.
/// For ReLU sites the samples are input values; for MaxPool sites they are
/// pairwise tournament differences. Returns the tuned flat coefficients.
std::vector<double> fit_paf_to_profile(const approx::CompositePaf& init,
                                       const std::vector<double>& samples, double scale,
                                       bool is_max_site, const CtConfig& cfg);

}  // namespace sp::smartpaf
