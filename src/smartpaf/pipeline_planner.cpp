#include "smartpaf/pipeline_planner.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <set>
#include <sstream>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/timer.h"
#include "fhe/conv2d_fan.h"
#include "fhe/diag_matvec.h"
#include "smartpaf/fhe_deploy.h"

namespace sp::smartpaf {
namespace {

/// Times `op` over fresh `setup()` state, returning the median ms.
template <typename Setup, typename Op>
double time_op(int repeats, const Setup& setup, const Op& op) {
  std::vector<double> ts;
  ts.reserve(static_cast<std::size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    auto state = setup();
    sp::Timer t;
    op(state);
    ts.push_back(t.ms());
  }
  return sp::median(ts);
}

/// JSON helpers for the tiny flat cost-table object (no external deps).
void json_field(std::ostringstream& os, const char* key, double v, bool last = false) {
  os << "  \"" << key << "\": " << std::setprecision(17) << v << (last ? "\n" : ",\n");
}

bool json_read(const std::string& text, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t colon = text.find(':', at + needle.size());
  if (colon == std::string::npos) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str() + colon + 1, &end);
  if (end == text.c_str() + colon + 1) return false;
  *out = v;
  return true;
}

}  // namespace

// ---------------------------------------------------------------- CostModel --

CostModel CostModel::calibrate(FheRuntime& rt, int repeats) {
  sp::check(repeats >= 1, "CostModel::calibrate: repeats must be >= 1");
  CostModel cm;
  cm.measured = true;
  cm.poly_degree = rt.ctx().n();
  cm.q_count = rt.ctx().q_count();

  fhe::Evaluator& ev = rt.evaluator();
  const auto slots = rt.ctx().slot_count();
  sp::Rng rng(99);
  std::vector<double> va(slots), vb(slots);
  for (auto& v : va) v = rng.uniform(-1.0, 1.0);
  for (auto& v : vb) v = rng.uniform(-1.0, 1.0);
  const fhe::Ciphertext a = rt.encrypt(va);
  const fhe::Ciphertext b = rt.encrypt(vb);
  const std::shared_ptr<const fhe::GaloisKeys> gk_snapshot = rt.rotation_keys({1});
  const fhe::GaloisKeys& gk = *gk_snapshot;
  const fhe::Plaintext pt = rt.encoder().encode(vb, rt.ctx().scale(), a.q_count());

  const auto no_setup = [] { return 0; };
  cm.ct_mult_ms = time_op(repeats, no_setup, [&](int) { (void)ev.multiply(a, b); });

  fhe::Ciphertext prod = ev.multiply(a, b);
  cm.relin_ms = time_op(
      repeats, [&] { return prod; },
      [&](fhe::Ciphertext& c) { ev.relinearize_inplace(c, rt.relin_key()); });

  fhe::Ciphertext relin = prod;
  ev.relinearize_inplace(relin, rt.relin_key());
  cm.rescale_ms = time_op(
      repeats, [&] { return relin; },
      [&](fhe::Ciphertext& c) { ev.rescale_inplace(c); });

  cm.plain_mult_ms = time_op(
      repeats, [&] { return a; },
      [&](fhe::Ciphertext& c) { ev.multiply_plain_inplace(c, pt); });

  cm.add_ms = time_op(repeats, no_setup, [&](int) { (void)ev.add(a, b); });
  cm.rotate_ms = time_op(repeats, no_setup, [&](int) { (void)ev.rotate(a, 1, gk); });
  cm.hoist_ms = time_op(repeats, no_setup, [&](int) { (void)ev.hoist(a); });

  const fhe::HoistedDecomposition h = ev.hoist(a);
  cm.hoisted_rotate_ms =
      time_op(repeats, no_setup, [&](int) { (void)ev.rotate_hoisted(h, 1, gk); });
  return cm;
}

bool CostModel::matches(const fhe::CkksContext& ctx) const {
  return poly_degree == ctx.n() && q_count == ctx.q_count();
}

std::string CostModel::to_json() const {
  std::ostringstream os;
  os << "{\n";
  json_field(os, "poly_degree", static_cast<double>(poly_degree));
  json_field(os, "q_count", static_cast<double>(q_count));
  json_field(os, "measured", measured ? 1.0 : 0.0);
  json_field(os, "ct_mult_ms", ct_mult_ms);
  json_field(os, "relin_ms", relin_ms);
  json_field(os, "rescale_ms", rescale_ms);
  json_field(os, "plain_mult_ms", plain_mult_ms);
  json_field(os, "add_ms", add_ms);
  json_field(os, "rotate_ms", rotate_ms);
  json_field(os, "hoist_ms", hoist_ms);
  json_field(os, "hoisted_rotate_ms", hoisted_rotate_ms, /*last=*/true);
  os << "}\n";
  return os.str();
}

std::optional<CostModel> CostModel::from_json(const std::string& text) {
  CostModel cm;
  double pd = 0.0, qc = 0.0, measured = 0.0;
  if (!json_read(text, "poly_degree", &pd) || !json_read(text, "q_count", &qc) ||
      !json_read(text, "measured", &measured))
    return std::nullopt;
  if (!json_read(text, "ct_mult_ms", &cm.ct_mult_ms) ||
      !json_read(text, "relin_ms", &cm.relin_ms) ||
      !json_read(text, "rescale_ms", &cm.rescale_ms) ||
      !json_read(text, "plain_mult_ms", &cm.plain_mult_ms) ||
      !json_read(text, "add_ms", &cm.add_ms) ||
      !json_read(text, "rotate_ms", &cm.rotate_ms) ||
      !json_read(text, "hoist_ms", &cm.hoist_ms) ||
      !json_read(text, "hoisted_rotate_ms", &cm.hoisted_rotate_ms))
    return std::nullopt;
  cm.poly_degree = static_cast<std::size_t>(pd);
  cm.q_count = static_cast<int>(qc);
  cm.measured = measured != 0.0;
  return cm;
}

CostModel CostModel::load_or_calibrate(FheRuntime& rt, const std::string& path,
                                       int repeats) {
  {
    std::ifstream in(path);
    if (in) {
      std::stringstream ss;
      ss << in.rdbuf();
      const auto cached = from_json(ss.str());
      if (cached && cached->measured && cached->matches(rt.ctx())) return *cached;
    }
  }
  CostModel cm = calibrate(rt, repeats);
  std::error_code ec;
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream out(path);
  if (out) out << cm.to_json();
  return cm;
}

double CostModel::eval_cost(const fhe::SchedulePrediction& ops) const {
  return ops.ct_mults * ct_mult_ms + ops.relins * relin_ms +
         ops.rescales * rescale_ms + ops.plain_mults * plain_mult_ms;
}

double CostModel::fan_cost(int fan_size, bool hoisted) const {
  if (fan_size <= 0) return 0.0;
  return hoisted ? hoist_ms + fan_size * hoisted_rotate_ms : fan_size * rotate_ms;
}

// --------------------------------------------------------------------- Plan --

std::string Plan::describe() const {
  std::ostringstream os;
  os << "FhePipeline plan: " << stages.size() << " stages, " << levels_used << "/"
     << chain_levels << " levels, predicted cost " << std::fixed
     << std::setprecision(2) << predicted_cost
     << (measured_costs ? " ms (measured)" : " units (heuristic)") << "\n";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StagePlan& s = stages[i];
    os << "  [" << i << "] " << std::left << std::setw(26) << s.label << std::right;
    if (s.folded) {
      os << (s.merged_into_next ? "merged into the next linear stage\n"
                                : "folded into the next PAF stage\n");
      continue;
    }
    os << "L" << s.level_in << "->L" << s.level_out;
    const bool structured = s.layout_in.kind == StageLayout::Kind::Grid ||
                            s.layout_out.kind == StageLayout::Kind::Grid ||
                            s.layout_in.blocks > 1 || s.layout_out.blocks > 1;
    if (structured) {
      os << "  " << s.layout_in.describe();
      if (s.layout_out.describe() != s.layout_in.describe())
        os << " -> " << s.layout_out.describe();
    } else if (s.width_in != s.width_out) {
      os << "  w" << s.width_in << "->" << s.width_out;
    }
    if (!s.rotation_steps.empty()) {
      if (s.rotation_steps.size() <= 8) {
        os << "  fan{";
        for (std::size_t t = 0; t < s.rotation_steps.size(); ++t)
          os << (t ? "," : "") << s.rotation_steps[t];
        os << "}";
      } else {
        os << "  fan[" << s.rotation_steps.size() << " steps]";
      }
      os << (s.hoist_fan ? " hoisted" : " naive");
    }
    if (s.bsgs_n1 > 0) {
      os << "  bsgs n1=" << s.bsgs_n1 << " giants=" << s.giant_steps.size()
         << " diags=" << s.diag_mults;
    }
    if (s.conv_n1 == 0) {
      os << "  conv fan masks=" << s.diag_mults;
    } else if (s.conv_n1 > 0) {
      os << "  conv bsgs n1=" << s.conv_n1 << " giants=" << s.giant_steps.size()
         << " masks=" << s.diag_mults;
    }
    if (s.merged_linear) os << "  (executes a merged linear run)";
    if (s.ops.ct_mults > 0) {
      os << "  " << (s.strategy == fhe::PafEvaluator::Strategy::BSGS ? "BSGS" : "Ladder")
         << (s.lazy_relin ? " lazy-relin" : " eager-relin") << "  " << s.ops.ct_mults
         << " ct-mults";
      if (s.pre_factor != 1.0) os << "  pre x" << s.pre_factor;
    }
    os << "  cost " << std::fixed << std::setprecision(2) << s.predicted_cost << "\n";
  }
  return os.str();
}

std::vector<int> Plan::rotation_steps() const {
  std::set<int> uniq;
  for (const StagePlan& s : stages) {
    for (int step : s.rotation_steps) uniq.insert(step);
    for (int step : s.giant_steps) uniq.insert(step);
  }
  return std::vector<int>(uniq.begin(), uniq.end());
}

// ------------------------------------------------------------------ Planner --

namespace {

/// y = s2 * (s1 * x + b1) + b2 collapsed into one affine stage (broadcast
/// rules: size-1 vectors apply to every slot; empty bias = 0).
LinearStage compose_linear(const LinearStage& first, const LinearStage& second) {
  const auto at = [](const std::vector<double>& v, std::size_t j, double dflt) {
    if (v.empty()) return dflt;
    return v[v.size() == 1 ? 0 : j];
  };
  const std::size_t n =
      std::max({first.scale.size(), first.bias.size(), second.scale.size(),
                second.bias.size(), std::size_t{1}});
  LinearStage out;
  out.scale.resize(n);
  out.bias.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double s1 = at(first.scale, j, 1.0);
    const double b1 = at(first.bias, j, 0.0);
    const double s2 = at(second.scale, j, 1.0);
    const double b2 = at(second.bias, j, 0.0);
    out.scale[j] = s2 * s1;
    out.bias[j] = s2 * b1 + b2;
  }
  if (std::all_of(out.bias.begin(), out.bias.end(), [](double b) { return b == 0.0; }))
    out.bias.clear();  // keeps the merged stage foldable into a PAF envelope
  return out;
}

}  // namespace

Plan Planner::plan(const FhePipeline& pipe, const fhe::CkksContext& ctx,
                   const CostModel& cost, const PlanOptions& opts) {
  const auto& stages = pipe.stages();
  sp::check(!stages.empty(), "Planner: empty pipeline");
  const RescalePolicy policy = opts.rescale_policy.value_or(pipe.rescale_policy());
  const auto slots = ctx.slot_count();
  const int chain = ctx.q_count() - 1;
  const std::size_t extent = opts.pack_stride != 0 ? opts.pack_stride : slots;
  sp::check_fmt(extent <= slots && slots % extent == 0, "Planner: pack stride ",
                extent, " must divide the ", slots, " slots");
  if (opts.pack_stride != 0)
    sp::check_fmt(pipe.input_width() <= extent, "Planner: input width ",
                  pipe.input_width(), " exceeds the ", extent, "-slot layout");

  // Slot layouts threaded through the graph (grid strides, channel blocking,
  // multi-ciphertext column splits) with all the width/layout compatibility
  // checks; the per-parameter-set checks stay here.
  const std::vector<std::pair<StageLayout, StageLayout>> layouts =
      pipe.stage_layouts(extent);
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const Stage& st = stages[i];
    if (const auto* lin = std::get_if<LinearStage>(&st.op)) {
      sp::check_fmt(lin->scale.size() == 1 || lin->scale.size() == slots,
                    "Planner: linear scale must have 1 or ", slots,
                    " entries, got ", lin->scale.size());
      sp::check_fmt(lin->bias.empty() || lin->bias.size() == 1 ||
                        lin->bias.size() == slots,
                    "Planner: linear bias must have 0, 1 or ", slots,
                    " entries, got ", lin->bias.size());
    } else if (const auto* win = std::get_if<WindowStage>(&st.op)) {
      sp::check_fmt(win->taps.size() <= slots, "Planner: window of ",
                    win->taps.size(), " taps exceeds the ", slots, " slots");
    } else if (const auto* paf = std::get_if<PafStage>(&st.op)) {
      if (paf->kind == SiteKind::MaxPool)
        sp::check_fmt(static_cast<std::size_t>(paf->pool_window) <= slots,
                      "Planner: pool window ", paf->pool_window, " exceeds the ",
                      slots, " slots");
    }
    // Packed batches replicate one layout per tile; a request spanning
    // several ciphertexts cannot tile, so multi-block layouts are
    // single-layout (pack_stride == 0) territory.
    if (opts.pack_stride != 0)
      sp::check_fmt(layouts[i].first.blocks == 1 && layouts[i].second.blocks == 1,
                    "Planner: '", st.label, "' spans ",
                    std::max(layouts[i].first.blocks, layouts[i].second.blocks),
                    " ciphertext blocks; packed batches need single-ciphertext"
                    " layouts");
  }

  Plan plan;
  plan.chain_levels = chain;
  plan.measured_costs = cost.measured;
  plan.pack_stride = opts.pack_stride;
  plan.stages.resize(stages.size());

  // Merge pass (plan-level rescale placement): a run of back-to-back linear
  // stages collapses into its LAST stage — one plaintext multiplication and
  // ONE rescale instead of one per stage, saving a level for every extra
  // non-identity stage in the run. Skipped under PerStage (stages execute
  // literally as built).
  std::vector<bool> absorbed(stages.size(), false);
  std::vector<std::optional<LinearStage>> merged(stages.size());
  if (policy == RescalePolicy::FoldScalars) {
    std::size_t i = 0;
    while (i < stages.size()) {
      if (!std::holds_alternative<LinearStage>(stages[i].op)) {
        ++i;
        continue;
      }
      std::size_t j = i;
      while (j + 1 < stages.size() &&
             std::holds_alternative<LinearStage>(stages[j + 1].op))
        ++j;
      if (j > i) {
        LinearStage combined = std::get<LinearStage>(stages[i].op);
        for (std::size_t k = i + 1; k <= j; ++k) {
          absorbed[k - 1] = true;
          combined = compose_linear(combined, std::get<LinearStage>(stages[k].op));
        }
        merged[j] = std::move(combined);
      }
      i = j + 1;
    }
  }

  // Fold pass: scalar, bias-free linear stages directly preceding a PAF-ReLU
  // ride that activation's envelope plaintexts (see RescalePolicy). Runs on
  // the post-merge view: a merged survivor folds with its combined scalar,
  // and the scan stops at absorbed stages (their effect is already inside
  // the survivor).
  std::vector<double> pre_factor(stages.size(), 1.0);
  std::vector<bool> folded(stages.size(), false);
  if (policy == RescalePolicy::FoldScalars) {
    for (std::size_t i = 0; i < stages.size(); ++i) {
      const auto* paf = std::get_if<PafStage>(&stages[i].op);
      if (paf == nullptr) continue;
      // ReLU always absorbs; a MaxPool only for the single pairwise fold
      // (pool window 2), where both tournament operands are raw and the
      // factor rides max()'s envelope plaintexts.
      const bool absorbs = paf->kind == SiteKind::ReLU ||
                           (paf->kind == SiteKind::MaxPool && paf->pool_window == 2);
      if (!absorbs) continue;
      for (std::size_t j = i; j-- > 0;) {
        if (absorbed[j]) break;
        const auto* lin = merged[j] ? &*merged[j]
                                    : std::get_if<LinearStage>(&stages[j].op);
        if (lin == nullptr || folded[j] || lin->scale.size() != 1 ||
            linear_has_bias(*lin) || lin->scale[0] == 0.0)
          break;
        pre_factor[i] *= lin->scale[0];
        folded[j] = true;
      }
    }
  }

  int level = chain;
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const Stage& st = stages[i];
    StagePlan& sp_ = plan.stages[i];
    sp_.label = st.label;
    sp_.level_in = level;
    sp_.lazy_relin = opts.lazy_relin;
    sp_.layout_in = layouts[i].first;
    sp_.layout_out = layouts[i].second;
    sp_.width_in = sp_.layout_in.width;
    sp_.width_out = sp_.layout_out.width;
    if (absorbed[i]) {
      sp_.folded = true;
      sp_.merged_into_next = true;
      sp_.level_out = level;
      continue;
    }
    if (folded[i]) {
      sp_.folded = true;
      sp_.level_out = level;
      continue;
    }

    sp_.rotation_steps = stage_rotation_steps(st);
    const int fan = static_cast<int>(sp_.rotation_steps.size());
    if (fan > 0)
      sp_.hoist_fan =
          opts.force_hoist.value_or(cost.fan_cost(fan, true) <= cost.fan_cost(fan, false));

    if (const auto* lin = std::get_if<LinearStage>(&st.op)) {
      if (merged[i]) sp_.merged_linear = merged[i];
      const LinearStage& eff = sp_.merged_linear ? *sp_.merged_linear : *lin;
      if (!linear_scale_is_identity(eff)) {
        sp_.ops.plain_mults = 1;
        sp_.ops.rescales = 1;
        sp_.ops.levels = 1;
      }
      sp_.predicted_cost = cost.eval_cost(sp_.ops);
    } else if (const auto* mm = std::get_if<MatMulStage>(&st.op)) {
      // Column-split view: a grid or multi-ciphertext input scatters the
      // matrix columns into one dense matrix per input block (the same
      // split run_blocks and reference() use, so the three cannot
      // disagree); a single-block dense input is the identity split.
      std::vector<MatMulStage> split;
      if (sp_.layout_in.kind == StageLayout::Kind::Dense &&
          sp_.layout_in.blocks == 1) {
        split.push_back(*mm);
      } else {
        split = split_matmul_blocks(*mm, sp_.layout_in);
      }
      // BSGS split selection: pick the baby block size n1 minimizing the
      // cost of (hoistable baby fan) + (naive giant rotations) + (one
      // plaintext mult per nonzero extended diagonal) under the table,
      // summed across column blocks. n1=1 is the naive per-diagonal
      // rotation loop; the sweep caps near 2 sqrt(span), past which giants
      // stop shrinking.
      std::vector<std::vector<int>> dsteps;
      int span = 1;
      for (const MatMulStage& mb : split) {
        dsteps.push_back(
            fhe::DiagMatVecPlan::nonzero_steps(mb.weights, mb.rows, mb.cols));
        span = std::max(span, mb.rows + mb.cols - 1);
      }
      std::vector<int> candidates;
      if (opts.force_matmul_n1) {
        sp::check(*opts.force_matmul_n1 >= 1, "Planner: force_matmul_n1 must be >= 1");
        candidates.push_back(*opts.force_matmul_n1);
      } else {
        const int n1_max = std::min(
            span, 2 * static_cast<int>(std::ceil(std::sqrt(static_cast<double>(span)))) + 1);
        for (int n1 = 1; n1 <= n1_max; ++n1) candidates.push_back(n1);
      }
      bool first = true;
      for (const int n1 : candidates) {
        std::set<int> babies_u, giants_u;
        int diags = 0;
        int plain = 0;
        double rot_cost = 0.0;
        bool hoist = false;
        for (std::size_t b = 0; b < split.size(); ++b) {
          const fhe::DiagMatVecPlan dplan = fhe::DiagMatVecPlan::group(
              dsteps[b], split[b].rows, split[b].cols, n1);
          const int babies = static_cast<int>(dplan.baby_steps.size());
          const bool h =
              babies > 0 &&
              opts.force_hoist.value_or(cost.fan_cost(babies, true) <=
                                        cost.fan_cost(babies, false));
          hoist = hoist || h;
          rot_cost += cost.fan_cost(babies, h) +
                      static_cast<double>(dplan.giant_steps.size()) * cost.rotate_ms;
          // An all-zero block still pays one mask multiply for the schedule
          // shape (see DiagonalMatVec::apply).
          plain += std::max(1, dplan.nonzero_diagonals);
          diags += dplan.nonzero_diagonals;
          babies_u.insert(dplan.baby_steps.begin(), dplan.baby_steps.end());
          giants_u.insert(dplan.giant_steps.begin(), dplan.giant_steps.end());
        }
        fhe::SchedulePrediction ops;
        ops.plain_mults = plain;
        ops.rescales = static_cast<int>(split.size());
        ops.levels = 1;
        const double c = cost.eval_cost(ops) + rot_cost;
        if (first || c < sp_.predicted_cost) {
          sp_.bsgs_n1 = n1;
          sp_.rotation_steps.assign(babies_u.begin(), babies_u.end());
          sp_.giant_steps.assign(giants_u.begin(), giants_u.end());
          sp_.diag_mults = diags;
          sp_.hoist_fan = hoist;
          sp_.ops = ops;
          sp_.predicted_cost = c;
          first = false;
        }
      }
    } else if (const auto* cv = std::get_if<ConvStage>(&st.op)) {
      // Fan-vs-diagonal choice: n1 == 0 executes the im2col-style rotation
      // fan (every distinct term shift a hoistable baby rotation); n1 >= 1
      // runs BSGS over the channel offset, trading encode-time mask
      // pre-rotations for fewer live rotations. Candidates are priced per
      // (output, input) block pair and the cheapest wins under the table.
      const StageLayout& lay = sp_.layout_in;
      fhe::ConvGeom geom;
      geom.in_channels = cv->in_channels;
      geom.out_channels = cv->out_channels;
      geom.height = cv->height;
      geom.width = cv->width;
      geom.kernel = cv->kernel;
      geom.stride = cv->stride;
      geom.ch_stride = lay.ch_stride;
      geom.row_stride = lay.row_stride;
      geom.elem_stride = lay.elem_stride;
      const int cpb = lay.chans_per_block;
      const int blocks_in = lay.blocks;
      const int blocks_out = sp_.layout_out.blocks;
      const int span =
          std::min(cpb, cv->in_channels) + std::min(cpb, cv->out_channels) - 1;
      std::vector<int> candidates;
      if (opts.force_conv_n1) {
        sp::check(*opts.force_conv_n1 >= 0, "Planner: force_conv_n1 must be >= 0");
        candidates.push_back(*opts.force_conv_n1);
      } else {
        candidates.push_back(0);
        const int n1_max = std::min(
            span, 2 * static_cast<int>(std::ceil(std::sqrt(static_cast<double>(span)))) + 1);
        for (int n1 = 1; n1 <= n1_max; ++n1) candidates.push_back(n1);
      }
      bool first = true;
      for (const int n1 : candidates) {
        // Pair schedules, row-major over (bo, bi) exactly like ConvChannelFan.
        std::vector<fhe::Conv2dFanPlan> pairs;
        pairs.reserve(static_cast<std::size_t>(blocks_out * blocks_in));
        for (int bo = 0; bo < blocks_out; ++bo)
          for (int bi = 0; bi < blocks_in; ++bi)
            pairs.push_back(fhe::Conv2dFanPlan::make(
                cv->weights, geom, bo * cpb,
                std::min((bo + 1) * cpb, cv->out_channels), bi * cpb,
                std::min((bi + 1) * cpb, cv->in_channels), n1));
        std::set<int> babies_u, giants_u;
        int masks = 0;
        int giant_rots = 0;
        double rot_cost = 0.0;
        bool hoist = false;
        for (int bi = 0; bi < blocks_in; ++bi) {
          // One hoisted decomposition per input block serves the union of
          // its pairs' baby fans across every output block it feeds.
          std::set<int> fan_u;
          for (int bo = 0; bo < blocks_out; ++bo) {
            const fhe::Conv2dFanPlan& p = pairs[static_cast<std::size_t>(
                bo * blocks_in + bi)];
            fan_u.insert(p.baby_steps.begin(), p.baby_steps.end());
            giant_rots += static_cast<int>(p.giant_steps.size());
            giants_u.insert(p.giant_steps.begin(), p.giant_steps.end());
            masks += p.mask_mults;
          }
          const int fan_n = static_cast<int>(fan_u.size());
          const bool h = fan_n > 0 &&
                         opts.force_hoist.value_or(cost.fan_cost(fan_n, true) <=
                                                   cost.fan_cost(fan_n, false));
          hoist = hoist || h;
          rot_cost += cost.fan_cost(fan_n, h);
          babies_u.insert(fan_u.begin(), fan_u.end());
        }
        rot_cost += static_cast<double>(giant_rots) * cost.rotate_ms;
        // An output block no pair feeds still pays the zero-mask multiply
        // that manufactures a ciphertext of the right shape.
        int plain = masks;
        for (int bo = 0; bo < blocks_out; ++bo) {
          bool any = false;
          for (int bi = 0; bi < blocks_in; ++bi)
            any = any ||
                  pairs[static_cast<std::size_t>(bo * blocks_in + bi)].mask_mults > 0;
          if (!any) plain += 1;
        }
        fhe::SchedulePrediction ops;
        ops.plain_mults = plain;
        ops.rescales = blocks_out;
        ops.levels = 1;
        const double c = cost.eval_cost(ops) + rot_cost;
        if (first || c < sp_.predicted_cost) {
          sp_.conv_n1 = n1;
          sp_.rotation_steps.assign(babies_u.begin(), babies_u.end());
          sp_.giant_steps.assign(giants_u.begin(), giants_u.end());
          sp_.diag_mults = masks;
          sp_.hoist_fan = hoist;
          sp_.ops = ops;
          sp_.predicted_cost = c;
          first = false;
        }
      }
    } else if (const auto* cp = std::get_if<CompactStage>(&st.op)) {
      // Selection-mask fan: output slot i takes x[i * stride] via the step
      // i * (stride - 1); one mask multiply per kept slot, one rescale.
      const std::size_t count = sp_.width_in / static_cast<std::size_t>(cp->stride);
      sp_.rotation_steps.clear();
      for (std::size_t k = 1; k < count; ++k)
        sp_.rotation_steps.push_back(static_cast<int>(k) * (cp->stride - 1));
      const int cfan = static_cast<int>(sp_.rotation_steps.size());
      sp_.hoist_fan = cfan > 0 && opts.force_hoist.value_or(
                                      cost.fan_cost(cfan, true) <=
                                      cost.fan_cost(cfan, false));
      sp_.ops.plain_mults = static_cast<int>(count);
      sp_.ops.rescales = 1;
      sp_.ops.levels = 1;
      sp_.predicted_cost = cost.eval_cost(sp_.ops) + cost.fan_cost(cfan, sp_.hoist_fan);
    } else if (const auto* win = std::get_if<WindowStage>(&st.op)) {
      sp_.ops.plain_mults = static_cast<int>(win->taps.size());
      sp_.ops.rescales = 1;
      sp_.ops.levels = 1;
      sp_.predicted_cost = cost.eval_cost(sp_.ops) + cost.fan_cost(fan, sp_.hoist_fan);
    } else {
      const auto& paf = std::get<PafStage>(st.op);
      const int per_act_levels = paf.paf.mult_depth() + 2;
      const int acts = paf.kind == SiteKind::MaxPool ? paf.pool_window - 1 : 1;
      // Pick the cheaper schedule under the cost table; BSGS first so it
      // wins ties (both consume identical levels by construction).
      const std::vector<fhe::PafEvaluator::Strategy> candidates =
          opts.force_strategy
              ? std::vector<fhe::PafEvaluator::Strategy>{*opts.force_strategy}
              : std::vector<fhe::PafEvaluator::Strategy>{
                    fhe::PafEvaluator::Strategy::BSGS,
                    fhe::PafEvaluator::Strategy::Ladder};
      double best_cost = 0.0;
      bool first = true;
      for (const auto cand : candidates) {
        fhe::SchedulePrediction pred =
            fhe::PafEvaluator::predict_composite(paf.paf, cand);
        // The Static-Scaling envelope per activation: input scaling + final
        // product (ReLU) or the tournament's d*p product + 0.5-halvings (max).
        pred.ct_mults += 1;
        pred.relins += 1;
        pred.rescales += 1;
        pred.plain_mults += paf.kind == SiteKind::MaxPool ? 3 : 2;
        pred.levels = per_act_levels;
        if (acts > 1) {
          fhe::SchedulePrediction one = pred;
          for (int a = 1; a < acts; ++a) pred += one;
        }
        const double c = cost.eval_cost(pred) + cost.fan_cost(fan, sp_.hoist_fan);
        if (first || c < best_cost) {
          best_cost = c;
          sp_.strategy = cand;
          sp_.ops = pred;
          sp_.predicted_cost = c;
          first = false;
        }
      }
      sp_.pre_factor = pre_factor[i];
    }

    level -= sp_.ops.levels;
    sp_.level_out = level;
  }

  plan.levels_used = chain - level;
  for (const StagePlan& s : plan.stages) plan.predicted_cost += s.predicted_cost;

  if (plan.levels_used > chain) {
    std::ostringstream os;
    os << "Planner: pipeline needs " << plan.levels_used
       << " levels but the chain has " << chain << " (";
    bool sep = false;
    for (const StagePlan& s : plan.stages) {
      if (s.folded) continue;
      if (sep) os << ", ";
      os << s.label << ": " << s.ops.levels;
      sep = true;
    }
    os << "); use a deeper prime chain or a shallower PAF";
    throw sp::Error(os.str());
  }
  return plan;
}

}  // namespace sp::smartpaf
