#include "smartpaf/fhe_deploy.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"

namespace sp::smartpaf {

FheRuntime::FheRuntime(const fhe::CkksParams& params, std::uint64_t seed) {
  ctx_ = std::make_unique<fhe::CkksContext>(params);
  encoder_ = std::make_unique<fhe::Encoder>(*ctx_);
  keygen_ = std::make_unique<fhe::KeyGenerator>(*ctx_, seed);
  relin_ = std::make_unique<fhe::KSwitchKey>(keygen_->relin_key());
  // Stored (not just handed to the encryptor) so the wire path can ship it:
  // public_key() draws fresh randomness on every KeyGenerator call, so the
  // serialized key must be the same object the encryptor uses.
  pk_ = keygen_->public_key();
  encryptor_ = std::make_unique<fhe::Encryptor>(*ctx_, pk_, seed + 1);
  decryptor_ = std::make_unique<fhe::Decryptor>(*ctx_, keygen_->secret_key());
  evaluator_ = std::make_unique<fhe::Evaluator>(*ctx_);
  paf_eval_ = std::make_unique<fhe::PafEvaluator>(*ctx_, *encoder_, *relin_);
}

FheRuntime::FheRuntime(std::unique_ptr<fhe::CkksContext> ctx, fhe::PublicKey pk,
                       fhe::KSwitchKey relin, fhe::GaloisKeys galois) {
  sp::check(ctx != nullptr, "FheRuntime: null context");
  ctx_ = std::move(ctx);
  encoder_ = std::make_unique<fhe::Encoder>(*ctx_);
  relin_ = std::make_unique<fhe::KSwitchKey>(std::move(relin));
  pk_ = std::move(pk);
  // Entropy-seeded: a server encrypting auxiliary plaintexts must not share
  // a randomness stream with any other process.
  encryptor_ = std::make_unique<fhe::Encryptor>(*ctx_, pk_);
  evaluator_ = std::make_unique<fhe::Evaluator>(*ctx_);
  paf_eval_ = std::make_unique<fhe::PafEvaluator>(*ctx_, *encoder_, *relin_);
  rot_keys_ = std::make_shared<const fhe::GaloisKeys>(std::move(galois));
}

fhe::Decryptor& FheRuntime::decryptor() {
  sp::check(decryptor_ != nullptr,
            "FheRuntime::decryptor: this runtime was reconstructed from public "
            "key material only; the secret key never leaves the client");
  return *decryptor_;
}

std::shared_ptr<const fhe::GaloisKeys> FheRuntime::rotation_keys(
    const std::vector<int>& steps) {
  std::unique_lock<std::mutex> lock(rot_mu_);
  std::vector<int> missing;
  for (int s : steps) {
    if (s == 0) continue;  // identity rotation needs no key
    if (!rot_keys_ || rot_keys_->keys.count(evaluator_->galois_element(s)) == 0)
      missing.push_back(s);
  }
  if (!missing.empty()) {
    if (!keygen_) {
      std::ostringstream os;
      os << "FheRuntime::rotation_keys: runtime holds no secret key and the "
            "deserialized Galois keys do not cover step(s)";
      for (int s : missing) os << ' ' << s;
      os << "; ask the key owner for keys covering the plan";
      throw sp::Error(os.str());
    }
    // Keygen outside the lock would be nicer for latency, but two threads
    // minting the same step would duplicate the (expensive) work; extension
    // is a once-per-step-set event, so hold the lock through keygen and the
    // copy-on-write snapshot swap.
    fhe::GaloisKeys fresh = keygen_->galois_keys(missing);
    auto next = std::make_shared<fhe::GaloisKeys>();
    if (rot_keys_) next->keys = rot_keys_->keys;
    for (auto& kv : fresh.keys) next->keys.emplace(kv.first, std::move(kv.second));
    rot_keys_ = std::move(next);
  }
  if (!rot_keys_) rot_keys_ = std::make_shared<const fhe::GaloisKeys>();
  return rot_keys_;
}

void FheRuntime::add_rotation_keys(fhe::GaloisKeys keys) {
  std::unique_lock<std::mutex> lock(rot_mu_);
  auto next = std::make_shared<fhe::GaloisKeys>();
  if (rot_keys_) next->keys = rot_keys_->keys;
  for (auto& kv : keys.keys) next->keys.insert_or_assign(kv.first, std::move(kv.second));
  rot_keys_ = std::move(next);
}

std::size_t FheRuntime::rotation_key_count() const {
  std::unique_lock<std::mutex> lock(rot_mu_);
  return rot_keys_ ? rot_keys_->keys.size() : 0;
}

int FheRuntime::threads() const { return sp::ThreadPool::global().threads(); }

fhe::Ciphertext FheRuntime::encrypt(const std::vector<double>& values) {
  return encryptor_->encrypt(encoder_->encode(values, ctx_->scale(), ctx_->q_count()));
}

std::vector<double> FheRuntime::decrypt(const fhe::Ciphertext& ct) {
  return encoder_->decode(decryptor().decrypt(ct));
}

PafLatencyResult measure_paf_relu(FheRuntime& rt, const approx::CompositePaf& paf,
                                  double input_scale, int repeats, std::uint64_t seed) {
  sp::Rng rng(seed);
  std::vector<double> values(rt.ctx().slot_count());
  for (auto& v : values) v = rng.uniform(-input_scale, input_scale);
  const fhe::Ciphertext ct = rt.encrypt(values);

  PafLatencyResult out;
  std::vector<double> times;
  fhe::Ciphertext result;
  // Cold path: every repeat builds its own power basis, matching serving
  // (each activation ciphertext is fresh), so ms_median is honest.
  for (int r = 0; r < repeats; ++r) {
    fhe::EvalStats stats;
    result = rt.paf_evaluator().relu(rt.evaluator(), ct, paf, input_scale, &stats);
    times.push_back(stats.wall_ms);
    if (r == 0) out.stats = stats;
  }
  out.ms_median = sp::median(times);
  out.ms_best = *std::min_element(times.begin(), times.end());

  // Warm path: a shared CompositeBasis carries EVERY stage's powers and
  // outputs across calls — the repeat-on-same-input cost is one ct-ct mult
  // (the final ReLU product), reported separately. Skipped for single-shot
  // measurements to keep them cheap.
  if (repeats >= 2) {
    fhe::CompositeBasis basis;
    fhe::EvalStats warm;
    rt.paf_evaluator().relu(rt.evaluator(), ct, paf, input_scale, &warm, nullptr, &basis);
    warm = {};
    rt.paf_evaluator().relu(rt.evaluator(), ct, paf, input_scale, &warm, nullptr, &basis);
    out.ms_warm_cached = warm.wall_ms;
  }

  const std::vector<double> got = rt.decrypt(result);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double expect = approx::paf_relu(paf, values[i] / input_scale) * input_scale;
    out.max_error = std::max(out.max_error, std::abs(got[i] - expect));
  }
  return out;
}

std::vector<DeployRow> deployment_report(nn::Model& model, FheRuntime& rt, int repeats) {
  std::vector<DeployRow> rows;
  for (PafLayerBase* layer : find_paf_layers(model)) {
    DeployRow row;
    row.path = layer->name();
    row.depth = layer->paf().mult_depth();
    row.static_scale = layer->static_scale();
    const double scale = std::max<double>(layer->static_scale(), 1e-3);
    const PafLatencyResult r = measure_paf_relu(rt, layer->paf(), scale, repeats);
    row.ms = r.ms_median;
    if (auto* pool = dynamic_cast<PafMaxPool*>(layer)) {
      // A k x k window folds k^2 - 1 pairwise maxes, each one PAF call.
      row.ms *= pool->kernel() * pool->kernel() - 1;
    }
    rows.push_back(row);
  }
  return rows;
}

}  // namespace sp::smartpaf
