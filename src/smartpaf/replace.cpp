#include "smartpaf/replace.h"

#include "common/check.h"
#include "nn/layers.h"

namespace sp::smartpaf {
namespace {

/// Depth-first traversal over layer slots in execution order.
void walk_slots(nn::Layer& layer,
                const std::function<void(std::unique_ptr<nn::Layer>&)>& fn) {
  layer.visit_children([&](std::unique_ptr<nn::Layer>& slot) {
    fn(slot);
    walk_slots(*slot, fn);
  });
}

}  // namespace

std::vector<NonPolySite> find_nonpoly_sites(nn::Model& model) {
  std::vector<NonPolySite> sites;
  walk_slots(model.root(), [&](std::unique_ptr<nn::Layer>& slot) {
    if (!slot->is_nonpoly()) return;
    NonPolySite s;
    s.index = sites.size();
    const bool is_pool = dynamic_cast<nn::MaxPool2d*>(slot.get()) != nullptr ||
                         dynamic_cast<nn::MaxPool1d*>(slot.get()) != nullptr;
    s.kind = is_pool ? SiteKind::MaxPool : SiteKind::ReLU;
    s.path = slot->name();
    s.slot = &slot;
    sites.push_back(s);
  });
  return sites;
}

std::vector<PafLayerBase*> find_paf_layers(nn::Model& model) {
  std::vector<PafLayerBase*> out;
  walk_slots(model.root(), [&](std::unique_ptr<nn::Layer>& slot) {
    if (auto* p = dynamic_cast<PafLayerBase*>(slot.get())) out.push_back(p);
  });
  return out;
}

PafLayerBase* replace_site(nn::Model& model, const NonPolySite& site,
                           const approx::CompositePaf& paf, ScaleMode mode) {
  sp::check(site.slot != nullptr && *site.slot != nullptr, "replace_site: stale site");
  PafLayerBase* created = nullptr;
  if (site.kind == SiteKind::MaxPool) {
    if (auto* pool1d = dynamic_cast<nn::MaxPool1d*>(site.slot->get())) {
      auto repl = std::make_unique<PafMaxPool1d>(paf, pool1d->window(),
                                                 pool1d->stride(),
                                                 site.path + ".pafmax", mode);
      created = repl.get();
      *site.slot = std::move(repl);
      model.invalidate_params();
      return created;
    }
    auto* pool = dynamic_cast<nn::MaxPool2d*>(site.slot->get());
    sp::check(pool != nullptr, "replace_site: site is not a MaxPool1d/MaxPool2d");
    auto repl = std::make_unique<PafMaxPool>(paf, pool->kernel(), pool->stride(),
                                             pool->pad(), site.path + ".pafmax", mode);
    created = repl.get();
    *site.slot = std::move(repl);
  } else {
    auto repl = std::make_unique<PafActivation>(paf, site.path + ".paf", mode);
    created = repl.get();
    *site.slot = std::move(repl);
  }
  model.invalidate_params();
  return created;
}

std::vector<PafLayerBase*> replace_all(nn::Model& model, const ReplaceOptions& opts) {
  // Replacement assigns into existing slots, so the other slot pointers from
  // a single enumeration remain valid throughout.
  const auto sites = find_nonpoly_sites(model);
  std::vector<PafLayerBase*> created;
  for (const auto& site : sites) {
    const bool want =
        site.kind == SiteKind::MaxPool ? opts.replace_maxpool : opts.replace_relu;
    if (!want) continue;
    approx::CompositePaf paf = approx::make_paf(opts.form);
    // per_site_coeffs is indexed by the site's position among *all*
    // non-polynomial sites (the Coefficient Tuning enumeration).
    if (site.index < opts.per_site_coeffs.size() &&
        !opts.per_site_coeffs[site.index].empty())
      paf.load_coeffs(opts.per_site_coeffs[site.index]);
    created.push_back(replace_site(model, site, paf, opts.mode));
  }
  return created;
}

void convert_to_static_scaling(nn::Model& model) {
  for (PafLayerBase* p : find_paf_layers(model)) p->convert_to_static();
}

void convert_to_dynamic_scaling(nn::Model& model) {
  for (PafLayerBase* p : find_paf_layers(model)) p->convert_to_dynamic();
}

void freeze_after_site(nn::Model& model, long site_index) {
  if (site_index < 0) return;
  long seen = 0;
  walk_slots(model.root(), [&](std::unique_ptr<nn::Layer>& slot) {
    const bool is_site = slot->is_nonpoly() || dynamic_cast<PafLayerBase*>(slot.get());
    // Freeze-only overlay: leaves strictly after the site lose trainability;
    // earlier layers keep whatever group-level freeze they already have.
    if (seen > site_index) {
      bool has_children = false;
      slot->visit_children([&](std::unique_ptr<nn::Layer>&) { has_children = true; });
      if (!has_children) {
        std::vector<nn::Param*> ps;
        slot->collect_params(ps);
        for (nn::Param* p : ps) p->frozen = true;
      }
    }
    if (is_site) ++seen;
  });
}

void unfreeze_all(nn::Model& model) {
  for (nn::Param* p : model.params()) p->frozen = false;
}

}  // namespace sp::smartpaf
