#pragma once

#include "nn/trainer.h"
#include "smartpaf/coefficient_tuning.h"
#include "smartpaf/techniques.h"

namespace sp::smartpaf {

/// Configuration of the SMART-PAF scheduling framework (paper Fig. 6).
///
/// Flag mapping to the paper's ablation rows (Table 3):
///  - prior-work baseline:        ct=0, progressive_replace=0,
///                                progressive_train=0, at=0, train_paf=false
///  - "+ CT":                     use_ct = true
///  - "+ PA":                     progressive_replace = progressive_train = true
///  - "+ AT":                     use_at = true (phases alternate PAF/other)
/// Dynamic Scaling is always on during fine-tuning; run() reports both the
/// DS accuracy and the accuracy after the Static Scaling conversion.
struct SchedulerConfig {
  approx::PafForm form = approx::PafForm::F1SQ_G1SQ;
  bool use_ct = true;
  bool progressive_replace = true;
  bool progressive_train = true;
  bool use_at = true;
  /// When false, PAF coefficients are excluded from fine-tuning (the
  /// prior-work baseline of §5.3).
  bool train_paf = true;
  bool replace_relu = true;
  bool replace_maxpool = true;
  int group_epochs = 2;          ///< E — epochs per training group
  int max_groups_per_step = 3;   ///< safety cap on the Fig. 6 inner loop
  bool use_swa = true;
  bool dropout_on_overfit = true;
  double overfit_gap = 0.10;     ///< "train acc > val acc + 10%"
  bool final_network_train = true;
  nn::TrainConfig train;
  CtConfig ct;
  bool verbose = false;
};

/// One point of the training trace (drives the Fig. 9 reproduction).
struct TraceEvent {
  int epoch = 0;
  double val_acc = 0.0;
  std::string tag;  ///< "", "replace:<site>", "swa", "at", "dropout", "final"
};

/// Scheduler outcome.
struct SchedulerResult {
  double initial_acc = 0.0;     ///< post-replacement accuracy before training
  double best_acc_ds = 0.0;     ///< best validation accuracy under DS
  double acc_ss = 0.0;          ///< accuracy after Static Scaling conversion
  std::vector<TraceEvent> trace;
  std::vector<std::vector<double>> final_coeffs;  ///< per PAF layer
  int epochs_run = 0;
};

/// The SMART-PAF framework: orchestrates CT, PA, AT, DS/SS, SWA and dropout
/// over the replacement of a model's non-polynomial operators.
///
/// The model is modified in place (PAFs inserted, weights fine-tuned) and is
/// left in its best-accuracy state with Static Scaling applied (i.e.,
/// FHE-deployable).
class Scheduler {
 public:
  Scheduler(nn::Model& model, const nn::Dataset& train, const nn::Dataset& val,
            SchedulerConfig cfg);

  SchedulerResult run();

 private:
  /// One Fig. 6 step: training groups with SWA + improvement detection +
  /// dropout-on-overfit + AT swaps, until no branch improves.
  void run_step(long site_limit, SchedulerResult& result);

  /// Trains one group of E epochs; returns the best validation accuracy seen
  /// (model left at the better of best-epoch/SWA weights).
  double run_group(long site_limit, TrainTarget target, SchedulerResult& result,
                   double* last_train_acc);

  void set_freezing(long site_limit, TrainTarget target);
  void enable_dropout();

  nn::Model* model_;
  const nn::Dataset* train_;
  const nn::Dataset* val_;
  SchedulerConfig cfg_;
  TrainTarget current_target_ = TrainTarget::Both;
};

}  // namespace sp::smartpaf
