#include "smartpaf/batch_runner.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <sstream>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/timer.h"

namespace sp::smartpaf {

BatchRunner::BatchRunner(FheRuntime& rt, BatchConfig cfg)
    : BatchRunner(rt, std::move(cfg), CostModel::heuristic()) {}

BatchRunner::BatchRunner(FheRuntime& rt, BatchConfig cfg, const CostModel& cost)
    : rt_(&rt), cfg_(std::move(cfg)) {
  const auto slots = static_cast<int>(rt_->ctx().slot_count());
  sp::check(cfg_.input_size >= 1, "BatchRunner: input_size must be >= 1");
  // Without this, slots / input_size would floor to a capacity of zero and
  // every submit would fail with an opaque "0 requests fit" error.
  sp::check_fmt(cfg_.input_size <= slots, "BatchRunner: input_size ", cfg_.input_size,
                " exceeds the ciphertext's ", slots,
                " slots; no request fits (choose a larger ring or a smaller input)");
  sp::check(!cfg_.paf.stages().empty(), "BatchRunner: config needs a PAF");
  sp::check(cfg_.input_scale > 0, "BatchRunner: input_scale must be positive");
  sp::check(cfg_.window.size() <= static_cast<std::size_t>(slots),
            "BatchRunner: window wider than the slot count");
  capacity_ = slots / cfg_.input_size;
  sp::check(capacity_ >= 1, "BatchRunner: internal error, capacity must be >= 1");

  const int depth_needed = (cfg_.window.empty() ? 0 : 1) + cfg_.paf.mult_depth() + 2;
  sp::check_fmt(rt_->ctx().q_count() - 1 >= depth_needed,
                "BatchRunner: pipeline needs ", depth_needed, " levels but the chain has ",
                rt_->ctx().q_count() - 1);

  // The config is sugar over the pipeline layer: lower, plan once, and pull
  // the whole plan's rotation keys from the runtime's deduplicated store so
  // requests never pay keygen.
  FhePipeline::Builder builder = FhePipeline::builder();
  if (!cfg_.window.empty()) builder.window(cfg_.window);
  builder.paf_relu(cfg_.paf, cfg_.input_scale);
  pipeline_ = builder.build();
  // Plan with the packing stride so width-changing stages (compact/matmul)
  // would replicate their plaintexts per request; only meaningful when the
  // stride tiles the slot vector exactly. A nonzero stride also pins every
  // layout to a single ciphertext (the planner rejects multi-block column
  // splits under packing — one tiled layout cannot span ciphertexts).
  PlanOptions popts;
  if (slots % cfg_.input_size == 0)
    popts.pack_stride = static_cast<std::size_t>(cfg_.input_size);
  plan_ = Planner::plan(pipeline_, rt_->ctx(), cost, popts);
  output_size_ = static_cast<int>(
      pipeline_.output_width(static_cast<std::size_t>(cfg_.input_size)));
  rt_->rotation_keys(plan_.rotation_steps());
}

BatchRunner::Prepared BatchRunner::prepare_group(std::vector<std::vector<double>> inputs,
                                                 std::vector<std::uint64_t> ids) {
  Prepared prep;
  prep.inputs = std::move(inputs);
  prep.ids = std::move(ids);

  sp::Timer timer;
  prep.flat = fhe::Encoder::pack_slots(prep.inputs,
                                       static_cast<std::size_t>(cfg_.input_size),
                                       rt_->ctx().slot_count());
  prep.pack_ms = timer.ms();

  timer.reset();
  prep.packed = rt_->encrypt(prep.flat);
  prep.encrypt_ms = timer.ms();
  return prep;
}

BatchRunner::Result BatchRunner::finish_prepared(Prepared prep, double prep_hidden_ms) {
  Result res;
  res.ids = std::move(prep.ids);
  if (eval_hook_) eval_hook_(res.ids);
  res.stats.batch_size = static_cast<int>(prep.inputs.size());
  res.stats.capacity = capacity_;
  res.stats.pack_ms = prep.pack_ms;
  res.stats.encrypt_ms = prep.encrypt_ms;
  res.stats.prep_hidden_ms = prep_hidden_ms;
  fhe::Evaluator& ev = rt_->evaluator();
  const fhe::OpCounters before = ev.counters;

  sp::Timer timer;
  const fhe::Ciphertext out = pipeline_.run(*rt_, plan_, prep.packed, &res.stats.eval);
  res.stats.eval_ms = timer.ms();

  timer.reset();
  const std::vector<double> got = rt_->decrypt(out);
  res.outputs = fhe::Encoder::unpack_slots(got, static_cast<std::size_t>(cfg_.input_size),
                                           prep.inputs.size(),
                                           static_cast<std::size_t>(output_size_));
  res.stats.decrypt_ms = timer.ms();
  res.stats.ops = ev.counters.delta_since(before);

  const std::vector<double> ref = pipeline_.reference(prep.flat, plan_.pack_stride);
  res.max_error.assign(prep.inputs.size(), 0.0);
  for (std::size_t b = 0; b < prep.inputs.size(); ++b)
    for (int j = 0; j < output_size_; ++j) {
      const std::size_t slot = b * static_cast<std::size_t>(cfg_.input_size) +
                               static_cast<std::size_t>(j);
      res.max_error[b] = std::max(
          res.max_error[b], std::abs(res.outputs[b][static_cast<std::size_t>(j)] - ref[slot]));
    }
  return res;
}

BatchRunner::Result BatchRunner::run(const std::vector<std::vector<double>>& inputs) {
  sp::check(!inputs.empty(), "BatchRunner::run: empty batch");
  sp::check_fmt(inputs.size() <= static_cast<std::size_t>(capacity_),
                "BatchRunner::run: batch of ", inputs.size(), " exceeds capacity ",
                capacity_);
  std::vector<std::uint64_t> ids(inputs.size());
  for (std::size_t b = 0; b < ids.size(); ++b) ids[b] = b;
  return finish_prepared(prepare_group(inputs, std::move(ids)), 0.0);
}

std::uint64_t BatchRunner::submit(std::vector<double> input) {
  sp::check(input.size() <= static_cast<std::size_t>(cfg_.input_size),
            "BatchRunner::submit: input exceeds input_size");
  queue_.emplace_back(next_id_, std::move(input));
  return next_id_++;
}

std::vector<BatchRunner::Result> BatchRunner::drain() {
  // Split the queue into capacity-sized groups up front (submission order).
  struct Group {
    std::vector<std::vector<double>> inputs;
    std::vector<std::uint64_t> ids;
  };
  std::vector<Group> groups;
  while (!queue_.empty()) {
    const std::size_t take =
        std::min(queue_.size(), static_cast<std::size_t>(capacity_));
    Group g;
    g.inputs.reserve(take);
    g.ids.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      g.ids.push_back(queue_.front().first);
      g.inputs.push_back(std::move(queue_.front().second));
      queue_.pop_front();
    }
    groups.push_back(std::move(g));
  }
  if (groups.empty()) return {};

  // On failure, every not-yet-started group goes back to the FRONT of the
  // queue (submission order preserved, ahead of anything submitted since),
  // so a later drain() retries it — the group(s) actually mid-flight cannot
  // be retried, so BatchDrainError names their ids (the server NACKs them)
  // and carries every Result that completed before the failure.
  auto requeue_pairs = [this](std::vector<std::uint64_t>& ids,
                              std::vector<std::vector<double>>& inputs) {
    for (std::size_t b = inputs.size(); b-- > 0;)
      queue_.emplace_front(ids[b], std::move(inputs[b]));
  };
  auto requeue_from = [&](std::size_t from) {
    for (std::size_t g = groups.size(); g > from;) {
      --g;
      requeue_pairs(groups[g].ids, groups[g].inputs);
    }
  };
  auto drain_error = [](const std::exception& e, std::vector<std::uint64_t> lost,
                        std::vector<Result> done) {
    std::ostringstream os;
    os << "BatchRunner::drain: mid-flight group lost " << lost.size()
       << " request(s): " << e.what();
    return BatchDrainError(os.str(), std::move(lost), std::move(done));
  };

  std::vector<Result> results;
  results.reserve(groups.size());

  if (!overlap_) {
    // Historical fully sequential schedule: pack -> encrypt -> eval per group.
    for (std::size_t i = 0; i < groups.size(); ++i) {
      std::vector<std::uint64_t> ids = groups[i].ids;  // survives the moves below
      try {
        results.push_back(finish_prepared(
            prepare_group(std::move(groups[i].inputs), std::move(groups[i].ids)), 0.0));
      } catch (const std::exception& e) {
        requeue_from(i + 1);
        throw drain_error(e, std::move(ids), std::move(results));
      }
    }
    return results;
  }

  // Double-buffered schedule: while group k evaluates (saturating the thread
  // pool), a helper thread packs + encrypts group k+1. Encryption order is
  // unchanged (group k+1 is still encrypted after group k), so the
  // encryptor's RNG stream — and therefore every result — is bit-identical
  // to the sequential schedule; the helper only touches the encoder and
  // encryptor, never the evaluator or its counters.
  Prepared cur;
  {
    std::vector<std::uint64_t> ids0 = groups[0].ids;  // survives the moves below
    try {
      cur = prepare_group(std::move(groups[0].inputs), std::move(groups[0].ids));
    } catch (const std::exception& e) {
      requeue_from(1);
      throw drain_error(e, std::move(ids0), {});
    }
  }
  double cur_hidden = 0.0;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    Prepared next;
    std::exception_ptr prep_error;
    std::thread helper;
    const bool has_next = i + 1 < groups.size();
    std::vector<std::uint64_t> next_ids;
    if (has_next) {
      Group& g = groups[i + 1];
      next_ids = g.ids;  // the helper moves g.ids; keep them for accounting
      helper = std::thread([this, &next, &prep_error, &g] {
        try {
          next = prepare_group(std::move(g.inputs), std::move(g.ids));
        } catch (...) {
          prep_error = std::current_exception();
        }
      });
    }

    std::vector<std::uint64_t> cur_ids = cur.ids;  // finish_prepared moves cur
    try {
      results.push_back(finish_prepared(std::move(cur), cur_hidden));
    } catch (const std::exception& e) {
      if (helper.joinable()) helper.join();
      std::vector<std::uint64_t> lost = std::move(cur_ids);
      if (has_next) {
        if (prep_error) {
          // The helper's prepare failed too: the next group's inputs are
          // consumed, so its ids are lost alongside the evaluating group's.
          lost.insert(lost.end(), next_ids.begin(), next_ids.end());
        } else {
          // The already-prepared next group survives back onto the queue.
          requeue_pairs(next.ids, next.inputs);
        }
      }
      requeue_from(i + 2);
      throw drain_error(e, std::move(lost), std::move(results));
    }

    if (helper.joinable()) {
      // Any time left on the helper is a stall the overlap could not hide.
      sp::Timer stall_timer;
      helper.join();
      if (prep_error) {
        requeue_from(i + 2);
        try {
          std::rethrow_exception(prep_error);
        } catch (const std::exception& e) {
          throw drain_error(e, std::move(next_ids), std::move(results));
        }
      }
      const double stall_ms = stall_timer.ms();
      cur_hidden = std::max(0.0, next.pack_ms + next.encrypt_ms - stall_ms);
      cur = std::move(next);
    }
  }
  return results;
}

std::vector<fhe::Ciphertext> BatchRunner::extract(const fhe::Ciphertext& packed,
                                                  const std::vector<int>& requests) {
  fhe::Evaluator& ev = rt_->evaluator();
  std::vector<int> steps;
  steps.reserve(requests.size());
  for (int b : requests) {
    sp::check_fmt(b >= 0 && b < capacity_, "BatchRunner::extract: request ", b,
                  " out of range [0, ", capacity_, ")");
    steps.push_back(b * cfg_.input_size);
  }
  // Stride keys come from the runtime's shared store: generated on first
  // use, deduplicated against the window stage (and any other pipeline).
  // Keep the snapshot alive for the whole fan — the store may be extended
  // concurrently by other threads, which swaps in a new snapshot.
  const std::shared_ptr<const fhe::GaloisKeys> gk = rt_->rotation_keys(steps);

  // All-identity fans (extract of request 0 only) skip the decomposition
  // entirely — hoisting would be pure waste.
  if (std::all_of(steps.begin(), steps.end(), [](int s) { return s == 0; }))
    return std::vector<fhe::Ciphertext>(steps.size(), packed);
  return ev.rotate_hoisted(packed, steps, *gk);
}

}  // namespace sp::smartpaf
