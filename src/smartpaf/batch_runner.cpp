#include "smartpaf/batch_runner.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/timer.h"

namespace sp::smartpaf {

BatchRunner::BatchRunner(FheRuntime& rt, BatchConfig cfg)
    : rt_(&rt), cfg_(std::move(cfg)) {
  const auto slots = static_cast<int>(rt_->ctx().slot_count());
  sp::check(cfg_.input_size >= 1, "BatchRunner: input_size must be >= 1");
  sp::check(cfg_.input_size <= slots, "BatchRunner: input_size exceeds the slot count");
  sp::check(!cfg_.paf.stages().empty(), "BatchRunner: config needs a PAF");
  sp::check(cfg_.input_scale > 0, "BatchRunner: input_scale must be positive");
  sp::check(cfg_.window.size() <= static_cast<std::size_t>(slots),
            "BatchRunner: window wider than the slot count");
  capacity_ = slots / cfg_.input_size;

  const int depth_needed = (cfg_.window.empty() ? 0 : 1) + cfg_.paf.mult_depth() + 2;
  sp::check_fmt(rt_->ctx().q_count() - 1 >= depth_needed,
                "BatchRunner: pipeline needs ", depth_needed, " levels but the chain has ",
                rt_->ctx().q_count() - 1);

  for (std::size_t t = 1; t < cfg_.window.size(); ++t)
    window_steps_.push_back(static_cast<int>(t));
  if (!window_steps_.empty()) window_keys_ = rt_->galois_keys(window_steps_);
}

fhe::Ciphertext BatchRunner::eval_packed(const fhe::Ciphertext& packed,
                                         fhe::EvalStats* stats) {
  fhe::Evaluator& ev = rt_->evaluator();
  fhe::Ciphertext cur = packed;

  if (!cfg_.window.empty()) {
    // Window stage: acc = sum_t w[t] * rot(x, t). The fan shares one
    // hoisted decomposition; tap 0 needs no rotation at all. One rescale
    // returns the sum to ~Delta (all taps were scaled identically).
    std::vector<fhe::Ciphertext> rotated;
    if (!window_steps_.empty()) rotated = ev.rotate_hoisted(cur, window_steps_, window_keys_);

    const double delta = rt_->ctx().scale();
    fhe::Ciphertext acc = cur;
    ev.multiply_plain_inplace(
        acc, rt_->encoder().encode_scalar(cfg_.window[0], delta, acc.q_count()));
    for (std::size_t t = 1; t < cfg_.window.size(); ++t) {
      fhe::Ciphertext& term = rotated[t - 1];
      ev.multiply_plain_inplace(
          term, rt_->encoder().encode_scalar(cfg_.window[t], delta, term.q_count()));
      ev.add_inplace(acc, term);
    }
    ev.rescale_inplace(acc);
    cur = acc;
  }

  return rt_->paf_evaluator().relu(ev, cur, cfg_.paf, cfg_.input_scale, stats);
}

std::vector<double> BatchRunner::reference(const std::vector<double>& flat) const {
  const std::size_t slots = flat.size();
  std::vector<double> y = flat;
  if (!cfg_.window.empty()) {
    for (std::size_t j = 0; j < slots; ++j) {
      double acc = 0.0;
      for (std::size_t t = 0; t < cfg_.window.size(); ++t)
        acc += cfg_.window[t] * flat[(j + t) % slots];
      y[j] = acc;
    }
  }
  for (double& v : y)
    v = approx::paf_relu(cfg_.paf, v / cfg_.input_scale) * cfg_.input_scale;
  return y;
}

BatchRunner::Result BatchRunner::run_packed(const std::vector<std::vector<double>>& inputs,
                                            std::vector<std::uint64_t> ids) {
  sp::check(!inputs.empty(), "BatchRunner::run: empty batch");
  sp::check_fmt(inputs.size() <= static_cast<std::size_t>(capacity_),
                "BatchRunner::run: batch of ", inputs.size(), " exceeds capacity ",
                capacity_);

  Result res;
  res.ids = std::move(ids);
  res.stats.batch_size = static_cast<int>(inputs.size());
  res.stats.capacity = capacity_;
  fhe::Evaluator& ev = rt_->evaluator();
  const fhe::OpCounters before = ev.counters;

  sp::Timer timer;
  const std::vector<double> flat = fhe::Encoder::pack_slots(
      inputs, static_cast<std::size_t>(cfg_.input_size), rt_->ctx().slot_count());
  res.stats.pack_ms = timer.ms();

  timer.reset();
  const fhe::Ciphertext packed = rt_->encrypt(flat);
  res.stats.encrypt_ms = timer.ms();

  timer.reset();
  const fhe::Ciphertext out = eval_packed(packed, &res.stats.eval);
  res.stats.eval_ms = timer.ms();

  timer.reset();
  const std::vector<double> got = rt_->decrypt(out);
  res.outputs = fhe::Encoder::unpack_slots(got, static_cast<std::size_t>(cfg_.input_size),
                                           inputs.size());
  res.stats.decrypt_ms = timer.ms();
  res.stats.ops = ev.counters.delta_since(before);

  const std::vector<double> ref = reference(flat);
  res.max_error.assign(inputs.size(), 0.0);
  for (std::size_t b = 0; b < inputs.size(); ++b)
    for (int j = 0; j < cfg_.input_size; ++j) {
      const std::size_t slot = b * static_cast<std::size_t>(cfg_.input_size) +
                               static_cast<std::size_t>(j);
      res.max_error[b] = std::max(
          res.max_error[b], std::abs(res.outputs[b][static_cast<std::size_t>(j)] - ref[slot]));
    }
  return res;
}

BatchRunner::Result BatchRunner::run(const std::vector<std::vector<double>>& inputs) {
  std::vector<std::uint64_t> ids(inputs.size());
  for (std::size_t b = 0; b < ids.size(); ++b) ids[b] = b;
  return run_packed(inputs, std::move(ids));
}

std::uint64_t BatchRunner::submit(std::vector<double> input) {
  sp::check(input.size() <= static_cast<std::size_t>(cfg_.input_size),
            "BatchRunner::submit: input exceeds input_size");
  queue_.emplace_back(next_id_, std::move(input));
  return next_id_++;
}

std::vector<BatchRunner::Result> BatchRunner::drain() {
  std::vector<Result> results;
  while (!queue_.empty()) {
    const std::size_t take =
        std::min(queue_.size(), static_cast<std::size_t>(capacity_));
    std::vector<std::vector<double>> inputs;
    std::vector<std::uint64_t> ids;
    inputs.reserve(take);
    ids.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      ids.push_back(queue_.front().first);
      inputs.push_back(std::move(queue_.front().second));
      queue_.pop_front();
    }
    results.push_back(run_packed(inputs, std::move(ids)));
  }
  return results;
}

std::vector<fhe::Ciphertext> BatchRunner::extract(const fhe::Ciphertext& packed,
                                                  const std::vector<int>& requests) {
  fhe::Evaluator& ev = rt_->evaluator();
  std::vector<int> steps;
  steps.reserve(requests.size());
  std::vector<int> missing_steps;
  for (int b : requests) {
    sp::check_fmt(b >= 0 && b < capacity_, "BatchRunner::extract: request ", b,
                  " out of range [0, ", capacity_, ")");
    const int step = b * cfg_.input_size;
    steps.push_back(step);
    // Step 0 reuses the source; keys for other strides are generated once
    // and cached for the runner's lifetime.
    if (step != 0 && extract_keys_.keys.count(ev.galois_element(step)) == 0)
      missing_steps.push_back(step);
  }
  if (!missing_steps.empty()) {
    fhe::GaloisKeys fresh = rt_->galois_keys(missing_steps);
    for (auto& kv : fresh.keys) extract_keys_.keys.emplace(kv.first, std::move(kv.second));
  }

  // All-identity fans (extract of request 0 only) skip the decomposition
  // entirely — hoisting would be pure waste.
  if (std::all_of(steps.begin(), steps.end(), [](int s) { return s == 0; }))
    return std::vector<fhe::Ciphertext>(steps.size(), packed);
  return ev.rotate_hoisted(packed, steps, extract_keys_);
}

}  // namespace sp::smartpaf
