#pragma once

#include <memory>
#include <mutex>

#include "fhe/poly_eval.h"
#include "smartpaf/replace.h"

namespace sp::smartpaf {

/// Bundles the full CKKS machinery for deployment/latency experiments:
/// context, keys, encoder, encryptor/decryptor, evaluator and the PAF
/// polynomial evaluator. Construction is expensive (keygen at large N);
/// reuse one runtime across measurements.
class FheRuntime {
 public:
  /// @brief Builds the whole CKKS stack: context, keygen (secret/public/
  /// relin keys), encoder, encryptor/decryptor, evaluator, PAF evaluator.
  /// @param params  CKKS parameter set (ring size, prime chain, scale)
  /// @param seed    keygen/encryption randomness (deterministic runs)
  explicit FheRuntime(const fhe::CkksParams& params, std::uint64_t seed = 2024);

  /// @brief Server-side runtime reconstructed purely from deserialized key
  /// material (the sp::io wire path): no keygen, no secret key, no
  /// decryptor. Evaluation, plan execution and public-key encryption all
  /// work; decrypt()/decryptor() throw, and rotation_keys() validates the
  /// supplied Galois keys instead of generating missing ones.
  ///
  /// Takes ownership of the context the key material was deserialized
  /// against: deserialized polynomials hold a pointer into that context, so
  /// the runtime must adopt it rather than build a second copy.
  /// @param ctx     context built from the client's deserialized params
  /// @param pk      client's public key (deserialized against *ctx)
  /// @param relin   client's relinearization key (deserialized against *ctx)
  /// @param galois  rotation keys covering the plan (may be extended later
  ///                by constructing a new runtime with a larger set)
  FheRuntime(std::unique_ptr<fhe::CkksContext> ctx, fhe::PublicKey pk,
             fhe::KSwitchKey relin, fhe::GaloisKeys galois);

  /// @brief The precomputed context shared by every component.
  const fhe::CkksContext& ctx() const { return *ctx_; }
  /// @brief Canonical-embedding encoder (N/2 real slots).
  fhe::Encoder& encoder() { return *encoder_; }
  /// @brief Public-key encryptor.
  fhe::Encryptor& encryptor() { return *encryptor_; }
  /// @brief Secret-key decryptor; throws when the runtime was built from
  /// public material only (has_secret_key() == false).
  fhe::Decryptor& decryptor();
  /// @brief Leveled evaluator (also owns the process-wide OpCounters tally).
  fhe::Evaluator& evaluator() { return *evaluator_; }
  /// @brief Polynomial/PAF evaluator bound to this runtime's relin key.
  fhe::PafEvaluator& paf_evaluator() { return *paf_eval_; }
  /// @brief Relinearization key generated at construction (or deserialized).
  const fhe::KSwitchKey& relin_key() const { return *relin_; }
  /// @brief Public encryption key (serializable via sp::io).
  const fhe::PublicKey& public_key() const { return pk_; }
  /// @brief False for server-side runtimes built from public material only.
  bool has_secret_key() const { return decryptor_ != nullptr; }

  /// @brief Shared, deduplicated rotation-key store: generates keys only for
  /// steps whose Galois element is not yet covered, and returns an IMMUTABLE
  /// snapshot of the store by shared_ptr — the returned key set never
  /// mutates, so it stays valid (and race-free) for as long as the caller
  /// holds the pointer, even while other connections' threads extend the
  /// store concurrently. Extension installs a fresh snapshot under the store
  /// mutex (copying the map — rare: once per previously-unseen step set),
  /// which is what makes one runtime safe to share across an async serving
  /// executor's worker threads.
  /// Every pipeline stage, BatchRunner fan and extract() stride draws from
  /// this store, so a step needed by several stages pays keygen once.
  /// A keygen-less (server-side) runtime cannot mint keys: it validates
  /// coverage of its deserialized store and throws naming the missing steps.
  /// @param steps  slot offsets (positive = left); 0 and duplicates are fine
  std::shared_ptr<const fhe::GaloisKeys> rotation_keys(const std::vector<int>& steps);

  /// @brief Merges deserialized rotation keys into the shared store — the
  /// serving adoption path, where Galois keys arrive in a later handshake
  /// frame than the session-opening key material. Existing elements are
  /// replaced. Thread-safe; snapshots already handed out are unaffected.
  void add_rotation_keys(fhe::GaloisKeys keys);

  /// @brief Distinct Galois keys held by the shared rotation_keys() store.
  std::size_t rotation_key_count() const;

  /// @brief Lanes of the process-wide pool serving this runtime's hot loops
  /// (SMARTPAF_THREADS).
  int threads() const;

  /// @brief Encrypts a real vector at top level / default scale.
  /// @param values  up to slot_count() reals; remaining slots are zero
  fhe::Ciphertext encrypt(const std::vector<double>& values);

  /// @brief Decrypts + decodes back to one value per slot; throws when the
  /// runtime holds no secret key.
  /// @param ct  2-part ciphertext (relinearize 3-part results first)
  std::vector<double> decrypt(const fhe::Ciphertext& ct);

 private:
  std::unique_ptr<fhe::CkksContext> ctx_;
  std::unique_ptr<fhe::Encoder> encoder_;
  std::unique_ptr<fhe::KeyGenerator> keygen_;  ///< null: server-side runtime
  std::unique_ptr<fhe::KSwitchKey> relin_;
  fhe::PublicKey pk_;
  std::unique_ptr<fhe::Encryptor> encryptor_;
  std::unique_ptr<fhe::Decryptor> decryptor_;  ///< null: server-side runtime
  std::unique_ptr<fhe::Evaluator> evaluator_;
  std::unique_ptr<fhe::PafEvaluator> paf_eval_;
  /// rotation_keys() store: an immutable snapshot swapped wholesale under
  /// rot_mu_ on extension, so handed-out shared_ptrs stay stable.
  mutable std::mutex rot_mu_;
  std::shared_ptr<const fhe::GaloisKeys> rot_keys_;
};

/// Result of measuring one PAF-ReLU evaluation under CKKS.
struct PafLatencyResult {
  double ms_median = 0.0;       ///< cold wall-clock per PAF-ReLU over all slots
  double ms_best = 0.0;
  double ms_warm_cached = 0.0;  ///< repeat on the same input with a shared
                                ///< CompositeBasis (one ct-ct mult total)
  fhe::EvalStats stats;         ///< op counts and levels consumed (cold path)
  double max_error = 0.0;       ///< vs the plaintext PAF-ReLU reference
};

/// @brief Times the homomorphic PAF-ReLU (paper Table 4 / Fig. 1 latency
/// column): encrypts a random batch spanning [-input_scale, input_scale],
/// evaluates relu(x) ≈ 0.5 x (1 + paf(x/s)) `repeats` times and checks the
/// result against the plaintext computation.
/// @param rt           shared runtime (construction is the expensive part)
/// @param paf          sign-approximating composite PAF
/// @param input_scale  Static-Scaling running max (> 0)
/// @param repeats      cold-path repetitions; >= 2 also measures the warm
///                     shared-PowerBasis path
/// @param seed         input randomness
/// @return median/best cold latency, warm latency, op stats and max error
PafLatencyResult measure_paf_relu(FheRuntime& rt, const approx::CompositePaf& paf,
                                  double input_scale, int repeats = 3,
                                  std::uint64_t seed = 7);

/// Deployment report row for one PAF layer of a converted model.
struct DeployRow {
  std::string path;
  int depth = 0;
  double static_scale = 0.0;
  double ms = 0.0;
};

/// @brief Measures every PAF layer of a Static-Scaling model on the runtime
/// and returns per-layer rows (MaxPool layers report the per-pairwise-max
/// cost times the tournament size).
/// @param model    converted model whose PAF layers carry static scales
/// @param rt       shared runtime
/// @param repeats  cold-path repetitions per layer
std::vector<DeployRow> deployment_report(nn::Model& model, FheRuntime& rt,
                                         int repeats = 1);

}  // namespace sp::smartpaf
