#pragma once

#include <memory>

#include "fhe/poly_eval.h"
#include "smartpaf/replace.h"

namespace sp::smartpaf {

/// Bundles the full CKKS machinery for deployment/latency experiments:
/// context, keys, encoder, encryptor/decryptor, evaluator and the PAF
/// polynomial evaluator. Construction is expensive (keygen at large N);
/// reuse one runtime across measurements.
class FheRuntime {
 public:
  /// @brief Builds the whole CKKS stack: context, keygen (secret/public/
  /// relin keys), encoder, encryptor/decryptor, evaluator, PAF evaluator.
  /// @param params  CKKS parameter set (ring size, prime chain, scale)
  /// @param seed    keygen/encryption randomness (deterministic runs)
  explicit FheRuntime(const fhe::CkksParams& params, std::uint64_t seed = 2024);

  /// @brief The precomputed context shared by every component.
  const fhe::CkksContext& ctx() const { return *ctx_; }
  /// @brief Canonical-embedding encoder (N/2 real slots).
  fhe::Encoder& encoder() { return *encoder_; }
  /// @brief Public-key encryptor.
  fhe::Encryptor& encryptor() { return *encryptor_; }
  /// @brief Secret-key decryptor.
  fhe::Decryptor& decryptor() { return *decryptor_; }
  /// @brief Leveled evaluator (also owns the process-wide OpCounters tally).
  fhe::Evaluator& evaluator() { return *evaluator_; }
  /// @brief Polynomial/PAF evaluator bound to this runtime's relin key.
  fhe::PafEvaluator& paf_evaluator() { return *paf_eval_; }
  /// @brief Relinearization key generated at construction.
  const fhe::KSwitchKey& relin_key() const { return *relin_; }

  /// @brief Shared, deduplicated rotation-key store: generates keys only for
  /// steps whose Galois element is not yet covered and returns the runtime's
  /// one key set (stable reference; later calls may extend it in place).
  /// Every pipeline stage, BatchRunner fan and extract() stride draws from
  /// this store, so a step needed by several stages pays keygen once.
  /// @param steps  slot offsets (positive = left); 0 and duplicates are fine
  const fhe::GaloisKeys& rotation_keys(const std::vector<int>& steps);

  /// @brief Distinct Galois keys held by the shared rotation_keys() store.
  std::size_t rotation_key_count() const { return rot_keys_.keys.size(); }

  /// @brief Lanes of the process-wide pool serving this runtime's hot loops
  /// (SMARTPAF_THREADS).
  int threads() const;

  /// @brief Encrypts a real vector at top level / default scale.
  /// @param values  up to slot_count() reals; remaining slots are zero
  fhe::Ciphertext encrypt(const std::vector<double>& values);

  /// @brief Decrypts + decodes back to one value per slot.
  /// @param ct  2-part ciphertext (relinearize 3-part results first)
  std::vector<double> decrypt(const fhe::Ciphertext& ct);

 private:
  std::unique_ptr<fhe::CkksContext> ctx_;
  std::unique_ptr<fhe::Encoder> encoder_;
  std::unique_ptr<fhe::KeyGenerator> keygen_;
  std::unique_ptr<fhe::KSwitchKey> relin_;
  std::unique_ptr<fhe::Encryptor> encryptor_;
  std::unique_ptr<fhe::Decryptor> decryptor_;
  std::unique_ptr<fhe::Evaluator> evaluator_;
  std::unique_ptr<fhe::PafEvaluator> paf_eval_;
  fhe::GaloisKeys rot_keys_;  ///< shared rotation_keys() store
};

/// Result of measuring one PAF-ReLU evaluation under CKKS.
struct PafLatencyResult {
  double ms_median = 0.0;       ///< cold wall-clock per PAF-ReLU over all slots
  double ms_best = 0.0;
  double ms_warm_cached = 0.0;  ///< repeat on the same input with a shared
                                ///< CompositeBasis (one ct-ct mult total)
  fhe::EvalStats stats;         ///< op counts and levels consumed (cold path)
  double max_error = 0.0;       ///< vs the plaintext PAF-ReLU reference
};

/// @brief Times the homomorphic PAF-ReLU (paper Table 4 / Fig. 1 latency
/// column): encrypts a random batch spanning [-input_scale, input_scale],
/// evaluates relu(x) ≈ 0.5 x (1 + paf(x/s)) `repeats` times and checks the
/// result against the plaintext computation.
/// @param rt           shared runtime (construction is the expensive part)
/// @param paf          sign-approximating composite PAF
/// @param input_scale  Static-Scaling running max (> 0)
/// @param repeats      cold-path repetitions; >= 2 also measures the warm
///                     shared-PowerBasis path
/// @param seed         input randomness
/// @return median/best cold latency, warm latency, op stats and max error
PafLatencyResult measure_paf_relu(FheRuntime& rt, const approx::CompositePaf& paf,
                                  double input_scale, int repeats = 3,
                                  std::uint64_t seed = 7);

/// Deployment report row for one PAF layer of a converted model.
struct DeployRow {
  std::string path;
  int depth = 0;
  double static_scale = 0.0;
  double ms = 0.0;
};

/// @brief Measures every PAF layer of a Static-Scaling model on the runtime
/// and returns per-layer rows (MaxPool layers report the per-pairwise-max
/// cost times the tournament size).
/// @param model    converted model whose PAF layers carry static scales
/// @param rt       shared runtime
/// @param repeats  cold-path repetitions per layer
std::vector<DeployRow> deployment_report(nn::Model& model, FheRuntime& rt,
                                         int repeats = 1);

}  // namespace sp::smartpaf
