#pragma once

#include <memory>

#include "fhe/poly_eval.h"
#include "smartpaf/replace.h"

namespace sp::smartpaf {

/// Bundles the full CKKS machinery for deployment/latency experiments:
/// context, keys, encoder, encryptor/decryptor, evaluator and the PAF
/// polynomial evaluator. Construction is expensive (keygen at large N);
/// reuse one runtime across measurements.
class FheRuntime {
 public:
  explicit FheRuntime(const fhe::CkksParams& params, std::uint64_t seed = 2024);

  const fhe::CkksContext& ctx() const { return *ctx_; }
  fhe::Encoder& encoder() { return *encoder_; }
  fhe::Encryptor& encryptor() { return *encryptor_; }
  fhe::Decryptor& decryptor() { return *decryptor_; }
  fhe::Evaluator& evaluator() { return *evaluator_; }
  fhe::PafEvaluator& paf_evaluator() { return *paf_eval_; }
  const fhe::KSwitchKey& relin_key() const { return *relin_; }

  /// Rotation keys for the given slot steps (keygen on demand). Use with
  /// `Evaluator::rotate` / `rotate_hoisted` for rotation-heavy layers.
  fhe::GaloisKeys galois_keys(const std::vector<int>& steps);

  /// Lanes of the process-wide pool serving this runtime's hot loops
  /// (SMARTPAF_THREADS).
  int threads() const;

  /// Encrypts a real vector at top level / default scale.
  fhe::Ciphertext encrypt(const std::vector<double>& values);
  /// Decrypts + decodes.
  std::vector<double> decrypt(const fhe::Ciphertext& ct);

 private:
  std::unique_ptr<fhe::CkksContext> ctx_;
  std::unique_ptr<fhe::Encoder> encoder_;
  std::unique_ptr<fhe::KeyGenerator> keygen_;
  std::unique_ptr<fhe::KSwitchKey> relin_;
  std::unique_ptr<fhe::Encryptor> encryptor_;
  std::unique_ptr<fhe::Decryptor> decryptor_;
  std::unique_ptr<fhe::Evaluator> evaluator_;
  std::unique_ptr<fhe::PafEvaluator> paf_eval_;
};

/// Result of measuring one PAF-ReLU evaluation under CKKS.
struct PafLatencyResult {
  double ms_median = 0.0;       ///< cold wall-clock per PAF-ReLU over all slots
  double ms_best = 0.0;
  double ms_warm_cached = 0.0;  ///< repeat on the same input with a shared PowerBasis
  fhe::EvalStats stats;         ///< op counts and levels consumed (cold path)
  double max_error = 0.0;       ///< vs the plaintext PAF-ReLU reference
};

/// Times the homomorphic PAF-ReLU (paper Table 4 / Fig. 1 latency column):
/// encrypts a random batch spanning [-input_scale, input_scale], evaluates
/// relu(x) ≈ 0.5 x (1 + paf(x/s)) `repeats` times and checks the result
/// against the plaintext computation.
PafLatencyResult measure_paf_relu(FheRuntime& rt, const approx::CompositePaf& paf,
                                  double input_scale, int repeats = 3,
                                  std::uint64_t seed = 7);

/// Deployment report row for one PAF layer of a converted model.
struct DeployRow {
  std::string path;
  int depth = 0;
  double static_scale = 0.0;
  double ms = 0.0;
};

/// Measures every PAF layer of a Static-Scaling model on the runtime and
/// returns per-layer rows (MaxPool layers report the per-pairwise-max cost
/// times the tournament size).
std::vector<DeployRow> deployment_report(nn::Model& model, FheRuntime& rt,
                                         int repeats = 1);

}  // namespace sp::smartpaf
