#pragma once

#include <vector>

#include "approx/presets.h"
#include "nn/container.h"
#include "smartpaf/paf_layers.h"

namespace sp::smartpaf {

/// Kind of non-polynomial operator at a replacement site.
enum class SiteKind { ReLU, MaxPool };

/// One non-polynomial operator in inference order, with the owning slot so
/// the replacement pass can swap the layer in place.
struct NonPolySite {
  std::size_t index = 0;
  SiteKind kind = SiteKind::ReLU;
  std::string path;
  std::unique_ptr<nn::Layer>* slot = nullptr;
};

/// Enumerates the model's remaining non-polynomial operators (ReLU/MaxPool)
/// in inference order. Pointers are invalidated by structural changes.
std::vector<NonPolySite> find_nonpoly_sites(nn::Model& model);

/// Enumerates the model's PAF layers in inference order (after replacement).
std::vector<PafLayerBase*> find_paf_layers(nn::Model& model);

/// Replaces one site with the matching PAF layer (PafActivation for ReLU,
/// PafMaxPool for MaxPool, inheriting kernel geometry). Returns the new
/// layer. Invalidate-params is handled internally.
PafLayerBase* replace_site(nn::Model& model, const NonPolySite& site,
                           const approx::CompositePaf& paf,
                           ScaleMode mode = ScaleMode::Dynamic);

/// Options for whole-model replacement.
struct ReplaceOptions {
  approx::PafForm form = approx::PafForm::F1SQ_G1SQ;
  bool replace_relu = true;
  bool replace_maxpool = true;
  ScaleMode mode = ScaleMode::Dynamic;
  /// Optional per-site coefficient overrides (from Coefficient Tuning),
  /// indexed by site order; empty entries fall back to the form's initial
  /// coefficients.
  std::vector<std::vector<double>> per_site_coeffs;
};

/// Replaces every matching non-polynomial operator at once ("direct
/// replacement", the prior-works baseline).
std::vector<PafLayerBase*> replace_all(nn::Model& model, const ReplaceOptions& opts);

/// DS -> SS conversion across the whole model (paper §4.5): freezes every
/// PAF layer's scale to its training running max.
void convert_to_static_scaling(nn::Model& model);

/// Switches every PAF layer back to Dynamic scaling (for further training).
void convert_to_dynamic_scaling(nn::Model& model);

/// Freeze-only overlay: marks parameters of all layers strictly *after* the
/// `site_index`-th PAF/non-poly site (inference order) as frozen
/// (Progressive Approximation trains only the replacement point and what
/// precedes it). Negative index is a no-op. Compose with group freezing by
/// applying the group pass first.
void freeze_after_site(nn::Model& model, long site_index);

/// Clears every parameter's frozen flag.
void unfreeze_all(nn::Model& model);

}  // namespace sp::smartpaf
