#include "smartpaf/paf_layers.h"

#include <cmath>

#include "common/check.h"

namespace sp::smartpaf {

// ------------------------------------------------------------ PafLayerBase --

PafLayerBase::PafLayerBase(approx::CompositePaf paf, std::string name, ScaleMode mode,
                           bool odd_only)
    : paf_(std::move(paf)), name_(std::move(name)), mode_(mode), odd_only_(odd_only) {
  const auto flat = paf_.flatten_coeffs();
  coeff_.name = name_ + ".paf";
  coeff_.group = nn::ParamGroup::PafCoeff;
  coeff_.value = nn::Tensor({static_cast<int>(flat.size())});
  coeff_.grad = nn::Tensor({static_cast<int>(flat.size())});
  for (std::size_t i = 0; i < flat.size(); ++i)
    coeff_.value[i] = static_cast<float>(flat[i]);
  // Flat layout parity: within each stage, position k has degree k.
  even_mask_.reserve(flat.size());
  for (const auto& stage : paf_.stages())
    for (std::size_t k = 0; k < stage.coeffs().size(); ++k)
      even_mask_.push_back(k % 2 == 0);
}

void PafLayerBase::set_coeffs(const std::vector<double>& flat) {
  sp::check(flat.size() == coeff_.value.numel(), "PafLayerBase::set_coeffs: size mismatch");
  for (std::size_t i = 0; i < flat.size(); ++i)
    coeff_.value[i] = static_cast<float>(flat[i]);
  sync_coeffs();
}

std::vector<double> PafLayerBase::coeffs() const {
  std::vector<double> flat(coeff_.value.numel());
  for (std::size_t i = 0; i < flat.size(); ++i) flat[i] = coeff_.value[i];
  return flat;
}

void PafLayerBase::set_static_scale(float s) {
  sp::check(s > 0, "PafLayerBase::set_static_scale: scale must be positive");
  mode_ = ScaleMode::Static;
  static_scale_ = s;
}

void PafLayerBase::convert_to_static() {
  mode_ = ScaleMode::Static;
  static_scale_ = std::max(running_max_, 1e-6f);
}

void PafLayerBase::collect_params(std::vector<nn::Param*>& out) { out.push_back(&coeff_); }

void PafLayerBase::sync_coeffs() {
  std::vector<double> flat(coeff_.value.numel());
  for (std::size_t i = 0; i < flat.size(); ++i) flat[i] = coeff_.value[i];
  paf_.load_coeffs(flat);
}

float PafLayerBase::resolve_scale(float batch_max, bool train) {
  if (train) running_max_ = std::max(running_max_, batch_max);
  if (mode_ == ScaleMode::Static) return std::max(static_scale_, 1e-6f);
  return std::max(batch_max, 1e-6f);
}

void PafLayerBase::mask_even_grads() {
  if (!odd_only_) return;
  for (std::size_t i = 0; i < even_mask_.size(); ++i)
    if (even_mask_[i]) coeff_.grad[i] = 0.0f;
}

// ----------------------------------------------------------- PafActivation --

PafActivation::PafActivation(approx::CompositePaf paf, std::string name, ScaleMode mode,
                             bool odd_only)
    : PafLayerBase(std::move(paf), std::move(name), mode, odd_only) {}

nn::Tensor PafActivation::forward(const nn::Tensor& x, bool train) {
  sync_coeffs();
  scale_used_ = resolve_scale(x.abs_max(), train);
  nn::Tensor y(x.shape());
  const double s = scale_used_;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    const double xi = x[i];
    y[i] = static_cast<float>(0.5 * (xi + xi * paf_(xi / s)));
  }
  if (train) x_cache_ = x;
  return y;
}

nn::Tensor PafActivation::backward(const nn::Tensor& gy) {
  const nn::Tensor& x = x_cache_;
  nn::Tensor gx(gy.shape());
  const double s = scale_used_;
  const auto n_coeff = static_cast<std::size_t>(paf_.num_coeffs());
  std::vector<double> cg(n_coeff, 0.0);
  std::vector<double> cg_local(n_coeff);
  approx::CompositePaf::Tape tape;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    const double xi = x[i];
    const double t = xi / s;
    const double p = paf_.forward(t, tape);
    std::fill(cg_local.begin(), cg_local.end(), 0.0);
    const double dp_dt = paf_.backward(tape, 1.0, cg_local);
    const double g = gy[i];
    gx[i] = static_cast<float>(g * 0.5 * (1.0 + p + t * dp_dt));
    const double cfac = g * 0.5 * xi;
    for (std::size_t k = 0; k < n_coeff; ++k) cg[k] += cfac * cg_local[k];
  }
  for (std::size_t k = 0; k < n_coeff; ++k) coeff_.grad[k] += static_cast<float>(cg[k]);
  mask_even_grads();
  return gx;
}

// ------------------------------------------------------------ PafMaxPool1d --

PafMaxPool1d::PafMaxPool1d(approx::CompositePaf paf, int window, std::string name,
                           ScaleMode mode, bool odd_only)
    : PafLayerBase(std::move(paf), std::move(name), mode, odd_only), window_(window) {
  sp::check(window_ >= 2, "PafMaxPool1d: window must be >= 2");
}

PafMaxPool1d::PafMaxPool1d(approx::CompositePaf paf, int window, int stride,
                           std::string name, ScaleMode mode, bool odd_only)
    : PafLayerBase(std::move(paf), std::move(name), mode, odd_only),
      window_(window),
      stride_(stride) {
  sp::check(window_ >= 2, "PafMaxPool1d: window must be >= 2");
  sp::check(stride_ >= 1, "PafMaxPool1d: stride must be >= 1");
}

nn::Tensor PafMaxPool1d::forward(const nn::Tensor& x, bool train) {
  sync_coeffs();
  sp::check(x.ndim() == 2, "PafMaxPool1d: expects [B, W], got " + x.shape_str());
  const int batch = x.dim(0), w = x.dim(1);
  sp::check(window_ <= w, "PafMaxPool1d: window wider than the slot count");
  sp::check(w % stride_ == 0, "PafMaxPool1d: stride must divide the width");
  const int ow = w / stride_;

  // Scale = batch max per-window spread, an upper bound on every pairwise
  // difference the tournament feeds to the PAF.
  float spread = 0.0f;
  for (int n = 0; n < batch; ++n)
    for (int j = 0; j < ow; ++j) {
      const int base = j * stride_;
      float lo = x.at(n, base), hi = lo;
      for (int t = 1; t < window_; ++t) {
        const float v = x.at(n, (base + t) % w);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      spread = std::max(spread, hi - lo);
    }
  scale_used_ = resolve_scale(spread, train);
  const double s = scale_used_;

  nn::Tensor y({batch, ow});
  for (int n = 0; n < batch; ++n)
    for (int j = 0; j < ow; ++j) {
      // The fold runs in double and rounds once on store, matching the
      // encrypted tournament's step order exactly.
      const int base = j * stride_;
      double m = x.at(n, base);
      for (int t = 1; t < window_; ++t) {
        const double v = x.at(n, (base + t) % w);
        const double d = m - v;
        m = 0.5 * ((m + v) + d * paf_(d / s));
      }
      y.at(n, j) = static_cast<float>(m);
    }
  if (train) x_cache_ = x;
  return y;
}

nn::Tensor PafMaxPool1d::backward(const nn::Tensor& gy) {
  const nn::Tensor& x = x_cache_;
  const int batch = x.dim(0), w = x.dim(1);
  const int ow = w / stride_;
  nn::Tensor gx({batch, w});
  const double s = scale_used_;
  const auto n_coeff = static_cast<std::size_t>(paf_.num_coeffs());
  std::vector<double> cg(n_coeff, 0.0);
  std::vector<double> cg_local(n_coeff);
  approx::CompositePaf::Tape tape;
  const auto count = static_cast<std::size_t>(window_);
  fold_m_.resize(count);
  fold_dprev_.resize(count);
  fold_dv_.resize(count);
  fold_dc_.resize(count * n_coeff);

  for (int n = 0; n < batch; ++n)
    for (int jo = 0; jo < ow; ++jo) {
      const int j = jo * stride_;
      fold_m_[0] = x.at(n, j);
      for (std::size_t i = 1; i < count; ++i) {
        const double a = fold_m_[i - 1];
        const double b = x.at(n, (j + static_cast<int>(i)) % w);
        const double d = a - b;
        const double t = d / s;
        const double p = paf_.forward(t, tape);
        std::fill(cg_local.begin(), cg_local.end(), 0.0);
        const double dp_dt = paf_.backward(tape, 1.0, cg_local);
        fold_m_[i] = 0.5 * ((a + b) + d * p);
        fold_dprev_[i] = 0.5 * (1.0 + p + t * dp_dt);
        fold_dv_[i] = 0.5 * (1.0 - p - t * dp_dt);
        for (std::size_t k = 0; k < n_coeff; ++k)
          fold_dc_[i * n_coeff + k] = 0.5 * d * cg_local[k];
      }
      double g = gy.at(n, jo);
      for (std::size_t i = count; i-- > 1;) {
        gx.at(n, (j + static_cast<int>(i)) % w) += static_cast<float>(g * fold_dv_[i]);
        for (std::size_t k = 0; k < n_coeff; ++k) cg[k] += g * fold_dc_[i * n_coeff + k];
        g *= fold_dprev_[i];
      }
      gx.at(n, j) += static_cast<float>(g);
    }
  for (std::size_t k = 0; k < n_coeff; ++k) coeff_.grad[k] += static_cast<float>(cg[k]);
  mask_even_grads();
  return gx;
}

// -------------------------------------------------------------- PafMaxPool --

namespace {
int pool_out(int in, int k, int stride, int pad) { return (in + 2 * pad - k) / stride + 1; }
}  // namespace

PafMaxPool::PafMaxPool(approx::CompositePaf paf, int kernel, int stride, int pad,
                       std::string name, ScaleMode mode, bool odd_only)
    : PafLayerBase(std::move(paf), std::move(name), mode, odd_only), k_(kernel),
      stride_(stride), pad_(pad) {}

void PafMaxPool::window_values(const nn::Tensor& x, int n, int c, int oy, int ox,
                               std::vector<float>& vals,
                               std::vector<std::size_t>& idx) const {
  vals.clear();
  idx.clear();
  const int h = x.dim(2), w = x.dim(3);
  for (int dy = 0; dy < k_; ++dy)
    for (int dx = 0; dx < k_; ++dx) {
      const int iy = oy * stride_ + dy - pad_;
      const int ix = ox * stride_ + dx - pad_;
      if (iy < 0 || iy >= h || ix < 0 || ix >= w) continue;
      vals.push_back(x.at(n, c, iy, ix));
      idx.push_back(((static_cast<std::size_t>(n) * x.dim(1) + c) * h + iy) * w + ix);
    }
}

nn::Tensor PafMaxPool::forward(const nn::Tensor& x, bool train) {
  sync_coeffs();
  const int batch = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  oh_ = pool_out(h, k_, stride_, pad_);
  ow_ = pool_out(w, k_, stride_, pad_);

  // Scale = batch max of per-window value spread (an upper bound on every
  // pairwise difference fed to the PAF, computable without the PAF itself).
  std::vector<float> vals;
  std::vector<std::size_t> idx;
  float spread = 0.0f;
  for (int n = 0; n < batch; ++n)
    for (int cc = 0; cc < c; ++cc)
      for (int oy = 0; oy < oh_; ++oy)
        for (int ox = 0; ox < ow_; ++ox) {
          window_values(x, n, cc, oy, ox, vals, idx);
          float lo = vals[0], hi = vals[0];
          for (float v : vals) {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
          }
          spread = std::max(spread, hi - lo);
        }
  scale_used_ = resolve_scale(spread, train);
  const double s = scale_used_;

  nn::Tensor y({batch, c, oh_, ow_});
  for (int n = 0; n < batch; ++n)
    for (int cc = 0; cc < c; ++cc)
      for (int oy = 0; oy < oh_; ++oy)
        for (int ox = 0; ox < ow_; ++ox) {
          window_values(x, n, cc, oy, ox, vals, idx);
          double m = vals[0];
          for (std::size_t i = 1; i < vals.size(); ++i) {
            const double d = m - vals[i];
            m = 0.5 * ((m + vals[i]) + d * paf_(d / s));
          }
          y.at(n, cc, oy, ox) = static_cast<float>(m);
        }
  if (train) x_cache_ = x;
  return y;
}

nn::Tensor PafMaxPool::backward(const nn::Tensor& gy) {
  const nn::Tensor& x = x_cache_;
  nn::Tensor gx(x.shape());
  const double s = scale_used_;
  const auto n_coeff = static_cast<std::size_t>(paf_.num_coeffs());
  std::vector<double> cg(n_coeff, 0.0);
  std::vector<double> cg_local(n_coeff);
  std::vector<float> vals;
  std::vector<std::size_t> idx;
  approx::CompositePaf::Tape tape;

  for (int n = 0; n < gy.dim(0); ++n)
    for (int cc = 0; cc < gy.dim(1); ++cc)
      for (int oy = 0; oy < oh_; ++oy)
        for (int ox = 0; ox < ow_; ++ox) {
          window_values(x, n, cc, oy, ox, vals, idx);
          const std::size_t count = vals.size();
          // Re-run the fold, keeping per-step partials in flat scratch
          // buffers (window size <= 16; no per-pixel allocation).
          fold_m_.resize(count);
          fold_dprev_.resize(count);
          fold_dv_.resize(count);
          fold_dc_.resize(count * n_coeff);
          fold_m_[0] = vals[0];
          for (std::size_t i = 1; i < count; ++i) {
            const double a = fold_m_[i - 1], b = vals[i];
            const double d = a - b;
            const double t = d / s;
            const double p = paf_.forward(t, tape);
            std::fill(cg_local.begin(), cg_local.end(), 0.0);
            const double dp_dt = paf_.backward(tape, 1.0, cg_local);
            fold_m_[i] = 0.5 * ((a + b) + d * p);
            fold_dprev_[i] = 0.5 * (1.0 + p + t * dp_dt);
            fold_dv_[i] = 0.5 * (1.0 - p - t * dp_dt);
            for (std::size_t k = 0; k < n_coeff; ++k)
              fold_dc_[i * n_coeff + k] = 0.5 * d * cg_local[k];
          }
          // Backward through the fold.
          double g = gy.at(n, cc, oy, ox);
          for (std::size_t i = count; i-- > 1;) {
            gx[idx[i]] += static_cast<float>(g * fold_dv_[i]);
            for (std::size_t k = 0; k < n_coeff; ++k) cg[k] += g * fold_dc_[i * n_coeff + k];
            g *= fold_dprev_[i];
          }
          gx[idx[0]] += static_cast<float>(g);
        }
  for (std::size_t k = 0; k < n_coeff; ++k) coeff_.grad[k] += static_cast<float>(cg[k]);
  mask_even_grads();
  return gx;
}

}  // namespace sp::smartpaf
