#include "smartpaf/pipeline.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "common/check.h"
#include "common/hash.h"
#include "fhe/diag_matvec.h"
#include "nn/layers.h"
#include "smartpaf/fhe_deploy.h"
#include "smartpaf/pipeline_planner.h"

namespace sp::smartpaf {

bool linear_scale_is_identity(const LinearStage& lin) {
  return std::all_of(lin.scale.begin(), lin.scale.end(),
                     [](double s) { return s == 1.0; });
}

bool linear_has_bias(const LinearStage& lin) {
  return std::any_of(lin.bias.begin(), lin.bias.end(),
                     [](double b) { return b != 0.0; });
}

namespace {

/// Rotation fan of `steps` over one source: hoisted (one shared digit
/// decomposition) or naive per-step rotations, per the plan.
std::vector<fhe::Ciphertext> rotate_fan(fhe::Evaluator& ev, const fhe::Ciphertext& ct,
                                        const std::vector<int>& steps,
                                        const fhe::GaloisKeys& gk, bool hoist) {
  if (hoist) return ev.rotate_hoisted(ct, steps, gk);
  std::vector<fhe::Ciphertext> rotated;
  rotated.reserve(steps.size());
  for (int s : steps) rotated.push_back(ev.rotate(ct, s, gk));
  return rotated;
}

std::string paf_label(const char* kind, const PafStage& paf) {
  std::ostringstream os;
  os << kind << "[";
  if (paf.kind == SiteKind::MaxPool) os << "k=" << paf.pool_window << " ";
  if (!paf.paf.name().empty()) os << paf.paf.name() << " ";
  os << "d" << paf.paf.mult_depth() << "]";
  return os.str();
}

/// Content key for a compaction mask in the encoder's plaintext cache.
std::uint64_t compact_mask_key(std::size_t width, int stride, std::size_t tile,
                               std::size_t i) {
  std::uint64_t h = sp::fnv_mix(sp::kFnvOffset, 0x636f6d7061637421ULL);  // "compact!"
  for (std::uint64_t v : {static_cast<std::uint64_t>(width),
                          static_cast<std::uint64_t>(stride),
                          static_cast<std::uint64_t>(tile),
                          static_cast<std::uint64_t>(i)})
    h = sp::fnv_mix(h, v);
  return h;
}

/// Content key for a per-slot linear coefficient vector: the stage executes
/// every run with identical values, so repeat runs hit the encoder's cache
/// instead of paying the encode FFT again.
std::uint64_t linear_vec_key(const std::vector<double>& values, std::uint64_t tag) {
  return sp::fnv_doubles(sp::fnv_mix(sp::kFnvOffset, 0x6c696e65617221ULL ^ tag),
                         values);  // "linear!"
}

/// Restores the shared PafEvaluator's knobs after a per-stage override.
struct PafEvalGuard {
  fhe::PafEvaluator& pe;
  fhe::PafEvaluator::Strategy strategy;
  bool lazy;
  explicit PafEvalGuard(fhe::PafEvaluator& p)
      : pe(p), strategy(p.strategy()), lazy(p.lazy_relin()) {}
  ~PafEvalGuard() {
    pe.set_strategy(strategy);
    pe.set_lazy_relin(lazy);
  }
};

}  // namespace

// ------------------------------------------------------------------ Builder --

FhePipeline::Builder& FhePipeline::Builder::linear(std::vector<double> scale,
                                                   std::vector<double> bias) {
  sp::check(!scale.empty(), "FhePipeline: linear stage needs a scale");
  std::ostringstream os;
  if (scale.size() == 1)
    os << "linear(x" << scale[0] << (bias.empty() ? "" : " +b") << ")";
  else
    os << "linear[" << scale.size() << " slots]";
  stages_.push_back(Stage{LinearStage{std::move(scale), std::move(bias)}, os.str()});
  return *this;
}

FhePipeline::Builder& FhePipeline::Builder::linear(double scale, double bias) {
  return linear(std::vector<double>{scale},
                bias == 0.0 ? std::vector<double>{} : std::vector<double>{bias});
}

FhePipeline::Builder& FhePipeline::Builder::window(std::vector<double> taps,
                                                   double bias) {
  sp::check(!taps.empty(), "FhePipeline: window stage needs taps");
  std::ostringstream os;
  os << "window[" << taps.size() << " taps]";
  stages_.push_back(Stage{WindowStage{std::move(taps), bias}, os.str()});
  return *this;
}

FhePipeline::Builder& FhePipeline::Builder::matmul(int rows, int cols,
                                                   std::vector<double> weights,
                                                   std::vector<double> bias) {
  sp::check(rows >= 1 && cols >= 1, "FhePipeline: matmul needs positive dimensions");
  sp::check(weights.size() == static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
            "FhePipeline: matmul weights must be row-major rows x cols");
  sp::check(bias.empty() || bias.size() == static_cast<std::size_t>(rows),
            "FhePipeline: matmul bias must be empty or one value per row");
  std::ostringstream os;
  os << "matmul[" << rows << "x" << cols << (bias.empty() ? "]" : " +b]");
  stages_.push_back(
      Stage{MatMulStage{rows, cols, std::move(weights), std::move(bias)}, os.str()});
  return *this;
}

FhePipeline::Builder& FhePipeline::Builder::compact(int stride) {
  sp::check(stride >= 2, "FhePipeline: compact stride must be >= 2");
  std::ostringstream os;
  os << "compact[/" << stride << "]";
  stages_.push_back(Stage{CompactStage{stride}, os.str()});
  return *this;
}

FhePipeline::Builder& FhePipeline::Builder::input_width(std::size_t width) {
  input_width_ = width;
  return *this;
}

FhePipeline::Builder& FhePipeline::Builder::paf_relu(approx::CompositePaf paf,
                                                     double input_scale) {
  sp::check(!paf.stages().empty(), "FhePipeline: PAF-ReLU stage needs a PAF");
  sp::check(input_scale > 0, "FhePipeline: input_scale must be positive");
  PafStage st;
  st.kind = SiteKind::ReLU;
  st.paf = std::move(paf);
  st.input_scale = input_scale;
  std::string label = paf_label("paf-relu", st);
  stages_.push_back(Stage{std::move(st), std::move(label)});
  return *this;
}

FhePipeline::Builder& FhePipeline::Builder::paf_maxpool(approx::CompositePaf paf,
                                                        double input_scale,
                                                        int pool_window) {
  sp::check(!paf.stages().empty(), "FhePipeline: PAF-MaxPool stage needs a PAF");
  sp::check(input_scale > 0, "FhePipeline: input_scale must be positive");
  sp::check(pool_window >= 2, "FhePipeline: pool_window must be >= 2");
  PafStage st;
  st.kind = SiteKind::MaxPool;
  st.paf = std::move(paf);
  st.input_scale = input_scale;
  st.pool_window = pool_window;
  std::string label = paf_label("paf-max", st);
  stages_.push_back(Stage{std::move(st), std::move(label)});
  return *this;
}

FhePipeline::Builder& FhePipeline::Builder::rescale_policy(RescalePolicy policy) {
  policy_ = policy;
  return *this;
}

FhePipeline FhePipeline::Builder::build() {
  sp::check(!stages_.empty(), "FhePipeline: empty pipeline");
  FhePipeline pipe;
  pipe.stages_ = std::move(stages_);
  pipe.policy_ = policy_;
  pipe.input_width_ = input_width_;
  return pipe;
}

// ----------------------------------------------------------------- Lowering --

namespace {

void lower_layer(const nn::Layer& layer, FhePipeline::Builder& b) {
  if (const auto* seq = dynamic_cast<const nn::Sequential*>(&layer)) {
    for (std::size_t i = 0; i < seq->size(); ++i) lower_layer(seq->at(i), b);
    return;
  }
  if (const auto* win = dynamic_cast<const nn::Window1d*>(&layer)) {
    const std::vector<double> taps = win->tap_values();
    const double bias = win->bias_value();
    if (taps.size() == 1) {
      // A 1-tap window is a scalar affine stage — the foldable case.
      b.linear(std::vector<double>{taps[0]},
               bias == 0.0 ? std::vector<double>{} : std::vector<double>{bias});
    } else {
      b.window(taps, bias);
    }
    return;
  }
  if (const auto* lin = dynamic_cast<const nn::Linear*>(&layer)) {
    b.matmul(lin->out_features(), lin->in_features(), lin->weight_values(),
             lin->bias_values());
    return;
  }
  if (const auto* paf = dynamic_cast<const PafLayerBase*>(&layer)) {
    sp::check_fmt(paf->mode() == ScaleMode::Static, "FhePipeline::lower: PAF layer '",
                  layer.name(),
                  "' uses Dynamic scaling; run convert_to_static_scaling first");
    if (const auto* act = dynamic_cast<const PafActivation*>(&layer)) {
      b.paf_relu(act->paf(), static_cast<double>(act->static_scale()));
      return;
    }
    if (const auto* pool = dynamic_cast<const PafMaxPool1d*>(&layer)) {
      // The stride-1 tournament is SIMD-free at every slot; a stride > 1
      // pool keeps the same tournament stage and re-packs the sampled slots
      // densely afterwards.
      b.paf_maxpool(pool->paf(), static_cast<double>(pool->static_scale()),
                    pool->window());
      if (pool->stride() > 1) b.compact(pool->stride());
      return;
    }
    throw sp::Error("FhePipeline::lower: PAF layer '" + layer.name() +
                    "' is not slot-aligned (2-D PafMaxPool; use MaxPool1d sites)");
  }
  if (dynamic_cast<const nn::Flatten*>(&layer) != nullptr ||
      dynamic_cast<const nn::Dropout*>(&layer) != nullptr) {
    // Slot identities at inference time.
    return;
  }
  if (layer.is_nonpoly())
    throw sp::Error("FhePipeline::lower: non-polynomial site '" + layer.name() +
                    "' was not replaced; run smartpaf::replace_all first");
  throw sp::Error("FhePipeline::lower: unsupported layer '" + layer.name() +
                  "' (supported: Sequential, Window1d, Linear, PafActivation, "
                  "PafMaxPool1d, Flatten, Dropout)");
}

}  // namespace

FhePipeline FhePipeline::lower(const nn::Layer& root, std::size_t input_width) {
  Builder b = builder();
  b.input_width(input_width);
  lower_layer(root, b);
  return b.build();
}

FhePipeline FhePipeline::lower(const nn::Model& model, std::size_t input_width) {
  return lower(model.root(), input_width);
}

// ------------------------------------------------------------------ Queries --

int stage_levels(const Stage& stage) {
  if (const auto* lin = std::get_if<LinearStage>(&stage.op))
    return linear_scale_is_identity(*lin) ? 0 : 1;
  if (std::get_if<WindowStage>(&stage.op) != nullptr) return 1;
  if (std::get_if<MatMulStage>(&stage.op) != nullptr) return 1;
  if (std::get_if<CompactStage>(&stage.op) != nullptr) return 1;
  const auto& paf = std::get<PafStage>(stage.op);
  const int per_act = paf.paf.mult_depth() + 2;
  return paf.kind == SiteKind::MaxPool ? (paf.pool_window - 1) * per_act : per_act;
}

std::vector<int> stage_rotation_steps(const Stage& stage) {
  std::vector<int> steps;
  if (const auto* win = std::get_if<WindowStage>(&stage.op)) {
    for (std::size_t t = 1; t < win->taps.size(); ++t)
      steps.push_back(static_cast<int>(t));
  } else if (const auto* paf = std::get_if<PafStage>(&stage.op)) {
    if (paf->kind == SiteKind::MaxPool)
      for (int t = 1; t < paf->pool_window; ++t) steps.push_back(t);
  }
  return steps;
}

int FhePipeline::mult_depth() const {
  int total = 0;
  for (const Stage& s : stages_) total += stage_levels(s);
  return total;
}

std::vector<std::pair<std::size_t, std::size_t>> FhePipeline::stage_widths(
    std::size_t fallback) const {
  std::vector<std::pair<std::size_t, std::size_t>> widths;
  widths.reserve(stages_.size());
  std::size_t w = input_width_ != 0 ? input_width_ : fallback;
  for (const Stage& st : stages_) {
    const std::size_t w_in = w;
    if (const auto* mm = std::get_if<MatMulStage>(&st.op)) {
      w = static_cast<std::size_t>(mm->rows);
    } else if (const auto* cp = std::get_if<CompactStage>(&st.op)) {
      // Truncating division mirrors a pool that drops a ragged tail; the
      // planner rejects non-dividing widths before anything executes.
      w = w / static_cast<std::size_t>(cp->stride);
    }
    widths.emplace_back(w_in, w);
  }
  return widths;
}

std::size_t FhePipeline::output_width(std::size_t fallback) const {
  const auto widths = stage_widths(fallback);
  return widths.empty() ? fallback : widths.back().second;
}

std::vector<double> FhePipeline::reference(const std::vector<double>& slots,
                                           std::size_t pack_stride) const {
  std::vector<double> v = slots;
  const std::size_t w = v.size();
  sp::check(w > 0, "FhePipeline::reference: empty slot vector");
  const std::size_t tile = pack_stride != 0 ? pack_stride : w;
  sp::check(tile <= w && w % tile == 0,
            "FhePipeline::reference: pack stride must divide the slot vector");
  // Logical data width tracked through MatMul/Compact stages (the cyclic
  // Linear/Window/Paf stages act on the whole slot vector regardless).
  std::size_t width = input_width_ != 0 ? std::min(input_width_, tile) : tile;
  for (const Stage& st : stages_) {
    if (const auto* mm = std::get_if<MatMulStage>(&st.op)) {
      sp::check(static_cast<std::size_t>(mm->cols) <= tile,
                "FhePipeline::reference: matmul wider than the slot layout");
      // Per-tile product, mirroring run()'s replicated diagonals.
      std::vector<double> y(w, 0.0);
      for (std::size_t base = 0; base < w; base += tile)
        for (int i = 0; i < mm->rows; ++i) {
          double acc = mm->bias.empty() ? 0.0 : mm->bias[static_cast<std::size_t>(i)];
          for (int c = 0; c < mm->cols; ++c)
            acc += mm->weights[static_cast<std::size_t>(i) * mm->cols + c] *
                   v[base + static_cast<std::size_t>(c)];
          y[base + static_cast<std::size_t>(i)] = acc;
        }
      v = std::move(y);
      width = static_cast<std::size_t>(mm->rows);
      continue;
    }
    if (const auto* cp = std::get_if<CompactStage>(&st.op)) {
      const auto stride = static_cast<std::size_t>(cp->stride);
      sp::check(stride <= width && width % stride == 0,
                "FhePipeline::reference: compact stride must divide the width");
      const std::size_t count = width / stride;
      std::vector<double> y(w, 0.0);
      for (std::size_t base = 0; base < w; base += tile)
        for (std::size_t i = 0; i < count; ++i) y[base + i] = v[base + i * stride];
      v = std::move(y);
      width = count;
      continue;
    }
    if (const auto* lin = std::get_if<LinearStage>(&st.op)) {
      for (std::size_t j = 0; j < w; ++j) {
        const double s = lin->scale[lin->scale.size() == 1 ? 0 : j];
        const double bias =
            lin->bias.empty() ? 0.0 : lin->bias[lin->bias.size() == 1 ? 0 : j];
        v[j] = s * v[j] + bias;
      }
    } else if (const auto* win = std::get_if<WindowStage>(&st.op)) {
      std::vector<double> y(w);
      for (std::size_t j = 0; j < w; ++j) {
        double acc = win->bias;
        for (std::size_t t = 0; t < win->taps.size(); ++t)
          acc += win->taps[t] * v[(j + t) % w];
        y[j] = acc;
      }
      v = std::move(y);
    } else {
      const auto& paf = std::get<PafStage>(st.op);
      const double s = paf.input_scale;
      if (paf.kind == SiteKind::ReLU) {
        for (double& x : v) x = approx::paf_relu(paf.paf, x / s) * s;
      } else {
        std::vector<double> y(w);
        for (std::size_t j = 0; j < w; ++j) {
          double m = v[j];
          for (int t = 1; t < paf.pool_window; ++t) {
            const double b = v[(j + static_cast<std::size_t>(t)) % w];
            const double d = m - b;
            m = 0.5 * ((m + b) + d * paf.paf(d / s));
          }
          y[j] = m;
        }
        v = std::move(y);
      }
    }
  }
  return v;
}

// ---------------------------------------------------------------- Execution --

fhe::Ciphertext FhePipeline::run(FheRuntime& rt, const Plan& plan,
                                 const fhe::Ciphertext& in,
                                 fhe::EvalStats* stats) const {
  sp::check(plan.stages.size() == stages_.size(),
            "FhePipeline::run: plan does not match this pipeline");
  sp::check_fmt(in.level() >= plan.levels_used, "FhePipeline::run: input has ",
                in.level(), " levels but the plan needs ", plan.levels_used);

  fhe::Evaluator& ev = rt.evaluator();
  fhe::PafEvaluator& pe = rt.paf_evaluator();
  fhe::Encoder& enc = rt.encoder();
  const double delta = rt.ctx().scale();
  PafEvalGuard guard(pe);

  fhe::Ciphertext cur = in;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const Stage& st = stages_[i];
    const StagePlan& sp_ = plan.stages[i];
    if (sp_.folded) continue;  // absorbed into a later PAF stage's envelope

    if (const auto* lin = std::get_if<LinearStage>(&st.op)) {
      // A merge pass may have combined a run of adjacent linear stages into
      // this one; the plan then carries the combined coefficients.
      const LinearStage& eff = sp_.merged_linear ? *sp_.merged_linear : *lin;
      if (!linear_scale_is_identity(eff)) {
        // Scalar scales are cheap constant polynomials; per-slot vectors pay
        // an encode FFT, so those route through the encoder's cache.
        if (eff.scale.size() == 1) {
          ev.multiply_plain_inplace(cur,
                                    enc.encode_scalar(eff.scale[0], delta, cur.q_count()));
        } else {
          ev.multiply_plain_inplace(
              cur, *enc.encode_cached(linear_vec_key(eff.scale, 1), delta,
                                      cur.q_count(), [&] { return eff.scale; }));
        }
        ev.rescale_inplace(cur);
      }
      if (linear_has_bias(eff)) {
        if (eff.bias.size() == 1) {
          ev.add_plain_inplace(cur,
                               enc.encode_scalar(eff.bias[0], cur.scale, cur.q_count()));
        } else {
          ev.add_plain_inplace(
              cur, *enc.encode_cached(linear_vec_key(eff.bias, 2), cur.scale,
                                      cur.q_count(), [&] { return eff.bias; }));
        }
      }
      continue;
    }

    if (const auto* mm = std::get_if<MatMulStage>(&st.op)) {
      const fhe::DiagonalMatVec mv(enc, mm->weights, mm->rows, mm->cols, mm->bias,
                                   sp_.bsgs_n1 > 0 ? sp_.bsgs_n1 : 1,
                                   plan.pack_stride);
      std::vector<int> steps = sp_.rotation_steps;
      steps.insert(steps.end(), sp_.giant_steps.begin(), sp_.giant_steps.end());
      cur = mv.apply(ev, cur, *rt.rotation_keys(steps), sp_.hoist_fan, delta);
      continue;
    }

    if (const auto* cp = std::get_if<CompactStage>(&st.op)) {
      // Masked selection fan: output slot i takes x[i * stride], i.e. the
      // term rot(x, i * (stride - 1)) under the one-hot mask at slot i; all
      // terms share the Delta mask scale, so one rescale closes the stage.
      const std::size_t tile =
          plan.pack_stride != 0 ? plan.pack_stride : rt.ctx().slot_count();
      const auto stride = static_cast<std::size_t>(cp->stride);
      const std::size_t count = sp_.width_in / stride;
      std::vector<fhe::Ciphertext> rotated;
      if (!sp_.rotation_steps.empty())
        rotated = rotate_fan(ev, cur, sp_.rotation_steps,
                             *rt.rotation_keys(sp_.rotation_steps), sp_.hoist_fan);
      const auto mask = [&](std::size_t i) {
        return enc.encode_cached(
            compact_mask_key(sp_.width_in, cp->stride, tile, i), delta,
            cur.q_count(), [&] {
              std::vector<double> m(rt.ctx().slot_count(), 0.0);
              for (std::size_t base = 0; base < m.size(); base += tile)
                m[base + i] = 1.0;
              return m;
            });
      };
      fhe::Ciphertext acc = cur;
      ev.multiply_plain_inplace(acc, *mask(0));
      for (std::size_t i = 1; i < count; ++i) {
        fhe::Ciphertext& term = rotated[i - 1];
        ev.multiply_plain_inplace(term, *mask(i));
        ev.add_inplace(acc, term);
      }
      ev.rescale_inplace(acc);
      cur = std::move(acc);
      continue;
    }

    if (const auto* win = std::get_if<WindowStage>(&st.op)) {
      // acc = sum_t w[t] * rot(x, t); tap 0 needs no rotation, all taps are
      // scaled identically so one rescale returns the sum to ~Delta.
      std::vector<fhe::Ciphertext> rotated;
      if (!sp_.rotation_steps.empty())
        rotated = rotate_fan(ev, cur, sp_.rotation_steps,
                             *rt.rotation_keys(sp_.rotation_steps), sp_.hoist_fan);
      fhe::Ciphertext acc = cur;
      ev.multiply_plain_inplace(acc,
                                enc.encode_scalar(win->taps[0], delta, acc.q_count()));
      for (std::size_t t = 1; t < win->taps.size(); ++t) {
        fhe::Ciphertext& term = rotated[t - 1];
        ev.multiply_plain_inplace(
            term, enc.encode_scalar(win->taps[t], delta, term.q_count()));
        ev.add_inplace(acc, term);
      }
      ev.rescale_inplace(acc);
      if (win->bias != 0.0)
        ev.add_plain_inplace(acc,
                             enc.encode_scalar(win->bias, acc.scale, acc.q_count()));
      cur = std::move(acc);
      continue;
    }

    const auto& paf = std::get<PafStage>(st.op);
    pe.set_strategy(sp_.strategy);
    pe.set_lazy_relin(sp_.lazy_relin);
    if (paf.kind == SiteKind::ReLU) {
      cur = pe.relu(ev, cur, paf.paf, paf.input_scale, stats, nullptr, nullptr,
                    sp_.pre_factor);
    } else {
      // Cyclic pairwise tournament: the fan rotates the STAGE INPUT once
      // (hoisted when the plan says so), then folds PAF-max left to right —
      // the same order as PafMaxPool1d and reference().
      std::vector<fhe::Ciphertext> rotated =
          rotate_fan(ev, cur, sp_.rotation_steps,
                     *rt.rotation_keys(sp_.rotation_steps), sp_.hoist_fan);
      fhe::Ciphertext m = cur;
      for (fhe::Ciphertext& v : rotated)
        m = pe.max(ev, m, v, paf.paf, paf.input_scale, stats, nullptr, nullptr,
                   sp_.pre_factor);
      cur = std::move(m);
    }
  }

  sp::check_fmt(in.level() - cur.level() == plan.levels_used,
                "FhePipeline::run: executed pipeline consumed ",
                in.level() - cur.level(), " levels but the plan predicted ",
                plan.levels_used);
  return cur;
}

}  // namespace sp::smartpaf
