#include "smartpaf/pipeline.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "common/check.h"
#include "common/hash.h"
#include "fhe/conv2d_fan.h"
#include "fhe/diag_matvec.h"
#include "nn/layers.h"
#include "smartpaf/fhe_deploy.h"
#include "smartpaf/pipeline_planner.h"

namespace sp::smartpaf {

bool linear_scale_is_identity(const LinearStage& lin) {
  return std::all_of(lin.scale.begin(), lin.scale.end(),
                     [](double s) { return s == 1.0; });
}

bool linear_has_bias(const LinearStage& lin) {
  return std::any_of(lin.bias.begin(), lin.bias.end(),
                     [](double b) { return b != 0.0; });
}

namespace {

/// Rotation fan of `steps` over one source: hoisted (one shared digit
/// decomposition) or naive per-step rotations, per the plan.
std::vector<fhe::Ciphertext> rotate_fan(fhe::Evaluator& ev, const fhe::Ciphertext& ct,
                                        const std::vector<int>& steps,
                                        const fhe::GaloisKeys& gk, bool hoist) {
  if (hoist) return ev.rotate_hoisted(ct, steps, gk);
  std::vector<fhe::Ciphertext> rotated;
  rotated.reserve(steps.size());
  for (int s : steps) rotated.push_back(ev.rotate(ct, s, gk));
  return rotated;
}

std::string paf_label(const char* kind, const PafStage& paf) {
  std::ostringstream os;
  os << kind << "[";
  if (paf.kind == SiteKind::MaxPool) os << "k=" << paf.pool_window << " ";
  if (!paf.paf.name().empty()) os << paf.paf.name() << " ";
  os << "d" << paf.paf.mult_depth() << "]";
  return os.str();
}

/// Content key for a compaction mask in the encoder's plaintext cache.
std::uint64_t compact_mask_key(std::size_t width, int stride, std::size_t tile,
                               std::size_t i) {
  std::uint64_t h = sp::fnv_mix(sp::kFnvOffset, 0x636f6d7061637421ULL);  // "compact!"
  for (std::uint64_t v : {static_cast<std::uint64_t>(width),
                          static_cast<std::uint64_t>(stride),
                          static_cast<std::uint64_t>(tile),
                          static_cast<std::uint64_t>(i)})
    h = sp::fnv_mix(h, v);
  return h;
}

/// Content key for a per-slot linear coefficient vector: the stage executes
/// every run with identical values, so repeat runs hit the encoder's cache
/// instead of paying the encode FFT again.
std::uint64_t linear_vec_key(const std::vector<double>& values, std::uint64_t tag) {
  return sp::fnv_doubles(sp::fnv_mix(sp::kFnvOffset, 0x6c696e65617221ULL ^ tag),
                         values);  // "linear!"
}

/// Restores the shared PafEvaluator's knobs after a per-stage override.
struct PafEvalGuard {
  fhe::PafEvaluator& pe;
  fhe::PafEvaluator::Strategy strategy;
  bool lazy;
  explicit PafEvalGuard(fhe::PafEvaluator& p)
      : pe(p), strategy(p.strategy()), lazy(p.lazy_relin()) {}
  ~PafEvalGuard() {
    pe.set_strategy(strategy);
    pe.set_lazy_relin(lazy);
  }
};

}  // namespace

// -------------------------------------------------------------- StageLayout --

StageLayout StageLayout::dense(std::size_t width, std::size_t extent) {
  sp::check(width > 0 && extent > 0, "StageLayout: empty dense layout");
  StageLayout l;
  l.kind = Kind::Dense;
  l.width = width;
  l.block_width = std::min(width, extent);
  l.blocks = static_cast<int>((width + extent - 1) / extent);
  return l;
}

StageLayout StageLayout::grid(int channels, int height, int width_px, int ch_stride,
                              int row_stride, int elem_stride, std::size_t extent) {
  sp::check(channels >= 1 && height >= 1 && width_px >= 1,
            "StageLayout: empty grid layout");
  StageLayout l;
  l.kind = Kind::Grid;
  l.channels = channels;
  l.height = height;
  l.width_px = width_px;
  l.ch_stride = ch_stride;
  l.row_stride = row_stride;
  l.elem_stride = elem_stride;
  l.width = static_cast<std::size_t>(channels) * height * width_px;
  sp::check_fmt(ch_stride >= 1 && static_cast<std::size_t>(ch_stride) <= extent,
                "StageLayout: channel plane of ", ch_stride,
                " slots exceeds the ", extent, "-slot layout");
  l.chans_per_block = static_cast<int>(extent / static_cast<std::size_t>(ch_stride));
  l.blocks = (channels + l.chans_per_block - 1) / l.chans_per_block;
  // Slots one block of this grid actually spans (<= cpb * ch_stride <= extent
  // by the collision-free invariant the conv geometry validates).
  l.block_width = static_cast<std::size_t>(
      (std::min(l.chans_per_block, channels) - 1) * ch_stride +
      (height - 1) * row_stride + (width_px - 1) * elem_stride + 1);
  return l;
}

std::string StageLayout::describe() const {
  std::ostringstream os;
  if (kind == Kind::Dense) {
    os << "dense w" << width;
  } else {
    os << "grid " << channels << "x" << height << "x" << width_px << " s("
       << ch_stride << "," << row_stride << "," << elem_stride << ")";
  }
  if (blocks > 1) os << " x" << blocks << "ct";
  return os.str();
}

std::pair<int, std::size_t> layout_slot(const StageLayout& layout, std::size_t i) {
  sp::check(i < layout.width, "layout_slot: element index out of range");
  if (layout.kind == StageLayout::Kind::Dense) {
    // block_width is the FULL-block width; the last (ragged) block just holds
    // fewer elements.
    return {static_cast<int>(i / layout.block_width), i % layout.block_width};
  }
  const std::size_t plane = static_cast<std::size_t>(layout.height) * layout.width_px;
  const int c = static_cast<int>(i / plane);
  const std::size_t rem = i % plane;
  const int y = static_cast<int>(rem / static_cast<std::size_t>(layout.width_px));
  const int x = static_cast<int>(rem % static_cast<std::size_t>(layout.width_px));
  const int b = c / layout.chans_per_block;
  const std::size_t slot = static_cast<std::size_t>(
      (c - b * layout.chans_per_block) * layout.ch_stride + y * layout.row_stride +
      x * layout.elem_stride);
  return {b, slot};
}

std::vector<std::vector<double>> pack_layout(const std::vector<double>& values,
                                             const StageLayout& layout,
                                             std::size_t slots) {
  sp::check_fmt(values.size() <= layout.width, "pack_layout: ", values.size(),
                " values exceed the layout's ", layout.width, " elements");
  std::vector<std::vector<double>> out(
      static_cast<std::size_t>(layout.blocks), std::vector<double>(slots, 0.0));
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto [b, s] = layout_slot(layout, i);
    sp::check(s < slots, "pack_layout: layout wider than the slot vector");
    out[static_cast<std::size_t>(b)][s] = values[i];
  }
  return out;
}

std::vector<double> unpack_layout(const std::vector<std::vector<double>>& blocks,
                                  const StageLayout& layout) {
  sp::check(blocks.size() == static_cast<std::size_t>(layout.blocks),
            "unpack_layout: wrong block count");
  std::vector<double> out(layout.width, 0.0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const auto [b, s] = layout_slot(layout, i);
    const auto& block = blocks[static_cast<std::size_t>(b)];
    sp::check(s < block.size(), "unpack_layout: layout wider than the slot vector");
    out[i] = block[s];
  }
  return out;
}

std::vector<MatMulStage> split_matmul_blocks(const MatMulStage& mm,
                                             const StageLayout& in) {
  sp::check(static_cast<std::size_t>(mm.cols) == in.width,
            "split_matmul_blocks: matmul cols must match the layout width");
  std::vector<MatMulStage> out(static_cast<std::size_t>(in.blocks));
  // Per-block input extent: the highest occupied slot + 1 of that block.
  std::vector<std::size_t> extent(out.size(), 0);
  for (std::size_t j = 0; j < in.width; ++j) {
    const auto [b, s] = layout_slot(in, j);
    extent[static_cast<std::size_t>(b)] =
        std::max(extent[static_cast<std::size_t>(b)], s + 1);
  }
  for (std::size_t b = 0; b < out.size(); ++b) {
    out[b].rows = mm.rows;
    out[b].cols = static_cast<int>(std::max<std::size_t>(extent[b], 1));
    out[b].weights.assign(
        static_cast<std::size_t>(out[b].rows) * out[b].cols, 0.0);
  }
  for (std::size_t j = 0; j < static_cast<std::size_t>(mm.cols); ++j) {
    const auto [b, s] = layout_slot(in, j);
    MatMulStage& mb = out[static_cast<std::size_t>(b)];
    for (int r = 0; r < mm.rows; ++r)
      mb.weights[static_cast<std::size_t>(r) * mb.cols + s] =
          mm.weights[static_cast<std::size_t>(r) * mm.cols + j];
  }
  out[0].bias = mm.bias;  // partial sums join once; the bias rides block 0
  return out;
}

// ------------------------------------------------------------------ Builder --

FhePipeline::Builder& FhePipeline::Builder::linear(std::vector<double> scale,
                                                   std::vector<double> bias) {
  sp::check(!scale.empty(), "FhePipeline: linear stage needs a scale");
  std::ostringstream os;
  if (scale.size() == 1)
    os << "linear(x" << scale[0] << (bias.empty() ? "" : " +b") << ")";
  else
    os << "linear[" << scale.size() << " slots]";
  stages_.push_back(Stage{LinearStage{std::move(scale), std::move(bias)}, os.str()});
  return *this;
}

FhePipeline::Builder& FhePipeline::Builder::linear(double scale, double bias) {
  return linear(std::vector<double>{scale},
                bias == 0.0 ? std::vector<double>{} : std::vector<double>{bias});
}

FhePipeline::Builder& FhePipeline::Builder::window(std::vector<double> taps,
                                                   double bias) {
  sp::check(!taps.empty(), "FhePipeline: window stage needs taps");
  std::ostringstream os;
  os << "window[" << taps.size() << " taps]";
  stages_.push_back(Stage{WindowStage{std::move(taps), bias}, os.str()});
  return *this;
}

FhePipeline::Builder& FhePipeline::Builder::matmul(int rows, int cols,
                                                   std::vector<double> weights,
                                                   std::vector<double> bias) {
  sp::check(rows >= 1 && cols >= 1, "FhePipeline: matmul needs positive dimensions");
  sp::check(weights.size() == static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
            "FhePipeline: matmul weights must be row-major rows x cols");
  sp::check(bias.empty() || bias.size() == static_cast<std::size_t>(rows),
            "FhePipeline: matmul bias must be empty or one value per row");
  std::ostringstream os;
  os << "matmul[" << rows << "x" << cols << (bias.empty() ? "]" : " +b]");
  stages_.push_back(
      Stage{MatMulStage{rows, cols, std::move(weights), std::move(bias)}, os.str()});
  return *this;
}

FhePipeline::Builder& FhePipeline::Builder::compact(int stride) {
  sp::check(stride >= 2, "FhePipeline: compact stride must be >= 2");
  std::ostringstream os;
  os << "compact[/" << stride << "]";
  stages_.push_back(Stage{CompactStage{stride}, os.str()});
  return *this;
}

FhePipeline::Builder& FhePipeline::Builder::conv(int in_channels, int out_channels,
                                                 int height, int width, int kernel,
                                                 int stride,
                                                 std::vector<double> weights,
                                                 std::vector<double> bias) {
  sp::check(in_channels >= 1 && out_channels >= 1 && height >= 1 && width >= 1,
            "FhePipeline: conv needs positive dimensions");
  sp::check(kernel >= 1 && kernel <= height && kernel <= width,
            "FhePipeline: conv kernel must fit the image");
  sp::check(stride >= 1, "FhePipeline: conv stride must be >= 1");
  sp::check(weights.size() == static_cast<std::size_t>(out_channels) * in_channels *
                                  kernel * kernel,
            "FhePipeline: conv weights must be [out][in][k][k]");
  sp::check(bias.empty() || bias.size() == static_cast<std::size_t>(out_channels),
            "FhePipeline: conv bias must be empty or one value per output channel");
  std::ostringstream os;
  os << "conv[" << in_channels << "->" << out_channels << " k" << kernel;
  if (stride > 1) os << "/s" << stride;
  os << " " << height << "x" << width << (bias.empty() ? "]" : " +b]");
  stages_.push_back(Stage{ConvStage{in_channels, out_channels, height, width,
                                    kernel, stride, std::move(weights),
                                    std::move(bias)},
                          os.str()});
  return *this;
}

FhePipeline::Builder& FhePipeline::Builder::input_grid(GridShape shape) {
  sp::check(shape.channels >= 1 && shape.height >= 1 && shape.width >= 1,
            "FhePipeline: input grid needs positive dimensions");
  input_grid_ = shape;
  return *this;
}

FhePipeline::Builder& FhePipeline::Builder::input_width(std::size_t width) {
  input_width_ = width;
  return *this;
}

FhePipeline::Builder& FhePipeline::Builder::paf_relu(approx::CompositePaf paf,
                                                     double input_scale) {
  sp::check(!paf.stages().empty(), "FhePipeline: PAF-ReLU stage needs a PAF");
  sp::check(input_scale > 0, "FhePipeline: input_scale must be positive");
  PafStage st;
  st.kind = SiteKind::ReLU;
  st.paf = std::move(paf);
  st.input_scale = input_scale;
  std::string label = paf_label("paf-relu", st);
  stages_.push_back(Stage{std::move(st), std::move(label)});
  return *this;
}

FhePipeline::Builder& FhePipeline::Builder::paf_maxpool(approx::CompositePaf paf,
                                                        double input_scale,
                                                        int pool_window) {
  sp::check(!paf.stages().empty(), "FhePipeline: PAF-MaxPool stage needs a PAF");
  sp::check(input_scale > 0, "FhePipeline: input_scale must be positive");
  sp::check(pool_window >= 2, "FhePipeline: pool_window must be >= 2");
  PafStage st;
  st.kind = SiteKind::MaxPool;
  st.paf = std::move(paf);
  st.input_scale = input_scale;
  st.pool_window = pool_window;
  std::string label = paf_label("paf-max", st);
  stages_.push_back(Stage{std::move(st), std::move(label)});
  return *this;
}

FhePipeline::Builder& FhePipeline::Builder::rescale_policy(RescalePolicy policy) {
  policy_ = policy;
  return *this;
}

FhePipeline FhePipeline::Builder::build() {
  sp::check(!stages_.empty(), "FhePipeline: empty pipeline");
  sp::check(input_grid_.channels == 0 || input_width_ == 0,
            "FhePipeline: input_grid and input_width are mutually exclusive");
  FhePipeline pipe;
  pipe.stages_ = std::move(stages_);
  pipe.policy_ = policy_;
  pipe.input_width_ = input_width_;
  pipe.input_grid_ = input_grid_;
  return pipe;
}

// ----------------------------------------------------------------- Lowering --

namespace {

/// Mutable [C, H, W] image shape threaded through the grid lowering;
/// channels == 0 once a Flatten (or a dense-input lower()) leaves the
/// pipeline in vector-land.
void lower_layer(const nn::Layer& layer, FhePipeline::Builder& b, GridShape* grid) {
  if (const auto* seq = dynamic_cast<const nn::Sequential*>(&layer)) {
    for (std::size_t i = 0; i < seq->size(); ++i) lower_layer(seq->at(i), b, grid);
    return;
  }
  if (const auto* conv = dynamic_cast<const nn::Conv2d*>(&layer)) {
    sp::check(grid != nullptr && grid->channels > 0,
              "FhePipeline::lower: Conv2d '" + layer.name() +
                  "' needs a channel grid; lower(model, GridShape) declares "
                  "the input image");
    sp::check_fmt(conv->pad() == 0, "FhePipeline::lower: Conv2d '", layer.name(),
                  "' uses pad ", conv->pad(),
                  "; only valid (pad = 0) convolutions lower");
    sp::check_fmt(conv->in_channels() == grid->channels,
                  "FhePipeline::lower: Conv2d '", layer.name(), "' expects ",
                  conv->in_channels(), " input channels but the grid carries ",
                  grid->channels);
    b.conv(grid->channels, conv->out_channels(), grid->height, grid->width,
           conv->kernel(), conv->stride(), conv->weight_values(),
           conv->bias_values());
    grid->channels = conv->out_channels();
    grid->height = (grid->height - conv->kernel()) / conv->stride() + 1;
    grid->width = (grid->width - conv->kernel()) / conv->stride() + 1;
    return;
  }
  if (const auto* pool = dynamic_cast<const nn::AvgPool2d*>(&layer)) {
    sp::check(grid != nullptr && grid->channels > 0,
              "FhePipeline::lower: AvgPool2d '" + layer.name() +
                  "' needs a channel grid; lower(model, GridShape) declares "
                  "the input image");
    // Average pooling is linear: a depthwise conv whose every kernel tap is
    // 1/k^2, at stride k — one ConvStage, one level, no repacking.
    const int c = grid->channels, k = pool->kernel();
    std::vector<double> w(static_cast<std::size_t>(c) * c * k * k, 0.0);
    for (int ch = 0; ch < c; ++ch)
      for (int t = 0; t < k * k; ++t)
        w[(static_cast<std::size_t>(ch) * c + ch) * k * k + t] =
            1.0 / static_cast<double>(k * k);
    b.conv(c, c, grid->height, grid->width, k, pool->stride(), std::move(w));
    grid->height = (grid->height - k) / pool->stride() + 1;
    grid->width = (grid->width - k) / pool->stride() + 1;
    return;
  }
  if (const auto* win = dynamic_cast<const nn::Window1d*>(&layer)) {
    const std::vector<double> taps = win->tap_values();
    const double bias = win->bias_value();
    if (taps.size() == 1) {
      // A 1-tap window is a scalar affine stage — the foldable case.
      b.linear(std::vector<double>{taps[0]},
               bias == 0.0 ? std::vector<double>{} : std::vector<double>{bias});
    } else {
      b.window(taps, bias);
    }
    return;
  }
  if (const auto* lin = dynamic_cast<const nn::Linear*>(&layer)) {
    b.matmul(lin->out_features(), lin->in_features(), lin->weight_values(),
             lin->bias_values());
    return;
  }
  if (const auto* paf = dynamic_cast<const PafLayerBase*>(&layer)) {
    sp::check_fmt(paf->mode() == ScaleMode::Static, "FhePipeline::lower: PAF layer '",
                  layer.name(),
                  "' uses Dynamic scaling; run convert_to_static_scaling first");
    if (const auto* act = dynamic_cast<const PafActivation*>(&layer)) {
      b.paf_relu(act->paf(), static_cast<double>(act->static_scale()));
      return;
    }
    if (const auto* pool = dynamic_cast<const PafMaxPool1d*>(&layer)) {
      // The stride-1 tournament is SIMD-free at every slot; a stride > 1
      // pool keeps the same tournament stage and re-packs the sampled slots
      // densely afterwards.
      b.paf_maxpool(pool->paf(), static_cast<double>(pool->static_scale()),
                    pool->window());
      if (pool->stride() > 1) b.compact(pool->stride());
      return;
    }
    throw sp::Error("FhePipeline::lower: PAF layer '" + layer.name() +
                    "' is not slot-aligned (2-D PafMaxPool; use MaxPool1d sites)");
  }
  if (dynamic_cast<const nn::Flatten*>(&layer) != nullptr) {
    // Channel-major flatten is the logical ordering the next MatMulStage
    // scatters over — a slot identity; the grid just becomes a vector.
    if (grid != nullptr) grid->channels = 0;
    return;
  }
  if (dynamic_cast<const nn::Dropout*>(&layer) != nullptr) {
    // Slot identity at inference time.
    return;
  }
  if (layer.is_nonpoly())
    throw sp::Error("FhePipeline::lower: non-polynomial site '" + layer.name() +
                    "' was not replaced; run smartpaf::replace_all first");
  throw sp::Error("FhePipeline::lower: unsupported layer '" + layer.name() +
                  "' (supported: Sequential, Conv2d, AvgPool2d, Window1d, "
                  "Linear, PafActivation, PafMaxPool1d, Flatten, Dropout)");
}

}  // namespace

FhePipeline FhePipeline::lower(const nn::Layer& root, std::size_t input_width) {
  Builder b = builder();
  b.input_width(input_width);
  lower_layer(root, b, nullptr);
  return b.build();
}

FhePipeline FhePipeline::lower(const nn::Model& model, std::size_t input_width) {
  return lower(model.root(), input_width);
}

FhePipeline FhePipeline::lower(const nn::Layer& root, const GridShape& input) {
  Builder b = builder();
  b.input_grid(input);
  GridShape grid = input;
  lower_layer(root, b, &grid);
  return b.build();
}

FhePipeline FhePipeline::lower(const nn::Model& model, const GridShape& input) {
  return lower(model.root(), input);
}

// ------------------------------------------------------------------ Queries --

int stage_levels(const Stage& stage) {
  if (const auto* lin = std::get_if<LinearStage>(&stage.op))
    return linear_scale_is_identity(*lin) ? 0 : 1;
  if (std::get_if<WindowStage>(&stage.op) != nullptr) return 1;
  if (std::get_if<MatMulStage>(&stage.op) != nullptr) return 1;
  if (std::get_if<CompactStage>(&stage.op) != nullptr) return 1;
  if (std::get_if<ConvStage>(&stage.op) != nullptr) return 1;
  const auto& paf = std::get<PafStage>(stage.op);
  const int per_act = paf.paf.mult_depth() + 2;
  return paf.kind == SiteKind::MaxPool ? (paf.pool_window - 1) * per_act : per_act;
}

std::vector<int> stage_rotation_steps(const Stage& stage) {
  std::vector<int> steps;
  if (const auto* win = std::get_if<WindowStage>(&stage.op)) {
    for (std::size_t t = 1; t < win->taps.size(); ++t)
      steps.push_back(static_cast<int>(t));
  } else if (const auto* paf = std::get_if<PafStage>(&stage.op)) {
    if (paf->kind == SiteKind::MaxPool)
      for (int t = 1; t < paf->pool_window; ++t) steps.push_back(t);
  }
  return steps;
}

int FhePipeline::mult_depth() const {
  int total = 0;
  for (const Stage& s : stages_) total += stage_levels(s);
  return total;
}

std::vector<std::pair<std::size_t, std::size_t>> FhePipeline::stage_widths(
    std::size_t fallback) const {
  std::vector<std::pair<std::size_t, std::size_t>> widths;
  widths.reserve(stages_.size());
  std::size_t w = input_width_ != 0 ? input_width_ : fallback;
  if (input_grid_.channels > 0)
    w = static_cast<std::size_t>(input_grid_.channels) * input_grid_.height *
        input_grid_.width;
  for (const Stage& st : stages_) {
    const std::size_t w_in = w;
    if (const auto* mm = std::get_if<MatMulStage>(&st.op)) {
      w = static_cast<std::size_t>(mm->rows);
    } else if (const auto* cv = std::get_if<ConvStage>(&st.op)) {
      w = static_cast<std::size_t>(cv->out_channels) * cv->out_h() * cv->out_w();
    } else if (const auto* cp = std::get_if<CompactStage>(&st.op)) {
      // Truncating division mirrors a pool that drops a ragged tail; the
      // planner rejects non-dividing widths before anything executes.
      w = w / static_cast<std::size_t>(cp->stride);
    }
    widths.emplace_back(w_in, w);
  }
  return widths;
}

std::size_t FhePipeline::output_width(std::size_t fallback) const {
  const auto widths = stage_widths(fallback);
  return widths.empty() ? fallback : widths.back().second;
}

std::vector<std::pair<StageLayout, StageLayout>> FhePipeline::stage_layouts(
    std::size_t extent) const {
  sp::check(extent > 0, "FhePipeline::stage_layouts: empty slot layout");
  StageLayout cur;
  // Dense layouts with an undeclared width resolve to the full extent; the
  // first MatMul then narrows to its own input dimension (trusting the
  // caller), mirroring the historical width tracking.
  bool width_known = true;
  if (input_grid_.channels > 0) {
    // Tight initial packing: elements adjacent, rows adjacent, channel
    // planes adjacent. ch_stride stays fixed through every conv, so the
    // channel-block structure is invariant across the whole grid portion.
    cur = StageLayout::grid(input_grid_.channels, input_grid_.height,
                            input_grid_.width,
                            input_grid_.height * input_grid_.width,
                            input_grid_.width, 1, extent);
  } else {
    cur = StageLayout::dense(input_width_ != 0 ? input_width_ : extent, extent);
    width_known = input_width_ != 0;
  }

  const auto require_single_dense = [&](const Stage& st, const char* why) {
    sp::check_fmt(cur.kind == StageLayout::Kind::Dense && cur.blocks == 1,
                  "Planner: '", st.label, "' ", why,
                  " and requires a single-ciphertext dense layout, got ",
                  cur.describe());
  };

  std::vector<std::pair<StageLayout, StageLayout>> out;
  out.reserve(stages_.size());
  for (const Stage& st : stages_) {
    const StageLayout in = cur;
    if (const auto* lin = std::get_if<LinearStage>(&st.op)) {
      if (lin->scale.size() > 1 || lin->bias.size() > 1)
        require_single_dense(st, "applies per-slot coefficients");
    } else if (std::get_if<WindowStage>(&st.op) != nullptr) {
      require_single_dense(st, "is cyclic over one ciphertext");
    } else if (const auto* paf = std::get_if<PafStage>(&st.op)) {
      // PAF-ReLU is slot-wise and applies to every block of any layout; the
      // MaxPool tournament's cyclic rotation fan needs one dense ciphertext.
      if (paf->kind == SiteKind::MaxPool)
        require_single_dense(st, "is cyclic over one ciphertext");
    } else if (const auto* cp = std::get_if<CompactStage>(&st.op)) {
      require_single_dense(st, "re-packs slots cyclically");
      sp::check_fmt(static_cast<std::size_t>(cp->stride) <= cur.width &&
                        cur.width % static_cast<std::size_t>(cp->stride) == 0,
                    "Planner: '", st.label, "' stride ", cp->stride,
                    " must divide the tracked width ", cur.width);
      cur = StageLayout::dense(cur.width / static_cast<std::size_t>(cp->stride),
                               extent);
      width_known = true;
    } else if (const auto* mm = std::get_if<MatMulStage>(&st.op)) {
      if (cur.kind == StageLayout::Kind::Grid) {
        sp::check_fmt(
            static_cast<std::size_t>(mm->cols) == cur.width, "Planner: '",
            st.label, "' expects input width ", mm->cols,
            " but the channel-packed layout carries ", cur.width, " elements (",
            cur.channels, "x", cur.height, "x", cur.width_px, " grid)");
      } else if (width_known) {
        sp::check_fmt(static_cast<std::size_t>(mm->cols) == cur.width,
                      "Planner: '", st.label, "' expects input width ", mm->cols,
                      " but the tracked layout width is ", cur.width);
      } else {
        sp::check_fmt(static_cast<std::size_t>(mm->cols) <= extent, "Planner: ",
                      mm->rows, "x", mm->cols, " matmul exceeds the ", extent,
                      "-slot layout");
      }
      // The product always lands densely in slots [0, rows) of one block —
      // partial sums over the input blocks join by ciphertext addition.
      sp::check_fmt(static_cast<std::size_t>(mm->rows) <= extent, "Planner: ",
                    mm->rows, "x", mm->cols, " matmul exceeds the ", extent,
                    "-slot layout");
      cur = StageLayout::dense(static_cast<std::size_t>(mm->rows), extent);
      width_known = true;
    } else {
      const auto& cv = std::get<ConvStage>(st.op);
      sp::check_fmt(cur.kind == StageLayout::Kind::Grid &&
                        cur.channels == cv.in_channels && cur.height == cv.height &&
                        cur.width_px == cv.width,
                    "Planner: '", st.label, "' expects input grid ",
                    cv.in_channels, "x", cv.height, "x", cv.width,
                    " but the tracked layout is ", cur.describe());
      // Geometry sanity (collision-free strides, kernel fits) — the same
      // checks ConvChannelFan performs at execution time.
      fhe::ConvGeom geom;
      geom.in_channels = cv.in_channels;
      geom.out_channels = cv.out_channels;
      geom.height = cv.height;
      geom.width = cv.width;
      geom.kernel = cv.kernel;
      geom.stride = cv.stride;
      geom.ch_stride = cur.ch_stride;
      geom.row_stride = cur.row_stride;
      geom.elem_stride = cur.elem_stride;
      geom.validate();
      cur = StageLayout::grid(cv.out_channels, cv.out_h(), cv.out_w(),
                              cur.ch_stride, cur.row_stride * cv.stride,
                              cur.elem_stride * cv.stride, extent);
    }
    out.emplace_back(in, cur);
  }
  return out;
}

std::vector<double> FhePipeline::reference(const std::vector<double>& slots,
                                           std::size_t pack_stride) const {
  std::vector<double> v = slots;
  const std::size_t w = v.size();
  sp::check(w > 0, "FhePipeline::reference: empty slot vector");
  const std::size_t tile = pack_stride != 0 ? pack_stride : w;
  sp::check(tile <= w && w % tile == 0,
            "FhePipeline::reference: pack stride must divide the slot vector");
  // Layout tracking (grid strides, logical widths) shared with the Planner;
  // the mirror covers single-ciphertext layouts — multi-block pipelines are
  // checked against the nn forward instead (tests/test_conv.cpp).
  const auto layouts = stage_layouts(tile);
  for (const auto& [lin_, lout] : layouts)
    sp::check(lin_.blocks == 1 && lout.blocks == 1,
              "FhePipeline::reference: multi-ciphertext layouts have no "
              "single-vector mirror; compare run_blocks against the nn forward");
  for (std::size_t si = 0; si < stages_.size(); ++si) {
    const Stage& st = stages_[si];
    const StageLayout& layout_in = layouts[si].first;
    if (const auto* mm = std::get_if<MatMulStage>(&st.op)) {
      // Per-tile product, mirroring run()'s replicated diagonals. A grid
      // input routes through the same column scatter the executor uses.
      const MatMulStage* eff = mm;
      MatMulStage scattered;
      if (layout_in.kind == StageLayout::Kind::Grid) {
        scattered = std::move(split_matmul_blocks(*mm, layout_in)[0]);
        eff = &scattered;
      }
      sp::check(static_cast<std::size_t>(eff->cols) <= tile,
                "FhePipeline::reference: matmul wider than the slot layout");
      std::vector<double> y(w, 0.0);
      for (std::size_t base = 0; base < w; base += tile)
        for (int i = 0; i < eff->rows; ++i) {
          double acc = eff->bias.empty() ? 0.0 : eff->bias[static_cast<std::size_t>(i)];
          for (int c = 0; c < eff->cols; ++c)
            acc += eff->weights[static_cast<std::size_t>(i) * eff->cols + c] *
                   v[base + static_cast<std::size_t>(c)];
          y[base + static_cast<std::size_t>(i)] = acc;
        }
      v = std::move(y);
      continue;
    }
    if (const auto* cv = std::get_if<ConvStage>(&st.op)) {
      // Anchor-position conv on the tracked grid: output (oc, oy, ox) lands
      // at oc * ch + oy * (row * s) + ox * (elem * s); every other slot of
      // the fresh vector is exactly zero, like the masked FHE sum.
      const int ch = layout_in.ch_stride, rs = layout_in.row_stride,
                es = layout_in.elem_stride;
      const int oh = cv->out_h(), ow = cv->out_w();
      std::vector<double> y(w, 0.0);
      for (std::size_t base = 0; base < w; base += tile)
        for (int oc = 0; oc < cv->out_channels; ++oc)
          for (int oy = 0; oy < oh; ++oy)
            for (int ox = 0; ox < ow; ++ox) {
              double acc = cv->bias.empty()
                               ? 0.0
                               : cv->bias[static_cast<std::size_t>(oc)];
              for (int ic = 0; ic < cv->in_channels; ++ic)
                for (int dy = 0; dy < cv->kernel; ++dy)
                  for (int dx = 0; dx < cv->kernel; ++dx)
                    acc += cv->weights[((static_cast<std::size_t>(oc) *
                                             cv->in_channels +
                                         ic) *
                                            cv->kernel +
                                        dy) *
                                           cv->kernel +
                                       dx] *
                           v[base +
                             static_cast<std::size_t>(
                                 ic * ch + (oy * cv->stride + dy) * rs +
                                 (ox * cv->stride + dx) * es)];
              y[base + static_cast<std::size_t>(oc * ch + oy * rs * cv->stride +
                                                ox * es * cv->stride)] = acc;
            }
      v = std::move(y);
      continue;
    }
    if (const auto* cp = std::get_if<CompactStage>(&st.op)) {
      const auto stride = static_cast<std::size_t>(cp->stride);
      const std::size_t width = layout_in.width;
      sp::check(stride <= width && width % stride == 0,
                "FhePipeline::reference: compact stride must divide the width");
      const std::size_t count = width / stride;
      std::vector<double> y(w, 0.0);
      for (std::size_t base = 0; base < w; base += tile)
        for (std::size_t i = 0; i < count; ++i) y[base + i] = v[base + i * stride];
      v = std::move(y);
      continue;
    }
    if (const auto* lin = std::get_if<LinearStage>(&st.op)) {
      for (std::size_t j = 0; j < w; ++j) {
        const double s = lin->scale[lin->scale.size() == 1 ? 0 : j];
        const double bias =
            lin->bias.empty() ? 0.0 : lin->bias[lin->bias.size() == 1 ? 0 : j];
        v[j] = s * v[j] + bias;
      }
    } else if (const auto* win = std::get_if<WindowStage>(&st.op)) {
      std::vector<double> y(w);
      for (std::size_t j = 0; j < w; ++j) {
        double acc = win->bias;
        for (std::size_t t = 0; t < win->taps.size(); ++t)
          acc += win->taps[t] * v[(j + t) % w];
        y[j] = acc;
      }
      v = std::move(y);
    } else {
      const auto& paf = std::get<PafStage>(st.op);
      const double s = paf.input_scale;
      if (paf.kind == SiteKind::ReLU) {
        for (double& x : v) x = approx::paf_relu(paf.paf, x / s) * s;
      } else {
        std::vector<double> y(w);
        for (std::size_t j = 0; j < w; ++j) {
          double m = v[j];
          for (int t = 1; t < paf.pool_window; ++t) {
            const double b = v[(j + static_cast<std::size_t>(t)) % w];
            const double d = m - b;
            m = 0.5 * ((m + b) + d * paf.paf(d / s));
          }
          y[j] = m;
        }
        v = std::move(y);
      }
    }
  }
  return v;
}

// ---------------------------------------------------------------- Execution --

fhe::Ciphertext FhePipeline::run(FheRuntime& rt, const Plan& plan,
                                 const fhe::Ciphertext& in,
                                 fhe::EvalStats* stats) const {
  std::vector<fhe::Ciphertext> out = run_blocks(rt, plan, {in}, stats);
  sp::check_fmt(out.size() == 1, "FhePipeline::run: the pipeline output spans ",
                out.size(), " ciphertext blocks; use run_blocks");
  return std::move(out[0]);
}

std::vector<fhe::Ciphertext> FhePipeline::run_blocks(
    FheRuntime& rt, const Plan& plan, const std::vector<fhe::Ciphertext>& in,
    fhe::EvalStats* stats) const {
  sp::check(plan.stages.size() == stages_.size(),
            "FhePipeline::run: plan does not match this pipeline");
  sp::check(!in.empty(), "FhePipeline::run: no input ciphertexts");
  sp::check_fmt(in.size() == static_cast<std::size_t>(plan.stages.front().layout_in.blocks),
                "FhePipeline::run: the plan's input layout spans ",
                plan.stages.front().layout_in.blocks, " ciphertext blocks, got ",
                in.size());
  sp::check_fmt(in[0].level() >= plan.levels_used, "FhePipeline::run: input has ",
                in[0].level(), " levels but the plan needs ", plan.levels_used);

  fhe::Evaluator& ev = rt.evaluator();
  fhe::PafEvaluator& pe = rt.paf_evaluator();
  fhe::Encoder& enc = rt.encoder();
  const double delta = rt.ctx().scale();
  PafEvalGuard guard(pe);

  std::vector<fhe::Ciphertext> blocks = in;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const Stage& st = stages_[i];
    const StagePlan& sp_ = plan.stages[i];
    if (sp_.folded) continue;  // absorbed into a later PAF stage's envelope

    if (const auto* lin = std::get_if<LinearStage>(&st.op)) {
      // A merge pass may have combined a run of adjacent linear stages into
      // this one; the plan then carries the combined coefficients. Scalar
      // affine stages apply to every block alike (per-slot coefficient
      // vectors are single-block by layout validation).
      const LinearStage& eff = sp_.merged_linear ? *sp_.merged_linear : *lin;
      for (fhe::Ciphertext& cur : blocks) {
        if (!linear_scale_is_identity(eff)) {
          // Scalar scales are cheap constant polynomials; per-slot vectors pay
          // an encode FFT, so those route through the encoder's cache.
          if (eff.scale.size() == 1) {
            ev.multiply_plain_inplace(
                cur, enc.encode_scalar(eff.scale[0], delta, cur.q_count()));
          } else {
            ev.multiply_plain_inplace(
                cur, *enc.encode_cached(linear_vec_key(eff.scale, 1), delta,
                                        cur.q_count(), [&] { return eff.scale; }));
          }
          ev.rescale_inplace(cur);
        }
        if (linear_has_bias(eff)) {
          if (eff.bias.size() == 1) {
            ev.add_plain_inplace(
                cur, enc.encode_scalar(eff.bias[0], cur.scale, cur.q_count()));
          } else {
            ev.add_plain_inplace(
                cur, *enc.encode_cached(linear_vec_key(eff.bias, 2), cur.scale,
                                        cur.q_count(), [&] { return eff.bias; }));
          }
        }
      }
      continue;
    }

    if (const auto* mm = std::get_if<MatMulStage>(&st.op)) {
      std::vector<int> steps = sp_.rotation_steps;
      steps.insert(steps.end(), sp_.giant_steps.begin(), sp_.giant_steps.end());
      const auto gk = rt.rotation_keys(steps);
      const int n1 = sp_.bsgs_n1 > 0 ? sp_.bsgs_n1 : 1;
      if (sp_.layout_in.kind == StageLayout::Kind::Dense &&
          sp_.layout_in.blocks == 1) {
        const fhe::DiagonalMatVec mv(enc, mm->weights, mm->rows, mm->cols,
                                     mm->bias, n1, plan.pack_stride);
        blocks = {mv.apply(ev, blocks[0], *gk, sp_.hoist_fan, delta)};
      } else {
        // Column-split product: one scattered diagonal matmul per input
        // block, partial sums joined by ciphertext addition (every block
        // rescales once, so the summands share level and scale).
        const std::vector<MatMulStage> split =
            split_matmul_blocks(*mm, sp_.layout_in);
        fhe::Ciphertext acc;
        for (std::size_t b = 0; b < split.size(); ++b) {
          const MatMulStage& mb = split[b];
          const fhe::DiagonalMatVec mv(enc, mb.weights, mb.rows, mb.cols,
                                       mb.bias, n1, plan.pack_stride);
          fhe::Ciphertext y = mv.apply(ev, blocks[b], *gk, sp_.hoist_fan, delta);
          if (b == 0) {
            acc = std::move(y);
          } else {
            ev.add_inplace(acc, y);
          }
        }
        blocks = {std::move(acc)};
      }
      continue;
    }

    if (const auto* cv = std::get_if<ConvStage>(&st.op)) {
      fhe::ConvGeom geom;
      geom.in_channels = cv->in_channels;
      geom.out_channels = cv->out_channels;
      geom.height = cv->height;
      geom.width = cv->width;
      geom.kernel = cv->kernel;
      geom.stride = cv->stride;
      geom.ch_stride = sp_.layout_in.ch_stride;
      geom.row_stride = sp_.layout_in.row_stride;
      geom.elem_stride = sp_.layout_in.elem_stride;
      const fhe::ConvChannelFan fan(enc, cv->weights, cv->bias, geom,
                                    sp_.conv_n1 > 0 ? sp_.conv_n1 : 0,
                                    plan.pack_stride, sp_.layout_in.chans_per_block);
      std::vector<int> steps = sp_.rotation_steps;
      steps.insert(steps.end(), sp_.giant_steps.begin(), sp_.giant_steps.end());
      blocks = fan.apply(ev, blocks, *rt.rotation_keys(steps), sp_.hoist_fan, delta);
      continue;
    }

    // The remaining stage kinds are cyclic over one ciphertext (compact,
    // window, PAF-max) or apply independently per block (PAF-ReLU); the
    // planner's layout validation guarantees blocks.size() == 1 for the
    // cyclic kinds.
    fhe::Ciphertext& cur = blocks[0];

    if (const auto* cp = std::get_if<CompactStage>(&st.op)) {
      // Masked selection fan: output slot i takes x[i * stride], i.e. the
      // term rot(x, i * (stride - 1)) under the one-hot mask at slot i; all
      // terms share the Delta mask scale, so one rescale closes the stage.
      const std::size_t tile =
          plan.pack_stride != 0 ? plan.pack_stride : rt.ctx().slot_count();
      const auto stride = static_cast<std::size_t>(cp->stride);
      const std::size_t count = sp_.width_in / stride;
      std::vector<fhe::Ciphertext> rotated;
      if (!sp_.rotation_steps.empty())
        rotated = rotate_fan(ev, cur, sp_.rotation_steps,
                             *rt.rotation_keys(sp_.rotation_steps), sp_.hoist_fan);
      const auto mask = [&](std::size_t i) {
        return enc.encode_cached(
            compact_mask_key(sp_.width_in, cp->stride, tile, i), delta,
            cur.q_count(), [&] {
              std::vector<double> m(rt.ctx().slot_count(), 0.0);
              for (std::size_t base = 0; base < m.size(); base += tile)
                m[base + i] = 1.0;
              return m;
            });
      };
      fhe::Ciphertext acc = cur;
      ev.multiply_plain_inplace(acc, *mask(0));
      for (std::size_t i = 1; i < count; ++i) {
        fhe::Ciphertext& term = rotated[i - 1];
        ev.multiply_plain_inplace(term, *mask(i));
        ev.add_inplace(acc, term);
      }
      ev.rescale_inplace(acc);
      cur = std::move(acc);
      continue;
    }

    if (const auto* win = std::get_if<WindowStage>(&st.op)) {
      // acc = sum_t w[t] * rot(x, t); tap 0 needs no rotation, all taps are
      // scaled identically so one rescale returns the sum to ~Delta.
      std::vector<fhe::Ciphertext> rotated;
      if (!sp_.rotation_steps.empty())
        rotated = rotate_fan(ev, cur, sp_.rotation_steps,
                             *rt.rotation_keys(sp_.rotation_steps), sp_.hoist_fan);
      fhe::Ciphertext acc = cur;
      ev.multiply_plain_inplace(acc,
                                enc.encode_scalar(win->taps[0], delta, acc.q_count()));
      for (std::size_t t = 1; t < win->taps.size(); ++t) {
        fhe::Ciphertext& term = rotated[t - 1];
        ev.multiply_plain_inplace(
            term, enc.encode_scalar(win->taps[t], delta, term.q_count()));
        ev.add_inplace(acc, term);
      }
      ev.rescale_inplace(acc);
      if (win->bias != 0.0)
        ev.add_plain_inplace(acc,
                             enc.encode_scalar(win->bias, acc.scale, acc.q_count()));
      cur = std::move(acc);
      continue;
    }

    const auto& paf = std::get<PafStage>(st.op);
    pe.set_strategy(sp_.strategy);
    pe.set_lazy_relin(sp_.lazy_relin);
    if (paf.kind == SiteKind::ReLU) {
      // Slot-wise, so every block passes through the same envelope (the
      // zero padding slots of partial blocks stay zero: relu(0) == 0).
      for (fhe::Ciphertext& blk : blocks)
        blk = pe.relu(ev, blk, paf.paf, paf.input_scale, stats, nullptr,
                      nullptr, sp_.pre_factor);
    } else {
      // Cyclic pairwise tournament: the fan rotates the STAGE INPUT once
      // (hoisted when the plan says so), then folds PAF-max left to right —
      // the same order as PafMaxPool1d and reference().
      std::vector<fhe::Ciphertext> rotated =
          rotate_fan(ev, cur, sp_.rotation_steps,
                     *rt.rotation_keys(sp_.rotation_steps), sp_.hoist_fan);
      fhe::Ciphertext m = cur;
      for (fhe::Ciphertext& v : rotated)
        m = pe.max(ev, m, v, paf.paf, paf.input_scale, stats, nullptr, nullptr,
                   sp_.pre_factor);
      cur = std::move(m);
    }
  }

  sp::check_fmt(in[0].level() - blocks[0].level() == plan.levels_used,
                "FhePipeline::run: executed pipeline consumed ",
                in[0].level() - blocks[0].level(), " levels but the plan predicted ",
                plan.levels_used);
  return blocks;
}

}  // namespace sp::smartpaf
