#pragma once

#include <cstdint>
#include <vector>

#include "fhe/encoder.h"
#include "fhe/keys.h"
#include "io/wire.h"
#include "smartpaf/pipeline_planner.h"

namespace sp::io {

/// Versioned binary (de)serialization for everything that crosses the
/// serving process boundary: ring parameters, RNS polynomials, plaintexts,
/// ciphertexts, key material and execution plans.
///
/// Every blob starts with the same header:
///
///   magic "SPWB" (u32) | version (u16) | kind (u16) | params fingerprint (u64)
///
/// The fingerprint digests the ring/chain identity (N, q_bits, special_bits,
/// scale), so a deserializer bound to one context rejects blobs produced
/// under a different ring or prime chain with a diagnostic instead of
/// decoding them into garbage. CkksContext derives its primes
/// deterministically from CkksParams, which is why shipping the params blob
/// is sufficient to reconstruct a bit-compatible context on the other side.
/// Layout and compatibility policy: docs/WIRE.md.

/// Digest of the ring/chain identity (poly_degree, q_bits, special_bits,
/// scale). Key-independent: two runtimes with different keys but one
/// parameter set share a fingerprint, which is exactly the compatibility
/// a ciphertext blob needs.
std::uint64_t params_fingerprint(const fhe::CkksParams& params);

/// Parsed blob header (validated magic/version; kind/fingerprint for the
/// caller to check). Exposed for inspection tools.
struct BlobHeader {
  std::uint16_t version = 0;
  BlobKind kind{};
  std::uint64_t fingerprint = 0;
};

/// Writes the standard header.
void write_header(WireWriter& w, BlobKind kind, std::uint64_t fingerprint);

/// Reads and validates magic + version; returns kind/fingerprint.
BlobHeader read_header(WireReader& r);

/// read_header + kind/fingerprint match, with diagnostics naming what
/// mismatched. All deserializers below start here.
void expect_header(WireReader& r, BlobKind kind, std::uint64_t fingerprint);

// ------------------------------------------------------------------- params --

std::vector<std::uint8_t> serialize(const fhe::CkksParams& params);
fhe::CkksParams deserialize_params(const std::vector<std::uint8_t>& bytes);

// -------------------------------------------------------- ring elements -----

std::vector<std::uint8_t> serialize(const fhe::RnsPoly& poly);
fhe::RnsPoly deserialize_poly(const std::vector<std::uint8_t>& bytes,
                              const fhe::CkksContext& ctx);

std::vector<std::uint8_t> serialize(const fhe::Plaintext& pt);
fhe::Plaintext deserialize_plaintext(const std::vector<std::uint8_t>& bytes,
                                     const fhe::CkksContext& ctx);

std::vector<std::uint8_t> serialize(const fhe::Ciphertext& ct);
fhe::Ciphertext deserialize_ciphertext(const std::vector<std::uint8_t>& bytes,
                                       const fhe::CkksContext& ctx);

// ------------------------------------------------------------ key material --

std::vector<std::uint8_t> serialize(const fhe::PublicKey& pk);
fhe::PublicKey deserialize_public_key(const std::vector<std::uint8_t>& bytes,
                                      const fhe::CkksContext& ctx);

/// Secret keys serialize for client-side persistence only — never ship one
/// to a server.
std::vector<std::uint8_t> serialize(const fhe::SecretKey& sk);
fhe::SecretKey deserialize_secret_key(const std::vector<std::uint8_t>& bytes,
                                      const fhe::CkksContext& ctx);

std::vector<std::uint8_t> serialize(const fhe::KSwitchKey& key);
fhe::KSwitchKey deserialize_kswitch_key(const std::vector<std::uint8_t>& bytes,
                                        const fhe::CkksContext& ctx);

std::vector<std::uint8_t> serialize(const fhe::GaloisKeys& keys);
fhe::GaloisKeys deserialize_galois_keys(const std::vector<std::uint8_t>& bytes,
                                        const fhe::CkksContext& ctx);

// --------------------------------------------------------------------- plan --

/// Plans carry the fingerprint of the context they were planned against:
/// strategy/fan/merge decisions are only valid for that chain.
std::vector<std::uint8_t> serialize(const smartpaf::Plan& plan,
                                    const fhe::CkksContext& ctx);
smartpaf::Plan deserialize_plan(const std::vector<std::uint8_t>& bytes,
                                const fhe::CkksContext& ctx);

// ----------------------------------------------------------- serving extras --

/// Rotation-step list for the serving handshake: after sending the plan, the
/// server tells the client every slot offset its schedule rotates by
/// (pipeline fans PLUS the executor's packing strides), and the client
/// answers with Galois keys covering exactly that set — the server holds no
/// secret key, so it cannot mint the keys itself.
std::vector<std::uint8_t> serialize_rotation_steps(const std::vector<int>& steps,
                                                   const fhe::CkksContext& ctx);
std::vector<int> deserialize_rotation_steps(const std::vector<std::uint8_t>& bytes,
                                            const fhe::CkksContext& ctx);

}  // namespace sp::io
