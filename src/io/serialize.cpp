#include "io/serialize.h"

#include "common/hash.h"

namespace sp::io {
namespace {

/// Blob kind names for rejection diagnostics.
const char* kind_name(BlobKind k) {
  switch (k) {
    case BlobKind::CkksParams: return "CkksParams";
    case BlobKind::RnsPoly: return "RnsPoly";
    case BlobKind::Plaintext: return "Plaintext";
    case BlobKind::Ciphertext: return "Ciphertext";
    case BlobKind::PublicKey: return "PublicKey";
    case BlobKind::SecretKey: return "SecretKey";
    case BlobKind::KSwitchKey: return "KSwitchKey";
    case BlobKind::GaloisKeys: return "GaloisKeys";
    case BlobKind::Plan: return "Plan";
    case BlobKind::RotationSteps: return "RotationSteps";
    case BlobKind::TrainingState: return "TrainingState";
  }
  return "unknown";
}

// ------------------------------------------------- nested payload helpers --
// The public serializers wrap exactly one of these payloads in a header;
// composite payloads (ciphertext parts, key digits) nest them headerless.

void write_poly(WireWriter& w, const fhe::RnsPoly& poly) {
  w.u64(poly.n());
  w.u32(static_cast<std::uint32_t>(poly.q_count()));
  w.boolean(poly.has_special());
  w.boolean(poly.is_ntt());
  for (int i = 0; i < poly.row_count(); ++i) w.u64_span(poly.row(i), poly.n());
}

fhe::RnsPoly read_poly(WireReader& r, const fhe::CkksContext& ctx) {
  const std::uint64_t n = r.u64();
  sp::check_fmt(n == ctx.n(), "wire: polynomial ring size ", n,
                " does not match the context's ", ctx.n());
  const auto q_count = static_cast<int>(r.u32());
  sp::check_fmt(q_count >= 1 && q_count <= ctx.q_count(), "wire: polynomial q_count ",
                q_count, " outside the context's chain of ", ctx.q_count());
  const bool with_special = r.boolean();
  const bool ntt = r.boolean();
  fhe::RnsPoly poly(&ctx, q_count, with_special, ntt);
  for (int i = 0; i < poly.row_count(); ++i) {
    r.u64_span(poly.row(i), poly.n());
    const fhe::Modulus& m = poly.row_mod(i);
    const std::uint64_t* row = poly.row(i);
    for (std::size_t j = 0; j < poly.n(); ++j)
      sp::check(row[j] < m.value(), "wire: residue out of range for its prime");
  }
  return poly;
}

void write_plaintext(WireWriter& w, const fhe::Plaintext& pt) {
  write_poly(w, pt.poly);
  w.f64(pt.scale);
}

fhe::Plaintext read_plaintext(WireReader& r, const fhe::CkksContext& ctx) {
  fhe::Plaintext pt;
  pt.poly = read_poly(r, ctx);
  pt.scale = r.f64();
  sp::check(pt.scale > 0, "wire: plaintext scale must be positive");
  return pt;
}

void write_ciphertext(WireWriter& w, const fhe::Ciphertext& ct) {
  w.u32(static_cast<std::uint32_t>(ct.parts.size()));
  for (const fhe::RnsPoly& p : ct.parts) write_poly(w, p);
  w.f64(ct.scale);
}

fhe::Ciphertext read_ciphertext(WireReader& r, const fhe::CkksContext& ctx) {
  const std::uint32_t parts = r.u32();
  sp::check_fmt(parts >= 2 && parts <= 3, "wire: ciphertext with ", parts,
                " parts (expected 2 or 3)");
  fhe::Ciphertext ct;
  ct.parts.reserve(parts);
  for (std::uint32_t i = 0; i < parts; ++i) ct.parts.push_back(read_poly(r, ctx));
  ct.scale = r.f64();
  sp::check(ct.scale > 0, "wire: ciphertext scale must be positive");
  for (const fhe::RnsPoly& p : ct.parts)
    sp::check(p.q_count() == ct.parts.front().q_count() && !p.has_special(),
              "wire: ciphertext parts must share the chain basis");
  return ct;
}

void write_kswitch(WireWriter& w, const fhe::KSwitchKey& key) {
  w.u64(key.digits.size());
  for (const auto& digit : key.digits) {
    write_poly(w, digit[0]);
    write_poly(w, digit[1]);
  }
}

fhe::KSwitchKey read_kswitch(WireReader& r, const fhe::CkksContext& ctx) {
  const std::uint64_t digits = r.u64();
  sp::check_fmt(digits == static_cast<std::uint64_t>(ctx.q_count()),
                "wire: key-switch key with ", digits, " digits, chain has ",
                ctx.q_count());
  fhe::KSwitchKey key;
  key.digits.resize(digits);
  for (auto& digit : key.digits) {
    digit[0] = read_poly(r, ctx);
    digit[1] = read_poly(r, ctx);
    sp::check(digit[0].has_special() && digit[1].has_special() && digit[0].is_ntt() &&
                  digit[1].is_ntt(),
              "wire: key-switch digits must be NTT form over the extended basis");
  }
  return key;
}

void write_linear_stage(WireWriter& w, const smartpaf::LinearStage& lin) {
  w.f64_vec(lin.scale);
  w.f64_vec(lin.bias);
}

smartpaf::LinearStage read_linear_stage(WireReader& r) {
  smartpaf::LinearStage lin;
  lin.scale = r.f64_vec();
  lin.bias = r.f64_vec();
  return lin;
}

std::vector<std::uint8_t> finish(WireWriter& w) { return w.take(); }

}  // namespace

// ------------------------------------------------------------------ header --

std::uint64_t params_fingerprint(const fhe::CkksParams& params) {
  std::uint64_t h = kFnvOffset;
  h = fnv_mix(h, params.poly_degree);
  h = fnv_mix(h, params.q_bits.size());
  for (int bits : params.q_bits) h = fnv_mix(h, static_cast<std::uint64_t>(bits));
  h = fnv_mix(h, static_cast<std::uint64_t>(params.special_bits));
  h = fnv_double(h, params.scale);
  return h;
}

void write_header(WireWriter& w, BlobKind kind, std::uint64_t fingerprint) {
  w.u32(kMagic);
  w.u16(kVersion);
  w.u16(static_cast<std::uint16_t>(kind));
  w.u64(fingerprint);
}

BlobHeader read_header(WireReader& r) {
  const std::uint32_t magic = r.u32();
  sp::check_fmt(magic == kMagic, "wire: bad magic 0x", std::hex, magic,
                " (not an SPWB blob)");
  BlobHeader h;
  h.version = r.u16();
  sp::check_fmt(h.version == kVersion, "wire: format version ", h.version,
                " not supported (this build speaks version ", kVersion, ")");
  h.kind = static_cast<BlobKind>(r.u16());
  h.fingerprint = r.u64();
  return h;
}

void expect_header(WireReader& r, BlobKind kind, std::uint64_t fingerprint) {
  const BlobHeader h = read_header(r);
  sp::check_fmt(h.kind == kind, "wire: blob holds a ", kind_name(h.kind), ", expected a ",
                kind_name(kind));
  sp::check_fmt(h.fingerprint == fingerprint, "wire: params fingerprint ", std::hex,
                h.fingerprint, " does not match this context's ", fingerprint,
                " — blob was produced under a different ring/chain");
}

// ------------------------------------------------------------------ params --

std::vector<std::uint8_t> serialize(const fhe::CkksParams& params) {
  WireWriter w;
  write_header(w, BlobKind::CkksParams, params_fingerprint(params));
  w.u64(params.poly_degree);
  w.i32_vec(params.q_bits);
  w.i32(params.special_bits);
  w.f64(params.scale);
  w.f64(params.noise_stddev);
  return finish(w);
}

fhe::CkksParams deserialize_params(const std::vector<std::uint8_t>& bytes) {
  WireReader r(bytes);
  const BlobHeader h = read_header(r);
  sp::check_fmt(h.kind == BlobKind::CkksParams, "wire: blob holds a ", kind_name(h.kind),
                ", expected a CkksParams");
  fhe::CkksParams params;
  params.poly_degree = r.u64();
  params.q_bits = r.i32_vec();
  params.special_bits = r.i32();
  params.scale = r.f64();
  params.noise_stddev = r.f64();
  r.expect_done();
  // The fingerprint in a params blob is self-describing: it must match the
  // fields that follow, or the blob was stitched/corrupted.
  sp::check(params_fingerprint(params) == h.fingerprint,
            "wire: params fingerprint does not match the payload");
  return params;
}

// ----------------------------------------------------------- ring elements --

std::vector<std::uint8_t> serialize(const fhe::RnsPoly& poly) {
  sp::check(poly.context() != nullptr, "serialize: polynomial has no context");
  WireWriter w;
  write_header(w, BlobKind::RnsPoly, params_fingerprint(poly.context()->params()));
  write_poly(w, poly);
  return finish(w);
}

fhe::RnsPoly deserialize_poly(const std::vector<std::uint8_t>& bytes,
                              const fhe::CkksContext& ctx) {
  WireReader r(bytes);
  expect_header(r, BlobKind::RnsPoly, params_fingerprint(ctx.params()));
  fhe::RnsPoly poly = read_poly(r, ctx);
  r.expect_done();
  return poly;
}

std::vector<std::uint8_t> serialize(const fhe::Plaintext& pt) {
  sp::check(pt.poly.context() != nullptr, "serialize: plaintext has no context");
  WireWriter w;
  write_header(w, BlobKind::Plaintext, params_fingerprint(pt.poly.context()->params()));
  write_plaintext(w, pt);
  return finish(w);
}

fhe::Plaintext deserialize_plaintext(const std::vector<std::uint8_t>& bytes,
                                     const fhe::CkksContext& ctx) {
  WireReader r(bytes);
  expect_header(r, BlobKind::Plaintext, params_fingerprint(ctx.params()));
  fhe::Plaintext pt = read_plaintext(r, ctx);
  r.expect_done();
  return pt;
}

std::vector<std::uint8_t> serialize(const fhe::Ciphertext& ct) {
  sp::check(!ct.parts.empty() && ct.parts.front().context() != nullptr,
            "serialize: empty ciphertext");
  WireWriter w;
  write_header(w, BlobKind::Ciphertext,
               params_fingerprint(ct.parts.front().context()->params()));
  write_ciphertext(w, ct);
  return finish(w);
}

fhe::Ciphertext deserialize_ciphertext(const std::vector<std::uint8_t>& bytes,
                                       const fhe::CkksContext& ctx) {
  WireReader r(bytes);
  expect_header(r, BlobKind::Ciphertext, params_fingerprint(ctx.params()));
  fhe::Ciphertext ct = read_ciphertext(r, ctx);
  r.expect_done();
  return ct;
}

// ------------------------------------------------------------ key material --

std::vector<std::uint8_t> serialize(const fhe::PublicKey& pk) {
  sp::check(pk.p0.context() != nullptr, "serialize: empty public key");
  WireWriter w;
  write_header(w, BlobKind::PublicKey, params_fingerprint(pk.p0.context()->params()));
  write_poly(w, pk.p0);
  write_poly(w, pk.p1);
  return finish(w);
}

fhe::PublicKey deserialize_public_key(const std::vector<std::uint8_t>& bytes,
                                      const fhe::CkksContext& ctx) {
  WireReader r(bytes);
  expect_header(r, BlobKind::PublicKey, params_fingerprint(ctx.params()));
  fhe::PublicKey pk;
  pk.p0 = read_poly(r, ctx);
  pk.p1 = read_poly(r, ctx);
  r.expect_done();
  sp::check(pk.p0.is_ntt() && pk.p1.is_ntt() && pk.p0.q_count() == ctx.q_count(),
            "wire: public key must be NTT form over the full chain");
  return pk;
}

std::vector<std::uint8_t> serialize(const fhe::SecretKey& sk) {
  sp::check(sk.s_ntt.context() != nullptr, "serialize: empty secret key");
  WireWriter w;
  write_header(w, BlobKind::SecretKey, params_fingerprint(sk.s_ntt.context()->params()));
  write_poly(w, sk.s_ntt);
  write_poly(w, sk.s_coeff);
  return finish(w);
}

fhe::SecretKey deserialize_secret_key(const std::vector<std::uint8_t>& bytes,
                                      const fhe::CkksContext& ctx) {
  WireReader r(bytes);
  expect_header(r, BlobKind::SecretKey, params_fingerprint(ctx.params()));
  fhe::SecretKey sk;
  sk.s_ntt = read_poly(r, ctx);
  sk.s_coeff = read_poly(r, ctx);
  r.expect_done();
  sp::check(sk.s_ntt.is_ntt() && !sk.s_coeff.is_ntt() && sk.s_ntt.has_special() &&
                sk.s_coeff.has_special(),
            "wire: secret key must carry NTT + coefficient forms over the full basis");
  return sk;
}

std::vector<std::uint8_t> serialize(const fhe::KSwitchKey& key) {
  sp::check(!key.digits.empty() && key.digits.front()[0].context() != nullptr,
            "serialize: empty key-switch key");
  WireWriter w;
  write_header(w, BlobKind::KSwitchKey,
               params_fingerprint(key.digits.front()[0].context()->params()));
  write_kswitch(w, key);
  return finish(w);
}

fhe::KSwitchKey deserialize_kswitch_key(const std::vector<std::uint8_t>& bytes,
                                        const fhe::CkksContext& ctx) {
  WireReader r(bytes);
  expect_header(r, BlobKind::KSwitchKey, params_fingerprint(ctx.params()));
  fhe::KSwitchKey key = read_kswitch(r, ctx);
  r.expect_done();
  return key;
}

std::vector<std::uint8_t> serialize(const fhe::GaloisKeys& keys) {
  sp::check(!keys.keys.empty(), "serialize: empty Galois key set");
  WireWriter w;
  write_header(
      w, BlobKind::GaloisKeys,
      params_fingerprint(keys.keys.begin()->second.digits.front()[0].context()->params()));
  w.u64(keys.keys.size());
  for (const auto& [elt, key] : keys.keys) {
    w.u64(elt);
    write_kswitch(w, key);
  }
  return finish(w);
}

fhe::GaloisKeys deserialize_galois_keys(const std::vector<std::uint8_t>& bytes,
                                        const fhe::CkksContext& ctx) {
  WireReader r(bytes);
  expect_header(r, BlobKind::GaloisKeys, params_fingerprint(ctx.params()));
  const std::uint64_t count = r.u64();
  fhe::GaloisKeys keys;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t elt = r.u64();
    sp::check(elt % 2 == 1 && elt < 2 * ctx.n(),
              "wire: Galois element must be odd and < 2N");
    keys.keys.emplace(elt, read_kswitch(r, ctx));
  }
  r.expect_done();
  return keys;
}

// -------------------------------------------------------------------- plan --

std::vector<std::uint8_t> serialize(const smartpaf::Plan& plan,
                                    const fhe::CkksContext& ctx) {
  WireWriter w;
  write_header(w, BlobKind::Plan, params_fingerprint(ctx.params()));
  w.i32(plan.chain_levels);
  w.i32(plan.levels_used);
  w.u64(plan.pack_stride);
  w.f64(plan.predicted_cost);
  w.boolean(plan.measured_costs);
  w.u64(plan.stages.size());
  for (const smartpaf::StagePlan& st : plan.stages) {
    w.str(st.label);
    w.i32(st.level_in);
    w.i32(st.level_out);
    w.boolean(st.folded);
    w.boolean(st.merged_into_next);
    w.boolean(st.merged_linear.has_value());
    if (st.merged_linear) write_linear_stage(w, *st.merged_linear);
    w.f64(st.pre_factor);
    w.u8(static_cast<std::uint8_t>(st.strategy));
    w.boolean(st.lazy_relin);
    w.boolean(st.hoist_fan);
    w.i32_vec(st.rotation_steps);
    w.i32_vec(st.giant_steps);
    w.i32(st.bsgs_n1);
    w.i32(st.diag_mults);
    w.u64(st.width_in);
    w.u64(st.width_out);
    w.i32(st.ops.ct_mults);
    w.i32(st.ops.relins);
    w.i32(st.ops.rescales);
    w.i32(st.ops.plain_mults);
    w.i32(st.ops.levels);
    w.f64(st.predicted_cost);
  }
  return finish(w);
}

smartpaf::Plan deserialize_plan(const std::vector<std::uint8_t>& bytes,
                                const fhe::CkksContext& ctx) {
  WireReader r(bytes);
  expect_header(r, BlobKind::Plan, params_fingerprint(ctx.params()));
  smartpaf::Plan plan;
  plan.chain_levels = r.i32();
  plan.levels_used = r.i32();
  plan.pack_stride = r.u64();
  plan.predicted_cost = r.f64();
  plan.measured_costs = r.boolean();
  const std::uint64_t stages = r.u64();
  plan.stages.reserve(stages);
  for (std::uint64_t i = 0; i < stages; ++i) {
    smartpaf::StagePlan st;
    st.label = r.str();
    st.level_in = r.i32();
    st.level_out = r.i32();
    st.folded = r.boolean();
    st.merged_into_next = r.boolean();
    if (r.boolean()) st.merged_linear = read_linear_stage(r);
    st.pre_factor = r.f64();
    const std::uint8_t strategy = r.u8();
    sp::check(strategy <= 1, "wire: unknown PAF strategy tag");
    st.strategy = static_cast<fhe::PafEvaluator::Strategy>(strategy);
    st.lazy_relin = r.boolean();
    st.hoist_fan = r.boolean();
    st.rotation_steps = r.i32_vec();
    st.giant_steps = r.i32_vec();
    st.bsgs_n1 = r.i32();
    st.diag_mults = r.i32();
    st.width_in = r.u64();
    st.width_out = r.u64();
    st.ops.ct_mults = r.i32();
    st.ops.relins = r.i32();
    st.ops.rescales = r.i32();
    st.ops.plain_mults = r.i32();
    st.ops.levels = r.i32();
    st.predicted_cost = r.f64();
    plan.stages.push_back(std::move(st));
  }
  r.expect_done();
  return plan;
}

std::vector<std::uint8_t> serialize_rotation_steps(const std::vector<int>& steps,
                                                   const fhe::CkksContext& ctx) {
  WireWriter w;
  write_header(w, BlobKind::RotationSteps, params_fingerprint(ctx.params()));
  w.i32_vec(steps);
  return finish(w);
}

std::vector<int> deserialize_rotation_steps(const std::vector<std::uint8_t>& bytes,
                                            const fhe::CkksContext& ctx) {
  WireReader r(bytes);
  expect_header(r, BlobKind::RotationSteps, params_fingerprint(ctx.params()));
  std::vector<int> steps = r.i32_vec();
  r.expect_done();
  return steps;
}

}  // namespace sp::io
