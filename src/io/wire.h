#pragma once

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/check.h"

namespace sp::io {

/// Byte-level wire primitives shared by every sp::io (de)serializer.
///
/// All scalars are written little-endian byte by byte, so blobs are
/// endian-stable across hosts regardless of the producer's native order.
/// Doubles travel as their IEEE-754 bit pattern (bit-exact round trip, no
/// text formatting loss). Readers are bounds-checked: a truncated or
/// overlong stream raises sp::Error instead of reading garbage.

/// First four bytes of every blob: "SPWB" (SmartPAF Wire Blob).
constexpr std::uint32_t kMagic = 0x42575053u;  // 'S','P','W','B' little-endian

/// Wire format version. Bump on ANY layout change; deserializers reject
/// other versions outright (no silent best-effort decoding). Compatibility
/// policy lives in docs/WIRE.md.
///
/// v2: BlobKind::TrainingState added (encrypted-training checkpoints) and
/// the length-prefixed raw-blob helper it nests ciphertexts with.
constexpr std::uint16_t kVersion = 2;

/// Payload type tag carried in every header, so a blob handed to the wrong
/// deserializer fails loudly instead of misparsing.
enum class BlobKind : std::uint16_t {
  CkksParams = 1,
  RnsPoly = 2,
  Plaintext = 3,
  Ciphertext = 4,
  PublicKey = 5,
  SecretKey = 6,
  KSwitchKey = 7,
  GaloisKeys = 8,
  Plan = 9,
  RotationSteps = 10,  ///< serving handshake: steps the server's schedule needs
  TrainingState = 11,  ///< encrypted-training checkpoint (train::TrainingState)
};

/// Appends little-endian scalars and raw bytes to an owned buffer.
class WireWriter {
 public:
  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed u64 span (the RnsPoly row payload).
  void u64_span(const std::uint64_t* data, std::size_t count) {
    u64(count);
    for (std::size_t i = 0; i < count; ++i) u64(data[i]);
  }
  /// Length-prefixed double vector (bit patterns).
  void f64_vec(const std::vector<double>& v) {
    u64(v.size());
    for (double d : v) f64(d);
  }
  void i32_vec(const std::vector<int>& v) {
    u64(v.size());
    for (int x : v) i32(x);
  }
  /// Length-prefixed UTF-8 string.
  void str(const std::string& s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  /// Length-prefixed raw byte blob — nests one complete serialized blob
  /// (header and all) inside another, e.g. the ciphertexts inside a
  /// TrainingState checkpoint.
  void blob(const std::vector<std::uint8_t>& b) {
    u64(b.size());
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian reads over a borrowed byte span.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& buf)
      : WireReader(buf.data(), buf.size()) {}

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

  /// Every byte must be consumed: trailing garbage after a payload is a
  /// malformed blob, not padding.
  void expect_done() const {
    sp::check_fmt(done(), "wire: ", remaining(), " trailing bytes after payload");
  }

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16() {
    need(2);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool boolean() {
    const std::uint8_t v = u8();
    sp::check(v <= 1, "wire: malformed bool");
    return v == 1;
  }

  /// Reads a length-prefixed u64 span into `out` (exactly `expect` words
  /// when expect != SIZE_MAX).
  void u64_span(std::uint64_t* out, std::size_t expect) {
    const std::uint64_t count = u64();
    sp::check_fmt(count == expect, "wire: u64 span of ", count, " words, expected ",
                  expect);
    need(count * 8);
    for (std::size_t i = 0; i < count; ++i) out[i] = u64();
  }
  std::vector<double> f64_vec() {
    const std::uint64_t count = checked_count(8);
    std::vector<double> v(count);
    for (auto& d : v) d = f64();
    return v;
  }
  std::vector<int> i32_vec() {
    const std::uint64_t count = checked_count(4);
    std::vector<int> v(count);
    for (auto& x : v) x = i32();
    return v;
  }
  std::string str() {
    const std::uint64_t count = checked_count(1);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), count);
    pos_ += count;
    return s;
  }
  /// Reads a length-prefixed raw byte blob written by WireWriter::blob.
  std::vector<std::uint8_t> blob() {
    const std::uint64_t count = checked_count(1);
    std::vector<std::uint8_t> b(data_ + pos_, data_ + pos_ + count);
    pos_ += count;
    return b;
  }

 private:
  void need(std::uint64_t n) const {
    sp::check_fmt(n <= size_ - pos_, "wire: truncated stream (need ", n, " bytes, have ",
                  size_ - pos_, ")");
  }
  /// Reads a length prefix and validates count * elem_size fits the
  /// remaining bytes BEFORE any allocation, so a corrupt length cannot
  /// trigger a multi-GB resize.
  std::uint64_t checked_count(std::uint64_t elem_size) {
    const std::uint64_t count = u64();
    sp::check_fmt(count <= remaining() / elem_size, "wire: length prefix ", count,
                  " exceeds the remaining ", remaining(), " bytes");
    return count;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ------------------------------------------------------------------ framing --

/// Writes one length-prefixed frame (u32 little-endian length + payload) —
/// the unit of the serving protocol's blocking stdin/stdout/socket loop.
inline void write_frame(std::ostream& os, const std::vector<std::uint8_t>& payload) {
  std::uint8_t len[4];
  const auto n = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) len[i] = static_cast<std::uint8_t>(n >> (8 * i));
  os.write(reinterpret_cast<const char*>(len), 4);
  os.write(reinterpret_cast<const char*>(payload.data()),
           static_cast<std::streamsize>(payload.size()));
  os.flush();
}

/// Largest frame read_frame accepts unless the caller passes its own cap.
/// The length prefix arrives from the peer BEFORE any payload validation, so
/// an uncapped read would allocate whatever a hostile or corrupt prefix
/// claims (0xFFFFFFFF = a ~4 GiB resize per frame). 1 GiB clears every blob
/// the serving protocol ships (a full Galois key set is the largest) while
/// bounding what one frame can pin.
constexpr std::uint32_t kDefaultMaxFrameBytes = 1u << 30;

/// Reads one frame; returns false on clean EOF before the length prefix
/// (peer hung up between messages) and throws on a truncated frame or a
/// length prefix above `max_bytes` — rejected before any allocation.
inline bool read_frame(std::istream& is, std::vector<std::uint8_t>& payload,
                       std::uint32_t max_bytes = kDefaultMaxFrameBytes) {
  std::uint8_t len[4];
  is.read(reinterpret_cast<char*>(len), 4);
  if (is.gcount() == 0 && is.eof()) return false;
  sp::check(is.gcount() == 4, "wire: truncated frame length");
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i) n |= static_cast<std::uint32_t>(len[i]) << (8 * i);
  sp::check_fmt(n <= max_bytes, "wire: frame of ", n, " bytes exceeds the ", max_bytes,
                "-byte cap (corrupt length prefix or hostile peer; raise the "
                "caller's max_bytes if the frame is legitimate)");
  payload.resize(n);
  is.read(reinterpret_cast<char*>(payload.data()), static_cast<std::streamsize>(n));
  sp::check(static_cast<std::uint32_t>(is.gcount()) == n, "wire: truncated frame payload");
  return true;
}

}  // namespace sp::io
