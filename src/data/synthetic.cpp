#include "data/synthetic.h"

#include <cmath>

#include "common/check.h"

namespace sp::data {
namespace {

/// Smooth prototype: a coarse Gaussian grid bilinearly upsampled to hw.
std::vector<float> make_prototype(int channels, int hw, sp::Rng& rng) {
  const int coarse = 4;
  std::vector<float> grid(static_cast<std::size_t>(channels) * coarse * coarse);
  for (auto& v : grid) v = static_cast<float>(rng.normal(0.0, 1.0));
  std::vector<float> out(static_cast<std::size_t>(channels) * hw * hw);
  for (int c = 0; c < channels; ++c) {
    for (int y = 0; y < hw; ++y) {
      const double fy = static_cast<double>(y) / hw * (coarse - 1);
      const int y0 = static_cast<int>(fy);
      const int y1 = std::min(y0 + 1, coarse - 1);
      const double wy = fy - y0;
      for (int x = 0; x < hw; ++x) {
        const double fx = static_cast<double>(x) / hw * (coarse - 1);
        const int x0 = static_cast<int>(fx);
        const int x1 = std::min(x0 + 1, coarse - 1);
        const double wx = fx - x0;
        auto g = [&](int yy, int xx) {
          return grid[(static_cast<std::size_t>(c) * coarse + yy) * coarse + xx];
        };
        const double v = (1 - wy) * ((1 - wx) * g(y0, x0) + wx * g(y0, x1)) +
                         wy * ((1 - wx) * g(y1, x0) + wx * g(y1, x1));
        out[(static_cast<std::size_t>(c) * hw + y) * hw + x] = static_cast<float>(v);
      }
    }
  }
  return out;
}

void fill_split(nn::Dataset& ds, int count, const SyntheticSpec& spec,
                const std::vector<std::vector<float>>& protos, sp::Rng& rng) {
  const int c = spec.channels, hw = spec.image_hw;
  ds.images = nn::Tensor({count, c, hw, hw});
  ds.labels.resize(static_cast<std::size_t>(count));
  ds.num_classes = spec.num_classes;
  for (int n = 0; n < count; ++n) {
    const int k = static_cast<int>(rng.randint(0, spec.num_classes - 1));
    // Confusing partner: a fixed neighbour plus a random alternative.
    const int partner = static_cast<int>(
        (k + 1 + rng.randint(0, std::max(1, spec.num_classes / 4))) % spec.num_classes);
    ds.labels[static_cast<std::size_t>(n)] = k;
    const int sy = static_cast<int>(rng.randint(-spec.max_shift, spec.max_shift));
    const int sx = static_cast<int>(rng.randint(-spec.max_shift, spec.max_shift));
    for (int cc = 0; cc < c; ++cc) {
      for (int y = 0; y < hw; ++y) {
        for (int x = 0; x < hw; ++x) {
          const int yy = ((y + sy) % hw + hw) % hw;
          const int xx = ((x + sx) % hw + hw) % hw;
          const std::size_t p = (static_cast<std::size_t>(cc) * hw + yy) * hw + xx;
          const double v = (1.0 - spec.mix) * protos[static_cast<std::size_t>(k)][p] +
                           spec.mix * protos[static_cast<std::size_t>(partner)][p] +
                           spec.noise * rng.normal();
          ds.images.at(n, cc, y, x) = static_cast<float>(v);
        }
      }
    }
  }
}

}  // namespace

SyntheticSpec SyntheticSpec::cifar_like(int hw) {
  SyntheticSpec s;
  s.num_classes = 10;
  s.image_hw = hw;
  s.train_count = 2000;
  s.val_count = 500;
  s.noise = 0.6;
  s.mix = 0.15;
  s.seed = 20240501;
  return s;
}

SyntheticSpec SyntheticSpec::imagenet_like(int hw) {
  SyntheticSpec s;
  s.num_classes = 20;
  s.image_hw = hw;
  s.train_count = 3000;
  s.val_count = 600;
  s.noise = 1.0;
  s.mix = 0.3;
  s.seed = 20240502;
  return s;
}

namespace {

void fill_gaussian_split(nn::Dataset& ds, int count, const TwoGaussianSpec& spec,
                         const std::vector<double>& dir, sp::Rng& rng) {
  ds.images = nn::Tensor({count, 1, 1, spec.features});
  ds.labels.resize(static_cast<std::size_t>(count));
  ds.num_classes = 2;
  for (int n = 0; n < count; ++n) {
    const int y = static_cast<int>(rng.randint(0, 1));
    ds.labels[static_cast<std::size_t>(n)] = y;
    const double sign = y == 1 ? 1.0 : -1.0;
    for (int d = 0; d < spec.features; ++d) {
      const double mean = sign * 0.5 * spec.separation * dir[static_cast<std::size_t>(d)];
      ds.images.at(n, 0, 0, d) = static_cast<float>(mean + spec.noise * rng.normal());
    }
  }
}

}  // namespace

TwoGaussianData make_two_gaussian(const TwoGaussianSpec& spec) {
  sp::check(spec.features >= 1, "make_two_gaussian: need at least 1 feature");
  sp::check(spec.train_count >= 1 && spec.test_count >= 1,
            "make_two_gaussian: empty split");
  sp::check(spec.noise > 0.0, "make_two_gaussian: noise must be positive");
  sp::Rng rng(spec.seed);

  TwoGaussianData out;
  // Fixed random unit direction between the class means.
  out.direction.resize(static_cast<std::size_t>(spec.features));
  double norm2 = 0.0;
  do {
    norm2 = 0.0;
    for (auto& v : out.direction) {
      v = rng.normal();
      norm2 += v * v;
    }
  } while (norm2 == 0.0);
  const double inv = 1.0 / std::sqrt(norm2);
  for (auto& v : out.direction) v *= inv;

  fill_gaussian_split(out.train, spec.train_count, spec, out.direction, rng);
  fill_gaussian_split(out.test, spec.test_count, spec, out.direction, rng);
  return out;
}

DesignMatrix design_matrix(const nn::Dataset& split) {
  sp::check(split.images.ndim() == 4, "design_matrix: expected [N, C, H, W]");
  DesignMatrix out;
  out.rows = split.images.dim(0);
  out.cols = split.images.dim(1) * split.images.dim(2) * split.images.dim(3);
  sp::check(static_cast<std::size_t>(out.rows) == split.labels.size(),
            "design_matrix: label count mismatch");
  out.x.reserve(static_cast<std::size_t>(out.rows) * out.cols);
  const float* data = split.images.data();
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(out.rows) * static_cast<std::size_t>(out.cols); ++i)
    out.x.push_back(static_cast<double>(data[i]));
  out.y = split.labels;
  return out;
}

SyntheticData make_synthetic(const SyntheticSpec& spec) {
  sp::check(spec.num_classes >= 2, "make_synthetic: need at least 2 classes");
  sp::Rng rng(spec.seed);
  std::vector<std::vector<float>> protos;
  protos.reserve(static_cast<std::size_t>(spec.num_classes));
  for (int k = 0; k < spec.num_classes; ++k)
    protos.push_back(make_prototype(spec.channels, spec.image_hw, rng));

  SyntheticData out;
  fill_split(out.train, spec.train_count, spec, protos, rng);
  fill_split(out.val, spec.val_count, spec, protos, rng);
  return out;
}

}  // namespace sp::data
