#pragma once

#include "nn/dataset.h"

namespace sp::data {

/// Specification of a synthetic class-structured image dataset.
///
/// Substitution for CiFar-10 / ImageNet-1k (see DESIGN.md): each class has a
/// smooth random prototype; samples are prototype + inter-class mixing +
/// pixel noise + random circular shifts. `mix`/`noise` control difficulty,
/// so the "imagenet-like" spec is measurably harder than the "cifar-like"
/// one (reproducing the paper's §5.4.4 dataset-complexity effect).
struct SyntheticSpec {
  int num_classes = 10;
  int image_hw = 16;
  int channels = 3;
  int train_count = 2000;
  int val_count = 500;
  double noise = 0.6;     ///< per-pixel Gaussian noise stddev
  double mix = 0.15;      ///< weight of a confusing second prototype
  int max_shift = 2;      ///< random circular shift amplitude
  std::uint64_t seed = 20240501;

  /// Easier task standing in for CiFar-10 (10 classes).
  static SyntheticSpec cifar_like(int hw = 16);

  /// Harder task standing in for ImageNet-1k (more classes, more noise,
  /// heavier mixing).
  static SyntheticSpec imagenet_like(int hw = 16);
};

/// Train + validation split drawn from the same generative process.
struct SyntheticData {
  nn::Dataset train;
  nn::Dataset val;
};

/// Deterministically generates the dataset for a spec.
SyntheticData make_synthetic(const SyntheticSpec& spec);

}  // namespace sp::data
