#pragma once

#include "nn/dataset.h"

namespace sp::data {

/// Specification of a synthetic class-structured image dataset.
///
/// Substitution for CiFar-10 / ImageNet-1k (see DESIGN.md): each class has a
/// smooth random prototype; samples are prototype + inter-class mixing +
/// pixel noise + random circular shifts. `mix`/`noise` control difficulty,
/// so the "imagenet-like" spec is measurably harder than the "cifar-like"
/// one (reproducing the paper's §5.4.4 dataset-complexity effect).
struct SyntheticSpec {
  int num_classes = 10;
  int image_hw = 16;
  int channels = 3;
  int train_count = 2000;
  int val_count = 500;
  double noise = 0.6;     ///< per-pixel Gaussian noise stddev
  double mix = 0.15;      ///< weight of a confusing second prototype
  int max_shift = 2;      ///< random circular shift amplitude
  std::uint64_t seed = 20240501;

  /// Easier task standing in for CiFar-10 (10 classes).
  static SyntheticSpec cifar_like(int hw = 16);

  /// Harder task standing in for ImageNet-1k (more classes, more noise,
  /// heavier mixing).
  static SyntheticSpec imagenet_like(int hw = 16);
};

/// Train + validation split drawn from the same generative process.
struct SyntheticData {
  nn::Dataset train;
  nn::Dataset val;
};

/// Deterministically generates the dataset for a spec.
SyntheticData make_synthetic(const SyntheticSpec& spec);

/// Specification of a seeded two-Gaussian binary-classification task (the
/// encrypted-training workload: logistic regression has a clean closed-form
/// notion of "how well can this possibly go", so encrypted-vs-plaintext
/// accuracy deltas are attributable to the PAF, not the data).
///
/// Class y in {0, 1} draws x ~ N((2y - 1) * (separation / 2) * u, noise^2 I)
/// for a fixed random unit direction u: symmetric means, so the Bayes
/// boundary passes through the origin and a bias-free linear model can
/// represent it exactly.
struct TwoGaussianSpec {
  int features = 4;
  int train_count = 64;
  int test_count = 64;
  double separation = 3.0;  ///< distance between the two class means
  double noise = 1.0;       ///< isotropic within-class stddev
  std::uint64_t seed = 20240807;
};

/// Deterministic train/test split drawn from one seeded stream (the split is
/// part of the seed: same spec, same bytes, in tests, bench and example).
struct TwoGaussianData {
  nn::Dataset train;  ///< images [N, 1, 1, features], labels 0/1
  nn::Dataset test;
  std::vector<double> direction;  ///< the unit vector between the class means
};

TwoGaussianData make_two_gaussian(const TwoGaussianSpec& spec);

/// A dataset split flattened to a row-major design matrix (training-layer
/// view: [rows x cols] doubles + 0/1 labels).
struct DesignMatrix {
  std::vector<double> x;  ///< row-major rows x cols
  std::vector<int> y;
  int rows = 0;
  int cols = 0;
};

/// Flattens every image of `split` to one row (any [N, C, H, W] layout;
/// cols = C*H*W).
DesignMatrix design_matrix(const nn::Dataset& split);

}  // namespace sp::data
