#include "fhe/rns_poly.h"

#include <cmath>
#include <cstring>
#include <map>
#include <mutex>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "fhe/ntt.h"
#include "fhe/simd/simd.h"

namespace sp::fhe {
namespace {

/// Elements per elementwise-kernel task. Rows are independent and an
/// elementwise op has no cross-lane dependencies, so (row x tile) dispatch
/// over the global pool is bit-identical to the serial loop for any
/// SMARTPAF_THREADS value — tiling just keeps short chains from capping the
/// usable thread count at row_count().
constexpr std::size_t kElemTile = 4096;

template <typename Body>
void for_each_row_tile(int rows, std::size_t n, const Body& body) {
  const std::size_t tiles = n >= kElemTile ? n / kElemTile : 1;
  const std::size_t len = n / tiles;  // n, kElemTile powers of two => exact
  sp::parallel_for(0, static_cast<std::size_t>(rows) * tiles, [&](std::size_t u) {
    body(static_cast<int>(u / tiles), (u % tiles) * len, len);
  });
}

/// Process-wide (value, prime) -> (reduced value, Shoup companion) memo.
/// Scalar scaling constants recur heavily (encoder scale, rescale deltas),
/// and shoup_precompute costs a 128-bit division per row per call otherwise.
std::pair<u64, u64> scalar_shoup_cached(u64 v, u64 q) {
  static std::mutex mu;
  static std::map<std::pair<u64, u64>, std::pair<u64, u64>> cache;
  std::lock_guard<std::mutex> lock(mu);
  const auto key = std::make_pair(v, q);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  if (cache.size() >= 4096) cache.clear();  // unbounded growth guard
  const u64 vi = v % q;
  const std::pair<u64, u64> entry{vi, shoup_precompute(vi, q)};
  cache.emplace(key, entry);
  return entry;
}

}  // namespace

RnsPoly::RnsPoly(const CkksContext* ctx, int q_count, bool with_special, bool ntt_form)
    : ctx_(ctx), q_count_(q_count), with_special_(with_special), ntt_(ntt_form) {
  sp::check(ctx != nullptr, "RnsPoly: null context");
  sp::check(q_count >= 1 && q_count <= ctx->q_count(), "RnsPoly: bad q_count");
  data_.assign(static_cast<std::size_t>(row_count()) * ctx->n(), 0);
}

const Modulus& RnsPoly::row_mod(int i) const {
  if (with_special_ && i == q_count_) return ctx_->special();
  return ctx_->q(i);
}

const NttTables& RnsPoly::row_ntt(int i) const {
  if (with_special_ && i == q_count_) return ctx_->special_ntt();
  return ctx_->ntt(i);
}

void RnsPoly::to_ntt() {
  sp::check(!ntt_, "RnsPoly::to_ntt: already in NTT form");
  std::vector<NttJob> jobs(static_cast<std::size_t>(row_count()));
  for (int i = 0; i < row_count(); ++i) jobs[static_cast<std::size_t>(i)] = {row(i), &row_ntt(i)};
  ntt_forward_batch(jobs);
  ntt_ = true;
}

void RnsPoly::from_ntt() {
  sp::check(ntt_, "RnsPoly::from_ntt: not in NTT form");
  std::vector<NttJob> jobs(static_cast<std::size_t>(row_count()));
  for (int i = 0; i < row_count(); ++i) jobs[static_cast<std::size_t>(i)] = {row(i), &row_ntt(i)};
  ntt_inverse_batch(jobs);
  ntt_ = false;
}

void RnsPoly::to_ntt_batch(const std::vector<RnsPoly*>& polys) {
  std::vector<NttJob> jobs;
  for (RnsPoly* p : polys) {
    if (p == nullptr) continue;
    sp::check(!p->ntt_, "RnsPoly::to_ntt_batch: already in NTT form");
    for (int i = 0; i < p->row_count(); ++i) jobs.push_back({p->row(i), &p->row_ntt(i)});
  }
  ntt_forward_batch(jobs);
  for (RnsPoly* p : polys)
    if (p != nullptr) p->ntt_ = true;
}

void RnsPoly::from_ntt_batch(const std::vector<RnsPoly*>& polys) {
  std::vector<NttJob> jobs;
  for (RnsPoly* p : polys) {
    if (p == nullptr) continue;
    sp::check(p->ntt_, "RnsPoly::from_ntt_batch: not in NTT form");
    for (int i = 0; i < p->row_count(); ++i) jobs.push_back({p->row(i), &p->row_ntt(i)});
  }
  ntt_inverse_batch(jobs);
  for (RnsPoly* p : polys)
    if (p != nullptr) p->ntt_ = false;
}

namespace {
void check_compatible(const RnsPoly& a, const RnsPoly& b) {
  sp::check(a.context() == b.context() && a.q_count() == b.q_count() &&
                a.has_special() == b.has_special() && a.is_ntt() == b.is_ntt(),
            "RnsPoly: incompatible operands");
}
}  // namespace

void RnsPoly::add_inplace(const RnsPoly& o) {
  check_compatible(*this, o);
  const simd::Kernels& k = simd::kernels();
  for_each_row_tile(row_count(), n(), [&](int i, std::size_t off, std::size_t len) {
    k.add_mod(row(i) + off, o.row(i) + off, len, row_mod(i).value());
  });
}

void RnsPoly::sub_inplace(const RnsPoly& o) {
  check_compatible(*this, o);
  const simd::Kernels& k = simd::kernels();
  for_each_row_tile(row_count(), n(), [&](int i, std::size_t off, std::size_t len) {
    k.sub_mod(row(i) + off, o.row(i) + off, len, row_mod(i).value());
  });
}

void RnsPoly::negate_inplace() {
  const simd::Kernels& k = simd::kernels();
  for_each_row_tile(row_count(), n(), [&](int i, std::size_t off, std::size_t len) {
    k.neg_mod(row(i) + off, len, row_mod(i).value());
  });
}

void RnsPoly::mul_inplace(const RnsPoly& o) {
  check_compatible(*this, o);
  sp::check(ntt_, "RnsPoly::mul_inplace: requires NTT form");
  const simd::Kernels& k = simd::kernels();
  for_each_row_tile(row_count(), n(), [&](int i, std::size_t off, std::size_t len) {
    const Modulus& m = row_mod(i);
    k.mul_mod(row(i) + off, o.row(i) + off, len, m.value(), m.ratio_hi(), m.ratio_lo());
  });
}

void RnsPoly::mul_scalar_inplace(u64 v) {
  // Resolve the per-prime constants serially (memoized), then apply in one
  // tiled kernel pass.
  std::vector<std::pair<u64, u64>> consts(static_cast<std::size_t>(row_count()));
  for (int i = 0; i < row_count(); ++i)
    consts[static_cast<std::size_t>(i)] = scalar_shoup_cached(v, row_mod(i).value());
  const simd::Kernels& k = simd::kernels();
  for_each_row_tile(row_count(), n(), [&](int i, std::size_t off, std::size_t len) {
    const auto& c = consts[static_cast<std::size_t>(i)];
    k.mul_shoup(row(i) + off, len, c.first, c.second, row_mod(i).value());
  });
}

void RnsPoly::drop_last_q() {
  sp::check(q_count_ >= 2, "RnsPoly::drop_last_q: cannot drop base prime");
  // Flat layout: removing chain row (q_count_-1) slides the special row (the
  // only row after it, when present) down one slot before shrinking.
  if (with_special_) {
    std::memmove(row(q_count_ - 1), row(q_count_), n() * sizeof(u64));
  }
  --q_count_;
  data_.resize(static_cast<std::size_t>(row_count()) * n());
}

void RnsPoly::drop_special() {
  sp::check(with_special_, "RnsPoly::drop_special: no special row");
  with_special_ = false;
  data_.resize(static_cast<std::size_t>(row_count()) * n());
}

void RnsPoly::set_from_signed(const std::vector<std::int64_t>& coeffs) {
  sp::check(coeffs.size() == n(), "RnsPoly::set_from_signed: size mismatch");
  sp::check(!ntt_, "RnsPoly::set_from_signed: expects coefficient form");
  for (int i = 0; i < row_count(); ++i) {
    const Modulus& m = row_mod(i);
    u64* a = row(i);
    for (std::size_t j = 0; j < n(); ++j) a[j] = m.from_signed(coeffs[j]);
  }
}

void RnsPoly::sample_ternary(sp::Rng& rng) {
  std::vector<std::int64_t> c(n());
  for (auto& v : c) v = rng.ternary();
  set_from_signed(c);
}

void RnsPoly::sample_gaussian(sp::Rng& rng, double stddev) {
  std::vector<std::int64_t> c(n());
  for (auto& v : c) v = static_cast<std::int64_t>(std::llround(rng.normal(0.0, stddev)));
  set_from_signed(c);
}

void RnsPoly::sample_uniform(sp::Rng& rng) {
  for (int i = 0; i < row_count(); ++i) {
    const Modulus& m = row_mod(i);
    u64* a = row(i);
    for (std::size_t j = 0; j < n(); ++j) {
      // Rejection-free 128-bit reduction keeps bias below 2^-64.
      a[j] = m.reduce128((static_cast<u128>(rng.next_u64()) << 64) | rng.next_u64());
    }
  }
}

}  // namespace sp::fhe
