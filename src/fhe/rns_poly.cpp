#include "fhe/rns_poly.h"

#include <cmath>

#include "common/check.h"
#include "common/thread_pool.h"

namespace sp::fhe {
namespace {

/// Row-parallel loop: every RNS row is independent in all elementwise ops and
/// NTT conversions, so per-row dispatch over the global pool is bit-identical
/// to the serial loop for any SMARTPAF_THREADS value.
template <typename Body>
void for_each_row(int rows, const Body& body) {
  sp::parallel_for(0, static_cast<std::size_t>(rows),
                   [&](std::size_t i) { body(static_cast<int>(i)); });
}

}  // namespace

RnsPoly::RnsPoly(const CkksContext* ctx, int q_count, bool with_special, bool ntt_form)
    : ctx_(ctx), q_count_(q_count), with_special_(with_special), ntt_(ntt_form) {
  sp::check(ctx != nullptr, "RnsPoly: null context");
  sp::check(q_count >= 1 && q_count <= ctx->q_count(), "RnsPoly: bad q_count");
  rows_.assign(static_cast<std::size_t>(row_count()), std::vector<u64>(ctx->n(), 0));
}

const Modulus& RnsPoly::row_mod(int i) const {
  if (with_special_ && i == q_count_) return ctx_->special();
  return ctx_->q(i);
}

const NttTables& RnsPoly::row_ntt(int i) const {
  if (with_special_ && i == q_count_) return ctx_->special_ntt();
  return ctx_->ntt(i);
}

void RnsPoly::to_ntt() {
  sp::check(!ntt_, "RnsPoly::to_ntt: already in NTT form");
  for_each_row(row_count(), [&](int i) { row_ntt(i).forward(row(i)); });
  ntt_ = true;
}

void RnsPoly::from_ntt() {
  sp::check(ntt_, "RnsPoly::from_ntt: not in NTT form");
  for_each_row(row_count(), [&](int i) { row_ntt(i).inverse(row(i)); });
  ntt_ = false;
}

namespace {
void check_compatible(const RnsPoly& a, const RnsPoly& b) {
  sp::check(a.context() == b.context() && a.q_count() == b.q_count() &&
                a.has_special() == b.has_special() && a.is_ntt() == b.is_ntt(),
            "RnsPoly: incompatible operands");
}
}  // namespace

void RnsPoly::add_inplace(const RnsPoly& o) {
  check_compatible(*this, o);
  for_each_row(row_count(), [&](int i) {
    const Modulus& m = row_mod(i);
    u64* a = row(i);
    const u64* b = o.row(i);
    for (std::size_t j = 0; j < n(); ++j) a[j] = m.add(a[j], b[j]);
  });
}

void RnsPoly::sub_inplace(const RnsPoly& o) {
  check_compatible(*this, o);
  for_each_row(row_count(), [&](int i) {
    const Modulus& m = row_mod(i);
    u64* a = row(i);
    const u64* b = o.row(i);
    for (std::size_t j = 0; j < n(); ++j) a[j] = m.sub(a[j], b[j]);
  });
}

void RnsPoly::negate_inplace() {
  for_each_row(row_count(), [&](int i) {
    const Modulus& m = row_mod(i);
    u64* a = row(i);
    for (std::size_t j = 0; j < n(); ++j) a[j] = m.neg(a[j]);
  });
}

void RnsPoly::mul_inplace(const RnsPoly& o) {
  check_compatible(*this, o);
  sp::check(ntt_, "RnsPoly::mul_inplace: requires NTT form");
  for_each_row(row_count(), [&](int i) {
    const Modulus& m = row_mod(i);
    u64* a = row(i);
    const u64* b = o.row(i);
    for (std::size_t j = 0; j < n(); ++j) a[j] = m.mul(a[j], b[j]);
  });
}

void RnsPoly::mul_scalar_inplace(u64 v) {
  for_each_row(row_count(), [&](int i) {
    const Modulus& m = row_mod(i);
    const u64 vi = v % m.value();
    const u64 vs = shoup_precompute(vi, m.value());
    u64* a = row(i);
    for (std::size_t j = 0; j < n(); ++j) a[j] = mul_shoup(a[j], vi, vs, m.value());
  });
}

void RnsPoly::drop_last_q() {
  sp::check(q_count_ >= 2, "RnsPoly::drop_last_q: cannot drop base prime");
  rows_.erase(rows_.begin() + (q_count_ - 1));
  --q_count_;
}

void RnsPoly::drop_special() {
  sp::check(with_special_, "RnsPoly::drop_special: no special row");
  rows_.pop_back();
  with_special_ = false;
}

void RnsPoly::set_from_signed(const std::vector<std::int64_t>& coeffs) {
  sp::check(coeffs.size() == n(), "RnsPoly::set_from_signed: size mismatch");
  sp::check(!ntt_, "RnsPoly::set_from_signed: expects coefficient form");
  for (int i = 0; i < row_count(); ++i) {
    const Modulus& m = row_mod(i);
    u64* a = row(i);
    for (std::size_t j = 0; j < n(); ++j) a[j] = m.from_signed(coeffs[j]);
  }
}

void RnsPoly::sample_ternary(sp::Rng& rng) {
  std::vector<std::int64_t> c(n());
  for (auto& v : c) v = rng.ternary();
  set_from_signed(c);
}

void RnsPoly::sample_gaussian(sp::Rng& rng, double stddev) {
  std::vector<std::int64_t> c(n());
  for (auto& v : c) v = static_cast<std::int64_t>(std::llround(rng.normal(0.0, stddev)));
  set_from_signed(c);
}

void RnsPoly::sample_uniform(sp::Rng& rng) {
  for (int i = 0; i < row_count(); ++i) {
    const Modulus& m = row_mod(i);
    u64* a = row(i);
    for (std::size_t j = 0; j < n(); ++j) {
      // Rejection-free 128-bit reduction keeps bias below 2^-64.
      a[j] = m.reduce128((static_cast<u128>(rng.next_u64()) << 64) | rng.next_u64());
    }
  }
}

}  // namespace sp::fhe
