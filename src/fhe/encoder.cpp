#include "fhe/encoder.h"

#include <cmath>
#include <cstring>

#include "common/check.h"

namespace sp::fhe {

Encoder::Encoder(const CkksContext& ctx) : ctx_(&ctx) {
  const std::size_t n = ctx_->n();
  const std::size_t two_n = 2 * n;
  rot_group_.resize(n / 2);
  std::size_t p = 1;
  for (std::size_t j = 0; j < n / 2; ++j) {
    rot_group_[j] = p;
    p = (p * 5) % two_n;
  }
  twiddles_.resize(two_n);
  for (std::size_t k = 0; k < two_n; ++k) {
    const double ang = 2.0 * M_PI * static_cast<double>(k) / static_cast<double>(two_n);
    twiddles_[k] = {std::cos(ang), std::sin(ang)};
  }

  const int L = ctx_->q_count();
  prod_q_mod_.assign(static_cast<std::size_t>(L) + 1,
                     std::vector<u64>(static_cast<std::size_t>(L), 0));
  prod_q_wrap_.assign(static_cast<std::size_t>(L) + 1, 1);
  prod_q_ld_.assign(static_cast<std::size_t>(L) + 1, 1.0L);
  for (int j = 0; j < L; ++j) prod_q_mod_[0][static_cast<std::size_t>(j)] = 1;
  for (int k = 1; k <= L; ++k) {
    const u64 qk = ctx_->q(k - 1).value();
    prod_q_wrap_[static_cast<std::size_t>(k)] = prod_q_wrap_[static_cast<std::size_t>(k - 1)] * qk;
    prod_q_ld_[static_cast<std::size_t>(k)] =
        prod_q_ld_[static_cast<std::size_t>(k - 1)] * static_cast<long double>(qk);
    for (int j = 0; j < L; ++j) {
      const Modulus& m = ctx_->q(j);
      prod_q_mod_[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)] =
          m.mul(prod_q_mod_[static_cast<std::size_t>(k - 1)][static_cast<std::size_t>(j)],
                qk % m.value());
    }
  }
}

void Encoder::fft(std::vector<std::complex<double>>& a, bool invert) const {
  const std::size_t m = a.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < m; ++i) {
    std::size_t bit = m >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= m; len <<= 1) {
    const std::size_t step = m / len;
    for (std::size_t i = 0; i < m; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        std::complex<double> w = twiddles_[k * step];
        if (!invert) w = std::conj(w);
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
      }
    }
  }
}

Plaintext Encoder::encode(const std::vector<double>& values, double scale,
                          int q_count) const {
  const std::size_t n = ctx_->n();
  const std::size_t two_n = 2 * n;
  sp::check(values.size() <= slot_count(), "Encoder::encode: too many values");
  sp::check(scale > 0, "Encoder::encode: scale must be positive");

  std::vector<std::complex<double>> v(two_n, {0.0, 0.0});
  for (std::size_t j = 0; j < values.size(); ++j) {
    const std::size_t k = rot_group_[j];
    v[k] = {values[j], 0.0};
    v[two_n - k] = {values[j], 0.0};  // conjugate of a real value
  }
  // c_i = (1/N) * sum_k v[k] * zeta^{-ik}  (forward-kernel FFT).
  fft(v, /*invert=*/false);

  std::vector<std::int64_t> coeffs(n);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double c = v[i].real() * inv_n * scale;
    sp::check(std::abs(c) < 4.6e18, "Encoder::encode: coefficient overflow; reduce scale");
    coeffs[i] = static_cast<std::int64_t>(std::llround(c));
  }
  Plaintext pt{RnsPoly(ctx_, q_count, /*with_special=*/false, /*ntt_form=*/false), scale};
  pt.poly.set_from_signed(coeffs);
  pt.poly.to_ntt();
  return pt;
}

Plaintext Encoder::encode_scalar(double value, double scale, int q_count) const {
  const double c = value * scale;
  sp::check(std::abs(c) < 4.6e18, "Encoder::encode_scalar: coefficient overflow");
  std::vector<std::int64_t> coeffs(ctx_->n(), 0);
  coeffs[0] = static_cast<std::int64_t>(std::llround(c));
  Plaintext pt{RnsPoly(ctx_, q_count, false, false), scale};
  pt.poly.set_from_signed(coeffs);
  pt.poly.to_ntt();
  return pt;
}

std::shared_ptr<const Plaintext> Encoder::encode_cached(
    std::uint64_t key, const std::vector<double>& values, double scale,
    int q_count) const {
  return encode_cached(key, scale, q_count, [&values] { return values; });
}

std::shared_ptr<const Plaintext> Encoder::encode_cached(
    std::uint64_t key, double scale, int q_count,
    const std::function<std::vector<double>()>& make) const {
  // Key the scale on its bit pattern: double-keyed ordering would make
  // scales produced by different arithmetic paths compare "close but
  // unequal" silently; raw bits make the hit/miss contract exact.
  std::uint64_t scale_bits = 0;
  std::memcpy(&scale_bits, &scale, sizeof(scale_bits));
  const auto full_key = std::make_tuple(key, scale_bits, q_count);
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    const auto it = pt_cache_.find(full_key);
    if (it != pt_cache_.end()) return it->second;
    // Self-limit: a runaway caller (many distinct matrices) drops the
    // store's references instead of growing without bound. Entries pinned by
    // callers stay alive through their shared_ptr. The limit is generous:
    // one 784x784 matmul's diagonals plus masks stay far below it.
    if (pt_cache_.size() >= 8192) pt_cache_.clear();
  }
  // Encode outside the lock: the FFT is the expensive part, and holding the
  // mutex across it would serialize the overlap helper against evaluation.
  // Two threads racing the same cold key both encode; the loser's (equal)
  // entry is dropped when the winner's insertion is found below.
  auto pt = std::make_shared<const Plaintext>(encode(make(), scale, q_count));
  std::lock_guard<std::mutex> lock(cache_mu_);
  return pt_cache_.emplace(full_key, std::move(pt)).first->second;
}

void Encoder::clear_encode_cache() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  pt_cache_.clear();
}

std::size_t Encoder::encode_cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return pt_cache_.size();
}

std::vector<double> Encoder::pack_slots(const std::vector<std::vector<double>>& inputs,
                                        std::size_t stride, std::size_t slot_count) {
  sp::check(stride >= 1, "Encoder::pack_slots: stride must be >= 1");
  sp::check(inputs.size() * stride <= slot_count,
            "Encoder::pack_slots: batch does not fit the slot budget");
  std::vector<double> flat(slot_count, 0.0);
  for (std::size_t b = 0; b < inputs.size(); ++b) {
    sp::check(inputs[b].size() <= stride, "Encoder::pack_slots: input exceeds stride");
    for (std::size_t j = 0; j < inputs[b].size(); ++j) flat[b * stride + j] = inputs[b][j];
  }
  return flat;
}

std::vector<std::vector<double>> Encoder::unpack_slots(const std::vector<double>& slots,
                                                       std::size_t stride,
                                                       std::size_t count,
                                                       std::size_t len) {
  if (len == 0) len = stride;
  sp::check(len <= stride, "Encoder::unpack_slots: len exceeds stride");
  sp::check(count == 0 || (count - 1) * stride + len <= slots.size(),
            "Encoder::unpack_slots: slice range exceeds the slot vector");
  std::vector<std::vector<double>> out(count);
  for (std::size_t b = 0; b < count; ++b)
    out[b].assign(slots.begin() + static_cast<std::ptrdiff_t>(b * stride),
                  slots.begin() + static_cast<std::ptrdiff_t>(b * stride + len));
  return out;
}

std::int64_t Encoder::crt_centered(const std::vector<u64>& residues, int q_count) const {
  // Garner mixed-radix digits t_k; value = sum_k t_k * prod_{m<k} q_m.
  const auto L = static_cast<std::size_t>(q_count);
  std::vector<u64> t(L);
  for (std::size_t j = 0; j < L; ++j) {
    const Modulus& m = ctx_->q(static_cast<int>(j));
    u64 partial = 0;
    for (std::size_t k = 0; k < j; ++k)
      partial = m.add(partial, m.mul(t[k] % m.value(), prod_q_mod_[k][j]));
    t[j] = m.mul(m.sub(residues[j], partial), ctx_->garner_inv(static_cast<int>(j)));
  }
  // Exact low 64 bits and long-double magnitude for centering.
  u64 low = 0;
  long double v_ld = 0.0L;
  for (std::size_t k = 0; k < L; ++k) {
    low += t[k] * prod_q_wrap_[k];
    v_ld += static_cast<long double>(t[k]) * prod_q_ld_[k];
  }
  if (v_ld > prod_q_ld_[L] * 0.5L) low -= prod_q_wrap_[L];
  return static_cast<std::int64_t>(low);
}

std::vector<double> Encoder::decode(const Plaintext& pt) const {
  const std::size_t n = ctx_->n();
  const std::size_t two_n = 2 * n;
  RnsPoly poly = pt.poly;
  if (poly.is_ntt()) poly.from_ntt();
  const int L = poly.q_count();

  std::vector<std::complex<double>> c(two_n, {0.0, 0.0});
  std::vector<u64> residues(static_cast<std::size_t>(L));
  for (std::size_t i = 0; i < n; ++i) {
    for (int j = 0; j < L; ++j) residues[static_cast<std::size_t>(j)] = poly.row(j)[i];
    c[i] = {static_cast<double>(crt_centered(residues, L)) / pt.scale, 0.0};
  }
  // v_k = sum_i c_i * zeta^{+ik} (inverse-kernel FFT, no normalization).
  fft(c, /*invert=*/true);
  std::vector<double> out(slot_count());
  for (std::size_t j = 0; j < slot_count(); ++j) out[j] = c[rot_group_[j]].real();
  return out;
}

}  // namespace sp::fhe
