#pragma once

#include <complex>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "fhe/rns_poly.h"

namespace sp::fhe {

/// CKKS plaintext: an RNS ring element (kept in NTT form) with its scale.
struct Plaintext {
  RnsPoly poly;
  double scale = 1.0;
  int q_count() const { return poly.q_count(); }
};

/// CKKS encoder: canonical-embedding packing of N/2 real slots.
///
/// Slot j corresponds to evaluation of the plaintext polynomial at the
/// primitive 2N-th root zeta^(5^j); with that ordering the Galois
/// automorphism X -> X^(5^r) cyclically rotates slots by r. Encoding runs
/// one complex FFT of size 2N; decoding CRT-recomposes the RNS residues with
/// Garner's algorithm (valid while |coefficient| < 2^62, i.e. rescale down
/// before decoding very large scales).
class Encoder {
 public:
  explicit Encoder(const CkksContext& ctx);

  std::size_t slot_count() const { return ctx_->slot_count(); }

  /// Packs `values` (size <= slot_count; remaining slots zero) at the given
  /// scale into a plaintext with `q_count` chain primes.
  Plaintext encode(const std::vector<double>& values, double scale, int q_count) const;

  /// Broadcast-encodes one scalar into all slots (constant polynomial; much
  /// cheaper than the FFT path).
  Plaintext encode_scalar(double value, double scale, int q_count) const;

  /// @brief Content-addressed encode cache for plaintexts that recur across
  /// evaluations — matrix diagonals, compaction masks, per-slot linear
  /// coefficients.
  ///
  /// The first call for a (key, scale, q_count) triple encodes `values` and
  /// caches the plaintext; later calls return the cached entry without
  /// re-running the FFT. `key` is the caller's content fingerprint (e.g. a
  /// hash of the diagonal's coefficients and position): the cache trusts it,
  /// so two different value vectors under one key would alias — derive keys
  /// from everything that determines the vector. The scale keys on its IEEE
  /// bit pattern: bitwise-equal scales hit, anything else is a distinct
  /// entry (never a near-miss alias).
  ///
  /// The returned shared_ptr PINS the entry: it stays valid for as long as
  /// the caller holds it, even across clear_encode_cache() or the store's
  /// self-limiting flush — both only drop the cache's own reference. This is
  /// what makes the cache safe to consult from an evaluation thread while
  /// BatchRunner's overlap helper (or any other thread) drives concurrent
  /// cache traffic.
  std::shared_ptr<const Plaintext> encode_cached(std::uint64_t key,
                                                 const std::vector<double>& values,
                                                 double scale, int q_count) const;

  /// @brief Same, building the slot vector lazily: `make` runs only on a
  /// cache miss, so repeat evaluations skip both the FFT and the O(slots)
  /// vector construction.
  std::shared_ptr<const Plaintext> encode_cached(
      std::uint64_t key, double scale, int q_count,
      const std::function<std::vector<double>()>& make) const;

  /// @brief Drops the cache's own reference to every entry (outstanding
  /// encode_cached pins keep their plaintexts alive).
  void clear_encode_cache() const;

  /// @brief Entries currently held by the encode_cached store.
  std::size_t encode_cache_size() const;

  /// Inverse of encode() for a decrypted plaintext.
  std::vector<double> decode(const Plaintext& pt) const;

  /// @brief Packs B independent request vectors into one strided slot vector.
  ///
  /// Request b occupies slots [b*stride, b*stride + inputs[b].size());
  /// unused slots stay zero. This is the batching layout consumed by
  /// `smartpaf::BatchRunner`: one ciphertext carries every request, so each
  /// SIMD evaluator op serves all of them at once.
  ///
  /// @param inputs  per-request value vectors, each of size <= stride
  /// @param stride  slots reserved per request (inputs.size() * stride must
  ///                fit in slot_count)
  /// @param slot_count  total slots of the target ciphertext (N/2)
  /// @return flat slot vector of size slot_count, ready for encode()
  static std::vector<double> pack_slots(const std::vector<std::vector<double>>& inputs,
                                        std::size_t stride, std::size_t slot_count);

  /// @brief Inverse of pack_slots: splits a decoded slot vector back into
  /// per-request slices.
  ///
  /// @param slots   decoded flat slot vector
  /// @param stride  slots per request (same value given to pack_slots)
  /// @param count   number of requests to extract
  /// @param len     values to keep per request (defaults to the full stride)
  /// @return `count` vectors of size `len` (len = 0 means stride)
  static std::vector<std::vector<double>> unpack_slots(const std::vector<double>& slots,
                                                       std::size_t stride,
                                                       std::size_t count,
                                                       std::size_t len = 0);

 private:
  /// In-place radix-2 complex FFT of size 2N; `invert` flips the kernel sign.
  void fft(std::vector<std::complex<double>>& a, bool invert) const;

  /// Centered CRT recomposition of one coefficient across `level+1` primes.
  std::int64_t crt_centered(const std::vector<u64>& residues, int q_count) const;

  const CkksContext* ctx_;
  // encode_cached store: (caller key, scale bit pattern, q_count) ->
  // shared_ptr pin. The scale keys on its raw IEEE-754 bits so two scales
  // are the same entry iff they are bitwise equal; shared ownership keeps
  // handed-out entries alive across flushes (mutex-guarded for the
  // BatchRunner helper thread).
  mutable std::mutex cache_mu_;
  mutable std::map<std::tuple<std::uint64_t, std::uint64_t, int>,
                   std::shared_ptr<const Plaintext>>
      pt_cache_;
  std::vector<std::size_t> rot_group_;            // 5^j mod 2N
  std::vector<std::complex<double>> twiddles_;    // e^(2*pi*i*k/(2N))
  // Garner precomputation: prod_q_mod_[k][j] = (q_0...q_{k-1}) mod q_j,
  // prod_q_wrap_[k] = (q_0...q_{k-1}) mod 2^64, prod_q_ld_[k] long double.
  std::vector<std::vector<u64>> prod_q_mod_;
  std::vector<u64> prod_q_wrap_;
  std::vector<long double> prod_q_ld_;
};

}  // namespace sp::fhe
