#pragma once

#include <complex>
#include <vector>

#include "fhe/rns_poly.h"

namespace sp::fhe {

/// CKKS plaintext: an RNS ring element (kept in NTT form) with its scale.
struct Plaintext {
  RnsPoly poly;
  double scale = 1.0;
  int q_count() const { return poly.q_count(); }
};

/// CKKS encoder: canonical-embedding packing of N/2 real slots.
///
/// Slot j corresponds to evaluation of the plaintext polynomial at the
/// primitive 2N-th root zeta^(5^j); with that ordering the Galois
/// automorphism X -> X^(5^r) cyclically rotates slots by r. Encoding runs
/// one complex FFT of size 2N; decoding CRT-recomposes the RNS residues with
/// Garner's algorithm (valid while |coefficient| < 2^62, i.e. rescale down
/// before decoding very large scales).
class Encoder {
 public:
  explicit Encoder(const CkksContext& ctx);

  std::size_t slot_count() const { return ctx_->slot_count(); }

  /// Packs `values` (size <= slot_count; remaining slots zero) at the given
  /// scale into a plaintext with `q_count` chain primes.
  Plaintext encode(const std::vector<double>& values, double scale, int q_count) const;

  /// Broadcast-encodes one scalar into all slots (constant polynomial; much
  /// cheaper than the FFT path).
  Plaintext encode_scalar(double value, double scale, int q_count) const;

  /// Inverse of encode() for a decrypted plaintext.
  std::vector<double> decode(const Plaintext& pt) const;

 private:
  /// In-place radix-2 complex FFT of size 2N; `invert` flips the kernel sign.
  void fft(std::vector<std::complex<double>>& a, bool invert) const;

  /// Centered CRT recomposition of one coefficient across `level+1` primes.
  std::int64_t crt_centered(const std::vector<u64>& residues, int q_count) const;

  const CkksContext* ctx_;
  std::vector<std::size_t> rot_group_;            // 5^j mod 2N
  std::vector<std::complex<double>> twiddles_;    // e^(2*pi*i*k/(2N))
  // Garner precomputation: prod_q_mod_[k][j] = (q_0...q_{k-1}) mod q_j,
  // prod_q_wrap_[k] = (q_0...q_{k-1}) mod 2^64, prod_q_ld_[k] long double.
  std::vector<std::vector<u64>> prod_q_mod_;
  std::vector<u64> prod_q_wrap_;
  std::vector<long double> prod_q_ld_;
};

}  // namespace sp::fhe
