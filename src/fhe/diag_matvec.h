#pragma once

#include <cstdint>
#include <vector>

#include "fhe/encoder.h"
#include "fhe/evaluator.h"

namespace sp::fhe {

/// Pure index-math schedule of one Halevi–Shoup diagonal-method encrypted
/// matrix-vector product y = W x for a dense row-major `rows` x `cols`
/// matrix, with a baby-step/giant-step split of the rotation fan.
///
/// The product is expressed over *extended* (non-modular) diagonals: for a
/// step s in [-(rows-1), cols-1], diagonal d_s[j] = W[j][j+s] wherever the
/// column index j+s lands inside [0, cols), zero elsewhere. Then
///   y[j] = sum_s d_s[j] * rot(x, s)[j],
/// exactly — the masks kill every slot a rotation drags in from outside the
/// matrix support, so no zero-padding or replication assumption is needed.
///
/// BSGS: every step splits as s = g + b with b in [0, n1) and g = n1 *
/// floor(s / n1). The baby rotations rot(x, b) are shared across all
/// diagonals (a hoistable fan from one input); each giant group's inner sum
/// of plaintext-masked babies is rotated once by g (plaintext diagonals are
/// pre-rotated by -g at encode time, which is free). Rotation count drops
/// from (#nonzero diagonals - [d_0 nonzero]) to (#babies + #giants) ~
/// 2 sqrt(rows + cols); n1 = 1 degenerates to the naive per-diagonal loop.
struct DiagMatVecPlan {
  int rows = 0;
  int cols = 0;
  int n1 = 1;                   ///< baby block size (1 = naive diagonal loop)
  std::vector<int> baby_steps;  ///< distinct nonzero baby rotations, ascending
  std::vector<int> giant_steps; ///< distinct nonzero giant rotations, ascending
  std::vector<int> diag_steps;  ///< every nonzero diagonal step, ascending
  int giant_groups = 0;         ///< the BSGS "n2": giant groups incl. g = 0
  int nonzero_diagonals = 0;    ///< plaintext multiplications the product pays

  /// @brief Extended-diagonal steps s with a nonzero diagonal (ascending).
  /// O(rows * cols); compute once and regroup with `group` per n1 candidate.
  static std::vector<int> nonzero_steps(const std::vector<double>& weights, int rows,
                                        int cols);

  /// @brief Groups precomputed nonzero steps under baby block size `n1`.
  static DiagMatVecPlan group(const std::vector<int>& steps, int rows, int cols,
                              int n1);

  /// @brief nonzero_steps + group in one call.
  static DiagMatVecPlan make(const std::vector<double>& weights, int rows, int cols,
                             int n1);

  /// @brief Floor-division giant step: g = n1 * floor(s / n1), so the baby
  /// b = s - g lands in [0, n1) for negative steps too.
  static int giant_of(int s, int n1);

  /// @brief Extended-diagonal steps of the transpose: diagonal s is nonzero
  /// in W^T exactly when diagonal -s is nonzero in W (ascending). A client
  /// holding the plaintext matrix can therefore pack W^T's diagonals
  /// directly at encode time — no homomorphic repacking of W is needed to
  /// multiply by the transpose (the encrypted trainer's X^T * err path).
  static std::vector<int> transpose_steps(const std::vector<int>& steps);

  /// @brief The n1 in [1, rows + cols] minimizing the rotation count
  /// (#babies + #giants), ties broken toward fewer giant groups then the
  /// smaller n1 — the heuristic split when no calibrated cost table is in
  /// play (the Planner's MatMul path weighs candidates with one instead).
  static int best_n1(const std::vector<int>& steps, int rows, int cols);

  /// @brief Slot rotations the schedule executes (babies + giants).
  int rotations() const {
    return static_cast<int>(baby_steps.size() + giant_steps.size());
  }

  /// @brief Union of every rotation step the schedule needs (keygen).
  std::vector<int> steps() const;
};

/// Slot vector of extended diagonal `s` of a row-major `rows` x `cols`
/// matrix, pre-rotated by -g (the BSGS giant pre-rotation: the entry for row
/// j lands at slot (j + g) mod tile, so the giant rotation moves it back)
/// and replicated every `tile` slots of a `slots`-slot vector.
///
/// Shared by the plaintext DiagonalMatVec encode path and the
/// ciphertext-side diagonal packing in EncDiagMatVec — both sides of a
/// ct x pt / ct x ct product must agree on this layout bit for bit.
std::vector<double> extended_diagonal_slots(const std::vector<double>& weights,
                                            int rows, int cols, int s, int g,
                                            std::size_t tile, std::size_t slots);

/// Executes a planned diagonal-method matrix-vector product on a ciphertext:
/// one (optionally hoisted) baby-step rotation fan from the input, one
/// cached plaintext multiplication per nonzero diagonal, one naive rotation
/// per nonzero giant step, a single rescale, and an optional bias row —
/// consuming exactly one level and zero relinearizations (everything stays
/// 2-part).
///
/// Slot layout: the input vector occupies slots [0, cols) and the product
/// lands in slots [0, rows), zero elsewhere. With `tile` > 0 the layout
/// repeats every `tile` slots (the BatchRunner packing stride): diagonals
/// and bias are replicated per tile, so every packed request gets its own
/// product — valid for any tile >= max(rows, cols) because the masks confine
/// each rotation to in-request data.
///
/// Diagonal plaintexts are content-fingerprinted and served from the
/// encoder's encode_cached store, so repeated runs of one pipeline (serving)
/// pay the encode FFTs once per (matrix, level).
class DiagonalMatVec {
 public:
  /// @param enc     encoder owning the plaintext cache
  /// @param weights row-major rows x cols matrix
  /// @param rows    output dimension (<= tile / slot count)
  /// @param cols    input dimension (<= tile / slot count)
  /// @param bias    empty, or `rows` values added to the product
  /// @param n1      BSGS baby block size from the planner (>= 1)
  /// @param tile    slot-layout repeat stride; 0 = one layout over all slots
  DiagonalMatVec(const Encoder& enc, std::vector<double> weights, int rows, int cols,
                 std::vector<double> bias, int n1, std::size_t tile = 0);

  /// @brief The rotation/multiplication schedule apply() executes.
  const DiagMatVecPlan& plan() const { return plan_; }

  /// @brief y = W x (+ bias), one level below `x`.
  /// @param ev           evaluator to run on
  /// @param x            2-part input ciphertext (data in slots [0, cols)
  ///                     of each tile)
  /// @param gk           rotation keys covering plan().steps()
  /// @param hoist_babies route the baby fan through one HoistedDecomposition
  /// @param scale        encoding scale for the diagonal plaintexts (Delta)
  Ciphertext apply(Evaluator& ev, const Ciphertext& x, const GaloisKeys& gk,
                   bool hoist_babies, double scale) const;

 private:
  /// Plaintext slot vector of diagonal `s` pre-rotated by -g and tiled.
  std::vector<double> diagonal_slots(int s, int g) const;

  const Encoder* enc_;
  std::vector<double> weights_;
  std::vector<double> bias_;
  int rows_;
  int cols_;
  std::size_t tile_;
  std::uint64_t fingerprint_;  ///< encode_cached key base (content hash)
  DiagMatVecPlan plan_;
};

}  // namespace sp::fhe
