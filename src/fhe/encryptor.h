#pragma once

#include "fhe/keys.h"

namespace sp::fhe {

/// Public-key CKKS encryptor.
class Encryptor {
 public:
  Encryptor(const CkksContext& ctx, PublicKey pk, std::uint64_t seed = 1234);

  /// Encrypts a plaintext at its own level/scale.
  Ciphertext encrypt(const Plaintext& pt);

 private:
  const CkksContext* ctx_;
  PublicKey pk_;
  sp::Rng rng_;
};

/// Secret-key decryptor (handles 2- and 3-part ciphertexts).
class Decryptor {
 public:
  Decryptor(const CkksContext& ctx, SecretKey sk);

  /// Decrypts into a plaintext carrying the ciphertext's scale.
  Plaintext decrypt(const Ciphertext& ct);

 private:
  const CkksContext* ctx_;
  SecretKey sk_;
};

}  // namespace sp::fhe
