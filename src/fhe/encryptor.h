#pragma once

#include "fhe/keys.h"

namespace sp::fhe {

/// Public-key CKKS encryptor.
///
/// Encryption randomness (the ternary u and the gaussian noise) must be
/// unpredictable in production: a fixed default seed would make every
/// process emit the same randomness stream, collapsing CPA security. The
/// seedless constructor therefore draws entropy from std::random_device;
/// the explicit-seed overload exists for reproducible tests and benches.
class Encryptor {
 public:
  /// Seeds the randomness stream from std::random_device (non-deterministic).
  Encryptor(const CkksContext& ctx, PublicKey pk);
  /// Deterministic stream for reproducible tests/benches — never use a
  /// hard-coded seed in production paths.
  Encryptor(const CkksContext& ctx, PublicKey pk, std::uint64_t seed);

  /// Encrypts a plaintext at its own level/scale.
  Ciphertext encrypt(const Plaintext& pt);

 private:
  const CkksContext* ctx_;
  PublicKey pk_;
  sp::Rng rng_;
};

/// Secret-key decryptor (handles 2- and 3-part ciphertexts).
class Decryptor {
 public:
  Decryptor(const CkksContext& ctx, SecretKey sk);

  /// Decrypts into a plaintext carrying the ciphertext's scale.
  Plaintext decrypt(const Ciphertext& ct);

 private:
  const CkksContext* ctx_;
  SecretKey sk_;
};

}  // namespace sp::fhe
